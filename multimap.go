package mccuckoo

import "fmt"

// MultiMap stores multiple values per key on top of a McCuckoo table,
// realizing §III.H's multiset design: the table never duplicates items of
// the same key among its copies (copies must stay identical); instead it
// acts as an index mapping the key's fingerprint to the head of a value
// chain stored in a side arena.
//
// Nodes carry the full key, so distinct keys whose fingerprints collide
// simply share a chain and are disambiguated on access — semantics are
// exact for any hasher.
type MultiMap[K comparable, V any] struct {
	table  *Table
	hasher func(K) uint64
	nodes  []mmNode[K, V]
	free   []int
	pairs  int
}

type mmNode[K comparable, V any] struct {
	key  K
	val  V
	next int // arena index of the next node, -1 at chain end
	live bool
}

// NewMultiMap creates a MultiMap with the given table capacity (in buckets)
// and key hasher.
func NewMultiMap[K comparable, V any](capacity int, hasher func(K) uint64, opts ...Option) (*MultiMap[K, V], error) {
	if hasher == nil {
		return nil, fmt.Errorf("mccuckoo: hasher must not be nil")
	}
	t, err := New(capacity, opts...)
	if err != nil {
		return nil, err
	}
	return &MultiMap[K, V]{table: t, hasher: hasher}, nil
}

// Add appends value to key's values. It returns an error only when the
// underlying table rejects a new fingerprint outright.
func (m *MultiMap[K, V]) Add(key K, value V) error {
	fp := m.hasher(key)
	head, exists := m.table.Lookup(fp)
	next := -1
	if exists {
		next = int(head)
	}
	idx := m.alloc(mmNode[K, V]{key: key, val: value, next: next, live: true})
	res := m.table.Insert(fp, uint64(idx))
	if res.Status == Failed {
		m.dealloc(idx)
		return fmt.Errorf("mccuckoo: multimap is full (load %.2f)", m.table.LoadRatio())
	}
	m.pairs++
	return nil
}

// Get returns all values stored for key, in reverse insertion order
// (newest first). It returns nil when key is absent.
func (m *MultiMap[K, V]) Get(key K) []V {
	head, ok := m.table.Lookup(m.hasher(key))
	if !ok {
		return nil
	}
	var out []V
	for idx := int(head); idx >= 0; idx = m.nodes[idx].next {
		if n := &m.nodes[idx]; n.key == key {
			out = append(out, n.val)
		}
	}
	return out
}

// Contains reports whether key has at least one value.
func (m *MultiMap[K, V]) Contains(key K) bool {
	head, ok := m.table.Lookup(m.hasher(key))
	if !ok {
		return false
	}
	for idx := int(head); idx >= 0; idx = m.nodes[idx].next {
		if m.nodes[idx].key == key {
			return true
		}
	}
	return false
}

// Remove deletes all values of key and returns how many were removed.
func (m *MultiMap[K, V]) Remove(key K) int {
	fp := m.hasher(key)
	head, ok := m.table.Lookup(fp)
	if !ok {
		return 0
	}
	removed := 0
	newHead := -1
	tail := -1 // last surviving node, to relink
	for idx := int(head); idx >= 0; {
		next := m.nodes[idx].next
		if m.nodes[idx].key == key {
			m.dealloc(idx)
			removed++
		} else {
			if tail >= 0 {
				m.nodes[tail].next = idx
			} else {
				newHead = idx
			}
			tail = idx
		}
		idx = next
	}
	if tail >= 0 {
		m.nodes[tail].next = -1
	}
	switch {
	case removed == 0:
		return 0
	case newHead < 0:
		m.table.Delete(fp)
	case newHead != int(head):
		m.table.Insert(fp, uint64(newHead))
	}
	m.pairs -= removed
	return removed
}

// Len returns the total number of key/value pairs.
func (m *MultiMap[K, V]) Len() int { return m.pairs }

// LoadRatio returns the underlying table's load ratio (distinct
// fingerprints over capacity).
func (m *MultiMap[K, V]) LoadRatio() float64 { return m.table.LoadRatio() }

// Traffic returns the underlying table's memory-access counts.
func (m *MultiMap[K, V]) Traffic() Traffic { return m.table.Traffic() }

// Range calls fn for every key/value pair until fn returns false.
// Iteration order is unspecified.
func (m *MultiMap[K, V]) Range(fn func(K, V) bool) {
	for i := range m.nodes {
		if n := &m.nodes[i]; n.live && !fn(n.key, n.val) {
			return
		}
	}
}

func (m *MultiMap[K, V]) alloc(n mmNode[K, V]) int {
	if l := len(m.free); l > 0 {
		idx := m.free[l-1]
		m.free = m.free[:l-1]
		m.nodes[idx] = n
		return idx
	}
	m.nodes = append(m.nodes, n)
	return len(m.nodes) - 1
}

func (m *MultiMap[K, V]) dealloc(idx int) {
	var zero mmNode[K, V]
	m.nodes[idx] = zero
	m.nodes[idx].next = -1
	m.free = append(m.free, idx)
}
