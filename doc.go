// Package mccuckoo implements Multi-copy Cuckoo Hashing (McCuckoo, ICDE
// 2019): a cuckoo hash table that stores redundant copies of each item in all
// of its free candidate buckets and tracks the copy count of every bucket in
// a compact counter array kept in fast memory.
//
// The counters buy three things over standard cuckoo hashing:
//
//   - Insertions stop being blind. A bucket whose counter is greater than one
//     holds a redundant copy and can be overwritten immediately, so the table
//     sustains much higher load before any kick-out chain is needed, and the
//     chains that do happen are shorter.
//   - Lookups skip buckets that provably cannot hold the queried key: a zero
//     counter among the candidates means the key was never inserted (the
//     counter array doubles as a Bloom filter), and candidate partitions
//     with fewer members than their counter value cannot contain the key.
//   - Deletions never touch the main table: only counters are reset.
//
// Insertion failures overflow into a stash pre-screened by per-bucket flags,
// so the stash is consulted only when a key plausibly lives there.
//
// # Table flavours
//
// New builds the single-slot table (d hash functions, one item per bucket,
// d=3 by default). NewBlocked builds the blocked variant (l slots per bucket,
// 3×3 by default), which trades slightly weaker lookup filtering for load
// ratios close to 100%. Both are single-writer structures; Concurrent wraps
// either for one-writer-many-readers use, and NewSharded builds an N-way
// hash-partitioned table whose shards lock independently, with batched
// operations (InsertBatch/LookupBatch/DeleteBatch) that take each touched
// shard's lock once per batch. Map adapts the table into a generic
// key/value map for arbitrary comparable key types.
//
// All four kinds satisfy the Store and BatchStore interfaces, so consumers
// — including the network serving layer in cmd/mcserved — are written once
// against the interface instead of per kind.
//
// # Concurrency
//
// The kinds differ only in their concurrency contract:
//
//   - Table and Blocked must be confined to one goroutine at a time. No
//     method is safe to call concurrently with any other, reads included
//     (lookups mutate the traffic meter).
//   - Concurrent allows exactly one mutating goroutine (Insert, Delete,
//     InsertPathwise) alongside any number of Lookup goroutines.
//   - Sharded is safe for unrestricted concurrent use by any number of
//     goroutines, for every method.
//
// NewConcurrent's SingleWriter constraint admits only *Table and *Blocked:
// wrapping an already-thread-safe kind (Sharded, or a Concurrent itself)
// is a compile error, because stacking a second lock on an internally
// synchronized table buys nothing and hides the real contract.
//
// # Instrumentation
//
// Every table counts its memory traffic — off-chip bucket reads/writes and
// on-chip counter accesses — mirroring the paper's target platform where the
// main table lives in slow external memory and the counters in on-chip SRAM.
// Traffic and operation statistics are available through the Traffic and
// Stats methods; cmd/mcbench regenerates every figure and table of the
// paper's evaluation from the same counters.
package mccuckoo
