module mccuckoo

go 1.22
