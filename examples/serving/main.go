// Serving: McCuckoo over the network. An in-process wire server binds a
// sharded table behind the Store interface, then a fleet of clients talks
// to it over real TCP: pipelined point ops, batched round trips, BUSY
// backpressure handled by the client's jittered retries, and a graceful
// drain at the end. The same protocol is served standalone by cmd/mcserved.
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"mccuckoo"
	"mccuckoo/internal/wire"
)

func main() {
	table, err := mccuckoo.NewSharded(1<<16, 8, mccuckoo.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	srv, err := wire.NewServer(wire.Config{Store: table})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()
	fmt.Printf("serving a %d-slot sharded table on %s\n\n", table.Capacity(), addr)

	// A fleet of clients, each loading its own key range with one batched
	// round trip per thousand pairs, then reading a sample back with
	// pipelined point lookups.
	const fleet = 4
	const perClient = 10_000
	start := time.Now()
	var wg sync.WaitGroup
	for f := 0; f < fleet; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			c, err := wire.Dial(wire.ClientConfig{Addr: addr, Conns: 2})
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()

			base := uint64(f) * perClient
			keys := make([]uint64, 1000)
			vals := make([]uint64, 1000)
			for off := uint64(0); off < perClient; off += 1000 {
				for i := range keys {
					keys[i] = base + off + uint64(i)
					vals[i] = keys[i] * 7
				}
				if _, err := c.PutBatch(keys, vals); err != nil {
					log.Fatalf("client %d: %v", f, err)
				}
			}

			// Pipelined reads: many goroutines share the pooled client, so
			// lookups overlap on the wire instead of paying one RTT each.
			var readers sync.WaitGroup
			for r := 0; r < 8; r++ {
				readers.Add(1)
				go func(r int) {
					defer readers.Done()
					for i := 0; i < 500; i++ {
						k := base + uint64((r*500+i)%perClient)
						v, ok, err := c.Get(k)
						if err != nil || !ok || v != k*7 {
							log.Fatalf("client %d: get %d = %d,%v (%v)", f, k, v, ok, err)
						}
					}
				}(r)
			}
			readers.Wait()
		}(f)
	}
	wg.Wait()
	elapsed := time.Since(start)

	c, err := wire.Dial(wire.ClientConfig{Addr: addr})
	if err != nil {
		log.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	c.Close()
	fmt.Printf("fleet of %d clients finished in %v\n", fleet, elapsed.Round(time.Millisecond))
	fmt.Printf("server-side table: %d items, load %.1f%%, %d inserts, %d lookups\n\n",
		st.Len, st.LoadRatio*100, st.Inserts, st.Lookups)

	fmt.Println("server metrics exposition (excerpt):")
	srv.WritePrometheus(excerptWriter{})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndrained cleanly")
}

// excerptWriter prints only the counter lines, skipping HELP/TYPE noise.
type excerptWriter struct{}

func (excerptWriter) Write(p []byte) (int, error) {
	for _, line := range splitLines(p) {
		if len(line) > 0 && line[0] != '#' {
			fmt.Fprintf(os.Stdout, "  %s\n", line)
		}
	}
	return len(p), nil
}

func splitLines(p []byte) []string {
	var out []string
	start := 0
	for i, b := range p {
		if b == '\n' {
			out = append(out, string(p[start:i]))
			start = i + 1
		}
	}
	if start < len(p) {
		out = append(out, string(p[start:]))
	}
	return out
}
