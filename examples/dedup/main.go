// Dedup: an inline chunk-deduplication index, the storage use case that
// motivates cuckoo hashing in systems like ChunkStash (cited in the paper's
// introduction). Incoming data is split into chunks; each chunk's
// fingerprint is looked up in a McCuckoo index to decide whether the chunk
// is a duplicate (store a reference) or new (store the bytes and index the
// fingerprint).
//
// The index uses the single-slot table: lookups for never-seen chunks
// dominate a dedup workload, and the single-slot variant's counter array
// filters most of those misses on-chip without touching the index's slow
// memory — the paper's headline win (Fig. 13). The index is provisioned for
// ~60% load; a deployment that must run the index near 100% full would pick
// NewBlocked instead and trade away some miss filtering.
package main

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"mccuckoo"
)

const (
	chunkSize  = 4096
	numChunks  = 40_000
	dupePct    = 30 // percent of incoming chunks that repeat earlier data
	indexSlots = 48_000
)

func main() {
	index, err := mccuckoo.New(indexSlots, mccuckoo.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	var (
		storedBytes  int64
		logicalBytes int64
		nextOffset   uint64
		uniqueChunks [][]byte
	)

	chunk := make([]byte, chunkSize)
	for i := 0; i < numChunks; i++ {
		// A duplicate chunk repeats earlier content; a fresh one is
		// random.
		if len(uniqueChunks) > 0 && rng.Intn(100) < dupePct {
			copy(chunk, uniqueChunks[rng.Intn(len(uniqueChunks))])
		} else {
			rng.Read(chunk)
		}
		logicalBytes += chunkSize

		fp := fingerprint(chunk)
		if _, ok := index.Lookup(fp); ok {
			continue // duplicate: reference only, no new storage
		}
		// New chunk: "write" it and index its location.
		if res := index.Insert(fp, nextOffset); res.Status == mccuckoo.Failed {
			log.Fatalf("index full at %d chunks (load %.1f%%)", i, index.LoadRatio()*100)
		}
		nextOffset += chunkSize
		storedBytes += chunkSize
		saved := make([]byte, chunkSize)
		copy(saved, chunk)
		uniqueChunks = append(uniqueChunks, saved)
	}

	tr := index.Traffic()
	fmt.Printf("ingested:   %6.1f MiB (%d chunks)\n", mib(logicalBytes), numChunks)
	fmt.Printf("stored:     %6.1f MiB (%d unique chunks) — %.1f%% dedup ratio\n",
		mib(storedBytes), index.Len(),
		100*(1-float64(storedBytes)/float64(logicalBytes)))
	fmt.Printf("index load: %6.1f%% of %d slots, %d items in stash\n",
		index.LoadRatio()*100, index.Capacity(), index.StashLen())
	fmt.Printf("index traffic: %d slow-memory reads, %d writes, %d counter checks\n",
		tr.OffChipReads, tr.OffChipWrites, tr.OnChipReads)
	fmt.Printf("reads per ingested chunk: %.3f (a counter-less index pays ~3 per fresh chunk)\n",
		float64(tr.OffChipReads)/float64(numChunks))

	// Verify: every unique chunk's fingerprint resolves.
	for _, c := range uniqueChunks {
		if _, ok := index.Lookup(fingerprint(c)); !ok {
			log.Fatal("index lost a chunk fingerprint")
		}
	}
	fmt.Println("verification: all unique fingerprints resolve")
}

// fingerprint derives a 64-bit chunk id from SHA-256 (the full digest would
// be stored alongside the chunk for exact verification in a real system).
func fingerprint(chunk []byte) uint64 {
	sum := sha256.Sum256(chunk)
	return binary.LittleEndian.Uint64(sum[:8])
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }
