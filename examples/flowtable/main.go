// Flowtable: a software switch's flow table, the networking use case behind
// CuckooSwitch (cited in the paper's introduction). Forwarding threads look
// up the 5-tuple of every arriving packet; a control-plane thread installs
// and expires flows concurrently.
//
// This is the one-writer-many-readers mode of §III.H: reader goroutines run
// lookups in parallel through the table's read-only path while a single
// writer mutates under the write lock. Most packets belong to established
// flows (hits); packets of unknown flows (misses) are punted to the control
// plane — and those misses are exactly what the on-chip counters answer
// cheaply.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"mccuckoo"
)

// flowKey packs a 5-tuple into the 64-bit key space via BOB hash.
func flowKey(srcIP, dstIP uint32, srcPort, dstPort uint16, proto uint8) uint64 {
	var buf [13]byte
	binary.BigEndian.PutUint32(buf[0:], srcIP)
	binary.BigEndian.PutUint32(buf[4:], dstIP)
	binary.BigEndian.PutUint16(buf[8:], srcPort)
	binary.BigEndian.PutUint16(buf[10:], dstPort)
	buf[12] = proto
	return mccuckoo.BytesHasher(buf[:])
}

const (
	numFlows   = 20_000
	numReaders = 4
	pktsPerRdr = 200_000
	missPct    = 5 // percent of packets from unknown flows
)

func main() {
	inner, err := mccuckoo.New(30_000, mccuckoo.WithSeed(99))
	if err != nil {
		log.Fatal(err)
	}
	table := mccuckoo.NewConcurrent(inner)

	// Control plane installs the initial flow set: key -> egress port.
	rng := rand.New(rand.NewSource(7))
	flows := make([]uint64, numFlows)
	for i := range flows {
		flows[i] = flowKey(rng.Uint32(), rng.Uint32(),
			uint16(rng.Intn(65536)), uint16(rng.Intn(65536)), 6)
		if res := table.Insert(flows[i], uint64(i%48)); res.Status == mccuckoo.Failed {
			log.Fatalf("flow install %d failed", i)
		}
	}
	fmt.Printf("installed %d flows, table load %.1f%%\n", table.Len(), table.LoadRatio()*100)

	// Forwarding threads process packets while the control plane churns
	// flows underneath them.
	var forwarded, punted atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < numReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for p := 0; p < pktsPerRdr; p++ {
				var key uint64
				if rng.Intn(100) < missPct {
					// Unknown flow: random 5-tuple.
					key = flowKey(rng.Uint32(), rng.Uint32(),
						uint16(rng.Intn(65536)), uint16(rng.Intn(65536)), 17)
				} else {
					key = flows[rng.Intn(numFlows)]
				}
				if _, ok := table.Lookup(key); ok {
					forwarded.Add(1)
				} else {
					punted.Add(1)
				}
			}
		}(r)
	}

	// Control-plane churn: expire a block of flows and install
	// replacements while the data plane is running.
	for i := 0; i < numFlows/10; i++ {
		table.Delete(flows[i])
		nk := flowKey(rng.Uint32(), rng.Uint32(),
			uint16(rng.Intn(65536)), uint16(rng.Intn(65536)), 6)
		table.Insert(nk, uint64(i%48))
		flows[i] = nk
	}
	wg.Wait()

	st := table.Stats()
	fmt.Printf("data plane: %d packets forwarded, %d punted to control plane\n",
		forwarded.Load(), punted.Load())
	fmt.Printf("control plane churned %d flows during forwarding\n", numFlows/10)
	fmt.Printf("final table: %d flows at %.1f%% load, %d total lookups served\n",
		table.Len(), table.LoadRatio()*100, st.Lookups)

	// Sanity: every current flow resolves.
	for _, f := range flows {
		if _, ok := table.Lookup(f); !ok {
			log.Fatalf("flow %#x lost", f)
		}
	}
	fmt.Println("verification: all installed flows resolve")
}
