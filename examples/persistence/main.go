// Persistence: save a loaded McCuckoo table to disk and restore it, the
// workflow of a service that wants warm restarts without replaying its
// build workload. The snapshot captures the complete logical state — main
// table, counters, stash, flags, even the traffic meter — and Load verifies
// the table's internal invariants before handing it back.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mccuckoo"
)

func main() {
	table, err := mccuckoo.New(50_000, mccuckoo.WithSeed(21))
	if err != nil {
		log.Fatal(err)
	}

	// Build an 85%-loaded table, with some churn so the snapshot covers
	// deletions and stash state too.
	n := uint64(0.88 * float64(table.Capacity()))
	for k := uint64(1); k <= n; k++ {
		if table.Insert(k, k*3).Status == mccuckoo.Failed {
			log.Fatalf("insert %d failed", k)
		}
	}
	for k := uint64(1); k <= n/20; k++ {
		table.Delete(k * 7)
	}
	fmt.Printf("built table: %d items at %.1f%% load, %d stashed\n",
		table.Len(), table.LoadRatio()*100, table.StashLen())

	// Save crash-safely: SaveFile writes to a temp file, fsyncs, and
	// atomically renames it over path, so a crash mid-save leaves the
	// previous snapshot intact — never a torn file.
	path := filepath.Join(os.TempDir(), "mccuckoo-example.snap")
	if err := table.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d bytes (%.1f bytes/item) at %s\n",
		info.Size(), float64(info.Size())/float64(table.Len()), path)

	// Restore and verify. LoadFile checks the per-section and whole-file
	// CRC32C checksums and the table invariants before handing anything
	// back.
	restored, err := mccuckoo.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)

	if restored.Len() != table.Len() || restored.StashLen() != table.StashLen() {
		log.Fatalf("restored table differs: %d/%d items", restored.Len(), table.Len())
	}
	checked := 0
	for k := uint64(1); k <= n; k++ {
		want, wantOK := table.Lookup(k)
		got, gotOK := restored.Lookup(k)
		if wantOK != gotOK || (wantOK && want != got) {
			log.Fatalf("key %d differs after restore", k)
		}
		checked++
	}
	fmt.Printf("restored table verified: %d keys agree, load %.1f%%\n",
		checked, restored.LoadRatio()*100)

	// The restored table keeps working.
	for k := n + 1; k <= n+100; k++ {
		if restored.Insert(k, k).Status == mccuckoo.Failed {
			log.Fatal("post-restore insert failed")
		}
	}
	fmt.Printf("post-restore inserts OK, final load %.1f%%\n", restored.LoadRatio()*100)

	// Corruption is detected, not absorbed: flip one bit in the file and
	// the load fails with a typed *CorruptError naming the bad section.
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x04
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		log.Fatal(err)
	}
	if _, err := mccuckoo.LoadFile(path); err == nil {
		log.Fatal("corrupted snapshot was accepted")
	} else {
		var ce *mccuckoo.CorruptError
		if errors.As(err, &ce) {
			fmt.Printf("bit-flipped snapshot rejected: %v\n", ce)
		}
	}
}
