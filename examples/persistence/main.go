// Persistence: save a loaded McCuckoo table to disk and restore it, the
// workflow of a service that wants warm restarts without replaying its
// build workload. The snapshot captures the complete logical state — main
// table, counters, stash, flags, even the traffic meter — and Load verifies
// the table's internal invariants before handing it back.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mccuckoo"
)

func main() {
	table, err := mccuckoo.New(50_000, mccuckoo.WithSeed(21))
	if err != nil {
		log.Fatal(err)
	}

	// Build an 85%-loaded table, with some churn so the snapshot covers
	// deletions and stash state too.
	n := uint64(0.88 * float64(table.Capacity()))
	for k := uint64(1); k <= n; k++ {
		if table.Insert(k, k*3).Status == mccuckoo.Failed {
			log.Fatalf("insert %d failed", k)
		}
	}
	for k := uint64(1); k <= n/20; k++ {
		table.Delete(k * 7)
	}
	fmt.Printf("built table: %d items at %.1f%% load, %d stashed\n",
		table.Len(), table.LoadRatio()*100, table.StashLen())

	// Save.
	path := filepath.Join(os.TempDir(), "mccuckoo-example.snap")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	written, err := table.WriteTo(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d bytes (%.1f bytes/item) at %s\n",
		written, float64(written)/float64(table.Len()), path)

	// Restore and verify.
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := mccuckoo.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)

	if restored.Len() != table.Len() || restored.StashLen() != table.StashLen() {
		log.Fatalf("restored table differs: %d/%d items", restored.Len(), table.Len())
	}
	checked := 0
	for k := uint64(1); k <= n; k++ {
		want, wantOK := table.Lookup(k)
		got, gotOK := restored.Lookup(k)
		if wantOK != gotOK || (wantOK && want != got) {
			log.Fatalf("key %d differs after restore", k)
		}
		checked++
	}
	fmt.Printf("restored table verified: %d keys agree, load %.1f%%\n",
		checked, restored.LoadRatio()*100)

	// The restored table keeps working.
	for k := n + 1; k <= n+100; k++ {
		if restored.Insert(k, k).Status == mccuckoo.Failed {
			log.Fatal("post-restore insert failed")
		}
	}
	fmt.Printf("post-restore inserts OK, final load %.1f%%\n", restored.LoadRatio()*100)
}
