// Sharded: the concurrent face of McCuckoo. A 16-way partitioned table is
// bulk-loaded with batched inserts (one lock acquisition per shard per
// batch), then hammered with lookups from several goroutines at once —
// writers on different shards never contend, readers share per-shard read
// locks. The per-shard statistics at the end show the routing balance and
// the lock traffic the batch API saved.
//
// With -metrics the demo also attaches telemetry, serves Prometheus metrics
// and the flight recorder over HTTP, and keeps mutating in the background so
// there is live traffic to watch:
//
//	go run ./examples/sharded -metrics :8080 &
//	curl localhost:8080/metrics
//	curl localhost:8080/debug/mccuckoo/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"sync"

	"mccuckoo"
)

func main() {
	metrics := flag.String("metrics", "", "serve telemetry on this address and keep generating traffic (e.g. :8080)")
	flag.Parse()

	opts := []mccuckoo.Option{mccuckoo.WithSeed(42)}
	var tel *mccuckoo.Telemetry
	if *metrics != "" {
		tel = mccuckoo.NewTelemetry()
		opts = append(opts, mccuckoo.WithTelemetry(tel))
	}
	table, err := mccuckoo.NewSharded(120_000, 16, opts...)
	if err != nil {
		log.Fatal(err)
	}

	// Bulk load to ~70% with batched inserts: keys are grouped by shard
	// internally, so each batch of 4096 costs at most 16 lock
	// acquisitions instead of 4096.
	const batch = 4096
	n := int(0.70 * float64(table.Capacity()))
	keys := make([]uint64, 0, batch)
	vals := make([]uint64, 0, batch)
	flush := func() {
		for _, r := range table.InsertBatch(keys, vals) {
			if r.Status == mccuckoo.Failed {
				log.Fatal("batched insert failed")
			}
		}
		keys, vals = keys[:0], vals[:0]
	}
	for k := uint64(1); k <= uint64(n); k++ {
		keys = append(keys, k)
		vals = append(vals, k*10)
		if len(keys) == batch {
			flush()
		}
	}
	flush()
	fmt.Printf("loaded %d items into %d shards, load ratio %.1f%%\n",
		table.Len(), table.Shards(), table.LoadRatio()*100)

	// Concurrent lookups: 8 goroutines, each checking a slice of the key
	// space while 2 more mutate a disjoint range — all safe, no global
	// lock anywhere.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := uint64(g + 1); k <= uint64(n); k += 8 {
				if v, ok := table.Lookup(k); !ok || v != k*10 {
					log.Fatalf("reader %d: key %d = (%d, %v)", g, k, v, ok)
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(1_000_000_000 + g*100_000)
			for k := base; k < base+50_000; k++ {
				table.Insert(k, k)
				table.Delete(k)
			}
		}(g)
	}
	wg.Wait()

	// Per-shard observability: load balance and lock traffic.
	st := table.ShardStats()
	fmt.Printf("shard load: min %.1f%% max %.1f%% (aggregate %.1f%%)\n",
		st.MinLoad*100, st.MaxLoad*100, st.LoadRatio*100)
	fmt.Printf("lock acquisitions: %d read, %d write (batched bulk load took ~%d, not %d)\n",
		st.ReadLocks, st.WriteLocks, (n+batch-1)/batch*table.Shards(), n)
	fmt.Printf("kick-outs across all shards: %d; stash: %d items\n", st.Kicks, st.StashLen)
	first := st.Shards[0]
	fmt.Printf("shard 0: %d items (%.1f%% load), %d lookups, %d write locks\n",
		first.Items, first.LoadRatio*100, first.Lookups, first.WriteLocks)

	// With -metrics: serve the scrape endpoints forever, with a background
	// goroutine churning a disjoint key range so the latency histograms,
	// kick counters, and the flight recorder stay live.
	if *metrics != "" {
		go func() {
			for {
				for k := uint64(2_000_000_000); k < 2_000_050_000; k++ {
					table.Insert(k, k)
					if k%3 == 0 {
						table.Lookup(k)
					}
					table.Delete(k)
				}
			}
		}()
		fmt.Printf("serving metrics on %s (/metrics, /debug/mccuckoo/stats, /debug/mccuckoo/events)\n", *metrics)
		log.Fatal(http.ListenAndServe(*metrics, tel.Handler()))
	}
}
