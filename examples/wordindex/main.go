// Wordindex: a bag-of-words term index over string keys, shaped like the
// paper's evaluation dataset (NYTimes DocWords: DocID–WordID pairs). It
// demonstrates the generic Map adapter: arbitrary comparable keys over the
// McCuckoo table, with the table acting as the indexing structure of §III.H
// while the entries live in a side arena.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"mccuckoo"
)

func main() {
	index, err := mccuckoo.NewMap[string, int](60_000, mccuckoo.StringHasher,
		mccuckoo.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}

	// Synthesize documents with a skewed vocabulary (real text is
	// Zipfian) and count term occurrences across the corpus.
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.3, 2, uint64(len(vocab)-1))
	const docs = 2000
	const wordsPerDoc = 120
	totalWords := 0
	for d := 0; d < docs; d++ {
		for w := 0; w < wordsPerDoc; w++ {
			term := fmt.Sprintf("%s-%d", vocab[zipf.Uint64()], rng.Intn(40))
			n, _ := index.Get(term)
			if err := index.Set(term, n+1); err != nil {
				log.Fatalf("doc %d: %v", d, err)
			}
			totalWords++
		}
	}

	fmt.Printf("indexed %d word occurrences, %d distinct terms, table load %.1f%%\n",
		totalWords, index.Len(), index.LoadRatio()*100)

	// Top terms by count.
	type tc struct {
		term  string
		count int
	}
	var all []tc
	index.Range(func(k string, v int) bool {
		all = append(all, tc{k, v})
		return true
	})
	sort.Slice(all, func(i, j int) bool { return all[i].count > all[j].count })
	fmt.Println("top terms:")
	for _, e := range all[:5] {
		fmt.Printf("  %-16s %6d\n", e.term, e.count)
	}

	// Point queries.
	for _, term := range []string{all[0].term, "no-such-term"} {
		if n, ok := index.Get(term); ok {
			fmt.Printf("count(%q) = %d\n", term, n)
		} else {
			fmt.Printf("count(%q): not in corpus\n", term)
		}
	}

	tr := index.Traffic()
	fmt.Printf("traffic: %d slow-memory reads, %d writes across %d operations\n",
		tr.OffChipReads, tr.OffChipWrites, int64(totalWords)*2)
}

var vocab = []string{
	"senate", "market", "mayor", "season", "budget", "coach", "museum",
	"editor", "police", "film", "garden", "energy", "campaign", "jury",
	"island", "theater", "broker", "voter", "tunnel", "harbor", "studio",
	"critic", "novel", "bridge", "judge", "signal", "yield", "merger",
}
