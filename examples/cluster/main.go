// Cluster: multi-copy McCuckoo across nodes. Three in-process wire servers
// form a cluster — each serves a sharded table wrapped in replication
// bookkeeping and subscribes to its peers' op logs — and a cluster client
// fans every key to R=2 replicas on a shared consistent-hash ring. One node
// is killed mid-workload: reads keep succeeding from the surviving replica
// of every key; then the node is restarted, catches up from the op-log
// stream, and all three nodes converge (their state digests agree with the
// replica sets). The same topology is served standalone by
// cmd/mcserved -peers.
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"mccuckoo"
	"mccuckoo/internal/cluster"
	"mccuckoo/internal/wire"
)

// node is one in-process cluster member: a replicated store, its server,
// and its peer-subscription loops.
type node struct {
	addr       string
	rep        *wire.Replicated
	srv        *wire.Server
	replicator *cluster.Replicator
}

func startNode(addr string, nodes []string) *node {
	table, err := mccuckoo.NewSharded(1<<16, 8, mccuckoo.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	rep := wire.NewReplicated(table, wire.ReplicaConfig{})
	srv, err := wire.NewServer(wire.Config{Store: rep})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	replicator, err := cluster.NewReplicator(rep, cluster.ReplicatorConfig{
		Self:     addr,
		Nodes:    nodes,
		Replicas: 2,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	replicator.Start()
	return &node{addr: addr, rep: rep, srv: srv, replicator: replicator}
}

func (n *node) stop() {
	n.replicator.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	n.srv.Shutdown(ctx)
	cancel()
}

func main() {
	// Fix the three addresses first so every node knows the full ring.
	addrs := make([]string, 3)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close() // the node re-binds the same port
	}
	nodes := make([]*node, 3)
	for i, addr := range addrs {
		nodes[i] = startNode(addr, addrs)
	}
	fmt.Printf("3-node cluster on %v, R=2 W=1\n\n", addrs)

	c, err := cluster.New(cluster.Config{Nodes: addrs, Replicas: 2, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	const keys = 5_000
	for k := uint64(1); k <= keys; k++ {
		if err := c.Put(k, k*10); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d keys, two copies each\n", keys)

	// Kill node 0 and keep reading: every key still has a live replica.
	nodes[0].stop()
	fmt.Printf("killed %s\n", addrs[0])
	misses := 0
	for k := uint64(1); k <= keys; k++ {
		v, found, err := c.Get(k)
		if err != nil || !found || v != k*10 {
			misses++
		}
	}
	fmt.Printf("read all %d keys with the node down: %d failures\n", keys, misses)

	// More writes while the node is down (W=1 keeps them available), then
	// restart it: the op-log catch-up replays what it missed.
	for k := uint64(keys + 1); k <= keys+1_000; k++ {
		if err := c.Put(k, k*10); err != nil {
			log.Fatal(err)
		}
	}
	nodes[0] = startNode(addrs[0], addrs)
	fmt.Printf("restarted %s, waiting for catch-up...\n", addrs[0])
	deadline := time.Now().Add(10 * time.Second)
	stable, last := 0, int64(-1)
	for stable < 5 { // applied count unchanged for 5 polls = caught up
		if time.Now().After(deadline) {
			log.Fatal("node did not converge")
		}
		time.Sleep(100 * time.Millisecond)
		if n := nodes[0].rep.ReplicaStats().EntriesApplied; n == last && n > 0 && nodes[0].replicator.MaxLag() == 0 {
			stable++
		} else {
			stable, last = 0, n
		}
	}
	misses = 0
	for k := uint64(1); k <= keys+1_000; k++ {
		v, found, err := c.Get(k)
		if err != nil || !found || v != k*10 {
			misses++
		}
	}
	m := c.MetricsSnapshot()
	fmt.Printf("caught up (%d entries replayed): all %d keys read back, %d failures\n",
		nodes[0].rep.ReplicaStats().EntriesApplied, keys+1_000, misses)
	fmt.Printf("node digests: %016x %016x %016x (each covers the keys that node owns)\n",
		nodes[0].rep.Digest(), nodes[1].rep.Digest(), nodes[2].rep.Digest())
	fmt.Printf("client: %d reads, %d read-repairs, %d quorum failures\n",
		m.Reads, m.Repairs, m.QuorumFailures)

	for _, n := range nodes {
		n.stop()
	}
}
