// Quickstart: the smallest useful McCuckoo program. Build a table, insert,
// look up, delete, and inspect what the multi-copy design did under the
// hood: how many redundant copies exist, how little off-chip traffic
// lookups cost, and how deletions avoid off-chip writes entirely.
package main

import (
	"fmt"
	"log"

	"mccuckoo"
)

func main() {
	// A table with ~30k buckets (3 subtables of ~10k). The stash is on
	// by default, so inserts never fail outright.
	table, err := mccuckoo.New(30_000, mccuckoo.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	// Fill to 80% load — far beyond where linear probing falls apart and
	// near the territory where standard cuckoo hashing starts thrashing.
	n := uint64(0.80 * float64(table.Capacity()))
	for k := uint64(1); k <= n; k++ {
		if res := table.Insert(k, k*10); res.Status == mccuckoo.Failed {
			log.Fatalf("insert %d failed", k)
		}
	}
	fmt.Printf("inserted %d items, load ratio %.1f%%\n", table.Len(), table.LoadRatio()*100)
	fmt.Printf("physical copies in table: %d (%.2fx redundancy)\n",
		table.Copies(), float64(table.Copies())/float64(table.Len()))
	fmt.Printf("on-chip counter array: %d bytes for %d buckets (2 bits each)\n",
		table.OnChipBytes(), table.Capacity())

	// Lookups.
	if v, ok := table.Lookup(123); ok {
		fmt.Printf("lookup(123) = %d\n", v)
	}
	before := table.Traffic()
	misses := 0
	for k := n + 1; k <= n+10_000; k++ {
		if _, ok := table.Lookup(k); !ok {
			misses++
		}
	}
	after := table.Traffic()
	fmt.Printf("%d negative lookups cost %d off-chip reads (%.3f per miss; a counter-less table pays 3.0)\n",
		misses, after.OffChipReads-before.OffChipReads,
		float64(after.OffChipReads-before.OffChipReads)/float64(misses))

	// Deletions reset counters only: zero off-chip writes.
	before = table.Traffic()
	for k := uint64(1); k <= 1000; k++ {
		table.Delete(k)
	}
	after = table.Traffic()
	fmt.Printf("1000 deletions cost %d off-chip writes (multi-copy deletion is counter-only)\n",
		after.OffChipWrites-before.OffChipWrites)

	fmt.Printf("final: %d items, %d in stash\n", table.Len(), table.StashLen())
}
