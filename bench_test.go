package mccuckoo_test

// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation. Each target runs the corresponding experiment from
// internal/bench at a reduced capacity (so `go test -bench=.` finishes in
// minutes) and reports the experiment's headline quantity via
// b.ReportMetric. The full-scale figures are produced by cmd/mcbench; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
//
// The second half holds per-operation microbenchmarks of the public API,
// the numbers a downstream user cares about when adopting the library.

import (
	"fmt"
	"testing"

	"mccuckoo"

	"mccuckoo/internal/bench"
	"mccuckoo/internal/hashutil"
)

// benchOptions returns the reduced-scale experiment options used by the
// figure benchmarks.
func benchOptions() bench.Options {
	return bench.Options{Capacity: 9 * 1024, MaxLoop: 500, Runs: 1, Seed: 1, Queries: 5000}
}

// metricAt extracts series `name` at x from a rendered result table.
func metricAt(b *testing.B, res *bench.Result, name string, x float64) float64 {
	b.Helper()
	if res.Table == nil {
		b.Fatalf("result %s has no series table", res.ID)
	}
	for _, s := range res.Table.Series {
		if s.Name == name {
			if y, ok := s.At(x); ok {
				return y
			}
			b.Fatalf("series %q has no point at %g", name, x)
		}
	}
	b.Fatalf("series %q not found in %s", name, res.ID)
	return 0
}

func runExperiment(b *testing.B, run func(bench.Options) ([]*bench.Result, error)) []*bench.Result {
	b.Helper()
	var results []*bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		results, err = run(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	return results
}

// BenchmarkFig9KickOuts regenerates Fig. 9 and reports kick-outs per
// insertion at 85% load for the ternary schemes.
func BenchmarkFig9KickOuts(b *testing.B) {
	res := runExperiment(b, bench.Fig9)
	b.ReportMetric(metricAt(b, res[0], "Cuckoo", 85), "cuckoo-kicks@85%")
	b.ReportMetric(metricAt(b, res[0], "McCuckoo", 85), "mccuckoo-kicks@85%")
}

// BenchmarkFig10MemoryAccess regenerates Fig. 10 and reports off-chip reads
// and writes per insertion at 85% load.
func BenchmarkFig10MemoryAccess(b *testing.B) {
	res := runExperiment(b, bench.Fig10)
	b.ReportMetric(metricAt(b, res[0], "Cuckoo", 85), "cuckoo-reads@85%")
	b.ReportMetric(metricAt(b, res[0], "McCuckoo", 85), "mccuckoo-reads@85%")
	b.ReportMetric(metricAt(b, res[1], "McCuckoo", 85), "mccuckoo-writes@85%")
}

// BenchmarkTableIFirstCollision regenerates Table I and reports the first
// collision loads.
func BenchmarkTableIFirstCollision(b *testing.B) {
	res := runExperiment(b, bench.TableI)
	for _, row := range res[0].Rows[1:] {
		var v float64
		if _, err := fmt.Sscanf(row[1], "%f%%", &v); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v, row[0]+"-first-collision-%")
	}
}

// BenchmarkFig11FirstFailure regenerates Fig. 11 and reports the failure
// load at maxloop 500.
func BenchmarkFig11FirstFailure(b *testing.B) {
	res := runExperiment(b, bench.Fig11)
	b.ReportMetric(metricAt(b, res[0], "Cuckoo", 500), "cuckoo-fail-load-%")
	b.ReportMetric(metricAt(b, res[0], "McCuckoo", 500), "mccuckoo-fail-load-%")
	b.ReportMetric(metricAt(b, res[0], "B-McCuckoo", 500), "bmccuckoo-fail-load-%")
}

// BenchmarkFig12LookupHit regenerates Fig. 12 and reports reads per positive
// lookup at 85% load.
func BenchmarkFig12LookupHit(b *testing.B) {
	res := runExperiment(b, bench.Fig12)
	b.ReportMetric(metricAt(b, res[0], "Cuckoo", 85), "cuckoo-reads@85%")
	b.ReportMetric(metricAt(b, res[0], "McCuckoo", 85), "mccuckoo-reads@85%")
}

// BenchmarkFig13LookupMiss regenerates Fig. 13 and reports reads per
// negative lookup at 50% load — the counters' Bloom-filter effect.
func BenchmarkFig13LookupMiss(b *testing.B) {
	res := runExperiment(b, bench.Fig13)
	b.ReportMetric(metricAt(b, res[0], "Cuckoo", 50), "cuckoo-reads@50%")
	b.ReportMetric(metricAt(b, res[0], "McCuckoo", 50), "mccuckoo-reads@50%")
}

// BenchmarkFig14Delete regenerates Fig. 14 and reports reads per deletion at
// 50% load.
func BenchmarkFig14Delete(b *testing.B) {
	res := runExperiment(b, bench.Fig14)
	b.ReportMetric(metricAt(b, res[0], "Cuckoo", 50), "cuckoo-reads@50%")
	b.ReportMetric(metricAt(b, res[0], "McCuckoo", 50), "mccuckoo-reads@50%")
}

// BenchmarkTableIIStash regenerates Table II and reports the stash share at
// the top load with maxloop 500.
func BenchmarkTableIIStash(b *testing.B) {
	res := runExperiment(b, bench.TableII)
	last := res[0].Rows[len(res[0].Rows)-1]
	var share float64
	if _, err := fmt.Sscanf(last[3], "%f%%", &share); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(share, "stash-share@93%-%")
}

// BenchmarkTableIIIStash regenerates Table III and reports the stash share
// at 100% load with maxloop 500.
func BenchmarkTableIIIStash(b *testing.B) {
	res := runExperiment(b, bench.TableIII)
	last := res[0].Rows[len(res[0].Rows)-1]
	var share float64
	if _, err := fmt.Sscanf(last[3], "%f%%", &share); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(share, "stash-share@100%-%")
}

// BenchmarkFig15InsertLatency regenerates Fig. 15 and reports the modelled
// insertion latency at 80% load (8-byte records).
func BenchmarkFig15InsertLatency(b *testing.B) {
	res := runExperiment(b, bench.Fig15)
	b.ReportMetric(metricAt(b, res[0], "Cuckoo", 80), "cuckoo-ns@80%")
	b.ReportMetric(metricAt(b, res[0], "McCuckoo", 80), "mccuckoo-ns@80%")
}

// BenchmarkFig16LookupLatency regenerates Fig. 16 and reports the modelled
// negative-lookup latency at 128-byte records, where skipping bucket reads
// pays most.
func BenchmarkFig16LookupLatency(b *testing.B) {
	res := runExperiment(b, bench.Fig16)
	b.ReportMetric(metricAt(b, res[1], "Cuckoo", 128), "cuckoo-miss-ns@128B")
	b.ReportMetric(metricAt(b, res[1], "McCuckoo", 128), "mccuckoo-miss-ns@128B")
}

// BenchmarkAblationResolver regenerates the resolver ablation.
func BenchmarkAblationResolver(b *testing.B) {
	res := runExperiment(b, bench.AblationResolver)
	b.ReportMetric(metricAt(b, res[0], "McCuckoo/random-walk", 90), "rw-kicks@90%")
	b.ReportMetric(metricAt(b, res[0], "McCuckoo/min-counter", 90), "mc-kicks@90%")
}

// BenchmarkAblationPrescreen regenerates the pre-screen ablation.
func BenchmarkAblationPrescreen(b *testing.B) {
	res := runExperiment(b, bench.AblationPrescreen)
	b.ReportMetric(metricAt(b, res[0], "miss/prescreen-on", 50), "on-reads@50%")
	b.ReportMetric(metricAt(b, res[0], "miss/prescreen-off", 50), "off-reads@50%")
}

// BenchmarkAblationDeletion regenerates the deletion-mode ablation.
func BenchmarkAblationDeletion(b *testing.B) {
	res := runExperiment(b, bench.AblationDeletion)
	if len(res[0].Rows) != 3 {
		b.Fatalf("unexpected rows: %d", len(res[0].Rows))
	}
	var reset, tomb float64
	if _, err := fmt.Sscanf(res[0].Rows[1][3], "%f", &reset); err != nil {
		b.Fatal(err)
	}
	if _, err := fmt.Sscanf(res[0].Rows[2][3], "%f", &tomb); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(reset, "reset-miss-reads")
	b.ReportMetric(tomb, "tombstone-miss-reads")
}

// --- per-operation microbenchmarks of the public API ---

func newBenchTable(b *testing.B, load float64) (*mccuckoo.Table, []uint64) {
	b.Helper()
	tab, err := mccuckoo.New(3*65536, mccuckoo.WithSeed(7), mccuckoo.WithUniqueKeys())
	if err != nil {
		b.Fatal(err)
	}
	n := int(load * float64(tab.Capacity()))
	s := uint64(9)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&s)
		if tab.Insert(keys[i], keys[i]).Status == mccuckoo.Failed {
			b.Fatal("fill failed")
		}
	}
	return tab, keys
}

func BenchmarkInsert(b *testing.B) {
	for _, load := range []float64{0.5, 0.85} {
		b.Run(fmt.Sprintf("load=%.0f%%", load*100), func(b *testing.B) {
			tab, err := mccuckoo.New(3*65536, mccuckoo.WithSeed(7), mccuckoo.WithUniqueKeys())
			if err != nil {
				b.Fatal(err)
			}
			n := int(load * float64(tab.Capacity()))
			s := uint64(9)
			for i := 0; i < n; i++ {
				tab.Insert(hashutil.SplitMix64(&s), 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := hashutil.SplitMix64(&s)
				tab.Insert(k, k)
				b.StopTimer()
				tab.Delete(k)
				b.StartTimer()
			}
		})
	}
}

func BenchmarkLookupHit(b *testing.B) {
	for _, load := range []float64{0.5, 0.85} {
		b.Run(fmt.Sprintf("load=%.0f%%", load*100), func(b *testing.B) {
			tab, keys := newBenchTable(b, load)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := tab.Lookup(keys[i%len(keys)]); !ok {
					b.Fatal("lost key")
				}
			}
		})
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	tab, _ := newBenchTable(b, 0.85)
	s := uint64(0xdead)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(hashutil.SplitMix64(&s))
	}
}

func BenchmarkMapString(b *testing.B) {
	m, err := mccuckoo.NewMap[string, int](3*65536, mccuckoo.StringHasher, mccuckoo.WithSeed(5))
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 50000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%08d", i)
		if err := m.Set(keys[i], i); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.Get(keys[i%len(keys)]); !ok {
			b.Fatal("lost key")
		}
	}
}

// BenchmarkAblationBaselineResolver regenerates the baseline-resolver
// ablation (BFS vs random walk vs MinCounter).
func BenchmarkAblationBaselineResolver(b *testing.B) {
	res := runExperiment(b, bench.AblationBaselineResolver)
	b.ReportMetric(metricAt(b, res[0], "Cuckoo/bfs", 85), "bfs-kicks@85%")
	b.ReportMetric(metricAt(b, res[0], "Cuckoo/random-walk", 85), "rw-kicks@85%")
}

// BenchmarkExtDistribution regenerates the latency-distribution extension
// and reports the p99 insertion latencies at 85% load.
func BenchmarkExtDistribution(b *testing.B) {
	res := runExperiment(b, bench.ExtDistribution)
	var cu, mc float64
	for _, row := range res[0].Rows[1:] {
		if row[1] != "insert" {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(row[5], "%f", &v); err != nil {
			b.Fatal(err)
		}
		switch row[0] {
		case "Cuckoo":
			cu = v
		case "McCuckoo":
			mc = v
		}
	}
	b.ReportMetric(cu, "cuckoo-insert-p99-ns")
	b.ReportMetric(mc, "mccuckoo-insert-p99-ns")
}

// BenchmarkAblationHashFunctions regenerates the d-sweep ablation.
func BenchmarkAblationHashFunctions(b *testing.B) {
	res := runExperiment(b, bench.AblationHashFunctions)
	for _, row := range res[0].Rows[1:] {
		var v float64
		if _, err := fmt.Sscanf(row[2], "%f%%", &v); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v, "d"+row[0]+"-fail-load-%")
	}
}

// BenchmarkExtOnChipBudget regenerates the on-chip budget extension and
// reports miss reads at equal memory.
func BenchmarkExtOnChipBudget(b *testing.B) {
	res := runExperiment(b, bench.ExtOnChipBudget)
	for _, row := range res[0].Rows[1:] {
		var v float64
		if _, err := fmt.Sscanf(row[3], "%f", &v); err != nil {
			b.Fatal(err)
		}
		switch row[0] {
		case "McCuckoo (2-bit counters)":
			b.ReportMetric(v, "mccuckoo-miss-reads")
		case "Cuckoo+CBF equal bits":
			b.ReportMetric(v, "cbf-equal-miss-reads")
		}
	}
}

// BenchmarkConcurrentReaders measures parallel lookup throughput through
// the one-writer-many-readers wrapper at increasing reader counts.
func BenchmarkConcurrentReaders(b *testing.B) {
	for _, readers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			inner, err := mccuckoo.New(3*65536, mccuckoo.WithSeed(7), mccuckoo.WithUniqueKeys())
			if err != nil {
				b.Fatal(err)
			}
			n := int(0.8 * float64(inner.Capacity()))
			s := uint64(9)
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = hashutil.SplitMix64(&s)
				inner.Insert(keys[i], keys[i])
			}
			c := mccuckoo.NewConcurrent(inner)
			b.ResetTimer()
			b.SetParallelism(readers)
			b.RunParallel(func(pb *testing.PB) {
				ls := hashutil.Mix64(uint64(readers))
				for pb.Next() {
					k := keys[hashutil.SplitMix64(&ls)%uint64(len(keys))]
					if _, ok := c.Lookup(k); !ok {
						b.Fail()
					}
				}
			})
		})
	}
}

// BenchmarkPathwiseVsInPlace compares the two insertion protocols at high
// load: the in-place walk versus two-phase path execution.
func BenchmarkPathwiseVsInPlace(b *testing.B) {
	for _, pathwise := range []bool{false, true} {
		name := "in-place"
		if pathwise {
			name = "pathwise"
		}
		b.Run(name, func(b *testing.B) {
			tab, err := mccuckoo.New(3*32768, mccuckoo.WithSeed(11), mccuckoo.WithUniqueKeys())
			if err != nil {
				b.Fatal(err)
			}
			n := int(0.88 * float64(tab.Capacity()))
			s := uint64(13)
			for i := 0; i < n; i++ {
				tab.Insert(hashutil.SplitMix64(&s), 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := hashutil.SplitMix64(&s)
				if pathwise {
					tab.InsertPathwise(k, k)
				} else {
					tab.Insert(k, k)
				}
				b.StopTimer()
				tab.Delete(k)
				b.StartTimer()
			}
		})
	}
}

// BenchmarkExtMixedWorkloads regenerates the YCSB-style mix extension and
// reports modelled throughput for the churn mix.
func BenchmarkExtMixedWorkloads(b *testing.B) {
	res := runExperiment(b, bench.ExtMixedWorkloads)
	for _, row := range res[0].Rows[1:] {
		if row[0] != "D: churn 45/45/10" {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(row[4], "%f", &v); err != nil {
			b.Fatal(err)
		}
		switch row[1] {
		case "Cuckoo":
			b.ReportMetric(v, "cuckoo-churn-mops")
		case "McCuckoo":
			b.ReportMetric(v, "mccuckoo-churn-mops")
		}
	}
}

// BenchmarkExtPipeline regenerates the pipelined-platform extension and
// reports depth-8 miss throughput.
func BenchmarkExtPipeline(b *testing.B) {
	res := runExperiment(b, bench.ExtPipeline)
	b.ReportMetric(metricAt(b, res[0], "Cuckoo", 8), "cuckoo-miss-mops@d8")
	b.ReportMetric(metricAt(b, res[0], "McCuckoo", 8), "mccuckoo-miss-mops@d8")
}

// BenchmarkShardedVsGlobalLock runs the concurrent throughput sweep at
// reduced scale — the goroutines × shards matrix of mcbench's concurrent
// mode — and reports wall-clock Mops/s for every variant at every goroutine
// count. The recorded baseline for this matrix lives in BENCH_shard.json.
func BenchmarkShardedVsGlobalLock(b *testing.B) {
	o := bench.DefaultConcurrentOptions()
	o.Capacity = 3 * 16384
	o.Ops = 150_000
	o.Goroutines = []int{1, 4, 8}
	o.Shards = []int{4, 16}
	var results []*bench.Result
	for i := 0; i < b.N; i++ {
		var err error
		results, err = bench.ConcurrentSweep(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range results[0].Table.Series {
		for _, g := range o.Goroutines {
			b.ReportMetric(metricAt(b, results[0], s.Name, float64(g)),
				fmt.Sprintf("%s@%dg-Mops", s.Name, g))
		}
	}
}
