package mccuckoo

import (
	"io"
	"time"

	"mccuckoo/internal/core"
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/telemetry"
)

// Table is the single-slot McCuckoo hash table: d hash functions, one item
// per bucket, a 2-bit copy counter per bucket (for the default d = 3), an
// off-chip stash with flag pre-screening. Keys and values are 64-bit; use
// Map for arbitrary key types.
//
// A Table is not safe for concurrent use; wrap it with NewConcurrent for
// one-writer-many-readers access.
type Table struct {
	inner *core.Table
	// sink is the attached telemetry collector; nil means telemetry is off
	// and every operation takes the plain path (one nil check, no
	// allocation).
	sink *telemetry.Sink
}

// New creates a single-slot table with roughly `capacity` buckets in total
// (rounded up to a multiple of the hash-function count).
func New(capacity int, opts ...Option) (*Table, error) {
	cfg, tel, err := buildConfig(capacity, false, opts)
	if err != nil {
		return nil, err
	}
	cfg.Slots = 1
	inner, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{inner: inner}
	t.attachTelemetry(tel)
	return t, nil
}

// attachTelemetry wires tel into the table (no-op for nil). The gauges of a
// single-writer table are pushed, not pulled — see SampleTelemetry.
func (t *Table) attachTelemetry(tel *Telemetry) {
	if tel == nil {
		return
	}
	t.sink = tel.sink
	t.SampleTelemetry()
}

// offChip returns the table's lifetime off-chip access count; deltas around
// an operation give that operation's off-chip cost. Single-writer, so
// reading the meter between operations is safe.
func (t *Table) offChip() int64 {
	m := t.inner.Meter()
	return m.OffChipReads + m.OffChipWrites
}

// Insert stores key/value, replacing the value if key is already present
// (unless WithUniqueKeys was set).
func (t *Table) Insert(key, value uint64) InsertResult {
	if t.sink == nil {
		return fromOutcome(t.inner.Insert(key, value))
	}
	before, start := t.offChip(), time.Now()
	o := t.inner.Insert(key, value)
	t.sink.Record(telemetry.Event{
		Op: telemetry.OpInsert, Status: uint8(o.Status), Shard: -1,
		Kicks: int32(o.Kicks), OffChip: t.offChip() - before,
		Nanos: time.Since(start).Nanoseconds(), KeyHash: hashutil.Mix64(key),
	})
	return fromOutcome(o)
}

// Lookup returns the value stored for key.
func (t *Table) Lookup(key uint64) (uint64, bool) {
	if t.sink == nil {
		return t.inner.Lookup(key)
	}
	before, start := t.offChip(), time.Now()
	v, ok := t.inner.Lookup(key)
	t.sink.Record(telemetry.Event{
		Op: telemetry.OpLookup, Hit: ok, Shard: -1,
		OffChip: t.offChip() - before,
		Nanos:   time.Since(start).Nanoseconds(), KeyHash: hashutil.Mix64(key),
	})
	return v, ok
}

// Delete removes key, reporting whether it was present. Deletion resets
// counters only — it performs zero off-chip writes.
func (t *Table) Delete(key uint64) bool {
	if t.sink == nil {
		return t.inner.Delete(key)
	}
	before, start := t.offChip(), time.Now()
	ok := t.inner.Delete(key)
	t.sink.Record(telemetry.Event{
		Op: telemetry.OpDelete, Hit: ok, Shard: -1,
		OffChip: t.offChip() - before,
		Nanos:   time.Since(start).Nanoseconds(), KeyHash: hashutil.Mix64(key),
	})
	return ok
}

// Len returns the number of live items, stash included.
func (t *Table) Len() int { return t.inner.Len() }

// Capacity returns the total bucket count.
func (t *Table) Capacity() int { return t.inner.Capacity() }

// LoadRatio returns Len()/Capacity().
func (t *Table) LoadRatio() float64 { return t.inner.LoadRatio() }

// StashLen returns the current stash population.
func (t *Table) StashLen() int { return t.inner.StashLen() }

// Copies returns the number of live physical copies in the main table; the
// surplus over Len()-StashLen() is the redundancy maintained for placement
// flexibility.
func (t *Table) Copies() int { return t.inner.Copies() }

// OnChipBytes returns the size of the counter array — the fast-memory
// footprint the scheme requires (2 bits per bucket for d = 3).
func (t *Table) OnChipBytes() int { return t.inner.OnChipBytes() }

// RefreshStashFlags resynchronizes the stash flags after deletions by
// clearing them and reinserting every stashed item; it returns how many
// items moved back into the main table.
func (t *Table) RefreshStashFlags() int { return t.inner.RefreshStashFlags() }

// Traffic returns the accumulated memory-access counts.
func (t *Table) Traffic() Traffic {
	m := t.inner.Meter().Snapshot()
	return Traffic{m.OffChipReads, m.OffChipWrites, m.OnChipReads, m.OnChipWrites}
}

// Stats returns lifetime operation counts.
func (t *Table) Stats() Stats { return fromStats(t.inner.Stats()) }

// Blocked is the multi-slot McCuckoo table (B-McCuckoo): l slots per bucket
// with one counter per slot and per-copy slot hints. It reaches load ratios
// close to 100% (Table III operates at 99–100%).
type Blocked struct {
	inner *core.BlockedTable
	// sink is the attached telemetry collector; nil means telemetry is off.
	sink *telemetry.Sink
}

// NewBlocked creates a blocked table with roughly `capacity` slots in total.
func NewBlocked(capacity int, opts ...Option) (*Blocked, error) {
	cfg, tel, err := buildConfig(capacity, true, opts)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewBlocked(cfg)
	if err != nil {
		return nil, err
	}
	t := &Blocked{inner: inner}
	t.attachTelemetry(tel)
	return t, nil
}

// attachTelemetry wires tel into the blocked table (no-op for nil).
func (t *Blocked) attachTelemetry(tel *Telemetry) {
	if tel == nil {
		return
	}
	t.sink = tel.sink
	t.SampleTelemetry()
}

// offChip returns the lifetime off-chip access count (see Table.offChip).
func (t *Blocked) offChip() int64 {
	m := t.inner.Meter()
	return m.OffChipReads + m.OffChipWrites
}

// Insert stores key/value, replacing the value if key is already present
// (unless WithUniqueKeys was set).
func (t *Blocked) Insert(key, value uint64) InsertResult {
	if t.sink == nil {
		return fromOutcome(t.inner.Insert(key, value))
	}
	before, start := t.offChip(), time.Now()
	o := t.inner.Insert(key, value)
	t.sink.Record(telemetry.Event{
		Op: telemetry.OpInsert, Status: uint8(o.Status), Shard: -1,
		Kicks: int32(o.Kicks), OffChip: t.offChip() - before,
		Nanos: time.Since(start).Nanoseconds(), KeyHash: hashutil.Mix64(key),
	})
	return fromOutcome(o)
}

// Lookup returns the value stored for key.
func (t *Blocked) Lookup(key uint64) (uint64, bool) {
	if t.sink == nil {
		return t.inner.Lookup(key)
	}
	before, start := t.offChip(), time.Now()
	v, ok := t.inner.Lookup(key)
	t.sink.Record(telemetry.Event{
		Op: telemetry.OpLookup, Hit: ok, Shard: -1,
		OffChip: t.offChip() - before,
		Nanos:   time.Since(start).Nanoseconds(), KeyHash: hashutil.Mix64(key),
	})
	return v, ok
}

// Delete removes key with zero off-chip writes.
func (t *Blocked) Delete(key uint64) bool {
	if t.sink == nil {
		return t.inner.Delete(key)
	}
	before, start := t.offChip(), time.Now()
	ok := t.inner.Delete(key)
	t.sink.Record(telemetry.Event{
		Op: telemetry.OpDelete, Hit: ok, Shard: -1,
		OffChip: t.offChip() - before,
		Nanos:   time.Since(start).Nanoseconds(), KeyHash: hashutil.Mix64(key),
	})
	return ok
}

// Len returns the number of live items, stash included.
func (t *Blocked) Len() int { return t.inner.Len() }

// Capacity returns the total slot count.
func (t *Blocked) Capacity() int { return t.inner.Capacity() }

// LoadRatio returns Len()/Capacity().
func (t *Blocked) LoadRatio() float64 { return t.inner.LoadRatio() }

// StashLen returns the current stash population.
func (t *Blocked) StashLen() int { return t.inner.StashLen() }

// Copies returns the number of live physical copies in the main table.
func (t *Blocked) Copies() int { return t.inner.Copies() }

// OnChipBytes returns the size of the counter array.
func (t *Blocked) OnChipBytes() int { return t.inner.OnChipBytes() }

// RefreshStashFlags resynchronizes the stash flags after deletions.
func (t *Blocked) RefreshStashFlags() int { return t.inner.RefreshStashFlags() }

// Traffic returns the accumulated memory-access counts.
func (t *Blocked) Traffic() Traffic {
	m := t.inner.Meter().Snapshot()
	return Traffic{m.OffChipReads, m.OffChipWrites, m.OnChipReads, m.OnChipWrites}
}

// Stats returns lifetime operation counts.
func (t *Blocked) Stats() Stats { return fromStats(t.inner.Stats()) }

// InsertPathwise inserts using two-phase cuckoo-path execution at slot
// granularity, exactly as Table.InsertPathwise.
func (t *Blocked) InsertPathwise(key, value uint64) InsertResult {
	return fromOutcome(t.inner.InsertPathwise(key, value))
}

// Concurrent provides one-writer-many-readers access over a Table or
// Blocked (§III.H): lookups run in parallel, mutations serialize.
type Concurrent struct {
	inner *core.Concurrent
}

// SingleWriter is the constraint NewConcurrent accepts: exactly the table
// kinds that are NOT yet safe for concurrent use. Wrapping an
// already-thread-safe store (Sharded, or a Concurrent itself) would stack a
// redundant lock on top of its internal synchronization, so those kinds are
// rejected at compile time — `NewConcurrent(sharded)` does not build.
type SingleWriter interface {
	*Table | *Blocked
}

// NewConcurrent wraps t for concurrent use; t must not be used directly
// afterwards. t is the result of New or NewBlocked. The SingleWriter
// constraint makes wrapping a thread-safe kind a compile error rather than
// a silent double-locking bug.
func NewConcurrent[T SingleWriter](t T) *Concurrent {
	switch v := any(t).(type) {
	case *Table:
		return &Concurrent{inner: core.NewConcurrent(v.inner)}
	case *Blocked:
		return &Concurrent{inner: core.NewConcurrent(v.inner)}
	default:
		panic("mccuckoo: unreachable")
	}
}

// Insert stores key/value under the write lock.
func (c *Concurrent) Insert(key, value uint64) InsertResult {
	return fromOutcome(c.inner.Insert(key, value))
}

// Lookup runs under a shared read lock; any number proceed in parallel.
func (c *Concurrent) Lookup(key uint64) (uint64, bool) { return c.inner.Lookup(key) }

// Delete removes key under the write lock.
func (c *Concurrent) Delete(key uint64) bool { return c.inner.Delete(key) }

// Len returns the number of live items.
func (c *Concurrent) Len() int { return c.inner.Len() }

// Capacity returns the wrapped table's total slot count.
func (c *Concurrent) Capacity() int { return c.inner.Capacity() }

// LoadRatio returns the current load ratio.
func (c *Concurrent) LoadRatio() float64 { return c.inner.LoadRatio() }

// StashLen returns the wrapped table's stash population.
func (c *Concurrent) StashLen() int { return c.inner.StashLen() }

// Stats returns merged operation counts.
func (c *Concurrent) Stats() Stats { return fromStats(c.inner.Stats()) }

// Compile-time checks that the public Status values mirror internal ones.
var _ = [1]struct{}{}[Status(kv.Placed)-Placed]
var _ = [1]struct{}{}[Status(kv.Updated)-Updated]
var _ = [1]struct{}{}[Status(kv.Stashed)-Stashed]
var _ = [1]struct{}{}[Status(kv.Failed)-Failed]

// Grow rebuilds the table with a fresh hash family and growFactor times the
// capacity (>= 1; Grow(1) rehashes in place and re-absorbs the stash). This
// is the expensive operation the stash exists to avoid; use it when the
// table must actually get bigger.
func (t *Table) Grow(growFactor float64) error { return t.inner.Grow(growFactor) }

// InsertPathwise inserts using two-phase cuckoo-path execution: the
// relocation path is discovered first, then applied one bounded step at a
// time, with the table in a fully consistent state between steps.
// Functionally equivalent to Insert; Concurrent.InsertPathwise exploits the
// bounded steps to interleave readers during long relocation chains.
func (t *Table) InsertPathwise(key, value uint64) InsertResult {
	return fromOutcome(t.inner.InsertPathwise(key, value))
}

// WriteTo serializes the table as a versioned binary snapshot (implements
// io.WriterTo). Load restores it. The snapshot captures the complete
// logical state including the stash and the traffic meter; only the
// random-walk RNG is reseeded deterministically on load.
func (t *Table) WriteTo(w io.Writer) (int64, error) { return t.inner.WriteTo(w) }

// Load restores a single-slot table from a snapshot written by
// Table.WriteTo. The snapshot's configuration (hash functions, seed, stash,
// deletion mode, ...) travels with it, so structural options are ignored
// here; WithTelemetry attaches a collector to the restored table and counts
// a rejected (corrupt) snapshot in its corrupt-load counter.
func Load(r io.Reader, opts ...Option) (*Table, error) {
	tel, err := loadOptions(opts)
	if err != nil {
		return nil, err
	}
	inner, err := core.Load(r)
	if err != nil {
		return nil, recordCorrupt(tel, err)
	}
	t := &Table{inner: inner}
	t.attachTelemetry(tel)
	return t, nil
}

// Grow rebuilds the blocked table, exactly as Table.Grow.
func (t *Blocked) Grow(growFactor float64) error { return t.inner.Grow(growFactor) }

// WriteTo serializes the blocked table (implements io.WriterTo); LoadBlocked
// restores it.
func (t *Blocked) WriteTo(w io.Writer) (int64, error) { return t.inner.WriteTo(w) }

// LoadBlocked restores a blocked table from a snapshot written by
// Blocked.WriteTo. Options behave as in Load.
func LoadBlocked(r io.Reader, opts ...Option) (*Blocked, error) {
	tel, err := loadOptions(opts)
	if err != nil {
		return nil, err
	}
	inner, err := core.LoadBlocked(r)
	if err != nil {
		return nil, recordCorrupt(tel, err)
	}
	t := &Blocked{inner: inner}
	t.attachTelemetry(tel)
	return t, nil
}

// InsertPathwise inserts with bounded writer critical sections: the cuckoo
// path executes one move at a time, releasing the write lock between moves
// so readers interleave even during long relocation chains. Works for both
// wrapped table kinds. Requires a single writer goroutine, like Insert and
// Delete.
func (c *Concurrent) InsertPathwise(key, value uint64) InsertResult {
	return fromOutcome(c.inner.InsertPathwise(key, value))
}

// Range calls fn for every distinct live item (stash included) until fn
// returns false. Items with multiple copies are reported once. Iteration
// order is unspecified.
func (t *Table) Range(fn func(key, value uint64) bool) { t.inner.Range(fn) }

// CopyHistogram returns how many items currently have 1, 2, ..., d copies
// (index 0 unused): the redundancy distribution that defers collisions.
func (t *Table) CopyHistogram() []int { return t.inner.CopyHistogram() }

// Range calls fn for every distinct live item of the blocked table.
func (t *Blocked) Range(fn func(key, value uint64) bool) { t.inner.Range(fn) }

// CopyHistogram returns the blocked table's redundancy distribution.
func (t *Blocked) CopyHistogram() []int { return t.inner.CopyHistogram() }

// StashFlagDensity returns the fraction of buckets whose stash flag is set —
// the false-positive pressure on the stash pre-screen (a set flag forces
// every negative lookup through that bucket to also probe the stash).
func (t *Table) StashFlagDensity() float64 { return t.inner.StashFlagDensity() }

// StashFlagDensity returns the fraction of the blocked table's buckets whose
// stash flag is set; see Table.StashFlagDensity.
func (t *Blocked) StashFlagDensity() float64 { return t.inner.StashFlagDensity() }
