// Package hotpathalloc checks that functions annotated //mcvet:hotpath
// contain no heap-allocation sites. The disabled-telemetry per-op paths
// (Insert/Lookup/Delete, locateCopies/findCopies, the shard batched paths)
// are contractually zero-alloc — PR 3 fixed a locateCopies heap escape that
// a runtime assertion (TestDisabledPathZeroAlloc) now guards; this analyzer
// catches the same regression class at CI time, before a benchmark ever
// runs, and in paths the runtime test does not sample.
//
// Flagged inside hot-path functions:
//
//   - make, new, and &T{} composite-literal escapes
//   - slice or map composite literals
//   - append, unless the destination provably derives from a fixed-size
//     array (the caller-stack-buffer idiom: tables := append(buf[:0], ...))
//   - calls into package fmt, and any call through a variadic ...interface
//     parameter (the argument slice allocates)
//   - interface boxing: passing or converting a non-pointer-shaped,
//     non-constant value to an interface type
//   - closures (func literals) and go statements
//   - string concatenation and string<->[]byte conversions
//
// Arguments feeding a panic call are exempt — that is the crash path.
// Intentional allocations (e.g. a sync.Pool miss growing its buffer) are
// annotated //mcvet:allow hotpathalloc <reason>.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"mccuckoo/internal/analysis"
)

// Analyzer is the hotpathalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "no heap allocations in //mcvet:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.Dirs.FuncHas(fn, "hotpath") {
				continue
			}
			c := &checker{pass: pass, arrayBacked: arrayBackedVars(pass, fn)}
			c.walk(fn.Body)
		}
	}
	return nil
}

type checker struct {
	pass        *analysis.Pass
	arrayBacked map[types.Object]bool
}

// walk visits the function body, skipping the arguments of panic calls
// (allocation on the crash path is moot — the program is going down).
func (c *checker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(c.pass, n.Fun, "panic") {
				return false
			}
			c.checkCall(n)
		case *ast.FuncLit:
			c.pass.Reportf(n.Pos(), "closure allocates in hot path")
			return false
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "go statement allocates a goroutine in hot path")
		case *ast.CompositeLit:
			switch c.typeOf(n).Underlying().(type) {
			case *types.Slice:
				c.pass.Reportf(n.Pos(), "slice literal allocates in hot path")
			case *types.Map:
				c.pass.Reportf(n.Pos(), "map literal allocates in hot path")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, lit := n.X.(*ast.CompositeLit); lit {
					c.pass.Reportf(n.Pos(), "&composite literal escapes to the heap in hot path")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if b, ok := c.typeOf(n).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					c.pass.Reportf(n.Pos(), "string concatenation allocates in hot path")
				}
			}
		}
		return true
	})
}

func (c *checker) checkCall(call *ast.CallExpr) {
	switch {
	case isBuiltin(c.pass, call.Fun, "make"):
		c.pass.Reportf(call.Pos(), "make allocates in hot path")
		return
	case isBuiltin(c.pass, call.Fun, "new"):
		c.pass.Reportf(call.Pos(), "new allocates in hot path")
		return
	case isBuiltin(c.pass, call.Fun, "append"):
		if len(call.Args) > 0 && !c.isArrayBacked(call.Args[0]) {
			c.pass.Reportf(call.Pos(), "append may grow and allocate in hot path (destination is not a fixed-size array buffer)")
		}
		return
	}

	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion. Interface targets box; string<->[]byte copies.
		c.checkConversion(call, tv.Type)
		return
	}
	if pkgOf(c.pass, call.Fun) == "fmt" {
		c.pass.Reportf(call.Pos(), "fmt call allocates in hot path")
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	c.checkBoxing(call, sig)
}

// checkBoxing flags arguments whose passage converts a concrete value to an
// interface parameter. Pointer-shaped values (pointers, maps, chans, funcs)
// fit the interface data word and do not allocate; constants are materialized
// in static data by the compiler.
func (c *checker) checkBoxing(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			sl, ok := last.(*types.Slice)
			if !ok {
				continue
			}
			pt = sl.Elem()
			if types.IsInterface(pt) && !isEllipsisCall(call) {
				c.pass.Reportf(arg.Pos(), "variadic interface argument allocates in hot path")
				continue
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		c.checkBoxedValue(arg)
	}
}

func (c *checker) checkConversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	if types.IsInterface(target.Underlying()) {
		c.checkBoxedValue(arg)
		return
	}
	from := c.typeOf(arg)
	if isString(target) && isByteSlice(from) || isByteSlice(target) && isString(from) {
		c.pass.Reportf(call.Pos(), "string/[]byte conversion copies and allocates in hot path")
	}
}

func (c *checker) checkBoxedValue(arg ast.Expr) {
	tv := c.pass.TypesInfo.Types[arg]
	if tv.Value != nil || tv.IsNil() {
		return // constants and nil live in static data
	}
	if tv.Type == nil || types.IsInterface(tv.Type) || pointerShaped(tv.Type) {
		return
	}
	c.pass.Reportf(arg.Pos(), "interface conversion of %s boxes and allocates in hot path", tv.Type)
}

// isArrayBacked reports whether expr is a slice that provably aliases a
// fixed-size array: a slice expression over an array (or pointer to array),
// an append whose destination is array-backed, or a local variable assigned
// only such values. Appending into one cannot observably grow — the
// geometry bounds (d <= hashutil.MaxD) keep it within capacity, which the
// table's own panics enforce at runtime.
func (c *checker) isArrayBacked(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.SliceExpr:
		t := c.typeOf(e.X)
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		_, isArray := t.Underlying().(*types.Array)
		return isArray
	case *ast.CallExpr:
		return isBuiltin(c.pass, e.Fun, "append") && len(e.Args) > 0 && c.isArrayBacked(e.Args[0])
	case *ast.Ident:
		return c.arrayBacked[c.pass.TypesInfo.ObjectOf(e)]
	case *ast.ParenExpr:
		return c.isArrayBacked(e.X)
	}
	return false
}

// arrayBackedVars computes the local variables of fn that only ever hold
// array-backed slices, by fixpoint over the function's assignments.
func arrayBackedVars(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	c := &checker{pass: pass, arrayBacked: make(map[types.Object]bool)}
	poisoned := make(map[types.Object]bool)
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(id)
				if obj == nil {
					continue
				}
				if _, isSlice := c.typeOf(id).Underlying().(*types.Slice); !isSlice {
					continue
				}
				if c.isArrayBacked(assign.Rhs[i]) {
					if !poisoned[obj] && !c.arrayBacked[obj] {
						c.arrayBacked[obj] = true
						changed = true
					}
				} else {
					if !poisoned[obj] {
						poisoned[obj] = true
						delete(c.arrayBacked, obj)
						changed = true
					}
				}
			}
			return true
		})
	}
	return c.arrayBacked
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return types.Typ[types.Invalid]
	}
	return t
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// pkgOf returns the package path of the function a call selector resolves
// to, or "" when it is not a package-level selector.
func pkgOf(pass *analysis.Pass, fun ast.Expr) string {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName)
	if !ok {
		return ""
	}
	return pkgName.Imported().Path()
}

func isEllipsisCall(call *ast.CallExpr) bool { return call.Ellipsis.IsValid() }

// pointerShaped reports whether values of t occupy exactly the interface
// data word, so boxing them stores the value directly with no allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
