package hotpathalloc_test

import (
	"testing"

	"mccuckoo/internal/analysis/analysistest"
	"mccuckoo/internal/analysis/hotpathalloc"
)

func TestHotpathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer, "a")
}
