// Package a is the hotpathalloc fixture: each flagged line reproduces one
// allocation class the analyzer must catch; the unflagged hot-path code is
// the zero-alloc idiom it must accept.
package a

import "fmt"

const maxD = 4

type item struct{ key, value uint64 }

func sinkAny(v any)          { _ = v }
func sinkVariadic(vs ...any) { _ = vs }
func sinkInts(vs ...int)     { _ = vs }
func spin()                  {}

// locate is the accepted caller-stack-buffer idiom from locateCopies: the
// append destination derives from a fixed-size array, so growth is
// impossible and nothing allocates.
//
//mcvet:hotpath
func locate(buf *[maxD]int, hit bool) []int {
	tables := append(buf[:0], 0)
	if hit {
		tables = append(tables, 1)
	}
	return tables
}

// coldLocate is the same body without the annotation: allocations in
// non-hot functions are out of scope.
func coldLocate() []int {
	out := make([]int, 0, maxD)
	return append(out, 1)
}

//mcvet:hotpath
func violations(n int, s string, b []byte, p *item) {
	_ = make([]int, n)         // want `make allocates in hot path`
	_ = new(item)              // want `new allocates in hot path`
	sp := []int{1, 2}          // want `slice literal allocates in hot path`
	_ = append(sp, n)          // want `append may grow and allocate in hot path`
	_ = map[int]int{}          // want `map literal allocates in hot path`
	_ = &item{key: 1}          // want `&composite literal escapes to the heap in hot path`
	_ = fmt.Sprintf("k=%d", n) // want `fmt call allocates in hot path`
	_ = s + "suffix"           // want `string concatenation allocates in hot path`
	_ = []byte(s)              // want `string/\[\]byte conversion copies and allocates in hot path`
	_ = string(b)              // want `string/\[\]byte conversion copies and allocates in hot path`
	f := func() {}             // want `closure allocates in hot path`
	f()
	go spin()       // want `go statement allocates a goroutine in hot path`
	sinkAny(n)      // want `interface conversion of int boxes and allocates in hot path`
	sinkVariadic(n) // want `variadic interface argument allocates in hot path`
	_ = any(n)      // want `interface conversion of int boxes and allocates in hot path`
}

// accepted shows the allocation-free constructs boxing analysis must not
// flag: constants, nil, pointer-shaped values, non-interface variadics,
// panic arguments, and annotated intentional allocations.
//
//mcvet:hotpath
func accepted(n int, p *item, m map[int]int) {
	sinkAny("label")
	sinkAny(nil)
	sinkAny(p)
	sinkAny(m)
	sinkInts(1, 2, n)
	if n < 0 {
		panic(fmt.Sprintf("negative n %d", n))
	}
	//mcvet:allow hotpathalloc pool-miss growth is intentional and amortized
	buf := make([]byte, n)
	_ = buf
}
