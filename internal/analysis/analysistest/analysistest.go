// Package analysistest runs mcvet analyzers over fixture packages and
// checks their findings against `// want` expectations, mirroring the
// golang.org/x/tools analysistest workflow with only the stdlib.
//
// Fixtures live in <testdata>/src/<pkg>/ — directories named testdata are
// invisible to the go tool, so fixture code that deliberately violates the
// analyzers never reaches the real build. Every line that should produce
// findings carries a comment of the form
//
//	// want `regexp` `another regexp`
//
// with one regexp per expected finding on that line, matched against the
// finding message. Lines without a want comment must produce no findings.
// The full suppression pipeline runs, so fixtures can also exercise
// //mcvet:allow comments (an allow with `// want` after it expects the
// hygiene findings named there).
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mccuckoo/internal/analysis"
)

// Run loads the fixture package <testdata>/src/<pkg> and runs the analyzers
// over it, failing t on any mismatch between findings and expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	RunAll(t, testdata, []*analysis.Analyzer{a}, pkg)
}

// RunAll is Run with several analyzers in one pass, for fixtures exercising
// the shared suppression machinery.
func RunAll(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	fset := token.NewFileSet()
	loaded, err := analysis.LoadDir(fset, dir, pkg, analysis.NewImporter(fset))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.RunPackage(loaded, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pkg, err)
	}

	wants, err := parseWants(dir)
	if err != nil {
		t.Fatalf("parsing want comments: %v", err)
	}

	for _, d := range diags {
		if d.Suppressed {
			// Allow-matched findings survive RunPackage for the -json
			// renderer; expectations describe only what the gate reports.
			continue
		}
		key := lineKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		if i := matchWant(wants[key], d.Message); i >= 0 {
			wants[key][i].matched = true
			continue
		}
		t.Errorf("%s: unexpected finding: [%s] %s", d.Pos, d.Check, d.Message)
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no finding matched want %q", key.file, key.line, w.re.String())
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// wantPattern captures the regexps of one want comment: each expectation is
// a backquoted or double-quoted Go-regexp literal.
var (
	wantMarker  = regexp.MustCompile(`// want (.*)$`)
	wantLiteral = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")
)

func parseWants(dir string) (map[lineKey][]*want, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	out := make(map[lineKey][]*want)
	for _, name := range matches {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		base := filepath.Base(name)
		for i, line := range strings.Split(string(data), "\n") {
			m := wantMarker.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, lit := range wantLiteral.FindAllStringSubmatch(m[1], -1) {
				text := lit[1]
				if text == "" {
					text = lit[2]
				}
				re, err := regexp.Compile(text)
				if err != nil {
					return nil, err
				}
				key := lineKey{base, i + 1}
				out[key] = append(out[key], &want{re: re})
			}
		}
	}
	return out, nil
}

func matchWant(ws []*want, message string) int {
	for i, w := range ws {
		if !w.matched && w.re.MatchString(message) {
			return i
		}
	}
	return -1
}
