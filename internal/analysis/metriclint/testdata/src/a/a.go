// Package a is the metriclint fixture: the repo's ad-hoc exposition
// idioms, with conforming and misnamed series.
package a

import (
	"fmt"
	"io"
)

// direct header calls: name + type constant in one row.
func writeDirect(w io.Writer, ops, conns uint64) {
	header(w, "mccuckoo_fixture_ops_total", "Operations served.", "counter")
	fmt.Fprintf(w, "mccuckoo_fixture_ops_total %d\n", ops)
	header(w, "mccuckoo_fixture_conns", "Open connections.", "gauge")
	fmt.Fprintf(w, "mccuckoo_fixture_conns %d\n", conns)
}

func writeBroken(w io.Writer, v uint64) {
	header(w, "mccuckoo_fixture_requests", "Requests.", "counter")          // want `counter "mccuckoo_fixture_requests" must end in _total`
	header(w, "mccuckoo_fixture_queue_depth_total", "Depth.", "gauge")      // want `gauge "mccuckoo_fixture_queue_depth_total" must not claim the counter suffix`
	header(w, "mccuckoo_fixture_latency_ms", "Latency.", "histogram")       // want `histogram "mccuckoo_fixture_latency_ms" must end in _seconds`
	header(w, "mcCuckoo_Fixture_Bad", "Casing.", "counter")                 // want `metric "mcCuckoo_Fixture_Bad" is not mccuckoo_-prefixed lowercase snake_case`
	header(w, "fixture_rogue_series_total", "Wrong prefix.", "counter")     // want `metric "fixture_rogue_series_total" is not mccuckoo_-prefixed`
	header(w, "mccuckoo_fixture_ops_total", "Duplicate writer.", "counter") // want `metric "mccuckoo_fixture_ops_total" already declared`
}

// a dimensionless histogram is legal only with an allow naming its unit.
func writeDimensionless(w io.Writer) {
	//mcvet:allow metriclint fixture: kick-path length histogram counts hops, not time
	header(w, "mccuckoo_fixture_kick_hops", "Hops.", "histogram")
}

// the closure idiom: the type lives in the helper's format literal, the
// call site carries only the name.
func writeViaClosure(w io.Writer, spins uint64) {
	simple := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, v)
	}
	simple("mccuckoo_fixture_spins_total", "Spin loops.", spins)
	simple("mccuckoo_fixture_retries", "Retries.", spins) // want `counter "mccuckoo_fixture_retries" must end in _total`
}

// the struct-table idiom: rows carry names, one shared Fprintf carries the
// type.
func writeTable(w io.Writer) error {
	rows := []struct {
		name, help string
		v          uint64
	}{
		{"mccuckoo_fixture_sweeps_total", "Sweeps run.", 1},
		{"mccuckoo_fixture_repairs", "Repairs.", 2}, // want `counter "mccuckoo_fixture_repairs" must end in _total`
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", r.name, r.help, r.name, r.v); err != nil {
			return err
		}
	}
	return nil
}

// ordinary snake_case strings outside a metric row are not series names.
func unrelated(s string) string {
	return s + "plain_snake_string"
}

func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}
