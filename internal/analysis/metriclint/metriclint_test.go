package metriclint_test

import (
	"testing"

	"mccuckoo/internal/analysis/analysistest"
	"mccuckoo/internal/analysis/metriclint"
)

func TestMetricLint(t *testing.T) {
	analysistest.Run(t, "testdata", metriclint.Analyzer, "a")
}
