// Package metriclint enforces the Prometheus naming contract over every
// exposition writer in the repo. The serving binaries merge several
// writers into one /metrics endpoint (telemetry.MergedHandler), so a
// misnamed or colliding series is not a local bug — it corrupts the one
// scrape surface dashboards and alerts are built on. The contract:
//
//   - every series name is mccuckoo_-prefixed lowercase snake_case
//   - counters end in _total
//   - histograms end in _seconds (a dimensionless histogram is legal but
//     must carry an //mcvet:allow metriclint naming its unit-free nature)
//   - a name is declared by exactly one writer across all packages in the
//     run — MergedHandler writers must not share series
//
// The exporters are ad-hoc Fprintf helpers rather than a registry, so
// declarations are recognized syntactically: a call or composite-literal
// row that carries both a name-shaped string constant and a Prometheus
// type constant ("counter"/"gauge"/"histogram") declares that series; a
// call whose in-package callee (function, method, or closure) embeds a
// literal `# TYPE %s <type>` format declares the name at the call site
// with the callee's type; rows inside a function with a single such
// format literal inherit its type (the struct-table idiom). Names the
// recognizer sees but cannot type are still checked for prefix and
// snake_case. Unique-name state is keyed per FileSet, so one driver run
// sees all packages while independent test runs stay isolated.
package metriclint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
	"sync"

	"mccuckoo/internal/analysis"
)

// Analyzer is the metriclint check.
var Analyzer = &analysis.Analyzer{
	Name: "metriclint",
	Doc:  "Prometheus series names: mccuckoo_ prefix, snake_case, counters _total, histograms _seconds, unique across writers",
	Run:  run,
}

var nameShape = regexp.MustCompile(`^[A-Za-z][A-Za-z0-9_]*_[A-Za-z0-9_]*$`)

var wellFormed = regexp.MustCompile(`^mccuckoo(_[a-z0-9]+)+$`)

var typeWords = map[string]bool{"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true}

// typeLine matches a literal `# TYPE %s <type>` inside a format string,
// the shape every ad-hoc exposition helper in the repo uses.
var typeLine = regexp.MustCompile(`# TYPE %s (counter|gauge|histogram|summary)`)

// declared records, per FileSet (= per driver run), where each series name
// was first declared, so cross-package collisions surface exactly once.
var (
	declaredMu sync.Mutex
	declared   = make(map[*token.FileSet]map[string]token.Position)
)

type decl struct {
	name string
	typ  string // "" when the recognizer could not type the declaration
	pos  token.Pos
}

func run(pass *analysis.Pass) error {
	closures := closureBodies(pass)
	var decls []decl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			decls = append(decls, collectFunc(pass, fn, closures)...)
		}
	}

	declaredMu.Lock()
	defer declaredMu.Unlock()
	seen := declared[pass.Fset]
	if seen == nil {
		seen = make(map[string]token.Position)
		declared[pass.Fset] = seen
	}
	for _, d := range decls {
		if !wellFormed.MatchString(d.name) {
			pass.Reportf(d.pos, "metric %q is not mccuckoo_-prefixed lowercase snake_case", d.name)
			continue
		}
		switch d.typ {
		case "counter":
			if !strings.HasSuffix(d.name, "_total") {
				pass.Reportf(d.pos, "counter %q must end in _total", d.name)
			}
		case "gauge":
			if strings.HasSuffix(d.name, "_total") {
				pass.Reportf(d.pos, "gauge %q must not claim the counter suffix _total", d.name)
			}
		case "histogram":
			if !strings.HasSuffix(d.name, "_seconds") {
				pass.Reportf(d.pos, "histogram %q must end in _seconds (durations) or be allowed as dimensionless", d.name)
			}
		}
		if d.typ == "" {
			continue // a reference, not a declaration: no uniqueness claim
		}
		if prev, dup := seen[d.name]; dup {
			pass.Reportf(d.pos, "metric %q already declared at %s; MergedHandler writers must not share series names", d.name, prev)
			continue
		}
		seen[d.name] = pass.Fset.Position(d.pos)
	}
	return nil
}

// collectFunc gathers metric declarations from one function body.
func collectFunc(pass *analysis.Pass, fn *ast.FuncDecl, closures map[types.Object]*ast.FuncLit) []decl {
	var out []decl
	var untyped []decl // rows awaiting the function-level TYPE fallback
	funcTyp := functionTypeLiteral(fn)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			row := rowStrings(pass, n.Args)
			if row.typ == "" {
				row.typ = calleeType(pass, n, closures)
			}
			for _, nm := range row.names(row.typ != "") {
				out = append(out, decl{nm.name, row.typ, nm.pos})
			}
		case *ast.CompositeLit:
			row := rowStrings(pass, n.Elts)
			typ := row.typ
			if typ == "" {
				typ = funcTyp
			}
			for _, nm := range row.names(row.typ != "") {
				if typ == "" {
					untyped = append(untyped, decl{nm.name, "", nm.pos})
				} else {
					out = append(out, decl{nm.name, typ, nm.pos})
				}
			}
		}
		return true
	})
	return append(out, untyped...)
}

type namePos struct {
	name string
	pos  token.Pos
}

// row is one call's arguments or one composite-literal row, reduced to its
// metric-name candidates and Prometheus type constant.
type row struct {
	prefixed []namePos // mccuckoo-claiming names: candidates everywhere
	shaped   []namePos // other snake_case words: candidates only next to a type constant
	typ      string
}

// names returns the row's metric-name candidates. Only a row anchored by a
// type constant may claim arbitrary snake_case strings as names (catching
// wrong-prefix declarations); elsewhere a string must claim the mccuckoo
// prefix to count, so ordinary snake_case literals in unrelated calls are
// never misread as series.
func (r row) names(anchored bool) []namePos {
	if anchored {
		return append(append([]namePos(nil), r.prefixed...), r.shaped...)
	}
	return r.prefixed
}

// rowStrings scans one row's string constants. Duplicate mentions of the
// same name within a row (the HELP and TYPE lines of one header call)
// collapse to one declaration.
func rowStrings(pass *analysis.Pass, exprs []ast.Expr) row {
	var r row
	seen := make(map[string]bool)
	for _, e := range exprs {
		s, ok := stringConst(pass, e)
		if !ok {
			continue
		}
		if typeWords[s] {
			r.typ = s
			continue
		}
		if !nameShape.MatchString(s) || seen[s] {
			continue
		}
		seen[s] = true
		if strings.HasPrefix(strings.ToLower(s), "mccuckoo") {
			r.prefixed = append(r.prefixed, namePos{s, e.Pos()})
		} else {
			r.shaped = append(r.shaped, namePos{s, e.Pos()})
		}
	}
	return r
}

// calleeType resolves a call's metric type from its callee: a hardcoded
// histogram for telemetry.WriteHistogram, else an in-package function,
// method, or closure whose body embeds a literal `# TYPE %s <type>`.
func calleeType(pass *analysis.Pass, call *ast.CallExpr, closures map[types.Object]*ast.FuncLit) string {
	var body ast.Node
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(fun)
		if lit := closures[obj]; lit != nil {
			body = lit.Body
		} else if decl := funcDeclOf(pass, obj); decl != nil {
			body = decl.Body
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "WriteHistogram" {
			return "histogram"
		}
		if decl := funcDeclOf(pass, pass.TypesInfo.ObjectOf(fun.Sel)); decl != nil {
			body = decl.Body
		}
	}
	if body == nil {
		return ""
	}
	typ := ""
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		if m := typeLine.FindStringSubmatch(lit.Value); m != nil {
			typ = m[1]
		}
		return true
	})
	return typ
}

// functionTypeLiteral finds the single literal `# TYPE %s <type>` of a
// function body, for the struct-table idiom where rows carry names and one
// shared Fprintf carries the type. Ambiguous bodies return "".
func functionTypeLiteral(fn *ast.FuncDecl) string {
	typ := ""
	ambiguous := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		if m := typeLine.FindStringSubmatch(lit.Value); m != nil {
			if typ != "" && typ != m[1] {
				ambiguous = true
			}
			typ = m[1]
		}
		return true
	})
	if ambiguous {
		return ""
	}
	return typ
}

// funcDeclOf finds the in-package declaration of obj, or nil.
func funcDeclOf(pass *analysis.Pass, obj types.Object) *ast.FuncDecl {
	if obj == nil {
		return nil
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && pass.TypesInfo.ObjectOf(fd.Name) == obj {
				return fd
			}
		}
	}
	return nil
}

// closureBodies maps local variables to the function literals assigned to
// them, so `simple := func(name, help string, ...)` helpers resolve.
func closureBodies(pass *analysis.Pass) map[types.Object]*ast.FuncLit {
	out := make(map[types.Object]*ast.FuncLit)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if lit, ok := assign.Rhs[i].(*ast.FuncLit); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						out[obj] = lit
					}
				}
			}
			return true
		})
	}
	return out
}

// stringConst resolves e to a constant string value.
func stringConst(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
