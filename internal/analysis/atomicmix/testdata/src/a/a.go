// Package a is the atomicmix fixture: fields touched by the pointer-taking
// sync/atomic API must never also be touched plainly.
package a

import "sync/atomic"

type counters struct {
	hits   int64        // atomic via AddInt64/LoadInt64 below
	misses int64        // never atomic: plain access is consistent and fine
	epoch  atomic.Int64 // typed atomic: cannot mix by construction
}

func (c *counters) recordHit() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) hitCount() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) racyRead() int64 {
	return c.hits // want `plain access to hits, which is accessed with sync/atomic elsewhere in this package; this races`
}

func (c *counters) racyWrite() {
	c.hits = 0 // want `plain access to hits`
}

func (c *counters) escapedAddress(sink func(*int64)) {
	sink(&c.hits) // want `plain access to hits`
}

func (c *counters) plainIsFine() int64 {
	c.misses++
	return c.misses
}

func (c *counters) typedIsFine() int64 {
	c.epoch.Add(1)
	return c.epoch.Load()
}

// newCounters demonstrates the sanctioned escape: before the value is
// published to other goroutines, plain initialization cannot race.
func newCounters() *counters {
	c := &counters{}
	c.hits = 0 //mcvet:allow atomicmix not yet published, single-goroutine init
	return c
}

var generation uint64

func bumpGeneration() {
	atomic.AddUint64(&generation, 1)
}

func readGeneration() uint64 {
	return generation // want `plain access to generation`
}
