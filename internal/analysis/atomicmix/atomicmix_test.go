package atomicmix_test

import (
	"testing"

	"mccuckoo/internal/analysis/analysistest"
	"mccuckoo/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "a")
}
