// Package atomicmix enforces all-or-nothing atomicity: a variable that is
// accessed through sync/atomic anywhere in a package must be accessed
// through sync/atomic everywhere in it. A single plain load racing an
// atomic store is still a data race — one the race detector only catches
// when a test happens to interleave the two, while this check catches it
// from the source alone.
//
// The analyzer collects every variable whose address feeds a sync/atomic
// call (atomic.LoadInt64(&s.hits), atomic.AddUint64(&t.epoch, 1), ...) and
// then flags any other appearance of that variable outside a sync/atomic
// argument. Typed atomics (sync/atomic.Int64 and friends, as used by the
// shard counters and telemetry ring) cannot mix by construction and need
// no annotations. A deliberate non-atomic access — e.g. a read in a
// constructor before the value is published — carries
// //mcvet:allow atomicmix <reason>.
package atomicmix

import (
	"go/ast"
	"go/types"
	"strings"

	"mccuckoo/internal/analysis"
)

// Analyzer is the atomicmix check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "variables accessed via sync/atomic must be accessed atomically everywhere",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	atomicVars := make(map[*types.Var][]ast.Expr) // var -> its atomic-call address args
	inAtomicArg := make(map[ast.Node]bool)        // &x subtrees consumed by sync/atomic

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok {
					continue
				}
				if v := varOf(pass, un.X); v != nil {
					atomicVars[v] = append(atomicVars[v], un)
					inAtomicArg[un] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if inAtomicArg[n] {
				return false
			}
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			switch e.(type) {
			case *ast.Ident, *ast.SelectorExpr:
			default:
				return true
			}
			v := varOf(pass, e)
			if v == nil {
				return true
			}
			if _, mixed := atomicVars[v]; mixed {
				pass.Reportf(e.Pos(), "plain access to %s, which is accessed with sync/atomic elsewhere in this package; this races", v.Name())
				return false
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a sync/atomic package-level
// operation (the pointer-taking API, not typed-atomic methods).
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(sel.Sel.Name, prefix) {
			return true
		}
	}
	return false
}

// varOf resolves an ident or field selector to its variable object. Only
// named variables and struct fields participate — the things a racing
// goroutine could alias.
func varOf(pass *analysis.Pass, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.Ident:
		if pass.TypesInfo.Defs[e] != nil {
			return nil // a declaration, not an access
		}
		v, _ := pass.TypesInfo.ObjectOf(e).(*types.Var)
		if v != nil && !v.IsField() {
			return v
		}
		return nil
	case *ast.SelectorExpr:
		sel := pass.TypesInfo.Selections[e]
		if sel == nil || sel.Kind() != types.FieldVal {
			return nil
		}
		v, _ := sel.Obj().(*types.Var)
		return v
	}
	return nil
}
