// Package suppress exercises the //mcvet:allow machinery itself, driven by
// a test-local analyzer that flags every call to boom. The cases cover the
// hygiene guarantees: unknown check names, missing reasons, stale
// suppressions, and misplaced directives are all reported and cannot be
// suppressed away.
package suppress

func boom() {}

func unsuppressed() {
	boom() // want `call to boom`
}

func suppressedTrailing() {
	boom() //mcvet:allow testcheck fixture exercises the trailing-comment form
}

func suppressedAbove() {
	//mcvet:allow testcheck fixture exercises the standalone-comment form
	boom()
}

func unknownCheckName() {
	boom() //mcvet:allow nosuchcheck reasons do not save a typoed check name // want `unknown check "nosuchcheck"` `call to boom`
}

func missingReason() {
	boom() //mcvet:allow testcheck // want `needs a reason` `call to boom`
}

func missingEverything() {
	boom() //mcvet:allow // want `needs a check name` `call to boom`
}

func stale() {
	//mcvet:allow testcheck nothing below triggers this anymore // want `stale suppression: no testcheck finding`
	_ = 0
}

// notRun shows the ran-gating: hotpathalloc is a known check, but it is
// not part of this test's run, so an unused allow for it is not stale.
func notRun() {
	//mcvet:allow hotpathalloc retained for a check that is not in this run
	_ = 0
}

func misplacedVerb() {
	//mcvet:hotpath // want `misplaced directive "//mcvet:hotpath"`
	boom() // want `call to boom`
}

//mcvet:bogus has no meaning // want `unknown mcvet directive "bogus"`
func unknownVerb() {}

//mcvet:guardedby mu // want `mcvet:guardedby belongs on a field, not a func`
func wrongOwner() {}

//mcvet:setter // want `mcvet:setter needs at least one class argument`
func missingArgs() {}

// newCheckAllows shows the whitelist knows the distributed-tier checks:
// none of them run here, so the unused allows are ran-gated rather than
// stale, and none report as unknown.
func newCheckAllows() {
	//mcvet:allow goroutinelifecycle retained for a check that is not in this run
	//mcvet:allow deadlinearm retained for a check that is not in this run
	//mcvet:allow tracepropagation retained for a check that is not in this run
	//mcvet:allow metriclint retained for a check that is not in this run
	_ = 0
}

//mcvet:lifecycle // want `mcvet:lifecycle belongs on a type, not a func`
func lifecycleOnFunc() {}

//mcvet:deadlined // want `mcvet:deadlined belongs on a func, not a type`
type deadlinedType struct{}

//mcvet:lifecycle // want `mcvet:lifecycle on a grouped type declaration is ambiguous`
type (
	groupedA struct{}
	groupedB struct{}
)

//mcvet:lifecycle
type lifecycleOK struct{}
