package deadlinearm_test

import (
	"testing"

	"mccuckoo/internal/analysis/analysistest"
	"mccuckoo/internal/analysis/deadlinearm"
)

func TestDeadlineArm(t *testing.T) {
	analysistest.Run(t, "testdata", deadlinearm.Analyzer, "a")
}
