// Package a is the deadlinearm fixture: conn I/O with and without a
// dominating deadline inside //mcvet:deadlined functions.
package a

import (
	"io"
	"net"
	"time"
)

//mcvet:deadlined
func armedEcho(nc net.Conn, buf []byte) error {
	nc.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := nc.Read(buf); err != nil {
		return err
	}
	nc.SetWriteDeadline(time.Now().Add(time.Second))
	_, err := nc.Write(buf)
	return err
}

//mcvet:deadlined
func nakedRead(nc net.Conn, buf []byte) (int, error) {
	return nc.Read(buf) // want `nc\.Read is not dominated by a SetReadDeadline`
}

//mcvet:deadlined
func wrongSide(nc net.Conn, buf []byte) (int, error) {
	nc.SetWriteDeadline(time.Now().Add(time.Second))
	return nc.Read(buf) // want `nc\.Read is not dominated by a SetReadDeadline`
}

//mcvet:deadlined
func bothArmed(nc net.Conn, buf []byte) error {
	nc.SetDeadline(time.Now().Add(time.Second))
	if _, err := nc.Read(buf); err != nil {
		return err
	}
	_, err := nc.Write(buf)
	return err
}

// disarm also counts as armed: the author made a deadline decision.
//
//mcvet:deadlined
func explicitDisarm(nc net.Conn, buf []byte) (int, error) {
	nc.SetReadDeadline(time.Time{})
	return nc.Read(buf)
}

//mcvet:deadlined
func viaReader(nc net.Conn) error {
	return drain(nc) // want `nc passed as io\.Reader is not dominated by a SetReadDeadline`
}

//mcvet:deadlined
func viaReaderArmed(nc net.Conn) error {
	nc.SetReadDeadline(time.Now().Add(time.Second))
	return drain(nc)
}

// Handing the conn to a net.Conn parameter transfers responsibility; it is
// not an I/O event here.
//
//mcvet:deadlined
func handoff(nc net.Conn) {
	register(nc)
}

// Two conns are tracked independently.
//
//mcvet:deadlined
func twoConns(a, b net.Conn, buf []byte) {
	a.SetReadDeadline(time.Now().Add(time.Second))
	a.Read(buf)
	b.Read(buf) // want `b\.Read is not dominated by a SetReadDeadline`
}

// The escape hatch for a deliberately undeadlined read.
//
//mcvet:deadlined
func allowedRead(nc net.Conn, buf []byte) (int, error) {
	//mcvet:allow deadlinearm fixture: lifetime bounded by peer close, not a timer
	return nc.Read(buf)
}

func drain(r io.Reader) error {
	_, err := io.Copy(io.Discard, r)
	return err
}

func register(nc net.Conn) {}

// Unannotated functions are out of scope; the deadline contract is opt-in
// per function.
func free(nc net.Conn, buf []byte) (int, error) {
	return nc.Read(buf)
}
