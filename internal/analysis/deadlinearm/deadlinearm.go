// Package deadlinearm turns PR 7's one-off deadline audit into a permanent
// gate: inside functions marked //mcvet:deadlined, every blocking Read or
// Write on a net.Conn must be dominated by a matching deadline call. A
// conn I/O without a deadline is how one dead peer wedges a reader or
// writer goroutine forever — the failure mode the cluster tier's circuit
// breakers exist to contain, and one a test cannot stage without actually
// hanging.
//
// The analysis is the house linear simulation (same shape as
// lockdiscipline): events are collected in source order across the
// function body, including nested function literals, and an armed-state
// map keyed by the conn expression's source spelling is replayed over
// them. SetReadDeadline arms reads, SetWriteDeadline arms writes,
// SetDeadline arms both; any deadline call counts, including a zero-time
// disarm — the check enforces that the author thought about the deadline,
// not which value was chosen. Besides direct X.Read/X.Write calls, passing
// the conn to an io.Reader or io.Writer parameter counts as a read or
// write (wire.ReadFrame is the canonical case); passing it to a net.Conn
// parameter hands off responsibility and is not an event. Control flow is
// ignored by design — code whose arming crosses branches in ways the
// linear scan misreads needs an //mcvet:allow deadlinearm with the reason
// spelled out.
package deadlinearm

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mccuckoo/internal/analysis"
)

// Analyzer is the deadlinearm check.
var Analyzer = &analysis.Analyzer{
	Name: "deadlinearm",
	Doc:  "conn Read/Write in //mcvet:deadlined functions must be dominated by a Set{Read,Write}Deadline",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	connIface := netConnInterface(pass)
	if connIface == nil {
		return nil // package does not import net; nothing can be in scope
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.Dirs.FuncHas(fn, "deadlined") {
				continue
			}
			checkFunc(pass, fn, connIface)
		}
	}
	return nil
}

// netConnInterface finds the net.Conn interface through the package's
// imports.
func netConnInterface(pass *analysis.Pass) *types.Interface {
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() != "net" {
			continue
		}
		if tn, ok := imp.Scope().Lookup("Conn").(*types.TypeName); ok {
			if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
				return iface
			}
		}
	}
	return nil
}

type eventKind int

const (
	evArmRead eventKind = iota
	evArmWrite
	evArmBoth
	evRead
	evWrite
)

type event struct {
	pos  token.Pos
	kind eventKind
	key  string // source spelling of the conn expression
	how  string // for reports: how the I/O happens
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, connIface *types.Interface) {
	var events []event
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && isConn(pass, sel.X, connIface) {
			key := analysis.ExprString(sel.X)
			switch sel.Sel.Name {
			case "SetReadDeadline":
				events = append(events, event{call.Pos(), evArmRead, key, ""})
			case "SetWriteDeadline":
				events = append(events, event{call.Pos(), evArmWrite, key, ""})
			case "SetDeadline":
				events = append(events, event{call.Pos(), evArmBoth, key, ""})
			case "Read":
				events = append(events, event{call.Pos(), evRead, key, key + ".Read"})
			case "Write":
				events = append(events, event{call.Pos(), evWrite, key, key + ".Write"})
			}
		}
		// A conn flowing into an io.Reader/io.Writer parameter is a read or
		// write at this call site.
		sig := calleeSignature(pass, call)
		if sig == nil {
			return true
		}
		for i, arg := range call.Args {
			if !isConn(pass, arg, connIface) {
				continue
			}
			pt := paramType(sig, i)
			if pt == nil {
				continue
			}
			key := analysis.ExprString(arg)
			if isIoType(pt, "Reader") {
				events = append(events, event{arg.Pos(), evRead, key, key + " passed as io.Reader"})
			} else if isIoType(pt, "Writer") {
				events = append(events, event{arg.Pos(), evWrite, key, key + " passed as io.Writer"})
			}
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	type armed struct{ read, write bool }
	state := make(map[string]*armed)
	get := func(key string) *armed {
		if state[key] == nil {
			state[key] = &armed{}
		}
		return state[key]
	}
	for _, e := range events {
		a := get(e.key)
		switch e.kind {
		case evArmRead:
			a.read = true
		case evArmWrite:
			a.write = true
		case evArmBoth:
			a.read, a.write = true, true
		case evRead:
			if !a.read {
				pass.Reportf(e.pos, "%s is not dominated by a SetReadDeadline in this //mcvet:deadlined function", e.how)
			}
		case evWrite:
			if !a.write {
				pass.Reportf(e.pos, "%s is not dominated by a SetWriteDeadline in this //mcvet:deadlined function", e.how)
			}
		}
	}
}

// isConn reports whether e's static type satisfies net.Conn.
func isConn(pass *analysis.Pass, e ast.Expr, connIface *types.Interface) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	return types.Implements(t, connIface) || types.Implements(types.NewPointer(t), connIface)
}

// calleeSignature returns the called function's signature, or nil for
// builtins and type conversions.
func calleeSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	t := pass.TypesInfo.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// paramType resolves the type of argument i, unrolling variadics.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if s, ok := last.(*types.Slice); ok {
			return s.Elem()
		}
		return last
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// isIoType reports whether t is io.<name> (Reader or Writer).
func isIoType(t types.Type, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "io"
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
