// Package a is the tracepropagation fixture: contexts dropped versus
// threaded, spans finished versus lost, against the real trace package.
package a

import (
	"mccuckoo/internal/telemetry/trace"
)

type client struct{ tr *trace.Recorder }

type peer struct{}

func (p *peer) Send(payload []byte) error { return nil }

func (p *peer) SendCtx(tc trace.Context, payload []byte) error { return nil } // want `trace context parameter tc is never used`

func (p *peer) Ping() error { return nil }

// threaded is the accepted idiom: the received context reaches the
// outbound Ctx call.
func (c *client) threaded(p *peer, tc trace.Context, payload []byte) error {
	return p.SendCtx(tc, payload)
}

func (c *client) dropped(p *peer, tc trace.Context, payload []byte) error { // want `trace context parameter tc is never used`
	return p.Send(payload) // want `calls p\.Send while a trace context is in scope`
}

// explicitDrop declares it holds no context; the non-Ctx call is its
// intent.
func (c *client) explicitDrop(p *peer, _ trace.Context, payload []byte) error {
	return p.Send(payload)
}

// untraced never materializes a trace value, so the plain Send is out of
// scope by construction (the deliberately untraced bulk path).
func (c *client) untraced(p *peer, payload []byte) error {
	return p.Send(payload)
}

func (c *client) spanScoped(p *peer, payload []byte) error {
	root := c.tr.Start(c.tr.Begin(), trace.KindClientOp)
	defer root.Finish()
	return p.Send(payload) // want `calls p\.Send while a trace context is in scope`
}

// spanThreaded is the traced fan-out shape: span context into the Ctx
// variant, span finished.
func (c *client) spanThreaded(p *peer, payload []byte) error {
	root := c.tr.Start(c.tr.Begin(), trace.KindClientOp)
	defer root.Finish()
	return p.SendCtx(root.Context(), payload)
}

// allowedUntraced is the escape hatch: trace in scope, plain call excused.
func (c *client) allowedUntraced(p *peer, tc trace.Context, payload []byte) error {
	_ = tc
	//mcvet:allow tracepropagation fixture: background path is deliberately untraced
	return p.Send(payload)
}

func (c *client) discards() {
	c.tr.Start(c.tr.Begin(), trace.KindClientOp) // want `span result of c\.tr\.Start is discarded`
}

func (c *client) neverFinished(p *peer, payload []byte) error {
	sp := c.tr.Start(c.tr.Begin(), trace.KindClientOp) // want `span sp is never finished or handed off`
	return p.SendCtx(sp.Context(), payload)
}

// handsOff transfers the span to another function; ownership moved, not
// lost.
func (c *client) handsOff() {
	sp := c.tr.Start(c.tr.Begin(), trace.KindReplicaRTT)
	go finishLater(sp)
}

func finishLater(sp trace.Span) {
	sp.Finish()
}

// begin returns the span to its caller.
func (c *client) begin() trace.Span {
	sp := c.tr.Start(c.tr.Begin(), trace.KindClientOp)
	return sp
}

// child spans started off a parameter span must be finished too.
func (c *client) child(root trace.Span) {
	tsp := root.StartChild(trace.KindReplicaRTT)
	tsp.Finish()
}

func (c *client) childLost(root trace.Span) {
	root.StartChild(trace.KindReplicaRTT) // want `span result of root\.StartChild is discarded`
}
