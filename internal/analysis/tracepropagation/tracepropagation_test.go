package tracepropagation_test

import (
	"testing"

	"mccuckoo/internal/analysis/analysistest"
	"mccuckoo/internal/analysis/tracepropagation"
)

func TestTracePropagation(t *testing.T) {
	analysistest.Run(t, "testdata", tracepropagation.Analyzer, "a")
}
