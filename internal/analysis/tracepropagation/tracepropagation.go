// Package tracepropagation keeps the distributed-tracing tier honest: a
// span tree is only as complete as its weakest hop, and a single call site
// that drops the 16-byte context silently truncates every trace that flows
// through it. Three rules, all scoped to code where a trace value is
// actually present so untraced fast paths stay untouched:
//
//   - A trace.Context parameter that is never used is a dropped context:
//     the caller paid to propagate it and this function silently discards
//     it. Rename the parameter to _ (an explicit drop) or thread it.
//   - In a function with a trace context or span in scope (a parameter, or
//     a span/context obtained from a call), calling a method M on a value
//     whose type also has M+"Ctx" drops the context at the wire boundary —
//     the traced variant exists and was not used.
//   - A span returned by Start/StartChild/StartForced must reach a sink:
//     a Finish/FinishForced call, a return, or a handoff as a call
//     argument. A discarded span is recorded as begun and never completed,
//     which reads as a lost hop in every trace it belongs to.
//
// Deliberately untraced paths (bulk replication, background loops) either
// never materialize a trace value — out of scope by construction — or
// carry an //mcvet:allow tracepropagation with the reason. The trace
// package itself is exempt: it is the machinery these rules protect.
package tracepropagation

import (
	"go/ast"
	"go/types"
	"strings"

	"mccuckoo/internal/analysis"
)

// Analyzer is the tracepropagation check.
var Analyzer = &analysis.Analyzer{
	Name: "tracepropagation",
	Doc:  "trace contexts must be threaded into *Ctx calls and spans must reach Finish",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "telemetry/trace") {
		return nil // the trace package is the machinery, not a consumer
	}
	for _, file := range pass.Files {
		parents := parentMap(file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkDroppedParams(pass, fn)
			if traceInScope(pass, fn) {
				checkCtxSiblings(pass, fn)
			}
			checkSpanSinks(pass, fn, parents)
		}
	}
	return nil
}

// checkDroppedParams flags named trace.Context parameters that the body
// never reads.
func checkDroppedParams(pass *analysis.Pass, fn *ast.FuncDecl) {
	for _, field := range fn.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if !isTraceType(t, "Context") {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue // explicit drop
			}
			obj := pass.TypesInfo.ObjectOf(name)
			if obj == nil || usedIn(pass, fn.Body, obj) {
				continue
			}
			pass.Reportf(name.Pos(), "trace context parameter %s is never used: thread it into the outbound calls or rename it to _ as an explicit drop", name.Name)
		}
	}
}

// traceInScope reports whether fn has a trace value in hand: a
// context/span parameter, or a span/context obtained from a call in the
// body. Composite literals (an explicit zero context) do not count.
func traceInScope(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	for _, field := range fn.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if !isTraceType(t, "Context") && !isTraceType(t, "Span") {
			continue
		}
		// A parameter named _ is an explicit drop: the function declared it
		// holds no context, so non-Ctx calls are its intent.
		for _, name := range field.Names {
			if name.Name != "_" {
				return true
			}
		}
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if t := pass.TypesInfo.TypeOf(call); isTraceType(t, "Span") || isTraceType(t, "Context") {
			found = true
		}
		return true
	})
	return found
}

// checkCtxSiblings flags calls to a method M whose receiver also offers
// M+"Ctx" — the traced variant exists and the in-scope context was not
// threaded into it.
func checkCtxSiblings(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.MethodVal {
			return true
		}
		name := sel.Sel.Name
		sibling, _, _ := types.LookupFieldOrMethod(selection.Recv(), true, pass.Pkg, name+"Ctx")
		if f, ok := sibling.(*types.Func); ok && f != nil {
			pass.Reportf(call.Pos(), "calls %s.%s while a trace context is in scope; thread it through %sCtx", analysis.ExprString(sel.X), name, name)
		}
		return true
	})
}

// checkSpanSinks flags spans that never reach a Finish, return, or
// handoff.
func checkSpanSinks(pass *analysis.Pass, fn *ast.FuncDecl, parents map[ast.Node]ast.Node) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if t := pass.TypesInfo.TypeOf(call); !isTraceType(t, "Span") {
			return true
		}
		parent := parents[call]
		for {
			p, ok := parent.(*ast.ParenExpr)
			if !ok {
				break
			}
			parent = parents[p]
		}
		switch p := parent.(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "span result of %s is discarded; it never reaches Finish", analysis.ExprString(call.Fun))
		case *ast.AssignStmt:
			obj := assignTarget(pass, p, call)
			if obj == nil {
				return true // multi-value or non-ident target: out of reach
			}
			scope := enclosingFunc(parents, call)
			if scope == nil || spanConsumed(pass, scope, obj) {
				return true
			}
			pass.Reportf(call.Pos(), "span %s is never finished or handed off; call Finish/FinishForced, return it, or pass it on", obj.Name())
		}
		return true
	})
}

// assignTarget resolves which lhs ident receives the span from a
// single-value assignment; nil when the shape is out of reach.
func assignTarget(pass *analysis.Pass, assign *ast.AssignStmt, call *ast.CallExpr) types.Object {
	if len(assign.Lhs) != len(assign.Rhs) {
		return nil
	}
	for i, rhs := range assign.Rhs {
		if unparen(rhs) != call {
			continue
		}
		if id, ok := assign.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
			return pass.TypesInfo.ObjectOf(id)
		}
	}
	return nil
}

// spanConsumed reports whether obj's span reaches a sink inside body: a
// Finish/FinishForced call, a return, or use as a call argument.
func spanConsumed(pass *analysis.Pass, body ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok {
				if id, ok := unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj &&
					(sel.Sel.Name == "Finish" || sel.Sel.Name == "FinishForced") {
					found = true
				}
			}
			for _, arg := range n.Args {
				if id, ok := unparen(arg).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					found = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if id, ok := unparen(r).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// enclosingFunc walks up to the nearest function literal or declaration
// body containing n.
func enclosingFunc(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p := p.(type) {
		case *ast.FuncLit:
			return p.Body
		case *ast.FuncDecl:
			return p.Body
		}
	}
	return nil
}

// parentMap records each node's parent within file.
func parentMap(file *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// usedIn reports whether body reads obj.
func usedIn(pass *analysis.Pass, body ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// isTraceType reports whether t is the named type telemetry/trace.<name>,
// through one level of pointer.
func isTraceType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "telemetry/trace")
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
