package analysis_test

import (
	"go/ast"
	"testing"

	"mccuckoo/internal/analysis"
	"mccuckoo/internal/analysis/analysistest"
)

// testcheck flags every call to a function named boom. It exists so the
// suppress fixture can exercise the //mcvet:allow machinery — matching,
// unknown check names, missing reasons, staleness, ran-gating — against a
// finding source with trivially predictable positions.
var testcheck = &analysis.Analyzer{
	Name: "testcheck",
	Doc:  "flags calls to boom, for suppression-machinery tests",
	Run: func(pass *analysis.Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
					pass.Reportf(call.Pos(), "call to boom")
				}
				return true
			})
		}
		return nil
	},
}

func TestSuppressionMachinery(t *testing.T) {
	analysistest.Run(t, "testdata", testcheck, "suppress")
}
