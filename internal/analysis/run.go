package analysis

import (
	"fmt"
	"sort"
)

// hygieneCheck names the findings the runner itself produces: malformed
// directives, unknown check names in allows, missing reasons, and stale
// suppressions. Hygiene findings cannot be suppressed — a broken escape
// hatch must never hide itself.
const hygieneCheck = "mcvet"

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// RunPackage runs the analyzers over one package and applies the
// //mcvet:allow suppressions. The returned diagnostics are every finding —
// suppressed ones flagged rather than dropped, so callers can render them —
// plus suppression-hygiene findings, sorted by position.
//
// Suppression semantics: an allow comment for check C suppresses C findings
// on the allow's own source line (trailing comment) or on the line
// immediately below (standalone comment above the finding). Every allow
// must name a known check and carry a reason; an allow that suppresses
// nothing while its check is part of the run is reported as stale, so
// suppressions cannot outlive the code they excuse.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Dirs:      pkg.Dirs,
			diags:     &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}

	known := make(map[string]bool, len(KnownChecks)+len(analyzers))
	ran := make(map[string]bool, len(analyzers))
	for _, name := range KnownChecks {
		known[name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
		ran[a.Name] = true
	}

	// Malformed directives surface first; they are produced at parse time.
	out := append([]Diagnostic(nil), pkg.Dirs.bad...)

	allows := pkg.Dirs.Allows()
	for _, a := range allows {
		if !known[a.Check] {
			out = append(out, Diagnostic{
				Pos:     pkg.Fset.Position(a.Pos),
				Check:   hygieneCheck,
				Message: fmt.Sprintf("mcvet:allow names unknown check %q (known: %v)", a.Check, KnownChecks),
			})
		}
	}

	for _, d := range raw {
		if allow := matchAllow(allows, known, d); allow != nil {
			allow.used = true
			d.Suppressed = true
		}
		out = append(out, d)
	}

	for _, a := range allows {
		if !a.used && known[a.Check] && ran[a.Check] {
			out = append(out, Diagnostic{
				Pos:     pkg.Fset.Position(a.Pos),
				Check:   hygieneCheck,
				Message: fmt.Sprintf("stale suppression: no %s finding on this line or the line below", a.Check),
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Check < out[j].Check
	})
	return out, nil
}

// matchAllow finds a well-formed allow covering diagnostic d, or nil.
func matchAllow(allows []*Allow, known map[string]bool, d Diagnostic) *Allow {
	for _, a := range allows {
		if !known[a.Check] || a.Check != d.Check || a.File != d.Pos.Filename {
			continue
		}
		if a.Line == d.Pos.Line || a.Line == d.Pos.Line-1 {
			return a
		}
	}
	return nil
}
