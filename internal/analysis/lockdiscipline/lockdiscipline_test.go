package lockdiscipline_test

import (
	"testing"

	"mccuckoo/internal/analysis/analysistest"
	"mccuckoo/internal/analysis/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", lockdiscipline.Analyzer, "a")
}
