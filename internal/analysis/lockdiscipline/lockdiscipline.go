// Package lockdiscipline checks the shard/table locking invariants:
//
//   - a struct field annotated //mcvet:guardedby <mu> is only touched while
//     the same receiver's <mu> is held (Lock or RLock), unless the enclosing
//     function is annotated //mcvet:locked (the caller holds the lock) or
//     the access carries a justified //mcvet:allow;
//   - no return statement executes while a mutex is still held without a
//     deferred unlock (the leak that deadlocks the next writer);
//   - values containing sync.Mutex/sync.RWMutex are never copied — by
//     assignment, argument passing, return, range, or value receiver.
//
// The guarded-field and pairing checks are a linear, source-order
// simulation of each function body: Lock/RLock raise a per-mutex hold
// count, Unlock/RUnlock lower it, defer registers a function-lifetime
// unlock. That matches the straight-line lock...access...unlock shape this
// codebase uses everywhere (concurrent cuckoo papers — Kuszmaul's kick-out
// eviction schemes — show precisely this discipline eroding under sharded
// refactors); exotic control flow that confuses the simulation should be
// rewritten straight-line rather than suppressed.
package lockdiscipline

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mccuckoo/internal/analysis"
)

// Analyzer is the lockdiscipline check.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "guarded fields touched only under their mutex; lock/unlock paired; no lock copies",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	guarded := pass.Dirs.FieldDirs("guardedby")
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCopies(pass, fn)
			if !pass.Dirs.FuncHas(fn, "locked") {
				simulate(pass, fn, guarded)
			}
		}
	}
	return nil
}

// --- guarded-field and pairing simulation ---

type eventKind int

const (
	evLock eventKind = iota
	evUnlock
	evDeferUnlock
	evAccess
	evReturn
)

type event struct {
	pos   token.Pos
	kind  eventKind
	key   string // "base.mu" for lock events and the key an access needs
	field string // guarded field name, for the access message
}

func simulate(pass *analysis.Pass, fn *ast.FuncDecl, guarded map[*types.Var]analysis.Directive) {
	var events []event
	deferCalls := make(map[*ast.CallExpr]bool)
	// Returns inside func literals leave the closure, not fn, so they are
	// not pairing points. Guarded accesses inside a closure still count:
	// synchronous callbacks (the Range idiom) run at their source position,
	// under whatever locks the surrounding code holds there.
	var closures []*ast.FuncLit
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			closures = append(closures, lit)
		}
		return true
	})
	inClosure := func(pos token.Pos) bool {
		for _, lit := range closures {
			if lit.Body.Pos() <= pos && pos < lit.Body.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferCalls[n.Call] = true
		case *ast.CallExpr:
			if key, kind, ok := lockEvent(pass, n); ok {
				if kind == evUnlock && deferCalls[n] {
					kind = evDeferUnlock
				}
				events = append(events, event{pos: n.Pos(), kind: kind, key: key})
			}
		case *ast.SelectorExpr:
			sel := pass.TypesInfo.Selections[n]
			if sel == nil || sel.Kind() != types.FieldVal {
				return true
			}
			v, ok := sel.Obj().(*types.Var)
			if !ok {
				return true
			}
			if dir, isGuarded := guarded[v]; isGuarded {
				key := analysis.ExprString(n.X) + "." + dir.Args[0]
				events = append(events, event{pos: n.Pos(), kind: evAccess, key: key, field: v.Name()})
			}
		case *ast.ReturnStmt:
			if !inClosure(n.Pos()) {
				events = append(events, event{pos: n.Pos(), kind: evReturn})
			}
		}
		return true
	})
	events = append(events, event{pos: fn.Body.End(), kind: evReturn})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := make(map[string]int)
	deferred := make(map[string]bool)
	for _, e := range events {
		switch e.kind {
		case evLock:
			held[e.key]++
		case evUnlock:
			if held[e.key] > 0 {
				held[e.key]--
			}
		case evDeferUnlock:
			deferred[e.key] = true
		case evAccess:
			if held[e.key] == 0 && !deferred[e.key] {
				pass.Reportf(e.pos, "field %s is guarded by %s but accessed without holding it (annotate the function //mcvet:locked if the caller holds it)", e.field, e.key)
			}
		case evReturn:
			for key, n := range held {
				if n > 0 && !deferred[key] {
					pass.Reportf(e.pos, "return while still holding %s (no unlock on this path and no deferred unlock)", key)
				}
			}
		}
	}
}

// lockEvent decodes base.mu.Lock()-shaped calls on sync mutexes.
func lockEvent(pass *analysis.Pass, call *ast.CallExpr) (key string, kind eventKind, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = evLock
	case "Unlock", "RUnlock":
		kind = evUnlock
	default:
		return "", 0, false
	}
	if !isSyncLock(pass.TypesInfo.TypeOf(sel.X)) {
		return "", 0, false
	}
	return analysis.ExprString(sel.X), kind, true
}

// isSyncLock reports whether t is sync.Mutex or sync.RWMutex (possibly via
// pointer).
func isSyncLock(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// --- lock copy detection ---

func checkCopies(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		if t := pass.TypesInfo.TypeOf(fn.Recv.List[0].Type); t != nil {
			if _, isPtr := t.(*types.Pointer); !isPtr && containsLock(t, nil) {
				pass.Reportf(fn.Recv.Pos(), "value receiver copies %s, which contains a mutex; use a pointer receiver", t)
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				checkCopyExpr(pass, rhs, "assignment")
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				checkCopyExpr(pass, arg, "argument")
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				checkCopyExpr(pass, res, "return value")
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := pass.TypesInfo.TypeOf(n.Value); t != nil && containsLock(t, nil) {
					pass.Reportf(n.Value.Pos(), "range value copies %s, which contains a mutex; iterate by index", t)
				}
			}
		}
		return true
	})
}

// checkCopyExpr flags expressions that copy an existing lock-containing
// value. Composite literals construct fresh values and are exempt, as are
// pointers and function calls returning such values by design.
func checkCopyExpr(pass *analysis.Pass, e ast.Expr, context string) {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return
	}
	if containsLock(t, nil) {
		pass.Reportf(e.Pos(), "%s copies %s, which contains a mutex", context, t)
	}
}

func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	if isSyncLock(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

var _ = fmt.Sprintf // keep fmt imported for future diagnostics detail
