// Package a is the lockdiscipline fixture: guarded-field access, lock
// pairing, and mutex-copy cases.
package a

import "sync"

type state struct {
	mu  sync.RWMutex
	n   int
	tab map[uint64]uint64 //mcvet:guardedby mu
}

// properWrite is the straight-line lock idiom the analyzer must accept.
func properWrite(s *state, k, v uint64) {
	s.mu.Lock()
	s.tab[k] = v
	s.mu.Unlock()
}

// properDeferred is the deferred-unlock idiom.
func properDeferred(s *state, k uint64) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tab[k]
}

// rangeCallback mirrors Sharded.Range: returns inside the closure leave
// the closure, not the function, so the pairing check must not fire; the
// guarded access inside the closure runs under the lock held around it.
func rangeCallback(s *state, fn func(uint64) bool) {
	s.mu.RLock()
	walk(s.tab, func(k uint64) bool {
		if !fn(k) {
			return false
		}
		return true
	})
	s.mu.RUnlock()
}

func walk(m map[uint64]uint64, fn func(uint64) bool) {
	for k := range m {
		if !fn(k) {
			return
		}
	}
}

func unguardedRead(s *state, k uint64) uint64 {
	return s.tab[k] // want `field tab is guarded by s.mu but accessed without holding it`
}

func lockLeak(s *state, k, v uint64) {
	s.mu.Lock()
	if v == 0 {
		return // want `return while still holding s.mu`
	}
	s.tab[k] = v
	s.mu.Unlock()
}

func lockLeakImplicit(s *state, k, v uint64) {
	s.mu.Lock()
	s.tab[k] = v
} // want `return while still holding s.mu`

// applyLocked documents that its callers hold the lock; the analyzer
// trusts the annotation.
//
//mcvet:locked
func applyLocked(s *state, k, v uint64) {
	s.tab[k] = v
}

func (s state) valueReceiver() int { // want `value receiver copies a\.state, which contains a mutex`
	return s.n
}

func copyByDeref(sp *state) {
	cp := *sp // want `assignment copies a\.state, which contains a mutex`
	_ = cp.n
}

func copyByArg(sp *state) {
	consume(*sp) // want `argument copies a\.state, which contains a mutex`
}

// consume's by-value parameter is flagged at each call site, not at the
// declaration.
func consume(s state) int {
	return s.n
}

func copyByRange(states []state) int {
	total := 0
	for _, st := range states { // want `range value copies a\.state, which contains a mutex`
		total += st.n
	}
	return total
}
