package counterwrite_test

import (
	"testing"

	"mccuckoo/internal/analysis/analysistest"
	"mccuckoo/internal/analysis/counterwrite"
)

func TestCounterWrite(t *testing.T) {
	analysistest.Run(t, "testdata", counterwrite.Analyzer, "a")
}
