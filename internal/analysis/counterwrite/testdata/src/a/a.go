// Package a is the counterwrite fixture: a miniature of the core Table's
// restricted counter/flag fields and their sanctioned setters.
package a

type packed struct{ words []uint64 }

func (p *packed) Get(i int) uint64    { return p.words[i] }
func (p *packed) Len() int            { return len(p.words) }
func (p *packed) Set(i int, v uint64) { p.words[i] = v }
func (p *packed) Reset()              { clear(p.words) }

type table struct {
	counters packed //mcvet:restricted counters
	flags    packed //mcvet:restricted flags
	kicks    int    //mcvet:restricted counters
	size     int    // unrestricted: free access
}

// setCounter is the sanctioned mutation path for the counters class.
//
//mcvet:setter counters
func (t *table) setCounter(i int, v uint64) {
	t.counters.Set(i, v)
	t.kicks++
}

// setFlag covers a different class; counters stay off-limits here.
//
//mcvet:setter flags
func (t *table) setFlag(i int) {
	t.flags.Set(i, 1)
}

// rebuild mutates both classes, so it declares both.
//
//mcvet:setter counters flags
func (t *table) rebuild() {
	t.counters.Reset()
	t.flags.Reset()
}

// reads of any restricted field are always fine.
func (t *table) load(i int) uint64 {
	if i >= t.counters.Len() {
		return 0
	}
	t.size++
	return t.counters.Get(i) + t.flags.Get(i)
}

func (t *table) directMutation(i int) {
	t.counters.Set(i, 9) // want `Set call mutates restricted field counters \(class counters\) outside a //mcvet:setter counters function`
}

func (t *table) directAssign() {
	t.counters = packed{} // want `assignment to restricted field counters`
}

func (t *table) bump() {
	t.kicks++ // want `\+\+ on restricted field kicks`
}

func (t *table) leakAddress() *packed {
	return &t.counters // want `taking the address of restricted field counters`
}

//mcvet:setter flags
func (t *table) wrongClass(i int) {
	t.flags.Set(i, 0)
	t.counters.Set(i, 0) // want `Set call mutates restricted field counters \(class counters\) outside a //mcvet:setter counters function`
}

// reset carries a reviewed suppression: the allow comment is the escape
// hatch for a mutation that is deliberate but lives outside a setter.
func (t *table) reset() {
	t.counters.Reset() //mcvet:allow counterwrite one-shot test helper reviewed as reinitialization
}
