// Package counterwrite channels every mutation of a restricted field
// through its sanctioned setters. The paper's correctness argument leans
// on two shared-state invariants — copy counters only move through the
// documented transitions (set on insert, decrement on kick-out/delete),
// and the stash bloom-filter flags stay consistent with stash contents.
// Both live in fields annotated //mcvet:restricted <class>; functions
// annotated //mcvet:setter <class> (the setters in internal/core) may
// mutate them, and everything else gets read-only access.
//
// A mutation is: assigning to the field (or ++/--), taking its address
// (an escaped pointer can mutate later), or calling a method on it that is
// not in the known-pure set (Get, Len, Max, Width, SizeBytes, Words,
// Count — the read-only surface of the bitpack types).
package counterwrite

import (
	"go/ast"
	"go/types"

	"mccuckoo/internal/analysis"
)

// Analyzer is the counterwrite check.
var Analyzer = &analysis.Analyzer{
	Name: "counterwrite",
	Doc:  "restricted fields mutated only by //mcvet:setter functions of the same class",
	Run:  run,
}

// pureMethods is the read-only method surface of the restricted types
// (bitpack.Counters and bitpack.Bitset). Anything else mutates.
var pureMethods = map[string]bool{
	"Get": true, "Len": true, "Max": true, "Width": true,
	"SizeBytes": true, "Words": true, "Count": true,
}

func run(pass *analysis.Pass) error {
	restricted := pass.Dirs.FieldDirs("restricted")
	if len(restricted) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			classes := setterClasses(pass, fn)
			checkFunc(pass, fn, restricted, classes)
		}
	}
	return nil
}

func setterClasses(pass *analysis.Pass, fn *ast.FuncDecl) map[string]bool {
	args, ok := pass.Dirs.FuncArgs(fn, "setter")
	if !ok {
		return nil
	}
	classes := make(map[string]bool, len(args))
	for _, a := range args {
		classes[a] = true
	}
	return classes
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, restricted map[*types.Var]analysis.Directive, classes map[string]bool) {
	report := func(pos ast.Node, v *types.Var, class, what string) {
		if classes[class] {
			return
		}
		pass.Reportf(pos.Pos(), "%s restricted field %s (class %s) outside a //mcvet:setter %s function",
			what, v.Name(), class, class)
	}
	classOf := func(e ast.Expr) (*types.Var, string, bool) {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return nil, "", false
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return nil, "", false
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return nil, "", false
		}
		dir, ok := restricted[v]
		if !ok {
			return nil, "", false
		}
		return v, dir.Args[0], true
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v, class, ok := classOf(lhs); ok {
					report(lhs, v, class, "assignment to")
				}
			}
		case *ast.IncDecStmt:
			if v, class, ok := classOf(n.X); ok {
				report(n, v, class, n.Tok.String()+" on")
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if v, class, ok := classOf(n.X); ok {
					report(n, v, class, "taking the address of")
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if v, class, ok := classOf(sel.X); ok && !pureMethods[sel.Sel.Name] {
				report(n, v, class, sel.Sel.Name+" call mutates")
			}
		}
		return true
	})
}
