package nodeterminism_test

import (
	"testing"

	"mccuckoo/internal/analysis/analysistest"
	"mccuckoo/internal/analysis/nodeterminism"
)

func TestNoDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", nodeterminism.Analyzer, "a")
}
