// Package a is the nodeterminism fixture: clocks, global randomness, and
// map-order dependence inside //mcvet:deterministic functions.
package a

import (
	"math/rand"
	randv2 "math/rand/v2"
	"sort"
	"time"
)

//mcvet:deterministic
func encodeKeys(m map[uint64]uint64) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m { // want `map iteration order is randomized`
		out = append(out, k)
	}
	return out
}

// encodeKeysSorted is the fix the analyzer pushes toward: collect under a
// proven-commutative loop, then sort.
//
//mcvet:deterministic
func encodeKeysSorted(m map[uint64]uint64) []uint64 {
	out := make([]uint64, 0, len(m))
	//mcvet:allow nodeterminism append-then-sort; final order is independent of iteration order
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

//mcvet:deterministic
func stamped() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

//mcvet:deterministic
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

//mcvet:deterministic
func globalRand(n int) int {
	return rand.Intn(n) // want `rand\.Intn uses the global generator`
}

//mcvet:deterministic
func globalRandV2(n int) int {
	return randv2.IntN(n) // want `rand\.IntN uses the global generator`
}

// seededRand is fine: a locally seeded generator is reproducible state.
//
//mcvet:deterministic
func seededRand(r *rand.Rand, n int) int {
	return r.Intn(n)
}

// unannotated functions may use all of it; determinism is a per-function
// contract, not a package-wide one.
func telemetryTick() int64 {
	return time.Now().UnixNano() + int64(rand.Int())
}
