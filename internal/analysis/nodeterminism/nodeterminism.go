// Package nodeterminism keeps the serialization, snapshot, and repair
// paths byte-for-byte reproducible. The snapshot format is CRC-checked and
// compared across save/load cycles; Repair must converge to the same table
// regardless of scheduling. Functions annotated //mcvet:deterministic may
// therefore not consult:
//
//   - wall clocks: time.Now, time.Since, time.Until
//   - the math/rand and math/rand/v2 global generators (a seeded local
//     *rand.Rand is fine — it is part of the reproducible state)
//   - map iteration order: any range over a map inside a deterministic
//     function is flagged unless the loop body is order-independent, which
//     the author asserts with //mcvet:allow nodeterminism <why commutative>
//
// The check is annotation-scoped rather than package-scoped so the same
// file can hold a deterministic encoder next to a telemetry helper that
// legitimately reads the clock.
package nodeterminism

import (
	"go/ast"
	"go/types"

	"mccuckoo/internal/analysis"
)

// Analyzer is the nodeterminism check.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterminism",
	Doc:  "no clocks, global randomness, or map-order dependence in //mcvet:deterministic functions",
	Run:  run,
}

// bannedCalls maps package path -> function names whose results vary
// between runs.
var bannedCalls = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
		"Until": "reads the wall clock",
	},
	"math/rand": {
		"Int": "uses the global generator", "Intn": "uses the global generator",
		"Int31": "uses the global generator", "Int31n": "uses the global generator",
		"Int63": "uses the global generator", "Int63n": "uses the global generator",
		"Uint32": "uses the global generator", "Uint64": "uses the global generator",
		"Float32": "uses the global generator", "Float64": "uses the global generator",
		"Perm": "uses the global generator", "Shuffle": "uses the global generator",
		"Read": "uses the global generator",
	},
	"math/rand/v2": {
		"Int": "uses the global generator", "IntN": "uses the global generator",
		"Int32": "uses the global generator", "Int32N": "uses the global generator",
		"Int64": "uses the global generator", "Int64N": "uses the global generator",
		"Uint32": "uses the global generator", "Uint64": "uses the global generator",
		"UintN": "uses the global generator", "Uint64N": "uses the global generator",
		"Float32": "uses the global generator", "Float64": "uses the global generator",
		"Perm": "uses the global generator", "Shuffle": "uses the global generator",
		"N": "uses the global generator",
	},
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.Dirs.FuncHas(fn, "deterministic") {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pkg, name, ok := pkgCall(pass, n); ok {
				if why, banned := bannedCalls[pkg.Path()][name]; banned {
					pass.Reportf(n.Pos(), "%s.%s %s; deterministic paths must not call it", pkg.Name(), name, why)
				}
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map iteration order is randomized; ranging over a map in a deterministic path must be sorted first or proven commutative")
				}
			}
		}
		return true
	})
}

// pkgCall decodes pkg.Fn(...) calls into (imported package, function name).
func pkgCall(pass *analysis.Pass, call *ast.CallExpr) (*types.Package, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, "", false
	}
	pkgName, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName)
	if !ok {
		return nil, "", false
	}
	return pkgName.Imported(), sel.Sel.Name, true
}
