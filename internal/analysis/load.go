package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed, and type-checked package ready for
// analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Dirs  *Directives
}

// NewImporter returns the stdlib source importer used for dependency
// resolution. It type-checks imports from source, which keeps the framework
// free of x/tools; one importer should be shared across a whole run so its
// package cache amortizes.
func NewImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}

// LoadDir parses and type-checks the non-test .go files of one directory as
// the package importPath. Used both by the driver (per `go list` entry) and
// by analysistest (fixture directories, which go tooling ignores).
func LoadDir(fset *token.FileSet, dir, importPath string, imp types.Importer) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var files []string
	for _, m := range matches {
		if !strings.HasSuffix(m, "_test.go") {
			files = append(files, m)
		}
	}
	sort.Strings(files)
	return loadFiles(fset, files, importPath, imp)
}

func loadFiles(fset *token.FileSet, filenames []string, importPath string, imp types.Importer) (*Package, error) {
	if len(filenames) == 0 {
		return nil, fmt.Errorf("analysis: no Go files for %s", importPath)
	}
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Fset:  fset,
		Files: files,
		Types: pkg,
		Info:  info,
		Dirs:  parseDirectives(fset, files, info),
	}, nil
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

// Load resolves the given package patterns with the go command and loads
// each resulting package. Test files are not analyzed (mcvet guards the
// production paths; tests exercise them).
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, errBuf.String())
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset)
	var pkgs []*Package
	dec := json.NewDecoder(&out)
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("analysis: parsing go list output: %w", err)
		}
		if len(e.GoFiles) == 0 {
			continue
		}
		var filenames []string
		for _, f := range e.GoFiles {
			filenames = append(filenames, filepath.Join(e.Dir, f))
		}
		pkg, err := loadFiles(fset, filenames, e.ImportPath, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
