package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The //mcvet: comment grammar. Directives are comments with no space after
// the slashes, like //go: directives, so gofmt leaves them alone and godoc
// hides them:
//
//	//mcvet:hotpath [note]            func: must not allocate (hotpathalloc)
//	//mcvet:locked [note]             func: caller holds the relevant locks
//	//mcvet:deterministic [note]      func: nodeterminism applies
//	//mcvet:deadlined [note]          func: conn I/O must be deadline-armed (deadlinearm)
//	//mcvet:setter <class>... [--]    func: sanctioned mutator for counterwrite classes
//	//mcvet:guardedby <mutexField>    struct field: lockdiscipline applies
//	//mcvet:restricted <class>        struct field: counterwrite applies
//	//mcvet:lifecycle [note]          type: go statements need a tracked join (goroutinelifecycle)
//	//mcvet:allow <check> <reason>    any line: suppress <check> findings on this
//	                                  line or the line below; reason mandatory
//
// Function directives live in the function's doc comment group; field
// directives in the field's doc or trailing line comment; type directives in
// the type declaration's doc comment. An allow comment
// suppresses findings on its own source line (trailing style) or on the
// line immediately below (standalone style). Anything malformed — unknown
// verb, missing argument, misplaced directive — is itself reported by the
// runner as a `mcvet` hygiene finding, so a typo cannot silently disable a
// check.

const directivePrefix = "//mcvet:"

// A Directive is one parsed //mcvet: marker attached to a function or field.
type Directive struct {
	Verb string
	Args []string
	Pos  token.Pos
}

// An Allow is one parsed //mcvet:allow suppression comment.
type Allow struct {
	Check  string
	Reason string
	File   string
	Line   int
	Pos    token.Pos

	used bool // set by the runner when the allow suppressed a finding
}

// Directives holds every parsed //mcvet: marker of one package.
type Directives struct {
	funcs     map[*ast.FuncDecl][]Directive
	fields    map[*types.Var]Directive // guardedby/restricted, one per field
	typeNames map[*types.TypeName][]Directive
	allows    []*Allow
	bad       []Diagnostic // malformed or misplaced directives
}

// FuncHas reports whether fn carries the given directive verb.
func (d *Directives) FuncHas(fn *ast.FuncDecl, verb string) bool {
	_, ok := d.FuncArgs(fn, verb)
	return ok
}

// FuncArgs returns the arguments of fn's directive with the given verb.
func (d *Directives) FuncArgs(fn *ast.FuncDecl, verb string) ([]string, bool) {
	for _, dir := range d.funcs[fn] {
		if dir.Verb == verb {
			return dir.Args, true
		}
	}
	return nil, false
}

// FieldDirs returns every field carrying the given verb (guardedby or
// restricted), keyed by the field's type object.
func (d *Directives) FieldDirs(verb string) map[*types.Var]Directive {
	out := make(map[*types.Var]Directive)
	for v, dir := range d.fields {
		if dir.Verb == verb {
			out[v] = dir
		}
	}
	return out
}

// TypeHas reports whether the named type carries the given directive verb.
func (d *Directives) TypeHas(tn *types.TypeName, verb string) bool {
	for _, dir := range d.typeNames[tn] {
		if dir.Verb == verb {
			return true
		}
	}
	return false
}

// Allows returns the package's suppression comments.
func (d *Directives) Allows() []*Allow { return d.allows }

// parseDirectives extracts every //mcvet: marker from the package.
func parseDirectives(fset *token.FileSet, files []*ast.File, info *types.Info) *Directives {
	d := &Directives{
		funcs:     make(map[*ast.FuncDecl][]Directive),
		fields:    make(map[*types.Var]Directive),
		typeNames: make(map[*types.TypeName][]Directive),
	}
	for _, file := range files {
		// Comment groups attached to a function or field are claimed by
		// their owner; every other //mcvet: comment must be an allow.
		claimed := make(map[*ast.Comment]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				for _, c := range commentsOf(n.Doc) {
					claimed[c] = true
					if dir, ok := d.parseOne(fset, c, "func"); ok {
						d.funcs[n] = append(d.funcs[n], dir)
					}
				}
			case *ast.GenDecl:
				if n.Tok != token.TYPE {
					return true
				}
				// A doc comment on `type Foo ...` attaches to the GenDecl for
				// the common ungrouped form; grouped `type ( ... )` blocks put
				// per-type docs on the TypeSpec instead.
				for _, c := range commentsOf(n.Doc) {
					claimed[c] = true
					dir, ok := d.parseOne(fset, c, "type")
					if !ok {
						continue
					}
					if len(n.Specs) != 1 {
						d.badf(fset, c.Pos(), "mcvet:%s on a grouped type declaration is ambiguous; move it onto one type spec", dir.Verb)
						continue
					}
					d.claimType(info, n.Specs[0], dir)
				}
				for _, spec := range n.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					for _, c := range append(commentsOf(ts.Doc), commentsOf(ts.Comment)...) {
						claimed[c] = true
						if dir, ok := d.parseOne(fset, c, "type"); ok {
							d.claimType(info, ts, dir)
						}
					}
				}
			case *ast.Field:
				for _, c := range append(commentsOf(n.Doc), commentsOf(n.Comment)...) {
					claimed[c] = true
					dir, ok := d.parseOne(fset, c, "field")
					if !ok {
						continue
					}
					if len(n.Names) == 0 {
						d.badf(fset, c.Pos(), "mcvet:%s on an embedded field is not supported", dir.Verb)
						continue
					}
					if v, ok := info.Defs[n.Names[0]].(*types.Var); ok {
						if _, dup := d.fields[v]; dup {
							d.badf(fset, c.Pos(), "field %s carries more than one mcvet directive", n.Names[0].Name)
							continue
						}
						d.fields[v] = dir
					}
				}
			}
			return true
		})
		for _, group := range file.Comments {
			for _, c := range group.List {
				if claimed[c] || !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				// Unclaimed directives: only allow is positional; any other
				// verb here is detached from a declaration and inert.
				if verbOf(c.Text) == "allow" {
					d.parseAllow(fset, c)
				} else {
					d.badf(fset, c.Pos(), "misplaced directive %q: only //mcvet:allow may appear outside a function or field comment", firstWord(c.Text))
				}
			}
		}
	}
	return d
}

// parseOne parses a non-allow directive comment attached to a func or field.
// Allow comments are handled positionally even when they sit in a doc
// comment, so they are parsed here too and rejected from ownership.
func (d *Directives) parseOne(fset *token.FileSet, c *ast.Comment, owner string) (Directive, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return Directive{}, false
	}
	if verbOf(c.Text) == "allow" {
		d.parseAllow(fset, c)
		return Directive{}, false
	}
	fields := strings.Fields(stripWant(strings.TrimPrefix(c.Text, directivePrefix)))
	if len(fields) == 0 {
		d.badf(fset, c.Pos(), "empty mcvet directive")
		return Directive{}, false
	}
	dir := Directive{Verb: fields[0], Args: fields[1:], Pos: c.Pos()}
	spec, known := verbs[dir.Verb]
	if !known {
		d.badf(fset, c.Pos(), "unknown mcvet directive %q", dir.Verb)
		return Directive{}, false
	}
	if spec.owner != owner {
		d.badf(fset, c.Pos(), "mcvet:%s belongs on a %s, not a %s", dir.Verb, spec.owner, owner)
		return Directive{}, false
	}
	if len(dir.Args) < spec.minArgs {
		d.badf(fset, c.Pos(), "mcvet:%s needs %s", dir.Verb, spec.argHelp)
		return Directive{}, false
	}
	return dir, true
}

var verbs = map[string]struct {
	owner   string // "func", "field", or "type"
	minArgs int
	argHelp string
}{
	"hotpath":       {"func", 0, ""},
	"locked":        {"func", 0, ""},
	"deterministic": {"func", 0, ""},
	"deadlined":     {"func", 0, ""},
	"setter":        {"func", 1, "at least one class argument (e.g. counters)"},
	"guardedby":     {"field", 1, "the guarding mutex field name"},
	"restricted":    {"field", 1, "a class argument (e.g. counters)"},
	"lifecycle":     {"type", 0, ""},
}

// claimType records a type directive against the declared type's object.
func (d *Directives) claimType(info *types.Info, spec ast.Spec, dir Directive) {
	ts, ok := spec.(*ast.TypeSpec)
	if !ok {
		return
	}
	if tn, ok := info.Defs[ts.Name].(*types.TypeName); ok {
		d.typeNames[tn] = append(d.typeNames[tn], dir)
	}
}

// parseAllow parses a //mcvet:allow comment. Malformed allows are recorded
// as hygiene findings and do NOT suppress anything.
func (d *Directives) parseAllow(fset *token.FileSet, c *ast.Comment) {
	text := stripWant(strings.TrimPrefix(c.Text, directivePrefix))
	fields := strings.Fields(text)
	pos := fset.Position(c.Pos())
	if len(fields) < 2 {
		d.badf(fset, c.Pos(), "mcvet:allow needs a check name")
		return
	}
	check, reason := fields[1], strings.Join(fields[2:], " ")
	if reason == "" {
		d.badf(fset, c.Pos(), "mcvet:allow %s needs a reason: //mcvet:allow %s <why this finding is acceptable>", check, check)
		return
	}
	d.allows = append(d.allows, &Allow{
		Check: check, Reason: reason,
		File: pos.Filename, Line: pos.Line, Pos: c.Pos(),
	})
}

// stripWant drops an analysistest `// want` expectation trailing a
// directive, so fixture annotations parse the same as production ones.
func stripWant(text string) string {
	if i := strings.Index(text, "// want"); i >= 0 {
		return text[:i]
	}
	return text
}

func (d *Directives) badf(fset *token.FileSet, pos token.Pos, format string, args ...any) {
	d.bad = append(d.bad, Diagnostic{
		Pos:     fset.Position(pos),
		Check:   hygieneCheck,
		Message: sprintf(format, args...),
	})
}

func commentsOf(g *ast.CommentGroup) []*ast.Comment {
	if g == nil {
		return nil
	}
	return g.List
}

func verbOf(text string) string {
	rest := strings.TrimPrefix(text, directivePrefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

func firstWord(text string) string {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return text
	}
	return fields[0]
}
