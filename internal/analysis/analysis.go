// Package analysis is the repo's static-analysis framework: a minimal,
// stdlib-only reimplementation of the golang.org/x/tools go/analysis shape
// (Analyzer, Pass, diagnostics) plus the //mcvet: directive and suppression
// machinery the mcvet analyzers share.
//
// The x/tools module is deliberately not a dependency — the repo is
// stdlib-only by policy — so packages are loaded with `go list -json`,
// parsed with go/parser, and type-checked with go/types backed by the
// stdlib source importer. The API mirrors go/analysis closely enough that
// the analyzers read like ordinary vet checks and could be ported to the
// real framework by swapping imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named static check. Run inspects the package in the
// Pass and reports findings through pass.Reportf; the returned error means
// the analyzer itself failed (bad input, internal bug), not that findings
// exist.
type Analyzer struct {
	Name string // the check name used in findings and //mcvet:allow comments
	Doc  string // one-paragraph description: the invariant this check encodes
	Run  func(*Pass) error
}

// KnownChecks is the canonical list of mcvet check names. //mcvet:allow
// comments must name one of these (or an analyzer in the current run);
// anything else is reported as a suppression-hygiene error.
var KnownChecks = []string{
	"hotpathalloc",
	"lockdiscipline",
	"atomicmix",
	"counterwrite",
	"nodeterminism",
	"goroutinelifecycle",
	"deadlinearm",
	"tracepropagation",
	"metriclint",
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Dirs      *Directives

	diags *[]Diagnostic
}

// A Diagnostic is one finding, with the position already resolved.
// Suppressed findings (matched by a //mcvet:allow) are kept rather than
// dropped so the -json output mode can report them; text output and exit
// codes count only unsuppressed ones.
type Diagnostic struct {
	Pos        token.Position
	Check      string
	Message    string
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Check, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// ExprString renders an expression the way the lockdiscipline and
// counterwrite analyzers compare lock bases: types.ExprString, which matches
// source spelling for the selector chains this codebase uses.
func ExprString(e ast.Expr) string { return types.ExprString(e) }
