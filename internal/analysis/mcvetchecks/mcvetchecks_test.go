package mcvetchecks_test

import (
	"testing"

	"mccuckoo/internal/analysis"
	"mccuckoo/internal/analysis/mcvetchecks"
)

// TestRegistryMatchesKnownChecks keeps the driver registry and the
// suppression whitelist in lockstep: an analyzer missing from KnownChecks
// would make its own allows report as unknown, and a KnownChecks entry
// with no analyzer would let stale allows for it linger unreported.
func TestRegistryMatchesKnownChecks(t *testing.T) {
	known := make(map[string]bool, len(analysis.KnownChecks))
	for _, name := range analysis.KnownChecks {
		known[name] = true
	}
	registered := make(map[string]bool, len(mcvetchecks.All))
	for _, a := range mcvetchecks.All {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing a name, doc, or run function", a.Name)
		}
		if registered[a.Name] {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		registered[a.Name] = true
		if !known[a.Name] {
			t.Errorf("analyzer %q is not in analysis.KnownChecks", a.Name)
		}
	}
	for _, name := range analysis.KnownChecks {
		if !registered[name] {
			t.Errorf("analysis.KnownChecks lists %q but no analyzer registers it", name)
		}
	}
}
