package mcvetchecks_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mccuckoo/internal/analysis"
	"mccuckoo/internal/analysis/mcvetchecks"
)

// TestRegistryMatchesKnownChecks keeps the driver registry and the
// suppression whitelist in lockstep: an analyzer missing from KnownChecks
// would make its own allows report as unknown, and a KnownChecks entry
// with no analyzer would let stale allows for it linger unreported.
func TestRegistryMatchesKnownChecks(t *testing.T) {
	known := make(map[string]bool, len(analysis.KnownChecks))
	for _, name := range analysis.KnownChecks {
		known[name] = true
	}
	registered := make(map[string]bool, len(mcvetchecks.All))
	for _, a := range mcvetchecks.All {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing a name, doc, or run function", a.Name)
		}
		if registered[a.Name] {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		registered[a.Name] = true
		if !known[a.Name] {
			t.Errorf("analyzer %q is not in analysis.KnownChecks", a.Name)
		}
	}
	for _, name := range analysis.KnownChecks {
		if !registered[name] {
			t.Errorf("analysis.KnownChecks lists %q but no analyzer registers it", name)
		}
	}
}

// TestDesignTableMatchesRegistry is the drift gate for DESIGN.md §9: every
// analyzer in the registry has a row in the design table and vice versa,
// so a new check cannot ship undocumented (and a removed one cannot leave
// its documentation behind).
func TestDesignTableMatchesRegistry(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "..", "DESIGN.md"))
	if err != nil {
		t.Fatalf("reading DESIGN.md: %v", err)
	}
	documented := make(map[string]bool)
	inSection := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "## ") {
			inSection = strings.Contains(line, "Static analysis (mcvet)")
			continue
		}
		if !inSection || !strings.HasPrefix(line, "| `") {
			continue
		}
		name := line[len("| `"):]
		if i := strings.IndexByte(name, '`'); i >= 0 {
			documented[name[:i]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("found no analyzer rows in the DESIGN.md §9 table; did the section heading or row format change?")
	}
	if len(documented) != len(mcvetchecks.All) || len(documented) != len(analysis.KnownChecks) {
		t.Errorf("drift: DESIGN.md documents %d analyzers, registry has %d, KnownChecks has %d",
			len(documented), len(mcvetchecks.All), len(analysis.KnownChecks))
	}
	for _, a := range mcvetchecks.All {
		if !documented[a.Name] {
			t.Errorf("analyzer %q has no row in the DESIGN.md §9 table", a.Name)
		}
	}
	for name := range documented {
		found := false
		for _, a := range mcvetchecks.All {
			if a.Name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("DESIGN.md §9 documents %q but no analyzer registers it", name)
		}
	}
}
