// Package mcvetchecks is the registry of every analyzer mcvet runs. The
// driver and the suite-level tests both import this single list, so a new
// analyzer registered here is automatically enforced in CI and covered by
// the registry consistency test.
package mcvetchecks

import (
	"mccuckoo/internal/analysis"
	"mccuckoo/internal/analysis/atomicmix"
	"mccuckoo/internal/analysis/counterwrite"
	"mccuckoo/internal/analysis/deadlinearm"
	"mccuckoo/internal/analysis/goroutinelifecycle"
	"mccuckoo/internal/analysis/hotpathalloc"
	"mccuckoo/internal/analysis/lockdiscipline"
	"mccuckoo/internal/analysis/metriclint"
	"mccuckoo/internal/analysis/nodeterminism"
	"mccuckoo/internal/analysis/tracepropagation"
)

// All is the full mcvet analyzer suite, in report order.
var All = []*analysis.Analyzer{
	hotpathalloc.Analyzer,
	lockdiscipline.Analyzer,
	atomicmix.Analyzer,
	counterwrite.Analyzer,
	nodeterminism.Analyzer,
	goroutinelifecycle.Analyzer,
	deadlinearm.Analyzer,
	tracepropagation.Analyzer,
	metriclint.Analyzer,
}
