// Package goroutinelifecycle keeps the serving tier free of goroutine
// leaks: every `go` statement in the orbit of a type marked
// //mcvet:lifecycle must have a statically visible join. The server,
// replicator, and sweeper all hold long-lived goroutine fleets whose
// shutdown paths are load-bearing (graceful drain, Stop, Close); a spawn
// without a join is exactly the bug their tests cannot stage, because a
// leaked goroutine fails no assertion — it just accumulates.
//
// A spawn is in scope when the enclosing function is a method of a
// lifecycle-marked type, or when the spawned callee is such a method (the
// constructor-spawns-the-loop idiom). A spawn counts as joined when any of
// the tracked idioms is present:
//
//   - WaitGroup discipline: an X.Add(...) on a sync.WaitGroup earlier in
//     the spawning function, with X.Done() on the same WaitGroup inside the
//     goroutine body.
//   - Stop-channel: the body receives from (or ranges over) a channel that
//     is a struct field, a ctx.Done() result, or a local/parameter channel
//     that some function in the package closes.
//   - Completion signal: the body closes a local channel the spawning
//     function receives from, or sends on a local channel made with an
//     explicit capacity (the bounded fan-out idiom — the send cannot block,
//     so the goroutine's lifetime is bounded by its own work).
//
// The matching is linear and package-local by design; a spawn that is
// joined through a helper in another package needs an
// //mcvet:allow goroutinelifecycle with the reason spelled out.
package goroutinelifecycle

import (
	"go/ast"
	"go/types"

	"mccuckoo/internal/analysis"
)

// Analyzer is the goroutinelifecycle check.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinelifecycle",
	Doc:  "go statements in //mcvet:lifecycle types must have a tracked join (WaitGroup, stop-channel, or completion signal)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	marked := markedTypes(pass)
	if len(marked) == 0 {
		return nil
	}
	methods := methodDecls(pass)
	closed := closedObjects(pass)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			inMethod := marked[receiverType(pass, fn)]
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body, calleeType := spawnBody(pass, g, methods)
				if !inMethod && !marked[calleeType] {
					return true
				}
				if joined(pass, fn, g, body, closed) {
					return true
				}
				pass.Reportf(g.Pos(), "go statement in lifecycle-scoped code has no tracked join (WaitGroup Add/Done, stop-channel receive, or completion signal)")
				return true
			})
		}
	}
	return nil
}

// markedTypes collects the package's //mcvet:lifecycle types.
func markedTypes(pass *analysis.Pass) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if tn, ok := scope.Lookup(name).(*types.TypeName); ok && pass.Dirs.TypeHas(tn, "lifecycle") {
			out[tn] = true
		}
	}
	return out
}

// methodDecls indexes the package's method declarations by receiver type
// and name, so a `go x.method(...)` spawn can be checked against the
// method's body.
func methodDecls(pass *analysis.Pass) map[*types.TypeName]map[string]*ast.FuncDecl {
	out := make(map[*types.TypeName]map[string]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil {
				continue
			}
			tn := receiverType(pass, fn)
			if tn == nil {
				continue
			}
			if out[tn] == nil {
				out[tn] = make(map[string]*ast.FuncDecl)
			}
			out[tn][fn.Name.Name] = fn
		}
	}
	return out
}

// receiverType resolves a method's receiver to its named-type object.
func receiverType(pass *analysis.Pass, fn *ast.FuncDecl) *types.TypeName {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	t := fn.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.ParenExpr:
			t = u.X
		case *ast.Ident:
			if tn, ok := pass.TypesInfo.ObjectOf(u).(*types.TypeName); ok {
				return tn
			}
			return nil
		default:
			return nil
		}
	}
}

// spawnBody resolves a go statement to the spawned code's body (nil when it
// lives in another package) and, for method spawns, the receiver's type.
func spawnBody(pass *analysis.Pass, g *ast.GoStmt, methods map[*types.TypeName]map[string]*ast.FuncDecl) (*ast.BlockStmt, *types.TypeName) {
	switch fun := unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, nil
	case *ast.SelectorExpr:
		obj, ok := pass.TypesInfo.ObjectOf(fun.Sel).(*types.Func)
		if !ok {
			return nil, nil
		}
		sig, ok := obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return nil, nil
		}
		tn := namedTypeName(sig.Recv().Type())
		if tn == nil {
			return nil, nil
		}
		if decl := methods[tn][obj.Name()]; decl != nil {
			return decl.Body, tn
		}
		return nil, tn
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.ObjectOf(fun).(*types.Func); ok {
			for _, file := range pass.Files {
				for _, decl := range file.Decls {
					if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && pass.TypesInfo.ObjectOf(fd.Name) == obj {
						return fd.Body, nil
					}
				}
			}
		}
	}
	return nil, nil
}

// joined reports whether the spawn has a tracked join.
func joined(pass *analysis.Pass, encl *ast.FuncDecl, g *ast.GoStmt, body *ast.BlockStmt, closed map[types.Object]bool) bool {
	if body == nil {
		return false
	}
	if waitGroupJoin(pass, encl, g, body) {
		return true
	}
	if stopChannelJoin(pass, body, closed) {
		return true
	}
	return completionSignal(pass, encl, body)
}

// waitGroupJoin matches the Add-before-spawn / Done-in-body discipline on
// the same sync.WaitGroup object.
func waitGroupJoin(pass *analysis.Pass, encl *ast.FuncDecl, g *ast.GoStmt, body *ast.BlockStmt) bool {
	var added []types.Object
	ast.Inspect(encl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= g.Pos() {
			return true
		}
		if obj := waitGroupMethodBase(pass, call, "Add"); obj != nil {
			added = append(added, obj)
		}
		return true
	})
	if len(added) == 0 {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := waitGroupMethodBase(pass, call, "Done"); obj != nil {
			for _, a := range added {
				if a == obj {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// waitGroupMethodBase decodes X.<name>() where X is a sync.WaitGroup,
// returning X's object (field or local) or nil.
func waitGroupMethodBase(pass *analysis.Pass, call *ast.CallExpr, name string) types.Object {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	obj := baseObject(pass, sel.X)
	if obj == nil || !isNamedType(obj.Type(), "sync", "WaitGroup") {
		return nil
	}
	return obj
}

// stopChannelJoin reports whether the body receives from a channel that
// plausibly signals shutdown: a struct field, a ctx.Done() result, or a
// channel some function in the package closes.
func stopChannelJoin(pass *analysis.Pass, body *ast.BlockStmt, closed map[types.Object]bool) bool {
	found := false
	check := func(e ast.Expr) {
		e = unparen(e)
		if call, ok := e.(*ast.CallExpr); ok {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				found = true // ctx.Done()-style cancellation
			}
			return
		}
		obj := baseObject(pass, e)
		if obj == nil {
			return
		}
		if v, ok := obj.(*types.Var); ok && v.IsField() {
			found = true // stop/drain channel field
			return
		}
		if closed[obj] {
			found = true // channel closed somewhere in the package
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				check(n.X)
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					check(n.X)
				}
			}
		}
		return true
	})
	return found
}

// completionSignal reports whether the goroutine body signals its own
// completion back to the spawning function: closing a local channel the
// spawner receives from, or sending on an explicitly buffered local channel
// (the bounded fan-out idiom).
func completionSignal(pass *analysis.Pass, encl *ast.FuncDecl, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if obj := baseObject(pass, n.Args[0]); obj != nil && receivedIn(pass, encl.Body, obj) {
					found = true
				}
			}
		case *ast.SendStmt:
			if obj := baseObject(pass, n.Chan); obj != nil && bufferedMake(pass, encl.Body, obj) {
				found = true
			}
		}
		return true
	})
	return found
}

// receivedIn reports whether fn's body receives from obj's channel.
func receivedIn(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && baseObject(pass, n.X) == obj {
				found = true
			}
		case *ast.RangeStmt:
			if baseObject(pass, n.X) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// bufferedMake reports whether obj is bound to a make(chan T, cap) with an
// explicit capacity inside body.
func bufferedMake(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || pass.TypesInfo.ObjectOf(id) != obj {
				continue
			}
			if call, ok := unparen(assign.Rhs[i]).(*ast.CallExpr); ok {
				if fn, ok := unparen(call.Fun).(*ast.Ident); ok && fn.Name == "make" && len(call.Args) == 2 {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// closedObjects collects every object passed to the close builtin anywhere
// in the package.
func closedObjects(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
				if obj := baseObject(pass, call.Args[0]); obj != nil {
					out[obj] = true
				}
			}
			return true
		})
	}
	return out
}

// baseObject resolves an identifier or selector chain tail to its object:
// `pipe` to the local, `s.drain` to the drain field.
func baseObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(e)
	case *ast.SelectorExpr:
		return pass.TypesInfo.ObjectOf(e.Sel)
	}
	return nil
}

func namedTypeName(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

func isNamedType(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
