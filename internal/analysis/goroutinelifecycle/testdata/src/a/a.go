// Package a is the goroutinelifecycle fixture: spawns in the orbit of a
// //mcvet:lifecycle type with and without tracked joins.
package a

import (
	"context"
	"sync"
)

//mcvet:lifecycle
type Server struct {
	wg   sync.WaitGroup
	stop chan struct{}
}

// Serve is the WaitGroup discipline: Add before the spawn, Done inside it.
func (s *Server) Serve() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
	}()
}

// Start spawns a method whose body receives from a stop-channel field.
func (s *Server) Start() {
	go s.loop()
}

func (s *Server) loop() {
	for {
		select {
		case <-s.stop:
			return
		default:
		}
	}
}

// Pump is the worker idiom: the goroutine ranges over a local channel the
// spawner closes.
func (s *Server) Pump() {
	work := make(chan int)
	go func() {
		for range work {
		}
	}()
	close(work)
}

// Flush is the completion signal: the goroutine closes a local channel the
// spawner receives from.
func (s *Server) Flush() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

// FanOut is the bounded fan-out idiom: each goroutine's only send lands in
// an explicitly buffered channel, so its lifetime is bounded by its work.
func (s *Server) FanOut(n int) {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			ch <- i
		}(i)
	}
}

// Watch joins through context cancellation.
func (s *Server) Watch(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func (s *Server) Leak() {
	go func() { // want `no tracked join`
		for {
		}
	}()
}

func (s *Server) tick() {}

func (s *Server) StartTick() {
	go s.tick() // want `no tracked join`
}

// NewServer is a plain function, but its spawned callees are methods of a
// lifecycle-marked type, so the spawns are still in scope.
func NewServer() *Server {
	s := &Server{stop: make(chan struct{})}
	go s.loop()
	go s.tick() // want `no tracked join`
	return s
}

// StartTickAllowed shows the escape hatch for a deliberately untracked
// spawn.
func (s *Server) StartTickAllowed() {
	//mcvet:allow goroutinelifecycle fixture: tick returns immediately, lifetime trivially bounded
	go s.tick()
}

// quiet is unmarked: its spawns are out of scope entirely.
type quiet struct{}

func (q *quiet) run() {
	go func() {
		for {
		}
	}()
}
