package goroutinelifecycle_test

import (
	"testing"

	"mccuckoo/internal/analysis/analysistest"
	"mccuckoo/internal/analysis/goroutinelifecycle"
)

func TestGoroutineLifecycle(t *testing.T) {
	analysistest.Run(t, "testdata", goroutinelifecycle.Analyzer, "a")
}
