package bench

import (
	"strings"
	"testing"
)

func TestConcurrentSweepSmall(t *testing.T) {
	o := ConcurrentOptions{
		Capacity:   3 * 1024,
		Ops:        20000,
		Goroutines: []int{1, 2},
		Shards:     []int{2, 4},
		Seed:       3,
	}
	results, err := ConcurrentSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	tput := results[0]
	if tput.Table == nil || len(tput.Table.Series) != 3 {
		t.Fatalf("throughput table malformed: %+v", tput)
	}
	for _, s := range tput.Table.Series {
		for _, g := range []float64{1, 2} {
			y, ok := s.At(g)
			if !ok || y <= 0 {
				t.Fatalf("series %q has no positive throughput at %g goroutines", s.Name, g)
			}
		}
	}
	if tput.Table.Series[0].Name != "global-lock" ||
		tput.Table.Series[1].Name != "sharded/2" ||
		tput.Table.Series[2].Name != "sharded/4" {
		t.Fatalf("unexpected series names")
	}
	stats := results[1]
	if len(stats.Rows) != 1+4 { // header + 4 shards of the widest config
		t.Fatalf("%d stat rows, want 5", len(stats.Rows))
	}
	if !strings.Contains(stats.Notes[0], "routing balance") {
		t.Fatalf("stats notes missing balance line: %v", stats.Notes)
	}
}

func TestConcurrentSweepBatched(t *testing.T) {
	o := ConcurrentOptions{
		Capacity:   3 * 1024,
		Ops:        10000,
		Goroutines: []int{2},
		Shards:     []int{4},
		Batch:      64,
		Seed:       5,
	}
	results, err := ConcurrentSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(results[0].Table.Title, "batched<=64") {
		t.Fatalf("title does not reflect batch mode: %q", results[0].Table.Title)
	}
}

func TestConcurrentSweepValidation(t *testing.T) {
	for _, bad := range []ConcurrentOptions{
		{Shards: []int{3}},
		{Goroutines: []int{0}},
		{Capacity: 10},
	} {
		if _, err := ConcurrentSweep(bad); err == nil {
			t.Errorf("options %+v accepted", bad)
		}
	}
}
