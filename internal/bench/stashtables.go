package bench

import (
	"fmt"

	"mccuckoo/internal/kv"
	"mccuckoo/internal/metrics"
	"mccuckoo/internal/workload"
)

// TableII reproduces "Stash performance for 3-hash 1-slot McCuckoo":
// stash population and negative-lookup stash-visit rate at loads near the
// single-slot limit, for maxloop 200 and 500.
func TableII(o Options) ([]*Result, error) {
	return stashTable(o, "tab2",
		"Table II — stash performance, 3-hash 1-slot McCuckoo",
		SchemeMcCuckoo,
		[]float64{0.88, 0.89, 0.90, 0.91, 0.92, 0.93})
}

// TableIII reproduces "Stash performance for 3-hash 3-slot McCuckoo" at
// loads up to 100%.
func TableIII(o Options) ([]*Result, error) {
	return stashTable(o, "tab3",
		"Table III — stash performance, 3-hash 3-slot McCuckoo",
		SchemeBMcCuckoo,
		[]float64{0.975, 0.98, 0.985, 0.99, 0.995, 1.0})
}

func stashTable(o Options, id, title string, s Scheme, loads []float64) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	rows := [][]string{{"load", "maxloop", "stash items", "% in all items", "% visits in lookups"}}
	for _, load := range loads {
		for _, maxloop := range []int{200, 500} {
			var items, share, visits metrics.Agg
			for run := 0; run < o.Runs; run++ {
				st, err := stashPoint(s, o, run, load, maxloop)
				if err != nil {
					return nil, err
				}
				items.Add(st.items)
				share.Add(st.share)
				visits.Add(st.visitRate)
			}
			rows = append(rows, []string{
				fmt.Sprintf("%.1f%%", load*100),
				fmt.Sprintf("%d", maxloop),
				fmt.Sprintf("%.1f", items.Mean()),
				fmt.Sprintf("%.4f%%", share.Mean()*100),
				fmt.Sprintf("%.4f%%", visits.Mean()*100),
			})
		}
	}
	return []*Result{{ID: id, Title: title, Rows: rows}}, nil
}

type stashStats struct {
	items     float64 // stash population after the fill
	share     float64 // stash items / all inserted items
	visitRate float64 // negative lookups that probed the stash
}

func stashPoint(s Scheme, o Options, run int, load float64, maxloop int) (stashStats, error) {
	seed := o.runSeed(run)
	tab, err := build(s, o, seed, tableConfig{stash: true, maxLoop: maxloop})
	if err != nil {
		return stashStats{}, err
	}
	target := int(load * float64(tab.Capacity()))
	keys := workload.Unique(seed, target)
	for _, k := range keys {
		if tab.Insert(k, k+1).Status == kv.Failed {
			return stashStats{}, fmt.Errorf("bench: %s failed with unbounded stash", s)
		}
	}
	st := stashStats{
		items: float64(tab.StashLen()),
		share: float64(tab.StashLen()) / float64(target),
	}
	negatives := workload.Negative(seed, o.Queries, keys)
	probesBefore := tab.Stats().StashProbe
	for _, k := range negatives {
		if _, ok := tab.Lookup(k); ok {
			return stashStats{}, fmt.Errorf("bench: phantom hit in stash table")
		}
	}
	st.visitRate = float64(tab.Stats().StashProbe-probesBefore) / float64(len(negatives))
	return st, nil
}
