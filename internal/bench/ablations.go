package bench

import (
	"fmt"

	"mccuckoo/internal/core"
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/metrics"
	"mccuckoo/internal/workload"
)

// AblationResolver compares the random-walk resolver against MinCounter
// inside both multi-copy schemes (§III.D claims any resolver plugs in).
func AblationResolver(o Options) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	variants := []struct {
		name   string
		scheme Scheme
		policy kv.KickPolicy
	}{
		{"McCuckoo/random-walk", SchemeMcCuckoo, kv.RandomWalk},
		{"McCuckoo/min-counter", SchemeMcCuckoo, kv.MinCounter},
		{"B-McCuckoo/random-walk", SchemeBMcCuckoo, kv.RandomWalk},
		{"B-McCuckoo/min-counter", SchemeBMcCuckoo, kv.MinCounter},
	}
	series := make([]*metrics.Series, len(variants))
	for i, v := range variants {
		series[i] = metrics.NewSeries(v.name)
		loads := loadsFor(v.scheme, StandardLoads)
		for run := 0; run < o.Runs; run++ {
			points, err := insertSweepTC(v.scheme, o, run, loads, tableConfig{policy: v.policy})
			if err != nil {
				return nil, err
			}
			for _, p := range points {
				series[i].Add(p.load*100, p.kicks)
			}
		}
	}
	return []*Result{{
		ID: "abl-resolver",
		Table: &metrics.Table{
			Title:  "Ablation — kick-outs per insertion, random-walk vs MinCounter resolver",
			XLabel: "load",
			XFmt:   "%.0f%%",
			YFmt:   "%.4f",
			Series: series,
		},
	}}, nil
}

// AblationPrescreen compares McCuckoo lookups with the counter pre-screen on
// and off (§IV.F notes the counters can be skipped; this quantifies what
// they buy in off-chip reads).
func AblationPrescreen(o Options) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	variants := []struct {
		name     string
		positive bool
		disable  bool
	}{
		{"hit/prescreen-on", true, false},
		{"hit/prescreen-off", true, true},
		{"miss/prescreen-on", false, false},
		{"miss/prescreen-off", false, true},
	}
	series := make([]*metrics.Series, len(variants))
	loads := loadsFor(SchemeMcCuckoo, StandardLoads)
	for i, v := range variants {
		series[i] = metrics.NewSeries(v.name)
		for run := 0; run < o.Runs; run++ {
			points, err := lookupSweepTC(SchemeMcCuckoo, o, run, loads, v.positive,
				tableConfig{disablePrescreen: v.disable})
			if err != nil {
				return nil, err
			}
			for _, p := range points {
				series[i].Add(p.load*100, p.offReads)
			}
		}
	}
	return []*Result{{
		ID: "abl-prescreen",
		Table: &metrics.Table{
			Title:  "Ablation — off-chip reads per McCuckoo lookup, counter pre-screen on vs off",
			XLabel: "load",
			XFmt:   "%.0f%%",
			YFmt:   "%.4f",
			Series: series,
		},
	}}, nil
}

// AblationDeletion compares the two deletion modes (§III.B.3): after a batch
// of deletions, counter-reset mode loses the zero-counter shortcut while
// tombstone mode keeps it, at the cost of a wider counter array.
func AblationDeletion(o Options) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	rows := [][]string{{"mode", "counter bits", "miss reads/op (no deletes)", "miss reads/op (after deletes)"}}
	for _, mode := range []core.DeletionMode{core.ResetCounters, core.Tombstone} {
		var before, after metrics.Agg
		var bits uint
		for run := 0; run < o.Runs; run++ {
			b, a, w, err := deletionMissCost(o, run, mode)
			if err != nil {
				return nil, err
			}
			before.Add(b)
			after.Add(a)
			bits = w
		}
		rows = append(rows, []string{
			mode.String(),
			fmt.Sprintf("%d", bits),
			fmt.Sprintf("%.4f", before.Mean()),
			fmt.Sprintf("%.4f", after.Mean()),
		})
	}
	return []*Result{{
		ID:    "abl-deletion",
		Title: "Ablation — negative-lookup cost across deletion modes (McCuckoo, 60% load, 20% deleted)",
		Rows:  rows,
	}}, nil
}

// deletionMissCost fills a McCuckoo table to 60%, measures negative-lookup
// reads, deletes a fifth of the items, and measures again.
func deletionMissCost(o Options, run int, mode core.DeletionMode) (before, after float64, counterBits uint, err error) {
	seed := o.runSeed(run)
	cfg := core.Config{
		D: 3, BucketsPerTable: o.Capacity / 3, MaxLoop: o.MaxLoop,
		Seed: seed, Deletion: mode, StashEnabled: true, AssumeUniqueKeys: true,
	}
	tab, err := core.New(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	counterBits = uint(8 * tab.OnChipBytes() / tab.Capacity())
	target := int(0.60 * float64(tab.Capacity()))
	keys := workload.Unique(seed, target)
	for _, k := range keys {
		if tab.Insert(k, k+1).Status == kv.Failed {
			return 0, 0, 0, fmt.Errorf("bench: fill failed")
		}
	}
	negatives := workload.Negative(seed, o.Queries, keys)
	missCost := func() float64 {
		snap := tab.Meter().Snapshot()
		for _, k := range negatives {
			tab.Lookup(k)
		}
		d := tab.Meter().Snapshot().Sub(snap)
		return float64(d.OffChipReads) / float64(len(negatives))
	}
	before = missCost()
	s := hashutil.Mix64(seed + 5)
	for i := 0; i < target/5; i++ {
		idx := int(hashutil.SplitMix64(&s) % uint64(target))
		tab.Delete(keys[idx]) // duplicates simply miss
	}
	after = missCost()
	return before, after, counterBits, nil
}

// AblationBaselineResolver compares the baseline cuckoo table's three
// collision resolvers — BFS (the original strategy), random walk, and
// MinCounter — in both relocations and off-chip reads per insertion. It
// situates McCuckoo's contribution: the counters remove the blindness that
// forces single-copy schemes to pay in one currency or the other.
func AblationBaselineResolver(o Options) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	policies := []kv.KickPolicy{kv.BFS, kv.RandomWalk, kv.MinCounter}
	kicks := make([]*metrics.Series, len(policies))
	reads := make([]*metrics.Series, len(policies))
	loads := loadsFor(SchemeCuckoo, StandardLoads)
	for i, pol := range policies {
		kicks[i] = metrics.NewSeries("Cuckoo/" + pol.String())
		reads[i] = metrics.NewSeries("Cuckoo/" + pol.String())
		for run := 0; run < o.Runs; run++ {
			points, err := insertSweepTC(SchemeCuckoo, o, run, loads, tableConfig{policy: pol})
			if err != nil {
				return nil, err
			}
			for _, p := range points {
				kicks[i].Add(p.load*100, p.kicks)
				reads[i].Add(p.load*100, p.offReads)
			}
		}
	}
	return []*Result{
		{
			ID: "abl-bfs-kicks",
			Table: &metrics.Table{
				Title:  "Ablation — baseline resolver, relocations per insertion",
				XLabel: "load",
				XFmt:   "%.0f%%",
				YFmt:   "%.4f",
				Series: kicks,
			},
		},
		{
			ID: "abl-bfs-reads",
			Table: &metrics.Table{
				Title:  "Ablation — baseline resolver, off-chip reads per insertion",
				XLabel: "load",
				XFmt:   "%.0f%%",
				YFmt:   "%.4f",
				Series: reads,
			},
		},
	}, nil
}

// AblationHashFunctions sweeps the hash-function count d for McCuckoo,
// quantifying the paper's claim that "d=3 is actually sufficient for most
// practical scenarios": d=2 fails early, d=4 buys little extra load for a
// wider counter array and more candidate probes.
func AblationHashFunctions(o Options) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	rows := [][]string{{"d", "counter bits", "first-failure load", "miss reads/op @50%", "redundant writes/slot"}}
	for _, d := range []int{2, 3, 4} {
		var fail, miss, redundant metrics.Agg
		var bits uint
		for run := 0; run < o.Runs; run++ {
			f, mr, rw, b, err := dSweepPoint(o, run, d)
			if err != nil {
				return nil, err
			}
			fail.Add(f)
			miss.Add(mr)
			redundant.Add(rw)
			bits = b
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%d", bits),
			fmt.Sprintf("%.2f%%", fail.Mean()*100),
			fmt.Sprintf("%.4f", miss.Mean()),
			fmt.Sprintf("%.4f", redundant.Mean()),
		})
	}
	return []*Result{{
		ID:    "abl-d",
		Title: "Ablation — hash-function count d in McCuckoo (maxloop 500)",
		Rows:  rows,
		Notes: []string{"the paper fixes d=3: enough for >90% load with 2-bit counters"},
	}}, nil
}

// dSweepPoint measures one run of the d ablation: the first-failure load
// (no stash), then on a fresh stashed table at 50% load the negative-lookup
// cost and the per-slot redundant writes.
func dSweepPoint(o Options, run, d int) (failLoad, missReads, redundantPerSlot float64, counterBits uint, err error) {
	seed := o.runSeed(run)
	capacity := o.Capacity / d * d
	mk := func(stash bool) (*core.Table, error) {
		return core.New(core.Config{
			D: d, BucketsPerTable: capacity / d, MaxLoop: o.MaxLoop,
			Seed: seed, StashEnabled: stash, AssumeUniqueKeys: true,
		})
	}
	tab, err := mk(false)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	counterBits = uint(8 * tab.OnChipBytes() / tab.Capacity())
	keys := workload.Unique(seed, tab.Capacity())
	failLoad = 1.0
	for _, k := range keys {
		if tab.Insert(k, k).Status == kv.Failed {
			failLoad = tab.LoadRatio()
			break
		}
	}

	tab2, err := mk(true)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	half := tab2.Capacity() / 2
	for _, k := range keys[:half] {
		if tab2.Insert(k, k).Status == kv.Failed {
			return 0, 0, 0, 0, fmt.Errorf("bench: d=%d fill failed", d)
		}
	}
	redundantPerSlot = float64(tab2.RedundantWrites()) / float64(tab2.Capacity())
	negatives := workload.Negative(seed, o.Queries, keys)
	snap := tab2.Meter().Snapshot()
	for _, k := range negatives {
		tab2.Lookup(k)
	}
	delta := tab2.Meter().Snapshot().Sub(snap)
	missReads = float64(delta.OffChipReads) / float64(len(negatives))
	return failLoad, missReads, redundantPerSlot, counterBits, nil
}
