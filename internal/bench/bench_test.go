package bench

import (
	"fmt"
	"strings"
	"testing"

	"mccuckoo/internal/metrics"
)

// smallOptions keeps unit-test experiment runs fast while preserving shape.
func smallOptions() Options {
	return Options{Capacity: 9 * 512, MaxLoop: 500, Runs: 2, Seed: 7, Queries: 2000}
}

// seriesByName finds a series in a rendered table.
func seriesByName(t *testing.T, tbl *metrics.Table, name string) *metrics.Series {
	t.Helper()
	for _, s := range tbl.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("series %q not found", name)
	return nil
}

func mustAt(t *testing.T, s *metrics.Series, x float64) float64 {
	t.Helper()
	y, ok := s.At(x)
	if !ok {
		t.Fatalf("series %q has no point at %g", s.Name, x)
	}
	return y
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}
	if err := o.normalize(); err != nil {
		t.Fatal(err)
	}
	if o.Capacity%9 != 0 {
		t.Fatalf("capacity %d not a multiple of 9", o.Capacity)
	}
	bad := Options{Capacity: 10}
	if err := bad.normalize(); err == nil {
		t.Error("tiny capacity accepted")
	}
}

func TestBuildCapacityParity(t *testing.T) {
	o := smallOptions()
	if err := o.normalize(); err != nil {
		t.Fatal(err)
	}
	caps := map[int]bool{}
	for _, s := range AllSchemes {
		tab, err := build(s, o, 1, tableConfig{})
		if err != nil {
			t.Fatal(err)
		}
		caps[tab.Capacity()] = true
	}
	if len(caps) != 1 {
		t.Fatalf("schemes have mismatched capacities: %v", caps)
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("fig9"); !ok {
		t.Error("fig9 not registered")
	}
	if _, ok := Find("nope"); ok {
		t.Error("phantom experiment found")
	}
	seen := map[string]bool{}
	for _, e := range Experiments {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Desc == "" {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	tbl := res[0].Table
	// Headline claim: multi-copy reduces kick-outs at high load.
	cu := mustAt(t, seriesByName(t, tbl, "Cuckoo"), 85)
	mc := mustAt(t, seriesByName(t, tbl, "McCuckoo"), 85)
	if mc >= cu {
		t.Errorf("McCuckoo kicks (%.3f) not below Cuckoo (%.3f) at 85%%", mc, cu)
	}
	bc := mustAt(t, seriesByName(t, tbl, "BCHT"), 95)
	bmc := mustAt(t, seriesByName(t, tbl, "B-McCuckoo"), 95)
	if bmc >= bc {
		t.Errorf("B-McCuckoo kicks (%.3f) not below BCHT (%.3f) at 95%%", bmc, bc)
	}
	// At 10% load nobody kicks.
	if k := mustAt(t, seriesByName(t, tbl, "Cuckoo"), 10); k > 0.01 {
		t.Errorf("Cuckoo kicks %.3f at 10%% load", k)
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	reads, writes := res[0].Table, res[1].Table
	// Reads: multi-copy far below single-copy at low load (the residue
	// comes from principle-3 overwrites, which must read their victim).
	if r := mustAt(t, seriesByName(t, reads, "McCuckoo"), 10); r > 0.5 {
		t.Errorf("McCuckoo insert reads %.3f at 10%%, want well below 1", r)
	}
	if r := mustAt(t, seriesByName(t, reads, "Cuckoo"), 10); r < 0.5 {
		t.Errorf("Cuckoo insert reads %.3f at 10%%, want ~1", r)
	}
	// Reads: multi-copy wins at high load too.
	if mc, cu := mustAt(t, seriesByName(t, reads, "McCuckoo"), 90),
		mustAt(t, seriesByName(t, reads, "Cuckoo"), 90); mc >= cu {
		t.Errorf("McCuckoo reads (%.3f) not below Cuckoo (%.3f) at 90%%", mc, cu)
	}
	// Writes: multi-copy pays redundant writes at low load...
	if mc, cu := mustAt(t, seriesByName(t, writes, "McCuckoo"), 10),
		mustAt(t, seriesByName(t, writes, "Cuckoo"), 10); mc <= cu {
		t.Errorf("McCuckoo writes (%.3f) not above Cuckoo (%.3f) at 10%%", mc, cu)
	}
	// ...and wins at high load (the Fig. 10b crossover).
	if mc, cu := mustAt(t, seriesByName(t, writes, "McCuckoo"), 90),
		mustAt(t, seriesByName(t, writes, "Cuckoo"), 90); mc >= cu {
		t.Errorf("McCuckoo writes (%.3f) not below Cuckoo (%.3f) at 90%%", mc, cu)
	}
}

func TestTableIOrdering(t *testing.T) {
	res, err := TableI(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows := res[0].Rows
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	parse := func(row []string) float64 {
		var v float64
		if _, err := fmtSscanfPercent(row[1], &v); err != nil {
			t.Fatalf("bad cell %q: %v", row[1], err)
		}
		return v
	}
	cu, mc, bc, bmc := parse(rows[1]), parse(rows[2]), parse(rows[3]), parse(rows[4])
	if !(cu < mc && mc < bc && bc < bmc) {
		t.Errorf("Table I ordering violated: %.2f %.2f %.2f %.2f", cu, mc, bc, bmc)
	}
}

func TestFig11Shape(t *testing.T) {
	o := smallOptions()
	o.Runs = 1
	res, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res[0].Table
	// McCuckoo must reach at least as high a failure-free load as Cuckoo
	// at every maxloop.
	for _, ml := range []float64{50, 500} {
		cu := mustAt(t, seriesByName(t, tbl, "Cuckoo"), ml)
		mc := mustAt(t, seriesByName(t, tbl, "McCuckoo"), ml)
		if mc < cu-1 { // allow 1pp noise at this tiny size
			t.Errorf("maxloop %.0f: McCuckoo first failure at %.1f%%, Cuckoo at %.1f%%", ml, mc, cu)
		}
	}
	// Blocked schemes should survive (near) everything.
	if b := mustAt(t, seriesByName(t, tbl, "B-McCuckoo"), 500); b < 95 {
		t.Errorf("B-McCuckoo failed at %.1f%%, want >95%%", b)
	}
}

func TestFig12Fig13Shape(t *testing.T) {
	o := smallOptions()
	res12, err := Fig12(o)
	if err != nil {
		t.Fatal(err)
	}
	res13, err := Fig13(o)
	if err != nil {
		t.Fatal(err)
	}
	hit, miss := res12[0].Table, res13[0].Table
	// Existing items: multi-copy needs fewer reads than single-copy.
	if mc, cu := mustAt(t, seriesByName(t, hit, "McCuckoo"), 50),
		mustAt(t, seriesByName(t, hit, "Cuckoo"), 50); mc >= cu {
		t.Errorf("hit reads: McCuckoo %.3f not below Cuckoo %.3f", mc, cu)
	}
	// Non-existing: single-copy pays d reads, McCuckoo filters on-chip.
	cu := mustAt(t, seriesByName(t, miss, "Cuckoo"), 50)
	if cu < 2.9 || cu > 3.1 {
		t.Errorf("Cuckoo miss reads %.3f, want 3", cu)
	}
	if mc := mustAt(t, seriesByName(t, miss, "McCuckoo"), 50); mc > 1.0 {
		t.Errorf("McCuckoo miss reads %.3f, want far below 3", mc)
	}
}

func TestFig14Shape(t *testing.T) {
	o := smallOptions()
	o.Queries = 500
	res, err := Fig14(o)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res[0].Table
	// Multi-copy deletion must confirm every copy: more reads than
	// single-copy at moderate load (§IV.D).
	if mc, cu := mustAt(t, seriesByName(t, tbl, "McCuckoo"), 50),
		mustAt(t, seriesByName(t, tbl, "Cuckoo"), 50); mc <= cu {
		t.Errorf("delete reads: McCuckoo %.3f not above Cuckoo %.3f", mc, cu)
	}
}

func TestTableIIShape(t *testing.T) {
	o := smallOptions()
	res, err := TableII(o)
	if err != nil {
		t.Fatal(err)
	}
	rows := res[0].Rows
	if len(rows) != 1+6*2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// maxloop 500 must stash no more than maxloop 200 at the same load.
	for i := 1; i < len(rows); i += 2 {
		var n200, n500 float64
		if _, err := fmtSscanf(rows[i][2], &n200); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscanf(rows[i+1][2], &n500); err != nil {
			t.Fatal(err)
		}
		if n500 > n200+1 {
			t.Errorf("load %s: maxloop 500 stashed %.1f > maxloop 200 %.1f", rows[i][0], n500, n200)
		}
	}
}

func TestTableIIIShape(t *testing.T) {
	o := smallOptions()
	res, err := TableIII(o)
	if err != nil {
		t.Fatal(err)
	}
	rows := res[0].Rows
	// Below 99% load the blocked scheme should need (almost) no stash.
	var n float64
	if _, err := fmtSscanf(rows[1][2], &n); err != nil {
		t.Fatal(err)
	}
	if n > 2 {
		t.Errorf("B-McCuckoo stashed %.1f items at 97.5%% load, want ~0", n)
	}
}

func TestFig15Fig16Smoke(t *testing.T) {
	o := smallOptions()
	o.Runs = 1
	res15, err := Fig15(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res15) != 2 {
		t.Fatalf("Fig15 returned %d results", len(res15))
	}
	// Insert latency must be positive everywhere.
	for _, s := range res15[0].Table.Series {
		for _, x := range s.Xs() {
			if y, _ := s.At(x); y <= 0 {
				t.Errorf("series %s has non-positive latency at %g", s.Name, x)
			}
		}
	}
	res16, err := Fig16(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res16) != 4 {
		t.Fatalf("Fig16 returned %d results", len(res16))
	}
	// Larger records slow single-copy lookups down; throughput must fall
	// with record size for Cuckoo (it always reads buckets).
	tp := seriesByName(t, res16[2].Table, "Cuckoo")
	small := mustAt(t, tp, 8)
	big := mustAt(t, tp, 128)
	if big >= small {
		t.Errorf("Cuckoo hit throughput should fall with record size: %.2f -> %.2f", small, big)
	}
	// The pre-screen advantage grows with record size for misses: McCuckoo
	// throughput at 128 B must beat Cuckoo's.
	mcMiss := mustAt(t, seriesByName(t, res16[3].Table, "McCuckoo"), 128)
	cuMiss := mustAt(t, seriesByName(t, res16[3].Table, "Cuckoo"), 128)
	if mcMiss <= cuMiss {
		t.Errorf("miss throughput at 128B: McCuckoo %.2f not above Cuckoo %.2f", mcMiss, cuMiss)
	}
}

func TestAblationsRun(t *testing.T) {
	o := smallOptions()
	o.Runs = 1
	if _, err := AblationResolver(o); err != nil {
		t.Errorf("resolver ablation: %v", err)
	}
	res, err := AblationPrescreen(o)
	if err != nil {
		t.Fatalf("prescreen ablation: %v", err)
	}
	tbl := res[0].Table
	// With the pre-screen off, misses cost ~3 reads; on, far fewer.
	on := mustAt(t, seriesByName(t, tbl, "miss/prescreen-on"), 50)
	off := mustAt(t, seriesByName(t, tbl, "miss/prescreen-off"), 50)
	if on >= off {
		t.Errorf("prescreen-on miss reads %.3f not below prescreen-off %.3f", on, off)
	}
	resDel, err := AblationDeletion(o)
	if err != nil {
		t.Fatalf("deletion ablation: %v", err)
	}
	if len(resDel[0].Rows) != 3 {
		t.Fatalf("deletion ablation rows: %d", len(resDel[0].Rows))
	}
}

func TestResultRender(t *testing.T) {
	res, err := TableI(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res[0].Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table I", "Cuckoo", "B-McCuckoo", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// fmtSscanfPercent parses "12.34%".
func fmtSscanfPercent(cell string, v *float64) (int, error) {
	return fmt.Sscanf(strings.TrimSuffix(cell, "%"), "%f", v)
}

func fmtSscanf(cell string, v *float64) (int, error) {
	return fmt.Sscanf(cell, "%f", v)
}

func TestAblationBaselineResolver(t *testing.T) {
	o := smallOptions()
	o.Runs = 1
	res, err := AblationBaselineResolver(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	kicks := res[0].Table
	bfs := mustAt(t, seriesByName(t, kicks, "Cuckoo/bfs"), 85)
	rw := mustAt(t, seriesByName(t, kicks, "Cuckoo/random-walk"), 85)
	if bfs > rw {
		t.Errorf("BFS kicks %.3f exceed random walk %.3f at 85%%", bfs, rw)
	}
}

func TestExtDistribution(t *testing.T) {
	o := smallOptions()
	o.Runs = 1
	res, err := ExtDistribution(o)
	if err != nil {
		t.Fatal(err)
	}
	rows := res[0].Rows
	if len(rows) != 1+4*3 {
		t.Fatalf("got %d rows", len(rows))
	}
	parse := func(cell string) float64 {
		var v float64
		if _, err := fmtSscanf(cell, &v); err != nil {
			t.Fatalf("bad cell %q: %v", cell, err)
		}
		return v
	}
	byKey := map[string][]string{}
	for _, r := range rows[1:] {
		byKey[r[0]+"/"+r[1]] = r
	}
	// Quantiles must be monotone for every row, and positive.
	for k, r := range byKey {
		p50, p95, p99, max := parse(r[3]), parse(r[4]), parse(r[5]), parse(r[6])
		if !(p50 > 0 && p50 <= p95 && p95 <= p99 && p99 <= max) {
			t.Errorf("%s: non-monotone quantiles %v", k, r)
		}
	}
	// The extension's claim: single-copy insert tails dwarf multi-copy.
	cuP99 := parse(byKey["Cuckoo/insert"][5])
	mcP99 := parse(byKey["McCuckoo/insert"][5])
	if mcP99 >= cuP99 {
		t.Errorf("insert p99: McCuckoo %.1f not below Cuckoo %.1f", mcP99, cuP99)
	}
	// Misses: McCuckoo's pre-screen keeps even the median tiny.
	cuMiss := parse(byKey["Cuckoo/lookup-miss"][3])
	mcMiss := parse(byKey["McCuckoo/lookup-miss"][3])
	if mcMiss >= cuMiss {
		t.Errorf("miss p50: McCuckoo %.1f not below Cuckoo %.1f", mcMiss, cuMiss)
	}
}

func TestAblationHashFunctions(t *testing.T) {
	o := smallOptions()
	o.Runs = 1
	res, err := AblationHashFunctions(o)
	if err != nil {
		t.Fatal(err)
	}
	rows := res[0].Rows
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	parse := func(cell string) float64 {
		var v float64
		if _, err := fmtSscanfPercent(cell, &v); err != nil {
			t.Fatalf("bad cell %q: %v", cell, err)
		}
		return v
	}
	d2, d3, d4 := parse(rows[1][2]), parse(rows[2][2]), parse(rows[3][2])
	if !(d2 < d3 && d3 < d4) {
		t.Errorf("first-failure loads not increasing with d: %.1f %.1f %.1f", d2, d3, d4)
	}
	if d3 < 85 {
		t.Errorf("d=3 first failure at %.1f%%, paper expects >90%% territory", d3)
	}
	if rows[2][1] != "2" || rows[3][1] != "3" {
		t.Errorf("counter widths wrong: d=3 %s bits, d=4 %s bits", rows[2][1], rows[3][1])
	}
}

func TestExtOnChipBudget(t *testing.T) {
	o := smallOptions()
	o.Runs = 1
	res, err := ExtOnChipBudget(o)
	if err != nil {
		t.Fatal(err)
	}
	rows := res[0].Rows
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string][]string{}
	for _, r := range rows[1:] {
		byName[r[0]] = r
	}
	parse := func(cell string) float64 {
		var v float64
		if _, err := fmtSscanf(cell, &v); err != nil {
			t.Fatalf("bad cell %q: %v", cell, err)
		}
		return v
	}
	mc := byName["McCuckoo (2-bit counters)"]
	equal := byName["Cuckoo+CBF equal bits"]
	plain := byName["Cuckoo (no helper)"]
	// Contribution #2: at equal on-chip memory, McCuckoo filters misses
	// far better than the Bloom pre-screen.
	if parse(mc[1]) > parse(equal[1])+0.1 {
		t.Errorf("memory budgets not equal: %s vs %s KiB", mc[1], equal[1])
	}
	if parse(mc[3]) >= parse(equal[3]) {
		t.Errorf("miss reads: McCuckoo %s not below equal-memory CBF %s", mc[3], equal[3])
	}
	// The CBF does nothing for insertion reads; McCuckoo does.
	if parse(mc[5]) >= parse(plain[5]) {
		t.Errorf("insert reads: McCuckoo %s not below plain Cuckoo %s", mc[5], plain[5])
	}
	if parse(equal[5]) != parse(plain[5]) {
		t.Errorf("CBF changed insertion reads: %s vs %s", equal[5], plain[5])
	}
}

func TestExtWorkloadSensitivity(t *testing.T) {
	o := smallOptions()
	o.Runs = 1
	res, err := ExtWorkloadSensitivity(o)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res[0].Table
	// The substitution claim: the two workloads produce statistically
	// indistinguishable kick curves. At this tiny size allow generous
	// noise but require same order of magnitude at high load.
	for _, scheme := range []string{"Cuckoo", "McCuckoo"} {
		u := mustAt(t, seriesByName(t, tbl, scheme+"/uniform"), 85)
		d := mustAt(t, seriesByName(t, tbl, scheme+"/docwords"), 85)
		lo, hi := u/3, u*3
		if u == 0 {
			continue
		}
		if d < lo || d > hi {
			t.Errorf("%s: docwords kicks %.3f vs uniform %.3f differ beyond noise", scheme, d, u)
		}
	}
}

func TestExtMixedWorkloads(t *testing.T) {
	o := smallOptions()
	o.Runs = 1
	res, err := ExtMixedWorkloads(o)
	if err != nil {
		t.Fatal(err)
	}
	rows := res[0].Rows
	if len(rows) != 1+4*4 {
		t.Fatalf("got %d rows", len(rows))
	}
	parse := func(cell string) float64 {
		var v float64
		if _, err := fmtSscanf(cell, &v); err != nil {
			t.Fatalf("bad cell %q: %v", cell, err)
		}
		return v
	}
	// In the read-only mix, reads/op must be positive and writes/op near
	// zero (the generator seeds a handful of inserts so lookups have live
	// targets).
	for _, r := range rows[1:] {
		if r[0] != "C: read-only" {
			continue
		}
		if parse(r[2]) <= 0 {
			t.Errorf("%s read-only reads/op = %s", r[1], r[2])
		}
		if parse(r[3]) > 0.02 {
			t.Errorf("%s read-only writes/op = %s, want ~0", r[1], r[3])
		}
	}
}

func TestExtSmartCuckoo(t *testing.T) {
	o := smallOptions()
	o.Runs = 1
	res, err := ExtSmartCuckoo(o)
	if err != nil {
		t.Fatal(err)
	}
	rows := res[0].Rows
	if len(rows) != 1+4*3 {
		t.Fatalf("got %d rows", len(rows))
	}
	parse := func(cell string) float64 {
		var v float64
		if _, err := fmtSscanf(cell, &v); err != nil {
			t.Fatalf("bad cell %q: %v", cell, err)
		}
		return v
	}
	for _, r := range rows[1:] {
		if r[1] != "SmartCuckoo-d2" || r[3] == "-" {
			continue
		}
		if parse(r[3]) != 0 {
			t.Errorf("SmartCuckoo at %s wasted %s kicks per stashed insert, want 0", r[0], r[3])
		}
	}
	// McCuckoo's counters must reduce kicks vs plain d=2 at the 55% row.
	var plain, mc float64
	for _, r := range rows[1:] {
		if r[0] != "55%" {
			continue
		}
		switch r[1] {
		case "Cuckoo-d2":
			plain = parse(r[4])
		case "McCuckoo-d2":
			mc = parse(r[4])
		}
	}
	if mc >= plain {
		t.Errorf("McCuckoo-d2 kicks %.3f not below plain d=2 %.3f at 55%%", mc, plain)
	}
}

func TestExtPipeline(t *testing.T) {
	o := smallOptions()
	o.Runs = 1
	res, err := ExtPipeline(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	miss := res[0].Table
	// Depth must never hurt, and McCuckoo's counter-bound misses must
	// scale far better than the baseline's controller-bound ones.
	for _, s := range []string{"Cuckoo", "McCuckoo"} {
		d1 := mustAt(t, seriesByName(t, miss, s), 1)
		d8 := mustAt(t, seriesByName(t, miss, s), 8)
		if d8 < d1*0.99 {
			t.Errorf("%s: depth 8 throughput %.2f below depth 1 %.2f", s, d8, d1)
		}
	}
	cuGain := mustAt(t, seriesByName(t, miss, "Cuckoo"), 8) / mustAt(t, seriesByName(t, miss, "Cuckoo"), 1)
	mcGain := mustAt(t, seriesByName(t, miss, "McCuckoo"), 8) / mustAt(t, seriesByName(t, miss, "McCuckoo"), 1)
	if mcGain <= cuGain {
		t.Errorf("pipelining gains: McCuckoo %.2fx not above Cuckoo %.2fx on misses", mcGain, cuGain)
	}
}
