package bench

import "mccuckoo/internal/metrics"

// Fig12 reproduces "Memory access per lookup for existing items".
func Fig12(o Options) ([]*Result, error) {
	return lookupFigure(o, "fig12", "Fig. 12 — off-chip reads per lookup, existing items", true)
}

// Fig13 reproduces "Memory access per lookup for non-existing items".
func Fig13(o Options) ([]*Result, error) {
	return lookupFigure(o, "fig13", "Fig. 13 — off-chip reads per lookup, non-existing items", false)
}

func lookupFigure(o Options, id, title string, positive bool) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	series := make([]*metrics.Series, len(AllSchemes))
	for i, s := range AllSchemes {
		series[i] = metrics.NewSeries(s.String())
	}
	for i, s := range AllSchemes {
		loads := loadsFor(s, StandardLoads)
		for run := 0; run < o.Runs; run++ {
			points, err := lookupSweep(s, o, run, loads, positive)
			if err != nil {
				return nil, err
			}
			for _, p := range points {
				series[i].Add(p.load*100, p.offReads)
			}
		}
	}
	return []*Result{{
		ID: id,
		Table: &metrics.Table{
			Title:  title,
			XLabel: "load",
			XFmt:   "%.0f%%",
			YFmt:   "%.4f",
			Series: series,
		},
	}}, nil
}

// Fig14 reproduces "Memory access per deletion". Off-chip writes are not
// plotted: they are exactly 1 for the single-copy schemes and 0 for the
// multi-copy schemes (§IV.D), which the note records.
func Fig14(o Options) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	series := make([]*metrics.Series, len(AllSchemes))
	for i, s := range AllSchemes {
		series[i] = metrics.NewSeries(s.String())
	}
	for i, s := range AllSchemes {
		loads := loadsFor(s, StandardLoads)
		for run := 0; run < o.Runs; run++ {
			points, err := deleteSweep(s, o, run, loads)
			if err != nil {
				return nil, err
			}
			for _, p := range points {
				series[i].Add(p.load*100, p.offReads)
			}
		}
	}
	return []*Result{{
		ID: "fig14",
		Table: &metrics.Table{
			Title:  "Fig. 14 — off-chip reads per deletion",
			XLabel: "load",
			XFmt:   "%.0f%%",
			YFmt:   "%.4f",
			Series: series,
		},
		Notes: []string{"off-chip writes per deletion: 1 for Cuckoo/BCHT, 0 for McCuckoo/B-McCuckoo (counter-only deletion)"},
	}}, nil
}
