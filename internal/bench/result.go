package bench

import (
	"fmt"
	"io"

	"mccuckoo/internal/metrics"
)

// Result is one rendered experiment artifact: either a series table (one
// column per scheme over a shared x axis) or free-form rows.
type Result struct {
	ID    string
	Table *metrics.Table
	Rows  [][]string
	Title string
	Notes []string
}

// Render writes the result to w.
func (r *Result) Render(w io.Writer) error {
	if r.Table != nil {
		if err := r.Table.Render(w); err != nil {
			return err
		}
	}
	if r.Rows != nil {
		if err := metrics.RenderRows(w, r.Title, r.Rows); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the result's data as CSV (no title or notes).
func (r *Result) RenderCSV(w io.Writer) error {
	if r.Table != nil {
		return r.Table.RenderCSV(w)
	}
	return metrics.RenderRowsCSV(w, r.Rows)
}

// Runner produces the results of one paper experiment.
type Runner func(Options) ([]*Result, error)

// Experiment binds an id to its runner.
type Experiment struct {
	ID   string
	Desc string
	Run  Runner
}

// Experiments lists every reproduced table and figure plus the ablations.
var Experiments = []Experiment{
	{"tab1", "Table I: load ratio at first collision", TableI},
	{"fig9", "Fig. 9: kick-outs per insertion vs load", Fig9},
	{"fig10", "Fig. 10: memory accesses per insertion vs load", Fig10},
	{"fig11", "Fig. 11: load ratio at first insertion failure vs maxloop", Fig11},
	{"fig12", "Fig. 12: memory accesses per lookup, existing items", Fig12},
	{"fig13", "Fig. 13: memory accesses per lookup, non-existing items", Fig13},
	{"fig14", "Fig. 14: memory accesses per deletion", Fig14},
	{"tab2", "Table II: stash statistics, 3-hash 1-slot McCuckoo", TableII},
	{"tab3", "Table III: stash statistics, 3-hash 3-slot McCuckoo", TableIII},
	{"fig15", "Fig. 15: insertion latency and throughput (platform model)", Fig15},
	{"fig16", "Fig. 16: lookup latency and throughput (platform model)", Fig16},
	{"abl-resolver", "Ablation: random-walk vs MinCounter resolver in McCuckoo", AblationResolver},
	{"abl-bfs", "Ablation: BFS vs random-walk vs MinCounter in the baseline", AblationBaselineResolver},
	{"abl-prescreen", "Ablation: lookup counter pre-screen on vs off", AblationPrescreen},
	{"abl-deletion", "Ablation: counter-reset vs tombstone deletion", AblationDeletion},
	{"abl-d", "Ablation: hash-function count d in McCuckoo", AblationHashFunctions},
	{"ext-dist", "Extension: latency distributions via the discrete-event platform simulator", ExtDistribution},
	{"ext-onchip", "Extension: on-chip budget vs Bloom pre-screens (contribution #2)", ExtOnChipBudget},
	{"ext-workload", "Extension: uniform vs DocWords-shaped keys (substitution validation)", ExtWorkloadSensitivity},
	{"ext-mixed", "Extension: YCSB-style operation mixes across the four schemes", ExtMixedWorkloads},
	{"ext-smart", "Extension: SmartCuckoo loop predetermination vs McCuckoo counters at d=2", ExtSmartCuckoo},
	{"ext-pipeline", "Extension: pipelined-platform throughput (the paper's future work)", ExtPipeline},
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
