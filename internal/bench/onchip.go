package bench

import (
	"fmt"

	"mccuckoo/internal/core"
	"mccuckoo/internal/cuckoo"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/metrics"
	"mccuckoo/internal/workload"
)

// ExtOnChipBudget reproduces the paper's second contribution claim — "a new
// compact on-chip helping structure ... with less on-chip memory cost than
// current solutions" — by pitting McCuckoo's 2-bit counter array against
// the DEHT/EMOMA-style approach: a standard cuckoo table pre-screened by an
// on-chip counting Bloom filter, at several memory budgets. All schemes run
// at 50% load; reported are the on-chip footprint and the off-chip reads
// per negative lookup, positive lookup, and insertion.
//
// McCuckoo's counters match a CBF several times their size on negative
// lookups — while additionally accelerating insertion (the CBF does nothing
// for inserts) and enabling counter-only deletion.
func ExtOnChipBudget(o Options) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	type variant struct {
		name   string
		bloomM int // CBF cells; 0 selects plain Cuckoo, -1 selects McCuckoo
	}
	capacity := o.Capacity
	variants := []variant{
		{"McCuckoo (2-bit counters)", -1},
		{"Cuckoo (no helper)", 0},
		{"Cuckoo+CBF equal bits", capacity / 2},
		{"Cuckoo+CBF 4x bits", capacity * 2},
		{"Cuckoo+CBF 8x bits", capacity * 4},
	}
	rows := [][]string{{"scheme", "on-chip KiB", "bits/bucket", "miss reads/op", "hit reads/op", "insert reads/op"}}
	for _, v := range variants {
		var onChip, miss, hit, ins metrics.Agg
		for run := 0; run < o.Runs; run++ {
			r, err := onChipPoint(o, run, v.bloomM)
			if err != nil {
				return nil, err
			}
			onChip.Add(r.onChipBytes)
			miss.Add(r.missReads)
			hit.Add(r.hitReads)
			ins.Add(r.insertReads)
		}
		rows = append(rows, []string{
			v.name,
			fmt.Sprintf("%.1f", onChip.Mean()/1024),
			fmt.Sprintf("%.1f", onChip.Mean()*8/float64(capacity)),
			fmt.Sprintf("%.4f", miss.Mean()),
			fmt.Sprintf("%.4f", hit.Mean()),
			fmt.Sprintf("%.4f", ins.Mean()),
		})
	}
	return []*Result{{
		ID:    "ext-onchip",
		Title: "Extension — on-chip budget vs filtering power at 50% load (contribution #2)",
		Rows:  rows,
		Notes: []string{
			"CBF = counting Bloom filter (4-bit cells, k=3) pre-screening a standard cuckoo table (DEHT/EMOMA style)",
			"the counter array also accelerates insertion and enables counter-only deletion; a CBF does neither",
		},
	}}, nil
}

type onChipResult struct {
	onChipBytes float64
	missReads   float64
	hitReads    float64
	insertReads float64
}

func onChipPoint(o Options, run, bloomM int) (onChipResult, error) {
	seed := o.runSeed(run)
	var tab kv.Table
	var onChipBytes int
	switch {
	case bloomM < 0:
		t, err := core.New(core.Config{
			D: 3, BucketsPerTable: o.Capacity / 3, MaxLoop: o.MaxLoop,
			Seed: seed, StashEnabled: true, AssumeUniqueKeys: true,
		})
		if err != nil {
			return onChipResult{}, err
		}
		tab, onChipBytes = t, t.OnChipBytes()
	default:
		t, err := cuckoo.New(cuckoo.Config{
			D: 3, Slots: 1, BucketsPerTable: o.Capacity / 3, MaxLoop: o.MaxLoop,
			Seed: seed, StashEnabled: true, AssumeUniqueKeys: true,
			BloomM: bloomM, BloomK: 3,
		})
		if err != nil {
			return onChipResult{}, err
		}
		tab, onChipBytes = t, t.OnChipBytes()
	}

	target := tab.Capacity() / 2
	keys := workload.Unique(seed, target)
	insBefore := tab.Meter().Snapshot()
	for _, k := range keys {
		if tab.Insert(k, k+1).Status == kv.Failed {
			return onChipResult{}, fmt.Errorf("bench: on-chip fill failed")
		}
	}
	insDelta := tab.Meter().Snapshot().Sub(insBefore)

	negatives := workload.Negative(seed, o.Queries, keys)
	snap := tab.Meter().Snapshot()
	for _, k := range negatives {
		if _, ok := tab.Lookup(k); ok {
			return onChipResult{}, fmt.Errorf("bench: phantom hit")
		}
	}
	missDelta := tab.Meter().Snapshot().Sub(snap)

	snap = tab.Meter().Snapshot()
	for q := 0; q < o.Queries; q++ {
		k := keys[(q*2654435761)%target]
		if _, ok := tab.Lookup(k); !ok {
			return onChipResult{}, fmt.Errorf("bench: lost key")
		}
	}
	hitDelta := tab.Meter().Snapshot().Sub(snap)

	return onChipResult{
		onChipBytes: float64(onChipBytes),
		missReads:   float64(missDelta.OffChipReads) / float64(o.Queries),
		hitReads:    float64(hitDelta.OffChipReads) / float64(o.Queries),
		insertReads: float64(insDelta.OffChipReads) / float64(target),
	}, nil
}
