package bench

import (
	"fmt"

	"mccuckoo/internal/fpga"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/workload"
)

// ExtDistribution is an extension beyond the paper's figures: per-operation
// latency *distributions* (mean/p50/p95/p99/max) at 85% load, produced by
// replaying each scheme's real memory-access stream through the
// discrete-event platform simulator (internal/fpga). Where Fig. 15/16
// report means, the tails here expose what the means hide: single-copy
// insertion latency degrades catastrophically in the tail (long kick
// chains), while the multi-copy schemes stay flat.
func ExtDistribution(o Options) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	const load = 0.85
	rows := [][]string{{"scheme", "op", "mean ns", "p50", "p95", "p99", "max"}}
	for _, s := range AllSchemes {
		insertDist, lookupDist, missDist := &fpga.Dist{}, &fpga.Dist{}, &fpga.Dist{}
		for run := 0; run < o.Runs; run++ {
			if err := distRun(s, o, run, load, insertDist, lookupDist, missDist); err != nil {
				return nil, err
			}
		}
		for _, e := range []struct {
			op string
			d  *fpga.Dist
		}{{"insert", insertDist}, {"lookup-hit", lookupDist}, {"lookup-miss", missDist}} {
			rows = append(rows, []string{
				s.String(), e.op,
				fmt.Sprintf("%.1f", e.d.Mean()),
				fmt.Sprintf("%.1f", e.d.Quantile(0.50)),
				fmt.Sprintf("%.1f", e.d.Quantile(0.95)),
				fmt.Sprintf("%.1f", e.d.Quantile(0.99)),
				fmt.Sprintf("%.1f", e.d.Quantile(1)),
			})
		}
	}
	return []*Result{{
		ID:    "ext-dist",
		Title: "Extension — operation latency distributions at 85% load (ns, discrete-event platform model, 8-byte records)",
		Rows:  rows,
		Notes: []string{
			"each operation's real access stream replayed through the logic/SRAM/DDR3 pipeline simulator",
			"posted writes overlap computation; reads stall behind queued writes (read-after-write interference)",
		},
	}}, nil
}

// distRun fills one table to the target load, then measures a window of
// individually timed operations through the simulator.
func distRun(s Scheme, o Options, run int, load float64, ins, hit, miss *fpga.Dist) error {
	seed := o.runSeed(run)
	tab, err := build(s, o, seed, tableConfig{stash: true})
	if err != nil {
		return err
	}
	target := int(load * float64(tab.Capacity()))
	window := windowOps(tab.Capacity())
	if window > target/2 {
		window = target / 2
	}
	keys := workload.Unique(seed, target)
	negatives := workload.Negative(seed, window, keys)

	// Fill without the simulator attached (the fill is not measured).
	for _, k := range keys[:target-window] {
		if tab.Insert(k, k+1).Status == kv.Failed {
			return fmt.Errorf("bench: %s fill failed at %.3f", s, tab.LoadRatio())
		}
	}
	sim := fpga.NewSim(platformFor(s, 8), 0)
	sim.Attach(tab.Meter())
	defer func() { tab.Meter().Hook = nil }()

	for _, k := range keys[target-window:] {
		k := k
		sim.BeginOp()
		out := tab.Insert(k, k+1)
		ins.Add(sim.EndOp())
		if out.Status == kv.Failed {
			return fmt.Errorf("bench: %s measured insert failed", s)
		}
	}
	for i := 0; i < window; i++ {
		k := keys[(i*2654435761)%target]
		sim.BeginOp()
		if _, ok := tab.Lookup(k); !ok {
			return fmt.Errorf("bench: %s lost key during distribution run", s)
		}
		hit.Add(sim.EndOp())
	}
	for _, k := range negatives {
		sim.BeginOp()
		if _, ok := tab.Lookup(k); ok {
			return fmt.Errorf("bench: phantom hit during distribution run")
		}
		miss.Add(sim.EndOp())
	}
	return nil
}
