package bench

import (
	"fmt"

	"mccuckoo/internal/kv"
	"mccuckoo/internal/metrics"
	"mccuckoo/internal/workload"
)

// Fig9 reproduces "Number of kick-outs per insertion" across load ratios for
// the four schemes.
func Fig9(o Options) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	series := make([]*metrics.Series, len(AllSchemes))
	for i, s := range AllSchemes {
		series[i] = metrics.NewSeries(s.String())
	}
	for i, s := range AllSchemes {
		loads := loadsFor(s, StandardLoads)
		for run := 0; run < o.Runs; run++ {
			points, err := insertSweep(s, o, run, loads)
			if err != nil {
				return nil, err
			}
			for _, p := range points {
				series[i].Add(p.load*100, p.kicks)
			}
		}
	}
	return []*Result{{
		ID: "fig9",
		Table: &metrics.Table{
			Title:  "Fig. 9 — kick-outs per insertion",
			XLabel: "load",
			XFmt:   "%.0f%%",
			YFmt:   "%.4f",
			Series: series,
		},
	}}, nil
}

// Fig10 reproduces "Memory access per insertion": (a) off-chip reads and
// (b) off-chip writes per insertion across load ratios.
func Fig10(o Options) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	reads := make([]*metrics.Series, len(AllSchemes))
	writes := make([]*metrics.Series, len(AllSchemes))
	for i, s := range AllSchemes {
		reads[i] = metrics.NewSeries(s.String())
		writes[i] = metrics.NewSeries(s.String())
	}
	for i, s := range AllSchemes {
		loads := loadsFor(s, StandardLoads)
		for run := 0; run < o.Runs; run++ {
			points, err := insertSweep(s, o, run, loads)
			if err != nil {
				return nil, err
			}
			for _, p := range points {
				reads[i].Add(p.load*100, p.offReads)
				writes[i].Add(p.load*100, p.offWrites)
			}
		}
	}
	return []*Result{
		{
			ID: "fig10a",
			Table: &metrics.Table{
				Title:  "Fig. 10(a) — off-chip reads per insertion",
				XLabel: "load",
				XFmt:   "%.0f%%",
				YFmt:   "%.4f",
				Series: reads,
			},
		},
		{
			ID: "fig10b",
			Table: &metrics.Table{
				Title:  "Fig. 10(b) — off-chip writes per insertion",
				XLabel: "load",
				XFmt:   "%.0f%%",
				YFmt:   "%.4f",
				Series: writes,
			},
		},
	}, nil
}

// TableI reproduces "Load ratio when first collision occurs": the load at
// which the first insertion needs a kick-out.
func TableI(o Options) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	rows := [][]string{{"scheme", "load at first collision"}}
	for _, s := range AllSchemes {
		var agg metrics.Agg
		for run := 0; run < o.Runs; run++ {
			load, err := firstEventLoad(s, o, run, func(out kv.Outcome) bool {
				return out.Kicks > 0
			}, tableConfig{stash: true})
			if err != nil {
				return nil, err
			}
			agg.Add(load)
		}
		rows = append(rows, []string{s.String(), fmt.Sprintf("%.2f%%", agg.Mean()*100)})
	}
	return []*Result{{
		ID:    "tab1",
		Title: "Table I — load ratio when first collision occurs",
		Rows:  rows,
		Notes: []string{
			"absolute values depend on table size (first collision is a birthday bound);",
			"the paper's ordering Cuckoo < McCuckoo < BCHT < B-McCuckoo is the reproduced claim",
		},
	}}, nil
}

// Fig11 reproduces "Load ratio at first insertion failure" for maxloop
// values between 50 and 500 (stash disabled so failures surface).
func Fig11(o Options) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	maxloops := []int{50, 100, 200, 300, 400, 500}
	series := make([]*metrics.Series, len(AllSchemes))
	for i, s := range AllSchemes {
		series[i] = metrics.NewSeries(s.String())
	}
	for i, s := range AllSchemes {
		for _, ml := range maxloops {
			for run := 0; run < o.Runs; run++ {
				load, err := firstEventLoad(s, o, run, func(out kv.Outcome) bool {
					return out.Status == kv.Failed
				}, tableConfig{maxLoop: ml})
				if err != nil {
					return nil, err
				}
				series[i].Add(float64(ml), load*100)
			}
		}
	}
	return []*Result{{
		ID: "fig11",
		Table: &metrics.Table{
			Title:  "Fig. 11 — load ratio at first insertion failure (%)",
			XLabel: "maxloop",
			XFmt:   "%.0f",
			YFmt:   "%.2f",
			Series: series,
		},
		Notes: []string{"a value of 100.00 means the scheme absorbed every key without failing"},
	}}, nil
}

// firstEventLoad fills a fresh table with unique keys until pred fires and
// returns the load ratio at that moment (1.0 if it never fires before the
// table holds as many items as slots).
func firstEventLoad(s Scheme, o Options, run int, pred func(kv.Outcome) bool, tc tableConfig) (float64, error) {
	seed := o.runSeed(run)
	tab, err := build(s, o, seed, tc)
	if err != nil {
		return 0, err
	}
	keys := workload.Unique(seed, tab.Capacity())
	for _, k := range keys {
		out := tab.Insert(k, k+1)
		if pred(out) {
			return tab.LoadRatio(), nil
		}
		if out.Status == kv.Failed {
			// Failure before the predicate fired (predicate was
			// about something else): report the failure load.
			return tab.LoadRatio(), nil
		}
	}
	return 1.0, nil
}
