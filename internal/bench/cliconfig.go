package bench

import (
	"flag"
	"fmt"
	"strings"

	"mccuckoo"
	"mccuckoo/internal/core"
	"mccuckoo/internal/cuckoo"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/memmodel"
)

// CLIConfig is the flag→config plumbing shared by cmd/mcbench and
// cmd/mctrace: one set of flag names, one validation path, one scheme
// factory. Commands register the flag groups they need on their own
// FlagSet, Parse, then call Validate once.
type CLIConfig struct {
	// Capacity is the table capacity in slots (0 falls back to the
	// harness default in Options()).
	Capacity int
	// MaxLoop is the kick-chain bound (0 = harness default, 500).
	MaxLoop int
	// Seed derives per-run seeds and table hash seeds.
	Seed uint64
	// Runs is the independent runs averaged per point (experiments).
	Runs int
	// Queries is the lookups sampled per measurement point (experiments).
	Queries int
	// Shards is the shard count for the sharded scheme (replay).
	Shards int
	// StashMax caps the stash population; 0 is unbounded (replay).
	StashMax int
}

// RegisterCommon binds the flag trio every benchmark-style command takes:
// -capacity, -maxloop, -seed. defCapacity and capUsage let each command
// keep its own default and help text while the names stay aligned.
func (c *CLIConfig) RegisterCommon(fs *flag.FlagSet, defCapacity int, capUsage string) {
	fs.IntVar(&c.Capacity, "capacity", defCapacity, capUsage)
	fs.IntVar(&c.MaxLoop, "maxloop", 0, "kick chain bound (default 500)")
	fs.Uint64Var(&c.Seed, "seed", 1, "base random seed")
}

// RegisterExperiment adds the paper-experiment flags (-runs, -queries).
func (c *CLIConfig) RegisterExperiment(fs *flag.FlagSet) {
	fs.IntVar(&c.Runs, "runs", 0, "independent runs averaged per point (default 5)")
	fs.IntVar(&c.Queries, "queries", 0, "lookups sampled per measurement point (default 20000)")
}

// RegisterReplay adds the trace-replay flags (-shards, -stashmax).
func (c *CLIConfig) RegisterReplay(fs *flag.FlagSet) {
	fs.IntVar(&c.Shards, "shards", 8, "shard count for -scheme sharded")
	fs.IntVar(&c.StashMax, "stashmax", 0, "cap the stash population (0 = unbounded); inserts beyond the cap fail and make the run exit non-zero")
}

// Validate is the single validation path for every registered group.
func (c *CLIConfig) Validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"-capacity", c.Capacity},
		{"-maxloop", c.MaxLoop},
		{"-runs", c.Runs},
		{"-queries", c.Queries},
		{"-stashmax", c.StashMax},
	} {
		if f.v < 0 {
			return fmt.Errorf("%s must be non-negative (got %d)", f.name, f.v)
		}
	}
	if c.Shards < 0 || (c.Shards > 0 && c.Shards&(c.Shards-1) != 0) {
		return fmt.Errorf("-shards must be a positive power of two (got %d)", c.Shards)
	}
	return nil
}

// Options maps the config onto the experiment harness Options; zero fields
// keep the harness defaults.
func (c *CLIConfig) Options() Options {
	o := DefaultOptions()
	if c.Capacity != 0 {
		o.Capacity = c.Capacity
	}
	if c.MaxLoop != 0 {
		o.MaxLoop = c.MaxLoop
	}
	if c.Runs != 0 {
		o.Runs = c.Runs
	}
	if c.Queries != 0 {
		o.Queries = c.Queries
	}
	o.Seed = c.Seed
	return o
}

// BuildScheme constructs one of the evaluated tables by name. Upsert
// semantics are kept (traces may re-insert live keys). The sharded and
// concurrent schemes go through the public Store interface via storeTable;
// the rest are the internal experiment tables with full memory-traffic
// accounting.
func (c *CLIConfig) BuildScheme(name string) (kv.Table, error) {
	capacity, maxLoop := c.Capacity, c.MaxLoop
	if capacity <= 0 {
		return nil, fmt.Errorf("scheme %q needs -capacity > 0", name)
	}
	if maxLoop <= 0 {
		maxLoop = DefaultOptions().MaxLoop
	}
	pubOpts := []mccuckoo.Option{mccuckoo.WithSeed(c.Seed), mccuckoo.WithMaxLoop(maxLoop)}
	if c.StashMax > 0 {
		pubOpts = append(pubOpts, mccuckoo.WithStashLimit(c.StashMax))
	}
	switch strings.ToLower(name) {
	case "sharded":
		shards := c.Shards
		if shards == 0 {
			shards = 8
		}
		s, err := mccuckoo.NewSharded(capacity, shards, pubOpts...)
		if err != nil {
			return nil, err
		}
		return &storeTable{s: s}, nil
	case "concurrent":
		t, err := mccuckoo.New(capacity, pubOpts...)
		if err != nil {
			return nil, err
		}
		return &storeTable{s: mccuckoo.NewConcurrent(t)}, nil
	case "cuckoo":
		return cuckoo.New(cuckoo.Config{
			D: 3, Slots: 1, BucketsPerTable: capacity / 3,
			MaxLoop: maxLoop, Seed: c.Seed, StashEnabled: true, StashMax: c.StashMax,
		})
	case "bcht":
		return cuckoo.New(cuckoo.Config{
			D: 3, Slots: 3, BucketsPerTable: capacity / 9,
			MaxLoop: maxLoop, Seed: c.Seed, StashEnabled: true, StashMax: c.StashMax,
		})
	case "mccuckoo":
		return core.New(core.Config{
			D: 3, BucketsPerTable: capacity / 3,
			MaxLoop: maxLoop, Seed: c.Seed, StashEnabled: true, StashMax: c.StashMax,
		})
	case "bmccuckoo":
		return core.NewBlocked(core.Config{
			D: 3, Slots: 3, BucketsPerTable: capacity / 9,
			MaxLoop: maxLoop, Seed: c.Seed, StashEnabled: true, StashMax: c.StashMax,
		})
	default:
		return nil, fmt.Errorf("unknown scheme %q", name)
	}
}

// storeTable adapts a public mccuckoo.Store to the kv.Table surface the
// replay loop drives. The public interface deliberately hides the
// memory-traffic meter, so Meter returns a meter that never moves and the
// replay's traffic lines read zero for these schemes; throughput, load,
// and operation statistics are fully reported.
type storeTable struct {
	s     mccuckoo.Store
	meter memmodel.Meter
}

func (t *storeTable) Insert(key, value uint64) kv.Outcome {
	r := t.s.Insert(key, value)
	return kv.Outcome{Status: kv.Status(r.Status), Kicks: r.Kicks}
}

func (t *storeTable) Lookup(key uint64) (uint64, bool) { return t.s.Lookup(key) }
func (t *storeTable) Delete(key uint64) bool           { return t.s.Delete(key) }
func (t *storeTable) Len() int                         { return t.s.Len() }
func (t *storeTable) Capacity() int                    { return t.s.Capacity() }
func (t *storeTable) LoadRatio() float64               { return t.s.LoadRatio() }
func (t *storeTable) StashLen() int                    { return t.s.StashLen() }
func (t *storeTable) Meter() *memmodel.Meter           { return &t.meter }

func (t *storeTable) Stats() kv.Stats {
	st := t.s.Stats()
	return kv.Stats{
		Inserts: st.Inserts, Updates: st.Updates, Kicks: st.Kicks,
		Stashed: st.Stashed, Failures: st.Failures, Lookups: st.Lookups,
		Hits: st.Hits, Deletes: st.Deletes, StashProbe: st.StashProbes,
		GrowAttempts: st.GrowAttempts, Grows: st.Grows, GrowFailures: st.GrowFailures,
	}
}
