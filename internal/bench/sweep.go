package bench

import (
	"fmt"
	"math/rand/v2"

	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/memmodel"
	"mccuckoo/internal/workload"
)

// StandardLoads is the x axis shared by the load sweeps (Fig. 9, 10, 12–15a).
var StandardLoads = []float64{0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95}

// loadsFor clips the standard loads at the scheme's sustainable maximum.
func loadsFor(s Scheme, loads []float64) []float64 {
	out := make([]float64, 0, len(loads))
	for _, l := range loads {
		if l <= s.MaxLoad() {
			out = append(out, l)
		}
	}
	return out
}

// insertPoint is one measured load point of an insertion sweep.
type insertPoint struct {
	load      float64
	ops       int64
	kicks     float64 // kick-outs per insertion in the window
	offReads  float64 // off-chip reads per insertion
	offWrites float64 // off-chip writes per insertion
	traffic   memmodel.Meter
}

// windowOps returns the size of the measurement window: 2% of capacity,
// at least 64 insertions.
func windowOps(capacity int) int {
	w := capacity / 50
	if w < 64 {
		w = 64
	}
	return w
}

// insertSweep fills a fresh table with unique keys and measures per-insert
// metrics in a window ending at each target load. The stash is enabled so
// overfull points degrade gracefully instead of failing.
func insertSweep(s Scheme, o Options, run int, loads []float64) ([]insertPoint, error) {
	return insertSweepTC(s, o, run, loads, tableConfig{stash: true})
}

// insertSweepTC is insertSweep with an explicit table configuration, used by
// the ablations.
func insertSweepTC(s Scheme, o Options, run int, loads []float64, tc tableConfig) ([]insertPoint, error) {
	seed := o.runSeed(run)
	tc.stash = true
	tab, err := build(s, o, seed, tc)
	if err != nil {
		return nil, err
	}
	capacity := tab.Capacity()
	keys := workload.Unique(seed, int(float64(capacity)*loads[len(loads)-1])+1)
	window := windowOps(capacity)

	points := make([]insertPoint, 0, len(loads))
	next := 0
	insertTo := func(target int) (kicks int64, err error) {
		for next < target {
			out := tab.Insert(keys[next], keys[next]+1)
			if out.Status == kv.Failed {
				return 0, fmt.Errorf("bench: %s insert failed at load %.3f", s, tab.LoadRatio())
			}
			kicks += int64(out.Kicks)
			next++
		}
		return kicks, nil
	}
	for _, load := range loads {
		target := int(load * float64(capacity))
		warm := target - window
		if warm < next {
			warm = next
		}
		if _, err := insertTo(warm); err != nil {
			return points, err
		}
		before := tab.Meter().Snapshot()
		start := next
		kicks, err := insertTo(target)
		if err != nil {
			return points, err
		}
		ops := int64(next - start)
		if ops == 0 {
			continue
		}
		delta := tab.Meter().Snapshot().Sub(before)
		points = append(points, insertPoint{
			load:      load,
			ops:       ops,
			kicks:     float64(kicks) / float64(ops),
			offReads:  float64(delta.OffChipReads) / float64(ops),
			offWrites: float64(delta.OffChipWrites) / float64(ops),
			traffic:   delta,
		})
	}
	return points, nil
}

// queryPoint is one measured load point of a lookup or deletion sweep.
type queryPoint struct {
	load     float64
	ops      int64
	offReads float64
	traffic  memmodel.Meter
}

// lookupSweep fills a table progressively and, at each load, measures reads
// per lookup over o.Queries sampled keys — present keys when positive is
// true, absent keys otherwise.
func lookupSweep(s Scheme, o Options, run int, loads []float64, positive bool) ([]queryPoint, error) {
	return lookupSweepTC(s, o, run, loads, positive, tableConfig{stash: true})
}

// lookupSweepTC is lookupSweep with an explicit table configuration.
func lookupSweepTC(s Scheme, o Options, run int, loads []float64, positive bool, tc tableConfig) ([]queryPoint, error) {
	seed := o.runSeed(run)
	tc.stash = true
	tab, err := build(s, o, seed, tc)
	if err != nil {
		return nil, err
	}
	capacity := tab.Capacity()
	keys := workload.Unique(seed, int(float64(capacity)*loads[len(loads)-1])+1)
	negatives := workload.Negative(seed, o.Queries, keys)
	rng := rand.New(rand.NewPCG(seed, hashutil.Mix64(seed+9)))

	points := make([]queryPoint, 0, len(loads))
	next := 0
	for _, load := range loads {
		target := int(load * float64(capacity))
		for next < target {
			if tab.Insert(keys[next], keys[next]+1).Status == kv.Failed {
				return points, fmt.Errorf("bench: %s fill failed at %.3f", s, tab.LoadRatio())
			}
			next++
		}
		before := tab.Meter().Snapshot()
		for q := 0; q < o.Queries; q++ {
			if positive {
				k := keys[rng.IntN(next)]
				if _, ok := tab.Lookup(k); !ok {
					return points, fmt.Errorf("bench: %s lost key %#x at load %.2f", s, k, load)
				}
			} else {
				if _, ok := tab.Lookup(negatives[q%len(negatives)]); ok {
					return points, fmt.Errorf("bench: %s phantom hit at load %.2f", s, load)
				}
			}
		}
		delta := tab.Meter().Snapshot().Sub(before)
		points = append(points, queryPoint{
			load:     load,
			ops:      int64(o.Queries),
			offReads: float64(delta.OffChipReads) / float64(o.Queries),
			traffic:  delta,
		})
	}
	return points, nil
}

// deleteSweep measures reads per deletion at each load, using a fresh table
// per point (deletions change the table's lookup regime, so points must not
// contaminate each other).
func deleteSweep(s Scheme, o Options, run int, loads []float64) ([]queryPoint, error) {
	seed := o.runSeed(run)
	points := make([]queryPoint, 0, len(loads))
	for pi, load := range loads {
		tab, err := build(s, o, hashutil.Mix64(seed+uint64(pi)), tableConfig{stash: true})
		if err != nil {
			return nil, err
		}
		capacity := tab.Capacity()
		target := int(load * float64(capacity))
		keys := workload.Unique(hashutil.Mix64(seed+uint64(pi)), target)
		for _, k := range keys {
			if tab.Insert(k, k+1).Status == kv.Failed {
				return points, fmt.Errorf("bench: %s fill failed at %.3f", s, tab.LoadRatio())
			}
		}
		n := o.Queries
		if n > target {
			n = target
		}
		rng := rand.New(rand.NewPCG(seed, hashutil.Mix64(seed+uint64(pi)+77)))
		before := tab.Meter().Snapshot()
		deleted := 0
		perm := rng.Perm(target)
		for _, idx := range perm[:n] {
			if !tab.Delete(keys[idx]) {
				return points, fmt.Errorf("bench: %s failed to delete live key at %.2f", s, load)
			}
			deleted++
		}
		delta := tab.Meter().Snapshot().Sub(before)
		points = append(points, queryPoint{
			load:     load,
			ops:      int64(deleted),
			offReads: float64(delta.OffChipReads) / float64(deleted),
			traffic:  delta,
		})
	}
	return points, nil
}
