// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (Fig. 9–16, Tables I–III) plus the ablations
// listed in DESIGN.md. Each runner builds the four schemes at matched
// capacity, drives the workloads, and renders the same rows/series the paper
// reports.
package bench

import (
	"fmt"

	"mccuckoo/internal/core"
	"mccuckoo/internal/cuckoo"
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
)

// Scheme identifies one of the four compared hash tables.
type Scheme int

const (
	// SchemeCuckoo is the standard ternary cuckoo baseline.
	SchemeCuckoo Scheme = iota
	// SchemeMcCuckoo is single-slot multi-copy cuckoo.
	SchemeMcCuckoo
	// SchemeBCHT is the 3-hash 3-slot blocked cuckoo baseline.
	SchemeBCHT
	// SchemeBMcCuckoo is the blocked multi-copy variant.
	SchemeBMcCuckoo
)

// AllSchemes lists the schemes in the paper's presentation order.
var AllSchemes = []Scheme{SchemeCuckoo, SchemeMcCuckoo, SchemeBCHT, SchemeBMcCuckoo}

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeCuckoo:
		return "Cuckoo"
	case SchemeMcCuckoo:
		return "McCuckoo"
	case SchemeBCHT:
		return "BCHT"
	case SchemeBMcCuckoo:
		return "B-McCuckoo"
	default:
		return "unknown"
	}
}

// Blocked reports whether the scheme stores multiple slots per bucket.
func (s Scheme) Blocked() bool { return s == SchemeBCHT || s == SchemeBMcCuckoo }

// MultiCopy reports whether the scheme is one of the paper's contributions.
func (s Scheme) MultiCopy() bool { return s == SchemeMcCuckoo || s == SchemeBMcCuckoo }

// MaxLoad is the highest load ratio the sweeps push the scheme to: the
// single-slot schemes top out near the d=3 cuckoo threshold (~91.8%), the
// blocked ones close to full.
func (s Scheme) MaxLoad() float64 {
	if s.Blocked() {
		return 0.96
	}
	return 0.90
}

// Options parameterizes an experiment run.
type Options struct {
	// Capacity is the total slot count of every scheme (normalized up to
	// a multiple of 9 so blocked and single-slot tables match exactly).
	Capacity int
	// MaxLoop is the kick-chain bound (paper default 500).
	MaxLoop int
	// Runs is how many independent runs are averaged (the paper uses 10).
	Runs int
	// Seed derives all per-run seeds.
	Seed uint64
	// Queries is the number of lookups/deletes sampled per measurement
	// point.
	Queries int
}

// DefaultOptions returns laptop-scale defaults: ~147k slots, 5 runs.
func DefaultOptions() Options {
	return Options{
		Capacity: 9 * 16384,
		MaxLoop:  500,
		Runs:     5,
		Seed:     1,
		Queries:  20000,
	}
}

func (o *Options) normalize() error {
	if o.Capacity == 0 {
		o.Capacity = 9 * 16384
	}
	if o.MaxLoop == 0 {
		o.MaxLoop = 500
	}
	if o.Runs == 0 {
		o.Runs = 5
	}
	if o.Queries == 0 {
		o.Queries = 20000
	}
	if o.Capacity < 9*16 {
		return fmt.Errorf("bench: capacity %d too small", o.Capacity)
	}
	if o.Runs < 1 || o.MaxLoop < 1 || o.Queries < 1 {
		return fmt.Errorf("bench: Runs, MaxLoop and Queries must be positive")
	}
	o.Capacity = (o.Capacity + 8) / 9 * 9
	return nil
}

// runSeed derives the deterministic seed of one run.
func (o Options) runSeed(run int) uint64 {
	return hashutil.Mix64(o.Seed ^ uint64(run)*0x9e3779b97f4a7c15)
}

// tableConfig carries per-build tweaks on top of Options.
type tableConfig struct {
	stash            bool
	stashMax         int
	maxLoop          int
	policy           kv.KickPolicy
	deletion         core.DeletionMode
	disablePrescreen bool
	// upsert keeps duplicate-key handling on (for workloads that
	// re-insert live keys); the sweeps promise unique keys instead.
	upsert bool
}

// build constructs one scheme at the configured capacity. All schemes assume
// unique keys, matching the workloads and the paper's cost model.
func build(s Scheme, o Options, seed uint64, tc tableConfig) (kv.Table, error) {
	maxLoop := tc.maxLoop
	if maxLoop == 0 {
		maxLoop = o.MaxLoop
	}
	switch s {
	case SchemeCuckoo:
		return cuckoo.New(cuckoo.Config{
			D: 3, Slots: 1, BucketsPerTable: o.Capacity / 3,
			MaxLoop: maxLoop, Seed: seed, Policy: tc.policy,
			StashEnabled: tc.stash, StashMax: tc.stashMax,
			AssumeUniqueKeys: !tc.upsert,
		})
	case SchemeBCHT:
		return cuckoo.New(cuckoo.Config{
			D: 3, Slots: 3, BucketsPerTable: o.Capacity / 9,
			MaxLoop: maxLoop, Seed: seed, Policy: tc.policy,
			StashEnabled: tc.stash, StashMax: tc.stashMax,
			AssumeUniqueKeys: !tc.upsert,
		})
	case SchemeMcCuckoo:
		return core.New(core.Config{
			D: 3, BucketsPerTable: o.Capacity / 3,
			MaxLoop: maxLoop, Seed: seed, Policy: tc.policy,
			Deletion: tc.deletion, DisablePrescreen: tc.disablePrescreen,
			StashEnabled: tc.stash, StashMax: tc.stashMax,
			AssumeUniqueKeys: !tc.upsert,
		})
	case SchemeBMcCuckoo:
		return core.NewBlocked(core.Config{
			D: 3, Slots: 3, BucketsPerTable: o.Capacity / 9,
			MaxLoop: maxLoop, Seed: seed, Policy: tc.policy,
			Deletion:     tc.deletion,
			StashEnabled: tc.stash, StashMax: tc.stashMax,
			AssumeUniqueKeys: !tc.upsert,
		})
	default:
		return nil, fmt.Errorf("bench: unknown scheme %d", s)
	}
}
