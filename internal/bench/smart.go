package bench

import (
	"fmt"

	"mccuckoo/internal/core"
	"mccuckoo/internal/cuckoo"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/metrics"
	"mccuckoo/internal/workload"
)

// ExtSmartCuckoo contrasts the two families of "stop kicking blindly"
// solutions the paper's introduction frames: SmartCuckoo's loop
// predetermination (fail fast, d=2 only) versus McCuckoo's counters (defer
// and resolve collisions, any d), at d=2 where both apply, across loads
// around the d=2 threshold (50%). Reported per variant: stashed items,
// kicks wasted on insertions that ended in the stash, and total kicks per
// insertion.
func ExtSmartCuckoo(o Options) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	loads := []float64{0.40, 0.45, 0.50, 0.55}
	variants := []string{"Cuckoo-d2", "SmartCuckoo-d2", "McCuckoo-d2"}
	rows := [][]string{{"load", "variant", "stashed", "wasted kicks/stash", "kicks/insert"}}
	for _, load := range loads {
		for _, v := range variants {
			var stashed, wasted, kicks metrics.Agg
			for run := 0; run < o.Runs; run++ {
				st, w, k, err := smartPoint(o, run, v, load)
				if err != nil {
					return nil, err
				}
				stashed.Add(st)
				wasted.Add(w)
				kicks.Add(k)
			}
			wastedCell := "-"
			if stashed.Mean() > 0 {
				wastedCell = fmt.Sprintf("%.1f", wasted.Mean()/stashed.Mean())
			}
			rows = append(rows, []string{
				fmt.Sprintf("%.0f%%", load*100), v,
				fmt.Sprintf("%.1f", stashed.Mean()),
				wastedCell,
				fmt.Sprintf("%.4f", kicks.Mean()),
			})
		}
	}
	return []*Result{{
		ID:    "ext-smart",
		Title: "Extension — loop predetermination (SmartCuckoo) vs counters (McCuckoo) at d=2",
		Rows:  rows,
		Notes: []string{
			"all variants stash the same items — d=2 placeability is graph-theoretic, so the approaches differ only in cost",
			"SmartCuckoo makes failures free (0 wasted kicks) but leaves successful inserts untouched;",
			"McCuckoo's counters cheapen the successful inserts (~2x fewer kicks below threshold) but failures still pay maxloop",
		},
	}}, nil
}

func smartPoint(o Options, run int, variant string, load float64) (stashed, wastedKicks, kicksPerInsert float64, err error) {
	seed := o.runSeed(run)
	capacity := o.Capacity / 2 * 2
	var tab kv.Table
	switch variant {
	case "Cuckoo-d2", "SmartCuckoo-d2":
		tab, err = cuckoo.New(cuckoo.Config{
			D: 2, Slots: 1, BucketsPerTable: capacity / 2, MaxLoop: o.MaxLoop,
			Seed: seed, StashEnabled: true, AssumeUniqueKeys: true,
			PredetermineLoops: variant == "SmartCuckoo-d2",
		})
	case "McCuckoo-d2":
		tab, err = core.New(core.Config{
			D: 2, BucketsPerTable: capacity / 2, MaxLoop: o.MaxLoop,
			Seed: seed, StashEnabled: true, AssumeUniqueKeys: true,
		})
	default:
		err = fmt.Errorf("bench: unknown smart variant %q", variant)
	}
	if err != nil {
		return 0, 0, 0, err
	}
	keys := workload.Unique(seed, int(load*float64(tab.Capacity())))
	var nStashed, nWasted, nKicks int64
	for _, k := range keys {
		out := tab.Insert(k, k)
		nKicks += int64(out.Kicks)
		switch out.Status {
		case kv.Stashed:
			nStashed++
			nWasted += int64(out.Kicks)
		case kv.Failed:
			return 0, 0, 0, fmt.Errorf("bench: failed with unbounded stash")
		}
	}
	return float64(nStashed), float64(nWasted), float64(nKicks) / float64(len(keys)), nil
}
