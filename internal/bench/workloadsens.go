package bench

import (
	"fmt"

	"mccuckoo/internal/kv"
	"mccuckoo/internal/metrics"
	"mccuckoo/internal/workload"
)

// ExtWorkloadSensitivity empirically validates the dataset substitution
// documented in DESIGN.md §3: the paper evaluates on DocWords (NYTimes
// DocID‖WordID pairs with Zipf-skewed document popularity); this repository
// defaults to a uniform unique-key stream. Since cuckoo behaviour depends
// only on hashed key positions, the two workloads must produce the same
// curves — this experiment runs the Fig. 9 kick-out sweep under both and
// reports them side by side.
func ExtWorkloadSensitivity(o Options) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	schemes := []Scheme{SchemeCuckoo, SchemeMcCuckoo}
	kinds := []struct {
		name string
		gen  func(seed uint64, n int) ([]uint64, error)
	}{
		{"uniform", func(seed uint64, n int) ([]uint64, error) {
			return workload.Unique(seed, n), nil
		}},
		{"docwords", func(seed uint64, n int) ([]uint64, error) {
			// NYTimes-ish shape: ~300k docs, ~102k-word vocabulary.
			return workload.DocWords(seed, n, 300_000, 102_000)
		}},
	}
	series := make([]*metrics.Series, 0, len(schemes)*len(kinds))
	for _, s := range schemes {
		loads := loadsFor(s, StandardLoads)
		for _, kind := range kinds {
			sr := metrics.NewSeries(s.String() + "/" + kind.name)
			series = append(series, sr)
			for run := 0; run < o.Runs; run++ {
				points, err := insertSweepKeys(s, o, run, loads, kind.gen)
				if err != nil {
					return nil, err
				}
				for _, p := range points {
					sr.Add(p.load*100, p.kicks)
				}
			}
		}
	}
	return []*Result{{
		ID: "ext-workload",
		Table: &metrics.Table{
			Title:  "Extension — kick-outs per insertion under uniform vs DocWords-shaped keys",
			XLabel: "load",
			XFmt:   "%.0f%%",
			YFmt:   "%.4f",
			Series: series,
		},
		Notes: []string{"matching columns validate the dataset substitution of DESIGN.md §3: hashed keys erase workload shape"},
	}}, nil
}

// insertSweepKeys is insertSweep with a pluggable key source.
func insertSweepKeys(s Scheme, o Options, run int, loads []float64, gen func(uint64, int) ([]uint64, error)) ([]insertPoint, error) {
	seed := o.runSeed(run)
	tab, err := build(s, o, seed, tableConfig{stash: true})
	if err != nil {
		return nil, err
	}
	capacity := tab.Capacity()
	keys, err := gen(seed, int(float64(capacity)*loads[len(loads)-1])+1)
	if err != nil {
		return nil, err
	}
	window := windowOps(capacity)
	points := make([]insertPoint, 0, len(loads))
	next := 0
	insertTo := func(target int) (kicks int64, err error) {
		for next < target {
			out := tab.Insert(keys[next], keys[next]+1)
			if out.Status == kv.Failed {
				return 0, fmt.Errorf("bench: %s insert failed at load %.3f", s, tab.LoadRatio())
			}
			kicks += int64(out.Kicks)
			next++
		}
		return kicks, nil
	}
	for _, load := range loads {
		target := int(load * float64(capacity))
		warm := target - window
		if warm < next {
			warm = next
		}
		if _, err := insertTo(warm); err != nil {
			return points, err
		}
		start := next
		kicks, err := insertTo(target)
		if err != nil {
			return points, err
		}
		ops := int64(next - start)
		if ops == 0 {
			continue
		}
		points = append(points, insertPoint{
			load:  load,
			ops:   ops,
			kicks: float64(kicks) / float64(ops),
		})
	}
	return points, nil
}
