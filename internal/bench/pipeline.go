package bench

import (
	"fmt"

	"mccuckoo/internal/fpga"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/metrics"
	"mccuckoo/internal/workload"
)

// ExtPipeline models the paper's declared future work — a pipelined
// implementation ("due to the time limit, no parallelism or pipeline is
// implemented", §IV.F) — by recording each scheme's real per-operation
// access streams at 50% load and scheduling them with 1, 2, 4 and 8
// operations in flight over the shared DDR controller.
//
// The prediction this quantifies: pipelining amplifies McCuckoo's
// advantage, because its operations are counter-bound (cheap, overlappable
// logic) while the baselines are controller-bound (every op occupies the
// one DDR port), so extra depth buys the baselines almost nothing.
func ExtPipeline(o Options) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	depths := []int{1, 2, 4, 8}
	mkSeries := func() []*metrics.Series {
		out := make([]*metrics.Series, len(AllSchemes))
		for i, s := range AllSchemes {
			out[i] = metrics.NewSeries(s.String())
		}
		return out
	}
	missTP, hitTP := mkSeries(), mkSeries()
	for i, s := range AllSchemes {
		for run := 0; run < o.Runs; run++ {
			missOps, hitOps, err := recordLookupStreams(s, o, run)
			if err != nil {
				return nil, err
			}
			for _, d := range depths {
				p := platformFor(s, 8)
				missTP[i].Add(float64(d), fpga.PipelineThroughputMOPS(p, missOps, d))
				hitTP[i].Add(float64(d), fpga.PipelineThroughputMOPS(p, hitOps, d))
			}
		}
	}
	return []*Result{
		{
			ID: "ext-pipeline-miss",
			Table: &metrics.Table{
				Title:  "Extension — pipelined lookup throughput, non-existing items (Mops/s, 50% load)",
				XLabel: "depth",
				XFmt:   "%.0f",
				YFmt:   "%.2f",
				Series: missTP,
			},
		},
		{
			ID: "ext-pipeline-hit",
			Table: &metrics.Table{
				Title:  "Extension — pipelined lookup throughput, existing items (Mops/s, 50% load)",
				XLabel: "depth",
				XFmt:   "%.0f",
				YFmt:   "%.2f",
				Series: hitTP,
			},
			Notes: []string{"future-work model: the paper's platform runs depth 1; deeper pipelines reward counter-bound schemes"},
		},
	}, nil
}

// recordLookupStreams fills a table to 50% and records the per-operation
// access streams of o.Queries negative and positive lookups.
func recordLookupStreams(s Scheme, o Options, run int) (missOps, hitOps [][]fpga.Access, err error) {
	seed := o.runSeed(run)
	tab, err := build(s, o, seed, tableConfig{stash: true})
	if err != nil {
		return nil, nil, err
	}
	target := tab.Capacity() / 2
	keys := workload.Unique(seed, target)
	for _, k := range keys {
		if tab.Insert(k, k+1).Status == kv.Failed {
			return nil, nil, fmt.Errorf("bench: pipeline fill failed")
		}
	}
	negatives := workload.Negative(seed, o.Queries, keys)

	var miss fpga.Recorder
	miss.Attach(tab.Meter())
	for _, k := range negatives {
		miss.BeginOp()
		if _, ok := tab.Lookup(k); ok {
			return nil, nil, fmt.Errorf("bench: phantom hit")
		}
	}
	var hit fpga.Recorder
	hit.Attach(tab.Meter())
	for q := 0; q < o.Queries; q++ {
		hit.BeginOp()
		if _, ok := tab.Lookup(keys[(q*2654435761)%target]); !ok {
			return nil, nil, fmt.Errorf("bench: lost key")
		}
	}
	tab.Meter().Hook = nil
	return miss.Ops(), hit.Ops(), nil
}
