package bench

import (
	"fmt"
	"sync"
	"time"

	"mccuckoo"
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/metrics"
	"mccuckoo/internal/workload"
)

// ConcurrentOptions parameterizes the concurrent throughput sweep: a mixed
// read/write trace replayed from increasing goroutine counts against the
// global-lock Concurrent wrapper and against Sharded tables of increasing
// shard counts. Unlike the paper experiments (which count memory accesses),
// this sweep measures wall-clock throughput — it exists to size the
// sharding win on real hardware, so results vary with the machine.
type ConcurrentOptions struct {
	// Capacity is the total bucket count of every table variant.
	Capacity int
	// Ops is the length of the mixed trace replayed per configuration.
	Ops int
	// Goroutines are the replay parallelism levels swept.
	Goroutines []int
	// Shards are the shard counts swept for the Sharded table; the
	// global-lock baseline always runs too.
	Shards []int
	// Batch, when positive, adds a second series per shard count that
	// replays through the batched APIs in key-affine-reordered batches of
	// at most Batch keys (workload.GroupBatches). Sharded only; the
	// global-lock wrapper has no batch path.
	Batch int
	// Reps is how many times each configuration is replayed; the best run
	// is reported, the standard way to strip scheduler noise from
	// wall-clock microbenchmarks.
	Reps int
	// Seed derives the trace and all table seeds.
	Seed uint64
	// InsertWeight/LookupWeight/DeleteWeight shape the mix (normalized);
	// NegativeShare is the fraction of lookups that target absent keys.
	InsertWeight, LookupWeight, DeleteWeight float64
	NegativeShare                            float64
}

// DefaultConcurrentOptions returns laptop-scale defaults: ~196k buckets,
// 600k ops of a 25/65/10 insert/lookup/delete mix, with a batched series at
// 64-key batches alongside the per-op series.
func DefaultConcurrentOptions() ConcurrentOptions {
	return ConcurrentOptions{
		Capacity:     3 * 65536,
		Ops:          600_000,
		Goroutines:   []int{1, 2, 4, 8},
		Shards:       []int{4, 16},
		Batch:        64,
		Reps:         3,
		Seed:         1,
		InsertWeight: 2.5, LookupWeight: 6.5, DeleteWeight: 1,
		NegativeShare: 0.1,
	}
}

func (o *ConcurrentOptions) normalize() error {
	d := DefaultConcurrentOptions()
	if o.Capacity == 0 {
		o.Capacity = d.Capacity
	}
	if o.Ops == 0 {
		o.Ops = d.Ops
	}
	if len(o.Goroutines) == 0 {
		o.Goroutines = d.Goroutines
	}
	if len(o.Shards) == 0 {
		o.Shards = d.Shards
	}
	if o.InsertWeight == 0 && o.LookupWeight == 0 && o.DeleteWeight == 0 {
		o.InsertWeight, o.LookupWeight, o.DeleteWeight = d.InsertWeight, d.LookupWeight, d.DeleteWeight
		o.NegativeShare = d.NegativeShare
	}
	if o.Reps == 0 {
		o.Reps = d.Reps
	}
	if o.Reps < 1 {
		return fmt.Errorf("bench: Reps must be positive, got %d", o.Reps)
	}
	if o.Capacity < 3*64 {
		return fmt.Errorf("bench: concurrent capacity %d too small", o.Capacity)
	}
	if o.Ops < 1 {
		return fmt.Errorf("bench: Ops must be positive")
	}
	for _, g := range o.Goroutines {
		if g < 1 {
			return fmt.Errorf("bench: goroutine counts must be positive, got %d", g)
		}
	}
	for _, n := range o.Shards {
		if n < 1 || n&(n-1) != 0 {
			return fmt.Errorf("bench: shard counts must be powers of two, got %d", n)
		}
	}
	if o.Batch < 0 {
		return fmt.Errorf("bench: Batch must be non-negative, got %d", o.Batch)
	}
	return nil
}

// Both contenders are driven through the public mccuckoo.Store interface —
// the same surface every other consumer (mcserved, mctrace) binds, so the
// sweep measures exactly what a user of the package would see.

// buildGlobal builds the global-lock baseline: one single-slot table behind
// Concurrent's table-wide RWMutex.
func buildGlobal(o ConcurrentOptions) (mccuckoo.Store, error) {
	inner, err := mccuckoo.New(o.Capacity,
		mccuckoo.WithSeed(hashutil.Mix64(o.Seed^0x910ba1)))
	if err != nil {
		return nil, err
	}
	return mccuckoo.NewConcurrent(inner), nil
}

// buildSharded builds an n-shard partitioned table at matched total
// capacity.
func buildSharded(o ConcurrentOptions, n int) (*mccuckoo.Sharded, error) {
	return mccuckoo.NewSharded(o.Capacity, n, mccuckoo.WithSeed(o.Seed))
}

// replayOps drives the per-goroutine op streams against tab one operation
// at a time and returns the wall-clock throughput in Mops/s.
func replayOps(tab mccuckoo.Store, streams [][]workload.Op) float64 {
	total := 0
	for _, st := range streams {
		total += len(st)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for _, st := range streams {
		wg.Add(1)
		go func(ops []workload.Op) {
			defer wg.Done()
			for _, op := range ops {
				switch op.Kind {
				case workload.OpInsert:
					tab.Insert(op.Key, op.Key)
				case workload.OpLookup:
					tab.Lookup(op.Key)
				case workload.OpDelete:
					tab.Delete(op.Key)
				}
			}
		}(st)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return float64(total) / elapsed.Seconds() / 1e6
}

// replayBatched drives pre-grouped batch streams through the public
// allocation-free BatchStore Into APIs and returns Mops/s over the
// underlying key count. Batch construction is trace preparation and happens
// before the clock starts, same as op-stream construction for replayOps.
func replayBatched(s mccuckoo.BatchStore, streams [][]workload.Batch, maxBatch int) float64 {
	total := 0
	for _, st := range streams {
		for _, b := range st {
			total += len(b.Keys)
		}
	}
	var wg sync.WaitGroup
	start := time.Now()
	for _, st := range streams {
		wg.Add(1)
		go func(batches []workload.Batch) {
			defer wg.Done()
			values := make([]uint64, maxBatch)
			found := make([]bool, maxBatch)
			for _, b := range batches {
				switch b.Kind {
				case workload.OpInsert:
					s.InsertBatchInto(b.Keys, b.Keys, nil)
				case workload.OpLookup:
					s.LookupBatchInto(b.Keys, values[:len(b.Keys)], found[:len(b.Keys)])
				case workload.OpDelete:
					s.DeleteBatchInto(b.Keys, nil)
				}
			}
		}(st)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return float64(total) / elapsed.Seconds() / 1e6
}

// ConcurrentSweep measures mixed-workload throughput for the global-lock
// wrapper and for each sharded configuration across goroutine counts, and
// reports the per-shard statistics of the widest sharded run.
func ConcurrentSweep(o ConcurrentOptions) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	ops, err := workload.Mix(workload.MixConfig{
		Seed: hashutil.Mix64(o.Seed ^ 0xc0c0), Ops: o.Ops,
		InsertWeight: o.InsertWeight, LookupWeight: o.LookupWeight,
		DeleteWeight: o.DeleteWeight, NegativeShare: o.NegativeShare,
		KeySpace: o.Capacity / 2,
	})
	if err != nil {
		return nil, err
	}

	global := metrics.NewSeries("global-lock")
	shardSeries := make([]*metrics.Series, len(o.Shards))
	batchSeries := make([]*metrics.Series, 0, len(o.Shards))
	for i, n := range o.Shards {
		shardSeries[i] = metrics.NewSeries(fmt.Sprintf("sharded/%d", n))
		if o.Batch > 0 {
			batchSeries = append(batchSeries, metrics.NewSeries(fmt.Sprintf("sharded/%d+batch", n)))
		}
	}
	var widest mccuckoo.ShardStats

	for _, g := range o.Goroutines {
		streams, err := workload.SplitByKey(ops, g, o.Seed)
		if err != nil {
			return nil, err
		}
		var batched [][]workload.Batch
		if o.Batch > 0 {
			batched = make([][]workload.Batch, len(streams))
			for j, st := range streams {
				batched[j] = workload.GroupBatches(st, o.Batch)
			}
		}
		// Each repetition replays the trace into a freshly built table (a
		// used table would answer the same trace with different work); the
		// best of Reps runs strips scheduler noise.
		best := 0.0
		for r := 0; r < o.Reps; r++ {
			tab, err := buildGlobal(o)
			if err != nil {
				return nil, err
			}
			if t := replayOps(tab, streams); t > best {
				best = t
			}
		}
		global.Add(float64(g), best)
		for i, n := range o.Shards {
			best = 0
			for r := 0; r < o.Reps; r++ {
				s, err := buildSharded(o, n)
				if err != nil {
					return nil, err
				}
				if t := replayOps(s, streams); t > best {
					best = t
				}
				widest = s.ShardStats()
			}
			shardSeries[i].Add(float64(g), best)
			if o.Batch > 0 {
				best = 0
				for r := 0; r < o.Reps; r++ {
					sb, err := buildSharded(o, n)
					if err != nil {
						return nil, err
					}
					if t := replayBatched(sb, batched, o.Batch); t > best {
						best = t
					}
					widest = sb.ShardStats()
				}
				batchSeries[i].Add(float64(g), best)
			}
		}
	}

	mode := "per-op"
	if o.Batch > 0 {
		mode = fmt.Sprintf("per-op and batched<=%d", o.Batch)
	}
	tput := &Result{
		ID: "concurrent",
		Table: &metrics.Table{
			Title: fmt.Sprintf("Concurrent throughput (Mops/s, wall clock) — %d-op %.0f/%.0f/%.0f mix, %s",
				o.Ops, o.InsertWeight, o.LookupWeight, o.DeleteWeight, mode),
			XLabel: "goroutines", XFmt: "%.0f", YFmt: "%.2f",
			Series: append(append([]*metrics.Series{global}, shardSeries...), batchSeries...),
		},
		Notes: []string{
			"wall-clock numbers: machine-dependent, unlike the paper's access-count figures",
			"streams are split by key so per-key op order is preserved under parallel replay",
			"+batch series replays key-affine-reordered batches (workload.GroupBatches) via the Into APIs",
		},
	}

	rows := [][]string{{"shard", "items", "load", "stash", "kicks", "lookups", "rlocks", "wlocks"}}
	for _, sh := range widest.Shards {
		rows = append(rows, []string{
			fmt.Sprintf("%d", sh.Shard),
			fmt.Sprintf("%d", sh.Items),
			fmt.Sprintf("%.1f%%", sh.LoadRatio*100),
			fmt.Sprintf("%d", sh.StashLen),
			fmt.Sprintf("%d", sh.Kicks),
			fmt.Sprintf("%d", sh.Lookups),
			fmt.Sprintf("%d", sh.ReadLocks),
			fmt.Sprintf("%d", sh.WriteLocks),
		})
	}
	stats := &Result{
		ID:    "concurrent-shards",
		Title: fmt.Sprintf("Per-shard statistics — %d shards after the final replay", len(widest.Shards)),
		Rows:  rows,
		Notes: []string{fmt.Sprintf("shard load min %.1f%% / max %.1f%%: routing balance",
			widest.MinLoad*100, widest.MaxLoad*100)},
	}
	return []*Result{tput, stats}, nil
}
