package bench

import (
	"fmt"

	"mccuckoo/internal/perfgate"
)

// PerfReport flattens rendered experiment results into the versioned BENCH
// schema (perfgate.Report, DESIGN.md §14), so benchmark artifacts written
// by the harness carry the same envelope the perf gate consumes: schema
// version, machine block, and one named series per (result, series, x)
// point. yNsPerOp converts a table's y value into ns/op — the concurrent
// sweep reports Mops/s, so it passes y→1000/y; nil means y already is
// ns/op. Results without a series table (free-form rows) contribute only
// their notes.
func PerfReport(benchmark, command string, results []*Result, yNsPerOp func(float64) float64) *perfgate.Report {
	rep := perfgate.NewReport(benchmark, command)
	for _, r := range results {
		if r.Table != nil {
			for _, s := range r.Table.Series {
				for _, x := range s.Xs() {
					y, ok := s.At(x)
					if !ok {
						continue
					}
					ns := y
					if yNsPerOp != nil {
						ns = yNsPerOp(y)
					}
					rep.Series = append(rep.Series, perfgate.Series{
						Name:    fmt.Sprintf("%s/%s/x=%g", r.ID, s.Name, x),
						Scale:   int(x),
						NsPerOp: ns,
					})
				}
			}
		}
		rep.Notes = append(rep.Notes, r.Notes...)
	}
	rep.Sort()
	return rep
}
