package bench

import (
	"fmt"

	"mccuckoo/internal/kv"
	"mccuckoo/internal/metrics"
	"mccuckoo/internal/workload"
)

// ExtMixedWorkloads evaluates the four schemes under YCSB-style operation
// mixes — the systems view the paper's per-operation figures compose into.
// Tables are pre-loaded to 70%, then a mixed stream runs against them; the
// reported numbers are off-chip reads and writes per operation and the
// modelled throughput on the paper's platform (8-byte records).
func ExtMixedWorkloads(o Options) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	mixes := []struct {
		name                 string
		insertW, readW, delW float64
		negShare             float64
	}{
		{"A: 50/50 read/insert", 5, 5, 0, 0.05},
		{"B: 95/5 read/insert", 0.5, 9.5, 0, 0.05},
		{"C: read-only", 0, 1, 0, 0.05},
		{"D: churn 45/45/10", 4.5, 4.5, 1, 0.20},
	}
	rows := [][]string{{"mix", "scheme", "reads/op", "writes/op", "Mops/s (model)"}}
	for _, mix := range mixes {
		for _, s := range AllSchemes {
			var reads, writes, tput metrics.Agg
			for run := 0; run < o.Runs; run++ {
				r, w, tp, err := mixedPoint(s, o, run, mix.insertW, mix.readW, mix.delW, mix.negShare)
				if err != nil {
					return nil, err
				}
				reads.Add(r)
				writes.Add(w)
				tput.Add(tp)
			}
			rows = append(rows, []string{
				mix.name, s.String(),
				fmt.Sprintf("%.4f", reads.Mean()),
				fmt.Sprintf("%.4f", writes.Mean()),
				fmt.Sprintf("%.2f", tput.Mean()),
			})
		}
	}
	return []*Result{{
		ID:    "ext-mixed",
		Title: "Extension — YCSB-style operation mixes at 70% pre-load (8-byte records)",
		Rows:  rows,
		Notes: []string{"mixes name insert:read:delete weights; 5-20% of reads target absent keys"},
	}}, nil
}

func mixedPoint(s Scheme, o Options, run int, insertW, readW, delW, negShare float64) (readsPerOp, writesPerOp, mops float64, err error) {
	seed := o.runSeed(run)
	tab, err := build(s, o, seed, tableConfig{stash: true, upsert: true})
	if err != nil {
		return 0, 0, 0, err
	}
	// Pre-load to 70% with keys outside the mixed stream's key space.
	preload := workload.Negative(seed+99, int(0.70*float64(tab.Capacity()))-o.Queries/4, nil)
	for _, k := range preload {
		if tab.Insert(k, k).Status == kv.Failed {
			return 0, 0, 0, fmt.Errorf("bench: mixed preload failed")
		}
	}
	ops, err := workload.Mix(workload.MixConfig{
		Seed: seed, Ops: o.Queries, KeySpace: o.Queries / 4,
		InsertWeight: insertW, LookupWeight: readW, DeleteWeight: delW,
		NegativeShare: negShare,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	before := tab.Meter().Snapshot()
	for _, op := range ops {
		switch op.Kind {
		case workload.OpInsert:
			tab.Insert(op.Key, op.Key)
		case workload.OpLookup:
			tab.Lookup(op.Key)
		case workload.OpDelete:
			tab.Delete(op.Key)
		}
	}
	delta := tab.Meter().Snapshot().Sub(before)
	n := int64(len(ops))
	plat := platformFor(s, 8)
	return float64(delta.OffChipReads) / float64(n),
		float64(delta.OffChipWrites) / float64(n),
		plat.ThroughputMOPS(delta, n), nil
}
