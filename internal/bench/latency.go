package bench

import (
	"mccuckoo/internal/memmodel"
	"mccuckoo/internal/metrics"
)

// RecordSizes is the record-size axis of Fig. 15(b) and Fig. 16 (bytes).
var RecordSizes = []int{8, 16, 32, 64, 128}

// platformFor returns the FPGA-derived latency model for a scheme: an
// off-chip read fetches one record for the single-slot schemes and a whole
// 3-slot bucket for the blocked ones.
func platformFor(s Scheme, recordBytes int) memmodel.Platform {
	if s.Blocked() {
		return memmodel.DefaultPlatform(recordBytes * 3)
	}
	return memmodel.DefaultPlatform(recordBytes)
}

// Fig15 reproduces "Latency and throughput for insertion": (a) average
// insertion latency across loads at 8-byte records, (b) insertion throughput
// at 50% load across record sizes.
func Fig15(o Options) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	latency := make([]*metrics.Series, len(AllSchemes))
	throughput := make([]*metrics.Series, len(AllSchemes))
	for i, s := range AllSchemes {
		latency[i] = metrics.NewSeries(s.String())
		throughput[i] = metrics.NewSeries(s.String())
	}
	for i, s := range AllSchemes {
		loads := loadsFor(s, StandardLoads)
		for run := 0; run < o.Runs; run++ {
			points, err := insertSweep(s, o, run, loads)
			if err != nil {
				return nil, err
			}
			for _, p := range points {
				latency[i].Add(p.load*100, platformFor(s, 8).LatencyNS(p.traffic, p.ops))
				if p.load == 0.50 {
					for _, rb := range RecordSizes {
						throughput[i].Add(float64(rb), platformFor(s, rb).ThroughputMOPS(p.traffic, p.ops))
					}
				}
			}
		}
	}
	return []*Result{
		{
			ID: "fig15a",
			Table: &metrics.Table{
				Title:  "Fig. 15(a) — insertion latency (ns, platform model, 8-byte records)",
				XLabel: "load",
				XFmt:   "%.0f%%",
				YFmt:   "%.1f",
				Series: latency,
			},
		},
		{
			ID: "fig15b",
			Table: &metrics.Table{
				Title:  "Fig. 15(b) — insertion throughput at 50% load (Mops/s, platform model)",
				XLabel: "record B",
				XFmt:   "%.0f",
				YFmt:   "%.2f",
				Series: throughput,
			},
		},
	}, nil
}

// Fig16 reproduces "Latency and throughput for lookup": latency (a existing,
// b non-existing) and throughput (c, d) across record sizes at 50% load.
func Fig16(o Options) ([]*Result, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	mkSeries := func() []*metrics.Series {
		out := make([]*metrics.Series, len(AllSchemes))
		for i, s := range AllSchemes {
			out[i] = metrics.NewSeries(s.String())
		}
		return out
	}
	latHit, latMiss := mkSeries(), mkSeries()
	tpHit, tpMiss := mkSeries(), mkSeries()

	for i, s := range AllSchemes {
		for run := 0; run < o.Runs; run++ {
			for _, positive := range []bool{true, false} {
				points, err := lookupSweep(s, o, run, []float64{0.50}, positive)
				if err != nil {
					return nil, err
				}
				for _, p := range points {
					for _, rb := range RecordSizes {
						plat := platformFor(s, rb)
						lat := plat.LatencyNS(p.traffic, p.ops)
						tp := plat.ThroughputMOPS(p.traffic, p.ops)
						if positive {
							latHit[i].Add(float64(rb), lat)
							tpHit[i].Add(float64(rb), tp)
						} else {
							latMiss[i].Add(float64(rb), lat)
							tpMiss[i].Add(float64(rb), tp)
						}
					}
				}
			}
		}
	}
	mkTable := func(id, title, yfmt string, series []*metrics.Series) *Result {
		return &Result{ID: id, Table: &metrics.Table{
			Title: title, XLabel: "record B", XFmt: "%.0f", YFmt: yfmt, Series: series,
		}}
	}
	return []*Result{
		mkTable("fig16a", "Fig. 16(a) — lookup latency, existing items (ns, 50% load)", "%.1f", latHit),
		mkTable("fig16b", "Fig. 16(b) — lookup latency, non-existing items (ns, 50% load)", "%.1f", latMiss),
		mkTable("fig16c", "Fig. 16(c) — lookup throughput, existing items (Mops/s)", "%.2f", tpHit),
		mkTable("fig16d", "Fig. 16(d) — lookup throughput, non-existing items (Mops/s)", "%.2f", tpMiss),
	}, nil
}
