package shard

import (
	"sync"
	"testing"

	"mccuckoo/internal/core"
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
)

// newSharded builds a sharded table over single-slot core tables, each with
// an independently derived seed.
func newSharded(t testing.TB, shards, bucketsPerShardTable int, seed uint64) *Sharded {
	t.Helper()
	s, err := New(shards, seed, func(i int) (Inner, error) {
		return core.New(core.Config{
			BucketsPerTable: bucketsPerShardTable,
			Seed:            hashutil.Mix64(seed + uint64(i)*0x9e3779b97f4a7c15),
			StashEnabled:    true,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	build := func(int) (Inner, error) {
		return core.New(core.Config{BucketsPerTable: 16, StashEnabled: true})
	}
	for _, bad := range []int{0, -1, 3, 6, 12, MaxShards * 2} {
		if _, err := New(bad, 1, build); err == nil {
			t.Errorf("shard count %d accepted", bad)
		}
	}
	for _, good := range []int{1, 2, 4, 64} {
		if _, err := New(good, 1, build); err != nil {
			t.Errorf("shard count %d rejected: %v", good, err)
		}
	}
}

// TestAgainstModel drives a mixed op stream against the sharded table and a
// map model and requires identical answers, then checks every shard's
// internal invariants.
func TestAgainstModel(t *testing.T) {
	s := newSharded(t, 8, 128, 7)
	model := make(map[uint64]uint64)
	rng := uint64(99)
	for i := 0; i < 20000; i++ {
		r := hashutil.SplitMix64(&rng)
		key := r % 1500
		switch (r >> 32) % 6 {
		case 0, 1, 2:
			s.Insert(key, r)
			model[key] = r
		case 3:
			if s.Delete(key) != (func() bool { _, ok := model[key]; return ok }()) {
				t.Fatalf("op %d: delete disagreement for key %d", i, key)
			}
			delete(model, key)
		default:
			v, ok := s.Lookup(key)
			mv, mok := model[key]
			if ok != mok || (ok && v != mv) {
				t.Fatalf("op %d: lookup(%d) = (%d,%v), model (%d,%v)", i, key, v, ok, mv, mok)
			}
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model has %d", s.Len(), len(model))
	}
	for i := range s.shards {
		if err := s.shards[i].tab.(*core.Table).CheckInvariants(); err != nil {
			t.Fatalf("shard %d invariants: %v", i, err)
		}
	}
}

// TestRoutingStable verifies every key always lands on the same shard and
// that items are findable only through the public API (routing is total).
func TestRoutingStable(t *testing.T) {
	s := newSharded(t, 16, 64, 3)
	for k := uint64(0); k < 1000; k++ {
		first := s.shardIndex(k)
		for rep := 0; rep < 3; rep++ {
			if got := s.shardIndex(k); got != first {
				t.Fatalf("key %d routed to %d then %d", k, first, got)
			}
		}
		if first < 0 || first >= s.NumShards() {
			t.Fatalf("key %d routed out of range: %d", k, first)
		}
	}
	// Single shard degenerates to index 0.
	one := newSharded(t, 1, 64, 3)
	for k := uint64(0); k < 100; k++ {
		if one.shardIndex(k) != 0 {
			t.Fatal("single-shard routing must be 0")
		}
	}
}

// TestRoutingBalance checks the salted-finalizer routing spreads uniform
// keys evenly: no shard further than 30% from the mean at 64k keys.
func TestRoutingBalance(t *testing.T) {
	s := newSharded(t, 16, 8, 11)
	counts := make([]int, s.NumShards())
	rng := uint64(5)
	n := 1 << 16
	for i := 0; i < n; i++ {
		counts[s.shardIndex(hashutil.SplitMix64(&rng))]++
	}
	mean := float64(n) / float64(len(counts))
	for i, c := range counts {
		if f := float64(c); f < 0.7*mean || f > 1.3*mean {
			t.Fatalf("shard %d holds %d of %d keys (mean %.0f): routing imbalanced", i, c, n, mean)
		}
	}
}

// TestBatchedMatchesSingle runs the same operations through the batch API
// on one table and the per-op API on a second, identically seeded table and
// requires identical results and stats (modulo lock counts).
func TestBatchedMatchesSingle(t *testing.T) {
	a := newSharded(t, 4, 256, 21)
	b := newSharded(t, 4, 256, 21)
	keys := make([]uint64, 3000)
	vals := make([]uint64, len(keys))
	rng := uint64(17)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&rng) % 4000
		vals[i] = hashutil.SplitMix64(&rng)
	}

	gotIns := a.InsertBatch(keys, vals)
	for i := range keys {
		want := b.Insert(keys[i], vals[i])
		if gotIns[i] != want {
			t.Fatalf("insert %d: batch %+v, single %+v", i, gotIns[i], want)
		}
	}
	gotVals, gotOK := a.LookupBatch(keys)
	for i := range keys {
		wv, wok := b.Lookup(keys[i])
		if gotOK[i] != wok || gotVals[i] != wv {
			t.Fatalf("lookup %d: batch (%d,%v), single (%d,%v)", i, gotVals[i], gotOK[i], wv, wok)
		}
	}
	gotDel := a.DeleteBatch(keys[:1000])
	for i, k := range keys[:1000] {
		if want := b.Delete(k); gotDel[i] != want {
			t.Fatalf("delete %d: batch %v, single %v", i, gotDel[i], want)
		}
	}
	if a.Len() != b.Len() {
		t.Fatalf("Len diverged: batch %d, single %d", a.Len(), b.Len())
	}

	// A batch touches each shard at most once per call.
	st := a.ShardStats()
	maxWrite := int64(2) // one InsertBatch + one DeleteBatch
	for _, sh := range st.Shards {
		if sh.WriteLocks > maxWrite {
			t.Fatalf("shard %d took %d write locks for 2 batch calls", sh.Shard, sh.WriteLocks)
		}
		if sh.ReadLocks > 1 {
			t.Fatalf("shard %d took %d read locks for 1 batch call", sh.Shard, sh.ReadLocks)
		}
	}
}

func TestBatchEdgeCases(t *testing.T) {
	s := newSharded(t, 2, 64, 5)
	if out := s.InsertBatch(nil, nil); len(out) != 0 {
		t.Fatal("empty InsertBatch must return empty")
	}
	if v, ok := s.LookupBatch(nil); len(v) != 0 || len(ok) != 0 {
		t.Fatal("empty LookupBatch must return empty")
	}
	if r := s.DeleteBatch(nil); len(r) != 0 {
		t.Fatal("empty DeleteBatch must return empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched InsertBatch lengths must panic")
		}
	}()
	s.InsertBatch([]uint64{1, 2}, []uint64{1})
}

// TestRange verifies exactly-once cross-shard iteration and early stop.
func TestRange(t *testing.T) {
	s := newSharded(t, 8, 128, 9)
	want := make(map[uint64]uint64)
	for k := uint64(0); k < 2000; k++ {
		s.Insert(k, k*3)
		want[k] = k * 3
	}
	got := make(map[uint64]uint64)
	s.Range(func(k, v uint64) bool {
		if _, dup := got[k]; dup {
			t.Fatalf("key %d reported twice", k)
		}
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range saw %d items, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: Range saw %d, want %d", k, got[k], v)
		}
	}
	seen := 0
	s.Range(func(k, v uint64) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Fatalf("early stop saw %d items, want 10", seen)
	}
}

// TestShardStats checks per-shard aggregation: totals match the flat view
// and lock/lookup counters add up.
func TestShardStats(t *testing.T) {
	s := newSharded(t, 4, 256, 13)
	for k := uint64(0); k < 1200; k++ {
		s.Insert(k, k)
	}
	hits := 0
	for k := uint64(0); k < 2000; k++ {
		if _, ok := s.Lookup(k); ok {
			hits++
		}
	}
	for k := uint64(0); k < 100; k++ {
		s.Delete(k)
	}
	st := s.ShardStats()
	if st.Items != s.Len() || st.Items != 1100 {
		t.Fatalf("aggregate Items = %d, Len = %d, want 1100", st.Items, s.Len())
	}
	if st.Capacity != s.Capacity() {
		t.Fatalf("aggregate Capacity = %d, Capacity() = %d", st.Capacity, s.Capacity())
	}
	if st.WriteLocks != 1200+100 {
		t.Fatalf("aggregate WriteLocks = %d, want 1300", st.WriteLocks)
	}
	if st.ReadLocks != 2000 || st.Lookups != 2000 {
		t.Fatalf("aggregate ReadLocks/Lookups = %d/%d, want 2000/2000", st.ReadLocks, st.Lookups)
	}
	if st.Hits != int64(hits) || hits != 1200 {
		t.Fatalf("aggregate Hits = %d, counted %d, want 1200", st.Hits, hits)
	}
	if st.MinLoad > st.MaxLoad || st.MaxLoad > 1 || st.MinLoad <= 0 {
		t.Fatalf("load bounds broken: min %.3f max %.3f", st.MinLoad, st.MaxLoad)
	}
	flat := s.Stats()
	if flat.Lookups != st.Lookups || flat.Hits != st.Hits {
		t.Fatalf("Stats()/ShardStats() disagree: %d/%d vs %d/%d",
			flat.Lookups, flat.Hits, st.Lookups, st.Hits)
	}
	if m := s.Meter(); m.OffChipWrites == 0 {
		t.Fatal("aggregate meter shows no off-chip writes after 1200 inserts")
	}
}

// TestConcurrentStress hammers the table from many goroutines mixing all
// five operations (the -race target for this package). Writers own disjoint
// key ranges so final contents are checkable; readers roam everywhere.
func TestConcurrentStress(t *testing.T) {
	s := newSharded(t, 8, 512, 31)
	const (
		writers      = 4
		readers      = 4
		keysPerGoro  = 2000
		deletedEvery = 4 // every 4th key is deleted again
	)
	var writerWG, readerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			base := uint64(w) * keysPerGoro
			buf := make([]uint64, 0, 64)
			for k := base; k < base+keysPerGoro; k++ {
				if k%2 == 0 {
					s.Insert(k, k+1)
				} else {
					buf = append(buf, k)
					if len(buf) == cap(buf) {
						vals := make([]uint64, len(buf))
						for i, bk := range buf {
							vals[i] = bk + 1
						}
						s.InsertBatch(buf, vals)
						buf = buf[:0]
					}
				}
			}
			vals := make([]uint64, len(buf))
			for i, bk := range buf {
				vals[i] = bk + 1
			}
			s.InsertBatch(buf, vals)
			for k := base; k < base+keysPerGoro; k += deletedEvery {
				s.Delete(k)
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rng := hashutil.Mix64(uint64(r) ^ 0xfeed)
			batch := make([]uint64, 16)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range batch {
					batch[i] = hashutil.SplitMix64(&rng) % (writers * keysPerGoro)
				}
				vals, oks := s.LookupBatch(batch)
				for i := range batch {
					if oks[i] && vals[i] != batch[i]+1 {
						t.Errorf("reader %d: key %d has value %d", r, batch[i], vals[i])
						return
					}
				}
				s.Len()
			}
		}(r)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	wantLen := writers * keysPerGoro * (deletedEvery - 1) / deletedEvery
	if got := s.Len(); got != wantLen {
		t.Fatalf("Len = %d after quiescence, want %d", got, wantLen)
	}
	for k := uint64(0); k < writers*keysPerGoro; k++ {
		v, ok := s.Lookup(k)
		if k%deletedEvery == 0 {
			if ok {
				t.Fatalf("deleted key %d still present", k)
			}
			continue
		}
		if !ok || v != k+1 {
			t.Fatalf("key %d lost or wrong after quiescence: (%d,%v)", k, v, ok)
		}
	}
	for i := range s.shards {
		if err := s.shards[i].tab.(*core.Table).CheckInvariants(); err != nil {
			t.Fatalf("shard %d invariants after stress: %v", i, err)
		}
	}
}

// TestKVTableConformance exercises the kv.Table view generically.
func TestKVTableConformance(t *testing.T) {
	var tab kv.Table = newSharded(t, 4, 64, 1)
	out := tab.Insert(42, 99)
	if out.Status != kv.Placed {
		t.Fatalf("insert status %v", out.Status)
	}
	if v, ok := tab.Lookup(42); !ok || v != 99 {
		t.Fatal("lookup through kv.Table failed")
	}
	if tab.LoadRatio() <= 0 || tab.Capacity() == 0 || tab.StashLen() != 0 {
		t.Fatal("accessor smoke checks failed")
	}
	if !tab.Delete(42) || tab.Len() != 0 {
		t.Fatal("delete through kv.Table failed")
	}
	if st := tab.Stats(); st.Inserts != 1 || st.Deletes != 1 {
		t.Fatalf("stats %+v", st)
	}
}
