package shard

import (
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/telemetry"
)

// Batched operations amortize lock traffic: keys are bucket-sorted by
// destination shard first, then each touched shard's lock is taken exactly
// once for the whole batch instead of once per key. Results come back in
// input order. Under contention this turns k lock acquisitions into at most
// min(k, NumShards()) and keeps every shard's critical section one
// contiguous run of its keys.
//
// The Into variants write results through caller-owned slices so a replay
// loop can reuse its buffers across batches; the plain forms allocate fresh
// result slices per call. The int32 working buffers come from a per-table
// sync.Pool, so steady-state batching performs no allocations of its own.

// Telemetry: when a sink is attached, every batched key is recorded as its
// own event (kind, outcome, off-chip accesses, shard) so the histograms and
// the flight recorder see batched traffic exactly like single-op traffic.
// Batched events carry Nanos == 0 — individual keys inside a batch are not
// timed, so they contribute to every histogram except latency.

// scratch returns a pooled buffer with capacity at least need.
//
//mcvet:hotpath
func (s *Sharded) scratch(need int) *[]int32 {
	p, _ := s.scratchPool.Get().(*[]int32)
	if p == nil || cap(*p) < need {
		b := make([]int32, need) //mcvet:allow hotpathalloc pool miss; amortized to zero allocations in steady state
		p = &b
	}
	return p
}

// groupByShard bucket-sorts the positions of keys by destination shard.
// order holds key positions grouped by shard; shard i owns positions
// order[start[i]:start[i+1]]. Both returned slices alias the pooled buffer,
// which the caller must release with scratchPool.Put when done.
//
//mcvet:hotpath
func (s *Sharded) groupByShard(keys []uint64, buf *[]int32) (order []int32, start []int32) {
	n := len(s.shards)
	// One backing array for all four working slices: order, per-key shard
	// ids, the n+1 prefix sums, and the n fill cursors.
	b := (*buf)[:2*len(keys)+2*n+1]
	order = b[:len(keys)]
	shardOf := b[len(keys) : 2*len(keys)]
	start = b[2*len(keys) : 2*len(keys)+n+1]
	next := b[2*len(keys)+n+1:]
	for i := range start {
		start[i] = 0
	}
	for i, k := range keys {
		sh := int32(s.shardIndex(k))
		shardOf[i] = sh
		start[sh+1]++
	}
	for i := 0; i < n; i++ {
		start[i+1] += start[i]
	}
	copy(next, start[:n])
	for i := range keys {
		sh := shardOf[i]
		order[next[sh]] = int32(i)
		next[sh]++
	}
	return order, start
}

// InsertBatch stores every keys[i]/values[i] pair, taking each touched
// shard's write lock once. The i-th outcome corresponds to the i-th key.
// len(values) must equal len(keys).
func (s *Sharded) InsertBatch(keys, values []uint64) []kv.Outcome {
	out := make([]kv.Outcome, len(keys))
	s.InsertBatchInto(keys, values, out)
	return out
}

// InsertBatchInto is InsertBatch writing outcomes into out, which must be
// nil (discard outcomes) or exactly len(keys) long.
//
//mcvet:hotpath
func (s *Sharded) InsertBatchInto(keys, values []uint64, out []kv.Outcome) {
	if len(keys) != len(values) {
		panic("shard: InsertBatch called with mismatched key/value lengths")
	}
	if out != nil && len(out) != len(keys) {
		panic("shard: InsertBatchInto outcome slice has wrong length")
	}
	if len(keys) == 0 {
		return
	}
	if len(keys) == 1 {
		si := s.shardIndex(keys[0])
		sh := &s.shards[si]
		sh.batchWriteOps.Add(1)
		sh.batchWriteAcqs.Add(1)
		sh.mu.Lock()
		var before int64
		if s.sink != nil {
			before = offTotal(sh.tab.Meter())
		}
		o := sh.tab.Insert(keys[0], values[0])
		if s.sink != nil {
			off := offTotal(sh.tab.Meter()) - before
			sh.mu.Unlock()
			s.recordInsert(si, keys[0], o, off)
		} else {
			sh.mu.Unlock()
		}
		if out != nil {
			out[0] = o
		}
		return
	}
	buf := s.scratch(2*len(keys) + 2*len(s.shards) + 1)
	order, start := s.groupByShard(keys, buf)
	for shi := range s.shards {
		lo, hi := start[shi], start[shi+1]
		if lo == hi {
			continue
		}
		sh := &s.shards[shi]
		sh.batchWriteOps.Add(int64(hi - lo))
		sh.batchWriteAcqs.Add(1)
		sh.mu.Lock()
		if s.sink == nil {
			for _, i := range order[lo:hi] {
				o := sh.tab.Insert(keys[i], values[i])
				if out != nil {
					out[i] = o
				}
			}
			sh.mu.Unlock()
			continue
		}
		//mcvet:allow lockdiscipline still locked here; the sink==nil branch above unlocks and continues
		m := sh.tab.Meter()
		for _, i := range order[lo:hi] {
			before := offTotal(m)
			//mcvet:allow lockdiscipline still locked here; the sink==nil branch above unlocks and continues
			o := sh.tab.Insert(keys[i], values[i])
			s.recordInsert(shi, keys[i], o, offTotal(m)-before)
			if out != nil {
				out[i] = o
			}
		}
		sh.mu.Unlock()
	}
	s.scratchPool.Put(buf)
}

// recordInsert emits one batched-insert telemetry event.
func (s *Sharded) recordInsert(shard int, key uint64, o kv.Outcome, off int64) {
	s.sink.Record(telemetry.Event{
		Op: telemetry.OpInsert, Status: uint8(o.Status), Shard: int32(shard),
		Kicks: int32(o.Kicks), OffChip: off, KeyHash: hashutil.Mix64(key),
	})
}

// LookupBatch answers every key, taking each touched shard's read lock
// once. values[i], found[i] correspond to keys[i].
func (s *Sharded) LookupBatch(keys []uint64) (values []uint64, found []bool) {
	values = make([]uint64, len(keys))
	found = make([]bool, len(keys))
	s.LookupBatchInto(keys, values, found)
	return values, found
}

// LookupBatchInto is LookupBatch writing answers into values and found,
// each of which must be exactly len(keys) long.
//
//mcvet:hotpath
func (s *Sharded) LookupBatchInto(keys []uint64, values []uint64, found []bool) {
	if len(values) != len(keys) || len(found) != len(keys) {
		panic("shard: LookupBatchInto result slices have wrong length")
	}
	if len(keys) == 0 {
		return
	}
	if len(keys) == 1 {
		si := s.shardIndex(keys[0])
		sh := &s.shards[si]
		sh.batchLookups.Add(1)
		sh.batchReadAcqs.Add(1)
		var off int64
		sh.mu.RLock()
		if s.sink != nil {
			values[0], found[0], off = sh.tab.LookupReadOnlyTraced(keys[0])
		} else {
			values[0], found[0] = sh.tab.LookupReadOnly(keys[0])
		}
		sh.mu.RUnlock()
		if found[0] {
			sh.hits.Add(1)
		}
		s.recordLookup(si, keys[0], found[0], off)
		return
	}
	buf := s.scratch(2*len(keys) + 2*len(s.shards) + 1)
	order, start := s.groupByShard(keys, buf)
	for shi := range s.shards {
		lo, hi := start[shi], start[shi+1]
		if lo == hi {
			continue
		}
		sh := &s.shards[shi]
		sh.batchLookups.Add(int64(hi - lo))
		sh.batchReadAcqs.Add(1)
		hits := int64(0)
		sh.mu.RLock()
		for _, i := range order[lo:hi] {
			if s.sink != nil {
				var off int64
				values[i], found[i], off = sh.tab.LookupReadOnlyTraced(keys[i])
				s.recordLookup(shi, keys[i], found[i], off)
			} else {
				values[i], found[i] = sh.tab.LookupReadOnly(keys[i])
			}
			if found[i] {
				hits++
			}
		}
		sh.mu.RUnlock()
		sh.hits.Add(hits)
	}
	s.scratchPool.Put(buf)
}

// recordLookup emits one batched-lookup telemetry event (no-op when no sink
// is attached).
func (s *Sharded) recordLookup(shard int, key uint64, hit bool, off int64) {
	if s.sink == nil {
		return
	}
	s.sink.Record(telemetry.Event{
		Op: telemetry.OpLookup, Hit: hit, Shard: int32(shard),
		OffChip: off, KeyHash: hashutil.Mix64(key),
	})
}

// DeleteBatch removes every key, taking each touched shard's write lock
// once. removed[i] reports whether keys[i] was present.
func (s *Sharded) DeleteBatch(keys []uint64) (removed []bool) {
	removed = make([]bool, len(keys))
	s.DeleteBatchInto(keys, removed)
	return removed
}

// DeleteBatchInto is DeleteBatch writing results into removed, which must
// be nil (discard results) or exactly len(keys) long.
//
//mcvet:hotpath
func (s *Sharded) DeleteBatchInto(keys []uint64, removed []bool) {
	if removed != nil && len(removed) != len(keys) {
		panic("shard: DeleteBatchInto result slice has wrong length")
	}
	if len(keys) == 0 {
		return
	}
	if len(keys) == 1 {
		si := s.shardIndex(keys[0])
		sh := &s.shards[si]
		sh.batchWriteOps.Add(1)
		sh.batchWriteAcqs.Add(1)
		sh.mu.Lock()
		var before int64
		if s.sink != nil {
			before = offTotal(sh.tab.Meter())
		}
		ok := sh.tab.Delete(keys[0])
		if s.sink != nil {
			off := offTotal(sh.tab.Meter()) - before
			sh.mu.Unlock()
			s.recordDelete(si, keys[0], ok, off)
		} else {
			sh.mu.Unlock()
		}
		if removed != nil {
			removed[0] = ok
		}
		return
	}
	buf := s.scratch(2*len(keys) + 2*len(s.shards) + 1)
	order, start := s.groupByShard(keys, buf)
	for shi := range s.shards {
		lo, hi := start[shi], start[shi+1]
		if lo == hi {
			continue
		}
		sh := &s.shards[shi]
		sh.batchWriteOps.Add(int64(hi - lo))
		sh.batchWriteAcqs.Add(1)
		sh.mu.Lock()
		if s.sink == nil {
			for _, i := range order[lo:hi] {
				ok := sh.tab.Delete(keys[i])
				if removed != nil {
					removed[i] = ok
				}
			}
			sh.mu.Unlock()
			continue
		}
		//mcvet:allow lockdiscipline still locked here; the sink==nil branch above unlocks and continues
		m := sh.tab.Meter()
		for _, i := range order[lo:hi] {
			before := offTotal(m)
			//mcvet:allow lockdiscipline still locked here; the sink==nil branch above unlocks and continues
			ok := sh.tab.Delete(keys[i])
			s.recordDelete(shi, keys[i], ok, offTotal(m)-before)
			if removed != nil {
				removed[i] = ok
			}
		}
		sh.mu.Unlock()
	}
	s.scratchPool.Put(buf)
}

// recordDelete emits one batched-delete telemetry event.
func (s *Sharded) recordDelete(shard int, key uint64, removed bool, off int64) {
	s.sink.Record(telemetry.Event{
		Op: telemetry.OpDelete, Hit: removed, Shard: int32(shard),
		OffChip: off, KeyHash: hashutil.Mix64(key),
	})
}
