package shard

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"mccuckoo/internal/atomicio"
	"mccuckoo/internal/core"
)

// Sharded snapshot format, version 1: a small checksummed header followed by
// one length-prefixed frame per shard, each frame a complete core snapshot
// (itself section-checksummed, v3), then a whole-file CRC32C trailer.
//
//	"MCSH" | u8 version | u32 shardCount | u64 seed | u8 innerKind | u32 headerCRC
//	shardCount × ( u64 frameLen | frameLen bytes )
//	u32 fileCRC
//
// Frames are buffered on both paths: core's loader reads through its own
// internal buffering, so each frame must be handed over as an exactly-sized
// byte slice, and the loader cross-checks that the core snapshot consumed
// the whole frame. Every field is covered by a checksum — header by
// headerCRC, frame bodies by the core v3 sections, frame lengths by the file
// trailer — so any bit flip is detected.

const (
	shardMagic   = "MCSH"
	shardVersion = 1
	// innerSingle/innerBlocked name the shard table kind in the header.
	innerSingle  = 0
	innerBlocked = 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxShardFrame bounds one shard's snapshot size (64 GiB) so a corrupt
// length field cannot demand an absurd allocation; real frames hit the core
// checksums long before this.
const maxShardFrame = 1 << 36

// WriteTo serializes every shard, each under its read lock. The per-shard
// snapshots are individually consistent; for a cross-shard-consistent file,
// quiesce writers first (SaveFile from a maintenance window, or wrap the
// call in application-level exclusion). It implements io.WriterTo.
//
//mcvet:deterministic
func (s *Sharded) WriteTo(w io.Writer) (int64, error) {
	kind, err := s.innerKind()
	if err != nil {
		return 0, err
	}
	var head bytes.Buffer
	head.WriteString(shardMagic)
	head.WriteByte(shardVersion)
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(s.shards)))
	head.Write(u32[:])
	binary.LittleEndian.PutUint64(u64[:], s.seed)
	head.Write(u64[:])
	head.WriteByte(kind)
	binary.LittleEndian.PutUint32(u32[:], crc32.Checksum(head.Bytes(), castagnoli))
	head.Write(u32[:])

	fileCRC := crc32.Checksum(head.Bytes(), castagnoli)
	written, err := writeCounted(w, head.Bytes())
	if err != nil {
		return written, err
	}

	var frame bytes.Buffer
	for i := range s.shards {
		frame.Reset()
		sh := &s.shards[i]
		sh.mu.RLock()
		_, err := sh.tab.WriteTo(&frame)
		sh.mu.RUnlock()
		if err != nil {
			return written, fmt.Errorf("shard: serializing shard %d: %w", i, err)
		}
		binary.LittleEndian.PutUint64(u64[:], uint64(frame.Len()))
		fileCRC = crc32.Update(fileCRC, castagnoli, u64[:])
		fileCRC = crc32.Update(fileCRC, castagnoli, frame.Bytes())
		n, err := writeCounted(w, u64[:])
		written += n
		if err != nil {
			return written, err
		}
		n, err = writeCounted(w, frame.Bytes())
		written += n
		if err != nil {
			return written, err
		}
	}
	binary.LittleEndian.PutUint32(u32[:], fileCRC)
	n, err := writeCounted(w, u32[:])
	written += n
	return written, err
}

// SaveFile writes a crash-safe snapshot of all shards to path (temp file +
// fsync + atomic rename), with the same per-shard consistency caveat as
// WriteTo.
func (s *Sharded) SaveFile(path string) error {
	return atomicio.WriteFile(path, func(f *os.File) error {
		_, err := s.WriteTo(f)
		return err
	})
}

// Load reads a sharded snapshot written by WriteTo and rebuilds the table.
// Any truncated or corrupted input is rejected with a *core.CorruptError.
func Load(r io.Reader) (*Sharded, error) {
	s, _, err := load(r)
	return s, err
}

// LoadFile loads a sharded snapshot file written by SaveFile, additionally
// rejecting trailing bytes after the trailer.
func LoadFile(path string) (*Sharded, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("shard: open snapshot: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("shard: stat snapshot: %w", err)
	}
	s, n, err := load(f)
	if err != nil {
		return nil, err
	}
	if n != info.Size() {
		return nil, &core.CorruptError{Kind: "sharded", Section: "trailer", Offset: n,
			Reason: fmt.Sprintf("%d trailing bytes after snapshot end", info.Size()-n)}
	}
	return s, nil
}

func load(r io.Reader) (*Sharded, int64, error) {
	corrupt := func(section string, off int64, reason string, err error) (*Sharded, int64, error) {
		return nil, off, &core.CorruptError{Kind: "sharded", Section: section, Offset: off,
			Reason: reason, Err: err}
	}

	head := make([]byte, 4+1+4+8+1+4)
	n, err := io.ReadFull(r, head)
	read := int64(n)
	if err != nil {
		return corrupt("header", read, "truncated header", err)
	}
	body, stored := head[:len(head)-4], binary.LittleEndian.Uint32(head[len(head)-4:])
	if got := crc32.Checksum(body, castagnoli); got != stored {
		return corrupt("header", read, fmt.Sprintf("header checksum mismatch (stored %#08x, computed %#08x)", stored, got), nil)
	}
	if string(head[:4]) != shardMagic {
		return corrupt("header", read, fmt.Sprintf("bad magic %q", head[:4]), nil)
	}
	if v := head[4]; v != shardVersion {
		return corrupt("header", read, fmt.Sprintf("unsupported sharded snapshot version %d (want %d)", v, shardVersion), nil)
	}
	shardCount := binary.LittleEndian.Uint32(head[5:9])
	seed := binary.LittleEndian.Uint64(head[9:17])
	kind := head[17]
	if shardCount == 0 || shardCount > MaxShards || shardCount&(shardCount-1) != 0 {
		return corrupt("header", read, fmt.Sprintf("invalid shard count %d", shardCount), nil)
	}
	if kind != innerSingle && kind != innerBlocked {
		return corrupt("header", read, fmt.Sprintf("unknown inner table kind %d", kind), nil)
	}

	fileCRC := crc32.Checksum(head, castagnoli)
	var frameErr error
	s, err := New(int(shardCount), seed, func(i int) (Inner, error) {
		var lenBuf [8]byte
		n, err := io.ReadFull(r, lenBuf[:])
		read += int64(n)
		if err != nil {
			return nil, &core.CorruptError{Kind: "sharded", Section: "frame", Offset: read,
				Reason: fmt.Sprintf("truncated length of shard %d", i), Err: err}
		}
		fileCRC = crc32.Update(fileCRC, castagnoli, lenBuf[:])
		frameLen := binary.LittleEndian.Uint64(lenBuf[:])
		if frameLen > maxShardFrame {
			return nil, &core.CorruptError{Kind: "sharded", Section: "frame", Offset: read,
				Reason: fmt.Sprintf("shard %d frame length %d exceeds limit", i, frameLen)}
		}
		frame, got, err := readFrame(r, frameLen)
		read += got
		if err != nil {
			return nil, &core.CorruptError{Kind: "sharded", Section: "frame", Offset: read,
				Reason: fmt.Sprintf("truncated frame of shard %d", i), Err: err}
		}
		fileCRC = crc32.Update(fileCRC, castagnoli, frame)
		tab, err := loadInner(kind, frame)
		if err != nil {
			frameErr = err
			return nil, err
		}
		return tab, nil
	})
	if err != nil {
		// Surface the core loader's CorruptError untouched when there is
		// one (New wraps build errors).
		if frameErr != nil {
			return nil, read, frameErr
		}
		var ce *core.CorruptError
		if errors.As(err, &ce) {
			return nil, read, ce
		}
		return corrupt("frame", read, "rebuilding shards", err)
	}

	var crcBuf [4]byte
	n, err = io.ReadFull(r, crcBuf[:])
	read += int64(n)
	if err != nil {
		return corrupt("trailer", read, "truncated trailer", err)
	}
	if stored := binary.LittleEndian.Uint32(crcBuf[:]); stored != fileCRC {
		return corrupt("trailer", read, fmt.Sprintf("file checksum mismatch (stored %#08x, computed %#08x)", stored, fileCRC), nil)
	}
	return s, read, nil
}

// loadInner parses one shard frame with the loader matching the header's
// inner kind. A frame length inconsistent with its snapshot cannot slip
// through: the length bytes are covered by the file trailer CRC, and any
// mis-framing they cause lands the core loader (or a later frame, or the
// trailer comparison) on bytes whose checksums cannot match.
func loadInner(kind uint8, frame []byte) (Inner, error) {
	if kind == innerBlocked {
		tab, err := core.LoadBlocked(bytes.NewReader(frame))
		if err != nil {
			return nil, err
		}
		return tab, nil
	}
	tab, err := core.Load(bytes.NewReader(frame))
	if err != nil {
		return nil, err
	}
	return tab, nil
}

// innerKind classifies the shard tables for the snapshot header.
func (s *Sharded) innerKind() (uint8, error) {
	switch s.shards[0].tab.(type) { //mcvet:allow lockdiscipline tab's type identity is write-once at construction; only its state needs mu
	case *core.Table:
		return innerSingle, nil
	case *core.BlockedTable:
		return innerBlocked, nil
	default:
		//mcvet:allow lockdiscipline tab's type identity is write-once at construction; only its state needs mu
		return 0, fmt.Errorf("shard: snapshotting unsupported inner table type %T", s.shards[0].tab)
	}
}

func writeCounted(w io.Writer, b []byte) (int64, error) {
	n, err := w.Write(b)
	return int64(n), err
}

// readFrame reads exactly want bytes, growing the buffer in bounded chunks
// so a corrupted length field fails at EOF after reading what is actually
// there instead of allocating the claimed size up front.
func readFrame(r io.Reader, want uint64) ([]byte, int64, error) {
	const chunk = 1 << 20
	buf := make([]byte, 0, min(want, chunk))
	var got int64
	for uint64(len(buf)) < want {
		n := min(want-uint64(len(buf)), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, n)...)
		m, err := io.ReadFull(r, buf[start:])
		got += int64(m)
		if err != nil {
			return buf[:start+m], got, err
		}
	}
	return buf, got, nil
}
