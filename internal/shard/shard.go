// Package shard provides an N-way hash-partitioned concurrent McCuckoo
// table. The single global reader/writer lock of core.Concurrent serializes
// every insertion against all traffic; partitioning the key space over N
// independent sub-tables, each behind its own sync.RWMutex, multiplies
// writer throughput by the shard count while keeping each shard's critical
// sections exactly as short as McCuckoo's counter-guided kick paths make
// them (the combination Kuszmaul's concurrent kick-out schemes argue for).
//
// Shard routing uses the top bits of a dedicated splitmix64 finalizer over
// the key, salted per table. The in-shard candidate buckets come from BOB
// hash with per-shard seeds, a different hash family entirely, so the shard
// choice never correlates with the d candidate buckets inside a shard and
// per-shard load stays binomially balanced.
package shard

import (
	"fmt"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"mccuckoo/internal/core"
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/memmodel"
	"mccuckoo/internal/telemetry"
)

// Inner is the table one shard wraps: a single-writer table exposing the
// pure read-only lookup path (so readers can run under the shard's read
// lock), its traced variant and the observability gauges (so telemetry can
// be fed from inside the critical sections), exactly-once iteration,
// capacity growth, derived-state repair, and snapshot serialization. Both
// core.Table and core.BlockedTable satisfy it.
type Inner interface {
	kv.Table
	LookupReadOnly(key uint64) (uint64, bool)
	LookupReadOnlyTraced(key uint64) (value uint64, ok bool, offReads int64)
	CopyHistogram() []int
	StashFlags() (set, total int)
	Range(fn func(key, value uint64) bool)
	Grow(growFactor float64) error
	Repair() core.RepairReport
	io.WriterTo
}

// MaxShards bounds the shard count; beyond this the per-shard fixed
// overhead (locks, stashes, hash families) dominates any contention win.
const MaxShards = 1 << 16

// state is one shard: an inner table, its lock, and its contention
// counters. The trailing padding keeps neighbouring shards' locks on
// separate cache lines so lock traffic on one shard does not false-share
// with its neighbours.
type state struct {
	mu sync.RWMutex
	// tab is installed once by New and never reassigned; every call into it
	// must hold mu (read lock suffices for the pure read-only lookup path).
	//
	//mcvet:guardedby mu
	tab Inner

	// Read-path counters, updated atomically so readers need no extra
	// synchronization. The single-op mutation path needs no counters at
	// all: every Insert/Delete call bumps the inner table's stats exactly
	// once, so its write-lock acquisitions are derivable (see ShardStats).
	// Keeping the hot paths down to the same one-or-two atomics the
	// global-lock wrapper pays is what lets sharding win even when lock
	// contention is absent.
	singleLookups atomic.Int64 // per-op Lookup calls; each is one read-lock acquisition
	hits          atomic.Int64 // read-path hits, single and batched

	// Batch-path bookkeeping (off the per-key hot path: one update per
	// touched shard per batch).
	batchLookups   atomic.Int64 // keys answered through LookupBatch
	batchReadAcqs  atomic.Int64 // read-lock acquisitions by LookupBatch
	batchWriteOps  atomic.Int64 // keys mutated through InsertBatch/DeleteBatch
	batchWriteAcqs atomic.Int64 // write-lock acquisitions by InsertBatch/DeleteBatch

	_ [40]byte
}

// Sharded is the partitioned table. All methods are safe for concurrent
// use by any number of goroutines.
type Sharded struct {
	shift  uint   // 64 - log2(len(shards)); top bits of the route hash
	salt   uint64 // routing salt, derived from the seed
	seed   uint64 // the seed New was given, recorded for snapshots
	shards []state

	// agg backs Meter(): the element-wise sum of the shard meters,
	// refreshed on each call.
	agg memmodel.Meter

	// scratchPool recycles the int32 working buffers of the batched
	// operations (see groupByShard) so steady-state batching allocates
	// nothing.
	scratchPool sync.Pool

	// sink, when non-nil, receives one telemetry event per operation. The
	// nil check is the whole disabled path: no timing, no meter snapshots,
	// no allocation (see BenchmarkTelemetryDisabled*).
	sink *telemetry.Sink
}

// New builds a table of `shards` partitions (a power of two), each wrapping
// the table returned by build. The seed salts the shard routing hash; build
// receives the shard index so it can derive independent per-shard seeds.
func New(shards int, seed uint64, build func(shard int) (Inner, error)) (*Sharded, error) {
	if shards < 1 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("shard: shard count must be a power of two >= 1, got %d", shards)
	}
	if shards > MaxShards {
		return nil, fmt.Errorf("shard: shard count %d exceeds limit %d", shards, MaxShards)
	}
	s := &Sharded{
		shift:  uint(64 - bits.TrailingZeros(uint(shards))),
		salt:   hashutil.Mix64(seed ^ 0x5ca1ab1e_0ddba11),
		seed:   seed,
		shards: make([]state, shards),
	}
	for i := range s.shards {
		tab, err := build(i)
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
		}
		if tab == nil {
			return nil, fmt.Errorf("shard: build returned nil table for shard %d", i)
		}
		s.shards[i].tab = tab //mcvet:allow lockdiscipline construction precedes publication; no reader can hold a shard lock yet
	}
	return s, nil
}

// NumShards returns the partition count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// shardIndex routes a key to its shard: the top bits of a salted splitmix64
// finalizer. For a single shard the shift is 64 and the index is always 0
// (Go defines over-wide unsigned shifts as zero).
//
//mcvet:hotpath
func (s *Sharded) shardIndex(key uint64) int {
	return int(hashutil.Mix64(key^s.salt) >> s.shift)
}

// shardFor returns the shard owning key.
//
//mcvet:hotpath
func (s *Sharded) shardFor(key uint64) *state {
	return &s.shards[s.shardIndex(key)]
}

// AttachTelemetry wires a sink into every operation path and must be called
// before the table sees concurrent traffic (the field write is unsynchronized
// by design, to keep the per-op check a plain load). A nil sink detaches.
func (s *Sharded) AttachTelemetry(sink *telemetry.Sink) { s.sink = sink }

// offTotal reads the inner table's accumulated off-chip accesses. Callers
// must hold the shard's write lock (the meter is not atomic).
//
//mcvet:hotpath
func offTotal(m *memmodel.Meter) int64 { return m.OffChipReads + m.OffChipWrites }

// Insert stores key/value under the owning shard's write lock.
//
//mcvet:hotpath
func (s *Sharded) Insert(key, value uint64) kv.Outcome {
	si := s.shardIndex(key)
	sh := &s.shards[si]
	if s.sink == nil {
		sh.mu.Lock()
		out := sh.tab.Insert(key, value)
		sh.mu.Unlock()
		return out
	}
	start := time.Now()
	sh.mu.Lock()
	m := sh.tab.Meter()
	before := offTotal(m)
	out := sh.tab.Insert(key, value)
	off := offTotal(m) - before
	sh.mu.Unlock()
	s.sink.Record(telemetry.Event{
		Op: telemetry.OpInsert, Status: uint8(out.Status), Shard: int32(si),
		Kicks: int32(out.Kicks), OffChip: off, Nanos: int64(time.Since(start)),
		KeyHash: hashutil.Mix64(key),
	})
	return out
}

// Lookup runs under the owning shard's read lock via the pure read-only
// path; lookups on different shards never contend, and lookups on the same
// shard share the lock.
//
//mcvet:hotpath
func (s *Sharded) Lookup(key uint64) (uint64, bool) {
	si := s.shardIndex(key)
	sh := &s.shards[si]
	if s.sink == nil {
		sh.singleLookups.Add(1)
		sh.mu.RLock()
		v, ok := sh.tab.LookupReadOnly(key)
		sh.mu.RUnlock()
		if ok {
			sh.hits.Add(1)
		}
		return v, ok
	}
	start := time.Now()
	sh.singleLookups.Add(1)
	sh.mu.RLock()
	v, ok, off := sh.tab.LookupReadOnlyTraced(key)
	sh.mu.RUnlock()
	if ok {
		sh.hits.Add(1)
	}
	s.sink.Record(telemetry.Event{
		Op: telemetry.OpLookup, Hit: ok, Shard: int32(si),
		OffChip: off, Nanos: int64(time.Since(start)),
		KeyHash: hashutil.Mix64(key),
	})
	return v, ok
}

// Delete removes key under the owning shard's write lock.
//
//mcvet:hotpath
func (s *Sharded) Delete(key uint64) bool {
	si := s.shardIndex(key)
	sh := &s.shards[si]
	if s.sink == nil {
		sh.mu.Lock()
		ok := sh.tab.Delete(key)
		sh.mu.Unlock()
		return ok
	}
	start := time.Now()
	sh.mu.Lock()
	m := sh.tab.Meter()
	before := offTotal(m)
	ok := sh.tab.Delete(key)
	off := offTotal(m) - before
	sh.mu.Unlock()
	s.sink.Record(telemetry.Event{
		Op: telemetry.OpDelete, Hit: ok, Shard: int32(si),
		OffChip: off, Nanos: int64(time.Since(start)),
		KeyHash: hashutil.Mix64(key),
	})
	return ok
}

// Len returns the total number of live items across shards. Each shard is
// read under its lock; the sum is not a single atomic cross-shard snapshot.
func (s *Sharded) Len() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += sh.tab.Len()
		sh.mu.RUnlock()
	}
	return total
}

// Capacity returns the summed bucket capacity of all shards.
func (s *Sharded) Capacity() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += sh.tab.Capacity()
		sh.mu.RUnlock()
	}
	return total
}

// LoadRatio returns Len()/Capacity() across all shards.
func (s *Sharded) LoadRatio() float64 {
	c := s.Capacity()
	if c == 0 {
		return 0
	}
	return float64(s.Len()) / float64(c)
}

// StashLen returns the summed stash population of all shards.
func (s *Sharded) StashLen() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += sh.tab.StashLen()
		sh.mu.RUnlock()
	}
	return total
}

// Stats merges the writer-side stats of every shard with the atomically
// counted concurrent lookups (the read path goes through LookupReadOnly,
// which by design charges no inner stats).
func (s *Sharded) Stats() kv.Stats {
	var total kv.Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		st := sh.tab.Stats()
		sh.mu.RUnlock()
		total.Inserts += st.Inserts
		total.Updates += st.Updates
		total.Kicks += st.Kicks
		total.Stashed += st.Stashed
		total.Failures += st.Failures
		total.Lookups += st.Lookups
		total.Hits += st.Hits
		total.Deletes += st.Deletes
		total.StashProbe += st.StashProbe
		total.GrowAttempts += st.GrowAttempts
		total.Grows += st.Grows
		total.GrowFailures += st.GrowFailures
		total.Lookups += sh.singleLookups.Load() + sh.batchLookups.Load()
		total.Hits += sh.hits.Load()
	}
	return total
}

// Grow grows every shard by growFactor, each under its own write lock.
// Shards grow independently — a failure in one shard stops the sweep and is
// returned, with earlier shards already grown (each shard is individually
// consistent throughout).
func (s *Sharded) Grow(growFactor float64) error {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		err := sh.tab.Grow(growFactor)
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard: growing shard %d: %w", i, err)
		}
	}
	return nil
}

// Repair runs core repair on every shard under its write lock and returns
// the merged report. Shards are repaired one at a time; the table stays
// serving on all other shards throughout. The merged report is recorded to
// the attached telemetry sink, if any.
func (s *Sharded) Repair() core.RepairReport {
	var rep core.RepairReport
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		r := sh.tab.Repair()
		sh.mu.Unlock()
		rep = rep.Merge(r)
	}
	s.sink.RecordRepair(rep)
	return rep
}

// CopyHistogram returns the merged redundancy distribution: how many live
// items across all shards currently have 1, 2, ..., d copies (index 0
// unused). Each shard is read under its read lock; the merge is not an
// atomic cross-shard snapshot. The slice length follows the largest
// per-shard histogram (d+1 for homogeneous shards).
func (s *Sharded) CopyHistogram() []int {
	var out []int
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		h := sh.tab.CopyHistogram()
		sh.mu.RUnlock()
		if len(h) > len(out) {
			grown := make([]int, len(h))
			copy(grown, out)
			out = grown
		}
		for v, n := range h {
			out[v] += n
		}
	}
	return out
}

// StashFlags returns the summed set and total stash-flag bits across all
// shards.
func (s *Sharded) StashFlags() (set, total int) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		fs, ft := sh.tab.StashFlags()
		sh.mu.RUnlock()
		set += fs
		total += ft
	}
	return set, total
}

// StashFlagDensity returns the aggregate fraction of buckets with the stash
// flag set, weighting every shard by its true flag count.
func (s *Sharded) StashFlagDensity() float64 {
	set, total := s.StashFlags()
	if total == 0 {
		return 0
	}
	return float64(set) / float64(total)
}

// Gauges assembles the telemetry gauge snapshot: aggregate population and
// load, stash state, the copy-count distribution, the shard-balance extremes,
// and the merged lifetime stats, with the full per-shard breakdown as
// Detail. It is safe for concurrent use (everything is read under the shard
// locks) and is what NewSharded registers as the sink's live gauge source.
func (s *Sharded) Gauges() telemetry.Gauges {
	st := s.ShardStats()
	hist := s.CopyHistogram()
	copyHist := make([]int64, len(hist))
	for v, n := range hist {
		copyHist[v] = int64(n)
	}
	return telemetry.Gauges{
		Items:            st.Items,
		Capacity:         st.Capacity,
		LoadRatio:        st.LoadRatio,
		StashLen:         st.StashLen,
		StashFlagDensity: s.StashFlagDensity(),
		CopyHist:         copyHist,
		Shards:           len(s.shards),
		MinShardLoad:     st.MinLoad,
		MaxShardLoad:     st.MaxLoad,
		Ops:              s.Stats(),
		Detail:           st,
	}
}

// Meter returns the element-wise sum of all shard meters, refreshed at call
// time. Quiesce writers (or accept a racy snapshot) before reading it; the
// returned pointer stays valid and is overwritten by the next call.
func (s *Sharded) Meter() *memmodel.Meter {
	var sum memmodel.Meter
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		sum = sum.Add(sh.tab.Meter().Snapshot())
		sh.mu.RUnlock()
	}
	s.agg = sum
	return &s.agg
}

// Range calls fn for every distinct live item until fn returns false. Each
// shard is iterated under its read lock, so the view of every individual
// shard is consistent; the iteration is not an atomic snapshot across
// shards (items moving between calls may be seen in neither or both shards'
// windows — within one shard, exactly-once reporting holds).
func (s *Sharded) Range(fn func(key, value uint64) bool) {
	stopped := false
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		sh.tab.Range(func(k, v uint64) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		sh.mu.RUnlock()
		if stopped {
			return
		}
	}
}

var _ kv.Table = (*Sharded)(nil)
