package shard

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mccuckoo/internal/core"
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
)

func fillSharded(t *testing.T, s *Sharded, seed uint64, n int) map[uint64]uint64 {
	t.Helper()
	expect := make(map[uint64]uint64, n)
	k := seed | 1
	for i := 0; i < n; i++ {
		k = k*6364136223846793005 + 1442695040888963407
		key := k | 1
		if s.Insert(key, key^0x77).Status != kv.Failed {
			expect[key] = key ^ 0x77
		}
	}
	return expect
}

func TestShardedSnapshotRoundTrip(t *testing.T) {
	s := newSharded(t, 8, 32, 7)
	expect := fillSharded(t, s, 8, 500)
	for k := range expect {
		s.Delete(k)
		delete(expect, k)
		break // one deletion, to cover deletedAny in the frames
	}
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.NumShards() != s.NumShards() || got.Len() != s.Len() {
		t.Fatalf("shape differs: shards %d/%d len %d/%d",
			got.NumShards(), s.NumShards(), got.Len(), s.Len())
	}
	for k, v := range expect {
		if gv, ok := got.Lookup(k); !ok || gv != v {
			t.Fatalf("key %#x = (%d,%v) after round trip", k, gv, ok)
		}
	}
	// Routing must be identical: inserts on the restored table land on the
	// same shards, so cross-checking per-shard item counts is exact.
	a, b := s.ShardStats(), got.ShardStats()
	for i := range a.Shards {
		if a.Shards[i].Items != b.Shards[i].Items {
			t.Fatalf("shard %d items differ: %d vs %d", i, a.Shards[i].Items, b.Shards[i].Items)
		}
	}
}

func TestShardedSnapshotBlockedInner(t *testing.T) {
	s, err := New(4, 9, func(i int) (Inner, error) {
		return core.NewBlocked(core.Config{
			BucketsPerTable: 8,
			Seed:            hashutil.Mix64(9 + uint64(i)*0x9e3779b97f4a7c15),
			StashEnabled:    true,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	expect := fillSharded(t, s, 10, 200)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for k, v := range expect {
		if gv, ok := got.Lookup(k); !ok || gv != v {
			t.Fatalf("key %#x = (%d,%v) after blocked round trip", k, gv, ok)
		}
	}
}

func TestShardedSaveLoadFile(t *testing.T) {
	s := newSharded(t, 4, 16, 11)
	expect := fillSharded(t, s, 12, 150)
	path := filepath.Join(t.TempDir(), "sharded.snap")
	if err := s.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	for k, v := range expect {
		if gv, ok := got.Lookup(k); !ok || gv != v {
			t.Fatalf("key %#x lost across file round trip", k)
		}
	}
	// Trailing bytes are rejected.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1, 2, 3})
	f.Close()
	_, err = LoadFile(path)
	var ce *core.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("trailing bytes not rejected with CorruptError: %v", err)
	}
}

func TestShardedLoadRejectsBadHeader(t *testing.T) {
	s := newSharded(t, 2, 8, 13)
	fillSharded(t, s, 14, 30)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, off := range []int{0, 4, 5, 9, 17} { // magic, version, count, seed, kind
		bad := append([]byte{}, raw...)
		bad[off] ^= 0xff
		if _, err := Load(bytes.NewReader(bad)); err == nil {
			t.Errorf("header corruption at %d accepted", off)
		}
	}
	if _, err := Load(bytes.NewReader(raw[:10])); err == nil {
		t.Error("truncated header accepted")
	}
}

// Grow on a sharded table with stash pressure: capacity multiplies, stashes
// drain, every key survives.
func TestShardedGrowWithStash(t *testing.T) {
	s := newSharded(t, 4, 8, 15)
	expect := fillSharded(t, s, 16, s.Capacity()+s.Capacity()/4)
	if s.StashLen() == 0 {
		t.Fatal("test needs stash pressure")
	}
	before := s.Capacity()
	if err := s.Grow(2.0); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if s.Capacity() < 2*before {
		t.Fatalf("capacity %d after 2x grow of %d", s.Capacity(), before)
	}
	if s.StashLen() != 0 {
		t.Fatalf("stash not drained: %d", s.StashLen())
	}
	for k, v := range expect {
		if gv, ok := s.Lookup(k); !ok || gv != v {
			t.Fatalf("key %#x = (%d,%v) after grow", k, gv, ok)
		}
	}
}

// Repair on a healthy sharded table is a no-op. The corruption-healing
// behaviour itself is exercised per table kind in core and faultinject; here
// the point is that the per-shard reports merge into a sane aggregate.
func TestShardedRepairHealthyNoOp(t *testing.T) {
	s := newSharded(t, 4, 16, 17)
	expect := fillSharded(t, s, 18, 200)
	rep := s.Repair()
	if rep.Any() {
		t.Fatalf("repair of healthy sharded table reported changes: %v", rep)
	}
	if rep.SizeBefore != s.Len()-s.StashLen() {
		t.Fatalf("merged SizeBefore %d, want %d", rep.SizeBefore, s.Len()-s.StashLen())
	}
	for k, v := range expect {
		if gv, ok := s.Lookup(k); !ok || gv != v {
			t.Fatalf("key %#x damaged by repair", k)
		}
	}
}
