package shard

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/telemetry"
)

// TestTelemetryConcurrentScrape hammers an instrumented sharded table with
// mixed single and batched traffic while goroutines scrape every HTTP
// endpoint and read ShardStats. Run under -race (ci.sh does), this is the
// proof that the record path, the live gauge source, and the flight
// recorder are data-race-free against real traffic.
func TestTelemetryConcurrentScrape(t *testing.T) {
	s := newSharded(t, 8, 256, 21)
	sink := telemetry.New(telemetry.Options{EventBuffer: 256})
	s.AttachTelemetry(sink)
	sink.SetGaugeSource(s.Gauges)

	srv := httptest.NewServer(sink.Handler())
	defer srv.Close()

	const (
		writers  = 4
		readers  = 4
		scrapers = 2
		opsEach  = 3000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(1000 + w)
			batchK := make([]uint64, 0, 32)
			batchV := make([]uint64, 0, 32)
			for i := 0; i < opsEach; i++ {
				r := hashutil.SplitMix64(&rng)
				key := r % 4000
				switch r >> 62 {
				case 0:
					s.Insert(key, r)
				case 1:
					s.Delete(key)
				default:
					batchK = append(batchK, key)
					batchV = append(batchV, r)
					if len(batchK) == 32 {
						s.InsertBatchInto(batchK, batchV, nil)
						batchK, batchV = batchK[:0], batchV[:0]
					}
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			rng := uint64(7777 + rd)
			keys := make([]uint64, 16)
			for i := 0; i < opsEach; i++ {
				r := hashutil.SplitMix64(&rng)
				if r&1 == 0 {
					s.Lookup(r % 5000)
				} else {
					for j := range keys {
						keys[j] = (r + uint64(j)) % 5000
					}
					s.LookupBatch(keys)
				}
			}
		}(rd)
	}
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for sc := 0; sc < scrapers; sc++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			paths := []string{"/metrics", "/debug/mccuckoo/stats", "/debug/mccuckoo/events"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + paths[i%len(paths)])
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				s.ShardStats()
				s.Gauges()
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	snap := sink.Snapshot()
	if snap.Counters.Inserts == 0 || snap.Counters.Lookups == 0 {
		t.Fatalf("no traffic recorded: %+v", snap.Counters)
	}
	if got := snap.Gauges.Shards; got != 8 {
		t.Fatalf("gauges report %d shards", got)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"mccuckoo_ops_total", "mccuckoo_offchip_accesses_per_lookup",
		"mccuckoo_copy_count_items", "mccuckoo_shard_load_min",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("final scrape missing %q", want)
		}
	}
	// Events must unpack to valid shard indexes.
	for _, e := range sink.Events() {
		if e.Shard < 0 || e.Shard >= 8 {
			t.Fatalf("event with shard %d out of range", e.Shard)
		}
	}
}

// TestShardStatsEmpty pins the documented zero contract: an idle table
// reports MinLoad and MaxLoad of exactly 0, never negative or NaN.
func TestShardStatsEmpty(t *testing.T) {
	s := newSharded(t, 4, 64, 3)
	st := s.ShardStats()
	if st.MinLoad != 0 || st.MaxLoad != 0 {
		t.Fatalf("empty table: MinLoad %v MaxLoad %v, want exactly 0/0", st.MinLoad, st.MaxLoad)
	}
	if st.Items != 0 || st.LoadRatio != 0 {
		t.Fatalf("empty table stats: %+v", st)
	}
	for _, sh := range st.Shards {
		if sh.StashFlagDensity != 0 {
			t.Fatalf("empty shard %d has flag density %v", sh.Shard, sh.StashFlagDensity)
		}
	}
}

// TestShardStashFlagDensity overfills a tiny table so some shards stash, and
// checks the per-shard flag density is populated and consistent with the
// stash population.
func TestShardStashFlagDensity(t *testing.T) {
	s := newSharded(t, 2, 16, 9) // 2 shards × 3 tables × 16 buckets = 96 slots
	for k := uint64(1); k <= 90; k++ {
		s.Insert(k, k)
	}
	if s.StashLen() == 0 {
		t.Fatal("table not overfilled enough to stash")
	}
	if got := s.StashFlagDensity(); got <= 0 || got > 1 {
		t.Fatalf("aggregate flag density %v out of (0,1]", got)
	}
	st := s.ShardStats()
	sawFlags := false
	for _, sh := range st.Shards {
		if sh.StashFlagDensity < 0 || sh.StashFlagDensity > 1 {
			t.Fatalf("shard %d density %v out of [0,1]", sh.Shard, sh.StashFlagDensity)
		}
		if sh.StashLen > 0 && sh.StashFlagDensity == 0 {
			t.Fatalf("shard %d stashes %d items but reports zero flag density", sh.Shard, sh.StashLen)
		}
		if sh.StashFlagDensity > 0 {
			sawFlags = true
		}
	}
	if !sawFlags {
		t.Fatal("no shard reports stash flags despite stashed items")
	}
}

// TestCopyHistogramMerged checks the cross-shard merge of the redundancy
// distribution against per-item ground truth.
func TestCopyHistogramMerged(t *testing.T) {
	s := newSharded(t, 4, 128, 5)
	const n = 600
	for k := uint64(1); k <= n; k++ {
		s.Insert(k, k)
	}
	hist := s.CopyHistogram()
	total := 0
	for v := 1; v < len(hist); v++ {
		total += hist[v]
	}
	if want := s.Len() - s.StashLen(); total != want {
		t.Fatalf("copy histogram sums to %d items, want %d (main-table items)", total, want)
	}
}
