package shard

import "mccuckoo/internal/kv"

// ShardStat is the observability snapshot of one shard: its population and
// load, its stash depth and flag density, the writer-side operation counts
// (including the kick-path work its inserts performed), the concurrent
// read-path counts, and how many times each side of its lock was acquired.
// The JSON field names are the stable wire contract of the
// /debug/mccuckoo/stats endpoint.
type ShardStat struct {
	Shard     int     `json:"shard"`
	Items     int     `json:"items"`
	Capacity  int     `json:"capacity"`
	LoadRatio float64 `json:"load_ratio"`
	StashLen  int     `json:"stash_len"`

	// StashFlagDensity is the fraction of this shard's buckets whose stash
	// flag is set (see core.StashFlagDensity, the single source of truth the
	// telemetry gauge aggregates).
	StashFlagDensity float64 `json:"stash_flag_density"`

	// Ops are the inner table's lifetime counts (writer side). Ops.Kicks
	// is the shard's total kick-path length — the quantity per-shard
	// locking keeps short and local.
	Ops kv.Stats `json:"ops"`

	// Lookups/Hits count the concurrent read path (LookupReadOnly runs
	// stat-free inside the table, so the shard counts it here).
	Lookups int64 `json:"lookups"`
	Hits    int64 `json:"hits"`

	// ReadLocks/WriteLocks count operation-path lock acquisitions; a
	// batch op counts one acquisition per touched shard. Write-lock
	// acquisitions are derived (every Insert/Delete call charges the inner
	// stats exactly once) rather than counted on the hot path.
	ReadLocks  int64 `json:"read_locks"`
	WriteLocks int64 `json:"write_locks"`
}

// ShardStats aggregates the per-shard snapshots. MinLoad/MaxLoad expose the
// routing balance: with the salted finalizer routing, per-shard loads stay
// within binomial noise of each other. When every shard is empty (or the
// shard set itself is empty), MinLoad and MaxLoad are both exactly 0 — they
// never go negative or NaN — so dashboards can treat 0/0 as "idle table"
// without special-casing.
type ShardStats struct {
	Shards []ShardStat `json:"shards,omitempty"`

	Items     int     `json:"items"`
	Capacity  int     `json:"capacity"`
	LoadRatio float64 `json:"load_ratio"`
	MinLoad   float64 `json:"min_load"`
	MaxLoad   float64 `json:"max_load"`
	StashLen  int     `json:"stash_len"`

	Kicks      int64 `json:"kicks"`
	Lookups    int64 `json:"lookups"`
	Hits       int64 `json:"hits"`
	ReadLocks  int64 `json:"read_locks"`
	WriteLocks int64 `json:"write_locks"`
}

// ShardStats captures a per-shard statistics snapshot. Each shard is read
// under its lock; the snapshot is consistent per shard, not atomically
// consistent across shards.
func (s *Sharded) ShardStats() ShardStats {
	out := ShardStats{Shards: make([]ShardStat, len(s.shards))}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		set, totalFlags := sh.tab.StashFlags()
		st := ShardStat{
			Shard:     i,
			Items:     sh.tab.Len(),
			Capacity:  sh.tab.Capacity(),
			LoadRatio: sh.tab.LoadRatio(),
			StashLen:  sh.tab.StashLen(),
			Ops:       sh.tab.Stats(),
		}
		sh.mu.RUnlock()
		if totalFlags > 0 {
			st.StashFlagDensity = float64(set) / float64(totalFlags)
		}
		singles := sh.singleLookups.Load()
		st.Lookups = singles + sh.batchLookups.Load()
		st.Hits = sh.hits.Load()
		st.ReadLocks = singles + sh.batchReadAcqs.Load()
		// Every single-op Insert/Delete call takes the write lock once and
		// charges the inner stats once; batch calls charge the inner stats
		// per key but the lock once per touched shard.
		st.WriteLocks = st.Ops.Inserts + st.Ops.Deletes - sh.batchWriteOps.Load() + sh.batchWriteAcqs.Load()
		out.Shards[i] = st

		out.Items += st.Items
		out.Capacity += st.Capacity
		out.StashLen += st.StashLen
		out.Kicks += st.Ops.Kicks
		out.Lookups += st.Ops.Lookups + st.Lookups
		out.Hits += st.Ops.Hits + st.Hits
		out.ReadLocks += st.ReadLocks
		out.WriteLocks += st.WriteLocks
		if i == 0 || st.LoadRatio < out.MinLoad {
			out.MinLoad = st.LoadRatio
		}
		if i == 0 || st.LoadRatio > out.MaxLoad {
			out.MaxLoad = st.LoadRatio
		}
	}
	if out.Capacity > 0 {
		out.LoadRatio = float64(out.Items) / float64(out.Capacity)
	}
	return out
}
