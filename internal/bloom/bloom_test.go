package bloom

import (
	"testing"

	"mccuckoo/internal/hashutil"
)

func TestValidation(t *testing.T) {
	if _, err := NewCounting(0, 3, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewCounting(100, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewCounting(100, 17, 1); err == nil {
		t.Error("k=17 accepted")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	f, err := NewCounting(1<<14, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := hashutil.Mix64(9)
	keys := make([]uint64, 2000)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&s)
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for %#x", k)
		}
	}
	if f.Len() != 2000 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestFalsePositiveRate(t *testing.T) {
	// m/n = 8 cells per key, k = 3: classic CBF operating point, expect
	// a low single-digit-percent false positive rate.
	f, err := NewCounting(16000, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	s := hashutil.Mix64(13)
	inserted := make([]uint64, 2000)
	for i := range inserted {
		inserted[i] = hashutil.SplitMix64(&s)
		f.Add(inserted[i])
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.MayContain(hashutil.SplitMix64(&s)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.10 {
		t.Errorf("false positive rate %.3f too high", rate)
	}
	if rate == 0 {
		t.Error("zero false positives over 20k probes is implausible")
	}
}

func TestRemoveRestoresNegatives(t *testing.T) {
	f, err := NewCounting(1<<12, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	s := hashutil.Mix64(19)
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&s)
		f.Add(keys[i])
	}
	for _, k := range keys {
		f.Remove(k)
	}
	if f.Len() != 0 {
		t.Fatalf("Len = %d after removing all", f.Len())
	}
	// With all keys removed and no saturation at this density, most
	// removed keys should now test negative.
	neg := 0
	for _, k := range keys {
		if !f.MayContain(k) {
			neg++
		}
	}
	if neg < len(keys)/2 {
		t.Errorf("only %d/%d removed keys test negative", neg, len(keys))
	}
}

func TestInterleavedMembership(t *testing.T) {
	// Keys still present must never test negative, regardless of other
	// keys being added and removed around them.
	f, err := NewCounting(1<<13, 4, 23)
	if err != nil {
		t.Fatal(err)
	}
	s := hashutil.Mix64(29)
	live := map[uint64]bool{}
	var order []uint64
	for i := 0; i < 5000; i++ {
		r := hashutil.SplitMix64(&s)
		if r%3 == 0 && len(order) > 0 {
			k := order[0]
			order = order[1:]
			if live[k] {
				f.Remove(k)
				delete(live, k)
			}
		} else {
			k := r
			f.Add(k)
			live[k] = true
			order = append(order, k)
		}
		if i%500 == 0 {
			for k := range live {
				if !f.MayContain(k) {
					t.Fatalf("false negative for live key %#x at op %d", k, i)
				}
			}
		}
	}
}

func TestSaturationKeepsNoFalseNegatives(t *testing.T) {
	// Tiny filter hammered far past saturation: removal must not create
	// false negatives for keys still present.
	f, err := NewCounting(16, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	stay := uint64(0xabcdef)
	f.Add(stay)
	s := hashutil.Mix64(37)
	churn := make([]uint64, 500)
	for i := range churn {
		churn[i] = hashutil.SplitMix64(&s)
		f.Add(churn[i])
	}
	for _, k := range churn {
		f.Remove(k)
	}
	if !f.MayContain(stay) {
		t.Fatal("saturation churn produced a false negative")
	}
}

func TestSizeBytes(t *testing.T) {
	f, _ := NewCounting(1<<16, 3, 1)
	// 4-bit cells: 16 per word -> 4096 words -> 32 KiB.
	if got := f.SizeBytes(); got != 1<<15 {
		t.Fatalf("SizeBytes = %d, want %d", got, 1<<15)
	}
}
