// Package bloom implements a counting Bloom filter, the on-chip
// pre-screening structure of the DEHT/EMOMA family the paper compares its
// counter array against (§II.B): k hashed positions per key over an array
// of small saturating counters, supporting deletion.
//
// The filter exists here as the comparator for the paper's second
// contribution — the claim that McCuckoo's per-bucket counters filter
// negative lookups with *less* on-chip memory than Bloom-based helpers —
// quantified by the "ext-onchip" experiment.
package bloom

import (
	"fmt"

	"mccuckoo/internal/bitpack"
	"mccuckoo/internal/hashutil"
)

// counterBits is the width of each cell; 4 bits is the classic counting
// Bloom filter choice.
const counterBits = 4

// Counting is a counting Bloom filter over 64-bit keys. Cells saturate at
// 15 and are never decremented once saturated, which preserves the
// no-false-negative guarantee at the cost of permanently set cells (the
// standard CBF trade-off).
type Counting struct {
	cells *bitpack.Counters
	m     uint64
	k     int
	seeds []uint64
	n     int
}

// NewCounting creates a filter with m cells and k hash functions.
func NewCounting(m, k int, seed uint64) (*Counting, error) {
	if m <= 0 {
		return nil, fmt.Errorf("bloom: m must be positive, got %d", m)
	}
	if k < 1 || k > 16 {
		return nil, fmt.Errorf("bloom: k must be in [1,16], got %d", k)
	}
	cells, err := bitpack.NewCounters(m, counterBits)
	if err != nil {
		return nil, err
	}
	s := hashutil.Mix64(seed ^ 0xb100f11e)
	seeds := make([]uint64, k)
	for i := range seeds {
		seeds[i] = hashutil.SplitMix64(&s)
	}
	return &Counting{cells: cells, m: uint64(m), k: k, seeds: seeds}, nil
}

func (f *Counting) cell(key uint64, i int) int {
	return int(hashutil.BOB64Key(key, f.seeds[i]) % f.m)
}

// Add inserts key.
func (f *Counting) Add(key uint64) {
	for i := 0; i < f.k; i++ {
		c := f.cell(key, i)
		if v := f.cells.Get(c); v < f.cells.Max() {
			f.cells.Set(c, v+1)
		}
	}
	f.n++
}

// Remove deletes one occurrence of key. Saturated cells stay saturated.
func (f *Counting) Remove(key uint64) {
	for i := 0; i < f.k; i++ {
		c := f.cell(key, i)
		if v := f.cells.Get(c); v > 0 && v < f.cells.Max() {
			f.cells.Set(c, v-1)
		}
	}
	if f.n > 0 {
		f.n--
	}
}

// MayContain reports whether key could be present. False positives are
// possible; false negatives are not (assuming balanced Add/Remove calls).
func (f *Counting) MayContain(key uint64) bool {
	for i := 0; i < f.k; i++ {
		if f.cells.Get(f.cell(key, i)) == 0 {
			return false
		}
	}
	return true
}

// K returns the number of hash functions (the on-chip accesses per query).
func (f *Counting) K() int { return f.k }

// Len returns the number of keys currently accounted in the filter.
func (f *Counting) Len() int { return f.n }

// SizeBytes returns the on-chip footprint of the cell array.
func (f *Counting) SizeBytes() int { return f.cells.SizeBytes() }
