package netchaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes every byte back, optionally
// through the fault plane.
func echoServer(t *testing.T, n *Network, name string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wrapped net.Listener = ln
	if n != nil {
		wrapped = n.Listener(name, ln)
	}
	go func() {
		for {
			c, err := wrapped.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

func roundTrip(t *testing.T, c net.Conn, msg []byte) []byte {
	t.Helper()
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	return buf
}

func TestNetchaosCleanLinkPassesThrough(t *testing.T) {
	n := New(1)
	addr := echoServer(t, nil, "")
	c, err := n.Dialer("client")(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := roundTrip(t, c, []byte("hello")); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("echo = %q", got)
	}
	if st := n.Stats(); st != (Stats{}) {
		t.Fatalf("clean link injected faults: %+v", st)
	}
}

func TestNetchaosPartitionBlocksDialsAndResetsConns(t *testing.T) {
	n := New(2)
	addr := echoServer(t, nil, "")
	dial := n.Dialer("client")

	c, err := dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	roundTrip(t, c, []byte("pre"))

	n.Partition("client", addr)
	if _, err := dial(addr, time.Second); !errors.Is(err, ErrCut) {
		t.Fatalf("dial through partition: %v, want ErrCut", err)
	}
	// The established connection was reset, not left dangling.
	if _, err := c.Write([]byte("post")); !errors.Is(err, ErrReset) {
		t.Fatalf("write on reset conn: %v, want ErrReset", err)
	}

	n.Heal("client", addr)
	c2, err := dial(addr, time.Second)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	defer c2.Close()
	roundTrip(t, c2, []byte("healed"))

	st := n.Stats()
	if st.DialsBlocked == 0 || st.ConnsReset == 0 {
		t.Fatalf("stats after partition: %+v", st)
	}
}

func TestNetchaosAsymmetricPartition(t *testing.T) {
	n := New(3)
	addr := echoServer(t, nil, "")
	c, err := n.Dialer("client")(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	roundTrip(t, c, []byte("warm"))

	// Cut only client→server: the connection survives, reads of data the
	// server already sent still work, but new writes fail.
	n.PartitionOneWay("client", addr)
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrCut) {
		t.Fatalf("write on one-way cut: %v, want ErrCut", err)
	}
	// The reverse direction is untouched: heal the out direction, write,
	// then cut the in direction and watch the read fail instead.
	n.Heal("client", addr)
	if _, err := c.Write([]byte("y")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	n.PartitionOneWay(addr, "client")
	buf := make([]byte, 1)
	if _, err := c.Read(buf); !errors.Is(err, ErrCut) {
		t.Fatalf("read on inbound cut: %v, want ErrCut", err)
	}
	if st := n.Stats(); st.WritesCut == 0 || st.ReadsCut == 0 {
		t.Fatalf("stats after asymmetric cuts: %+v", st)
	}
}

func TestNetchaosLatencyAndJitterAreSeeded(t *testing.T) {
	// The jitter stream must be a pure function of the seed.
	a, b := New(42), New(42)
	p := Profile{Jitter: time.Hour}
	var da, db []time.Duration
	for i := 0; i < 16; i++ {
		da = append(da, a.delayFor(p))
		db = append(db, b.delayFor(p))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("jitter draw %d: %v != %v for equal seeds", i, da[i], db[i])
		}
	}
	if c := New(43).delayFor(p); c == da[0] {
		t.Log("different seed drew an equal first jitter (possible but unlikely)")
	}

	// And latency is actually injected on the wire.
	n := New(7)
	addr := echoServer(t, nil, "")
	const lat = 30 * time.Millisecond
	n.SetLink("client", addr, Profile{Latency: lat})
	c, err := n.Dialer("client")(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	roundTrip(t, c, []byte("slow"))
	if el := time.Since(start); el < lat {
		t.Fatalf("round trip took %v, want >= %v", el, lat)
	}
	if n.Stats().Delays == 0 {
		t.Fatal("no delays recorded")
	}
}

func TestNetchaosTrickleDeliversInChunks(t *testing.T) {
	n := New(9)
	addr := echoServer(t, nil, "")
	n.SetLink("client", addr, Profile{TrickleBytes: 3, TricklePause: time.Millisecond})
	c, err := n.Dialer("client")(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := bytes.Repeat([]byte("abc"), 10)
	if got := roundTrip(t, c, msg); !bytes.Equal(got, msg) {
		t.Fatalf("trickled echo mismatch: %q", got)
	}
	// 30 bytes at 3 per chunk = 10 chunks, 9 pauses.
	if st := n.Stats(); st.Delays < 9 {
		t.Fatalf("delays = %d, want >= 9 trickle pauses", st.Delays)
	}
}

func TestNetchaosDropAfterBytes(t *testing.T) {
	n := New(11)
	addr := echoServer(t, nil, "")
	n.SetLink("client", addr, Profile{DropAfterBytes: 8})
	c, err := n.Dialer("client")(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// First 8 bytes cross; the 9th kills the connection.
	if _, err := c.Write(bytes.Repeat([]byte{1}, 8)); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	if _, err := c.Write([]byte{2}); !errors.Is(err, ErrReset) {
		t.Fatalf("write past budget: %v, want ErrReset", err)
	}
	if _, err := c.Write([]byte{3}); !errors.Is(err, ErrReset) {
		t.Fatalf("write on dead conn: %v, want ErrReset", err)
	}
	if n.Stats().ConnsReset != 1 {
		t.Fatalf("ConnsReset = %d, want 1", n.Stats().ConnsReset)
	}
}

func TestNetchaosListenerWildcardRules(t *testing.T) {
	n := New(13)
	addr := echoServer(t, n, "server")
	c, err := n.Dialer("client")(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	roundTrip(t, c, []byte("ok"))

	// Cutting server→* silences the server's responses (the echo crosses
	// the server-side wrapper's write path, whose remote is the wildcard).
	n.SetLink("server", Wildcard, Profile{Cut: true})
	if _, err := c.Write([]byte("q")); err != nil {
		t.Fatalf("client write should still pass: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read should not deliver data across a cut server direction")
	}
	if n.Stats().WritesCut == 0 {
		t.Fatal("server-side write was not cut")
	}
}

func TestNetchaosSteeringAffectsEstablishedConns(t *testing.T) {
	n := New(17)
	addr := echoServer(t, nil, "")
	c, err := n.Dialer("client")(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	roundTrip(t, c, []byte("1"))
	n.SetLink("client", addr, Profile{Cut: true})
	if _, err := c.Write([]byte("2")); !errors.Is(err, ErrCut) {
		t.Fatalf("steered cut not applied to live conn: %v", err)
	}
	n.HealAll()
	roundTrip(t, c, []byte("3"))
}
