// Package netchaos deterministically injects network faults between named
// endpoints, the network-layer sibling of internal/faultinject: every fault
// decision — which links are cut, how much latency a write sees, when a
// connection is reset — is a pure function of the seed and the steering
// calls the test script makes, so a failing chaos drill reproduces from its
// seed and script alone.
//
// A Network models directed links between named endpoints. Client-side
// endpoints get a Dialer, which stamps every outbound connection with the
// (from, to) pair its faults are keyed by; server-side listeners can be
// wrapped with Listener, whose accepted connections match wildcard rules.
// Each direction of a link carries an independent Profile, so asymmetric
// partitions (A cannot reach B while B still reaches A) are first-class.
//
// The injectable faults are the cluster tier's failure model (DESIGN.md
// §12): full and asymmetric partitions, added latency with seeded jitter,
// byte-trickle slow links, immediate connection resets, and
// drop-after-N-bytes connection death. Profiles are steerable mid-test:
// every Read/Write consults the current profile under the Network's lock,
// so Partition/Heal/SetLink take effect on established connections, not
// just future dials.
//
// Determinism caveat: fault *decisions* (cut or not, reset threshold,
// jitter amounts in draw order) derive only from the seed and the script.
// When multiple connections draw jitter concurrently, the goroutine
// schedule decides which draw lands on which connection; everything else
// is schedule-independent.
package netchaos

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCut is the failure every operation on a cut link returns (wrapped in a
// *net.OpError, so net.Error handling sees a non-timeout network error).
var ErrCut = errors.New("netchaos: link cut")

// ErrReset is returned once a connection has been reset by fault injection
// (drop-after-N-bytes, an explicit ResetConns, or a full Partition).
var ErrReset = errors.New("netchaos: connection reset by fault injection")

// Wildcard matches any endpoint name in a link rule. Accepted (server-side)
// connections have an unknown remote identity and match only through it.
const Wildcard = "*"

// Profile is the fault behaviour of one link direction. The zero value is a
// clean link.
type Profile struct {
	// Cut blocks this direction: dials from the source fail immediately
	// and writes on established connections fail with ErrCut. The reverse
	// direction is unaffected — set both (or use Partition) for a full
	// partition.
	Cut bool

	// Latency is added before every write crosses the link; Jitter adds a
	// further seeded uniform [0, Jitter) on top. Reads of data flowing in
	// this direction are delayed the same way on the receiving side.
	Latency time.Duration
	Jitter  time.Duration

	// TrickleBytes, when positive, caps how many bytes one Write delivers
	// at a time; TricklePause is slept between chunks. Together they model
	// a slow or congested link without cutting it.
	TrickleBytes int
	TricklePause time.Duration

	// DropAfterBytes, when positive, resets the connection once this many
	// bytes have crossed in this direction — the classic mid-transfer
	// failure that leaves the peer with half a frame.
	DropAfterBytes int64
}

// clean reports whether the profile injects nothing.
func (p Profile) clean() bool { return p == Profile{} }

// link is a directed endpoint pair.
type link struct{ from, to string }

// Stats counts the faults a Network has injected, for test assertions and
// drill verdicts.
type Stats struct {
	DialsBlocked int64 // dials refused because the out direction was cut
	WritesCut    int64 // writes failed on a cut direction
	ReadsCut     int64 // reads failed on a cut direction
	ConnsReset   int64 // connections killed (drop-after, Partition, ResetConns)
	Delays       int64 // sleeps injected (latency, jitter, trickle pauses)
}

// Network is a deterministic fault plane over real connections. All methods
// are safe for concurrent use.
type Network struct {
	mu sync.Mutex
	//mcvet:guardedby mu
	rng uint64 // splitmix64 state, seeded
	//mcvet:guardedby mu
	links map[link]Profile
	//mcvet:guardedby mu
	conns map[*Conn]struct{}

	dialsBlocked atomic.Int64
	writesCut    atomic.Int64
	readsCut     atomic.Int64
	connsReset   atomic.Int64
	delays       atomic.Int64
}

// New returns a Network whose jitter stream is a pure function of seed.
func New(seed uint64) *Network {
	return &Network{
		rng:   seed ^ 0x9e3779b97f4a7c15,
		links: make(map[link]Profile),
		conns: make(map[*Conn]struct{}),
	}
}

// next advances the seeded splitmix64 stream. Callers hold mu.
//
//mcvet:locked
func (n *Network) next() uint64 {
	n.rng += 0x9e3779b97f4a7c15
	z := n.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SetLink installs the profile for one direction, replacing any previous
// rule. A zero Profile restores a clean direction.
func (n *Network) SetLink(from, to string, p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p.clean() {
		delete(n.links, link{from, to})
		return
	}
	n.links[link{from, to}] = p
}

// SetPair installs the profile on both directions between a and b.
func (n *Network) SetPair(a, b string, p Profile) {
	n.SetLink(a, b, p)
	n.SetLink(b, a, p)
}

// Partition cuts both directions between a and b and resets every
// established connection between them — the clean "cable pulled" fault.
func (n *Network) Partition(a, b string) {
	n.SetPair(a, b, Profile{Cut: true})
	n.ResetConns(a, b)
}

// PartitionOneWay cuts only the from→to direction: from can no longer send
// (or dial), while traffic to it still flows. Established connections stay
// up; their writes from the cut side fail.
func (n *Network) PartitionOneWay(from, to string) {
	n.SetLink(from, to, Profile{Cut: true})
}

// Heal restores both directions between a and b to clean.
func (n *Network) Heal(a, b string) {
	n.SetPair(a, b, Profile{})
}

// HealAll drops every link rule; established connections stay up.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links = make(map[link]Profile)
}

// ResetConns kills every established connection between a and b (either
// orientation) without changing the link profiles.
func (n *Network) ResetConns(a, b string) {
	n.mu.Lock()
	var victims []*Conn
	for c := range n.conns {
		if (c.local == a && c.remote == b) || (c.local == b && c.remote == a) {
			victims = append(victims, c)
		}
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.kill()
	}
}

// Stats snapshots the injected-fault counters.
func (n *Network) Stats() Stats {
	return Stats{
		DialsBlocked: n.dialsBlocked.Load(),
		WritesCut:    n.writesCut.Load(),
		ReadsCut:     n.readsCut.Load(),
		ConnsReset:   n.connsReset.Load(),
		Delays:       n.delays.Load(),
	}
}

// profile resolves the current rule for one direction: exact pair first,
// then from→*, then *→to, then *→* — so listener-side connections (whose
// remote is Wildcard) still match endpoint-wide rules.
func (n *Network) profile(from, to string) Profile {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.profileLocked(from, to)
}

//mcvet:locked
func (n *Network) profileLocked(from, to string) Profile {
	if p, ok := n.links[link{from, to}]; ok {
		return p
	}
	if p, ok := n.links[link{from, Wildcard}]; ok {
		return p
	}
	if p, ok := n.links[link{Wildcard, to}]; ok {
		return p
	}
	return n.links[link{Wildcard, Wildcard}]
}

// delayFor draws the deterministic sleep for one crossing: latency plus
// seeded uniform [0, Jitter).
func (n *Network) delayFor(p Profile) time.Duration {
	d := p.Latency
	if p.Jitter > 0 {
		n.mu.Lock()
		d += time.Duration(n.next() % uint64(p.Jitter))
		n.mu.Unlock()
	}
	return d
}

// Dialer returns a dial function for the named endpoint, in the shape the
// wire client and cluster replicator accept. Dials consult the from→addr
// direction: a cut link refuses immediately (no timeout stall), a live one
// dials for real and wraps the connection for ongoing fault injection.
func (n *Network) Dialer(from string) func(addr string, timeout time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		if n.profile(from, addr).Cut {
			n.dialsBlocked.Add(1)
			return nil, &net.OpError{Op: "dial", Net: "tcp", Err: fmt.Errorf("%w (%s -> %s)", ErrCut, from, addr)}
		}
		nc, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return n.wrap(nc, from, addr), nil
	}
}

// Listener wraps ln so accepted connections pass through the fault plane.
// The remote endpoint of an accepted connection is unknown (TCP source
// ports carry no identity), so these connections match only wildcard and
// name→Wildcard rules.
func (n *Network) Listener(name string, ln net.Listener) net.Listener {
	return &chaosListener{Listener: ln, n: n, name: name}
}

type chaosListener struct {
	net.Listener
	n    *Network
	name string
}

func (l *chaosListener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.n.wrap(nc, l.name, Wildcard), nil
}

// wrap registers a fault-injected connection between the named endpoints.
func (n *Network) wrap(nc net.Conn, local, remote string) *Conn {
	c := &Conn{Conn: nc, n: n, local: local, remote: remote, done: make(chan struct{})}
	n.mu.Lock()
	n.conns[c] = struct{}{}
	n.mu.Unlock()
	return c
}

// Conn is one fault-injected connection. Writes cross the local→remote
// direction, reads deliver remote→local traffic; each consults its
// direction's current profile on every call, so steering a link mid-test
// affects connections already established over it.
type Conn struct {
	net.Conn
	n             *Network
	local, remote string

	closeOnce sync.Once
	killed    atomic.Bool
	done      chan struct{}

	wrote atomic.Int64 // bytes delivered local→remote
	read  atomic.Int64 // bytes delivered remote→local
}

// kill resets the connection from the fault plane: subsequent operations
// fail with ErrReset and any in-flight injected sleep is interrupted.
func (c *Conn) kill() {
	if c.killed.CompareAndSwap(false, true) {
		c.n.connsReset.Add(1)
		c.teardown()
	}
}

func (c *Conn) teardown() {
	c.closeOnce.Do(func() {
		close(c.done)
		c.Conn.Close()
		c.n.mu.Lock()
		delete(c.n.conns, c)
		c.n.mu.Unlock()
	})
}

// Close unregisters and closes the underlying connection.
func (c *Conn) Close() error {
	c.teardown()
	return nil
}

// sleep blocks for d unless the connection is reset or closed first.
func (c *Conn) sleep(d time.Duration) error {
	if d <= 0 {
		return nil
	}
	c.n.delays.Add(1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.done:
		return c.opErr("write", ErrReset)
	}
}

func (c *Conn) opErr(op string, err error) error {
	return &net.OpError{Op: op, Net: "tcp", Err: fmt.Errorf("%w (%s <-> %s)", err, c.local, c.remote)}
}

// Write applies the local→remote profile: cut check, latency+jitter,
// drop-after-N-bytes, then the write itself, trickled when configured.
func (c *Conn) Write(p []byte) (int, error) {
	if c.killed.Load() {
		return 0, c.opErr("write", ErrReset)
	}
	prof := c.n.profile(c.local, c.remote)
	if prof.Cut {
		c.n.writesCut.Add(1)
		return 0, c.opErr("write", ErrCut)
	}
	if err := c.sleep(c.n.delayFor(prof)); err != nil {
		return 0, err
	}
	written := 0
	for written < len(p) {
		if prof.DropAfterBytes > 0 && c.wrote.Load() >= prof.DropAfterBytes {
			c.kill()
			return written, c.opErr("write", ErrReset)
		}
		chunk := len(p) - written
		if prof.TrickleBytes > 0 && chunk > prof.TrickleBytes {
			chunk = prof.TrickleBytes
		}
		if prof.DropAfterBytes > 0 {
			if room := int(prof.DropAfterBytes - c.wrote.Load()); chunk > room {
				chunk = room
			}
		}
		nw, err := c.Conn.Write(p[written : written+chunk])
		written += nw
		c.wrote.Add(int64(nw))
		if err != nil {
			if c.killed.Load() {
				err = c.opErr("write", ErrReset)
			}
			return written, err
		}
		if written < len(p) && prof.TricklePause > 0 {
			if err := c.sleep(prof.TricklePause); err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

// Read applies the remote→local profile: a cut inbound direction fails the
// read, delivered bytes are delayed by latency+jitter and counted against
// drop-after-N-bytes.
func (c *Conn) Read(p []byte) (int, error) {
	if c.killed.Load() {
		return 0, c.opErr("read", ErrReset)
	}
	prof := c.n.profile(c.remote, c.local)
	if prof.Cut {
		c.n.readsCut.Add(1)
		return 0, c.opErr("read", ErrCut)
	}
	nr, err := c.Conn.Read(p)
	if nr > 0 {
		c.read.Add(int64(nr))
		if serr := c.sleep(c.n.delayFor(prof)); serr != nil && err == nil {
			return nr, serr
		}
		if prof.DropAfterBytes > 0 && c.read.Load() >= prof.DropAfterBytes {
			c.kill()
			return nr, c.opErr("read", ErrReset)
		}
	}
	if err != nil && c.killed.Load() {
		err = c.opErr("read", ErrReset)
	}
	return nr, err
}
