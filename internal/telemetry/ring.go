package telemetry

import "sync/atomic"

// Ring is the flight recorder: a fixed-size lock-free ring holding the last
// N operations. Writers claim a slot with one atomic increment and publish
// through a per-slot sequence word (seqlock): the sequence goes odd while the
// slot is being written and even when stable, and every event field is stored
// in its own atomic word, so concurrent writers and snapshot readers never
// race and a reader can detect (and discard) a slot it caught mid-write.
//
// The recorder exists for post-hoc debugging — "what were the last thousand
// operations before the stall / the failure burst" — so it deliberately keeps
// raw per-op records (kind, key hash, shard, kick count, off-chip accesses,
// outcome, latency) rather than aggregates.
type Ring struct {
	mask   uint64
	cursor atomic.Uint64
	slots  []ringSlot
}

// ringSlot stores one packed event. seq even = stable, odd = mid-write; a
// slot written w full wraps after a reader loaded seq is detected by the
// seq re-check after the field loads.
type ringSlot struct {
	seq     atomic.Uint64
	keyHash atomic.Uint64
	nanos   atomic.Int64
	offChip atomic.Int64
	packed  atomic.Uint64 // kicks(32) | shard+1(18) | status(4) | op(3) | hit(1)
}

// newRing creates a ring with capacity rounded up to a power of two, minimum
// 16.
func newRing(n int) *Ring {
	size := 16
	for size < n {
		size <<= 1
	}
	return &Ring{mask: uint64(size - 1), slots: make([]ringSlot, size)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

func packEvent(e Event) uint64 {
	var hit uint64
	if e.Hit {
		hit = 1
	}
	// Shard is stored as shard+1 in 18 bits so that -1 (unsharded) packs to
	// 0 and the full MaxShards index range (0..65535) survives the round
	// trip.
	return uint64(uint32(e.Kicks))<<26 |
		uint64(uint32(e.Shard+1)&0x3ffff)<<8 |
		uint64(e.Status&0xf)<<4 |
		uint64(e.Op&0x7)<<1 |
		hit
}

func unpackEvent(keyHash uint64, nanos, offChip int64, packed uint64) Event {
	return Event{
		Op:      Op(packed >> 1 & 0x7),
		Status:  uint8(packed >> 4 & 0xf),
		Hit:     packed&1 != 0,
		Shard:   int32(packed>>8&0x3ffff) - 1,
		Kicks:   int32(uint32(packed >> 26)),
		OffChip: offChip,
		Nanos:   nanos,
		KeyHash: keyHash,
	}
}

// add records one event. Multiple writers may add concurrently; each claims
// a distinct slot unless the ring wraps a full lap mid-write, in which case
// the later writer's sequence bumps make the torn slot detectable and a
// snapshot drops it.
func (r *Ring) add(e Event) {
	i := r.cursor.Add(1) - 1
	s := &r.slots[i&r.mask]
	s.seq.Add(1) // odd: write in progress
	s.keyHash.Store(e.KeyHash)
	s.nanos.Store(e.Nanos)
	s.offChip.Store(e.OffChip)
	s.packed.Store(packEvent(e))
	s.seq.Add(1) // even: stable
}

// Events returns the recorded operations, oldest first, skipping any slot
// caught mid-write. The result holds at most Cap() events and fewer when the
// ring has not filled or writers tore slots during the read.
func (r *Ring) Events() []Event {
	n := r.cursor.Load()
	size := uint64(len(r.slots))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]Event, 0, n-start)
	for i := start; i < n; i++ {
		s := &r.slots[i&r.mask]
		seq := s.seq.Load()
		if seq&1 != 0 {
			continue // mid-write
		}
		keyHash := s.keyHash.Load()
		nanos := s.nanos.Load()
		offChip := s.offChip.Load()
		packed := s.packed.Load()
		if s.seq.Load() != seq {
			continue // torn by a wrap during the read
		}
		out = append(out, unpackEvent(keyHash, nanos, offChip, packed))
	}
	return out
}
