package telemetry_test

// The disabled-path guarantee: a table without telemetry pays one nil check
// per operation and allocates nothing. TestDisabledPathZeroAlloc asserts it
// with testing.AllocsPerRun; the BenchmarkTelemetry* pair keeps the
// enabled-path overhead measurable (ci.sh runs them as a smoke).

import (
	"testing"

	"mccuckoo/internal/core"
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/shard"
	"mccuckoo/internal/telemetry"
)

func newSharded(tb testing.TB, shards, bucketsPerShardTable int, seed uint64) *shard.Sharded {
	tb.Helper()
	s, err := shard.New(shards, seed, func(i int) (shard.Inner, error) {
		return core.New(core.Config{
			BucketsPerTable: bucketsPerShardTable,
			Seed:            hashutil.Mix64(seed + uint64(i)*0x9e3779b97f4a7c15),
			StashEnabled:    true,
		})
	})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// populate fills the table to a moderate load so the measured operations run
// against realistic bucket occupancy.
func populate(s *shard.Sharded, n int) {
	for k := uint64(1); k <= uint64(n); k++ {
		s.Insert(k, k*3)
	}
}

func TestDisabledPathZeroAlloc(t *testing.T) {
	s := newSharded(t, 4, 512, 11)
	populate(s, 3000)

	if got := testing.AllocsPerRun(200, func() {
		s.Lookup(1234)        // positive
		s.Lookup(99_999_999)  // negative
		s.Insert(777, 1)      // update of a live key
		s.Delete(123_456_789) // miss
	}); got != 0 {
		t.Fatalf("disabled telemetry single-op path allocates %v allocs/op, want 0", got)
	}
}

func TestEnabledPathRecords(t *testing.T) {
	s := newSharded(t, 4, 512, 11)
	sink := telemetry.New(telemetry.Options{EventBuffer: 64})
	s.AttachTelemetry(sink)
	sink.SetGaugeSource(s.Gauges)
	populate(s, 500)
	s.Lookup(1)
	s.Lookup(1 << 40)
	s.Delete(2)

	snap := sink.Snapshot()
	if snap.Counters.Inserts != 500 || snap.Counters.Lookups != 2 || snap.Counters.Deletes != 1 {
		t.Fatalf("counters: %+v", snap.Counters)
	}
	if snap.Counters.LookupHits != 1 || snap.Counters.LookupMisses != 1 {
		t.Fatalf("lookup split: %+v", snap.Counters)
	}
	if snap.Histograms["offchip_per_insert"].Count != 500 {
		t.Fatalf("insert off-chip histogram count %d", snap.Histograms["offchip_per_insert"].Count)
	}
	// Every recorded lookup must have cost at least one off-chip or on-chip
	// probe's worth of accounting; the positive one read at least one bucket.
	if snap.Histograms["offchip_lookup_pos"].Sum < 1 {
		t.Fatalf("positive lookup off-chip sum %d, want >= 1", snap.Histograms["offchip_lookup_pos"].Sum)
	}
	g := snap.Gauges
	if g.Items != s.Len() || g.Shards != 4 {
		t.Fatalf("gauges: %+v", g)
	}
	if len(g.CopyHist) == 0 {
		t.Fatal("copy histogram missing from gauges")
	}
	if len(sink.Events()) == 0 {
		t.Fatal("flight recorder empty")
	}
}

func BenchmarkTelemetryDisabledLookup(b *testing.B) {
	s := newSharded(b, 8, 2048, 5)
	populate(s, 20_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Lookup(uint64(i%20_000) + 1)
	}
}

func BenchmarkTelemetryEnabledLookup(b *testing.B) {
	s := newSharded(b, 8, 2048, 5)
	s.AttachTelemetry(telemetry.New(telemetry.Options{}))
	populate(s, 20_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Lookup(uint64(i%20_000) + 1)
	}
}

func BenchmarkTelemetryDisabledInsertDelete(b *testing.B) {
	s := newSharded(b, 8, 2048, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i) + 1
		s.Insert(k, k)
		s.Delete(k)
	}
}

func BenchmarkTelemetryEnabledInsertDelete(b *testing.B) {
	s := newSharded(b, 8, 2048, 5)
	s.AttachTelemetry(telemetry.New(telemetry.Options{}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i) + 1
		s.Insert(k, k)
		s.Delete(k)
	}
}
