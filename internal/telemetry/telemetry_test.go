package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mccuckoo/internal/core"
	"mccuckoo/internal/kv"
)

func TestHistBuckets(t *testing.T) {
	var h Hist
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {-5, 0}, // zeros and clamped negatives
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{1 << 20, 21},
		{1<<62 - 1, histBuckets - 1}, // saturates into the +Inf bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		h.Observe(c.v)
	}
	s := h.Snapshot()
	if s.Count != int64(len(cases)) {
		t.Fatalf("count %d, want %d", s.Count, len(cases))
	}
	if s.Buckets[0] != 2 || s.Buckets[2] != 2 || s.Buckets[3] != 2 {
		t.Fatalf("bucket counts off: %v", s.Buckets[:8])
	}
	if got := s.UpperBound(0); got != 0 {
		t.Errorf("UpperBound(0) = %d, want 0", got)
	}
	if got := s.UpperBound(3); got != 7 {
		t.Errorf("UpperBound(3) = %d, want 7", got)
	}
	if got := s.UpperBound(histBuckets - 1); got != -1 {
		t.Errorf("UpperBound(last) = %d, want -1 (+Inf)", got)
	}
	if (HistSnapshot{}).Mean() != 0 {
		t.Error("empty Mean not 0")
	}
	var m Hist
	m.Observe(10)
	m.Observe(20)
	if got := m.Snapshot().Mean(); got != 15 {
		t.Errorf("Mean = %v, want 15", got)
	}
}

func TestEventPackRoundTrip(t *testing.T) {
	cases := []Event{
		{},
		{Op: OpInsert, Status: uint8(kv.Stashed), Shard: -1, Kicks: 500},
		{Op: OpLookup, Hit: true, Shard: 65535},
		{Op: OpDelete, Hit: true, Shard: 0, Kicks: 1<<31 - 1},
		{Op: OpInsert, Status: uint8(kv.Failed), Shard: 12345},
	}
	for _, e := range cases {
		got := unpackEvent(e.KeyHash, e.Nanos, e.OffChip, packEvent(e))
		if got != e {
			t.Errorf("round trip %+v -> %+v", e, got)
		}
	}
}

func TestRingWrapOldestFirst(t *testing.T) {
	r := newRing(10)
	if r.Cap() != 16 {
		t.Fatalf("cap %d, want 16 (rounded up)", r.Cap())
	}
	for i := 0; i < 40; i++ {
		r.add(Event{Op: OpLookup, KeyHash: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 16 {
		t.Fatalf("got %d events, want 16", len(evs))
	}
	for i, e := range evs {
		if want := uint64(40 - 16 + i); e.KeyHash != want {
			t.Fatalf("event %d has KeyHash %d, want %d (oldest first)", i, e.KeyHash, want)
		}
	}
}

func TestSinkRecordAndSnapshot(t *testing.T) {
	s := New(Options{EventBuffer: 16})
	s.Record(Event{Op: OpInsert, Status: uint8(kv.Placed), Kicks: 3, OffChip: 5, Nanos: 100, Shard: -1})
	s.Record(Event{Op: OpInsert, Status: uint8(kv.Stashed), OffChip: 9, Nanos: 50, Shard: 2})
	s.Record(Event{Op: OpLookup, Hit: true, OffChip: 1, Nanos: 10})
	s.Record(Event{Op: OpLookup, Hit: false, OffChip: 3})
	s.Record(Event{Op: OpDelete, Hit: true, OffChip: 0, Nanos: 5})
	s.RecordCorruptLoad()
	s.RecordRepair(core.RepairReport{CountersFixed: 2, SizeBefore: 4, SizeAfter: 4, CopiesBefore: 6, CopiesAfter: 6})
	s.RecordRepair(core.RepairReport{})

	snap := s.Snapshot()
	c := snap.Counters
	if c.Inserts != 2 || c.Lookups != 2 || c.Deletes != 1 {
		t.Fatalf("op counts: %+v", c)
	}
	if c.InsertStatus["placed"] != 1 || c.InsertStatus["stashed"] != 1 {
		t.Fatalf("insert status: %v", c.InsertStatus)
	}
	if c.LookupHits != 1 || c.LookupMisses != 1 || c.DeletesHit != 1 {
		t.Fatalf("hit counts: %+v", c)
	}
	if c.CorruptLoads != 1 {
		t.Fatalf("corrupt loads %d", c.CorruptLoads)
	}
	if c.Repairs != 2 || c.RepairsDirty != 1 || c.RepairFixed["counters"] != 2 {
		t.Fatalf("repairs: %+v", c)
	}
	if got := snap.Histograms["kick_path_length"].Count; got != 2 {
		t.Fatalf("kick hist count %d", got)
	}
	if got := snap.Histograms["offchip_lookup_pos"].Sum; got != 1 {
		t.Fatalf("positive lookup off-chip sum %d", got)
	}
	if got := snap.Histograms["offchip_lookup_neg"].Sum; got != 3 {
		t.Fatalf("negative lookup off-chip sum %d", got)
	}
	// The untimed lookup (Nanos == 0) must not pollute the latency histogram.
	if got := snap.Histograms["latency_lookup_ns"].Count; got != 1 {
		t.Fatalf("lookup latency count %d, want 1 (untimed op excluded)", got)
	}
	if evs := s.Events(); len(evs) != 5 {
		t.Fatalf("flight recorder holds %d events, want 5", len(evs))
	}
}

func TestNilSinkIsSafeAndDisabled(t *testing.T) {
	var s *Sink
	if s.Enabled() {
		t.Fatal("nil sink reports enabled")
	}
	s.Record(Event{Op: OpInsert})
	s.RecordCorruptLoad()
	s.RecordRepair(core.RepairReport{CountersFixed: 1})
	s.SetGaugeSource(func() Gauges { return Gauges{} })
	s.StoreGauges(Gauges{Items: 1})
	if evs := s.Events(); evs != nil {
		t.Fatalf("nil sink events: %v", evs)
	}
	if snap := s.Snapshot(); snap.Counters.Inserts != 0 {
		t.Fatalf("nil sink snapshot: %+v", snap)
	}
}

func TestGaugeSourceOverridesPush(t *testing.T) {
	s := New(Options{})
	s.StoreGauges(Gauges{Items: 7})
	if got := s.Snapshot().Gauges.Items; got != 7 {
		t.Fatalf("pushed gauges not served: %d", got)
	}
	s.SetGaugeSource(func() Gauges { return Gauges{Items: 42} })
	if got := s.Snapshot().Gauges.Items; got != 42 {
		t.Fatalf("live source not preferred: %d", got)
	}
	s.SetGaugeSource(nil)
	if got := s.Snapshot().Gauges.Items; got != 7 {
		t.Fatalf("reverting to pushed gauges failed: %d", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	s := New(Options{})
	s.Record(Event{Op: OpInsert, Status: uint8(kv.Placed), Kicks: 2, OffChip: 4, Nanos: 1500})
	s.Record(Event{Op: OpLookup, Hit: true, OffChip: 1, Nanos: 300})
	s.Record(Event{Op: OpLookup, Hit: false, OffChip: 3, Nanos: 200})
	s.Record(Event{Op: OpDelete, Hit: true, Nanos: 100})
	s.RecordCorruptLoad()
	s.StoreGauges(Gauges{
		Items: 10, Capacity: 100, LoadRatio: 0.1, StashLen: 2, StashFlagDensity: 0.03,
		CopyHist: []int64{0, 6, 3, 1},
		Shards:   4, MinShardLoad: 0.05, MaxShardLoad: 0.2,
		Ops: kv.Stats{GrowAttempts: 3, Grows: 2, GrowFailures: 1, Kicks: 2, StashProbe: 5},
	})

	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`mccuckoo_ops_total{op="insert"} 1`,
		`mccuckoo_ops_total{op="lookup"} 2`,
		`mccuckoo_inserts_total{status="placed"} 1`,
		`mccuckoo_lookups_total{result="hit"} 1`,
		`mccuckoo_lookups_total{result="miss"} 1`,
		`mccuckoo_deletes_removed_total 1`,
		`mccuckoo_corrupt_loads_total 1`,
		`mccuckoo_autogrow_attempts_total 3`,
		`mccuckoo_autogrow_success_total 2`,
		`mccuckoo_autogrow_failures_total 1`,
		`mccuckoo_stash_probes_total 5`,
		`mccuckoo_table_kicks_total 2`,
		`mccuckoo_op_latency_seconds_bucket{op="insert",`,
		`mccuckoo_op_latency_seconds_count{op="lookup"} 2`,
		`mccuckoo_kick_path_length_bucket{le="3"} 1`,
		`mccuckoo_kick_path_length_sum 2`,
		`mccuckoo_offchip_accesses_per_insert_count 1`,
		`mccuckoo_offchip_accesses_per_lookup_count{result="positive"} 1`,
		`mccuckoo_offchip_accesses_per_lookup_count{result="negative"} 1`,
		`mccuckoo_items 10`,
		`mccuckoo_capacity 100`,
		`mccuckoo_load_ratio 0.1`,
		`mccuckoo_stash_len 2`,
		`mccuckoo_stash_flag_density 0.03`,
		`mccuckoo_copy_count_items{copies="1"} 6`,
		`mccuckoo_copy_count_items{copies="3"} 1`,
		`mccuckoo_copy_bucket_fraction{copies="1"}`,
		`mccuckoo_shards 4`,
		`mccuckoo_shard_load_min 0.05`,
		`mccuckoo_shard_load_max 0.2`,
		`mccuckoo_uptime_seconds`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("exposition does not end with a newline")
	}
	// Cumulative bucket sanity: the +Inf bucket of every histogram must equal
	// its _count.
	if !strings.Contains(out, `mccuckoo_kick_path_length_bucket{le="+Inf"} 1`) {
		t.Error("+Inf bucket missing or not cumulative")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	s := New(Options{EventBuffer: 16})
	s.Record(Event{Op: OpInsert, Status: uint8(kv.Placed), Kicks: 1, OffChip: 2, Nanos: 10, Shard: 3, KeyHash: 0xdead})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) (int, string, http.Header) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body), resp.Header
	}

	code, body, hdr := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "mccuckoo_ops_total") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	code, body, _ = get("/debug/mccuckoo/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/stats not JSON: %v", err)
	}
	for _, key := range []string{"uptime_seconds", "gauges", "counters", "histograms"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("/stats missing %q", key)
		}
	}

	code, body, _ = get("/debug/mccuckoo/events")
	if code != http.StatusOK {
		t.Fatalf("/events status %d", code)
	}
	var evs []map[string]any
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("/events not JSON: %v", err)
	}
	if len(evs) != 1 {
		t.Fatalf("/events has %d events, want 1", len(evs))
	}
	if evs[0]["op"] != "insert" || evs[0]["status"] != "placed" || evs[0]["shard"] != float64(3) {
		t.Fatalf("/events payload: %+v", evs[0])
	}

	if code, _, _ = get("/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d", code)
	}
}

func TestPublishDedup(t *testing.T) {
	s := New(Options{})
	const name = "mccuckoo_test_publish_dedup"
	if err := s.Publish(name); err != nil {
		t.Fatalf("first publish: %v", err)
	}
	if err := s.Publish(name); err == nil {
		t.Fatal("duplicate publish accepted")
	}
}
