package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
)

// MetricsWriter is one contributor to a merged Prometheus exposition: any
// WritePrometheus-shaped func. Sink.WritePrometheus, wire.Server and
// cluster.Client WritePrometheus methods, and WriteRuntimeMetrics all fit.
type MetricsWriter func(io.Writer) error

// MergedHandler serves the concatenation of several Prometheus expositions
// as one /metrics endpoint. It replaces the ad-hoc handler-concatenation
// that used to live in cmd/mcserved: every serving binary builds its part
// list once and mounts a single handler. Nil parts are skipped, so callers
// can pass conditionally-present contributors unconditionally:
//
//	telemetry.MergedHandler(tel.WriteMetrics, srv.WritePrometheus, rep.WritePrometheus)
//
// Each writer's output must be self-contained (its own # HELP/# TYPE
// headers) and the writers must not share metric names. A writer error
// aborts the response mid-stream — with headers already sent, truncation is
// all that is left, and a partial scrape is visibly broken rather than
// silently missing series.
func MergedHandler(parts ...MetricsWriter) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, part := range parts {
			if part == nil {
				continue
			}
			if err := part(w); err != nil {
				return
			}
		}
	})
}

// WriteRuntimeMetrics writes Go runtime health metrics — goroutines, heap,
// GC — in Prometheus exposition, under the mccuckoo_go_ prefix. It is the
// MergedHandler contributor that makes a serving process's resource health
// scrapeable next to its table and cluster metrics.
func WriteRuntimeMetrics(w io.Writer) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	metrics := []struct {
		name, help, typ string
		v               float64
	}{
		{"mccuckoo_go_goroutines", "Goroutines currently live.", "gauge", float64(runtime.NumGoroutine())},
		{"mccuckoo_go_heap_alloc_bytes", "Heap bytes allocated and in use.", "gauge", float64(ms.HeapAlloc)},
		{"mccuckoo_go_heap_sys_bytes", "Heap bytes obtained from the OS.", "gauge", float64(ms.HeapSys)},
		{"mccuckoo_go_heap_objects", "Live heap objects.", "gauge", float64(ms.HeapObjects)},
		{"mccuckoo_go_next_gc_bytes", "Heap size that triggers the next GC.", "gauge", float64(ms.NextGC)},
		{"mccuckoo_go_gc_runs_total", "Completed GC cycles.", "counter", float64(ms.NumGC)},
		{"mccuckoo_go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause.", "counter", float64(ms.PauseTotalNs) / 1e9},
	}
	for _, m := range metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n",
			m.name, m.help, m.name, m.typ, m.name, m.v); err != nil {
			return err
		}
	}
	return nil
}
