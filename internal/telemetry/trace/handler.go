package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
)

// opNamer decodes wire opcodes into names for the JSON dump and span trees.
// The wire package registers its OpName at init; trace cannot import wire
// (wire imports trace), so the function arrives through this seam.
var opNamer atomic.Pointer[func(byte) string]

// RegisterOpNames installs the opcode-to-name function used when rendering
// spans. Later registrations win; nil is ignored.
func RegisterOpNames(f func(byte) string) {
	if f == nil {
		return
	}
	opNamer.Store(&f)
}

// OpString renders a span's opcode with the registered namer, falling back
// to the numeric form.
func OpString(op uint8) string {
	if op == 0 {
		return ""
	}
	if f := opNamer.Load(); f != nil {
		return (*f)(op)
	}
	return "op_" + strconv.Itoa(int(op))
}

// spanJSON is the /debug/mccuckoo/trace element shape.
type spanJSON struct {
	TraceID string `json:"trace_id"`
	SpanID  uint32 `json:"span_id"`
	Parent  uint32 `json:"parent,omitempty"`
	Kind    string `json:"kind"`
	Op      string `json:"op,omitempty"`
	Hop     uint8  `json:"hop"`
	Sampled bool   `json:"sampled"`
	StartNS int64  `json:"start_unix_ns"`
	DurNS   int64  `json:"dur_ns"`
	WaitNS  int64  `json:"wait_ns,omitempty"`
	Kicks   int32  `json:"kicks,omitempty"`
	Peer    string `json:"peer,omitempty"`
	KeyHash string `json:"key_hash,omitempty"`
}

func toJSON(sp Span) spanJSON {
	j := spanJSON{
		TraceID: fmt.Sprintf("%016x", sp.TraceID),
		SpanID:  sp.SpanID,
		Parent:  sp.Parent,
		Kind:    sp.Kind.String(),
		Op:      OpString(sp.Op),
		Hop:     sp.Hop,
		Sampled: sp.Flags&FlagSampled != 0,
		StartNS: sp.Start,
		DurNS:   sp.Dur,
		WaitNS:  sp.Wait,
		Kicks:   sp.Kicks,
	}
	if sp.Peer != 0 {
		j.Peer = fmt.Sprintf("%08x", sp.Peer)
	}
	if sp.Key != 0 {
		j.KeyHash = fmt.Sprintf("%016x", sp.Key)
	}
	return j
}

// Handler serves the flight-recorder contents as a JSON span array at any
// path it is mounted on (mcserved mounts it at /debug/mccuckoo/trace).
// Query parameters:
//
//	trace=<16-hex>   only spans of that trace id
//	minns=<int>      only spans at least that many nanoseconds long
//	limit=<int>      at most that many spans (newest kept)
//
// A nil recorder serves an empty array, so the endpoint can be mounted
// unconditionally.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var (
			traceID uint64
			minNS   int64
			limit   int
			err     error
		)
		q := req.URL.Query()
		if v := q.Get("trace"); v != "" {
			if traceID, err = strconv.ParseUint(v, 16, 64); err != nil {
				http.Error(w, "trace: want hex trace id", http.StatusBadRequest)
				return
			}
		}
		if v := q.Get("minns"); v != "" {
			if minNS, err = strconv.ParseInt(v, 10, 64); err != nil {
				http.Error(w, "minns: want integer nanoseconds", http.StatusBadRequest)
				return
			}
		}
		if v := q.Get("limit"); v != "" {
			if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
				http.Error(w, "limit: want non-negative integer", http.StatusBadRequest)
				return
			}
		}
		spans := r.Spans()
		out := make([]spanJSON, 0, len(spans))
		for _, sp := range spans {
			if traceID != 0 && sp.TraceID != traceID {
				continue
			}
			if sp.Dur < minNS {
				continue
			}
			out = append(out, toJSON(sp))
		}
		if limit > 0 && len(out) > limit {
			out = out[len(out)-limit:]
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// WritePrometheus emits the recorder's own counters in Prometheus text
// exposition format. Nil-safe.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	lines := []struct {
		name, help string
		v          uint64
	}{
		{"mccuckoo_trace_begun_total", "Traces begun (before head sampling).", r.traces.Load()},
		{"mccuckoo_trace_sampled_total", "Traces chosen by head sampling.", r.sampled.Load()},
		{"mccuckoo_trace_spans_total", "Spans recorded to the flight recorder.", uint64(r.spans.Load())},
		{"mccuckoo_trace_slow_spans_total", "Spans recorded only because they cleared the slow threshold.", uint64(r.slowRec.Load())},
		{"mccuckoo_trace_forced_spans_total", "Spans recorded unconditionally (panic path).", uint64(r.forced.Load())},
	}
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", l.name, l.help, l.name, l.name, l.v); err != nil {
			return err
		}
	}
	return nil
}

// Node is one span plus its children in a reassembled trace tree.
type Node struct {
	Span     Span
	Children []*Node
}

// Trees reassembles spans into per-trace trees: spans whose parent is
// missing from the set (including true roots) become tree roots. Within a
// level, children sort by start time; roots sort by trace id then start.
// Spans from several traces may be passed together — each trace yields its
// own root set.
func Trees(spans []Span) []*Node {
	type key struct {
		trace uint64
		span  uint32
	}
	nodes := make(map[key]*Node, len(spans))
	for _, sp := range spans {
		if sp.TraceID == 0 {
			continue
		}
		nodes[key{sp.TraceID, sp.SpanID}] = &Node{Span: sp}
	}
	var roots []*Node
	for _, sp := range spans {
		if sp.TraceID == 0 {
			continue
		}
		n := nodes[key{sp.TraceID, sp.SpanID}]
		if p, ok := nodes[key{sp.TraceID, sp.Parent}]; ok && sp.Parent != 0 && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortKids func(n *Node)
	sortKids = func(n *Node) {
		sort.Slice(n.Children, func(i, j int) bool {
			return n.Children[i].Span.Start < n.Children[j].Span.Start
		})
		for _, c := range n.Children {
			sortKids(c)
		}
	}
	for _, n := range roots {
		sortKids(n)
	}
	sort.Slice(roots, func(i, j int) bool {
		a, b := roots[i].Span, roots[j].Span
		if a.TraceID != b.TraceID {
			return a.TraceID < b.TraceID
		}
		return a.Start < b.Start
	})
	return roots
}

// Write renders the tree in an indented human form (mctrace's slowest-N
// output):
//
//	client_op put 412µs trace=9f3a… key=ab12…
//	  replica_rtt replicate 397µs peer=1a2b3c4d
//	    server_op replicate 121µs hop=1 wait=8µs
//	      repl_apply replicate 96µs kicks=1
func (n *Node) Write(w io.Writer, indent int) error {
	sp := n.Span
	line := fmt.Sprintf("%*s%s", indent*2, "", sp.Kind.String())
	if op := OpString(sp.Op); op != "" {
		line += " " + op
	}
	line += fmt.Sprintf(" %.3gµs", float64(sp.Dur)/1e3)
	if indent == 0 {
		line += fmt.Sprintf(" trace=%016x", sp.TraceID)
	}
	if sp.Hop != 0 {
		line += fmt.Sprintf(" hop=%d", sp.Hop)
	}
	if sp.Wait != 0 {
		line += fmt.Sprintf(" wait=%d", sp.Wait)
	}
	if sp.Kicks != 0 {
		line += fmt.Sprintf(" kicks=%d", sp.Kicks)
	}
	if sp.Peer != 0 {
		line += fmt.Sprintf(" peer=%08x", sp.Peer)
	}
	if sp.Key != 0 {
		line += fmt.Sprintf(" key=%016x", sp.Key)
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := c.Write(w, indent+1); err != nil {
			return err
		}
	}
	return nil
}
