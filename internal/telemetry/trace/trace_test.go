package trace

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestContextRoundTrip(t *testing.T) {
	cases := []Context{
		{TraceID: 1},
		{TraceID: 0xdeadbeefcafef00d, SpanID: 0x12345678, Hop: 3, Flags: FlagSampled},
		{TraceID: ^uint64(0), SpanID: ^uint32(0), Hop: 255, Flags: 0xff}, // unknown flag bits survive
	}
	for _, tc := range cases {
		b := AppendContext(nil, tc)
		if len(b) != ContextSize {
			t.Fatalf("AppendContext(%+v): %d bytes, want %d", tc, len(b), ContextSize)
		}
		got, ok := ParseContext(b)
		if !ok || got != tc {
			t.Fatalf("round trip %+v: got %+v ok=%v", tc, got, ok)
		}
		// Re-encode is byte-identical (the wire fuzzer leans on this).
		if string(AppendContext(nil, got)) != string(b) {
			t.Fatalf("re-encode of %+v not byte-identical", tc)
		}
	}
}

func TestParseContextRejects(t *testing.T) {
	valid := AppendContext(nil, Context{TraceID: 42, SpanID: 7, Hop: 1, Flags: FlagSampled})
	for name, b := range map[string][]byte{
		"short":         valid[:ContextSize-1],
		"empty":         nil,
		"zero trace id": AppendContext(nil, Context{}),
		"reserved 14":   append(append([]byte(nil), valid[:14]...), 1, 0),
		"reserved 15":   append(append([]byte(nil), valid[:15]...), 1),
	} {
		if _, ok := ParseContext(b); ok {
			t.Errorf("%s: accepted, want reject", name)
		}
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	tc := r.Begin()
	if tc.Valid() {
		t.Fatalf("nil Begin returned valid context %+v", tc)
	}
	sp := r.Start(tc, KindClientOp)
	child := sp.StartChild(KindTableOp)
	child.Finish()
	sp.Finish()
	fp := r.StartForced(tc, KindPanic)
	fp.FinishForced()
	if got := r.Spans(); got != nil {
		t.Fatalf("nil Spans() = %v, want nil", got)
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplingAndSpanRecording(t *testing.T) {
	r := New(Options{Capacity: 64, Sample: 4})
	sampled := 0
	for i := 0; i < 40; i++ {
		tc := r.Begin()
		if tc.Valid() {
			if !tc.Sampled() {
				t.Fatal("Begin returned a valid but unsampled context")
			}
			sampled++
			sp := r.Start(tc, KindClientOp)
			sp.Op = 2
			sp.Key = 0x1234
			child := sp.StartChild(KindTableOp)
			child.Kicks = 3
			child.Finish()
			sp.Finish()
		} else if sp := r.Start(tc, KindClientOp); sp.rec != nil {
			t.Fatal("unsampled Start returned a live span with slow capture off")
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 40 at 1-in-4, want 10", sampled)
	}
	spans := r.Spans()
	if len(spans) != 2*sampled {
		t.Fatalf("recorded %d spans, want %d", len(spans), 2*sampled)
	}
	// Children link to their parents within each trace.
	byTrace := map[uint64][]Span{}
	for _, sp := range spans {
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
	}
	if len(byTrace) != sampled {
		t.Fatalf("%d distinct traces, want %d", len(byTrace), sampled)
	}
	for id, ss := range byTrace {
		if len(ss) != 2 {
			t.Fatalf("trace %x has %d spans, want 2", id, len(ss))
		}
		var root, child Span
		for _, sp := range ss {
			if sp.Kind == KindClientOp {
				root = sp
			} else {
				child = sp
			}
		}
		if child.Parent != root.SpanID {
			t.Fatalf("trace %x: child parent %d, root span %d", id, child.Parent, root.SpanID)
		}
		if child.Kicks != 3 || root.Key != 0x1234 || root.Op != 2 {
			t.Fatalf("trace %x: cargo lost: root=%+v child=%+v", id, root, child)
		}
	}
}

func TestSlowCaptureWithoutSampling(t *testing.T) {
	r := New(Options{Capacity: 64, Sample: 1 << 30, SlowNanos: int64(2 * time.Millisecond)})
	// Fast untraced op: dropped.
	sp := r.Start(Context{}, KindServerOp)
	sp.Finish()
	if got := r.Spans(); len(got) != 0 {
		t.Fatalf("fast unsampled span recorded: %v", got)
	}
	// Slow untraced op: captured despite no trace id.
	sp = r.Start(Context{}, KindServerOp)
	time.Sleep(4 * time.Millisecond)
	sp.Finish()
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("slow span not captured: %v", spans)
	}
	if spans[0].TraceID != 0 || spans[0].Dur < int64(2*time.Millisecond) {
		t.Fatalf("slow span fields wrong: %+v", spans[0])
	}
	// Slow-captured spans must not leak a context downstream.
	if c := spans[0].SpanID; c == 0 {
		t.Fatal("slow span has no span id")
	}
	live := r.Start(Context{}, KindServerOp)
	if live.Context().Valid() {
		t.Fatal("untraced slow-armed span leaked a valid downstream context")
	}
	live.Finish()
}

func TestForcedSpanAlwaysRecords(t *testing.T) {
	r := New(Options{Capacity: 16, Sample: 1 << 30}) // sampler will never pick
	sp := r.StartForced(Context{}, KindPanic)
	sp.Op = 9
	sp.FinishForced()
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Kind != KindPanic || spans[0].Op != 9 {
		t.Fatalf("forced span missing: %v", spans)
	}
}

func TestRingWrap(t *testing.T) {
	r := New(Options{Capacity: 16, Sample: 1})
	for i := 0; i < 100; i++ {
		tc := r.Begin()
		sp := r.Start(tc, KindTableOp)
		sp.Kicks = int32(i)
		sp.Finish()
	}
	spans := r.Spans()
	if len(spans) != 16 {
		t.Fatalf("ring holds %d spans, want 16", len(spans))
	}
	for i, sp := range spans {
		if want := int32(100 - 16 + i); sp.Kicks != want {
			t.Fatalf("span %d kicks=%d, want %d (oldest-first order)", i, sp.Kicks, want)
		}
	}
}

func TestHandlerFilters(t *testing.T) {
	r := New(Options{Capacity: 64, Sample: 1})
	tcA := r.Begin()
	spA := r.Start(tcA, KindClientOp)
	spA.Finish()
	tcB := r.Begin()
	spB := r.Start(tcB, KindClientOp)
	time.Sleep(2 * time.Millisecond)
	spB.Finish()

	get := func(url string) []spanJSON {
		t.Helper()
		req := httptest.NewRequest("GET", url, nil)
		rec := httptest.NewRecorder()
		r.Handler().ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("GET %s: status %d: %s", url, rec.Code, rec.Body)
		}
		var out []spanJSON
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
		return out
	}

	if got := get("/debug/mccuckoo/trace"); len(got) != 2 {
		t.Fatalf("unfiltered: %d spans, want 2", len(got))
	}
	wantID := strings.Repeat("0", 16)
	if byID := get("/debug/mccuckoo/trace?trace=" + toJSON(Span{TraceID: tcA.TraceID}).TraceID); len(byID) != 1 || byID[0].TraceID == wantID {
		t.Fatalf("trace filter: %+v", byID)
	}
	if slow := get("/debug/mccuckoo/trace?minns=1000000"); len(slow) != 1 || slow[0].DurNS < 1e6 {
		t.Fatalf("minns filter: %+v", slow)
	}
	if lim := get("/debug/mccuckoo/trace?limit=1"); len(lim) != 1 {
		t.Fatalf("limit filter: %+v", lim)
	}
	// Bad parameters are 400s, not panics.
	for _, bad := range []string{"?trace=zz", "?minns=x", "?limit=-1"} {
		req := httptest.NewRequest("GET", "/debug/mccuckoo/trace"+bad, nil)
		rec := httptest.NewRecorder()
		r.Handler().ServeHTTP(rec, req)
		if rec.Code != 400 {
			t.Errorf("%s: status %d, want 400", bad, rec.Code)
		}
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mccuckoo_trace_begun_total 2", "mccuckoo_trace_spans_total 2"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("WritePrometheus missing %q in:\n%s", want, sb.String())
		}
	}
}

func TestTrees(t *testing.T) {
	r := New(Options{Capacity: 64, Sample: 1})
	tc := r.Begin()
	root := r.Start(tc, KindClientOp)
	rtt := root.StartChild(KindReplicaRTT)
	// Simulate the remote hop: its context crosses the wire.
	remote := r.Start(rtt.Context(), KindServerOp)
	table := remote.StartChild(KindTableOp)
	table.Finish()
	remote.Finish()
	rtt.Finish()
	root.Finish()
	// A second, unrelated trace.
	tc2 := r.Begin()
	lone := r.Start(tc2, KindClientOp)
	lone.Finish()

	trees := Trees(r.Spans())
	if len(trees) != 2 {
		t.Fatalf("%d roots, want 2", len(trees))
	}
	var big *Node
	for _, n := range trees {
		if n.Span.TraceID == tc.TraceID {
			big = n
		}
	}
	if big == nil || big.Span.Kind != KindClientOp {
		t.Fatalf("main trace root missing: %+v", trees)
	}
	if len(big.Children) != 1 || big.Children[0].Span.Kind != KindReplicaRTT {
		t.Fatalf("rtt child missing: %+v", big.Children)
	}
	srv := big.Children[0].Children
	if len(srv) != 1 || srv[0].Span.Kind != KindServerOp || srv[0].Span.Hop != 1 {
		t.Fatalf("server grandchild wrong: %+v", srv)
	}
	if len(srv[0].Children) != 1 || srv[0].Children[0].Span.Kind != KindTableOp {
		t.Fatalf("table great-grandchild wrong: %+v", srv[0].Children)
	}
	var sb strings.Builder
	if err := big.Write(&sb, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"client_op", "  replica_rtt", "    server_op", "      table_op", "trace="} {
		if !strings.Contains(out, want) {
			t.Errorf("tree render missing %q in:\n%s", want, out)
		}
	}
}

func TestOpString(t *testing.T) {
	RegisterOpNames(nil) // ignored
	if got := OpString(0); got != "" {
		t.Fatalf("OpString(0) = %q, want empty", got)
	}
	RegisterOpNames(func(op byte) string { return "x" + string('0'+op) })
	defer RegisterOpNames(func(op byte) string { return "op" }) // leave something sane behind
	if got := OpString(3); got != "x3" {
		t.Fatalf("OpString(3) = %q", got)
	}
}

// TestUntracedPathZeroAlloc proves the tracing-compiled-in-but-disabled hot
// path allocates nothing: both the nil-recorder shape mcserved runs without
// -trace, and the enabled-but-unsampled shape a non-sampled request takes.
func TestUntracedPathZeroAlloc(t *testing.T) {
	var nilRec *Recorder
	if n := testing.AllocsPerRun(200, func() {
		tc := nilRec.Begin()
		sp := nilRec.Start(tc, KindClientOp)
		child := sp.StartChild(KindTableOp)
		_ = child.Context()
		child.Finish()
		sp.Finish()
	}); n != 0 {
		t.Fatalf("nil-recorder path allocates %v per op, want 0", n)
	}

	r := New(Options{Capacity: 16, Sample: 1 << 30}) // sampler never fires, slow off
	if n := testing.AllocsPerRun(200, func() {
		tc := r.Begin()
		sp := r.Start(tc, KindClientOp)
		child := sp.StartChild(KindTableOp)
		_ = child.Context()
		child.Finish()
		sp.Finish()
	}); n != 0 {
		t.Fatalf("enabled-unsampled path allocates %v per op, want 0", n)
	}

	// Even the recording path itself is allocation-free (ring slots are
	// preallocated); only Spans()/Handler() allocate, off the hot path.
	rs := New(Options{Capacity: 16, Sample: 1})
	if n := testing.AllocsPerRun(200, func() {
		tc := rs.Begin()
		sp := rs.Start(tc, KindClientOp)
		sp.Finish()
	}); n != 0 {
		t.Fatalf("sampled record path allocates %v per op, want 0", n)
	}
}

func BenchmarkTraceDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc := r.Begin()
		sp := r.Start(tc, KindClientOp)
		sp.Finish()
	}
}

func BenchmarkTraceUnsampled(b *testing.B) {
	r := New(Options{Capacity: 4096, Sample: 1 << 30})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc := r.Begin()
		sp := r.Start(tc, KindClientOp)
		sp.Finish()
	}
}

func BenchmarkTraceSampled(b *testing.B) {
	r := New(Options{Capacity: 4096, Sample: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc := r.Begin()
		sp := r.Start(tc, KindClientOp)
		child := sp.StartChild(KindTableOp)
		child.Finish()
		sp.Finish()
	}
}
