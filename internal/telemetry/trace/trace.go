// Package trace is the distributed-tracing layer of the cluster tier
// (DESIGN.md §13): a zero-dependency, allocation-disciplined span recorder
// that follows one client request across the client fan-out, the per-replica
// round trips, the server queue, the table operation (kick chain included),
// the replication apply, and the anti-entropy repairs.
//
// A trace begins at the client with Begin, which applies 1-in-N head
// sampling and mints a Context: 16 bytes — trace id, parent span id, hop
// count, flags — that the wire protocol carries as an optional payload
// prefix gated by a flag bit in the frame type byte (internal/wire). Each
// hop calls Start/Finish around its work; finished spans land in a seqlock
// flight-recorder ring exactly like the telemetry event ring, so recording
// is a handful of atomic stores and never blocks or allocates.
//
// Two capture rules decide whether a finished span is kept:
//
//   - sampled traces (the Context's sampled bit, decided once at Begin)
//     record every span, and
//   - spans slower than the configured threshold record always, sampled or
//     not, so tail latencies are never invisible just because the head
//     sampler skipped them.
//
// A nil *Recorder is valid everywhere and records nothing: tracing compiled
// in but disabled costs zero allocations and no atomics on the hot path
// (guarded by TestUntracedPathZeroAlloc and mcvet's hotpathalloc).
package trace

import (
	"sync/atomic"
	"time"

	"mccuckoo/internal/hashutil"
)

// ContextSize is the wire size of an encoded Context: the fixed-length
// payload prefix a traced frame carries.
const ContextSize = 16

// FlagSampled marks a trace chosen by head sampling: every hop records all
// of its spans. Unset, only slow spans are captured.
const FlagSampled uint8 = 0x01

// Context is the trace state that crosses process boundaries. The zero
// Context means "untraced" and encodes to nothing (the frame is
// byte-identical to an untraced one).
type Context struct {
	// TraceID identifies the request end to end; zero means untraced.
	TraceID uint64
	// SpanID is the sender's span — the parent of whatever span the
	// receiving hop starts.
	SpanID uint32
	// Hop counts process boundaries crossed, client = 0.
	Hop uint8
	// Flags carries the sampling decision (FlagSampled); unknown bits are
	// preserved across hops for forward compatibility.
	Flags uint8
}

// Valid reports whether the context belongs to a live trace.
func (tc Context) Valid() bool { return tc.TraceID != 0 }

// Sampled reports whether the trace was chosen by head sampling.
func (tc Context) Sampled() bool { return tc.Flags&FlagSampled != 0 }

// AppendContext appends the 16-byte wire encoding of tc to dst: trace id
// (8, little-endian), span id (4, little-endian), hop, flags, and two
// reserved zero bytes.
//
//mcvet:hotpath
func AppendContext(dst []byte, tc Context) []byte {
	//mcvet:allow hotpathalloc appends into the caller's frame buffer, which AppendFrame sizes up front
	return append(dst,
		byte(tc.TraceID), byte(tc.TraceID>>8), byte(tc.TraceID>>16), byte(tc.TraceID>>24),
		byte(tc.TraceID>>32), byte(tc.TraceID>>40), byte(tc.TraceID>>48), byte(tc.TraceID>>56),
		byte(tc.SpanID), byte(tc.SpanID>>8), byte(tc.SpanID>>16), byte(tc.SpanID>>24),
		tc.Hop, tc.Flags, 0, 0)
}

// ParseContext decodes a Context from the front of b. It rejects (ok=false)
// a short buffer, a zero trace id, and nonzero reserved bytes — the decoder
// must accept only encodings AppendContext can produce, so an accepted
// traced frame always re-encodes byte-identically (the wire fuzzer's
// invariant). It runs on every traced frame decode, so it shares the
// record path's zero-allocation contract.
//
//mcvet:hotpath
func ParseContext(b []byte) (tc Context, ok bool) {
	if len(b) < ContextSize {
		return Context{}, false
	}
	tc.TraceID = uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	tc.SpanID = uint32(b[8]) | uint32(b[9])<<8 | uint32(b[10])<<16 | uint32(b[11])<<24
	tc.Hop, tc.Flags = b[12], b[13]
	if tc.TraceID == 0 || b[14] != 0 || b[15] != 0 {
		return Context{}, false
	}
	return tc, true
}

// Kind classifies what a span timed.
type Kind uint8

const (
	// KindClientOp is a cluster client operation end to end: the fan-out
	// root span.
	KindClientOp Kind = 1 + iota
	// KindReplicaRTT is one replica's round trip within a fan-out.
	KindReplicaRTT
	// KindServerOp is a server-side request execution; Wait carries the
	// queue wait (decode to handler start).
	KindServerOp
	// KindTableOp is the table operation under a server op; Kicks carries
	// the kick-chain length for inserts.
	KindTableOp
	// KindReplApply is a replication apply — a pushed REPLICATE batch or a
	// subscription-stream batch; Kicks carries the entry count and Wait the
	// stream lag in entries.
	KindReplApply
	// KindSweepRepair is one peer's anti-entropy sweep; Kicks carries the
	// repaired-key count. Repair pulls and pushes reuse the sweep's trace
	// id, so server-side spans tie each repair to the sweep that caused it.
	KindSweepRepair
	// KindPanic marks a recovered request-handler panic; Op carries the
	// opcode. Always recorded, sampled or not.
	KindPanic
)

// String returns the kind's snake_case name, as used in the JSON dump.
func (k Kind) String() string {
	switch k {
	case KindClientOp:
		return "client_op"
	case KindReplicaRTT:
		return "replica_rtt"
	case KindServerOp:
		return "server_op"
	case KindTableOp:
		return "table_op"
	case KindReplApply:
		return "repl_apply"
	case KindSweepRepair:
		return "sweep_repair"
	case KindPanic:
		return "panic"
	default:
		return "unknown"
	}
}

// Span is one timed unit of work. Start/StartChild fill the identity
// fields; the caller may set Op, Key, Peer, Kicks, and Wait before Finish.
// The zero Span is a no-op: every method on it is safe and records nothing.
type Span struct {
	TraceID uint64
	SpanID  uint32
	// Parent is the creating span's id (or the wire context's span id);
	// zero for roots.
	Parent uint32
	Kind   Kind
	// Hop is the process-boundary count inherited from the context.
	Hop uint8
	// Op is the wire opcode the span concerns, when any.
	Op uint8
	// Flags is the trace's flag byte (FlagSampled and future bits).
	Flags uint8
	// Kicks is kind-dependent cargo: kick-chain length (table ops), entries
	// applied (replication applies), keys repaired (sweeps).
	Kicks int32
	// Peer is a 32-bit hash of the peer address involved, zero when local.
	Peer uint32
	// Key is the mixed key hash (the telemetry KeyHash convention), zero
	// when the span is not about one key.
	Key uint64
	// Start is the wall-clock start in Unix nanoseconds.
	Start int64
	// Dur is the span duration in nanoseconds, set by Finish.
	Dur int64
	// Wait is kind-dependent: queue-wait nanoseconds (server ops), stream
	// lag in entries (replication applies).
	Wait int64

	rec *Recorder
	t0  time.Time
}

// Options configures a Recorder.
type Options struct {
	// Capacity is the span ring size, rounded up to a power of two
	// (default 4096).
	Capacity int

	// Sample is the head-sampling rate: Begin marks 1 in Sample traces as
	// sampled. 0 and 1 sample everything.
	Sample int

	// SlowNanos, when positive, records every span at least this slow even
	// in unsampled (or untraced) operations.
	SlowNanos int64
}

// Recorder owns the span flight-recorder ring. All methods are safe for
// concurrent use; a nil Recorder is valid and records nothing.
type Recorder struct {
	sample uint64
	slow   int64
	mask   uint64

	traces  atomic.Uint64
	sampled atomic.Uint64
	spanIDs atomic.Uint32
	spans   atomic.Int64
	slowRec atomic.Int64
	forced  atomic.Int64

	cursor atomic.Uint64
	slots  []spanSlot
}

// spanSlot is one seqlock slot (the telemetry.Ring discipline: seq odd =
// mid-write, even = stable, every field its own atomic word).
type spanSlot struct {
	seq     atomic.Uint64
	traceID atomic.Uint64
	ids     atomic.Uint64 // spanID(32) | parent(32)
	start   atomic.Int64
	dur     atomic.Int64
	wait    atomic.Int64
	key     atomic.Uint64
	meta    atomic.Uint64 // peer(32) | kicks(32)
	packed  atomic.Uint64 // kind(8) | hop(8) | op(8) | flags(8)
}

// New builds a Recorder. To disable tracing entirely, use a nil *Recorder
// instead — every method tolerates it.
func New(o Options) *Recorder {
	size := 16
	if o.Capacity <= 0 {
		o.Capacity = 4096
	}
	for size < o.Capacity {
		size <<= 1
	}
	if o.Sample < 1 {
		o.Sample = 1
	}
	if o.SlowNanos < 0 {
		o.SlowNanos = 0
	}
	r := &Recorder{
		sample: uint64(o.Sample),
		slow:   o.SlowNanos,
		mask:   uint64(size - 1),
		slots:  make([]spanSlot, size),
	}
	// Span ids count from a per-process random offset so two nodes in the
	// same trace are unlikely to mint colliding ids (ids only need to be
	// unique within one trace for tree assembly).
	r.spanIDs.Store(uint32(hashutil.Mix64(uint64(time.Now().UnixNano()))))
	return r
}

// Enabled reports whether spans can be recorded at all.
func (r *Recorder) Enabled() bool { return r != nil }

// Cap returns the span ring capacity (0 when disabled).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Begin starts a new trace at its origin, applying head sampling. It
// returns the context the root span and downstream hops inherit — the zero
// Context when the recorder is nil or the sampler skipped this trace (the
// operation then proceeds untraced, slow-capture aside).
//
//mcvet:hotpath
func (r *Recorder) Begin() Context {
	if r == nil {
		return Context{}
	}
	n := r.traces.Add(1)
	if r.sample > 1 && n%r.sample != 0 {
		return Context{}
	}
	r.sampled.Add(1)
	id := hashutil.Mix64(uint64(time.Now().UnixNano()) ^ n<<40)
	if id == 0 {
		id = 1
	}
	return Context{TraceID: id, Flags: FlagSampled}
}

// Start opens a span under tc. When the recorder is nil, or tc is untraced
// and no slow threshold is armed, it returns the zero Span and the whole
// span lifecycle is free.
//
//mcvet:hotpath
func (r *Recorder) Start(tc Context, kind Kind) Span {
	if r == nil || (!tc.Sampled() && r.slow == 0) {
		return Span{}
	}
	return r.open(tc, kind)
}

// StartForced opens a span that FinishForced will record unconditionally —
// the panic path. Only a nil recorder makes it a no-op.
//
//mcvet:hotpath
func (r *Recorder) StartForced(tc Context, kind Kind) Span {
	if r == nil {
		return Span{}
	}
	return r.open(tc, kind)
}

//mcvet:hotpath
func (r *Recorder) open(tc Context, kind Kind) Span {
	now := time.Now()
	return Span{
		TraceID: tc.TraceID,
		SpanID:  r.spanIDs.Add(1),
		Parent:  tc.SpanID,
		Kind:    kind,
		Hop:     tc.Hop,
		Flags:   tc.Flags,
		Start:   now.UnixNano(),
		rec:     r,
		t0:      now,
	}
}

// StartChild opens a span under sp in the same process (hop unchanged). On
// the zero Span it returns the zero Span.
//
//mcvet:hotpath
func (sp *Span) StartChild(kind Kind) Span {
	if sp.rec == nil {
		return Span{}
	}
	return sp.rec.open(Context{TraceID: sp.TraceID, SpanID: sp.SpanID, Hop: sp.Hop, Flags: sp.Flags}, kind)
}

// Context returns the wire context downstream hops inherit from sp: same
// trace, sp as parent, hop bumped. The zero Span yields the zero Context,
// so an untraced or slow-capture-only span never taints the wire.
//
//mcvet:hotpath
func (sp *Span) Context() Context {
	if sp.rec == nil || sp.TraceID == 0 {
		return Context{}
	}
	return Context{TraceID: sp.TraceID, SpanID: sp.SpanID, Hop: sp.Hop + 1, Flags: sp.Flags}
}

// Finish closes the span and records it if its trace is sampled or it
// cleared the slow threshold.
//
//mcvet:hotpath
func (sp *Span) Finish() {
	r := sp.rec
	if r == nil {
		return
	}
	sp.Dur = time.Since(sp.t0).Nanoseconds()
	if sp.TraceID != 0 && sp.Flags&FlagSampled != 0 {
		r.record(sp)
		return
	}
	if r.slow > 0 && sp.Dur >= r.slow {
		r.slowRec.Add(1)
		r.record(sp)
	}
}

// FinishForced closes the span and records it regardless of sampling and
// duration — the panic path.
//
//mcvet:hotpath
func (sp *Span) FinishForced() {
	r := sp.rec
	if r == nil {
		return
	}
	sp.Dur = time.Since(sp.t0).Nanoseconds()
	r.forced.Add(1)
	r.record(sp)
}

//mcvet:hotpath
func (r *Recorder) record(sp *Span) {
	r.spans.Add(1)
	i := r.cursor.Add(1) - 1
	s := &r.slots[i&r.mask]
	s.seq.Add(1) // odd: write in progress
	s.traceID.Store(sp.TraceID)
	s.ids.Store(uint64(sp.SpanID)<<32 | uint64(sp.Parent))
	s.start.Store(sp.Start)
	s.dur.Store(sp.Dur)
	s.wait.Store(sp.Wait)
	s.key.Store(sp.Key)
	s.meta.Store(uint64(sp.Peer)<<32 | uint64(uint32(sp.Kicks)))
	s.packed.Store(uint64(sp.Kind) | uint64(sp.Hop)<<8 | uint64(sp.Op)<<16 | uint64(sp.Flags)<<24)
	s.seq.Add(1) // even: stable
}

// Spans returns the recorded spans, oldest first, skipping slots caught
// mid-write (the same torn-slot rules as the telemetry event ring). Nil-safe.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	n := r.cursor.Load()
	size := uint64(len(r.slots))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]Span, 0, n-start)
	for i := start; i < n; i++ {
		s := &r.slots[i&r.mask]
		seq := s.seq.Load()
		if seq&1 != 0 {
			continue // mid-write
		}
		traceID := s.traceID.Load()
		ids := s.ids.Load()
		startNs := s.start.Load()
		dur := s.dur.Load()
		wait := s.wait.Load()
		key := s.key.Load()
		meta := s.meta.Load()
		packed := s.packed.Load()
		if s.seq.Load() != seq {
			continue // torn by a wrap during the read
		}
		out = append(out, Span{
			TraceID: traceID,
			SpanID:  uint32(ids >> 32),
			Parent:  uint32(ids),
			Kind:    Kind(packed & 0xff),
			Hop:     uint8(packed >> 8),
			Op:      uint8(packed >> 16),
			Flags:   uint8(packed >> 24),
			Kicks:   int32(uint32(meta)),
			Peer:    uint32(meta >> 32),
			Key:     key,
			Start:   startNs,
			Dur:     dur,
			Wait:    wait,
		})
	}
	return out
}

// PeerHash is the 32-bit address hash spans carry in Peer, shared by every
// layer so one peer renders identically everywhere.
func PeerHash(addr string) uint32 {
	return uint32(hashutil.BOB64([]byte(addr), 0))
}
