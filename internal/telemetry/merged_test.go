package telemetry

import (
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMergedHandler(t *testing.T) {
	a := func(w io.Writer) error { _, err := io.WriteString(w, "part_a 1\n"); return err }
	b := func(w io.Writer) error { _, err := io.WriteString(w, "part_b 2\n"); return err }
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	MergedHandler(a, nil, b).ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if got := rec.Body.String(); got != "part_a 1\npart_b 2\n" {
		t.Fatalf("merged body:\n%s", got)
	}

	// A failing part truncates: later parts must not run (their series
	// appearing after a hole would make the truncation invisible).
	boom := func(w io.Writer) error { return errors.New("boom") }
	rec = httptest.NewRecorder()
	MergedHandler(a, boom, b).ServeHTTP(rec, req)
	if got := rec.Body.String(); got != "part_a 1\n" {
		t.Fatalf("body after failing part:\n%s", got)
	}
}

func TestWriteRuntimeMetrics(t *testing.T) {
	var sb strings.Builder
	if err := WriteRuntimeMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"mccuckoo_go_goroutines",
		"mccuckoo_go_heap_alloc_bytes",
		"mccuckoo_go_gc_pause_seconds_total",
		"# TYPE mccuckoo_go_gc_runs_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteHistogram(t *testing.T) {
	var h Hist
	h.Observe(1500) // ns
	h.Observe(3_000_000)
	var sb strings.Builder
	if err := WriteHistogram(&sb, "test_seconds", "help text", `peer="a"`, h.Snapshot(), 1e9); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_seconds histogram",
		`test_seconds_count{peer="a"} 2`,
		`test_seconds_bucket{peer="a",le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition missing %q in:\n%s", want, out)
		}
	}
}
