package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sync"

	"mccuckoo/internal/kv"
)

// Handler returns the scrape surface:
//
//	/metrics                 Prometheus text exposition
//	/debug/mccuckoo/stats    full JSON snapshot (gauges, counters, histograms)
//	/debug/mccuckoo/events   flight-recorder contents as a JSON array
//
// All endpoints are read-only GETs and safe to hit while the table serves
// traffic. A nil sink serves empty-but-valid responses, so a server can be
// mounted unconditionally.
func (s *Sink) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/debug/mccuckoo/stats", s.serveStats)
	mux.HandleFunc("/debug/mccuckoo/events", s.serveEvents)
	return mux
}

func (s *Sink) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is drop the connection early.
		return
	}
}

func (s *Sink) serveStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// eventJSON is the decoded wire form of one flight-recorder event.
type eventJSON struct {
	Op      string `json:"op"`
	Status  string `json:"status,omitempty"`
	Hit     bool   `json:"hit"`
	Shard   int32  `json:"shard"`
	Kicks   int32  `json:"kicks,omitempty"`
	OffChip int64  `json:"off_chip"`
	Nanos   int64  `json:"nanos,omitempty"`
	KeyHash string `json:"key_hash"`
}

func (s *Sink) serveEvents(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	events := s.Events()
	out := make([]eventJSON, len(events))
	for i, e := range events {
		out[i] = eventJSON{
			Op:      e.Op.String(),
			Hit:     e.Hit,
			Shard:   e.Shard,
			Kicks:   e.Kicks,
			OffChip: e.OffChip,
			Nanos:   e.Nanos,
			KeyHash: fmt.Sprintf("%016x", e.KeyHash),
		}
		if e.Op == OpInsert {
			out[i].Status = kv.Status(e.Status).String()
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// expvar names already claimed, to keep Publish idempotent per name
// (expvar.Publish panics on duplicates).
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// Publish registers the sink's JSON snapshot under name in the process-wide
// expvar registry (shown at /debug/vars alongside memstats). Publishing the
// same name twice replaces nothing and returns an error; distinct sinks need
// distinct names.
func (s *Sink) Publish(name string) error {
	if s == nil {
		return nil
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] || expvar.Get(name) != nil {
		return fmt.Errorf("telemetry: expvar name %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return s.Snapshot() }))
	expvarPublished[name] = true
	return nil
}
