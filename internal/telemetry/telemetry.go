// Package telemetry is the always-on observability layer for the McCuckoo
// tables. A Sink accumulates the signals the paper's evaluation is built
// around — off-chip accesses per operation, kick-path lengths, the copy-count
// (redundancy) distribution — plus operational latency histograms, event
// counters, and a flight-recorder ring of the last N operations, and exports
// all of it in Prometheus text format, JSON, and expvar.
//
// Design constraints, in order:
//
//  1. A nil *Sink is the disabled state. Every method is nil-safe and the
//     owning tables branch on the nil before doing any work, so a table
//     without telemetry pays one predictable branch and zero allocations on
//     its hot path (asserted by TestDisabledPathZeroAlloc and the
//     BenchmarkTelemetry* gate in ci.sh).
//  2. An enabled Sink is lock-free on the record path: counters and
//     histogram buckets are atomics, the flight recorder is a seqlock ring,
//     and Event is a value — recording allocates nothing either.
//  3. Gauges (load ratio, copy-count distribution, stash depth/flag density)
//     are pulled at scrape time from a source the owning table registers, or
//     pushed explicitly via StoreGauges by single-writer tables that cannot
//     be sampled concurrently.
//
// The package sits below the public API and beside internal/shard: shard
// feeds a Sink from inside its per-shard critical sections, the public
// wrappers feed it for the single-writer tables, and cmd/mctrace feeds it
// from its replay loop.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"mccuckoo/internal/core"
	"mccuckoo/internal/kv"
)

// Op is the operation kind of one recorded event.
type Op uint8

const (
	OpInsert Op = iota
	OpLookup
	OpDelete
	opCount
)

// String returns the Prometheus label value for the op.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpLookup:
		return "lookup"
	case OpDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// Event is one recorded operation. It is a plain value — building and
// recording one performs no allocation.
type Event struct {
	Op Op `json:"-"`
	// Status is the kv.Status of an insert (unused otherwise).
	Status uint8 `json:"-"`
	// Hit reports a found key: lookup hit, or delete that removed.
	Hit bool `json:"hit"`
	// Shard is the owning shard index, -1 for unsharded tables.
	Shard int32 `json:"shard"`
	// Kicks is the insert's kick-path length.
	Kicks int32 `json:"kicks"`
	// OffChip is the number of off-chip memory accesses the operation
	// performed (reads + writes).
	OffChip int64 `json:"off_chip"`
	// Nanos is the operation latency in nanoseconds (0 when the caller did
	// not time the op, e.g. inside batched operations).
	Nanos int64 `json:"nanos"`
	// KeyHash is a mixed hash of the operated key — enough to correlate
	// events on the same key without recording the key itself.
	KeyHash uint64 `json:"key_hash"`
}

// Gauges is the point-in-time state a scrape reports alongside the
// accumulated counters. The owning table supplies it, either live through
// SetGaugeSource (thread-safe tables) or pushed through StoreGauges
// (single-writer tables).
type Gauges struct {
	Items    int `json:"items"`
	Capacity int `json:"capacity"`
	// LoadRatio is distinct items over capacity, the paper's load metric.
	LoadRatio float64 `json:"load_ratio"`
	StashLen  int     `json:"stash_len"`
	// StashFlagDensity is the fraction of off-chip buckets whose stash flag
	// is set — the false-positive pressure on the stash pre-screen.
	StashFlagDensity float64 `json:"stash_flag_density"`
	// CopyHist[v] counts live items with v copies (index 0 unused): the
	// paper's redundancy balance. Fractions of occupied buckets at each V
	// are derived from it at export time.
	CopyHist []int64 `json:"copy_histogram,omitempty"`
	// Shards is the partition count, 0 for unsharded tables.
	Shards int `json:"shards,omitempty"`
	// MinShardLoad/MaxShardLoad expose the routing balance (0 when
	// unsharded or when every shard is empty).
	MinShardLoad float64 `json:"min_shard_load,omitempty"`
	MaxShardLoad float64 `json:"max_shard_load,omitempty"`
	// Ops are the table's lifetime operation counts, including the
	// auto-grow trigger outcomes.
	Ops kv.Stats `json:"ops"`
	// Detail carries table-specific extra state for the JSON endpoint
	// (e.g. per-shard statistics). Ignored by the Prometheus exporter.
	Detail any `json:"detail,omitempty"`
}

// Options configures a Sink.
type Options struct {
	// EventBuffer is the flight-recorder capacity (rounded up to a power of
	// two; default 1024, minimum 16).
	EventBuffer int
}

// Sink accumulates telemetry. All methods are safe for concurrent use and
// safe on a nil receiver (the disabled state).
type Sink struct {
	ops          [opCount]atomic.Int64
	insertStatus [4]atomic.Int64 // by kv.Status
	lookupHits   atomic.Int64
	lookupMisses atomic.Int64
	deletesHit   atomic.Int64

	latency   [opCount]Hist // ns, timed single ops only
	kicks     Hist          // per insert
	offInsert Hist          // off-chip accesses per insert
	offDelete Hist          // off-chip accesses per delete
	offPos    Hist          // off-chip accesses per positive lookup
	offNeg    Hist          // off-chip accesses per negative lookup

	corruptLoads atomic.Int64
	repairs      atomic.Int64
	repairDirty  atomic.Int64 // repairs that changed anything
	repairFixed  [6]atomic.Int64

	ring *Ring

	mu     sync.RWMutex
	source func() Gauges // live gauge source, nil when gauges are pushed
	cached Gauges        // last StoreGauges push

	started time.Time
}

// repairFixed slot names, aligned with the [6]atomic.Int64 above.
var repairKinds = [6]string{"counters", "flags", "hints", "aliens", "values", "stash_dropped"}

// New creates an enabled Sink.
func New(opts Options) *Sink {
	n := opts.EventBuffer
	if n <= 0 {
		n = 1024
	}
	return &Sink{ring: newRing(n), started: time.Now()}
}

// Enabled reports whether the sink records anything (false on nil).
func (s *Sink) Enabled() bool { return s != nil }

// Record accumulates one operation event: counters, the relevant histograms,
// and the flight recorder. It is lock-free and allocation-free.
func (s *Sink) Record(e Event) {
	if s == nil {
		return
	}
	op := e.Op
	if op >= opCount {
		return
	}
	s.ops[op].Add(1)
	switch op {
	case OpInsert:
		if e.Status < 4 {
			s.insertStatus[e.Status].Add(1)
		}
		s.kicks.Observe(int64(e.Kicks))
		s.offInsert.Observe(e.OffChip)
	case OpLookup:
		if e.Hit {
			s.lookupHits.Add(1)
			s.offPos.Observe(e.OffChip)
		} else {
			s.lookupMisses.Add(1)
			s.offNeg.Observe(e.OffChip)
		}
	case OpDelete:
		if e.Hit {
			s.deletesHit.Add(1)
		}
		s.offDelete.Observe(e.OffChip)
	}
	if e.Nanos > 0 {
		s.latency[op].Observe(e.Nanos)
	}
	s.ring.add(e)
}

// RecordCorruptLoad counts one snapshot-load rejection (*core.CorruptError).
func (s *Sink) RecordCorruptLoad() {
	if s == nil {
		return
	}
	s.corruptLoads.Add(1)
}

// RecordRepair accumulates one Repair pass report.
func (s *Sink) RecordRepair(r core.RepairReport) {
	if s == nil {
		return
	}
	s.repairs.Add(1)
	if r.Any() {
		s.repairDirty.Add(1)
	}
	for i, n := range [6]int{r.CountersFixed, r.FlagsFixed, r.HintsFixed,
		r.AliensCleared, r.ValuesFixed, r.StashDropped} {
		if n != 0 {
			s.repairFixed[i].Add(int64(n))
		}
	}
}

// SetGaugeSource registers a live gauge source called at scrape time. The
// source must be safe for concurrent use (the sharded table's is: it reads
// under the per-shard locks). Passing nil reverts to pushed gauges.
func (s *Sink) SetGaugeSource(fn func() Gauges) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.source = fn
	s.mu.Unlock()
}

// StoreGauges pushes a gauge snapshot, for single-writer tables whose state
// cannot be read concurrently: the owning goroutine samples, scrapes serve
// the last sample.
func (s *Sink) StoreGauges(g Gauges) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.cached = g
	s.mu.Unlock()
}

// gauges returns the freshest gauge view: the live source when registered,
// otherwise the last pushed snapshot.
func (s *Sink) gauges() Gauges {
	s.mu.RLock()
	src := s.source
	cached := s.cached
	s.mu.RUnlock()
	if src != nil {
		return src()
	}
	return cached
}

// Events returns the flight-recorder contents, oldest first.
func (s *Sink) Events() []Event {
	if s == nil {
		return nil
	}
	return s.ring.Events()
}

// counterSnapshot is the JSON view of the accumulated counters.
type counterSnapshot struct {
	Inserts      int64            `json:"inserts"`
	Lookups      int64            `json:"lookups"`
	Deletes      int64            `json:"deletes"`
	InsertStatus map[string]int64 `json:"insert_status"`
	LookupHits   int64            `json:"lookup_hits"`
	LookupMisses int64            `json:"lookup_misses"`
	DeletesHit   int64            `json:"deletes_hit"`
	CorruptLoads int64            `json:"corrupt_loads"`
	Repairs      int64            `json:"repairs"`
	RepairsDirty int64            `json:"repairs_dirty"`
	RepairFixed  map[string]int64 `json:"repair_fixed"`
}

func (s *Sink) counters() counterSnapshot {
	c := counterSnapshot{
		Inserts:      s.ops[OpInsert].Load(),
		Lookups:      s.ops[OpLookup].Load(),
		Deletes:      s.ops[OpDelete].Load(),
		InsertStatus: make(map[string]int64, 4),
		LookupHits:   s.lookupHits.Load(),
		LookupMisses: s.lookupMisses.Load(),
		DeletesHit:   s.deletesHit.Load(),
		CorruptLoads: s.corruptLoads.Load(),
		Repairs:      s.repairs.Load(),
		RepairsDirty: s.repairDirty.Load(),
		RepairFixed:  make(map[string]int64, 6),
	}
	for st := kv.Status(0); st < 4; st++ {
		c.InsertStatus[st.String()] = s.insertStatus[st].Load()
	}
	for i, name := range repairKinds {
		c.RepairFixed[name] = s.repairFixed[i].Load()
	}
	return c
}

// Snapshot is the full JSON view served at /debug/mccuckoo/stats.
type Snapshot struct {
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Gauges        Gauges                  `json:"gauges"`
	Counters      counterSnapshot         `json:"counters"`
	Histograms    map[string]HistSnapshot `json:"histograms"`
}

// Snapshot assembles the current state. Nil-safe (returns a zero snapshot).
func (s *Sink) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return Snapshot{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Gauges:        s.gauges(),
		Counters:      s.counters(),
		Histograms: map[string]HistSnapshot{
			"latency_insert_ns":  s.latency[OpInsert].Snapshot(),
			"latency_lookup_ns":  s.latency[OpLookup].Snapshot(),
			"latency_delete_ns":  s.latency[OpDelete].Snapshot(),
			"kick_path_length":   s.kicks.Snapshot(),
			"offchip_per_insert": s.offInsert.Snapshot(),
			"offchip_per_delete": s.offDelete.Snapshot(),
			"offchip_lookup_pos": s.offPos.Snapshot(),
			"offchip_lookup_neg": s.offNeg.Snapshot(),
		},
	}
}
