package telemetry

import (
	"fmt"
	"io"
	"strconv"

	"mccuckoo/internal/kv"
)

// Prometheus text exposition (version 0.0.4) of a Sink's state, written
// without any client library: the format is plain text and the metric set is
// fixed, so a hand-rolled writer keeps the repo dependency-free.
//
// Metric names, all under the mccuckoo_ prefix:
//
//	mccuckoo_ops_total{op}                          counter
//	mccuckoo_inserts_total{status}                  counter
//	mccuckoo_lookups_total{result}                  counter
//	mccuckoo_deletes_removed_total                  counter
//	mccuckoo_corrupt_loads_total                    counter
//	mccuckoo_repairs_total / repairs_dirty_total    counter
//	mccuckoo_repair_fixed_total{kind}               counter
//	mccuckoo_autogrow_{attempts,success,failures}_total (from table stats)
//	mccuckoo_stash_probes_total                     counter (from table stats)
//	mccuckoo_op_latency_seconds{op}                 histogram
//	mccuckoo_kick_path_length                       histogram
//	mccuckoo_offchip_accesses_per_insert            histogram
//	mccuckoo_offchip_accesses_per_delete            histogram
//	mccuckoo_offchip_accesses_per_lookup{result}    histogram
//	mccuckoo_items / capacity / load_ratio          gauge
//	mccuckoo_stash_len / stash_flag_density         gauge
//	mccuckoo_copy_count_items{copies}               gauge
//	mccuckoo_copy_bucket_fraction{copies}           gauge
//	mccuckoo_shards / shard_load_{min,max}          gauge
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) counter(name, labels string, v int64) {
	p.printf("%s%s %d\n", name, labels, v)
}

func (p *promWriter) gauge(name, labels string, v float64) {
	p.printf("%s%s %s\n", name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}

// hist writes one histogram in cumulative-bucket form. scale divides the raw
// bucket bounds (1e9 turns nanosecond buckets into seconds). Empty buckets
// between populated ones are elided to keep the exposition small; Prometheus
// interpolates cumulative buckets, so elision loses nothing.
func (p *promWriter) hist(name, labels string, s HistSnapshot, scale float64) {
	cum := int64(0)
	for i := 0; i < histBuckets; i++ {
		n := s.Buckets[i]
		cum += n
		if n == 0 && i != histBuckets-1 {
			continue
		}
		le := "+Inf"
		if ub := s.UpperBound(i); ub >= 0 {
			le = strconv.FormatFloat(float64(ub)/scale, 'g', -1, 64)
		}
		p.printf("%s_bucket%s %d\n", name, promLabels(labels, "le", le), cum)
	}
	p.printf("%s_sum%s %s\n", name, braced(labels), strconv.FormatFloat(float64(s.Sum)/scale, 'g', -1, 64))
	p.printf("%s_count%s %d\n", name, braced(labels), s.Count)
}

// promLabels merges a base label list ("op=\"insert\"" or "") with one extra
// label into a braced label set.
func promLabels(base, key, val string) string {
	if base == "" {
		return fmt.Sprintf("{%s=%q}", key, val)
	}
	return fmt.Sprintf("{%s,%s=%q}", base, key, val)
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// WriteHistogram writes one histogram snapshot in Prometheus cumulative-
// bucket exposition under name, for packages that keep their own Hist
// outside a Sink (the cluster tier's ack-skew histogram). labels is a raw
// label list ("peer=\"a\"" or ""); scale divides the raw bucket bounds (1e9
// turns nanosecond observations into seconds).
func WriteHistogram(w io.Writer, name, help, labels string, s HistSnapshot, scale float64) error {
	p := &promWriter{w: w}
	p.header(name, help, "histogram")
	p.hist(name, labels, s, scale)
	return p.err
}

// WritePrometheus writes the full exposition. Nil-safe: a nil sink writes
// nothing and returns nil.
func (s *Sink) WritePrometheus(w io.Writer) error {
	if s == nil {
		return nil
	}
	snap := s.Snapshot()
	p := &promWriter{w: w}

	p.header("mccuckoo_ops_total", "Operations recorded, by kind.", "counter")
	for op := Op(0); op < opCount; op++ {
		p.counter("mccuckoo_ops_total", fmt.Sprintf("{op=%q}", op.String()), s.ops[op].Load())
	}
	p.header("mccuckoo_inserts_total", "Insert outcomes, by status.", "counter")
	for st := kv.Status(0); st < 4; st++ {
		p.counter("mccuckoo_inserts_total", fmt.Sprintf("{status=%q}", st.String()),
			s.insertStatus[st].Load())
	}
	p.header("mccuckoo_lookups_total", "Lookups, by result.", "counter")
	p.counter("mccuckoo_lookups_total", `{result="hit"}`, snap.Counters.LookupHits)
	p.counter("mccuckoo_lookups_total", `{result="miss"}`, snap.Counters.LookupMisses)
	p.header("mccuckoo_deletes_removed_total", "Deletes that removed a live key.", "counter")
	p.counter("mccuckoo_deletes_removed_total", "", snap.Counters.DeletesHit)

	p.header("mccuckoo_corrupt_loads_total", "Snapshot loads rejected as corrupt.", "counter")
	p.counter("mccuckoo_corrupt_loads_total", "", snap.Counters.CorruptLoads)
	p.header("mccuckoo_repairs_total", "Repair passes run.", "counter")
	p.counter("mccuckoo_repairs_total", "", snap.Counters.Repairs)
	p.header("mccuckoo_repairs_dirty_total", "Repair passes that changed state.", "counter")
	p.counter("mccuckoo_repairs_dirty_total", "", snap.Counters.RepairsDirty)
	p.header("mccuckoo_repair_fixed_total", "Repair fixes applied, by kind.", "counter")
	for _, kind := range repairKinds {
		p.counter("mccuckoo_repair_fixed_total", fmt.Sprintf("{kind=%q}", kind), snap.Counters.RepairFixed[kind])
	}

	// Lifetime table stats surfaced as counters: they are monotonic on the
	// table, so scrapes see valid counter semantics even though the values
	// come from the gauge source.
	ops := snap.Gauges.Ops
	p.header("mccuckoo_autogrow_attempts_total", "Grow calls made by the auto-grow policy.", "counter")
	p.counter("mccuckoo_autogrow_attempts_total", "", ops.GrowAttempts)
	p.header("mccuckoo_autogrow_success_total", "Auto-grow episodes that drained the stash under threshold.", "counter")
	p.counter("mccuckoo_autogrow_success_total", "", ops.Grows)
	p.header("mccuckoo_autogrow_failures_total", "Grow calls that returned an error.", "counter")
	p.counter("mccuckoo_autogrow_failures_total", "", ops.GrowFailures)
	p.header("mccuckoo_stash_probes_total", "Lookups/deletes that had to consult the stash.", "counter")
	p.counter("mccuckoo_stash_probes_total", "", ops.StashProbe)
	p.header("mccuckoo_table_kicks_total", "Total kick-outs performed by inserts.", "counter")
	p.counter("mccuckoo_table_kicks_total", "", ops.Kicks)

	p.header("mccuckoo_op_latency_seconds", "Per-operation latency (timed single ops).", "histogram")
	for op := Op(0); op < opCount; op++ {
		p.hist("mccuckoo_op_latency_seconds", fmt.Sprintf("op=%q", op.String()),
			s.latency[op].Snapshot(), 1e9)
	}
	// The next four histograms are dimensionless by design — they count
	// kicks and memory touches, the paper's §IV cost metrics, not time —
	// so the _seconds histogram convention does not apply. Renaming them
	// would break every recorded scrape and the exporter tests.
	//mcvet:allow metriclint kick-path length counts hops per insert, not a duration
	p.header("mccuckoo_kick_path_length", "Kick-path length per insert.", "histogram")
	p.hist("mccuckoo_kick_path_length", "", s.kicks.Snapshot(), 1)
	//mcvet:allow metriclint off-chip access histogram counts memory touches, not a duration
	p.header("mccuckoo_offchip_accesses_per_insert", "Off-chip memory accesses per insert.", "histogram")
	p.hist("mccuckoo_offchip_accesses_per_insert", "", s.offInsert.Snapshot(), 1)
	//mcvet:allow metriclint off-chip access histogram counts memory touches, not a duration
	p.header("mccuckoo_offchip_accesses_per_delete", "Off-chip memory accesses per delete.", "histogram")
	p.hist("mccuckoo_offchip_accesses_per_delete", "", s.offDelete.Snapshot(), 1)
	//mcvet:allow metriclint off-chip access histogram counts memory touches, not a duration
	p.header("mccuckoo_offchip_accesses_per_lookup", "Off-chip memory accesses per lookup, split by result.", "histogram")
	p.hist("mccuckoo_offchip_accesses_per_lookup", `result="positive"`, s.offPos.Snapshot(), 1)
	p.hist("mccuckoo_offchip_accesses_per_lookup", `result="negative"`, s.offNeg.Snapshot(), 1)

	g := snap.Gauges
	p.header("mccuckoo_items", "Distinct live items (stash included).", "gauge")
	p.gauge("mccuckoo_items", "", float64(g.Items))
	p.header("mccuckoo_capacity", "Total main-table slots.", "gauge")
	p.gauge("mccuckoo_capacity", "", float64(g.Capacity))
	p.header("mccuckoo_load_ratio", "Items over capacity, the paper's load metric.", "gauge")
	p.gauge("mccuckoo_load_ratio", "", g.LoadRatio)
	p.header("mccuckoo_stash_len", "Items currently in the overflow stash.", "gauge")
	p.gauge("mccuckoo_stash_len", "", float64(g.StashLen))
	p.header("mccuckoo_stash_flag_density", "Fraction of buckets with the stash flag set.", "gauge")
	p.gauge("mccuckoo_stash_flag_density", "", g.StashFlagDensity)

	if len(g.CopyHist) > 0 {
		occupied := int64(0)
		for v := 1; v < len(g.CopyHist); v++ {
			occupied += int64(v) * g.CopyHist[v]
		}
		p.header("mccuckoo_copy_count_items", "Live items by copy count (the redundancy distribution).", "gauge")
		for v := 1; v < len(g.CopyHist); v++ {
			p.gauge("mccuckoo_copy_count_items", fmt.Sprintf("{copies=%q}", strconv.Itoa(v)), float64(g.CopyHist[v]))
		}
		p.header("mccuckoo_copy_bucket_fraction", "Fraction of occupied buckets holding items with V copies.", "gauge")
		for v := 1; v < len(g.CopyHist); v++ {
			frac := 0.0
			if occupied > 0 {
				frac = float64(int64(v)*g.CopyHist[v]) / float64(occupied)
			}
			p.gauge("mccuckoo_copy_bucket_fraction", fmt.Sprintf("{copies=%q}", strconv.Itoa(v)), frac)
		}
	}

	if g.Shards > 0 {
		p.header("mccuckoo_shards", "Partition count.", "gauge")
		p.gauge("mccuckoo_shards", "", float64(g.Shards))
		p.header("mccuckoo_shard_load_min", "Lowest per-shard load ratio.", "gauge")
		p.gauge("mccuckoo_shard_load_min", "", g.MinShardLoad)
		p.header("mccuckoo_shard_load_max", "Highest per-shard load ratio.", "gauge")
		p.gauge("mccuckoo_shard_load_max", "", g.MaxShardLoad)
	}

	p.header("mccuckoo_uptime_seconds", "Seconds since the sink was created.", "gauge")
	p.gauge("mccuckoo_uptime_seconds", "", snap.UptimeSeconds)
	return p.err
}
