package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of log2 buckets a Hist keeps. Bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Bucket 0
// holds exact zeros and the last bucket absorbs everything at or beyond
// 2^(histBuckets-2) — about 37 minutes when v is nanoseconds, far past any
// per-op tail worth distinguishing, and ~10^12 when v counts memory accesses
// or kicks.
const histBuckets = 42

// Hist is a fixed-size log2-bucketed histogram safe for concurrent use. All
// state is atomic; Observe performs two atomic adds and no allocation, which
// is what lets the histograms sit on the operation hot path. The zero value
// is ready to use.
type Hist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistSnapshot is a point-in-time copy of a Hist. Counts and Sum are read
// bucket by bucket, not as one atomic cut, so a snapshot taken under load can
// be off by the handful of operations that landed mid-read — fine for
// monitoring, which is the only consumer.
type HistSnapshot struct {
	// Buckets[i] counts samples in [2^(i-1), 2^i); Buckets[0] counts zeros.
	Buckets [histBuckets]int64 `json:"buckets"`
	Count   int64              `json:"count"`
	Sum     int64              `json:"sum"`
}

// Snapshot copies the current bucket counts.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// UpperBound returns the inclusive upper bound of bucket i (2^i - 1), the
// "le" value of the Prometheus exposition.
func (s HistSnapshot) UpperBound(i int) int64 {
	if i >= histBuckets-1 {
		return -1 // +Inf
	}
	return int64(1)<<uint(i) - 1
}

// Mean returns the average observed value, 0 with no samples.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
