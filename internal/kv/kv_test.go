package kv

import "testing"

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		Placed:      "placed",
		Updated:     "updated",
		Stashed:     "stashed",
		Failed:      "failed",
		Status(200): "unknown",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestKickPolicyString(t *testing.T) {
	cases := map[KickPolicy]string{
		RandomWalk:      "random-walk",
		MinCounter:      "min-counter",
		BFS:             "bfs",
		KickPolicy(200): "unknown",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("KickPolicy(%d).String() = %q, want %q", p, got, want)
		}
	}
}
