// Package kv defines the small vocabulary shared by every hash-table scheme
// in this repository: 64-bit key/value entries, insertion outcomes, and the
// Table interface the experiment harness drives. Keys model the paper's
// DocID‖WordID items; values are opaque 64-bit payloads (an address when the
// table is used as an index, per §III.H's multiset discussion).
package kv

import "mccuckoo/internal/memmodel"

// Entry is one key/value item stored in a table.
type Entry struct {
	Key   uint64
	Value uint64
}

// KickPolicy selects how a victim is chosen when a collision forces an
// eviction. Shared by the baselines and the McCuckoo tables (§III.D: "any
// collision resolution algorithm can be used").
type KickPolicy uint8

const (
	// RandomWalk picks a uniformly random candidate, avoiding the bucket
	// the current item was just evicted from. This is the resolver used
	// throughout the paper's evaluation.
	RandomWalk KickPolicy = iota
	// MinCounter keeps a 5-bit kick counter per bucket (on-chip) and
	// evicts from the candidate with the smallest count (MinCounter,
	// MSST'15).
	MinCounter
	// BFS searches the eviction graph breadth-first for the shortest
	// relocation path to a free slot, the original cuckoo strategy the
	// paper contrasts with random walks ("probe for one in BFS order",
	// §I). Only the single-copy baselines implement it.
	BFS
)

// String returns the policy name.
func (p KickPolicy) String() string {
	switch p {
	case RandomWalk:
		return "random-walk"
	case MinCounter:
		return "min-counter"
	case BFS:
		return "bfs"
	default:
		return "unknown"
	}
}

// Status classifies how an insertion ended.
type Status uint8

const (
	// Placed means the item now lives in the main table.
	Placed Status = iota
	// Updated means the key already existed and its value was replaced.
	Updated
	// Stashed means collision resolution failed and the item went to the
	// stash.
	Stashed
	// Failed means the insertion could not be completed at all (no stash,
	// or the stash is full).
	Failed
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case Placed:
		return "placed"
	case Updated:
		return "updated"
	case Stashed:
		return "stashed"
	case Failed:
		return "failed"
	default:
		return "unknown"
	}
}

// Outcome reports what an insertion did.
type Outcome struct {
	Status Status
	// Kicks is the number of item relocations (kick-outs) this insertion
	// performed. Fig. 9 averages this quantity.
	Kicks int
}

// Stats aggregates lifetime operation counts for a table. The snake_case
// JSON names are the stable wire contract of the telemetry JSON endpoints;
// the rarely-populated fields are omitempty so an idle table serializes
// compactly.
type Stats struct {
	Inserts    int64 `json:"inserts"`            // insertion attempts
	Updates    int64 `json:"updates,omitempty"`  // inserts that replaced an existing key
	Kicks      int64 `json:"kicks,omitempty"`    // total kick-outs across all inserts
	Stashed    int64 `json:"stashed,omitempty"`  // inserts that overflowed into the stash
	Failures   int64 `json:"failures,omitempty"` // inserts that failed outright
	Lookups    int64 `json:"lookups"`
	Hits       int64 `json:"hits"`
	Deletes    int64 `json:"deletes"`
	StashProbe int64 `json:"stash_probes,omitempty"` // lookups/deletes that had to consult the stash

	// Auto-grow outcomes (core.AutoGrowPolicy): GrowAttempts counts
	// individual Grow calls made by the policy, Grows the triggers that
	// ended with the stash back under threshold, GrowFailures the Grow
	// calls that returned an error.
	GrowAttempts int64 `json:"grow_attempts,omitempty"`
	Grows        int64 `json:"grows,omitempty"`
	GrowFailures int64 `json:"grow_failures,omitempty"`
}

// Table is the interface every scheme implements: the two baselines
// (standard d-ary cuckoo, BCHT) and the two multi-copy schemes (McCuckoo,
// B-McCuckoo). All tables are single-writer; see core.Concurrent for the
// one-writer-many-readers wrapper.
type Table interface {
	// Insert stores key/value, replacing the value if key is present.
	Insert(key, value uint64) Outcome
	// Lookup returns the value stored for key.
	Lookup(key uint64) (uint64, bool)
	// Delete removes key, reporting whether it was present.
	Delete(key uint64) bool
	// Len returns the number of distinct live items (main table + stash).
	Len() int
	// Capacity returns the total number of slots in the main table.
	Capacity() int
	// LoadRatio returns Len()/Capacity(), the paper's load metric
	// (distinct items against table size).
	LoadRatio() float64
	// Meter exposes the memory-traffic counters.
	Meter() *memmodel.Meter
	// Stats exposes lifetime operation counts.
	Stats() Stats
	// StashLen returns the number of items currently in the stash
	// (0 for schemes without one).
	StashLen() int
}
