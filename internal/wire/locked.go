package wire

import (
	"sync"

	"mccuckoo"
)

// Locked wraps any BatchStore behind one mutex, making it safe for the
// server's many-connection concurrency. It is the serving adapter for the
// single-writer kinds (Table, Blocked): correctness over parallelism. For
// parallel serving use a Sharded table, which needs no wrapper.
type Locked struct {
	mu sync.Mutex
	//mcvet:guardedby mu
	inner mccuckoo.BatchStore
}

var _ mccuckoo.BatchStore = (*Locked)(nil)

// NewLocked wraps inner. The caller must not touch inner directly
// afterwards except through Do.
func NewLocked(inner mccuckoo.BatchStore) *Locked {
	return &Locked{inner: inner}
}

// Do runs fn with the lock held, giving exclusive access to the wrapped
// store — the checkpointing hook: mcserved snapshots a locked table with
// Do(func(s) { mccuckoo.SaveFile(...) }) while requests wait.
func (l *Locked) Do(fn func(mccuckoo.BatchStore)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fn(l.inner)
}

// Range forwards to the wrapped store's Range under the lock, so a
// Replicated over a Locked single-writer kind can seed its bookkeeping.
// It is a no-op when the wrapped store has no Range.
func (l *Locked) Range(fn func(key, value uint64) bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if rng, ok := l.inner.(Ranger); ok {
		rng.Range(fn)
	}
}

func (l *Locked) Insert(key, value uint64) mccuckoo.InsertResult {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Insert(key, value)
}

func (l *Locked) Lookup(key uint64) (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Lookup(key)
}

func (l *Locked) Delete(key uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Delete(key)
}

func (l *Locked) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Len()
}

func (l *Locked) Capacity() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Capacity()
}

func (l *Locked) LoadRatio() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.LoadRatio()
}

func (l *Locked) StashLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.StashLen()
}

func (l *Locked) Stats() mccuckoo.Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Stats()
}

func (l *Locked) InsertBatch(keys, values []uint64) []mccuckoo.InsertResult {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.InsertBatch(keys, values)
}

func (l *Locked) InsertBatchInto(keys, values []uint64, out []mccuckoo.InsertResult) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.InsertBatchInto(keys, values, out)
}

func (l *Locked) LookupBatch(keys []uint64) ([]uint64, []bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.LookupBatch(keys)
}

func (l *Locked) LookupBatchInto(keys []uint64, values []uint64, found []bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.LookupBatchInto(keys, values, found)
}

func (l *Locked) DeleteBatch(keys []uint64) []bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.DeleteBatch(keys)
}

func (l *Locked) DeleteBatchInto(keys []uint64, removed []bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.DeleteBatchInto(keys, removed)
}
