package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"mccuckoo"
	"mccuckoo/internal/atomicio"
	"mccuckoo/internal/hashutil"
)

// This file is the server half of the cluster tier (DESIGN.md §11):
// Replicated wraps any concurrency-safe BatchStore with the per-key
// sequence-number bookkeeping that makes multi-copy replication converge —
// newest-write-wins applies, deletion tombstones, an op-log ring feeding
// SUBSCRIBE streams, and an order-independent state digest that lets two
// replicas prove byte-identical convergence over the wire.

// Ranger is the iteration capability of the concrete table kinds; a
// Replicated over a Ranger seeds its per-key bookkeeping from preloaded
// data (a -load snapshot) that predates sequence tracking.
type Ranger interface {
	Range(fn func(key, value uint64) bool)
}

// seededSeq is the sequence number assigned to keys found in the store
// before any tracked write: older than every real write (real sequence
// numbers are hybrid-clock values), so any replicated entry supersedes
// them.
const seededSeq = 1

// ReplicaConfig configures a Replicated. The zero value is usable.
type ReplicaConfig struct {
	// OplogSize is the op-log ring capacity in entries (default 65536). A
	// subscriber that falls more than this many mutations behind is forced
	// into a full resynchronization.
	OplogSize int
}

// Replicated wraps a BatchStore with multi-copy replication state. All
// mutations — local (the plain BatchStore methods), pushed (REPLICATE
// requests: cluster writes and read-repair), and streamed (op-log
// subscriptions) — funnel through one versioned apply: an entry is applied
// only if its sequence number is strictly newer than the key's current one,
// so replicas that receive the same entries in any order converge to the
// same state. Deletes leave a tombstone carrying the deletion's sequence
// number, which stops a stale PUT from resurrecting the key.
//
// The wrapped store must itself be safe for concurrent use (Sharded, or a
// single-writer kind behind Locked); Replicated adds its own lock only
// around the versioning bookkeeping, and read-only Store methods pass
// through unlocked.
type Replicated struct {
	inner mccuckoo.BatchStore

	mu sync.RWMutex
	//mcvet:guardedby mu
	seqs map[uint64]uint64 // key -> meta: seq<<1 | tombstone bit
	//mcvet:guardedby mu
	applied uint64 // highest sequence number applied
	//mcvet:guardedby mu
	localSeq uint64 // last sequence number issued or seen; local writes use localSeq+1
	//mcvet:guardedby mu
	baseSeq uint64 // mutations at or below this predate the op log
	//mcvet:guardedby mu
	digest uint64 // XOR of DigestTerm over every tracked key
	//mcvet:guardedby mu
	tombs int
	//mcvet:guardedby mu
	log *opLog
	//mcvet:guardedby mu
	subs map[*logSub]struct{}
	// filter restricts DigestRange to keys the requesting peer co-owns
	// with this node (set by the cluster tier; nil means no restriction).
	// Kept ring-agnostic: package wire never imports the ring.
	//mcvet:guardedby mu
	filter func(peer string, key uint64) bool

	entriesApplied atomic.Int64
	entriesStale   atomic.Int64
	applyFailures  atomic.Int64
	repairApplied  atomic.Int64
	fullSyncs      atomic.Int64
	sidecarDrops   atomic.Int64
}

var _ mccuckoo.BatchStore = (*Replicated)(nil)

// NewReplicated wraps inner. If inner is non-empty and supports Range (all
// concrete kinds do; Locked forwards it), its keys are seeded at an ancient
// sequence number so they participate in state dumps and version
// comparisons; LoadSidecar afterwards replaces the seeded bookkeeping with
// the persisted one.
func NewReplicated(inner mccuckoo.BatchStore, cfg ReplicaConfig) *Replicated {
	if cfg.OplogSize <= 0 {
		cfg.OplogSize = 1 << 16
	}
	r := &Replicated{
		inner: inner,
		seqs:  make(map[uint64]uint64),
		log:   newOpLog(cfg.OplogSize),
		subs:  make(map[*logSub]struct{}),
	}
	if rng, ok := inner.(Ranger); ok && inner.Len() > 0 {
		r.mu.Lock()
		meta := uint64(seededSeq) << 1
		rng.Range(func(key, value uint64) bool {
			r.seqs[key] = meta
			r.digest ^= DigestTerm(key, value, meta)
			return true
		})
		r.applied = seededSeq
		r.localSeq = seededSeq
		r.baseSeq = seededSeq
		r.mu.Unlock()
	}
	return r
}

// Inner returns the wrapped store (for checkpointing by the owner).
func (r *Replicated) Inner() mccuckoo.BatchStore { return r.inner }

// Applied returns the highest sequence number applied so far — the resume
// point a subscriber presents to its peers.
func (r *Replicated) Applied() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.applied
}

// Digest returns the order-independent state checksum: XOR over every
// tracked key of DigestTerm(key, value, meta). Two replicas tracking the
// same key set hold byte-identical data iff their digests match.
func (r *Replicated) Digest() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.digest
}

// DigestTerm is one key's contribution to the replica digest. Exported so
// a convergence check can compute the expected digest from wire reads.
// value must be 0 for tombstones; meta is seq<<1 with the low bit set for
// tombstones (the encoding VGet reports).
//
//mcvet:deterministic
func DigestTerm(key, value, meta uint64) uint64 {
	return hashutil.Mix64(hashutil.Mix64(hashutil.Mix64(key)^value) ^ meta)
}

// SetDigestFilter installs the ownership filter applied by DigestRange: a
// key contributes to a peer's range digest only when fn(peer, key) is true.
// The cluster tier sets fn to "peer owns key AND this node owns key" so the
// two sides of an anti-entropy exchange digest the same key set; nil
// removes the restriction.
func (r *Replicated) SetDigestFilter(fn func(peer string, key uint64) bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.filter = fn
}

// DigestRange computes the XOR digest over tracked keys in [lo, hi] that
// pass the digest filter for peer, plus their count. When the count is at
// most maxKeys the keys are enumerated as (key, meta) pairs — the
// reconciliation unit for anti-entropy bisection. maxKeys <= 0 disables
// enumeration.
func (r *Replicated) DigestRange(peer string, lo, hi uint64, maxKeys int) (digest, count uint64, keys []DigestEntry) {
	if maxKeys > MaxDigestKeys {
		maxKeys = MaxDigestKeys
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for k, meta := range r.seqs {
		if k < lo || k > hi {
			continue
		}
		if r.filter != nil && !r.filter(peer, k) {
			continue
		}
		var val uint64
		if meta&1 == 0 {
			if v, ok := r.inner.Lookup(k); ok {
				val = v
			}
		}
		digest ^= DigestTerm(k, val, meta)
		count++
		if maxKeys > 0 && len(keys) < maxKeys {
			keys = append(keys, DigestEntry{Key: k, Meta: meta})
		}
	}
	if uint64(len(keys)) < count {
		// The range overflowed the enumeration budget: the caller must
		// bisect, so a partial listing is only misleading.
		keys = nil
	}
	return digest, count, keys
}

// CompactTombstones drops tombstones whose deletion sequence number is
// strictly below beforeSeq, returning how many were reclaimed. The caller
// owns the safety argument: a tombstone may only be dropped once every
// replica has applied past its sequence number, otherwise a partitioned
// replica's stale PUT could resurrect the key. Digest terms are XORed out,
// so two replicas compacting at the same watermark keep equal digests.
func (r *Replicated) CompactTombstones(beforeSeq uint64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for k, meta := range r.seqs {
		if meta&1 == 1 && meta>>1 < beforeSeq {
			r.digest ^= DigestTerm(k, 0, meta)
			delete(r.seqs, k)
			r.tombs--
			n++
		}
	}
	return n
}

// MetaOf rebuilds the internal meta word from a VGET response, for digest
// computations: seq<<1, low bit set when the state is a tombstone.
func MetaOf(seq uint64, tomb bool) uint64 {
	m := seq << 1
	if tomb {
		m |= 1
	}
	return m
}

// applyLocked is the single mutation path. It returns the apply status
// plus the inner store's results for the caller-facing unversioned
// wrappers.
//
//mcvet:locked
func (r *Replicated) applyLocked(e Entry) (status byte, res mccuckoo.InsertResult, removed bool) {
	meta, seen := r.seqs[e.Key]
	if e.Seq == 0 || (seen && e.Seq <= meta>>1) {
		r.entriesStale.Add(1)
		return ApplyStale, res, false
	}
	var oldTerm uint64
	if seen {
		var oldVal uint64
		if meta&1 == 0 {
			if v, ok := r.inner.Lookup(e.Key); ok {
				oldVal = v
			}
		}
		oldTerm = DigestTerm(e.Key, oldVal, meta)
	}
	newMeta := e.Seq << 1
	var newVal uint64
	switch e.Op {
	case OpPut:
		res = r.inner.Insert(e.Key, e.Value)
		if res.Status == mccuckoo.Failed {
			// The write should have won but the table had no room. The
			// sequence number is NOT advanced, so a later retry (or
			// read-repair) can still land it.
			r.applyFailures.Add(1)
			return ApplyFailed, res, false
		}
		newVal = e.Value
	case OpDel:
		removed = r.inner.Delete(e.Key)
		newMeta |= 1
	}
	if wasTomb, isTomb := seen && meta&1 == 1, e.Op == OpDel; isTomb && !wasTomb {
		r.tombs++
	} else if wasTomb && !isTomb {
		r.tombs--
	}
	r.seqs[e.Key] = newMeta
	r.digest ^= oldTerm ^ DigestTerm(e.Key, newVal, newMeta)
	if e.Seq > r.applied {
		r.applied = e.Seq
	}
	if e.Seq > r.localSeq {
		r.localSeq = e.Seq
	}
	r.log.append(e)
	r.notifyLocked()
	r.entriesApplied.Add(1)
	return ApplyApplied, res, removed
}

//mcvet:locked
func (r *Replicated) notifyLocked() {
	for sub := range r.subs {
		select {
		case sub.notify <- struct{}{}:
		default:
		}
	}
}

// ApplyPush applies pushed entries (a REPLICATE request: a cluster write or
// a read-repair) and returns one apply status per entry.
func (r *Replicated) ApplyPush(ents []Entry, statuses []byte) []byte {
	if cap(statuses) < len(ents) {
		statuses = make([]byte, len(ents))
	}
	statuses = statuses[:len(ents)]
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, e := range ents {
		st, _, _ := r.applyLocked(e)
		statuses[i] = st
		if st == ApplyApplied {
			r.repairApplied.Add(1)
		}
	}
	return statuses
}

// ApplyStream applies entries received from an op-log subscription,
// reporting how many were applied, stale, and failed.
func (r *Replicated) ApplyStream(ents []Entry) (applied, stale, failed int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range ents {
		switch st, _, _ := r.applyLocked(e); st {
		case ApplyApplied:
			applied++
		case ApplyStale:
			stale++
		case ApplyFailed:
			failed++
		}
	}
	return applied, stale, failed
}

// VGet reports a key's replication state: VStateLive with its value and
// last-write sequence number, VStateTomb with the deletion's sequence
// number, or VStateMissing (seq 0) for a key this replica has never seen.
func (r *Replicated) VGet(key uint64) (state byte, value, seq uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	meta, ok := r.seqs[key]
	if !ok {
		return VStateMissing, 0, 0
	}
	if meta&1 == 1 {
		return VStateTomb, 0, meta >> 1
	}
	v, found := r.inner.Lookup(key)
	if !found {
		// A live meta without a value means the pair predates sequence
		// tracking and diverged (stale sidecar); report missing so
		// read-repair re-fills it.
		return VStateMissing, 0, 0
	}
	return VStateLive, v, meta >> 1
}

// --- op-log subscriptions ---

// logSub is one subscriber's cursor into the op log. The cursor is owned
// by the serving goroutine; notify (capacity 1) is poked on every append.
type logSub struct {
	cursor uint64
	notify chan struct{}
}

// subscribe registers a subscriber resuming after fromSeq. When fromSeq
// predates what the op log retains, full is true and dumpKeys holds a
// consistent snapshot of every tracked key: the subscriber gets a full
// state dump (dumpEntries over those keys) before the incremental stream.
// head is the replica's current high-water sequence number.
func (r *Replicated) subscribe(fromSeq uint64) (sub *logSub, head uint64, full bool, dumpKeys []uint64) {
	sub = &logSub{notify: make(chan struct{}, 1)}
	r.mu.Lock()
	defer r.mu.Unlock()
	bound := r.log.droppedSeqMax
	if r.baseSeq > bound {
		bound = r.baseSeq
	}
	full = fromSeq < bound
	if full {
		r.fullSyncs.Add(1)
		sub.cursor = r.log.next
		dumpKeys = make([]uint64, 0, len(r.seqs))
		for k := range r.seqs {
			dumpKeys = append(dumpKeys, k)
		}
	} else {
		sub.cursor = r.log.first
	}
	r.subs[sub] = struct{}{}
	return sub, r.applied, full, dumpKeys
}

func (r *Replicated) unsubscribe(sub *logSub) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.subs, sub)
}

// pull copies the next batch of op-log entries at the subscriber's cursor
// into dst's capacity. overrun reports the cursor fell behind the ring —
// the subscriber must resubscribe (and will be offered a full dump).
func (r *Replicated) pull(sub *logSub, dst []Entry) (ents []Entry, head uint64, overrun bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ents, sub.cursor, overrun = r.log.copySince(sub.cursor, dst)
	return ents, r.applied, overrun
}

// dumpEntries renders a chunk of tracked keys as replication entries: live
// keys as PUTs, tombstones as DELs, each carrying its recorded sequence
// number. Keys whose value has since vanished are skipped; the incremental
// stream that follows the dump carries their newer state.
func (r *Replicated) dumpEntries(keys []uint64, dst []Entry) []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, k := range keys {
		meta, ok := r.seqs[k]
		if !ok {
			continue
		}
		if meta&1 == 1 {
			dst = append(dst, Entry{Seq: meta >> 1, Op: OpDel, Key: k})
			continue
		}
		v, found := r.inner.Lookup(k)
		if !found {
			continue
		}
		dst = append(dst, Entry{Seq: meta >> 1, Op: OpPut, Key: k, Value: v})
	}
	return dst
}

// --- the BatchStore surface ---

// nextSeqLocked issues a sequence number for an unversioned local write:
// strictly above everything applied or issued before it on this replica.
//
//mcvet:locked
func (r *Replicated) nextSeqLocked() uint64 {
	r.localSeq++
	return r.localSeq
}

func (r *Replicated) Insert(key, value uint64) mccuckoo.InsertResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, res, _ := r.applyLocked(Entry{Seq: r.nextSeqLocked(), Op: OpPut, Key: key, Value: value})
	return res
}

func (r *Replicated) Delete(key uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, _, removed := r.applyLocked(Entry{Seq: r.nextSeqLocked(), Op: OpDel, Key: key})
	return removed
}

// Lookup passes through: plain reads need no version bookkeeping and the
// wrapped store is concurrency-safe by contract.
func (r *Replicated) Lookup(key uint64) (uint64, bool) { return r.inner.Lookup(key) }

func (r *Replicated) Len() int           { return r.inner.Len() }
func (r *Replicated) Capacity() int      { return r.inner.Capacity() }
func (r *Replicated) LoadRatio() float64 { return r.inner.LoadRatio() }
func (r *Replicated) StashLen() int      { return r.inner.StashLen() }

func (r *Replicated) Stats() mccuckoo.Stats { return r.inner.Stats() }

func (r *Replicated) InsertBatch(keys, values []uint64) []mccuckoo.InsertResult {
	out := make([]mccuckoo.InsertResult, len(keys))
	r.InsertBatchInto(keys, values, out)
	return out
}

func (r *Replicated) InsertBatchInto(keys, values []uint64, out []mccuckoo.InsertResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, k := range keys {
		_, res, _ := r.applyLocked(Entry{Seq: r.nextSeqLocked(), Op: OpPut, Key: k, Value: values[i]})
		if out != nil {
			out[i] = res
		}
	}
}

func (r *Replicated) LookupBatch(keys []uint64) ([]uint64, []bool) {
	return r.inner.LookupBatch(keys)
}

func (r *Replicated) LookupBatchInto(keys []uint64, values []uint64, found []bool) {
	r.inner.LookupBatchInto(keys, values, found)
}

func (r *Replicated) DeleteBatch(keys []uint64) []bool {
	out := make([]bool, len(keys))
	r.DeleteBatchInto(keys, out)
	return out
}

func (r *Replicated) DeleteBatchInto(keys []uint64, removed []bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, k := range keys {
		_, _, rm := r.applyLocked(Entry{Seq: r.nextSeqLocked(), Op: OpDel, Key: k})
		if removed != nil {
			removed[i] = rm
		}
	}
}

// --- sidecar persistence ---

// The sidecar file persists the replication bookkeeping next to the value
// snapshot: applied seq plus every key's meta word, CRC32C-guarded like
// every other on-disk artifact here (§7). A node restarted with both files
// resumes its subscriptions from the persisted seq instead of a full
// resynchronization.

const (
	sidecarMagic   = "MCRS"
	sidecarVersion = 1
)

// SidecarError is the typed rejection for a corrupt or mismatched sidecar
// file; the caller should fall back to a full resynchronization.
type SidecarError struct{ Reason string }

func (e *SidecarError) Error() string { return "wire: replica sidecar: " + e.Reason }

// CheckpointWith atomically checkpoints the pair (values, bookkeeping):
// saveValues runs with all mutations excluded, then the sidecar is written
// while the lock is still held, so the two files always describe the same
// state. A crash between the two writes leaves a values file newer than
// the sidecar, which LoadSidecar tolerates (the op-log catch-up replays
// the gap).
func (r *Replicated) CheckpointWith(saveValues func() error, sidecarPath string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := saveValues(); err != nil {
		return err
	}
	return r.saveSidecarLocked(sidecarPath)
}

// SaveSidecar writes the bookkeeping sidecar on its own (for tests and
// callers that quiesce writes themselves).
func (r *Replicated) SaveSidecar(path string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.saveSidecarLocked(path)
}

// saveSidecarLocked writes the sidecar: header, sorted (key, meta) pairs,
// trailing CRC32C over everything before it.
//
//mcvet:locked
//mcvet:deterministic
func (r *Replicated) saveSidecarLocked(path string) error {
	keys := make([]uint64, 0, len(r.seqs))
	for k := range r.seqs { //mcvet:allow nodeterminism keys are sorted before writing
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return atomicio.WriteFile(path, func(f *os.File) error {
		crc := crc32.New(castagnoli)
		w := bufio.NewWriter(io.MultiWriter(f, crc))
		var hdr [24]byte
		copy(hdr[0:4], sidecarMagic)
		binary.LittleEndian.PutUint32(hdr[4:8], sidecarVersion)
		binary.LittleEndian.PutUint64(hdr[8:16], r.applied)
		binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(keys)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		var rec [16]byte
		for _, k := range keys {
			binary.LittleEndian.PutUint64(rec[0:8], k)
			binary.LittleEndian.PutUint64(rec[8:16], r.seqs[k])
			if _, err := w.Write(rec[:]); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
		_, err := f.Write(tail[:])
		return err
	})
}

// LoadSidecar restores the bookkeeping written by SaveSidecar, replacing
// any seeded state. Live keys whose value is absent from the wrapped store
// (a sidecar older than the values snapshot) are dropped from tracking and
// counted, so they read as missing and heal through read-repair and the
// catch-up stream. Corrupt files are rejected with a *SidecarError and
// leave the state untouched.
func (r *Replicated) LoadSidecar(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) < 28 {
		return &SidecarError{Reason: "truncated file"}
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(tail); got != want {
		return &SidecarError{Reason: fmt.Sprintf("checksum mismatch: computed %08x, file says %08x", got, want)}
	}
	if string(body[0:4]) != sidecarMagic {
		return &SidecarError{Reason: "bad magic"}
	}
	if v := binary.LittleEndian.Uint32(body[4:8]); v != sidecarVersion {
		return &SidecarError{Reason: fmt.Sprintf("unsupported version %d", v)}
	}
	applied := binary.LittleEndian.Uint64(body[8:16])
	count := binary.LittleEndian.Uint64(body[16:24])
	if uint64(len(body)-24) != count*16 {
		return &SidecarError{Reason: "record count disagrees with file size"}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seqs := make(map[uint64]uint64, count)
	var digest uint64
	tombs := 0
	drops := int64(0)
	off := 24
	for i := uint64(0); i < count; i++ {
		k := binary.LittleEndian.Uint64(body[off : off+8])
		meta := binary.LittleEndian.Uint64(body[off+8 : off+16])
		off += 16
		var val uint64
		if meta&1 == 0 {
			v, ok := r.inner.Lookup(k)
			if !ok {
				// Stale sidecar: the key was live at sidecar save time but
				// the (newer) values snapshot no longer holds it. Drop it;
				// catch-up replays its newer state.
				drops++
				continue
			}
			val = v
		} else {
			tombs++
		}
		seqs[k] = meta
		digest ^= DigestTerm(k, val, meta)
	}
	r.seqs = seqs
	r.digest = digest
	r.tombs = tombs
	if applied > r.applied {
		r.applied = applied
	}
	if r.applied > r.localSeq {
		r.localSeq = r.applied
	}
	r.baseSeq = r.applied
	r.sidecarDrops.Add(drops)
	return nil
}

// --- observability ---

// ReplicaStats is the replication section of the STATS response, present
// when the served store is a Replicated.
type ReplicaStats struct {
	AppliedSeq     uint64 `json:"applied_seq"`
	BaseSeq        uint64 `json:"base_seq"`
	DigestHex      string `json:"digest_hex"`
	TrackedKeys    int    `json:"tracked_keys"`
	Tombstones     int    `json:"tombstones"`
	OplogLen       int    `json:"oplog_len"`
	OplogDropped   int64  `json:"oplog_dropped"`
	Subscribers    int    `json:"subscribers"`
	EntriesApplied int64  `json:"entries_applied"`
	EntriesStale   int64  `json:"entries_stale"`
	ApplyFailures  int64  `json:"apply_failures"`
	RepairApplied  int64  `json:"repair_applied"`
	FullSyncs      int64  `json:"full_syncs"`
	SidecarDrops   int64  `json:"sidecar_drops"`
}

// ReplicaStats snapshots the replication state.
func (r *Replicated) ReplicaStats() ReplicaStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return ReplicaStats{
		AppliedSeq:     r.applied,
		BaseSeq:        r.baseSeq,
		DigestHex:      fmt.Sprintf("%016x", r.digest),
		TrackedKeys:    len(r.seqs),
		Tombstones:     r.tombs,
		OplogLen:       int(r.log.next - r.log.first),
		OplogDropped:   r.log.dropped,
		Subscribers:    len(r.subs),
		EntriesApplied: r.entriesApplied.Load(),
		EntriesStale:   r.entriesStale.Load(),
		ApplyFailures:  r.applyFailures.Load(),
		RepairApplied:  r.repairApplied.Load(),
		FullSyncs:      r.fullSyncs.Load(),
		SidecarDrops:   r.sidecarDrops.Load(),
	}
}

// WritePrometheus writes the replica metrics under the mccuckoo_replica_
// prefix, mounted next to the table telemetry and the server counters on a
// node's /metrics.
func (r *Replicated) WritePrometheus(w io.Writer) error {
	st := r.ReplicaStats()
	p := &serverPromWriter{w: w}
	p.simple("mccuckoo_replica_applied_seq", "Highest sequence number applied.", "gauge", int64(st.AppliedSeq))
	p.simple("mccuckoo_replica_tracked_keys", "Keys with replication bookkeeping (tombstones included).", "gauge", int64(st.TrackedKeys))
	p.simple("mccuckoo_replica_tombstones", "Deleted keys retained as tombstones.", "gauge", int64(st.Tombstones))
	p.simple("mccuckoo_replica_oplog_entries", "Entries currently retained in the op-log ring.", "gauge", int64(st.OplogLen))
	p.simple("mccuckoo_replica_oplog_dropped_total", "Entries evicted from the op-log ring.", "counter", st.OplogDropped)
	p.simple("mccuckoo_replica_subscribers", "Live op-log subscriptions.", "gauge", int64(st.Subscribers))
	p.simple("mccuckoo_replica_entries_applied_total", "Entries applied (all sources).", "counter", st.EntriesApplied)
	p.simple("mccuckoo_replica_entries_stale_total", "Entries ignored as stale.", "counter", st.EntriesStale)
	p.simple("mccuckoo_replica_apply_failures_total", "Entries that lost to table capacity.", "counter", st.ApplyFailures)
	p.simple("mccuckoo_replica_repair_applied_total", "Pushed entries (cluster writes and read-repair) applied.", "counter", st.RepairApplied)
	p.simple("mccuckoo_replica_full_syncs_total", "Subscriptions that required a full state dump.", "counter", st.FullSyncs)
	p.simple("mccuckoo_replica_sidecar_drops_total", "Sidecar keys dropped for missing values at load.", "counter", st.SidecarDrops)
	return p.err
}
