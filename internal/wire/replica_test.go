package wire

import (
	"bytes"
	"errors"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mccuckoo"
)

func newReplicated(t *testing.T, capacity int) *Replicated {
	t.Helper()
	tab, err := mccuckoo.NewSharded(capacity, 4, mccuckoo.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	return NewReplicated(tab, ReplicaConfig{})
}

func TestReplicatedNewestWriteWins(t *testing.T) {
	r := newReplicated(t, 1<<12)

	// Apply out of order: the higher sequence number must win regardless
	// of arrival order.
	st := r.ApplyPush([]Entry{{Seq: 10, Op: OpPut, Key: 1, Value: 100}}, nil)
	if st[0] != ApplyApplied {
		t.Fatalf("first write: status %d, want applied", st[0])
	}
	st = r.ApplyPush([]Entry{{Seq: 5, Op: OpPut, Key: 1, Value: 55}}, nil)
	if st[0] != ApplyStale {
		t.Fatalf("older write: status %d, want stale", st[0])
	}
	if v, ok := r.Lookup(1); !ok || v != 100 {
		t.Fatalf("lookup after stale write: %d,%v want 100,true", v, ok)
	}
	st = r.ApplyPush([]Entry{{Seq: 11, Op: OpPut, Key: 1, Value: 111}}, nil)
	if st[0] != ApplyApplied {
		t.Fatalf("newer write: status %d, want applied", st[0])
	}
	if v, _ := r.Lookup(1); v != 111 {
		t.Fatalf("lookup: %d, want 111", v)
	}
	if got := r.Applied(); got != 11 {
		t.Fatalf("Applied() = %d, want 11", got)
	}

	// Equal sequence numbers lose too: the first write at a seq is
	// authoritative.
	st = r.ApplyPush([]Entry{{Seq: 11, Op: OpPut, Key: 1, Value: 999}}, nil)
	if st[0] != ApplyStale {
		t.Fatalf("equal-seq write: status %d, want stale", st[0])
	}
}

func TestReplicatedTombstoneBlocksResurrection(t *testing.T) {
	r := newReplicated(t, 1<<12)
	r.ApplyPush([]Entry{{Seq: 1, Op: OpPut, Key: 7, Value: 70}}, nil)
	r.ApplyPush([]Entry{{Seq: 9, Op: OpDel, Key: 7}}, nil)
	if state, _, seq := r.VGet(7); state != VStateTomb || seq != 9 {
		t.Fatalf("VGet after delete: state=%d seq=%d, want tombstone at 9", state, seq)
	}
	// A PUT that raced the delete (older seq) arrives late: it must lose.
	st := r.ApplyPush([]Entry{{Seq: 5, Op: OpPut, Key: 7, Value: 75}}, nil)
	if st[0] != ApplyStale {
		t.Fatalf("stale PUT over tombstone: status %d, want stale", st[0])
	}
	if _, ok := r.Lookup(7); ok {
		t.Fatal("deleted key resurrected by a stale PUT")
	}
	// A genuinely newer PUT revives the key.
	r.ApplyPush([]Entry{{Seq: 12, Op: OpPut, Key: 7, Value: 77}}, nil)
	if v, ok := r.Lookup(7); !ok || v != 77 {
		t.Fatalf("newer PUT after tombstone: %d,%v want 77,true", v, ok)
	}
}

func TestReplicatedLocalWritesAreSequenced(t *testing.T) {
	r := newReplicated(t, 1<<12)
	r.ApplyPush([]Entry{{Seq: 100, Op: OpPut, Key: 1, Value: 10}}, nil)
	// An unversioned local write must supersede everything seen so far.
	r.Insert(1, 20)
	if state, v, seq := r.VGet(1); state != VStateLive || v != 20 || seq <= 100 {
		t.Fatalf("VGet after local insert: state=%d v=%d seq=%d, want live/20/>100", state, v, seq)
	}
	if !r.Delete(1) {
		t.Fatal("Delete missed a present key")
	}
	if state, _, _ := r.VGet(1); state != VStateTomb {
		t.Fatalf("VGet after local delete: state=%d, want tombstone", state)
	}
}

func TestReplicatedApplyFailedKeepsSeq(t *testing.T) {
	// A tiny single-slot table fills up fast; a replicated PUT that loses
	// to capacity must NOT advance the key's sequence number, so a retry
	// can still land it.
	tab, err := mccuckoo.New(8, mccuckoo.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplicated(NewLocked(tab), ReplicaConfig{})
	var failedKey uint64
	for k := uint64(1); k < 100; k++ {
		st := r.ApplyPush([]Entry{{Seq: k, Op: OpPut, Key: k, Value: k}}, nil)
		if st[0] == ApplyFailed {
			failedKey = k
			break
		}
	}
	if failedKey == 0 {
		t.Skip("table absorbed every insert; cannot exercise ApplyFailed")
	}
	if state, _, _ := r.VGet(failedKey); state != VStateMissing {
		t.Fatalf("failed key state %d, want missing", state)
	}
	// Free a slot, retry with the same seq: it must apply now.
	r.ApplyPush([]Entry{{Seq: 200, Op: OpDel, Key: 1}}, nil)
	st := r.ApplyPush([]Entry{{Seq: failedKey, Op: OpPut, Key: failedKey, Value: 42}}, nil)
	if st[0] != ApplyApplied {
		t.Fatalf("retry after space freed: status %d, want applied", st[0])
	}
}

func TestReplicatedDigestConvergence(t *testing.T) {
	// Two replicas receiving the same entries in different orders must end
	// with identical digests.
	a := newReplicated(t, 1<<12)
	b := newReplicated(t, 1<<12)
	ents := []Entry{
		{Seq: 1, Op: OpPut, Key: 1, Value: 10},
		{Seq: 2, Op: OpPut, Key: 2, Value: 20},
		{Seq: 3, Op: OpDel, Key: 1},
		{Seq: 4, Op: OpPut, Key: 3, Value: 30},
		{Seq: 5, Op: OpPut, Key: 2, Value: 22},
	}
	a.ApplyStream(ents)
	rev := make([]Entry, len(ents))
	for i, e := range ents {
		rev[len(ents)-1-i] = e
	}
	b.ApplyStream(rev)
	if a.Digest() != b.Digest() {
		t.Fatalf("digests diverged: %016x vs %016x", a.Digest(), b.Digest())
	}
	if a.Digest() == 0 {
		t.Fatal("digest is zero over non-empty state")
	}
	// And the digest must be reconstructible from VGet answers.
	var want uint64
	for _, k := range []uint64{1, 2, 3} {
		state, v, seq := a.VGet(k)
		if state == VStateMissing {
			continue
		}
		want ^= DigestTerm(k, v, MetaOf(seq, state == VStateTomb))
	}
	if want != a.Digest() {
		t.Fatalf("digest from VGets %016x != Digest() %016x", want, a.Digest())
	}
}

func TestReplicatedSidecarRoundTrip(t *testing.T) {
	dir := t.TempDir()
	side := filepath.Join(dir, "table.snap.replica")
	snap := filepath.Join(dir, "table.snap")

	a := newReplicated(t, 1<<12)
	for k := uint64(1); k <= 500; k++ {
		a.ApplyPush([]Entry{{Seq: k, Op: OpPut, Key: k, Value: k * 2}}, nil)
	}
	a.ApplyPush([]Entry{{Seq: 1000, Op: OpDel, Key: 5}}, nil)
	saved := false
	if err := a.CheckpointWith(func() error {
		saved = true
		return a.Inner().(*mccuckoo.Sharded).SaveFile(snap)
	}, side); err != nil {
		t.Fatal(err)
	}
	if !saved {
		t.Fatal("CheckpointWith never called saveValues")
	}

	tab, err := mccuckoo.LoadShardedFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	b := NewReplicated(tab, ReplicaConfig{})
	if err := b.LoadSidecar(side); err != nil {
		t.Fatal(err)
	}
	if b.Applied() != a.Applied() {
		t.Fatalf("restored applied %d, want %d", b.Applied(), a.Applied())
	}
	if b.Digest() != a.Digest() {
		t.Fatalf("restored digest %016x, want %016x", b.Digest(), a.Digest())
	}
	if state, _, seq := b.VGet(5); state != VStateTomb || seq != 1000 {
		t.Fatalf("restored tombstone: state=%d seq=%d", state, seq)
	}
	// The restore marks everything as predating the op log, so a
	// subscriber resuming below the restore point is forced into a full
	// sync.
	sub, _, full, _ := b.subscribe(10)
	b.unsubscribe(sub)
	if !full {
		t.Fatal("resume below the restore point should force a full sync")
	}
}

func TestReplicatedSidecarRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	side := filepath.Join(dir, "sidecar")
	a := newReplicated(t, 1<<12)
	a.ApplyPush([]Entry{{Seq: 3, Op: OpPut, Key: 9, Value: 90}}, nil)
	if err := a.SaveSidecar(side); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(side)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(side, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	b := newReplicated(t, 1<<12)
	var serr *SidecarError
	if err := b.LoadSidecar(side); !errors.As(err, &serr) {
		t.Fatalf("LoadSidecar on corrupt file: %v, want *SidecarError", err)
	}
	if b.Applied() != 0 {
		t.Fatal("corrupt sidecar mutated the replica state")
	}
}

func TestOpLogOverrunAndFullSyncDecision(t *testing.T) {
	tab, err := mccuckoo.NewSharded(1<<12, 4, mccuckoo.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplicated(tab, ReplicaConfig{OplogSize: 8})
	for k := uint64(1); k <= 20; k++ {
		r.ApplyPush([]Entry{{Seq: k, Op: OpPut, Key: k, Value: k}}, nil)
	}
	// Entries 1..12 fell off the 8-deep ring: resuming from below must be
	// a full sync, resuming from the retained window must not.
	sub, head, full, dumpKeys := r.subscribe(5)
	r.unsubscribe(sub)
	if !full || len(dumpKeys) != 20 || head != 20 {
		t.Fatalf("resume 5: full=%v keys=%d head=%d, want full sync of 20 keys at head 20", full, len(dumpKeys), head)
	}
	sub, _, full, _ = r.subscribe(20)
	if full {
		t.Fatal("resume at head must be incremental")
	}
	// Drain the retained window through the cursor.
	ents, _, overrun := r.pull(sub, make([]Entry, 0, 32))
	if overrun || len(ents) != 8 {
		t.Fatalf("pull: %d entries overrun=%v, want the 8 retained", len(ents), overrun)
	}
	r.unsubscribe(sub)
	// A cursor that fell behind the retained window must report overrun.
	stale := &logSub{cursor: 0, notify: make(chan struct{}, 1)}
	if _, _, overrun := r.pull(stale, make([]Entry, 0, 4)); !overrun {
		t.Fatal("cursor behind the ring must report overrun")
	}
}

func TestReplicatedSeedsFromPreloadedStore(t *testing.T) {
	tab, err := mccuckoo.NewSharded(1<<12, 4, mccuckoo.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 50; k++ {
		tab.Insert(k, k+1000)
	}
	r := NewReplicated(tab, ReplicaConfig{})
	if state, v, seq := r.VGet(25); state != VStateLive || v != 1025 || seq == 0 {
		t.Fatalf("seeded key: state=%d v=%d seq=%d", state, v, seq)
	}
	// Seeded keys are ancient: any replicated write beats them.
	st := r.ApplyPush([]Entry{{Seq: 2, Op: OpPut, Key: 25, Value: 7}}, nil)
	if st[0] != ApplyApplied {
		t.Fatalf("write over seeded key: status %d, want applied", st[0])
	}
	// And a subscriber must take a full sync (the seeds predate any log).
	_, _, full, dumpKeys := r.subscribe(0)
	if !full || len(dumpKeys) != 50 {
		t.Fatalf("subscribe over seeded store: full=%v keys=%d", full, len(dumpKeys))
	}
}

// --- wire-level tests for the replication opcodes ---

func TestReplicatePayloadRoundTrip(t *testing.T) {
	ents := []Entry{
		{Seq: 1, Op: OpPut, Key: 2, Value: 3},
		{Seq: ^uint64(0), Op: OpDel, Key: ^uint64(0)},
		{Seq: 1 << 40, Op: OpPut, Key: 0, Value: 1 << 63},
	}
	p := AppendReplicatePayload(nil, 99, ents)
	head, got, ok := ParseReplicatePayload(p, nil)
	if !ok || head != 99 || len(got) != len(ents) {
		t.Fatalf("round trip: ok=%v head=%d n=%d", ok, head, len(got))
	}
	for i := range ents {
		if got[i] != ents[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], ents[i])
		}
	}
	// Malformed: bad op, truncated, trailing garbage, lying count.
	bad := AppendReplicatePayload(nil, 1, []Entry{{Seq: 1, Op: OpStats, Key: 1}})
	if _, _, ok := ParseReplicatePayload(bad, nil); ok {
		t.Fatal("accepted an entry with an invalid op")
	}
	if _, _, ok := ParseReplicatePayload(p[:len(p)-1], nil); ok {
		t.Fatal("accepted a truncated payload")
	}
	if _, _, ok := ParseReplicatePayload(append(p, 0), nil); ok {
		t.Fatal("accepted trailing garbage")
	}
	if _, _, ok := ParseReplicatePayload(p[:replicateHeadLen], nil); ok {
		t.Fatal("accepted a count with no records")
	}
}

func TestSubscribeCodecRoundTrip(t *testing.T) {
	p := AppendSubscribePayload(nil, 12345)
	c := cursor{b: p}
	if got := c.u64(); !c.ok() || got != 12345 {
		t.Fatalf("subscribe payload: %d", got)
	}
	resp := appendU8(appendU64(nil, 777), 1)
	head, full, ok := ParseSubscribeResponse(resp)
	if !ok || head != 777 || !full {
		t.Fatalf("subscribe response: head=%d full=%v ok=%v", head, full, ok)
	}
	if _, _, ok := ParseSubscribeResponse(resp[:5]); ok {
		t.Fatal("accepted a truncated subscribe response")
	}
	if _, _, ok := ParseSubscribeResponse(appendU8(appendU64(nil, 1), 2)); ok {
		t.Fatal("accepted an out-of-range full flag")
	}
}

func TestOpNameCoversReplicationOpcodes(t *testing.T) {
	want := map[byte]string{
		OpVGet: "vget", OpSub: "subscribe", OpReplicate: "replicate",
		OpDigest: "digest",
	}
	for op, name := range want {
		if got := OpName(op); got != name {
			t.Fatalf("OpName(%d) = %q, want %q", op, got, name)
		}
	}
	if OpName(42) != "unknown" {
		t.Fatal("unknown opcodes must map to \"unknown\"")
	}
}

func TestServerVGetAndReplicate(t *testing.T) {
	rep := newReplicated(t, 1<<12)
	_, addr, shutdown := startServer(t, rep, nil)
	defer shutdown()
	c := dialClient(t, addr, nil)

	statuses, err := c.Replicate(2, []Entry{
		{Seq: 1, Op: OpPut, Key: 10, Value: 100},
		{Seq: 2, Op: OpPut, Key: 20, Value: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range statuses {
		if st != ApplyApplied {
			t.Fatalf("entry %d: status %d, want applied", i, st)
		}
	}
	state, v, seq, err := c.VGet(10)
	if err != nil || state != VStateLive || v != 100 || seq != 1 {
		t.Fatalf("VGet: state=%d v=%d seq=%d err=%v", state, v, seq, err)
	}
	// Stale push answers stale, and STATS carries the replica section.
	statuses, err = c.Replicate(2, []Entry{{Seq: 1, Op: OpPut, Key: 10, Value: 1}})
	if err != nil || statuses[0] != ApplyStale {
		t.Fatalf("stale push: statuses=%v err=%v", statuses, err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Replica == nil || st.Replica.AppliedSeq != 2 || st.Replica.DigestHex == "" {
		t.Fatalf("STATS replica section: %+v", st.Replica)
	}
}

func TestServerReplicationOpsNeedReplicatedStore(t *testing.T) {
	tab, err := mccuckoo.NewSharded(1<<10, 4, mccuckoo.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	_, addr, shutdown := startServer(t, tab, nil)
	defer shutdown()
	c := dialClient(t, addr, nil)
	var se *ServerError
	if _, _, _, err := c.VGet(1); !errors.As(err, &se) {
		t.Fatalf("VGet on plain store: %v, want ServerError", err)
	}
	if _, err := c.Replicate(1, []Entry{{Seq: 1, Op: OpPut, Key: 1}}); !errors.As(err, &se) {
		t.Fatalf("Replicate on plain store: %v, want ServerError", err)
	}
}

// TestServerSubscriptionStream drives the raw subscribe protocol: resume
// from zero against a populated replica, expect a full dump followed by
// live tail entries, with keepalives carrying the head.
func TestServerSubscriptionStream(t *testing.T) {
	tab, err := mccuckoo.NewSharded(1<<12, 4, mccuckoo.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	// A ring smaller than the history forces the full-dump path.
	rep := NewReplicated(tab, ReplicaConfig{OplogSize: 8})
	for k := uint64(1); k <= 100; k++ {
		rep.ApplyPush([]Entry{{Seq: k, Op: OpPut, Key: k, Value: k * 3}}, nil)
	}
	_, addr, shutdown := startServer(t, rep, func(c *Config) { c.SubKeepalive = 50 * time.Millisecond })
	defer shutdown()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	sub := AppendFrame(nil, Frame{Type: OpSub, ID: 9, Payload: AppendSubscribePayload(nil, 0)})
	if _, err := nc.Write(sub); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	var f Frame
	read := func() Frame {
		t.Helper()
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		f, buf, err = ReadFrame(nc, DefaultMaxPayload, buf)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f = read()
	if !f.IsResponse() || f.Status() != StatusOK || f.ID != 9 {
		t.Fatalf("handshake: %+v", f)
	}
	head, full, ok := ParseSubscribeResponse(f.Payload)
	if !ok || !full || head != 100 {
		t.Fatalf("handshake payload: head=%d full=%v", head, full)
	}

	// Collect the dump, then a live write must arrive over the stream.
	got := make(map[uint64]uint64)
	collect := func(until int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for len(got) < until && time.Now().Before(deadline) {
			f = read()
			if f.Type != OpReplicate || f.ID != 9 {
				t.Fatalf("stream frame: %+v", f)
			}
			_, ents, ok := ParseReplicatePayload(f.Payload, nil)
			if !ok {
				t.Fatal("malformed stream frame")
			}
			for _, e := range ents {
				if e.Op == OpPut {
					got[e.Key] = e.Value
				}
			}
		}
	}
	collect(100)
	for k := uint64(1); k <= 100; k++ {
		if got[k] != k*3 {
			t.Fatalf("dump missing key %d (got %d)", k, got[k])
		}
	}
	rep.ApplyPush([]Entry{{Seq: 500, Op: OpPut, Key: 777, Value: 7770}}, nil)
	collect(101)
	if got[777] != 7770 {
		t.Fatal("live tail entry never arrived")
	}
}

// --- satellite: version compatibility ---

// TestServerRejectsNewerVersion: a frame claiming a future protocol
// version must be rejected with a typed error and a prompt connection
// close — no hang, no panic, no partial execution.
func TestServerRejectsNewerVersion(t *testing.T) {
	tab, err := mccuckoo.NewSharded(1<<10, 4, mccuckoo.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	// The decoder itself reports the typed error...
	frame := AppendFrame(nil, Frame{Type: OpPing, ID: 1})
	frame[2] = Version + 1
	var perr *ProtocolError
	if _, _, err := DecodeFrame(frame, DefaultMaxPayload); !errors.As(err, &perr) {
		t.Fatalf("DecodeFrame on newer version: %v, want *ProtocolError", err)
	}
	if !strings.Contains(perr.Reason, "version") {
		t.Fatalf("rejection should name the version: %q", perr.Reason)
	}

	// ...and a live server closes the connection instead of hanging. (The
	// CRC is recomputed so only the version byte is at fault.)
	_, addr, shutdown := startServer(t, tab, nil)
	defer shutdown()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	reframed := AppendFrame(nil, Frame{Type: OpPing, ID: 1})
	reframed[2] = Version + 1
	body := reframed[:len(reframed)-crcLen]
	reframed = appendU32(body, crc32.Checksum(body, castagnoli))
	if _, err := nc.Write(reframed); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	onebyte := make([]byte, 1)
	if _, err := nc.Read(onebyte); err == nil {
		t.Fatal("server answered a newer-version frame instead of closing")
	}
}

// --- satellite: reconnect-on-dead ---

// TestClientFailFastAndReconnectCounter kills the connection mid-pipeline:
// every queued request must fail fast with ErrConnFailed (not wait out its
// timeout), and the next call must redial, bumping Reconnects.
func TestClientFailFastAndReconnectCounter(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	kill := make(chan struct{})
	go func() {
		first := true
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			if first {
				first = false
				go func(nc net.Conn) {
					<-kill
					nc.Close() // kill mid-pipeline, answering nothing
				}(nc)
				continue
			}
			// Replacement connections echo OK to everything.
			go func(nc net.Conn) {
				defer nc.Close()
				var buf []byte
				for {
					f, b, err := ReadFrame(nc, DefaultMaxPayload, buf)
					buf = b
					if err != nil {
						return
					}
					if _, err := nc.Write(respFrame(f.ID, StatusOK, nil)); err != nil {
						return
					}
				}
			}(nc)
		}
	}()

	c, err := Dial(ClientConfig{Addr: ln.Addr().String(), Conns: 1, RequestTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Pipeline requests that will never be answered, then kill the conn.
	const inflight = 4
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() { errs <- c.Ping() }()
	}
	time.Sleep(50 * time.Millisecond) // let the pings reach the wire
	close(kill)
	deadline := time.NewTimer(5 * time.Second)
	defer deadline.Stop()
	for i := 0; i < inflight; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrConnFailed) {
				t.Fatalf("pipelined request: %v, want ErrConnFailed", err)
			}
		case <-deadline.C:
			t.Fatal("pipelined requests did not fail fast after the kill")
		}
	}
	if got := c.Reconnects(); got != 0 {
		t.Fatalf("Reconnects before redial: %d, want 0", got)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after reconnect: %v", err)
	}
	if got := c.Reconnects(); got != 1 {
		t.Fatalf("Reconnects after redial: %d, want 1", got)
	}
	var out bytes.Buffer
	if err := c.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mccuckoo_client_reconnects_total 1") {
		t.Fatalf("prometheus output missing reconnect counter:\n%s", out.String())
	}
}
