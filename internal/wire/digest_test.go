package wire

import (
	"errors"
	"strings"
	"testing"
)

// digestRand is a splitmix64 stream for seed-deterministic property tests.
type digestRand struct{ state uint64 }

func (r *digestRand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestDigestXORConsistency is the satellite property test: replicas that
// apply the same entries — in any order, including delete→reinsert cycles
// of the same key — end with equal digests, and replicas whose key state
// differs end with unequal digests (with overwhelming probability).
func TestDigestXORConsistency(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := &digestRand{state: seed * 0x100000001b3}
		const keySpace = 64
		var ents []Entry
		seq := uint64(10)
		// A random schedule heavy on delete→reinsert of the same keys.
		for i := 0; i < 400; i++ {
			seq++
			k := rng.next() % keySpace
			if rng.next()%3 == 0 {
				ents = append(ents, Entry{Seq: seq, Op: OpDel, Key: k})
			} else {
				ents = append(ents, Entry{Seq: seq, Op: OpPut, Key: k, Value: rng.next()})
			}
		}

		a := newReplicated(t, 1<<12)
		b := newReplicated(t, 1<<12)
		a.ApplyPush(ents, nil)
		// b receives the same entries in a shuffled order.
		shuffled := append([]Entry(nil), ents...)
		for i := len(shuffled) - 1; i > 0; i-- {
			j := int(rng.next() % uint64(i+1))
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		b.ApplyPush(shuffled, nil)
		if a.Digest() != b.Digest() {
			t.Fatalf("seed %d: equal entry sets, unequal digests %016x vs %016x", seed, a.Digest(), b.Digest())
		}

		// Delete→reinsert of one key on both sides keeps them equal.
		cycle := []Entry{
			{Seq: seq + 1, Op: OpDel, Key: 3},
			{Seq: seq + 2, Op: OpPut, Key: 3, Value: 999},
		}
		a.ApplyPush(cycle, nil)
		b.ApplyPush([]Entry{cycle[1], cycle[0]}, nil) // reversed: newest still wins
		if a.Digest() != b.Digest() {
			t.Fatalf("seed %d: digests diverged after delete→reinsert cycle", seed)
		}

		// Tombstone reclamation at an equal watermark preserves equality.
		wm := a.Applied() + 1
		na, nb := a.CompactTombstones(wm), b.CompactTombstones(wm)
		if na != nb {
			t.Fatalf("seed %d: compacted %d vs %d tombstones at one watermark", seed, na, nb)
		}
		if a.Digest() != b.Digest() {
			t.Fatalf("seed %d: digests diverged after tombstone reclamation", seed)
		}
		if na > 0 && a.ReplicaStats().Tombstones != b.ReplicaStats().Tombstones {
			t.Fatalf("seed %d: tombstone counters disagree after compaction", seed)
		}

		// Divergence is visible: one extra write on a only.
		a.ApplyPush([]Entry{{Seq: seq + 9, Op: OpPut, Key: 5, Value: 123456}}, nil)
		if a.Digest() == b.Digest() {
			t.Fatalf("seed %d: unequal states produced equal digests", seed)
		}
	}
}

func TestDigestRangePartitionsAndEnumerates(t *testing.T) {
	r := newReplicated(t, 1<<12)
	var ents []Entry
	for i := uint64(0); i < 200; i++ {
		ents = append(ents, Entry{Seq: 10 + i, Op: OpPut, Key: i * 1000003, Value: i})
	}
	r.ApplyPush(ents, nil)

	// The full range must reproduce the incremental digest and count.
	full, count, keys := r.DigestRange("peer", 0, ^uint64(0), 0)
	if full != r.Digest() {
		t.Fatalf("full-range digest %016x != incremental %016x", full, r.Digest())
	}
	if count != 200 || keys != nil {
		t.Fatalf("count=%d keys=%v, want 200 and no enumeration", count, keys)
	}

	// Two halves must XOR back to the whole, with counts adding up.
	const mid = ^uint64(0) / 2
	dlo, clo, _ := r.DigestRange("peer", 0, mid, 0)
	dhi, chi, _ := r.DigestRange("peer", mid+1, ^uint64(0), 0)
	if dlo^dhi != full || clo+chi != count {
		t.Fatalf("halves do not recompose: %016x^%016x != %016x (counts %d+%d vs %d)",
			dlo, dhi, full, clo, chi, count)
	}

	// Enumeration kicks in at maxKeys and verifies against VGet metas.
	_, _, listed := r.DigestRange("peer", 0, ^uint64(0), 200)
	if len(listed) != 200 {
		t.Fatalf("enumerated %d keys, want 200", len(listed))
	}
	for _, e := range listed {
		state, _, seq := r.VGet(e.Key)
		if state != VStateLive || MetaOf(seq, false) != e.Meta {
			t.Fatalf("key %d: meta %d disagrees with VGet state=%d seq=%d", e.Key, e.Meta, state, seq)
		}
	}
	// One short of the count: too big to enumerate.
	if _, _, over := r.DigestRange("peer", 0, ^uint64(0), 199); over != nil {
		t.Fatal("over-budget range should not enumerate")
	}
}

func TestDigestRangeFilterRestrictsKeys(t *testing.T) {
	r := newReplicated(t, 1<<12)
	r.ApplyPush([]Entry{
		{Seq: 10, Op: OpPut, Key: 2, Value: 20},
		{Seq: 11, Op: OpPut, Key: 3, Value: 30},
		{Seq: 12, Op: OpPut, Key: 4, Value: 40},
	}, nil)
	r.SetDigestFilter(func(peer string, key uint64) bool {
		return peer == "even-owner" && key%2 == 0
	})
	_, count, keys := r.DigestRange("even-owner", 0, ^uint64(0), 16)
	if count != 2 || len(keys) != 2 {
		t.Fatalf("filtered digest saw %d keys (%v), want 2", count, keys)
	}
	if _, count, _ = r.DigestRange("stranger", 0, ^uint64(0), 16); count != 0 {
		t.Fatalf("unknown peer saw %d keys, want 0", count)
	}
	r.SetDigestFilter(nil)
	if _, count, _ = r.DigestRange("stranger", 0, ^uint64(0), 0); count != 3 {
		t.Fatalf("after filter removal: %d keys, want 3", count)
	}
}

func TestServerDigestRoundTrip(t *testing.T) {
	rep := newReplicated(t, 1<<12)
	rep.ApplyPush([]Entry{
		{Seq: 10, Op: OpPut, Key: 1, Value: 10},
		{Seq: 11, Op: OpPut, Key: 2, Value: 20},
		{Seq: 12, Op: OpDel, Key: 1},
	}, nil)
	_, addr, shutdown := startServer(t, rep, nil)
	defer shutdown()
	c := dialClient(t, addr, nil)

	digest, count, keys, err := c.DigestRange("peer", 0, ^uint64(0), 16)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, wantCount, wantKeys := rep.DigestRange("peer", 0, ^uint64(0), 16)
	if digest != wantDigest || count != wantCount || len(keys) != len(wantKeys) {
		t.Fatalf("wire digest (%016x, %d, %d keys) != local (%016x, %d, %d keys)",
			digest, count, len(keys), wantDigest, wantCount, len(wantKeys))
	}
	// The tombstone is enumerated with its tombstone meta bit.
	var sawTomb bool
	for _, e := range keys {
		if e.Key == 1 && e.Meta == MetaOf(12, true) {
			sawTomb = true
		}
	}
	if !sawTomb {
		t.Fatal("tombstone missing from digest enumeration")
	}
}

func TestServerDigestRequiresReplicatedStore(t *testing.T) {
	_, addr, shutdown := startServer(t, newLockedTable(t, 1<<10), nil)
	defer shutdown()
	c := dialClient(t, addr, nil)
	_, _, _, err := c.DigestRange("peer", 0, ^uint64(0), 0)
	var se *ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Msg, "not replicated") {
		t.Fatalf("digest against a plain store: %v, want server error", err)
	}
}
