package wire

import "encoding/binary"

// Payload encodings, little-endian throughout (DESIGN.md §10):
//
//	GET  request: key u64                  response: found u8, value u64
//	PUT  request: key u64, value u64       response: status u8, kicks u32
//	DEL  request: key u64                  response: removed u8
//	BATCH request: sub u8, count u32, then count records —
//	      sub=GET/DEL: key u64             sub=PUT: key u64, value u64
//	BATCH response: sub u8, count u32, then count records of the matching
//	      single-op response encoding
//	STATS request: empty                   response: JSON (TableStats)
//	PING  request: empty                   response: empty
//	BUSY  response: empty
//	ERR   response: UTF-8 message
//
// Counts are validated against the actual payload length, so a hostile
// count cannot size an allocation beyond the bytes that are present.

// cursor is an allocation-free payload reader. Overruns latch bad; callers
// check ok() once at the end instead of per read.
type cursor struct {
	b   []byte
	off int
	bad bool
}

//mcvet:hotpath
func (c *cursor) u8() byte {
	if c.off+1 > len(c.b) {
		c.bad = true
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

//mcvet:hotpath
func (c *cursor) u32() uint32 {
	if c.off+4 > len(c.b) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

//mcvet:hotpath
func (c *cursor) u64() uint64 {
	if c.off+8 > len(c.b) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

// ok reports that every read succeeded and the payload was consumed
// exactly — trailing garbage is as malformed as truncation.
//
//mcvet:hotpath
func (c *cursor) ok() bool { return !c.bad && c.off == len(c.b) }

// appendU8/appendU32/appendU64 build payloads. They append, so steady-state
// callers pass buffers with spare capacity.
func appendU8(dst []byte, v byte) []byte { return append(dst, v) }

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// batchItemSize returns the request record size for a batch sub-op, or 0
// for an invalid sub-op.
func batchItemSize(sub byte) int {
	switch sub {
	case OpGet, OpDel:
		return 8
	case OpPut:
		return 16
	default:
		return 0
	}
}

// parseBatchHeader validates a BATCH request payload's sub-op and count
// against the payload length and returns them with the record bytes.
func parseBatchHeader(p []byte) (sub byte, count int, records []byte, ok bool) {
	if len(p) < 5 {
		return 0, 0, nil, false
	}
	sub = p[0]
	n := int(binary.LittleEndian.Uint32(p[1:5]))
	size := batchItemSize(sub)
	if size == 0 || n < 0 || len(p)-5 != n*size {
		return 0, 0, nil, false
	}
	return sub, n, p[5:], true
}
