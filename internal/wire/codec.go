package wire

import "encoding/binary"

// Payload encodings, little-endian throughout (DESIGN.md §10):
//
//	GET  request: key u64                  response: found u8, value u64
//	PUT  request: key u64, value u64       response: status u8, kicks u32
//	DEL  request: key u64                  response: removed u8
//	BATCH request: sub u8, count u32, then count records —
//	      sub=GET/DEL: key u64             sub=PUT: key u64, value u64
//	BATCH response: sub u8, count u32, then count records of the matching
//	      single-op response encoding
//	STATS request: empty                   response: JSON (TableStats)
//	PING  request: empty                   response: empty
//	VGET  request: key u64                 response: state u8, value u64, seq u64
//	SUB   request: fromSeq u64             response: head u64, full u8
//	DIGEST request: lo u64, hi u64, maxKeys u32, nameLen u32, name bytes
//	DIGEST response: digest u64, count u64, included u32, then included
//	      records of key u64, meta u64 (included is 0 when count > maxKeys)
//	REPLICATE payload (either direction): head u64, count u32, then count
//	      records of seq u64, op u8 (OpPut|OpDel), key u64, value u64
//	REPLICATE response (requests only): count u32, then count apply
//	      statuses (u8 each: ApplyStale, ApplyApplied, ApplyFailed)
//	BUSY  response: empty
//	ERR   response: UTF-8 message
//
// Counts are validated against the actual payload length, so a hostile
// count cannot size an allocation beyond the bytes that are present.

// cursor is an allocation-free payload reader. Overruns latch bad; callers
// check ok() once at the end instead of per read.
type cursor struct {
	b   []byte
	off int
	bad bool
}

//mcvet:hotpath
func (c *cursor) u8() byte {
	if c.off+1 > len(c.b) {
		c.bad = true
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

//mcvet:hotpath
func (c *cursor) u32() uint32 {
	if c.off+4 > len(c.b) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

//mcvet:hotpath
func (c *cursor) u64() uint64 {
	if c.off+8 > len(c.b) {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

// ok reports that every read succeeded and the payload was consumed
// exactly — trailing garbage is as malformed as truncation.
//
//mcvet:hotpath
func (c *cursor) ok() bool { return !c.bad && c.off == len(c.b) }

// appendU8/appendU32/appendU64 build payloads. They append, so steady-state
// callers pass buffers with spare capacity.
func appendU8(dst []byte, v byte) []byte { return append(dst, v) }

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// batchItemSize returns the request record size for a batch sub-op, or 0
// for an invalid sub-op.
func batchItemSize(sub byte) int {
	switch sub {
	case OpGet, OpDel:
		return 8
	case OpPut:
		return 16
	default:
		return 0
	}
}

// parseBatchHeader validates a BATCH request payload's sub-op and count
// against the payload length and returns them with the record bytes.
func parseBatchHeader(p []byte) (sub byte, count int, records []byte, ok bool) {
	if len(p) < 5 {
		return 0, 0, nil, false
	}
	sub = p[0]
	n := int(binary.LittleEndian.Uint32(p[1:5]))
	size := batchItemSize(sub)
	if size == 0 || n < 0 || len(p)-5 != n*size {
		return 0, 0, nil, false
	}
	return sub, n, p[5:], true
}

// Versioned-key states, carried in VGET responses. A tombstone is a deleted
// key whose deletion sequence number is retained so a stale PUT cannot
// resurrect it.
const (
	VStateMissing byte = 0
	VStateLive    byte = 1
	VStateTomb    byte = 2
)

// Per-entry apply statuses, carried in REPLICATE responses.
const (
	// ApplyStale: the store already held a write with an equal or newer
	// sequence number; the entry was a no-op. Counts as durable for quorum
	// purposes — the key's state is at least as new as the entry.
	ApplyStale byte = 0
	// ApplyApplied: the entry won and was written.
	ApplyApplied byte = 1
	// ApplyFailed: the entry should have won but the table rejected the
	// insert (capacity). The key's sequence number was NOT advanced.
	ApplyFailed byte = 2
)

// Entry is one sequence-numbered mutation: the unit of the server op log,
// the subscription stream, and the read-repair push. Op is OpPut or OpDel
// (Value is meaningless for deletes). Seq orders writes across the cluster:
// the higher sequence number wins, ties lose (first write at a seq is
// authoritative).
type Entry struct {
	Seq   uint64
	Op    byte
	Key   uint64
	Value uint64
}

// entrySize is the wire size of one Entry record.
const entrySize = 8 + 1 + 8 + 8

// replicateHeadLen is the fixed prefix of a REPLICATE payload: the sender's
// high-water sequence number (head) plus the record count.
const replicateHeadLen = 8 + 4

// MaxEntriesPerFrame is how many entries fit a default-sized REPLICATE
// frame; streams chunk at this bound.
const MaxEntriesPerFrame = (DefaultMaxPayload - replicateHeadLen) / entrySize

// AppendReplicatePayload appends the REPLICATE payload encoding of ents to
// dst: head, count, then the fixed-size records.
func AppendReplicatePayload(dst []byte, head uint64, ents []Entry) []byte {
	dst = appendU64(dst, head)
	dst = appendU32(dst, uint32(len(ents)))
	for _, e := range ents {
		dst = appendU64(dst, e.Seq)
		dst = appendU8(dst, e.Op)
		dst = appendU64(dst, e.Key)
		dst = appendU64(dst, e.Value)
	}
	return dst
}

// ParseReplicatePayload decodes a REPLICATE payload into ents (reused if
// its capacity suffices). The count is validated against the payload length
// and every record's op against the two legal mutations.
func ParseReplicatePayload(p []byte, ents []Entry) (head uint64, _ []Entry, ok bool) {
	if len(p) < replicateHeadLen {
		return 0, nil, false
	}
	head = binary.LittleEndian.Uint64(p[0:8])
	n := int(binary.LittleEndian.Uint32(p[8:12]))
	if n < 0 || len(p)-replicateHeadLen != n*entrySize {
		return 0, nil, false
	}
	if cap(ents) < n {
		ents = make([]Entry, n)
	}
	ents = ents[:n]
	c := cursor{b: p, off: replicateHeadLen}
	for i := 0; i < n; i++ {
		ents[i].Seq = c.u64()
		ents[i].Op = c.u8()
		ents[i].Key = c.u64()
		ents[i].Value = c.u64()
		if ents[i].Op != OpPut && ents[i].Op != OpDel {
			return 0, nil, false
		}
	}
	if !c.ok() {
		return 0, nil, false
	}
	return head, ents, true
}

// DigestEntry is one (key, meta) pair enumerated by a DIGEST response when
// the requested range is small enough; the anti-entropy sweeper's bisection
// bottoms out on these.
type DigestEntry struct {
	Key  uint64
	Meta uint64
}

// maxDigestName bounds the requester name carried in a DIGEST request; node
// names are host:port strings, so this is generous.
const maxDigestName = 256

// digestEntrySize is the wire size of one DigestEntry record.
const digestEntrySize = 8 + 8

// MaxDigestKeys is how many DigestEntry records fit a default-sized DIGEST
// response frame; servers clamp enumeration at this bound.
const MaxDigestKeys = (DefaultMaxPayload - 20) / digestEntrySize

// AppendDigestRequest encodes a DIGEST request: digest keys in [lo, hi]
// that the named requester co-owns with the serving node, enumerating them
// when the range holds at most maxKeys.
func AppendDigestRequest(dst []byte, lo, hi uint64, maxKeys int, name string) []byte {
	dst = appendU64(dst, lo)
	dst = appendU64(dst, hi)
	dst = appendU32(dst, uint32(maxKeys))
	dst = appendU32(dst, uint32(len(name)))
	return append(dst, name...)
}

// ParseDigestRequest decodes a DIGEST request, validating the name length
// against the payload and bounding maxKeys to what fits a response frame.
func ParseDigestRequest(p []byte) (lo, hi uint64, maxKeys int, name string, ok bool) {
	c := cursor{b: p}
	lo, hi = c.u64(), c.u64()
	mk := c.u32()
	nameLen := c.u32()
	if c.bad || nameLen > maxDigestName || len(p)-c.off != int(nameLen) || lo > hi {
		return 0, 0, 0, "", false
	}
	if mk > MaxDigestKeys {
		mk = MaxDigestKeys
	}
	return lo, hi, int(mk), string(p[c.off:]), true
}

// AppendDigestResponse encodes a DIGEST response. count is the number of
// keys matched in the range; keys enumerates them when the server chose to
// (len(keys) is 0 when count exceeded the request's maxKeys).
func AppendDigestResponse(dst []byte, digest, count uint64, keys []DigestEntry) []byte {
	dst = appendU64(dst, digest)
	dst = appendU64(dst, count)
	dst = appendU32(dst, uint32(len(keys)))
	for _, e := range keys {
		dst = appendU64(dst, e.Key)
		dst = appendU64(dst, e.Meta)
	}
	return dst
}

// ParseDigestResponse decodes a DIGEST response; the included count is
// validated against the payload length.
func ParseDigestResponse(p []byte) (digest, count uint64, keys []DigestEntry, ok bool) {
	c := cursor{b: p}
	digest, count = c.u64(), c.u64()
	n := int(c.u32())
	if c.bad || n > MaxDigestKeys || len(p)-c.off != n*digestEntrySize || uint64(n) > count {
		return 0, 0, nil, false
	}
	if n > 0 {
		keys = make([]DigestEntry, n)
		for i := range keys {
			keys[i].Key = c.u64()
			keys[i].Meta = c.u64()
		}
	}
	if !c.ok() {
		return 0, 0, nil, false
	}
	return digest, count, keys, true
}

// AppendSubscribePayload encodes a SUBSCRIBE request: resume after fromSeq.
func AppendSubscribePayload(dst []byte, fromSeq uint64) []byte {
	return appendU64(dst, fromSeq)
}

// ParseSubscribeResponse decodes a SUBSCRIBE OK response: the server's
// high-water sequence number and whether a full state dump precedes the
// incremental stream.
func ParseSubscribeResponse(p []byte) (head uint64, full bool, ok bool) {
	c := cursor{b: p}
	head = c.u64()
	f := c.u8()
	if !c.ok() || f > 1 {
		return 0, false, false
	}
	return head, f != 0, true
}
