package wire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"mccuckoo"
)

// startServer launches a Server over a fresh loopback listener and returns
// its address plus a shutdown func that asserts a clean drain.
func startServer(t *testing.T, store mccuckoo.BatchStore, mod func(*Config)) (*Server, string, func()) {
	t.Helper()
	cfg := Config{Store: store, Logf: t.Logf}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	}
	return srv, ln.Addr().String(), shutdown
}

func dialClient(t *testing.T, addr string, mod func(*ClientConfig)) *Client {
	t.Helper()
	cfg := ClientConfig{Addr: addr}
	if mod != nil {
		mod(&cfg)
	}
	c, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func newLockedTable(t *testing.T, capacity int) *Locked {
	t.Helper()
	tab, err := mccuckoo.New(capacity, mccuckoo.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	return NewLocked(tab)
}

// TestServerBasicOps runs every opcode end to end against a Locked
// single-writer table — the wrapper and the server in one pass.
func TestServerBasicOps(t *testing.T) {
	_, addr, shutdown := startServer(t, newLockedTable(t, 4096), nil)
	defer shutdown()
	c := dialClient(t, addr, nil)

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if r, err := c.Put(1, 100); err != nil || r.Status != mccuckoo.Placed {
		t.Fatalf("put: %+v, %v", r, err)
	}
	if r, err := c.Put(1, 101); err != nil || r.Status != mccuckoo.Updated {
		t.Fatalf("re-put: %+v, %v", r, err)
	}
	if v, ok, err := c.Get(1); err != nil || !ok || v != 101 {
		t.Fatalf("get: %d, %v, %v", v, ok, err)
	}
	if _, ok, err := c.Get(2); err != nil || ok {
		t.Fatalf("negative get hit: %v", err)
	}
	if removed, err := c.Del(1); err != nil || !removed {
		t.Fatalf("del: %v, %v", removed, err)
	}
	if removed, err := c.Del(1); err != nil || removed {
		t.Fatalf("double del: %v, %v", removed, err)
	}

	// Batches.
	const n = 500
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i], vals[i] = uint64(i+10), uint64(i)*7
	}
	res, err := c.PutBatch(keys, vals)
	if err != nil {
		t.Fatalf("put batch: %v", err)
	}
	for i, r := range res {
		if r.Status == mccuckoo.Failed {
			t.Fatalf("batch put %d failed", i)
		}
	}
	gv, gf, err := c.GetBatch(append(keys, 99999))
	if err != nil {
		t.Fatalf("get batch: %v", err)
	}
	for i := range keys {
		if !gf[i] || gv[i] != vals[i] {
			t.Fatalf("batch get %d: %d,%v want %d,true", i, gv[i], gf[i], vals[i])
		}
	}
	if gf[n] {
		t.Fatal("batch get hit a never-inserted key")
	}
	removed, err := c.DelBatch(keys[:n/2])
	if err != nil {
		t.Fatalf("del batch: %v", err)
	}
	for i, ok := range removed {
		if !ok {
			t.Fatalf("batch del %d reported absent", i)
		}
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Len != n/2 || st.Capacity == 0 || st.Inserts == 0 || st.Lookups == 0 || st.Deletes == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
}

// rawConn is a minimal frame-level client for tests that must control
// pipelining and observe responses exactly as sent.
type rawConn struct {
	t   *testing.T
	nc  net.Conn
	buf []byte
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawConn{t: t, nc: nc}
}

func (r *rawConn) send(frames ...Frame) {
	r.t.Helper()
	var b []byte
	for _, f := range frames {
		b = AppendFrame(b, f)
	}
	if _, err := r.nc.Write(b); err != nil {
		r.t.Fatalf("raw write: %v", err)
	}
}

func (r *rawConn) recv() Frame {
	r.t.Helper()
	f, buf, err := ReadFrame(r.nc, DefaultMaxPayload, r.buf)
	if err != nil {
		r.t.Fatalf("raw read: %v", err)
	}
	r.buf = buf
	f.Payload = append([]byte(nil), f.Payload...)
	return f
}

// TestServerPipelined is the acceptance load: 4 connections, each with 256
// requests in flight before the first response is read, under -race. Every
// request must be answered exactly once, matched by id, with the correct
// result — zero lost, zero misordered.
func TestServerPipelined(t *testing.T) {
	store, err := mccuckoo.NewSharded(1<<16, 8, mccuckoo.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	const preload = 1000
	for i := 0; i < preload; i++ {
		store.Insert(uint64(i), uint64(i)*3+1)
	}
	// QueueDepth must exceed the in-flight depth so that backpressure never
	// converts load into BUSY here; the BUSY path has its own test.
	_, addr, shutdown := startServer(t, store, func(c *Config) { c.QueueDepth = 512 })
	defer shutdown()

	const conns = 4
	const inflight = 256
	var wg sync.WaitGroup
	for cn := 0; cn < conns; cn++ {
		wg.Add(1)
		go func(cn int) {
			defer wg.Done()
			rc := dialRaw(t, addr)
			// Blast every request before reading anything: even GETs are
			// interleaved with PUTs into a per-connection key range.
			frames := make([]Frame, inflight)
			for i := 0; i < inflight; i++ {
				id := uint64(cn)<<32 | uint64(i)
				if i%2 == 0 {
					frames[i] = Frame{Type: OpGet, ID: id,
						Payload: appendU64(nil, uint64(i%preload))}
				} else {
					p := appendU64(nil, uint64(1_000_000+cn*inflight+i))
					p = appendU64(p, id)
					frames[i] = Frame{Type: OpPut, ID: id, Payload: p}
				}
			}
			rc.send(frames...)

			got := make(map[uint64]Frame, inflight)
			for i := 0; i < inflight; i++ {
				f := rc.recv()
				if _, dup := got[f.ID]; dup {
					t.Errorf("conn %d: duplicate response id %#x", cn, f.ID)
					return
				}
				got[f.ID] = f
			}
			for i := 0; i < inflight; i++ {
				id := uint64(cn)<<32 | uint64(i)
				f, ok := got[id]
				if !ok {
					t.Errorf("conn %d: lost response for id %#x", cn, id)
					return
				}
				if f.Status() != StatusOK {
					t.Errorf("conn %d: id %#x status %d", cn, id, f.Status())
					return
				}
				c := cursor{b: f.Payload}
				if i%2 == 0 {
					found, v := c.u8(), c.u64()
					want := uint64(i%preload)*3 + 1
					if !c.ok() || found != 1 || v != want {
						t.Errorf("conn %d: get %#x = %d,%d want %d,1", cn, id, v, found, want)
						return
					}
				} else {
					status, _ := c.u8(), c.u32()
					if !c.ok() || mccuckoo.Status(status) == mccuckoo.Failed {
						t.Errorf("conn %d: put %#x status %d", cn, id, status)
						return
					}
				}
			}
		}(cn)
	}
	wg.Wait()
}

// gatedStore blocks every Lookup until the gate opens, letting tests hold a
// server worker mid-request deterministically.
type gatedStore struct {
	mccuckoo.BatchStore
	gate chan struct{}
}

func (g *gatedStore) Lookup(key uint64) (uint64, bool) {
	<-g.gate
	return g.BatchStore.Lookup(key)
}

// TestServerBusy fills a tiny work queue behind a blocked worker: the
// overflow must be answered BUSY immediately — not buffered, not deadlocked
// — and the queued requests must still complete once the store unblocks.
func TestServerBusy(t *testing.T) {
	gate := make(chan struct{})
	store := &gatedStore{BatchStore: newLockedTable(t, 1024), gate: gate}
	srv, addr, shutdown := startServer(t, store, func(c *Config) { c.QueueDepth = 2 })
	defer shutdown()

	rc := dialRaw(t, addr)
	const n = 32
	frames := make([]Frame, n)
	for i := range frames {
		frames[i] = Frame{Type: OpGet, ID: uint64(i + 1), Payload: appendU64(nil, 7)}
	}
	rc.send(frames...)

	// While the gate is closed at most 1 (worker) + QueueDepth (2) requests
	// can be admitted; every other request must come back BUSY.
	busy := 0
	seen := make(map[uint64]bool, n)
	for busy < n-3 {
		f := rc.recv()
		if f.Status() != StatusBusy {
			t.Fatalf("got status %d with gate closed, want BUSY", f.Status())
		}
		if seen[f.ID] {
			t.Fatalf("duplicate BUSY for id %d", f.ID)
		}
		seen[f.ID] = true
		busy++
	}
	close(gate)
	ok := 0
	for len(seen) < n {
		f := rc.recv()
		if seen[f.ID] {
			t.Fatalf("duplicate response for id %d", f.ID)
		}
		seen[f.ID] = true
		switch f.Status() {
		case StatusOK:
			ok++
		case StatusBusy:
			busy++
		default:
			t.Fatalf("status %d for id %d", f.Status(), f.ID)
		}
	}
	if ok < 2 || ok > 3 || busy != n-ok {
		t.Fatalf("ok=%d busy=%d, want 2-3 admitted and the rest BUSY", ok, busy)
	}
	if got := srv.busy.Load(); got != int64(busy) {
		t.Fatalf("server busy counter %d, want %d", got, busy)
	}
}

// TestServerDrain: queued requests survive Shutdown — the drain completes
// them and flushes their responses before the connection closes.
func TestServerDrain(t *testing.T) {
	gate := make(chan struct{})
	store := &gatedStore{BatchStore: newLockedTable(t, 1024), gate: gate}
	srv, addr, _ := startServer(t, store, func(c *Config) { c.QueueDepth = 8 })

	tab := store.BatchStore
	tab.Insert(7, 77)

	rc := dialRaw(t, addr)
	rc.send(
		Frame{Type: OpGet, ID: 1, Payload: appendU64(nil, 7)},
		Frame{Type: OpGet, ID: 2, Payload: appendU64(nil, 7)},
		Frame{Type: OpGet, ID: 3, Payload: appendU64(nil, 7)},
	)
	// Wait until the server has read all three frames off the socket, so
	// none can be lost to the drain race between socket and work queue.
	deadline := time.Now().Add(5 * time.Second)
	for srv.bytesIn.Load() < 3*(8+FrameOverhead) {
		if time.Now().After(deadline) {
			t.Fatal("server never read the pipelined requests")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Give the drain a moment to interrupt the reader, then release the
	// store: the three queued lookups must still be answered.
	time.Sleep(20 * time.Millisecond)
	close(gate)

	for i := 0; i < 3; i++ {
		f := rc.recv()
		if f.Status() != StatusOK {
			t.Fatalf("drained response %d: status %d", i, f.Status())
		}
		c := cursor{b: f.Payload}
		found, v := c.u8(), c.u64()
		if !c.ok() || found != 1 || v != 77 {
			t.Fatalf("drained response %d: %d,%d", i, v, found)
		}
	}
	if _, _, err := ReadFrame(rc.nc, DefaultMaxPayload, nil); err == nil {
		t.Fatal("connection still open after drain")
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

// panicStore panics on one magic key.
type panicStore struct {
	mccuckoo.BatchStore
}

func (p *panicStore) Lookup(key uint64) (uint64, bool) {
	if key == 666 {
		panic("store exploded")
	}
	return p.BatchStore.Lookup(key)
}

// TestServerPanicIsolation: a panicking request is answered ERR and the
// connection keeps serving.
func TestServerPanicIsolation(t *testing.T) {
	store := &panicStore{BatchStore: newLockedTable(t, 1024)}
	store.Insert(1, 10)
	srv, addr, shutdown := startServer(t, store, nil)
	defer shutdown()
	c := dialClient(t, addr, nil)

	_, _, err := c.Get(666)
	var se *ServerError
	if !errors.As(err, &se) || !bytes.Contains([]byte(se.Msg), []byte("internal error")) {
		t.Fatalf("panic request: %v, want internal-error ServerError", err)
	}
	if v, ok, err := c.Get(1); err != nil || !ok || v != 10 {
		t.Fatalf("connection unusable after panic: %d, %v, %v", v, ok, err)
	}
	if srv.panics.Load() != 1 {
		t.Fatalf("panics counter = %d, want 1", srv.panics.Load())
	}
}

// TestServerConnLimit: the connection past MaxConns gets one ERR frame and
// is closed; the admitted connection is unaffected.
func TestServerConnLimit(t *testing.T) {
	srv, addr, shutdown := startServer(t, newLockedTable(t, 1024), func(c *Config) { c.MaxConns = 1 })
	defer shutdown()
	c := dialClient(t, addr, func(cc *ClientConfig) { cc.Conns = 1 })
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	f, _, err := ReadFrame(nc, DefaultMaxPayload, nil)
	if err != nil {
		t.Fatalf("over-limit conn: %v, want ERR frame", err)
	}
	if f.Status() != StatusErr || f.ID != 0 {
		t.Fatalf("over-limit conn got status %d id %d", f.Status(), f.ID)
	}
	if _, _, err := ReadFrame(nc, DefaultMaxPayload, nil); err == nil {
		t.Fatal("over-limit conn not closed")
	}
	if srv.rejected.Load() != 1 {
		t.Fatalf("rejected counter = %d, want 1", srv.rejected.Load())
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("admitted conn broken by rejection: %v", err)
	}
}

// TestServerMalformedPayload: a structurally valid frame with a bad payload
// gets ERR; the connection survives. A corrupt frame kills the connection.
func TestServerMalformedPayload(t *testing.T) {
	srv, addr, shutdown := startServer(t, newLockedTable(t, 1024), nil)
	defer shutdown()

	rc := dialRaw(t, addr)
	rc.send(Frame{Type: OpGet, ID: 1, Payload: []byte{1, 2, 3}}) // not 8 bytes
	if f := rc.recv(); f.Status() != StatusErr {
		t.Fatalf("malformed get: status %d, want ERR", f.Status())
	}
	rc.send(Frame{Type: 42, ID: 2})
	if f := rc.recv(); f.Status() != StatusErr {
		t.Fatalf("unknown opcode: status %d, want ERR", f.Status())
	}
	rc.send(Frame{Type: OpBatch, ID: 3, Payload: appendU32(appendU8(nil, OpGet), 999)})
	if f := rc.recv(); f.Status() != StatusErr {
		t.Fatalf("lying batch count: status %d, want ERR", f.Status())
	}
	// Connection still healthy after three ERRs.
	rc.send(Frame{Type: OpPing, ID: 4})
	if f := rc.recv(); f.Status() != StatusOK || f.ID != 4 {
		t.Fatalf("ping after errors: %+v", f)
	}

	// A frame with a corrupt checksum is a protocol violation: the server
	// must drop the connection.
	bad := AppendFrame(nil, Frame{Type: OpPing, ID: 5})
	bad[len(bad)-1] ^= 0xff
	if _, err := rc.nc.Write(bad); err != nil {
		t.Fatal(err)
	}
	rc.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := ReadFrame(rc.nc, DefaultMaxPayload, nil); err == nil {
		t.Fatal("connection survived a corrupt frame")
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.badFrames.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("bad-frame counter never incremented")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerUnderTrafficWithScrape is the race smoke named in ci.sh: a
// fleet of clients hammers every op while scrapers concurrently read the
// server exposition and the table's own stats.
func TestServerUnderTrafficWithScrape(t *testing.T) {
	tel := mccuckoo.NewTelemetry()
	store, err := mccuckoo.NewSharded(1<<13, 8, mccuckoo.WithSeed(5), mccuckoo.WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, shutdown := startServer(t, store, nil)
	defer shutdown()

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			// A scrape snapshots live gauges, which walks the table; pace
			// the loop so scrapes overlap traffic without dominating it.
			for {
				select {
				case <-stop:
					return
				case <-time.After(25 * time.Millisecond):
				}
				if err := srv.WritePrometheus(io.Discard); err != nil {
					t.Errorf("server scrape: %v", err)
					return
				}
				if err := tel.WriteMetrics(io.Discard); err != nil {
					t.Errorf("telemetry scrape: %v", err)
					return
				}
				_ = store.Stats()
				_ = store.LoadRatio()
			}
		}()
	}

	const fleet = 8
	c := dialClient(t, addr, func(cc *ClientConfig) { cc.Conns = 4 })
	var wg sync.WaitGroup
	for g := 0; g < fleet; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) << 20
			keys := make([]uint64, 64)
			vals := make([]uint64, 64)
			for i := range keys {
				keys[i], vals[i] = base+uint64(i), uint64(i)
			}
			for round := 0; round < 30; round++ {
				if _, err := c.PutBatch(keys, vals); err != nil {
					t.Errorf("fleet %d: put batch: %v", g, err)
					return
				}
				if _, _, err := c.GetBatch(keys); err != nil {
					t.Errorf("fleet %d: get batch: %v", g, err)
					return
				}
				if _, _, err := c.Get(base); err != nil {
					t.Errorf("fleet %d: get: %v", g, err)
					return
				}
				if _, err := c.Del(base + uint64(round)); err != nil {
					t.Errorf("fleet %d: del: %v", g, err)
					return
				}
				if _, err := c.Stats(); err != nil {
					t.Errorf("fleet %d: stats: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()

	var buf bytes.Buffer
	if err := srv.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mccuckoo_server_requests_total{op=\"batch\"}",
		"mccuckoo_server_connections_active",
		"mccuckoo_server_bytes_read_total",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("exposition missing %s:\n%s", want, buf.String())
		}
	}
}

// TestLockedDo: Do gives exclusive access to the wrapped store — the
// checkpointing hook used by mcserved.
func TestLockedDo(t *testing.T) {
	l := newLockedTable(t, 1024)
	l.Insert(5, 50)
	var got uint64
	l.Do(func(s mccuckoo.BatchStore) {
		v, ok := s.Lookup(5)
		if !ok {
			t.Error("Do: key missing")
		}
		got = v
	})
	if got != 50 {
		t.Fatalf("Do saw %d, want 50", got)
	}
	if fmt.Sprint(l.Len()) != "1" {
		t.Fatalf("Len = %d", l.Len())
	}
}
