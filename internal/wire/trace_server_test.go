package wire

import (
	"errors"
	"testing"

	"mccuckoo/internal/telemetry/trace"
)

// TestServerTracedSpans: a traced PUT and GET yield server_op spans parented
// to the client's context, each with a table_op child carrying the opcode
// (and the kick count for the put).
func TestServerTracedSpans(t *testing.T) {
	rec := trace.New(trace.Options{Capacity: 128, Sample: 1})
	_, addr, shutdown := startServer(t, newLockedTable(t, 4096), func(c *Config) { c.Trace = rec })
	defer shutdown()
	c := dialClient(t, addr, nil)

	tc := trace.Context{TraceID: 0xfeed, SpanID: 31, Hop: 1, Flags: trace.FlagSampled}
	if _, err := c.PutCtx(tc, 5, 50); err != nil {
		t.Fatalf("traced put: %v", err)
	}
	if v, ok, err := c.GetCtx(tc, 5); err != nil || !ok || v != 50 {
		t.Fatalf("traced get: %d %v %v", v, ok, err)
	}
	// An untraced request on the same server records nothing.
	if _, err := c.Put(6, 60); err != nil {
		t.Fatalf("untraced put: %v", err)
	}

	spans := rec.Spans()
	byKind := map[trace.Kind][]trace.Span{}
	for _, sp := range spans {
		if sp.TraceID != tc.TraceID {
			t.Fatalf("span from unexpected trace: %+v", sp)
		}
		byKind[sp.Kind] = append(byKind[sp.Kind], sp)
	}
	if len(byKind[trace.KindServerOp]) != 2 || len(byKind[trace.KindTableOp]) != 2 {
		t.Fatalf("got %d server_op and %d table_op spans, want 2+2 (all: %+v)",
			len(byKind[trace.KindServerOp]), len(byKind[trace.KindTableOp]), spans)
	}
	for _, sp := range byKind[trace.KindServerOp] {
		if sp.Parent != tc.SpanID {
			t.Errorf("server_op parent %d, want the wire context's span id %d", sp.Parent, tc.SpanID)
		}
		if sp.Hop != tc.Hop {
			t.Errorf("server_op hop %d, want %d", sp.Hop, tc.Hop)
		}
		if sp.Op != OpPut && sp.Op != OpGet {
			t.Errorf("server_op op %d, want put or get", sp.Op)
		}
	}
	srvByOp := map[uint8]trace.Span{}
	for _, sp := range byKind[trace.KindServerOp] {
		srvByOp[sp.Op] = sp
	}
	for _, sp := range byKind[trace.KindTableOp] {
		parent, ok := srvByOp[sp.Op]
		if !ok || sp.Parent != parent.SpanID {
			t.Errorf("table_op (op %d) parent %d not the matching server_op span", sp.Op, sp.Parent)
		}
		if sp.Key == 0 {
			t.Errorf("table_op missing key hash: %+v", sp)
		}
	}
}

// TestServerPanicFlightRecorded: a recovered request-handler panic lands in
// the flight recorder with the opcode even though the request was untraced,
// alongside the existing panics counter.
func TestServerPanicFlightRecorded(t *testing.T) {
	rec := trace.New(trace.Options{Capacity: 32, Sample: 1 << 30}) // sampler never fires
	store := &panicStore{BatchStore: newLockedTable(t, 1024)}
	srv, addr, shutdown := startServer(t, store, func(c *Config) { c.Trace = rec })
	defer shutdown()
	c := dialClient(t, addr, nil)

	var srvErr *ServerError
	if _, _, err := c.Get(666); err == nil || !errors.As(err, &srvErr) {
		t.Fatalf("panic request: %v, want ServerError", err)
	}
	if srv.panics.Load() != 1 {
		t.Fatalf("panics counter = %d, want 1", srv.panics.Load())
	}
	var panics []trace.Span
	for _, sp := range rec.Spans() {
		if sp.Kind == trace.KindPanic {
			panics = append(panics, sp)
		}
	}
	if len(panics) != 1 {
		t.Fatalf("flight recorder holds %d panic spans, want 1: %+v", len(panics), rec.Spans())
	}
	if panics[0].Op != OpGet {
		t.Fatalf("panic span op %d, want OpGet", panics[0].Op)
	}
}
