package wire

import (
	"testing"

	"mccuckoo"
)

// newProbeHarness builds a ServeProbe over a populated single-writer table.
// The probe is single-threaded, matching a connection worker, so a plain
// *mccuckoo.Table is a valid store here.
func newProbeHarness(tb testing.TB) (*ServeProbe, []uint64) {
	tb.Helper()
	tab, err := mccuckoo.New(1<<12, mccuckoo.WithSeed(11))
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = uint64(i)*2654435761 + 1
		if r := tab.Insert(keys[i], uint64(i)); r.Status == mccuckoo.Failed {
			tb.Fatalf("seed insert %d failed", i)
		}
	}
	p, err := NewServeProbe(tab)
	if err != nil {
		tb.Fatalf("NewServeProbe: %v", err)
	}
	return p, keys
}

// TestServePathZeroAlloc pins the zero-copy serve path: once the buffer
// freelists are primed, handling GET / update-PUT / miss-DEL / PING / batch
// GET requests allocates nothing. This is the property the pooled request
// and response buffers exist for — the old path copied every request payload
// and allocated every response frame.
func TestServePathZeroAlloc(t *testing.T) {
	p, keys := newProbeHarness(t)

	get := Frame{Type: OpGet, ID: 1, Payload: appendU64(nil, keys[7])}
	put := Frame{Type: OpPut, ID: 2, Payload: appendU64(appendU64(nil, keys[9]), 42)}
	del := Frame{Type: OpDel, ID: 3, Payload: appendU64(nil, 0xdead0000dead)} // miss
	ping := Frame{Type: OpPing, ID: 4}

	batch := appendU32(appendU8(nil, OpGet), 16)
	for i := 0; i < 16; i++ {
		batch = appendU64(batch, keys[i])
	}
	bget := Frame{Type: OpBatch, ID: 5, Payload: batch}

	for _, tc := range []struct {
		name string
		f    Frame
	}{
		{"get", get}, {"put_update", put}, {"del_miss", del},
		{"ping", ping}, {"batch_get", bget},
	} {
		f := tc.f
		if st := p.Handle(f); st != StatusOK {
			t.Fatalf("%s: status %d, want OK", tc.name, st)
		}
		if n := testing.AllocsPerRun(200, func() { p.Handle(f) }); n != 0 {
			t.Errorf("%s: %v allocs/op on the steady-state serve path, want 0", tc.name, n)
		}
	}
}

// BenchmarkServePathGet is the in-process serve-path benchmark backing the
// perf gate's wire/serve series; with -benchmem it should report 0 B/op.
func BenchmarkServePathGet(b *testing.B) {
	p, keys := newProbeHarness(b)
	f := Frame{Type: OpGet, ID: 1, Payload: appendU64(nil, keys[3])}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Handle(f)
	}
}
