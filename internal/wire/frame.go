// Package wire is the network serving layer of the McCuckoo tables: a
// stdlib-only length-prefixed binary protocol (DESIGN.md §10), a pipelined
// TCP server that binds any mccuckoo.Store, and a pooled client with
// retry-on-BUSY.
//
// # Frame layout
//
// Every message in either direction is one frame:
//
//	offset  size  field
//	0       2     magic "MW"
//	2       1     version (1)
//	3       1     type: request opcode (0x40 bit = traced, see below),
//	              or 0x80|status for responses
//	4       8     request id (little-endian; responses echo it)
//	12      4     payload length N (little-endian)
//	16      N     payload
//	16+N    4     CRC32C over bytes [0, 16+N) — the Castagnoli polynomial,
//	              the same convention as the snapshot format (§7)
//
// Requests and responses are matched by id, never by order: a client may
// pipeline any number of requests on one connection and the server may
// answer them as they complete. Payload encodings per opcode are documented
// on the codec functions below and in DESIGN.md §10.
//
// # Traced frames
//
// A request whose type byte carries the 0x40 flag bit additionally prefixes
// its payload with a 16-byte trace context (internal/telemetry/trace,
// DESIGN.md §13). The advertised payload length and the CRC cover the
// prefix; the decoder strips both the flag and the prefix, so handlers see
// the opcode and payload exactly as in the untraced case. Untraced frames
// are byte-identical to the pre-tracing protocol and the version byte stays
// 1 (the §10 policy): an old decoder sees a traced frame only as an unknown
// opcode and answers ERR, never misparses it. Responses and server-pushed
// stream frames are never traced.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"mccuckoo/internal/telemetry/trace"
)

func init() {
	// Give the trace package (which cannot import wire) opcode names for
	// its span dumps and tree renders.
	trace.RegisterOpNames(OpName)
}

// Protocol constants.
const (
	magic0  = 'M'
	magic1  = 'W'
	Version = 1

	headerLen = 16
	crcLen    = 4
	// FrameOverhead is the fixed per-frame byte cost beyond the payload.
	FrameOverhead = headerLen + crcLen

	// DefaultMaxPayload bounds a frame payload (1 MiB): large enough for
	// a ~64k-element batch, small enough that a hostile length prefix
	// cannot balloon memory.
	DefaultMaxPayload = 1 << 20
)

// Request opcodes.
const (
	OpGet   byte = 1
	OpPut   byte = 2
	OpDel   byte = 3
	OpBatch byte = 4
	OpStats byte = 5
	OpPing  byte = 6

	// OpVGet is a versioned GET: the response carries the key's state
	// (missing/live/tombstone), value, and last-write sequence number, the
	// inputs the cluster tier's read-repair compares across replicas.
	// Requires the server to run a *Replicated store.
	OpVGet byte = 7

	// OpSub subscribes the connection to the server's op log. After the OK
	// response the server pushes OpReplicate frames (echoing the subscribe
	// request id) and the client must not send further requests on the
	// connection. Requires a *Replicated store.
	OpSub byte = 8

	// OpReplicate carries a batch of sequence-numbered entries. As a
	// request it is the replication push (cluster writes and read-repair):
	// the server applies each entry newest-write-wins and answers with
	// per-entry apply statuses. As a server-sent frame on a subscribed
	// connection it is the op-log stream and has no response.
	OpReplicate byte = 9

	// OpDigest asks for the XOR state digest over a key range, filtered to
	// keys the named requester shares replica ownership of with this node.
	// When the range holds few enough keys the response enumerates them
	// (key, meta pairs), which is how the anti-entropy sweeper's bisection
	// bottoms out. Requires a *Replicated store.
	OpDigest byte = 10
)

// respFlag marks a frame as a response; the low bits carry the status.
const respFlag byte = 0x80

// flagTraced marks a request frame whose payload begins with a 16-byte
// trace context (see the package comment). Valid on requests only.
const flagTraced byte = 0x40

// Response statuses.
const (
	// StatusOK carries the operation's result payload.
	StatusOK byte = 0
	// StatusBusy is the backpressure signal: the connection's work queue
	// was full when the request arrived. The request was NOT executed;
	// retry after a backoff.
	StatusBusy byte = 1
	// StatusErr carries a human-readable error string as payload. The
	// connection remains usable.
	StatusErr byte = 2
)

// castagnoli is the CRC32C table, shared with the snapshot format.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame is one decoded protocol frame. Payload aliases the buffer it was
// decoded from; copy it before the next read if it must outlive one.
type Frame struct {
	Type    byte
	ID      uint64
	Payload []byte

	// Trace is the frame's trace context. On decode it is filled from the
	// traced-frame prefix (zero for untraced frames); on encode a valid
	// context on a request sets the flag bit and writes the prefix.
	Trace trace.Context

	// recvAt is when the server's read loop decoded the frame, the basis of
	// the queue-wait measurement in server spans. Zero when untraced.
	recvAt time.Time
}

// IsResponse reports whether the frame is a response.
func (f Frame) IsResponse() bool { return f.Type&respFlag != 0 }

// Status returns the response status (meaningless for requests).
func (f Frame) Status() byte { return f.Type &^ respFlag }

// OpName returns the mnemonic of a request opcode, for errors and metrics.
func OpName(op byte) string {
	switch op {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDel:
		return "del"
	case OpBatch:
		return "batch"
	case OpStats:
		return "stats"
	case OpPing:
		return "ping"
	case OpVGet:
		return "vget"
	case OpSub:
		return "subscribe"
	case OpReplicate:
		return "replicate"
	case OpDigest:
		return "digest"
	default:
		return "unknown"
	}
}

// ProtocolError is the typed error every frame decoder returns when the
// input violates the framing (bad magic, unknown version, oversized or
// truncated payload, checksum mismatch). A ProtocolError on a connection
// means the stream can no longer be trusted and must be closed.
type ProtocolError struct{ Reason string }

func (e *ProtocolError) Error() string { return "wire: protocol error: " + e.Reason }

func protoErrf(format string, args ...any) error {
	return &ProtocolError{Reason: fmt.Sprintf(format, args...)}
}

// putHeader writes the fixed 16-byte frame header into b.
//
//mcvet:hotpath
func putHeader(b []byte, typ byte, id uint64, payloadLen int) {
	b[0], b[1], b[2], b[3] = magic0, magic1, Version, typ
	binary.LittleEndian.PutUint64(b[4:12], id)
	binary.LittleEndian.PutUint32(b[12:16], uint32(payloadLen))
}

// parseHeader validates and splits the fixed 16-byte frame header. max
// bounds the advertised payload length. (Not a //mcvet:hotpath: the
// rejection paths format errors, which allocates — by design, rejections
// are the cold path.)
func parseHeader(b []byte, max int) (typ byte, id uint64, payloadLen int, err error) {
	if b[0] != magic0 || b[1] != magic1 {
		return 0, 0, 0, protoErrf("bad magic %#02x%02x", b[0], b[1])
	}
	if b[2] != Version {
		return 0, 0, 0, protoErrf("unsupported version %d", b[2])
	}
	typ = b[3]
	id = binary.LittleEndian.Uint64(b[4:12])
	n := binary.LittleEndian.Uint32(b[12:16])
	if int64(n) > int64(max) {
		return 0, 0, 0, protoErrf("payload length %d exceeds limit %d", n, max)
	}
	return typ, id, int(n), nil
}

// AppendFrame appends the encoded frame to dst and returns the extended
// slice. Encoding never fails; oversized payloads are the caller's bug and
// are caught by the peer's decoder. A valid f.Trace on a request sets the
// traced flag bit and prefixes the payload with the 16-byte context.
func AppendFrame(dst []byte, f Frame) []byte {
	typ, n := f.Type, len(f.Payload)
	traced := f.Trace.Valid() && typ&respFlag == 0
	if traced {
		typ |= flagTraced
		n += trace.ContextSize
	}
	var hdr [headerLen]byte
	putHeader(hdr[:], typ, f.ID, n)
	dst = append(dst, hdr[:]...)
	if traced {
		dst = trace.AppendContext(dst, f.Trace)
	}
	dst = append(dst, f.Payload...)
	crc := crc32.Update(0, castagnoli, dst[len(dst)-headerLen-n:])
	var tail [crcLen]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return append(dst, tail[:]...)
}

// assembleFrame builds the decoded Frame from a checksum-verified header
// and payload, stripping the traced-frame flag and prefix. It rejects the
// flag on responses and any prefix AppendContext could not have produced
// (short payload, zero trace id, nonzero reserved bytes), so every accepted
// frame re-encodes byte-identically.
func assembleFrame(typ byte, id uint64, payload []byte) (Frame, error) {
	if typ&flagTraced == 0 {
		return Frame{Type: typ, ID: id, Payload: payload}, nil
	}
	if typ&respFlag != 0 {
		return Frame{}, protoErrf("trace flag on response frame (type %#02x)", typ)
	}
	tc, ok := trace.ParseContext(payload)
	if !ok {
		return Frame{}, protoErrf("traced frame with invalid trace prefix (payload %d bytes)", len(payload))
	}
	return Frame{Type: typ &^ flagTraced, ID: id, Payload: payload[trace.ContextSize:], Trace: tc}, nil
}

// DecodeFrame decodes one frame from the front of b, returning the frame
// and the number of bytes consumed. The returned payload aliases b. It
// returns io.ErrUnexpectedEOF when b holds a valid prefix of a frame and a
// *ProtocolError when b cannot be a frame at all.
func DecodeFrame(b []byte, max int) (Frame, int, error) {
	if len(b) < headerLen {
		return Frame{}, 0, io.ErrUnexpectedEOF
	}
	typ, id, n, err := parseHeader(b[:headerLen], max)
	if err != nil {
		return Frame{}, 0, err
	}
	total := headerLen + n + crcLen
	if len(b) < total {
		return Frame{}, 0, io.ErrUnexpectedEOF
	}
	want := binary.LittleEndian.Uint32(b[headerLen+n:])
	if got := crc32.Checksum(b[:headerLen+n], castagnoli); got != want {
		return Frame{}, 0, protoErrf("checksum mismatch: computed %08x, frame says %08x", got, want)
	}
	f, err := assembleFrame(typ, id, b[headerLen:headerLen+n])
	if err != nil {
		return Frame{}, 0, err
	}
	return f, total, nil
}

// ReadFrame reads one frame from r. buf is an optional scratch buffer that
// is reused (and grown) across calls; the returned slice is the buffer to
// pass to the next call, and the frame's payload aliases it.
func ReadFrame(r io.Reader, max int, buf []byte) (Frame, []byte, error) {
	need := headerLen
	if cap(buf) < need {
		buf = make([]byte, headerLen, headerLen+512)
	}
	buf = buf[:headerLen]
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, buf, err
	}
	typ, id, n, err := parseHeader(buf, max)
	if err != nil {
		return Frame{}, buf, err
	}
	total := headerLen + n + crcLen
	if cap(buf) < total {
		grown := make([]byte, total)
		copy(grown, buf[:headerLen])
		buf = grown
	}
	buf = buf[:total]
	if _, err := io.ReadFull(r, buf[headerLen:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, buf, err
	}
	want := binary.LittleEndian.Uint32(buf[headerLen+n:])
	if got := crc32.Checksum(buf[:headerLen+n], castagnoli); got != want {
		return Frame{}, buf, protoErrf("checksum mismatch: computed %08x, frame says %08x", got, want)
	}
	f, err := assembleFrame(typ, id, buf[headerLen:headerLen+n])
	if err != nil {
		return Frame{}, buf, err
	}
	return f, buf, nil
}
