package wire

import "mccuckoo"

// ServeProbe drives one connection worker's serve path in-process, bypassing
// the network: each Handle call executes a decoded request frame exactly as a
// connection's worker goroutine would, including the response-buffer freelist
// cycle the connection's writer performs. It exists so the perf gate's wire
// series and the zero-allocation assertions measure the serve path itself,
// not loopback TCP.
//
// A ServeProbe is not safe for concurrent use — like a connection worker, it
// is single-threaded by construction.
type ServeProbe struct {
	h    *connHandler
	free chan []byte
}

// NewServeProbe returns a probe serving store with default server
// configuration. The backing Server is never started; only the request
// execution path is exercised.
func NewServeProbe(store mccuckoo.BatchStore) (*ServeProbe, error) {
	srv, err := NewServer(Config{Store: store})
	if err != nil {
		return nil, err
	}
	free := make(chan []byte, 4)
	return &ServeProbe{h: &connHandler{srv: srv, freeResp: free}, free: free}, nil
}

// Handle executes one request frame and returns the response status, after
// recycling the response buffer the way a connection writer would once the
// bytes were on the wire.
func (p *ServeProbe) Handle(f Frame) byte {
	b := p.h.handle(f)
	status := b[3] &^ respFlag
	select {
	case p.free <- b:
	default:
	}
	return status
}
