package wire

import (
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeServer speaks raw frames and delegates each request to fn; fn
// returning respond=false swallows the request (for timeout tests).
// closeAfter > 0 closes each connection after that many responses.
type fakeServer struct {
	ln         net.Listener
	fn         func(f Frame) (status byte, payload []byte, respond bool)
	closeAfter int
}

func startFake(t *testing.T, closeAfter int, fn func(f Frame) (byte, []byte, bool)) (string, *fakeServer) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln, fn: fn, closeAfter: closeAfter}
	t.Cleanup(func() { ln.Close() })
	go fs.run()
	return ln.Addr().String(), fs
}

func (fs *fakeServer) run() {
	for {
		nc, err := fs.ln.Accept()
		if err != nil {
			return
		}
		go fs.serve(nc)
	}
}

func (fs *fakeServer) serve(nc net.Conn) {
	defer nc.Close()
	var buf []byte
	responded := 0
	for {
		f, b, err := ReadFrame(nc, DefaultMaxPayload, buf)
		buf = b
		if err != nil {
			return
		}
		status, payload, respond := fs.fn(f)
		if !respond {
			continue
		}
		if _, err := nc.Write(respFrame(f.ID, status, payload)); err != nil {
			return
		}
		responded++
		if fs.closeAfter > 0 && responded >= fs.closeAfter {
			return
		}
	}
}

func TestClientRetryOnBusy(t *testing.T) {
	var calls atomic.Int64
	addr, _ := startFake(t, 0, func(f Frame) (byte, []byte, bool) {
		if calls.Add(1) <= 2 {
			return StatusBusy, nil, true
		}
		return StatusOK, nil, true
	})
	c, err := Dial(ClientConfig{Addr: addr, Conns: 1, BusyRetries: 5, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping despite retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 BUSY + 1 OK)", got)
	}
}

func TestClientBusyExhausted(t *testing.T) {
	var calls atomic.Int64
	addr, _ := startFake(t, 0, func(f Frame) (byte, []byte, bool) {
		calls.Add(1)
		return StatusBusy, nil, true
	})
	c, err := Dial(ClientConfig{Addr: addr, Conns: 1, BusyRetries: 2, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); !errors.Is(err, ErrBusy) {
		t.Fatalf("ping: %v, want ErrBusy", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (initial + 2 retries)", got)
	}
}

func TestClientTimeout(t *testing.T) {
	addr, _ := startFake(t, 0, func(f Frame) (byte, []byte, bool) {
		return 0, nil, false // never answer
	})
	c, err := Dial(ClientConfig{Addr: addr, Conns: 1, RequestTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Ping()
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("ping: %v, want timeout", err)
	}
}

func TestClientServerError(t *testing.T) {
	addr, _ := startFake(t, 0, func(f Frame) (byte, []byte, bool) {
		return StatusErr, []byte("nope"), true
	})
	c, err := Dial(ClientConfig{Addr: addr, Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var se *ServerError
	if err := c.Ping(); !errors.As(err, &se) || se.Msg != "nope" {
		t.Fatalf("ping: %v, want ServerError(nope)", err)
	}
}

// TestClientReconnect: a connection the server drops is replaced on the
// next request instead of poisoning the pool.
func TestClientReconnect(t *testing.T) {
	addr, _ := startFake(t, 1, func(f Frame) (byte, []byte, bool) {
		return StatusOK, nil, true
	})
	c, err := Dial(ClientConfig{Addr: addr, Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
		// The server closed the connection after responding; wait for the
		// client's read loop to notice so the next conn() call redials
		// instead of racing the write against the close.
		deadline := time.Now().Add(5 * time.Second)
		for {
			c.mu.Lock()
			dead := c.conns[0] != nil && c.conns[0].dead.Load()
			c.mu.Unlock()
			if dead || time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestClientClosed(t *testing.T) {
	addr, _ := startFake(t, 0, func(f Frame) (byte, []byte, bool) {
		return StatusOK, nil, true
	})
	c, err := Dial(ClientConfig{Addr: addr, Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Ping(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("ping after close: %v, want ErrClientClosed", err)
	}
}
