package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"mccuckoo/internal/telemetry/trace"
)

func TestTracedFrameRoundTrip(t *testing.T) {
	tc := trace.Context{TraceID: 0x1122334455667788, SpanID: 99, Hop: 2, Flags: trace.FlagSampled}
	payload := []byte("key-bytes")
	b := AppendFrame(nil, Frame{Type: OpPut, ID: 41, Payload: payload, Trace: tc})
	if want := FrameOverhead + trace.ContextSize + len(payload); len(b) != want {
		t.Fatalf("traced frame is %d bytes, want %d", len(b), want)
	}
	if b[3] != OpPut|flagTraced {
		t.Fatalf("type byte %#02x, want flag set", b[3])
	}
	fr, n, err := DecodeFrame(b, DefaultMaxPayload)
	if err != nil || n != len(b) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if fr.Type != OpPut || fr.Trace != tc || !bytes.Equal(fr.Payload, payload) {
		t.Fatalf("decoded %+v", fr)
	}
	if re := AppendFrame(nil, fr); !bytes.Equal(re, b) {
		t.Fatal("re-encode of traced frame not byte-identical")
	}
	fr2, _, err := ReadFrame(bytes.NewReader(b), DefaultMaxPayload, nil)
	if err != nil || fr2.Type != OpPut || fr2.Trace != tc || !bytes.Equal(fr2.Payload, payload) {
		t.Fatalf("ReadFrame: %+v err=%v", fr2, err)
	}

	// A context on a response frame must encode nothing: responses are
	// never traced and stay byte-identical to the untraced encoding.
	resp := AppendFrame(nil, Frame{Type: respFlag | StatusOK, ID: 41, Payload: payload, Trace: tc})
	plain := AppendFrame(nil, Frame{Type: respFlag | StatusOK, ID: 41, Payload: payload})
	if !bytes.Equal(resp, plain) {
		t.Fatal("response frame encoding changed by a trace context")
	}

	// An untraced request stays byte-identical to the pre-tracing protocol.
	if got, want := AppendFrame(nil, Frame{Type: OpPut, ID: 41, Payload: payload}),
		AppendFrame(nil, Frame{Type: OpPut, ID: 41, Payload: payload, Trace: trace.Context{}}); !bytes.Equal(got, want) {
		t.Fatal("zero trace context changed the encoding")
	}
}

func TestTracedFrameRejections(t *testing.T) {
	var protoErr *ProtocolError
	cases := map[string][]byte{
		"flag with short payload": AppendFrame(nil, Frame{Type: OpGet | flagTraced, ID: 1, Payload: []byte{1, 2, 3}}),
		"flag with empty payload": AppendFrame(nil, Frame{Type: OpGet | flagTraced, ID: 2}),
		"flag on response": AppendFrame(nil, Frame{Type: respFlag | StatusOK | flagTraced, ID: 3,
			Payload: trace.AppendContext(nil, trace.Context{TraceID: 9})}),
		"zero trace id": AppendFrame(nil, Frame{Type: OpGet | flagTraced, ID: 4,
			Payload: make([]byte, trace.ContextSize)}),
	}
	bad := trace.AppendContext(nil, trace.Context{TraceID: 9})
	bad[15] = 7
	cases["nonzero reserved byte"] = AppendFrame(nil, Frame{Type: OpGet | flagTraced, ID: 5, Payload: bad})
	for name, b := range cases {
		if _, _, err := DecodeFrame(b, DefaultMaxPayload); err == nil || !errors.As(err, &protoErr) {
			t.Errorf("%s: err=%v, want ProtocolError", name, err)
		}
		if _, _, err := ReadFrame(bytes.NewReader(b), DefaultMaxPayload, nil); err == nil || !errors.As(err, &protoErr) {
			t.Errorf("%s (reader): err=%v, want ProtocolError", name, err)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: OpPing, ID: 0},
		{Type: OpGet, ID: 1, Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Type: respFlag | StatusOK, ID: 1 << 60, Payload: bytes.Repeat([]byte{0xab}, 4096)},
		{Type: respFlag | StatusBusy, ID: ^uint64(0)},
		{Type: OpVGet, ID: 2, Payload: bytes.Repeat([]byte{9}, 8)},
		{Type: OpSub, ID: 3, Payload: AppendSubscribePayload(nil, 12345)},
		{Type: OpReplicate, ID: 4, Payload: AppendReplicatePayload(nil, 77, []Entry{
			{Seq: 77, Op: OpPut, Key: 5, Value: 50},
			{Seq: 76, Op: OpDel, Key: 6},
		})},
		{Type: OpDigest, ID: 5, Payload: AppendDigestRequest(nil, 0, ^uint64(0), 128, "node-a:7000")},
	}
	var stream []byte
	for _, f := range frames {
		stream = AppendFrame(stream, f)
	}

	// Decode back out of the concatenated stream.
	rest := stream
	for i, want := range frames {
		got, n, err := DecodeFrame(rest, DefaultMaxPayload)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if n != FrameOverhead+len(want.Payload) {
			t.Fatalf("frame %d: consumed %d bytes, want %d", i, n, FrameOverhead+len(want.Payload))
		}
		if got.Type != want.Type || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: round trip mismatch: %+v", i, got)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}

	// Same stream through the io.Reader path with buffer reuse.
	r := bytes.NewReader(stream)
	var buf []byte
	for i, want := range frames {
		var got Frame
		var err error
		got, buf, err = ReadFrame(r, DefaultMaxPayload, buf)
		if err != nil {
			t.Fatalf("frame %d: ReadFrame: %v", i, err)
		}
		if got.Type != want.Type || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: ReadFrame mismatch: %+v", i, got)
		}
	}
	if _, _, err := ReadFrame(r, DefaultMaxPayload, buf); !errors.Is(err, io.EOF) {
		t.Fatalf("read past end: %v, want io.EOF", err)
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	good := AppendFrame(nil, Frame{Type: OpGet, ID: 7, Payload: []byte{9, 9, 9}})

	var protoErr *ProtocolError
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		max     int
		isProto bool
	}{
		{"empty", func(b []byte) []byte { return nil }, DefaultMaxPayload, false},
		{"short header", func(b []byte) []byte { return b[:10] }, DefaultMaxPayload, false},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-5] }, DefaultMaxPayload, false},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, DefaultMaxPayload, true},
		{"bad version", func(b []byte) []byte { b[2] = 99; return b }, DefaultMaxPayload, true},
		{"oversized", func(b []byte) []byte { return b }, 2, true},
		{"corrupt payload", func(b []byte) []byte { b[headerLen] ^= 0xff; return b }, DefaultMaxPayload, true},
		{"corrupt crc", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, DefaultMaxPayload, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), good...))
			_, _, err := DecodeFrame(b, tc.max)
			if err == nil {
				t.Fatal("decode accepted corrupt input")
			}
			if got := errors.As(err, &protoErr); got != tc.isProto {
				t.Fatalf("error %v: ProtocolError=%v, want %v", err, got, tc.isProto)
			}
			// The reader path must agree with the slice path.
			_, _, rerr := ReadFrame(bytes.NewReader(b), tc.max, nil)
			if rerr == nil {
				t.Fatal("ReadFrame accepted corrupt input")
			}
		})
	}
}

// FuzzWireFrame feeds arbitrary bytes to the decoder: it must never panic,
// and any input it accepts must re-encode byte-identically and decode back
// to an equal frame.
func FuzzWireFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("MW"))
	f.Add(AppendFrame(nil, Frame{Type: OpPing, ID: 0}))
	f.Add(AppendFrame(nil, Frame{Type: OpPut, ID: 42, Payload: bytes.Repeat([]byte{7}, 16)}))
	f.Add(AppendFrame(nil, Frame{Type: respFlag | StatusErr, ID: 1, Payload: []byte("boom")}))
	f.Add(AppendFrame(nil, Frame{Type: OpVGet, ID: 5, Payload: bytes.Repeat([]byte{3}, 8)}))
	f.Add(AppendFrame(nil, Frame{Type: OpSub, ID: 6, Payload: AppendSubscribePayload(nil, 99)}))
	f.Add(AppendFrame(nil, Frame{Type: OpReplicate, ID: 7, Payload: AppendReplicatePayload(nil, 4, []Entry{
		{Seq: 4, Op: OpPut, Key: 1, Value: 2},
		{Seq: 3, Op: OpDel, Key: 9},
	})}))
	f.Add(AppendFrame(nil, Frame{Type: OpDigest, ID: 8, Payload: AppendDigestRequest(nil, 10, 20, 64, "n1")}))
	corrupt := AppendFrame(nil, Frame{Type: OpGet, ID: 3, Payload: []byte{1, 2, 3}})
	corrupt[len(corrupt)-2] ^= 0x40
	f.Add(corrupt)
	// Traced frames: a valid one, plus encodings only a broken encoder
	// could emit — flag with a short payload, flag on a response, nonzero
	// reserved prefix bytes — which must be rejected, never panic.
	f.Add(AppendFrame(nil, Frame{Type: OpPut, ID: 9, Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		Trace: trace.Context{TraceID: 0xabcdef, SpanID: 77, Hop: 1, Flags: trace.FlagSampled}}))
	shortTraced := AppendFrame(nil, Frame{Type: OpPing | flagTraced, ID: 10, Payload: []byte{1, 2, 3}})
	f.Add(shortTraced)
	f.Add(AppendFrame(nil, Frame{Type: respFlag | StatusOK | flagTraced, ID: 11,
		Payload: trace.AppendContext(nil, trace.Context{TraceID: 5, Flags: trace.FlagSampled})}))
	badReserved := trace.AppendContext(nil, trace.Context{TraceID: 5})
	badReserved[14] = 1
	f.Add(AppendFrame(nil, Frame{Type: OpGet | flagTraced, ID: 12, Payload: badReserved}))

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b, DefaultMaxPayload)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v but consumed %d bytes", err, n)
			}
			return
		}
		if n < FrameOverhead || n > len(b) {
			t.Fatalf("consumed %d bytes of %d", n, len(b))
		}
		re := AppendFrame(nil, fr)
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("re-encode differs from accepted input")
		}
		fr2, n2, err := DecodeFrame(re, DefaultMaxPayload)
		if err != nil || n2 != len(re) {
			t.Fatalf("re-decode: n=%d err=%v", n2, err)
		}
		if fr2.Type != fr.Type || fr2.ID != fr.ID || !bytes.Equal(fr2.Payload, fr.Payload) || fr2.Trace != fr.Trace {
			t.Fatalf("round trip mismatch: %+v vs %+v", fr, fr2)
		}
		// The streaming reader must accept exactly the same frame.
		fr3, _, err := ReadFrame(bytes.NewReader(b), DefaultMaxPayload, nil)
		if err != nil {
			t.Fatalf("ReadFrame rejected what DecodeFrame accepted: %v", err)
		}
		if fr3.Type != fr.Type || fr3.ID != fr.ID || !bytes.Equal(fr3.Payload, fr.Payload) || fr3.Trace != fr.Trace {
			t.Fatalf("ReadFrame/DecodeFrame disagree")
		}
	})
}
