package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mccuckoo"
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/telemetry/trace"
)

// ErrServerClosed is returned by Serve after Shutdown begins.
var ErrServerClosed = errors.New("wire: server closed")

// Config configures a Server. The zero value of every field except Store is
// usable; defaults are applied by NewServer.
type Config struct {
	// Store is the table being served. Required, and must be safe for the
	// server's concurrency: each connection runs its requests on its own
	// goroutine, so unless the server has exactly one client connection the
	// store must be a Sharded table or a Locked wrapper. (A Concurrent
	// wrapper is NOT enough: two connections can both issue PUTs.)
	Store mccuckoo.BatchStore

	// MaxConns caps simultaneously served connections (default 256). A
	// connection beyond the cap receives one ERR frame and is closed.
	MaxConns int

	// QueueDepth bounds each connection's queue of decoded-but-unexecuted
	// requests (default 128). A request arriving on a full queue is answered
	// with BUSY instead of being buffered — backpressure is explicit and
	// memory per connection stays bounded.
	QueueDepth int

	// MaxPayload bounds a request frame's payload (default
	// DefaultMaxPayload).
	MaxPayload int

	// IdleTimeout closes a connection that sends no frame for this long
	// (default 2m).
	IdleTimeout time.Duration

	// WriteTimeout bounds each response write (default 10s). A client that
	// stops reading is disconnected rather than allowed to pin a writer.
	WriteTimeout time.Duration

	// SubKeepalive is how often an idle op-log subscription sends an empty
	// REPLICATE frame (default 500ms). Keepalives refresh the subscriber's
	// view of the server's high-water sequence number, which is what the
	// replica-lag metric measures against.
	SubKeepalive time.Duration

	// Logf, when non-nil, receives one line per abnormal connection event
	// (protocol errors, panics, write failures).
	Logf func(format string, args ...any)

	// Trace, when non-nil, records server-side spans (request execution
	// with queue wait, table ops with kick counts, replication applies,
	// recovered panics) for requests carrying a sampled trace context —
	// plus slow and panicking requests regardless of context, per the
	// recorder's options. Nil disables tracing at zero cost.
	Trace *trace.Recorder
}

// Server serves the wire protocol over TCP (or any net.Listener). Requests
// on one connection are decoded by a reader goroutine, executed in order by
// a worker goroutine, and written by a writer goroutine, so a client may
// pipeline any number of requests; responses carry the request id and may
// be matched out of order with other connections' work.
//
//mcvet:lifecycle
type Server struct {
	cfg Config

	// rep is non-nil when the served store is a *Replicated; the
	// replication opcodes (VGET, SUBSCRIBE, REPLICATE) require it and are
	// answered with ERR otherwise.
	rep *Replicated

	mu sync.Mutex
	//mcvet:guardedby mu
	listeners map[net.Listener]struct{}
	//mcvet:guardedby mu
	conns map[net.Conn]struct{}
	//mcvet:guardedby mu
	draining bool

	// drain is closed when Shutdown begins; per-connection watchers use it
	// to interrupt blocked reads.
	drain chan struct{}
	wg    sync.WaitGroup

	// Metrics. ops is indexed by request opcode.
	ops       [16]atomic.Int64
	subs      atomic.Int64
	busy      atomic.Int64
	errored   atomic.Int64
	panics    atomic.Int64
	badFrames atomic.Int64
	bytesIn   atomic.Int64
	bytesOut  atomic.Int64
	accepted  atomic.Int64
	rejected  atomic.Int64
	active    atomic.Int64
}

// NewServer validates cfg, applies defaults, and returns a Server ready for
// Serve.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("wire: Config.Store is required")
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 256
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 128
	}
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = DefaultMaxPayload
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.SubKeepalive <= 0 {
		cfg.SubKeepalive = 500 * time.Millisecond
	}
	rep, _ := cfg.Store.(*Replicated)
	return &Server{
		cfg:       cfg,
		rep:       rep,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		drain:     make(chan struct{}),
	}, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on ln until Shutdown. It always returns a
// non-nil error: ErrServerClosed after a clean Shutdown, the Accept error
// otherwise. Multiple Serve calls on different listeners are allowed.
func (s *Server) Serve(ln net.Listener) error {
	if !s.addListener(ln) {
		ln.Close()
		return ErrServerClosed
	}
	defer s.removeListener(ln)
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return ErrServerClosed
			}
			return err
		}
		s.accepted.Add(1)
		if !s.registerConn(nc) {
			s.rejected.Add(1)
			s.rejectConn(nc)
			continue
		}
		s.wg.Add(1)
		go s.serveConn(nc)
	}
}

// Shutdown drains the server: listeners stop accepting, every connection's
// in-flight and already-queued requests are executed and their responses
// written, then connections close. If ctx expires first, remaining
// connections are force-closed and ctx.Err is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.beginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.closeConns()
		<-done
		return ctx.Err()
	}
}

func (s *Server) addListener(ln net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.listeners[ln] = struct{}{}
	return true
}

func (s *Server) removeListener(ln net.Listener) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.listeners, ln)
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) beginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	close(s.drain)
	for ln := range s.listeners {
		ln.Close()
	}
}

// registerConn admits nc unless the server is draining or at MaxConns.
func (s *Server) registerConn(nc net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || len(s.conns) >= s.cfg.MaxConns {
		return false
	}
	s.conns[nc] = struct{}{}
	s.active.Add(1)
	return true
}

func (s *Server) unregisterConn(nc net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.conns[nc]; ok {
		delete(s.conns, nc)
		s.active.Add(-1)
	}
}

func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for nc := range s.conns {
		nc.Close()
	}
}

// rejectConn answers an over-limit connection with a single ERR frame
// (request id 0 — the client has not spoken yet) and closes it.
//
//mcvet:deadlined
func (s *Server) rejectConn(nc net.Conn) {
	if err := nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err == nil {
		// Without a deadline an unread ERR frame could pin this goroutine;
		// skip the courtesy frame and just close.
		b := respFrame(0, StatusErr, []byte("connection limit reached"))
		nc.Write(b)
	}
	nc.Close()
}

// respFrame encodes one response frame into a fresh buffer.
func respFrame(id uint64, status byte, payload []byte) []byte {
	return AppendFrame(make([]byte, 0, FrameOverhead+len(payload)), Frame{
		Type:    respFlag | status,
		ID:      id,
		Payload: payload,
	})
}

func (s *Server) errFrame(id uint64, msg string) []byte {
	s.errored.Add(1)
	return respFrame(id, StatusErr, []byte(msg))
}

// serveConn owns one connection: it runs the read loop and shepherds the
// worker and writer goroutines. Close cascade: the reader stops and closes
// work; the worker finishes queued requests and closes out; the writer
// flushes and returns; then the connection closes.
//
//mcvet:deadlined
func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	defer s.unregisterConn(nc)

	work := make(chan connReq, s.cfg.QueueDepth)
	out := make(chan []byte, s.cfg.QueueDepth)
	// Buffer freelists, the zero-copy machinery (DESIGN.md §10): request
	// buffers travel from the reader through work to the worker and come
	// back via freeReq; response buffers travel from the worker through out
	// to the writer and come back via freeResp. Capacities exceed the queue
	// depths so a recycle never blocks; when a freelist is momentarily empty
	// the taker allocates a fresh buffer, which then joins the cycle.
	freeReq := make(chan []byte, s.cfg.QueueDepth+1)
	freeResp := make(chan []byte, 2*s.cfg.QueueDepth+2)
	connDone := make(chan struct{})
	// connFailed is closed by the writer on a write failure, so a
	// subscription pump blocked on an idle op log learns the peer is gone.
	connFailed := make(chan struct{})

	// Drain watcher: a blocked read is interrupted by expiring its
	// deadline, so graceful shutdown does not wait out IdleTimeout.
	go func() {
		select {
		case <-s.drain:
			if err := nc.SetReadDeadline(time.Now()); err != nil {
				// Cannot interrupt the read by deadline; closing the
				// connection interrupts it the hard way.
				nc.Close()
			}
		case <-connDone:
		}
	}()

	var pipe sync.WaitGroup
	pipe.Add(2)
	go func() {
		defer pipe.Done()
		h := &connHandler{srv: s, freeResp: freeResp}
		for req := range work {
			out <- h.handle(req.f)
			// The request buffer is dead once handle returns (responses
			// never alias the request payload); recycle it for the reader.
			if req.buf != nil {
				select {
				case freeReq <- req.buf:
				default:
				}
			}
		}
		close(out)
	}()
	go func() {
		defer pipe.Done()
		failed := false
		for b := range out {
			if failed {
				continue // drain so the worker never blocks forever
			}
			err := nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			if err == nil {
				_, err = nc.Write(b)
			}
			if err != nil {
				s.logf("wire: %s: write: %v", nc.RemoteAddr(), err)
				failed = true
				close(connFailed)
				nc.Close() // unblock the reader too
				continue
			}
			s.bytesOut.Add(int64(len(b)))
			// A written response buffer goes back to the worker's freelist.
			// Subscription and BUSY frames join the cycle here too; that only
			// seeds the freelist earlier.
			select {
			case freeResp <- b:
			default:
			}
		}
	}()

	s.readLoop(nc, work, out, connFailed, freeReq)
	close(work)
	pipe.Wait()
	nc.Close()
	close(connDone)
}

// readLoop decodes requests and feeds the work queue. When the queue is
// full the request is answered with BUSY immediately — never buffered. A
// SUBSCRIBE request flips the connection into streaming mode: the read
// goroutine stops decoding requests and becomes the op-log pump until the
// connection or the server goes down.
//
//mcvet:deadlined
func (s *Server) readLoop(nc net.Conn, work chan<- connReq, out chan<- []byte, connFailed <-chan struct{}, freeReq <-chan []byte) {
	var buf []byte
	for {
		if err := nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
			// A connection that cannot arm its idle deadline is failing;
			// treat it like any other dead connection.
			s.logf("wire: %s: set read deadline: %v", nc.RemoteAddr(), err)
			return
		}
		select {
		case <-s.drain:
			return
		default:
		}
		f, b, err := ReadFrame(nc, s.cfg.MaxPayload, buf)
		buf = b
		if err != nil {
			var ne net.Error
			switch {
			case errors.Is(err, io.EOF):
				// Clean disconnect between frames.
			case errors.As(err, &ne) && ne.Timeout():
				select {
				case <-s.drain:
					// Interrupted by shutdown: graceful exit.
				default:
					s.logf("wire: %s: idle timeout", nc.RemoteAddr())
				}
			default:
				s.badFrames.Add(1)
				s.logf("wire: %s: read: %v", nc.RemoteAddr(), err)
			}
			return
		}
		n := len(f.Payload) + FrameOverhead
		if f.Trace.Valid() {
			// The decoder stripped the trace prefix from the payload; the
			// wire still carried it.
			n += trace.ContextSize
		}
		s.bytesIn.Add(int64(n))
		if s.cfg.Trace.Enabled() {
			// Stamp arrival so the handler can report queue wait.
			f.recvAt = time.Now()
		}
		if f.IsResponse() {
			s.badFrames.Add(1)
			s.logf("wire: %s: received a response frame", nc.RemoteAddr())
			return
		}
		if f.Type == OpSub {
			s.ops[OpSub].Add(1)
			c := cursor{b: f.Payload}
			fromSeq := c.u64()
			if !c.ok() {
				out <- s.errFrame(f.ID, "malformed subscribe payload")
				continue
			}
			if s.rep == nil {
				out <- s.errFrame(f.ID, "store is not replicated")
				continue
			}
			// The read deadline was armed for the next request frame; a
			// subscribed connection sends nothing more, so disarm it. If
			// that fails the deadline would kill the stream spuriously, so
			// refuse the subscription instead.
			if err := nc.SetReadDeadline(time.Time{}); err != nil {
				s.logf("wire: %s: disarm read deadline: %v", nc.RemoteAddr(), err)
				out <- s.errFrame(f.ID, "connection failed")
				return
			}
			s.runSubscription(f.ID, fromSeq, out, connFailed)
			return
		}
		// Zero-copy handoff: the payload aliases buf, so ownership of buf
		// moves to the worker along with the frame and the reader continues
		// with a recycled buffer (or nil, making the next ReadFrame allocate
		// one that then joins the cycle). The old copy-per-request here was
		// the serve path's last steady-state allocation.
		select {
		case work <- connReq{f: f, buf: buf}:
			select {
			case buf = <-freeReq:
			default:
				buf = nil
			}
		default:
			// BUSY: the frame was not queued, so buf stays with the reader.
			s.busy.Add(1)
			out <- respFrame(f.ID, StatusBusy, nil)
		}
	}
}

// streamChunk is how many op-log entries a subscription pump packs into
// one REPLICATE frame (well under MaxEntriesPerFrame).
const streamChunk = 1024

// runSubscription is the op-log pump for one subscribed connection. It runs
// on the connection's read goroutine (which has stopped reading — a
// subscribed client sends nothing more) and pushes REPLICATE frames, each
// echoing the subscribe request id, through the writer: first a full state
// dump when the resume point predates the op log, then retained entries,
// then new entries as they arrive, with keepalives in between. The worker
// goroutine sits idle on an empty queue for the connection's lifetime.
func (s *Server) runSubscription(id uint64, fromSeq uint64, out chan<- []byte, connFailed <-chan struct{}) {
	rep := s.rep
	s.subs.Add(1)
	defer s.subs.Add(-1)
	sub, head, full, dumpKeys := rep.subscribe(fromSeq)
	defer rep.unsubscribe(sub)

	okPayload := appendU8(appendU64(make([]byte, 0, 9), head), boolByte(full))
	if !s.streamSend(out, connFailed, respFrame(id, StatusOK, okPayload)) {
		return
	}
	replicateFrame := func(head uint64, ents []Entry) []byte {
		p := AppendReplicatePayload(make([]byte, 0, replicateHeadLen+len(ents)*entrySize), head, ents)
		return AppendFrame(make([]byte, 0, FrameOverhead+len(p)), Frame{Type: OpReplicate, ID: id, Payload: p})
	}

	scratch := make([]Entry, 0, streamChunk)
	for len(dumpKeys) > 0 {
		n := min(streamChunk, len(dumpKeys))
		ents := rep.dumpEntries(dumpKeys[:n], scratch[:0])
		dumpKeys = dumpKeys[n:]
		if len(ents) == 0 {
			continue
		}
		if !s.streamSend(out, connFailed, replicateFrame(head, ents)) {
			return
		}
	}

	keepalive := time.NewTicker(s.cfg.SubKeepalive)
	defer keepalive.Stop()
	for {
		for {
			ents, head, overrun := rep.pull(sub, scratch[:0])
			if overrun {
				// The cursor fell behind the ring (the subscriber was sent
				// entries slower than new ones arrived for longer than the
				// ring retains). It must resubscribe and take a full dump.
				s.streamSend(out, connFailed, s.errFrame(id, "oplog overrun; resubscribe"))
				return
			}
			if len(ents) == 0 {
				break
			}
			if !s.streamSend(out, connFailed, replicateFrame(head, ents)) {
				return
			}
		}
		select {
		case <-sub.notify:
		case <-keepalive.C:
			if !s.streamSend(out, connFailed, replicateFrame(rep.Applied(), nil)) {
				return
			}
		case <-s.drain:
			return
		case <-connFailed:
			return
		}
	}
}

// streamSend queues one frame for the writer, giving up when the
// connection has failed or the server is draining. The writer drains out
// even after a failure, so the send itself cannot wedge.
func (s *Server) streamSend(out chan<- []byte, connFailed <-chan struct{}, b []byte) bool {
	select {
	case out <- b:
		return true
	case <-connFailed:
		return false
	case <-s.drain:
		return false
	}
}

// connReq is one queued request: the decoded frame plus the read buffer its
// payload aliases. The worker recycles buf to the reader once the request is
// handled.
type connReq struct {
	f   Frame
	buf []byte
}

// connHandler executes one connection's requests. The scratch slices are
// reused across requests and response frames are encoded into freelist
// buffers, so the steady-state serve path does not allocate per call
// (asserted by TestServePathZeroAlloc).
type connHandler struct {
	srv *Server

	// freeResp supplies response buffers; the connection's writer returns
	// each one after the bytes are on the wire. Nil (as in some tests) just
	// means every response allocates.
	freeResp chan []byte

	// pbuf is the response-payload scratch: payloads are built here, then
	// copied into the response frame by AppendFrame, so it is free for the
	// next request as soon as respFrame returns.
	pbuf []byte

	keys     []uint64
	vals     []uint64
	results  []mccuckoo.InsertResult
	founds   []bool
	removed  []bool
	ents     []Entry
	statuses []byte
}

// respFrame encodes one response frame into a freelist buffer when one is
// available, a fresh one otherwise. payload may alias h.pbuf; it is copied.
func (h *connHandler) respFrame(id uint64, status byte, payload []byte) []byte {
	var b []byte
	select {
	case b = <-h.freeResp:
		b = b[:0]
	default:
		b = make([]byte, 0, FrameOverhead+len(payload))
	}
	return AppendFrame(b, Frame{Type: respFlag | status, ID: id, Payload: payload})
}

func (h *connHandler) errFrame(id uint64, msg string) []byte {
	h.srv.errored.Add(1)
	return h.respFrame(id, StatusErr, []byte(msg))
}

// handle executes one request and returns the encoded response frame. A
// panic in the store is isolated to this request: it is answered with ERR,
// counted in mccuckoo_server_panics_total, flight-recorded with the opcode,
// and the connection keeps serving.
func (h *connHandler) handle(f Frame) (resp []byte) {
	s := h.srv
	tr := s.cfg.Trace
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			// Forced span: a panic is recorded even when the request is
			// untraced and the sampler would have skipped it.
			psp := tr.StartForced(f.Trace, trace.KindPanic)
			psp.Op = f.Type
			psp.FinishForced()
			s.logf("wire: panic serving %s request: %v", OpName(f.Type), r)
			resp = h.errFrame(f.ID, fmt.Sprintf("internal error: %v", r))
		}
	}()
	if f.Type >= 1 && f.Type < byte(len(s.ops)) {
		s.ops[f.Type].Add(1)
	}
	sp := tr.Start(f.Trace, trace.KindServerOp)
	sp.Op = f.Type
	if !f.recvAt.IsZero() {
		sp.Wait = time.Since(f.recvAt).Nanoseconds()
	}
	defer sp.Finish()
	store := s.cfg.Store
	c := cursor{b: f.Payload}
	switch f.Type {
	case OpPing:
		if len(f.Payload) != 0 {
			return h.errFrame(f.ID, "malformed ping payload")
		}
		return h.respFrame(f.ID, StatusOK, nil)
	case OpGet:
		k := c.u64()
		if !c.ok() {
			return h.errFrame(f.ID, "malformed get payload")
		}
		tsp := sp.StartChild(trace.KindTableOp)
		v, found := store.Lookup(k)
		tsp.Op, tsp.Key = f.Type, hashutil.Mix64(k)
		tsp.Finish()
		p := h.pbuf[:0]
		p = appendU8(p, boolByte(found))
		p = appendU64(p, v)
		h.pbuf = p
		return h.respFrame(f.ID, StatusOK, p)
	case OpPut:
		k, v := c.u64(), c.u64()
		if !c.ok() {
			return h.errFrame(f.ID, "malformed put payload")
		}
		tsp := sp.StartChild(trace.KindTableOp)
		r := store.Insert(k, v)
		tsp.Op, tsp.Key, tsp.Kicks = f.Type, hashutil.Mix64(k), int32(r.Kicks)
		tsp.Finish()
		p := h.pbuf[:0]
		p = appendU8(p, byte(r.Status))
		p = appendU32(p, uint32(r.Kicks))
		h.pbuf = p
		return h.respFrame(f.ID, StatusOK, p)
	case OpDel:
		k := c.u64()
		if !c.ok() {
			return h.errFrame(f.ID, "malformed del payload")
		}
		tsp := sp.StartChild(trace.KindTableOp)
		removed := store.Delete(k)
		tsp.Op, tsp.Key = f.Type, hashutil.Mix64(k)
		tsp.Finish()
		p := appendU8(h.pbuf[:0], boolByte(removed))
		h.pbuf = p
		return h.respFrame(f.ID, StatusOK, p)
	case OpBatch:
		return h.handleBatch(f)
	case OpVGet:
		k := c.u64()
		if !c.ok() {
			return h.errFrame(f.ID, "malformed vget payload")
		}
		if s.rep == nil {
			return h.errFrame(f.ID, "store is not replicated")
		}
		tsp := sp.StartChild(trace.KindTableOp)
		state, v, seq := s.rep.VGet(k)
		tsp.Op, tsp.Key = f.Type, hashutil.Mix64(k)
		tsp.Finish()
		p := h.pbuf[:0]
		p = appendU8(p, state)
		p = appendU64(p, v)
		p = appendU64(p, seq)
		h.pbuf = p
		return h.respFrame(f.ID, StatusOK, p)
	case OpReplicate:
		_, ents, ok := ParseReplicatePayload(f.Payload, h.ents)
		if !ok {
			return h.errFrame(f.ID, "malformed replicate payload")
		}
		h.ents = ents
		if s.rep == nil {
			return h.errFrame(f.ID, "store is not replicated")
		}
		asp := sp.StartChild(trace.KindReplApply)
		h.statuses = s.rep.ApplyPush(ents, h.statuses)
		asp.Op, asp.Kicks = f.Type, int32(len(ents))
		asp.Finish()
		p := h.pbuf[:0]
		p = appendU32(p, uint32(len(h.statuses)))
		p = append(p, h.statuses...)
		h.pbuf = p
		return h.respFrame(f.ID, StatusOK, p)
	case OpDigest:
		lo, hi, maxKeys, name, ok := ParseDigestRequest(f.Payload)
		if !ok {
			return h.errFrame(f.ID, "malformed digest payload")
		}
		if s.rep == nil {
			return h.errFrame(f.ID, "store is not replicated")
		}
		digest, count, keys := s.rep.DigestRange(name, lo, hi, maxKeys)
		p := AppendDigestResponse(h.pbuf[:0], digest, count, keys)
		h.pbuf = p
		return h.respFrame(f.ID, StatusOK, p)
	case OpStats:
		if len(f.Payload) != 0 {
			return h.errFrame(f.ID, "malformed stats payload")
		}
		p, err := json.Marshal(statsOf(store))
		if err != nil {
			return h.errFrame(f.ID, "stats encoding failed: "+err.Error())
		}
		return h.respFrame(f.ID, StatusOK, p)
	default:
		return h.errFrame(f.ID, fmt.Sprintf("unknown opcode %d", f.Type))
	}
}

// handleBatch decodes a BATCH request into the handler's scratch slices,
// runs the matching BatchStore Into method, and encodes the per-item
// results.
func (h *connHandler) handleBatch(f Frame) []byte {
	s := h.srv
	sub, n, records, ok := parseBatchHeader(f.Payload)
	if !ok {
		return h.errFrame(f.ID, "malformed batch payload")
	}
	h.keys = growU64(h.keys, n)
	c := cursor{b: records}
	switch sub {
	case OpGet:
		for i := 0; i < n; i++ {
			h.keys[i] = c.u64()
		}
		h.vals = growU64(h.vals, n)
		h.founds = growBool(h.founds, n)
		s.cfg.Store.LookupBatchInto(h.keys, h.vals, h.founds)
		p := h.pbuf[:0]
		p = appendU8(p, sub)
		p = appendU32(p, uint32(n))
		for i := 0; i < n; i++ {
			p = appendU8(p, boolByte(h.founds[i]))
			p = appendU64(p, h.vals[i])
		}
		h.pbuf = p
		return h.respFrame(f.ID, StatusOK, p)
	case OpPut:
		h.vals = growU64(h.vals, n)
		for i := 0; i < n; i++ {
			h.keys[i] = c.u64()
			h.vals[i] = c.u64()
		}
		h.results = growResults(h.results, n)
		s.cfg.Store.InsertBatchInto(h.keys, h.vals, h.results)
		p := h.pbuf[:0]
		p = appendU8(p, sub)
		p = appendU32(p, uint32(n))
		for i := 0; i < n; i++ {
			p = appendU8(p, byte(h.results[i].Status))
			p = appendU32(p, uint32(h.results[i].Kicks))
		}
		h.pbuf = p
		return h.respFrame(f.ID, StatusOK, p)
	case OpDel:
		for i := 0; i < n; i++ {
			h.keys[i] = c.u64()
		}
		h.removed = growBool(h.removed, n)
		s.cfg.Store.DeleteBatchInto(h.keys, h.removed)
		p := h.pbuf[:0]
		p = appendU8(p, sub)
		p = appendU32(p, uint32(n))
		for i := 0; i < n; i++ {
			p = appendU8(p, boolByte(h.removed[i]))
		}
		h.pbuf = p
		return h.respFrame(f.ID, StatusOK, p)
	default:
		return h.errFrame(f.ID, "unknown batch sub-op")
	}
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growResults(s []mccuckoo.InsertResult, n int) []mccuckoo.InsertResult {
	if cap(s) < n {
		return make([]mccuckoo.InsertResult, n)
	}
	return s[:n]
}

// TableStats is the STATS response payload, JSON with the repo's snake_case
// convention. Gauges come from the store's accessors, lifetime counters
// from its Stats.
type TableStats struct {
	Len       int     `json:"len"`
	Capacity  int     `json:"capacity"`
	LoadRatio float64 `json:"load_ratio"`
	StashLen  int     `json:"stash_len"`

	Inserts     int64 `json:"inserts"`
	Updates     int64 `json:"updates"`
	Kicks       int64 `json:"kicks"`
	Stashed     int64 `json:"stashed"`
	Failures    int64 `json:"failures"`
	Lookups     int64 `json:"lookups"`
	Hits        int64 `json:"hits"`
	Deletes     int64 `json:"deletes"`
	StashProbes int64 `json:"stash_probes"`

	// Replica is present when the served store is a *Replicated: the
	// cluster tier's convergence checks read the digest and applied
	// sequence number from here.
	Replica *ReplicaStats `json:"replica,omitempty"`
}

func statsOf(store mccuckoo.Store) TableStats {
	st := store.Stats()
	ts := TableStats{
		Len:       store.Len(),
		Capacity:  store.Capacity(),
		LoadRatio: store.LoadRatio(),
		StashLen:  store.StashLen(),

		Inserts: st.Inserts, Updates: st.Updates, Kicks: st.Kicks,
		Stashed: st.Stashed, Failures: st.Failures, Lookups: st.Lookups,
		Hits: st.Hits, Deletes: st.Deletes, StashProbes: st.StashProbes,
	}
	if r, ok := store.(*Replicated); ok {
		rs := r.ReplicaStats()
		ts.Replica = &rs
	}
	return ts
}

// WritePrometheus writes the server's own metrics in Prometheus text
// exposition, under the mccuckoo_server_ prefix. It complements (and is
// mounted next to) the table telemetry exposition.
func (s *Server) WritePrometheus(w io.Writer) error {
	p := &serverPromWriter{w: w}
	p.header("mccuckoo_server_requests_total", "Requests served, by opcode.", "counter")
	for op := byte(OpGet); op <= OpDigest; op++ {
		p.printf("mccuckoo_server_requests_total{op=%q} %d\n", OpName(op), s.ops[op].Load())
	}
	p.simple("mccuckoo_server_subscriptions_active", "Op-log subscriptions currently streaming.", "gauge", s.subs.Load())
	p.simple("mccuckoo_server_busy_total", "Requests rejected with BUSY backpressure.", "counter", s.busy.Load())
	p.simple("mccuckoo_server_errors_total", "Requests answered with ERR.", "counter", s.errored.Load())
	p.simple("mccuckoo_server_panics_total", "Request handlers recovered from a panic.", "counter", s.panics.Load())
	p.simple("mccuckoo_server_bad_frames_total", "Connections dropped for protocol violations.", "counter", s.badFrames.Load())
	p.simple("mccuckoo_server_connections_accepted_total", "Connections accepted.", "counter", s.accepted.Load())
	p.simple("mccuckoo_server_connections_rejected_total", "Connections rejected at the MaxConns limit.", "counter", s.rejected.Load())
	p.simple("mccuckoo_server_bytes_read_total", "Request bytes received (frame overhead included).", "counter", s.bytesIn.Load())
	p.simple("mccuckoo_server_bytes_written_total", "Response bytes written.", "counter", s.bytesOut.Load())
	p.simple("mccuckoo_server_connections_active", "Connections currently served.", "gauge", s.active.Load())
	return p.err
}

type serverPromWriter struct {
	w   io.Writer
	err error
}

func (p *serverPromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *serverPromWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *serverPromWriter) simple(name, help, typ string, v int64) {
	p.header(name, help, typ)
	p.printf("%s %d\n", name, v)
}
