package wire

// opLog is the server-side replication log: a fixed-capacity ring of the
// most recent sequence-numbered mutations, addressed by a monotonically
// increasing absolute position so a subscriber's cursor survives wraps (a
// cursor that falls behind the retained window is detected as an overrun,
// not silently skipped).
//
// The log has no lock of its own: every access happens under the owning
// Replicated's mutex.
type opLog struct {
	ents []Entry
	// first and next are absolute positions: the retained window is
	// [first, next), at most len(ents) wide.
	first uint64
	next  uint64
	// droppedSeqMax is the highest sequence number among entries that have
	// fallen off the ring. A subscriber resuming from a sequence number
	// below it cannot be caught up incrementally and needs a full state
	// dump first.
	droppedSeqMax uint64
	dropped       int64
}

func newOpLog(capacity int) *opLog {
	return &opLog{ents: make([]Entry, capacity)}
}

// append records e, evicting the oldest retained entry when full.
func (l *opLog) append(e Entry) {
	if l.next-l.first == uint64(len(l.ents)) {
		old := l.ents[l.first%uint64(len(l.ents))]
		if old.Seq > l.droppedSeqMax {
			l.droppedSeqMax = old.Seq
		}
		l.first++
		l.dropped++
	}
	l.ents[l.next%uint64(len(l.ents))] = e
	l.next++
}

// copySince copies up to cap(dst) retained entries starting at absolute
// position cursor into dst, returning the filled slice and the advanced
// cursor. overrun reports that cursor has fallen behind the retained
// window; the subscriber must resynchronize with a full dump.
func (l *opLog) copySince(cursor uint64, dst []Entry) (_ []Entry, newCursor uint64, overrun bool) {
	if cursor < l.first {
		return dst[:0], cursor, true
	}
	n := int(l.next - cursor)
	if n > cap(dst) {
		n = cap(dst)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = l.ents[(cursor+uint64(i))%uint64(len(l.ents))]
	}
	return dst, cursor + uint64(n), false
}
