package wire

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mccuckoo"
	"mccuckoo/internal/telemetry/trace"

	"encoding/json"
)

// ErrBusy is returned when the server answered BUSY on every retry: the
// connection's work queue stayed full for the whole backoff schedule. The
// request was never executed.
var ErrBusy = errors.New("wire: server busy")

// ErrClientClosed is returned by every call after Close.
var ErrClientClosed = errors.New("wire: client closed")

// ErrConnFailed wraps every error caused by a pooled connection dying
// (read failure, write failure, protocol violation by the server): requests
// pipelined on the dead connection fail fast with it instead of waiting
// out their timeouts, and the next call on the slot redials. Match with
// errors.Is.
var ErrConnFailed = errors.New("wire: connection failed")

// ServerError is a StatusErr response: the server executed (or rejected)
// the request and reported a failure. The connection remains healthy.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "wire: server error: " + e.Msg }

// ClientConfig configures a Client. Only Addr is required.
type ClientConfig struct {
	// Addr is the server's TCP address.
	Addr string

	// Conns is the connection-pool size (default 2). Requests round-robin
	// over the pool and pipeline freely within each connection.
	Conns int

	// DialTimeout bounds each dial (default 5s).
	DialTimeout time.Duration

	// Dial, when non-nil, replaces net.DialTimeout for pool connections.
	// The fault-injection layer (internal/netchaos) interposes here so
	// tests can cut, slow, or reset individual peer links.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)

	// RequestTimeout bounds one request/response round trip (default 10s).
	RequestTimeout time.Duration

	// BusyRetries is how many times a BUSY response is retried before
	// giving up with ErrBusy (default 8).
	BusyRetries int

	// RetryBase is the first retry backoff; each retry doubles it and
	// applies ±50% jitter (default 1ms).
	RetryBase time.Duration

	// MaxPayload bounds response payloads (default DefaultMaxPayload).
	MaxPayload int
}

// Client is a pooled, pipelining client. All methods are safe for
// concurrent use: in-flight requests are matched to responses by id, so any
// number of goroutines can share one Client (and one connection).
type Client struct {
	cfg        ClientConfig
	nextID     atomic.Uint64
	rr         atomic.Uint64
	closed     atomic.Bool
	reconnects atomic.Int64

	mu sync.Mutex
	//mcvet:guardedby mu
	conns []*clientConn
}

// Dial validates cfg and returns a Client. Connections are established
// lazily, so Dial itself does not touch the network.
func Dial(cfg ClientConfig) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("wire: ClientConfig.Addr is required")
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 2
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.BusyRetries <= 0 {
		cfg.BusyRetries = 8
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = time.Millisecond
	}
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = DefaultMaxPayload
	}
	return &Client{cfg: cfg, conns: make([]*clientConn, cfg.Conns)}, nil
}

// Close closes every pooled connection. In-flight requests fail with
// ErrClientClosed.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, cc := range c.conns {
		if cc != nil {
			cc.fail(ErrClientClosed)
			c.conns[i] = nil
		}
	}
	return nil
}

// conn returns a live pooled connection, dialing a replacement for a dead
// slot.
func (c *Client) conn() (*clientConn, error) {
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	slot := int(c.rr.Add(1)) % c.cfg.Conns
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	cc := c.conns[slot]
	if cc != nil && !cc.dead.Load() {
		return cc, nil
	}
	dial := c.cfg.Dial
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	nc, err := dial(c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", c.cfg.Addr, err)
	}
	if cc != nil {
		// The slot held a connection that died: this dial is a reconnect,
		// not pool warm-up.
		c.reconnects.Add(1)
	}
	cc = newClientConn(nc, c.cfg.MaxPayload)
	c.conns[slot] = cc
	return cc, nil
}

// Reconnects reports how many times a pooled connection died and was
// redialed.
func (c *Client) Reconnects() int64 { return c.reconnects.Load() }

// WritePrometheus writes the client's own metrics in Prometheus text
// exposition, under the mccuckoo_client_ prefix.
func (c *Client) WritePrometheus(w io.Writer) error {
	p := &serverPromWriter{w: w}
	p.simple("mccuckoo_client_reconnects_total", "Pooled connections redialed after dying.", "counter", c.reconnects.Load())
	return p.err
}

// do performs one untraced request with retry-on-BUSY and returns the OK
// payload.
func (c *Client) do(op byte, payload []byte) ([]byte, error) {
	return c.doCtx(trace.Context{}, op, payload)
}

// doCtx is do carrying a trace context: when tc is valid the request frame
// is flagged and prefixed so the server can continue the trace. The zero
// context produces a byte-identical untraced frame.
func (c *Client) doCtx(tc trace.Context, op byte, payload []byte) ([]byte, error) {
	backoff := c.cfg.RetryBase
	for attempt := 0; ; attempt++ {
		cc, err := c.conn()
		if err != nil {
			return nil, err
		}
		status, resp, err := cc.roundTrip(c.nextID.Add(1), op, payload, tc, c.cfg.RequestTimeout)
		if err != nil {
			return nil, err
		}
		switch status {
		case StatusOK:
			return resp, nil
		case StatusBusy:
			if attempt >= c.cfg.BusyRetries {
				return nil, ErrBusy
			}
			// Jittered exponential backoff: sleep backoff ±50%, then
			// double. Jitter decorrelates a fleet of retrying clients.
			d := backoff/2 + rand.N(backoff)
			time.Sleep(d)
			backoff *= 2
		case StatusErr:
			return nil, &ServerError{Msg: string(resp)}
		default:
			return nil, protoErrf("unknown response status %d", status)
		}
	}
}

// Ping round-trips an empty frame.
func (c *Client) Ping() error {
	_, err := c.do(OpPing, nil)
	return err
}

// Get looks up key.
func (c *Client) Get(key uint64) (value uint64, found bool, err error) {
	return c.GetCtx(trace.Context{}, key)
}

// GetCtx is Get carrying a trace context.
func (c *Client) GetCtx(tc trace.Context, key uint64) (value uint64, found bool, err error) {
	resp, err := c.doCtx(tc, OpGet, appendU64(make([]byte, 0, 8), key))
	if err != nil {
		return 0, false, err
	}
	cur := cursor{b: resp}
	f, v := cur.u8(), cur.u64()
	if !cur.ok() {
		return 0, false, protoErrf("malformed get response")
	}
	return v, f != 0, nil
}

// Put inserts or updates key.
func (c *Client) Put(key, value uint64) (mccuckoo.InsertResult, error) {
	return c.PutCtx(trace.Context{}, key, value)
}

// PutCtx is Put carrying a trace context.
func (c *Client) PutCtx(tc trace.Context, key, value uint64) (mccuckoo.InsertResult, error) {
	p := appendU64(make([]byte, 0, 16), key)
	p = appendU64(p, value)
	resp, err := c.doCtx(tc, OpPut, p)
	if err != nil {
		return mccuckoo.InsertResult{}, err
	}
	cur := cursor{b: resp}
	st, kicks := cur.u8(), cur.u32()
	if !cur.ok() {
		return mccuckoo.InsertResult{}, protoErrf("malformed put response")
	}
	return mccuckoo.InsertResult{Status: mccuckoo.Status(st), Kicks: int(kicks)}, nil
}

// Del deletes key, reporting whether it was present.
func (c *Client) Del(key uint64) (bool, error) {
	return c.DelCtx(trace.Context{}, key)
}

// DelCtx is Del carrying a trace context.
func (c *Client) DelCtx(tc trace.Context, key uint64) (bool, error) {
	resp, err := c.doCtx(tc, OpDel, appendU64(make([]byte, 0, 8), key))
	if err != nil {
		return false, err
	}
	cur := cursor{b: resp}
	removed := cur.u8()
	if !cur.ok() {
		return false, protoErrf("malformed del response")
	}
	return removed != 0, nil
}

// batchReq builds a BATCH request payload header.
func batchReq(sub byte, n, recordSize int) []byte {
	p := make([]byte, 0, 5+n*recordSize)
	p = appendU8(p, sub)
	p = appendU32(p, uint32(n))
	return p
}

// checkBatchResp validates a BATCH response's echo of sub-op and count and
// returns the record bytes.
func checkBatchResp(resp []byte, sub byte, n int) (cursor, error) {
	c := cursor{b: resp}
	gotSub, gotN := c.u8(), c.u32()
	if c.bad || gotSub != sub || int(gotN) != n {
		return cursor{}, protoErrf("malformed batch response header")
	}
	return c, nil
}

// GetBatch looks up many keys in one round trip.
func (c *Client) GetBatch(keys []uint64) (values []uint64, found []bool, err error) {
	p := batchReq(OpGet, len(keys), 8)
	for _, k := range keys {
		p = appendU64(p, k)
	}
	resp, err := c.do(OpBatch, p)
	if err != nil {
		return nil, nil, err
	}
	cur, err := checkBatchResp(resp, OpGet, len(keys))
	if err != nil {
		return nil, nil, err
	}
	values = make([]uint64, len(keys))
	found = make([]bool, len(keys))
	for i := range keys {
		found[i] = cur.u8() != 0
		values[i] = cur.u64()
	}
	if !cur.ok() {
		return nil, nil, protoErrf("malformed batch get response")
	}
	return values, found, nil
}

// PutBatch inserts many pairs in one round trip.
func (c *Client) PutBatch(keys, values []uint64) ([]mccuckoo.InsertResult, error) {
	if len(keys) != len(values) {
		panic("wire: PutBatch called with mismatched key/value lengths")
	}
	p := batchReq(OpPut, len(keys), 16)
	for i, k := range keys {
		p = appendU64(p, k)
		p = appendU64(p, values[i])
	}
	resp, err := c.do(OpBatch, p)
	if err != nil {
		return nil, err
	}
	cur, err := checkBatchResp(resp, OpPut, len(keys))
	if err != nil {
		return nil, err
	}
	out := make([]mccuckoo.InsertResult, len(keys))
	for i := range out {
		st, kicks := cur.u8(), cur.u32()
		out[i] = mccuckoo.InsertResult{Status: mccuckoo.Status(st), Kicks: int(kicks)}
	}
	if !cur.ok() {
		return nil, protoErrf("malformed batch put response")
	}
	return out, nil
}

// DelBatch deletes many keys in one round trip.
func (c *Client) DelBatch(keys []uint64) ([]bool, error) {
	p := batchReq(OpDel, len(keys), 8)
	for _, k := range keys {
		p = appendU64(p, k)
	}
	resp, err := c.do(OpBatch, p)
	if err != nil {
		return nil, err
	}
	cur, err := checkBatchResp(resp, OpDel, len(keys))
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(keys))
	for i := range out {
		out[i] = cur.u8() != 0
	}
	if !cur.ok() {
		return nil, protoErrf("malformed batch del response")
	}
	return out, nil
}

// Stats fetches the server's table statistics.
func (c *Client) Stats() (TableStats, error) {
	resp, err := c.do(OpStats, nil)
	if err != nil {
		return TableStats{}, err
	}
	var st TableStats
	if err := json.Unmarshal(resp, &st); err != nil {
		return TableStats{}, protoErrf("malformed stats response: %v", err)
	}
	return st, nil
}

// VGet fetches key's replication state: missing, live (value and last-write
// sequence number), or tombstone (deletion sequence number). The server
// must run a *Replicated store.
func (c *Client) VGet(key uint64) (state byte, value, seq uint64, err error) {
	return c.VGetCtx(trace.Context{}, key)
}

// VGetCtx is VGet carrying a trace context.
func (c *Client) VGetCtx(tc trace.Context, key uint64) (state byte, value, seq uint64, err error) {
	resp, err := c.doCtx(tc, OpVGet, appendU64(make([]byte, 0, 8), key))
	if err != nil {
		return 0, 0, 0, err
	}
	cur := cursor{b: resp}
	state, value, seq = cur.u8(), cur.u64(), cur.u64()
	if !cur.ok() || state > VStateTomb {
		return 0, 0, 0, protoErrf("malformed vget response")
	}
	return state, value, seq, nil
}

// Replicate pushes sequence-numbered entries (a cluster write or a
// read-repair) and returns the per-entry apply statuses. head is the
// sender's high-water sequence number. The server must run a *Replicated
// store.
func (c *Client) Replicate(head uint64, ents []Entry) ([]byte, error) {
	return c.ReplicateCtx(trace.Context{}, head, ents)
}

// ReplicateCtx is Replicate carrying a trace context.
func (c *Client) ReplicateCtx(tc trace.Context, head uint64, ents []Entry) ([]byte, error) {
	p := AppendReplicatePayload(make([]byte, 0, replicateHeadLen+len(ents)*entrySize), head, ents)
	resp, err := c.doCtx(tc, OpReplicate, p)
	if err != nil {
		return nil, err
	}
	cur := cursor{b: resp}
	n := int(cur.u32())
	if cur.bad || n != len(ents) || len(resp)-4 != n {
		return nil, protoErrf("malformed replicate response")
	}
	statuses := make([]byte, n)
	copy(statuses, resp[4:])
	for _, st := range statuses {
		if st > ApplyFailed {
			return nil, protoErrf("malformed replicate response")
		}
	}
	return statuses, nil
}

// DigestRange fetches the server's XOR digest over keys in [lo, hi] that
// the named requester co-owns with the server, plus the matched-key count;
// when the count is at most maxKeys the keys are enumerated. The server
// must run a *Replicated store.
func (c *Client) DigestRange(name string, lo, hi uint64, maxKeys int) (digest, count uint64, keys []DigestEntry, err error) {
	return c.DigestRangeCtx(trace.Context{}, name, lo, hi, maxKeys)
}

// DigestRangeCtx is DigestRange carrying a trace context.
func (c *Client) DigestRangeCtx(tc trace.Context, name string, lo, hi uint64, maxKeys int) (digest, count uint64, keys []DigestEntry, err error) {
	p := AppendDigestRequest(make([]byte, 0, 24+len(name)), lo, hi, maxKeys, name)
	resp, err := c.doCtx(tc, OpDigest, p)
	if err != nil {
		return 0, 0, nil, err
	}
	digest, count, keys, ok := ParseDigestResponse(resp)
	if !ok {
		return 0, 0, nil, protoErrf("malformed digest response")
	}
	return digest, count, keys, nil
}

// result is one demultiplexed response.
type result struct {
	status  byte
	payload []byte
	err     error
}

// clientConn is one pooled connection. A single readLoop goroutine
// demultiplexes responses to waiting callers by request id; writes are
// serialized by wmu.
//
//mcvet:lifecycle
type clientConn struct {
	nc   net.Conn
	dead atomic.Bool

	wmu sync.Mutex // serializes frame writes

	mu sync.Mutex
	//mcvet:guardedby mu
	pending map[uint64]chan result
	//mcvet:guardedby mu
	failure error
}

func newClientConn(nc net.Conn, maxPayload int) *clientConn {
	cc := &clientConn{nc: nc, pending: make(map[uint64]chan result)}
	//mcvet:allow goroutinelifecycle readLoop's lifetime is the conn's: fail/Close closes nc and the blocked ReadFrame returns
	go cc.readLoop(maxPayload)
	return cc
}

// register adds a waiter unless the connection already failed.
func (cc *clientConn) register(id uint64, ch chan result) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.failure != nil {
		return cc.failure
	}
	cc.pending[id] = ch
	return nil
}

func (cc *clientConn) unregister(id uint64) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	delete(cc.pending, id)
}

// deliver hands a response to its waiter; a response nobody waits for
// (timed-out request) is dropped.
func (cc *clientConn) deliver(id uint64, r result) {
	cc.mu.Lock()
	ch, ok := cc.pending[id]
	if ok {
		delete(cc.pending, id)
	}
	cc.mu.Unlock()
	if ok {
		ch <- r // buffered; never blocks
	}
}

// fail marks the connection dead and errors out every pending request.
func (cc *clientConn) fail(err error) {
	cc.dead.Store(true)
	cc.nc.Close()
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.failure == nil {
		cc.failure = err
	}
	for id, ch := range cc.pending {
		delete(cc.pending, id)
		ch <- result{err: cc.failure}
	}
}

// readLoop demultiplexes responses to their waiters until the connection
// dies.
//
//mcvet:deadlined
func (cc *clientConn) readLoop(maxPayload int) {
	var buf []byte
	for {
		// The demux read deliberately has no deadline: it must outlive any
		// single request, and per-request timeouts live in roundTrip.
		// Close/fail closing the conn is what unblocks it.
		//mcvet:allow deadlinearm demux read is unbounded by design; bounded by conn close, not a timer
		f, b, err := ReadFrame(cc.nc, maxPayload, buf)
		buf = b
		if err != nil {
			cc.fail(fmt.Errorf("%w: %v", ErrConnFailed, err))
			return
		}
		if !f.IsResponse() {
			cc.fail(fmt.Errorf("%w: server sent a request frame", ErrConnFailed))
			return
		}
		// The payload aliases buf; the waiter owns its copy.
		cc.deliver(f.ID, result{status: f.Status(), payload: append([]byte(nil), f.Payload...)})
	}
}

// roundTrip sends one request and waits for its response or the timeout.
//
//mcvet:deadlined
func (cc *clientConn) roundTrip(id uint64, op byte, payload []byte, tc trace.Context, timeout time.Duration) (byte, []byte, error) {
	ch := make(chan result, 1)
	if err := cc.register(id, ch); err != nil {
		return 0, nil, err
	}
	frame := AppendFrame(make([]byte, 0, FrameOverhead+trace.ContextSize+len(payload)),
		Frame{Type: op, ID: id, Payload: payload, Trace: tc})
	cc.wmu.Lock()
	// A failed deadline arm is a connection failure: without it a dead
	// peer could pin this write forever.
	err := cc.nc.SetWriteDeadline(time.Now().Add(timeout))
	if err == nil {
		_, err = cc.nc.Write(frame)
	}
	cc.wmu.Unlock()
	if err != nil {
		cc.unregister(id)
		err = fmt.Errorf("%w: write: %v", ErrConnFailed, err)
		cc.fail(err)
		return 0, nil, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.status, r.payload, r.err
	case <-timer.C:
		cc.unregister(id)
		return 0, nil, fmt.Errorf("wire: request %d (%s) timed out after %v", id, OpName(op), timeout)
	}
}
