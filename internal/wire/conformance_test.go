package wire

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"mccuckoo/internal/telemetry/trace"
)

// recordingServer is a scripted peer over net.Pipe: it records every request
// frame it reads (normalized to ID 0, since the client's request counter
// advances between calls) and replies with a minimal well-formed OK response
// for each op, so the client-side decoders succeed.
type recordingServer struct {
	mu     sync.Mutex
	frames [][]byte
}

func (rs *recordingServer) record(f Frame) {
	norm := AppendFrame(nil, Frame{Type: f.Type, ID: 0, Payload: f.Payload, Trace: f.Trace})
	rs.mu.Lock()
	rs.frames = append(rs.frames, norm)
	rs.mu.Unlock()
}

func (rs *recordingServer) recorded() [][]byte {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([][]byte(nil), rs.frames...)
}

// serve runs the scripted responder loop until the pipe closes.
func (rs *recordingServer) serve(nc net.Conn) {
	defer nc.Close()
	var buf []byte
	for {
		f, b, err := ReadFrame(nc, DefaultMaxPayload, buf)
		if err != nil {
			return
		}
		buf = b
		rs.record(f)
		var p []byte
		switch f.Type {
		case OpPing:
		case OpGet:
			p = appendU64(appendU8(nil, 1), 99)
		case OpPut:
			p = appendU32(appendU8(nil, 0), 0)
		case OpDel:
			p = appendU8(nil, 1)
		case OpVGet:
			p = appendU64(appendU64(appendU8(nil, VStateLive), 7), 9)
		case OpReplicate:
			_, ents, ok := ParseReplicatePayload(f.Payload, nil)
			if !ok {
				p = nil
			} else {
				p = appendU32(nil, uint32(len(ents)))
				for range ents {
					p = appendU8(p, ApplyApplied)
				}
			}
		case OpDigest:
			p = AppendDigestResponse(nil, 0, 0, nil)
		}
		resp := AppendFrame(nil, Frame{Type: respFlag | StatusOK, ID: f.ID, Payload: p})
		if _, err := nc.Write(resp); err != nil {
			return
		}
	}
}

// newRecordingClient dials a Client whose single connection is a net.Pipe
// served by the scripted recorder.
func newRecordingClient(t *testing.T) (*Client, *recordingServer) {
	t.Helper()
	rs := &recordingServer{}
	cli, err := Dial(ClientConfig{
		Addr:  "pipe",
		Conns: 1,
		Dial: func(string, time.Duration) (net.Conn, error) {
			cNC, sNC := net.Pipe()
			go rs.serve(sNC)
			return cNC, nil
		},
		RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli, rs
}

// TestCtxDelegatesPinIdenticalFrames pins the API contract behind the
// Ctx/non-Ctx collapse: every non-Ctx client method is a one-line delegate
// passing the zero trace context, and the zero context produces a request
// frame byte-identical to the non-Ctx call — no traced flag, no trace
// prefix, same op, same payload.
func TestCtxDelegatesPinIdenticalFrames(t *testing.T) {
	cli, rs := newRecordingClient(t)

	ents := []Entry{{Seq: 3, Op: OpPut, Key: 11, Value: 22}}
	pairs := []struct {
		name  string
		plain func() error
		ctx   func() error
	}{
		{"Get",
			func() error { _, _, err := cli.Get(5); return err },
			func() error { _, _, err := cli.GetCtx(trace.Context{}, 5); return err }},
		{"Put",
			func() error { _, err := cli.Put(5, 6); return err },
			func() error { _, err := cli.PutCtx(trace.Context{}, 5, 6); return err }},
		{"Del",
			func() error { _, err := cli.Del(5); return err },
			func() error { _, err := cli.DelCtx(trace.Context{}, 5); return err }},
		{"VGet",
			func() error { _, _, _, err := cli.VGet(5); return err },
			func() error { _, _, _, err := cli.VGetCtx(trace.Context{}, 5); return err }},
		{"Replicate",
			func() error { _, err := cli.Replicate(3, ents); return err },
			func() error { _, err := cli.ReplicateCtx(trace.Context{}, 3, ents); return err }},
		{"DigestRange",
			func() error { _, _, _, err := cli.DigestRange("peer", 1, 100, 8); return err },
			func() error { _, _, _, err := cli.DigestRangeCtx(trace.Context{}, "peer", 1, 100, 8); return err }},
	}

	for _, p := range pairs {
		before := len(rs.recorded())
		if err := p.plain(); err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if err := p.ctx(); err != nil {
			t.Fatalf("%sCtx: %v", p.name, err)
		}
		got := rs.recorded()
		if len(got) != before+2 {
			t.Fatalf("%s: recorded %d frames, want %d", p.name, len(got), before+2)
		}
		plain, withCtx := got[before], got[before+1]
		if !bytes.Equal(plain, withCtx) {
			t.Errorf("%s: non-Ctx and zero-Ctx request frames differ\n plain: %x\n   ctx: %x", p.name, plain, withCtx)
		}
	}

	// A valid trace context must NOT be byte-identical: the frame grows the
	// traced flag and the context prefix. This guards against the delegate
	// collapse accidentally dropping the trace path.
	tc := trace.Context{TraceID: 0xfeed, SpanID: 7, Flags: trace.FlagSampled}
	before := len(rs.recorded())
	if _, _, err := cli.GetCtx(tc, 5); err != nil {
		t.Fatalf("traced GetCtx: %v", err)
	}
	if _, _, err := cli.Get(5); err != nil {
		t.Fatalf("Get: %v", err)
	}
	got := rs.recorded()
	if bytes.Equal(got[before], got[before+1]) {
		t.Errorf("traced frame is byte-identical to untraced frame; trace context was dropped")
	}
}
