package fpga

import (
	"math"
	"testing"

	"mccuckoo/internal/memmodel"
)

const eps = 1e-9

func newTestSim(depth int) (*Sim, *memmodel.Meter) {
	p := memmodel.DefaultPlatform(8)
	s := NewSim(p, depth)
	var m memmodel.Meter
	s.Attach(&m)
	return s, &m
}

func TestSingleBlockingRead(t *testing.T) {
	s, m := newTestSim(0)
	lat := s.Run(func() { m.ReadOff(1) })
	// 1 logic CLK (1000/333 ns) + 18 controller CLK (18*5 ns).
	want := 1e3/333 + 18*5.0
	if math.Abs(lat-want) > eps {
		t.Fatalf("latency %g, want %g", lat, want)
	}
}

func TestPostedWritesAreCheap(t *testing.T) {
	s, m := newTestSim(8)
	lat := s.Run(func() { m.WriteOff(3) })
	// 1 op CLK + 3 hand-off CLKs of logic time; no controller wait.
	want := 4 * (1e3 / 333)
	if math.Abs(lat-want) > eps {
		t.Fatalf("latency %g, want %g (posted writes must not block)", lat, want)
	}
}

func TestReadWaitsBehindQueuedWrites(t *testing.T) {
	s, m := newTestSim(8)
	s.Run(func() { m.WriteOff(4) })
	lat := s.Run(func() { m.ReadOff(1) })
	// The controller still owes 4 writes (4*5 ns) minus the logic time
	// already elapsed; the read then takes 90 ns. Total must exceed the
	// uncontended read latency.
	uncontended := 1e3/333 + 90
	if lat <= uncontended {
		t.Fatalf("read latency %g did not absorb write drain (uncontended %g)", lat, uncontended)
	}
}

func TestWriteQueueBackpressure(t *testing.T) {
	// Depth 2: a burst of writes must eventually stall the logic.
	s2, m2 := newTestSim(2)
	latSmall := s2.Run(func() { m2.WriteOff(20) })

	sBig, mBig := newTestSim(1 << 20)
	latBig := sBig.Run(func() { mBig.WriteOff(20) })
	if latSmall <= latBig {
		t.Fatalf("shallow queue (%g ns) not slower than deep queue (%g ns)", latSmall, latBig)
	}
}

func TestOnChipStalls(t *testing.T) {
	s, m := newTestSim(8)
	lat := s.Run(func() {
		m.ReadOn(3)
		m.WriteOn(2)
	})
	logic := 1e3 / 333
	want := logic*1 + 3*3*logic + 2*1*logic
	if math.Abs(lat-want) > eps {
		t.Fatalf("latency %g, want %g", lat, want)
	}
}

func TestRecordSizeAffectsReads(t *testing.T) {
	p8 := memmodel.DefaultPlatform(8)
	p128 := memmodel.DefaultPlatform(128)
	s8, s128 := NewSim(p8, 8), NewSim(p128, 8)
	var m8, m128 memmodel.Meter
	s8.Attach(&m8)
	s128.Attach(&m128)
	l8 := s8.Run(func() { m8.ReadOff(1) })
	l128 := s128.Run(func() { m128.ReadOff(1) })
	if l128 <= l8 {
		t.Fatalf("128-byte read (%g) not slower than 8-byte (%g)", l128, l8)
	}
}

func TestSimAccumulatesDistribution(t *testing.T) {
	s, m := newTestSim(8)
	for i := 0; i < 10; i++ {
		s.Run(func() { m.ReadOff(1) })
	}
	d := s.Latencies()
	if d.N() != 10 {
		t.Fatalf("N = %d", d.N())
	}
	if d.Mean() <= 0 || d.Quantile(0.5) <= 0 {
		t.Fatal("degenerate distribution")
	}
	if s.Now() <= 0 {
		t.Fatal("clock did not advance")
	}
}

func TestDistQuantiles(t *testing.T) {
	var d Dist
	if d.Mean() != 0 || d.Quantile(0.5) != 0 {
		t.Fatal("empty dist not zero")
	}
	for _, x := range []float64{5, 1, 4, 2, 3} {
		d.Add(x)
	}
	if d.N() != 5 || math.Abs(d.Mean()-3) > eps {
		t.Fatalf("N=%d mean=%g", d.N(), d.Mean())
	}
	cases := map[float64]float64{0: 1, 0.2: 1, 0.5: 3, 0.8: 4, 0.99: 5, 1: 5}
	for q, want := range cases {
		if got := d.Quantile(q); got != want {
			t.Errorf("Quantile(%g) = %g, want %g", q, got, want)
		}
	}
	// Adding after sorting must keep quantiles correct.
	d.Add(0)
	if got := d.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %g after append, want 0", got)
	}
	if d.String() == "" {
		t.Error("empty summary")
	}
}

func TestDefaultQueueDepth(t *testing.T) {
	s := NewSim(memmodel.DefaultPlatform(8), 0)
	if s.writeQueueDepth != 8 {
		t.Fatalf("default depth = %d", s.writeQueueDepth)
	}
}
