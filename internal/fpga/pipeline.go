package fpga

import (
	"math"

	"mccuckoo/internal/memmodel"
)

// Pipelining — the paper's declared future work ("due to the time limit, no
// parallelism or pipeline is implemented", §IV.F). This file models it:
// several operations in flight at once, sharing the single DDR controller.
// The win comes from overlapping one operation's off-chip read latency with
// other operations' logic and queued work; the ceiling is controller
// occupancy, so schemes that issue fewer off-chip reads per op (McCuckoo's
// whole point) gain the most headroom.

// Access is one recorded memory access of an operation.
type Access struct {
	Kind memmodel.AccessKind
}

// Recorder captures the per-operation access streams of a table by hooking
// its meter. Use BeginOp before each table call; the recorded trace then
// feeds PipelineSchedule.
type Recorder struct {
	ops [][]Access
}

// Attach wires the recorder into a meter.
func (r *Recorder) Attach(m *memmodel.Meter) {
	m.Hook = func(kind memmodel.AccessKind, n int64) {
		if len(r.ops) == 0 {
			return
		}
		cur := len(r.ops) - 1
		for i := int64(0); i < n; i++ {
			r.ops[cur] = append(r.ops[cur], Access{Kind: kind})
		}
	}
}

// BeginOp starts recording a new operation.
func (r *Recorder) BeginOp() { r.ops = append(r.ops, nil) }

// Ops returns the recorded per-operation access streams.
func (r *Recorder) Ops() [][]Access { return r.ops }

// PipelineSchedule replays recorded operation streams through the platform
// with up to `depth` operations in flight and returns the total makespan in
// nanoseconds. depth = 1 reproduces the sequential model.
//
// Scheduling model: each operation runs its accesses in order on its own
// logic thread (one of `depth` contexts, each the paper's 1-CLK logic plus
// SRAM stalls); off-chip reads block their own context until the shared
// controller serves them in arrival order; off-chip writes are posted to
// the shared controller. An operation starts when a context frees up.
func PipelineSchedule(p memmodel.Platform, ops [][]Access, depth int) float64 {
	if depth < 1 {
		depth = 1
	}
	logicNS := 1e3 / p.LogicMHz
	memNS := 1e3 / p.MemMHz
	readCLK := p.OffChipReadCLK
	if p.BurstBytes > 0 && p.RecordBytes > p.BurstBytes {
		readCLK += float64((p.RecordBytes-1)/p.BurstBytes) * p.BurstExtraCLK
	}
	readNS := readCLK * memNS
	writeNS := p.OffChipWriteCLK * memNS

	contexts := make([]float64, depth) // time each context frees up
	memFreeAt := 0.0
	makespan := 0.0
	for _, op := range ops {
		// Claim the earliest-free context.
		ctx := 0
		for i := 1; i < depth; i++ {
			if contexts[i] < contexts[ctx] {
				ctx = i
			}
		}
		now := contexts[ctx] + p.LogicCLKPerOp*logicNS
		for _, a := range op {
			switch a.Kind {
			case memmodel.OnRead:
				now += p.OnChipReadCLK * logicNS
			case memmodel.OnWrite:
				now += p.OnChipWriteCLK * logicNS
			case memmodel.OffRead:
				start := math.Max(now, memFreeAt)
				memFreeAt = start + readNS
				now = memFreeAt
			case memmodel.OffWrite:
				start := math.Max(now, memFreeAt)
				memFreeAt = start + writeNS
				now += logicNS // posted: logic pays the hand-off only
			}
		}
		contexts[ctx] = now
		if now > makespan {
			makespan = now
		}
	}
	return makespan
}

// PipelineThroughputMOPS converts a schedule into throughput.
func PipelineThroughputMOPS(p memmodel.Platform, ops [][]Access, depth int) float64 {
	if len(ops) == 0 {
		return 0
	}
	span := PipelineSchedule(p, ops, depth)
	if span <= 0 {
		return 0
	}
	return float64(len(ops)) / span * 1e3
}
