// Package fpga is a discrete-event timing simulator for the paper's target
// platform (§IV.F): hash/table logic in one clock domain, on-chip SRAM
// accesses that stall the logic for a fixed cycle count, and an off-chip
// DDR3 controller in a slower clock domain with blocking reads and posted
// writes.
//
// Where memmodel.Platform turns aggregate access counts into a closed-form
// mean, this simulator replays the *actual* access stream of each operation
// (captured through memmodel.Meter's Hook) and produces per-operation
// latencies, so queueing effects — a read stalling behind a burst of posted
// writes, back-to-back operations contending for the controller — show up
// in the distribution tails. This is the machinery behind the "ext-dist"
// extension experiment.
package fpga

import (
	"fmt"
	"math"
	"sort"

	"mccuckoo/internal/memmodel"
)

// Sim advances a virtual clock as accesses arrive. It models:
//
//   - logic: LogicCLKPerOp cycles per operation plus OnChip*CLK stall cycles
//     per SRAM access, all at LogicMHz;
//   - off-chip reads: blocking — the logic waits until the controller has
//     drained earlier work and served the read (OffChipReadCLK plus burst
//     cycles for large records, at MemMHz);
//   - off-chip writes: posted — the logic hands the write to the controller
//     queue and continues, unless the queue is full, in which case it stalls
//     until a slot frees. The queued write still occupies controller time,
//     delaying subsequent reads (read-after-write interference).
type Sim struct {
	p memmodel.Platform
	// WriteQueueDepth is the posted-write FIFO capacity (hardware
	// controllers have a small one; default 8).
	writeQueueDepth int

	logicNS float64 // ns per logic cycle
	memNS   float64 // ns per controller cycle
	readNS  float64 // controller time per read, record size included
	writeNS float64 // controller time per write

	now        float64   // logic timestamp, ns
	memFreeAt  float64   // controller is busy until this time
	writeQueue []float64 // completion times of queued posted writes

	opStart float64
	ops     *Dist
}

// NewSim builds a simulator for the platform. writeQueueDepth <= 0 selects
// the default of 8 entries.
func NewSim(p memmodel.Platform, writeQueueDepth int) *Sim {
	if writeQueueDepth <= 0 {
		writeQueueDepth = 8
	}
	s := &Sim{
		p:               p,
		writeQueueDepth: writeQueueDepth,
		logicNS:         1e3 / p.LogicMHz,
		memNS:           1e3 / p.MemMHz,
		writeNS:         p.OffChipWriteCLK * (1e3 / p.MemMHz),
		ops:             &Dist{},
	}
	readCLK := p.OffChipReadCLK
	if p.BurstBytes > 0 && p.RecordBytes > p.BurstBytes {
		readCLK += float64((p.RecordBytes-1)/p.BurstBytes) * p.BurstExtraCLK
	}
	s.readNS = readCLK * s.memNS
	return s
}

// Attach wires the simulator into a meter: every access the table charges
// advances the virtual clock. Detach by setting m.Hook = nil.
func (s *Sim) Attach(m *memmodel.Meter) {
	m.Hook = func(kind memmodel.AccessKind, n int64) {
		for i := int64(0); i < n; i++ {
			s.access(kind)
		}
	}
}

// access advances the clock for one memory access.
func (s *Sim) access(kind memmodel.AccessKind) {
	switch kind {
	case memmodel.OnRead:
		s.now += s.p.OnChipReadCLK * s.logicNS
	case memmodel.OnWrite:
		s.now += s.p.OnChipWriteCLK * s.logicNS
	case memmodel.OffRead:
		// Blocking: wait for the controller, then for the read.
		start := math.Max(s.now, s.memFreeAt)
		s.memFreeAt = start + s.readNS
		s.now = s.memFreeAt
		s.writeQueue = s.writeQueue[:0] // reads drain behind queued writes
	case memmodel.OffWrite:
		// Posted: stall only when the FIFO is full.
		s.drainWriteQueue()
		if len(s.writeQueue) >= s.writeQueueDepth {
			// Wait until the oldest queued write completes.
			s.now = math.Max(s.now, s.writeQueue[0])
			s.drainWriteQueue()
		}
		start := math.Max(s.now, s.memFreeAt)
		done := start + s.writeNS
		s.memFreeAt = done
		s.writeQueue = append(s.writeQueue, done)
		s.now += s.logicNS // hand-off cost only
	}
}

// drainWriteQueue discards queued writes that completed before `now`.
func (s *Sim) drainWriteQueue() {
	i := 0
	for i < len(s.writeQueue) && s.writeQueue[i] <= s.now {
		i++
	}
	s.writeQueue = append(s.writeQueue[:0], s.writeQueue[i:]...)
}

// BeginOp marks the start of one table operation (after charging its base
// logic cost).
func (s *Sim) BeginOp() {
	s.opStart = s.now
	s.now += s.p.LogicCLKPerOp * s.logicNS
}

// EndOp marks the end of the operation, records its latency, and returns it
// in nanoseconds.
func (s *Sim) EndOp() float64 {
	lat := s.now - s.opStart
	s.ops.Add(lat)
	return lat
}

// Run executes op between BeginOp/EndOp and returns the latency.
func (s *Sim) Run(op func()) float64 {
	s.BeginOp()
	op()
	return s.EndOp()
}

// Latencies returns the distribution of recorded operation latencies.
func (s *Sim) Latencies() *Dist { return s.ops }

// Now returns the current virtual time in nanoseconds.
func (s *Sim) Now() float64 { return s.now }

// Dist collects samples and reports quantiles.
type Dist struct {
	samples []float64
	sorted  bool
}

// Add records one sample.
func (d *Dist) Add(x float64) {
	d.samples = append(d.samples, x)
	d.sorted = false
}

// N returns the sample count.
func (d *Dist) N() int { return len(d.samples) }

// Mean returns the sample mean.
func (d *Dist) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range d.samples {
		sum += x
	}
	return sum / float64(len(d.samples))
}

// Quantile returns the q-th sample quantile (q in [0,1], nearest-rank).
func (d *Dist) Quantile(q float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
	if q <= 0 {
		return d.samples[0]
	}
	if q >= 1 {
		return d.samples[len(d.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(d.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return d.samples[idx]
}

// String summarizes the distribution.
func (d *Dist) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f",
		d.N(), d.Mean(), d.Quantile(0.50), d.Quantile(0.95), d.Quantile(0.99), d.Quantile(1))
}
