package fpga

import (
	"testing"

	"mccuckoo/internal/memmodel"
)

// readOps builds n operations of one blocking read each.
func readOps(n int) [][]Access {
	ops := make([][]Access, n)
	for i := range ops {
		ops[i] = []Access{{Kind: memmodel.OffRead}}
	}
	return ops
}

func TestPipelineDepthOneMatchesSequential(t *testing.T) {
	p := memmodel.DefaultPlatform(8)
	ops := readOps(10)
	span := PipelineSchedule(p, ops, 1)
	// Sequential: 10 * (1 logic CLK + 18 mem CLK).
	want := 10 * (1e3/333 + 90)
	if diff := span - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("depth-1 span %g, want %g", span, want)
	}
	if got := PipelineSchedule(p, ops, 0); got != span {
		t.Fatal("depth 0 not clamped to 1")
	}
}

func TestPipelineOverlapsLogicWithReads(t *testing.T) {
	p := memmodel.DefaultPlatform(8)
	// Operations that mix on-chip work with one read: deeper pipelines
	// overlap the logic of one op with the read of another.
	ops := make([][]Access, 32)
	for i := range ops {
		ops[i] = []Access{
			{Kind: memmodel.OnRead}, {Kind: memmodel.OnRead}, {Kind: memmodel.OnRead},
			{Kind: memmodel.OffRead},
		}
	}
	seq := PipelineSchedule(p, ops, 1)
	pipe := PipelineSchedule(p, ops, 4)
	if pipe >= seq {
		t.Fatalf("depth-4 span %g not below sequential %g", pipe, seq)
	}
	// The controller is the floor: the span can never beat total read
	// service time.
	floor := 32 * 90.0
	if pipe < floor-1e-6 {
		t.Fatalf("span %g beats controller occupancy floor %g", pipe, floor)
	}
}

func TestPipelineControllerBound(t *testing.T) {
	// Pure read streams are controller-bound: extra depth cannot help
	// beyond hiding the first op's logic.
	p := memmodel.DefaultPlatform(8)
	ops := readOps(64)
	d2 := PipelineSchedule(p, ops, 2)
	d8 := PipelineSchedule(p, ops, 8)
	if d8 > d2 {
		t.Fatalf("deeper pipeline slower: %g vs %g", d8, d2)
	}
	if d2-d8 > 90*2 {
		t.Fatalf("pure reads gained %g ns from depth, should be controller-bound", d2-d8)
	}
}

func TestPipelineThroughputScalesForOnChipHeavyOps(t *testing.T) {
	// McCuckoo-like ops (counter checks, rare reads) scale with depth;
	// baseline-like ops (always read) do not.
	p := memmodel.DefaultPlatform(8)
	mcLike := make([][]Access, 64)
	for i := range mcLike {
		mcLike[i] = []Access{{Kind: memmodel.OnRead}, {Kind: memmodel.OnRead}, {Kind: memmodel.OnRead}}
		if i%4 == 0 {
			mcLike[i] = append(mcLike[i], Access{Kind: memmodel.OffRead})
		}
	}
	t1 := PipelineThroughputMOPS(p, mcLike, 1)
	t4 := PipelineThroughputMOPS(p, mcLike, 4)
	if t4 < 1.5*t1 {
		t.Fatalf("on-chip-heavy ops gained only %.2fx from depth 4", t4/t1)
	}

	baseLike := readOps(64)
	b1 := PipelineThroughputMOPS(p, baseLike, 1)
	b4 := PipelineThroughputMOPS(p, baseLike, 4)
	if b4 > 1.3*b1 {
		t.Fatalf("controller-bound ops gained %.2fx from depth, expected ~1x", b4/b1)
	}
}

func TestRecorderCapturesPerOpStreams(t *testing.T) {
	var rec Recorder
	var m memmodel.Meter
	rec.Attach(&m)
	// Accesses before any BeginOp are dropped, not crashed on.
	m.ReadOff(1)
	rec.BeginOp()
	m.ReadOn(2)
	m.WriteOff(1)
	rec.BeginOp()
	m.ReadOff(1)
	ops := rec.Ops()
	if len(ops) != 2 {
		t.Fatalf("recorded %d ops", len(ops))
	}
	if len(ops[0]) != 3 || ops[0][2].Kind != memmodel.OffWrite {
		t.Fatalf("op 0 stream wrong: %+v", ops[0])
	}
	if len(ops[1]) != 1 || ops[1][0].Kind != memmodel.OffRead {
		t.Fatalf("op 1 stream wrong: %+v", ops[1])
	}
}

func TestPipelineEmptyOps(t *testing.T) {
	p := memmodel.DefaultPlatform(8)
	if PipelineThroughputMOPS(p, nil, 4) != 0 {
		t.Fatal("empty schedule should yield zero throughput")
	}
}
