package workload

import (
	"bytes"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	ops, err := Mix(MixConfig{
		Seed: 21, Ops: 5000, KeySpace: 500,
		InsertWeight: 3, LookupWeight: 5, DeleteWeight: 2,
		NegativeShare: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("read %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
		}
	}
}

func TestTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d ops", len(got))
	}
}

func TestTraceCorruption(t *testing.T) {
	ops := []Op{{OpInsert, 1}, {OpLookup, 2}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	bad := append([]byte{}, raw...)
	bad[0] = 'X'
	if _, err := ReadTrace(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte{}, raw...)
	bad[4] = 9
	if _, err := ReadTrace(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	// Truncation.
	if _, err := ReadTrace(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("truncated trace accepted")
	}
	// Bad op kind.
	bad = append([]byte{}, raw...)
	bad[13] = 99 // first op kind byte
	if _, err := ReadTrace(bytes.NewReader(bad)); err == nil {
		t.Error("bad op kind accepted")
	}
	// Huge declared count with tiny body.
	bad = append([]byte{}, raw[:13]...)
	for i := 5; i < 13; i++ {
		bad[i] = 0xff
	}
	if _, err := ReadTrace(bytes.NewReader(bad)); err == nil {
		t.Error("huge op count accepted")
	}
}
