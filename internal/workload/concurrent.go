package workload

import (
	"fmt"

	"mccuckoo/internal/hashutil"
)

// Concurrent-replay support: a mixed trace is a totally ordered op stream,
// but a concurrent table only guarantees per-key ordering. SplitByKey
// partitions a trace into per-goroutine streams along key boundaries so
// every key's operations stay in one stream, in order — replaying the
// streams in parallel then preserves each key's insert/lookup/delete
// history no matter how goroutines interleave. CoalesceBatches turns a
// stream into runs of same-kind operations, the shape the batched table
// APIs (InsertBatch/LookupBatch/DeleteBatch) consume.

// SplitByKey partitions ops into n streams by key hash. All operations on
// the same key land in the same stream with their relative order preserved,
// which makes the split safe to replay from n concurrent goroutines. The
// seed salts the assignment so it does not correlate with any table's
// internal shard routing or bucket choice.
func SplitByKey(ops []Op, n int, seed uint64) ([][]Op, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: stream count must be positive, got %d", n)
	}
	streams := make([][]Op, n)
	if n == 1 {
		streams[0] = ops
		return streams, nil
	}
	salt := hashutil.Mix64(seed ^ 0x517eb9)
	counts := make([]int, n)
	for _, op := range ops {
		counts[hashutil.Mix64(op.Key^salt)%uint64(n)]++
	}
	for i := range streams {
		streams[i] = make([]Op, 0, counts[i])
	}
	for _, op := range ops {
		i := hashutil.Mix64(op.Key^salt) % uint64(n)
		streams[i] = append(streams[i], op)
	}
	return streams, nil
}

// Batch is a run of same-kind operations, ready for a batched table API.
type Batch struct {
	Kind OpKind
	Keys []uint64
}

// CoalesceBatches groups consecutive same-kind operations into batches of
// at most maxBatch keys (0 means unbounded runs). Batch boundaries never
// reorder operations: concatenating the batches reproduces ops exactly.
// All key slices share one backing array (capacity-clipped), so coalescing
// costs two allocations regardless of batch count; treat the keys as
// read-only.
func CoalesceBatches(ops []Op, maxBatch int) []Batch {
	if len(ops) == 0 {
		return nil
	}
	runs, runLen := 1, 1
	for i := 1; i < len(ops); i++ {
		if ops[i].Kind != ops[i-1].Kind || (maxBatch > 0 && runLen == maxBatch) {
			runs++
			runLen = 1
		} else {
			runLen++
		}
	}
	batches := make([]Batch, 0, runs)
	flat := make([]uint64, len(ops))
	start := 0
	for i := range ops {
		flat[i] = ops[i].Key
		if i+1 == len(ops) || ops[i+1].Kind != ops[i].Kind || (maxBatch > 0 && i+1-start == maxBatch) {
			batches = append(batches, Batch{Kind: ops[i].Kind, Keys: flat[start : i+1 : i+1]})
			start = i + 1
		}
	}
	return batches
}

// GroupBatches packs ops into batches of up to maxBatch keys, reordering
// operations on *different* keys across kind boundaries. A concurrent
// replay only guarantees per-key operation order anyway (that is what
// SplitByKey preserves), and GroupBatches preserves exactly that: any two
// operations on the same key stay in their original relative order. This
// matters for throughput because a well-mixed trace has very short
// same-kind runs (a 25/65/10 mix averages ~2.3 consecutive same-kind ops),
// so order-preserving coalescing cannot amortize per-batch costs;
// key-affine reordering yields near-full batches instead.
//
// Mechanically, one pending batch accumulates per kind. An op whose key was
// last seen under a different kind flushes all pending batches first (so the
// cross-kind pair stays ordered); a pending batch reaching maxBatch is
// emitted on its own. Pending batches never share a key across kinds, so
// emitting them in any order is safe. maxBatch must be positive.
func GroupBatches(ops []Op, maxBatch int) []Batch {
	if maxBatch < 1 {
		panic("workload: GroupBatches requires a positive maxBatch")
	}
	var out []Batch
	var pend [nOpKinds][]uint64
	kindOf := make(map[uint64]OpKind, 4*maxBatch)
	flushKind := func(k OpKind) {
		if len(pend[k]) > 0 {
			out = append(out, Batch{Kind: k, Keys: pend[k]})
			pend[k] = nil
		}
	}
	for _, op := range ops {
		if k, seen := kindOf[op.Key]; seen && k != op.Kind {
			// Conservative: flush everything so the same-key pair stays
			// ordered, and forget key kinds (flushed batches run before
			// anything emitted later, so stale entries are unnecessary).
			for k := range pend {
				flushKind(OpKind(k))
			}
			for key := range kindOf {
				delete(kindOf, key)
			}
		}
		if pend[op.Kind] == nil {
			pend[op.Kind] = make([]uint64, 0, maxBatch)
		}
		pend[op.Kind] = append(pend[op.Kind], op.Key)
		kindOf[op.Key] = op.Kind
		if len(pend[op.Kind]) >= maxBatch {
			flushKind(op.Kind)
		}
	}
	for k := range pend {
		flushKind(OpKind(k))
	}
	return out
}
