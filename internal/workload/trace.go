package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Trace serialization: a compact binary format for operation streams, so
// experiments can be frozen to disk and replayed bit-identically (the role
// the DocWords dataset file plays in the paper). Format: magic "MCTR",
// version byte, little-endian op count, then 9 bytes per op (kind + key).

const (
	traceMagic   = "MCTR"
	traceVersion = 1
	// maxTraceOps bounds a trace header so corrupt files cannot trigger
	// huge allocations (1<<31 ops = ~19 GiB on disk).
	maxTraceOps = 1 << 31
)

// WriteTrace writes ops to w in the trace format.
func WriteTrace(w io.Writer, ops []Op) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return err
	}
	var buf [9]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(len(ops)))
	if _, err := bw.Write(buf[:8]); err != nil {
		return err
	}
	for _, op := range ops {
		buf[0] = byte(op.Kind)
		binary.LittleEndian.PutUint64(buf[1:], op.Key)
		if _, err := bw.Write(buf[:9]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace reads a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Op, error) {
	br := bufio.NewReader(r)
	header := make([]byte, len(traceMagic)+1+8)
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	if string(header[:4]) != traceMagic {
		return nil, fmt.Errorf("workload: bad trace magic %q", header[:4])
	}
	if header[4] != traceVersion {
		return nil, fmt.Errorf("workload: unsupported trace version %d", header[4])
	}
	n := binary.LittleEndian.Uint64(header[5:])
	if n > maxTraceOps {
		return nil, fmt.Errorf("workload: trace claims %d ops, limit %d", n, maxTraceOps)
	}
	ops := make([]Op, 0, min(n, 1<<16))
	var buf [9]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("workload: trace truncated at op %d of %d: %w", i, n, err)
		}
		kind := OpKind(buf[0])
		if kind > OpDelete {
			return nil, fmt.Errorf("workload: bad op kind %d at op %d", kind, i)
		}
		ops = append(ops, Op{Kind: kind, Key: binary.LittleEndian.Uint64(buf[1:])})
	}
	return ops, nil
}
