package workload

import "testing"

func TestUniqueDistinctAndDeterministic(t *testing.T) {
	a := Unique(7, 10000)
	seen := make(map[uint64]struct{}, len(a))
	for _, k := range a {
		if _, dup := seen[k]; dup {
			t.Fatalf("duplicate key %#x", k)
		}
		seen[k] = struct{}{}
	}
	b := Unique(7, 10000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Unique not deterministic")
		}
	}
	if c := Unique(8, 100); c[0] == a[0] {
		t.Fatal("different seeds produced the same stream")
	}
}

func TestNegativeAvoidsExcluded(t *testing.T) {
	existing := Unique(3, 5000)
	neg := Negative(3, 5000, existing)
	ex := make(map[uint64]struct{}, len(existing))
	for _, k := range existing {
		ex[k] = struct{}{}
	}
	for _, k := range neg {
		if _, hit := ex[k]; hit {
			t.Fatalf("negative key %#x collides with existing set", k)
		}
	}
}

func TestDocWordsShape(t *testing.T) {
	keys, err := DocWords(5, 20000, 1000, 50000)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]struct{})
	docCounts := make(map[uint64]int)
	for _, k := range keys {
		if _, dup := seen[k]; dup {
			t.Fatalf("duplicate pair %#x", k)
		}
		seen[k] = struct{}{}
		doc := k >> 32
		word := k & 0xffffffff
		if doc >= 1000 || word >= 50000 {
			t.Fatalf("pair %#x out of range", k)
		}
		docCounts[doc]++
	}
	// Zipf skew: the most popular document should dwarf the average.
	max := 0
	for _, c := range docCounts {
		if c > max {
			max = c
		}
	}
	avg := float64(len(keys)) / float64(len(docCounts))
	if float64(max) < 3*avg {
		t.Errorf("max doc count %d vs avg %.1f: no visible skew", max, avg)
	}
}

func TestDocWordsValidation(t *testing.T) {
	if _, err := DocWords(1, 10, 0, 10); err == nil {
		t.Error("numDocs=0 accepted")
	}
	if _, err := DocWords(1, 101, 10, 10); err == nil {
		t.Error("impossible pair count accepted")
	}
}

func TestMixValidation(t *testing.T) {
	if _, err := Mix(MixConfig{Ops: 0, KeySpace: 10, InsertWeight: 1}); err == nil {
		t.Error("Ops=0 accepted")
	}
	if _, err := Mix(MixConfig{Ops: 10, KeySpace: 10}); err == nil {
		t.Error("zero weights accepted")
	}
	if _, err := Mix(MixConfig{Ops: 10, KeySpace: 10, InsertWeight: 1, NegativeShare: 2}); err == nil {
		t.Error("NegativeShare>1 accepted")
	}
}

func TestMixSemantics(t *testing.T) {
	ops, err := Mix(MixConfig{
		Seed: 11, Ops: 20000, KeySpace: 2000,
		InsertWeight: 2, LookupWeight: 6, DeleteWeight: 1,
		NegativeShare: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 20000 {
		t.Fatalf("got %d ops", len(ops))
	}
	live := map[uint64]bool{}
	counts := map[OpKind]int{}
	for i, op := range ops {
		counts[op.Kind]++
		switch op.Kind {
		case OpInsert:
			live[op.Key] = true
		case OpDelete:
			if !live[op.Key] {
				t.Fatalf("op %d deletes a key that is not live", i)
			}
			delete(live, op.Key)
		}
	}
	if counts[OpInsert] == 0 || counts[OpLookup] == 0 || counts[OpDelete] == 0 {
		t.Fatalf("op mix degenerate: %v", counts)
	}
	// Lookups should dominate with weight 6 of 9.
	if counts[OpLookup] < counts[OpInsert] {
		t.Errorf("lookups (%d) should outnumber inserts (%d)", counts[OpLookup], counts[OpInsert])
	}
	// Determinism.
	ops2, _ := Mix(MixConfig{
		Seed: 11, Ops: 20000, KeySpace: 2000,
		InsertWeight: 2, LookupWeight: 6, DeleteWeight: 1,
		NegativeShare: 0.25,
	})
	for i := range ops {
		if ops[i] != ops2[i] {
			t.Fatal("Mix not deterministic")
		}
	}
}
