// Package workload generates the keys and query streams the experiments
// consume. It substitutes the paper's DocWords dataset (NYTimes bag-of-words,
// DocID‖WordID keys): cuckoo-table behaviour depends only on the hashed key
// distribution, which BOB hash makes uniform for either source, so a
// deterministic synthetic stream preserves every measured quantity. The
// DocWords-shaped generator additionally reproduces the key structure
// (docID in the high 32 bits, wordID in the low 32, Zipf-skewed document
// popularity) for workloads where key shape matters to the caller.
package workload

import (
	"fmt"
	mrand "math/rand"

	"mccuckoo/internal/hashutil"
)

// Unique returns n distinct 64-bit keys drawn deterministically from seed.
func Unique(seed uint64, n int) []uint64 {
	s := hashutil.Mix64(seed)
	keys := make([]uint64, n)
	seen := make(map[uint64]struct{}, n)
	for i := 0; i < n; {
		k := hashutil.SplitMix64(&s)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys[i] = k
		i++
	}
	return keys
}

// Negative returns n keys guaranteed absent from exclude, for non-existing
// item queries (Fig. 13, Tables II–III).
func Negative(seed uint64, n int, exclude []uint64) []uint64 {
	ex := make(map[uint64]struct{}, len(exclude))
	for _, k := range exclude {
		ex[k] = struct{}{}
	}
	s := hashutil.Mix64(seed ^ 0xbad5eed)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := hashutil.SplitMix64(&s)
		if _, hit := ex[k]; hit {
			continue
		}
		keys = append(keys, k)
	}
	return keys
}

// DocWords returns n distinct DocID‖WordID keys shaped like the paper's
// dataset: docIDs Zipf-distributed over numDocs documents (news articles
// have heavily skewed lengths), wordIDs uniform over vocabSize.
func DocWords(seed uint64, n, numDocs, vocabSize int) ([]uint64, error) {
	if numDocs <= 0 || vocabSize <= 0 {
		return nil, fmt.Errorf("workload: numDocs and vocabSize must be positive")
	}
	if uint64(n) > uint64(numDocs)*uint64(vocabSize) {
		return nil, fmt.Errorf("workload: cannot draw %d distinct pairs from %d x %d", n, numDocs, vocabSize)
	}
	rng := mrand.New(mrand.NewSource(int64(hashutil.Mix64(seed))))
	zipf := mrand.NewZipf(rng, 1.2, 1, uint64(numDocs-1))
	keys := make([]uint64, 0, n)
	seen := make(map[uint64]struct{}, n)
	for len(keys) < n {
		doc := zipf.Uint64()
		word := uint64(rng.Intn(vocabSize))
		k := doc<<32 | word
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	return keys, nil
}

// OpKind labels one operation in a mixed stream.
type OpKind uint8

const (
	OpInsert OpKind = iota
	OpLookup
	OpDelete

	nOpKinds = iota
)

// Op is one operation of a mixed workload.
type Op struct {
	Kind OpKind
	Key  uint64
}

// MixConfig shapes a mixed operation stream. Weights need not sum to one;
// they are normalized.
type MixConfig struct {
	Seed          uint64
	Ops           int
	InsertWeight  float64
	LookupWeight  float64
	DeleteWeight  float64
	KeySpace      int     // distinct keys the stream draws from
	NegativeShare float64 // fraction of lookups targeting absent keys
}

// Mix produces a deterministic mixed stream of operations. Lookups and
// deletes target previously inserted keys (except the negative share of
// lookups); inserts draw fresh keys until KeySpace is exhausted, then
// re-insert (upsert).
func Mix(cfg MixConfig) ([]Op, error) {
	if cfg.Ops <= 0 || cfg.KeySpace <= 0 {
		return nil, fmt.Errorf("workload: Ops and KeySpace must be positive")
	}
	total := cfg.InsertWeight + cfg.LookupWeight + cfg.DeleteWeight
	if total <= 0 {
		return nil, fmt.Errorf("workload: weights must sum to a positive value")
	}
	if cfg.NegativeShare < 0 || cfg.NegativeShare > 1 {
		return nil, fmt.Errorf("workload: NegativeShare must be in [0,1]")
	}
	keys := Unique(cfg.Seed, cfg.KeySpace)
	negKeys := Negative(cfg.Seed+1, cfg.KeySpace, keys)
	s := hashutil.Mix64(cfg.Seed + 2)

	ops := make([]Op, 0, cfg.Ops)
	live := make([]uint64, 0, cfg.KeySpace)
	liveSet := make(map[uint64]int, cfg.KeySpace) // key -> index in live
	nextFresh := 0
	pIns := cfg.InsertWeight / total
	pLook := cfg.LookupWeight / total

	for len(ops) < cfg.Ops {
		r := hashutil.SplitMix64(&s)
		u := float64(r>>11) / float64(1<<53)
		r2 := hashutil.SplitMix64(&s)
		switch {
		case u < pIns || len(live) == 0:
			var k uint64
			if nextFresh < len(keys) {
				k = keys[nextFresh]
				nextFresh++
			} else {
				k = keys[r2%uint64(len(keys))]
			}
			ops = append(ops, Op{Kind: OpInsert, Key: k})
			if _, dup := liveSet[k]; !dup {
				liveSet[k] = len(live)
				live = append(live, k)
			}
		case u < pIns+pLook:
			if float64(r2>>11)/float64(1<<53) < cfg.NegativeShare {
				ops = append(ops, Op{Kind: OpLookup, Key: negKeys[r2%uint64(len(negKeys))]})
			} else {
				ops = append(ops, Op{Kind: OpLookup, Key: live[r2%uint64(len(live))]})
			}
		default:
			idx := int(r2 % uint64(len(live)))
			k := live[idx]
			ops = append(ops, Op{Kind: OpDelete, Key: k})
			last := len(live) - 1
			live[idx] = live[last]
			liveSet[live[idx]] = idx
			live = live[:last]
			delete(liveSet, k)
		}
	}
	return ops, nil
}
