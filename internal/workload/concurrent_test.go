package workload

import "testing"

func TestSplitByKeyPreservesPerKeyOrder(t *testing.T) {
	ops, err := Mix(MixConfig{
		Seed: 3, Ops: 20000, KeySpace: 500,
		InsertWeight: 3, LookupWeight: 5, DeleteWeight: 2, NegativeShare: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	streams, err := SplitByKey(ops, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	owner := make(map[uint64]int)
	for i, st := range streams {
		total += len(st)
		for _, op := range st {
			if prev, ok := owner[op.Key]; ok && prev != i {
				t.Fatalf("key %#x appears in streams %d and %d", op.Key, prev, i)
			}
			owner[op.Key] = i
		}
	}
	if total != len(ops) {
		t.Fatalf("streams hold %d ops, input had %d", total, len(ops))
	}
	// Per-key order: the subsequence of ops for any key equals that key's
	// subsequence in its stream.
	perKeyIn := make(map[uint64][]OpKind)
	for _, op := range ops {
		perKeyIn[op.Key] = append(perKeyIn[op.Key], op.Kind)
	}
	perKeyOut := make(map[uint64][]OpKind)
	for _, st := range streams {
		for _, op := range st {
			perKeyOut[op.Key] = append(perKeyOut[op.Key], op.Kind)
		}
	}
	for k, in := range perKeyIn {
		out := perKeyOut[k]
		if len(in) != len(out) {
			t.Fatalf("key %#x: %d ops in, %d out", k, len(in), len(out))
		}
		for i := range in {
			if in[i] != out[i] {
				t.Fatalf("key %#x: op %d reordered (%d vs %d)", k, i, in[i], out[i])
			}
		}
	}
}

func TestSplitByKeySingleStreamAndErrors(t *testing.T) {
	ops := []Op{{OpInsert, 1}, {OpLookup, 2}}
	streams, err := SplitByKey(ops, 1, 5)
	if err != nil || len(streams) != 1 || len(streams[0]) != 2 {
		t.Fatalf("single stream split broken: %v %v", streams, err)
	}
	if _, err := SplitByKey(ops, 0, 5); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestCoalesceBatches(t *testing.T) {
	ops := []Op{
		{OpInsert, 1}, {OpInsert, 2}, {OpInsert, 3},
		{OpLookup, 4}, {OpLookup, 5},
		{OpDelete, 6},
		{OpInsert, 7},
	}
	batches := CoalesceBatches(ops, 0)
	wantKinds := []OpKind{OpInsert, OpLookup, OpDelete, OpInsert}
	wantLens := []int{3, 2, 1, 1}
	if len(batches) != len(wantKinds) {
		t.Fatalf("%d batches, want %d", len(batches), len(wantKinds))
	}
	flat := make([]Op, 0, len(ops))
	for i, b := range batches {
		if b.Kind != wantKinds[i] || len(b.Keys) != wantLens[i] {
			t.Fatalf("batch %d: kind %d len %d, want %d/%d", i, b.Kind, len(b.Keys), wantKinds[i], wantLens[i])
		}
		for _, k := range b.Keys {
			flat = append(flat, Op{Kind: b.Kind, Key: k})
		}
	}
	for i := range ops {
		if flat[i] != ops[i] {
			t.Fatalf("op %d reordered by coalescing", i)
		}
	}
	// maxBatch splits long runs without reordering.
	capped := CoalesceBatches(ops, 2)
	if len(capped) != 5 || len(capped[0].Keys) != 2 || len(capped[1].Keys) != 1 {
		t.Fatalf("maxBatch=2 gave %v", capped)
	}
	if CoalesceBatches(nil, 4) != nil {
		t.Fatal("empty input must give no batches")
	}
}

func TestGroupBatchesPreservesPerKeyOrder(t *testing.T) {
	ops, err := Mix(MixConfig{
		Seed: 11, Ops: 30000, KeySpace: 2000,
		InsertWeight: 2.5, LookupWeight: 6.5, DeleteWeight: 1, NegativeShare: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const maxBatch = 64
	batches := GroupBatches(ops, maxBatch)
	total := 0
	perKeyOut := make(map[uint64][]OpKind)
	for _, b := range batches {
		if len(b.Keys) == 0 || len(b.Keys) > maxBatch {
			t.Fatalf("batch size %d outside (0,%d]", len(b.Keys), maxBatch)
		}
		total += len(b.Keys)
		for _, k := range b.Keys {
			perKeyOut[k] = append(perKeyOut[k], b.Kind)
		}
	}
	if total != len(ops) {
		t.Fatalf("batches hold %d ops, input had %d", total, len(ops))
	}
	perKeyIn := make(map[uint64][]OpKind)
	for _, op := range ops {
		perKeyIn[op.Key] = append(perKeyIn[op.Key], op.Kind)
	}
	for k, in := range perKeyIn {
		out := perKeyOut[k]
		if len(in) != len(out) {
			t.Fatalf("key %#x: %d ops in, %d out", k, len(in), len(out))
		}
		for i := range in {
			if in[i] != out[i] {
				t.Fatalf("key %#x: op %d reordered across kinds (%d vs %d)", k, i, in[i], out[i])
			}
		}
	}
	// In a well-mixed trace over a wide keyspace, cross-kind key conflicts
	// are rare, so batches should actually fill up — the whole point of
	// reordering over order-preserving coalescing.
	if avg := float64(total) / float64(len(batches)); avg < float64(maxBatch)/4 {
		t.Fatalf("average batch size %.1f; reordering is not amortizing", avg)
	}
}

func TestGroupBatchesEdgeCases(t *testing.T) {
	if GroupBatches(nil, 8) != nil {
		t.Fatal("empty input must give no batches")
	}
	// Alternating ops on one key can never merge: every op conflicts with
	// the pending batch of the other kind.
	ops := []Op{{OpInsert, 7}, {OpLookup, 7}, {OpInsert, 7}, {OpLookup, 7}}
	batches := GroupBatches(ops, 8)
	if len(batches) != 4 {
		t.Fatalf("single-key alternation gave %d batches, want 4", len(batches))
	}
	for i, b := range batches {
		if b.Kind != ops[i].Kind || len(b.Keys) != 1 || b.Keys[0] != 7 {
			t.Fatalf("batch %d = %+v, want singleton %v", i, b, ops[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("maxBatch=0 must panic")
		}
	}()
	GroupBatches(ops, 0)
}
