package memmodel

// Platform converts access counts into time, mirroring the FPGA platform of
// §IV.F: hash calculation and scheme logic run at LogicMHz and cost
// LogicCLKPerOp cycles per operation; the on-chip SRAM is read in
// OnChipReadCLK and written in OnChipWriteCLK logic cycles; the off-chip
// DDR3 controller runs at MemMHz, a read costs OffChipReadCLK memory cycles
// on average and a write OffChipWriteCLK (writes are posted: the logic hands
// the data to the controller and moves on, which is why the paper's write
// latency is so much lower than its read latency).
//
// Larger records need more DDR bursts: every BurstBytes beyond the first adds
// BurstExtraCLK memory cycles to a read. Writes stay cheap because they are
// fire-and-forget into the controller's queue.
//
// The absolute numbers are a model, not a measurement; the paper's own
// caveat applies ("the end-to-end measurement is very much hardware
// specific"). What the model preserves is the relative cost structure:
// off-chip reads dominate, on-chip counter checks are cheap but not free,
// and bigger records make skipped bucket reads more valuable.
type Platform struct {
	LogicMHz        float64
	MemMHz          float64
	LogicCLKPerOp   float64
	OnChipReadCLK   float64
	OnChipWriteCLK  float64
	OffChipReadCLK  float64
	OffChipWriteCLK float64
	BurstBytes      int
	BurstExtraCLK   float64
	RecordBytes     int
}

// DefaultPlatform returns the paper's published platform parameters
// (Stratix V: 333 MHz logic, 200 MHz DDR3 controller, SRAM 3/1 CLK,
// DDR3 ~18/1 CLK) with the given record size in bytes.
func DefaultPlatform(recordBytes int) Platform {
	if recordBytes <= 0 {
		recordBytes = 8
	}
	return Platform{
		LogicMHz:        333,
		MemMHz:          200,
		LogicCLKPerOp:   1,
		OnChipReadCLK:   3,
		OnChipWriteCLK:  1,
		OffChipReadCLK:  18,
		OffChipWriteCLK: 1,
		BurstBytes:      32,
		BurstExtraCLK:   4,
		RecordBytes:     recordBytes,
	}
}

// offChipReadCLK returns the memory cycles for one record read at the
// configured record size.
func (p Platform) offChipReadCLK() float64 {
	clk := p.OffChipReadCLK
	if p.BurstBytes > 0 && p.RecordBytes > p.BurstBytes {
		extra := (p.RecordBytes - 1) / p.BurstBytes // whole extra bursts
		clk += float64(extra) * p.BurstExtraCLK
	}
	return clk
}

// LatencyNS returns the modelled time in nanoseconds to execute `ops`
// operations that generated the given memory traffic, assuming no pipelining
// (the paper's implementation processes one request at a time).
func (p Platform) LatencyNS(m Meter, ops int64) float64 {
	if ops <= 0 {
		return 0
	}
	logicNS := 1e3 / p.LogicMHz
	memNS := 1e3 / p.MemMHz
	total := float64(ops) * p.LogicCLKPerOp * logicNS
	total += float64(m.OnChipReads) * p.OnChipReadCLK * logicNS
	total += float64(m.OnChipWrites) * p.OnChipWriteCLK * logicNS
	total += float64(m.OffChipReads) * p.offChipReadCLK() * memNS
	total += float64(m.OffChipWrites) * p.OffChipWriteCLK * memNS
	return total / float64(ops)
}

// ThroughputMOPS returns the modelled throughput in million operations per
// second for the given traffic, the reciprocal of LatencyNS.
func (p Platform) ThroughputMOPS(m Meter, ops int64) float64 {
	lat := p.LatencyNS(m, ops)
	if lat <= 0 {
		return 0
	}
	return 1e3 / lat
}
