// Package memmodel models the two-level memory hierarchy the paper targets:
// a small fast on-chip memory (SRAM) holding the counter array, and a large
// slow off-chip memory (DRAM) holding the main table and the stash.
//
// Every hash-table implementation in this repository reports its memory
// traffic through a Meter. The experiment harness reads the Meter to produce
// the per-operation access counts of Fig. 10 and Fig. 12–14, and feeds the
// same counts into the Platform latency model to produce the latency and
// throughput numbers of Fig. 15–16.
package memmodel

// AccessKind labels one memory access for event-level tracing.
type AccessKind uint8

const (
	// OffRead is an off-chip bucket (or stash) read.
	OffRead AccessKind = iota
	// OffWrite is an off-chip bucket (or stash) write.
	OffWrite
	// OnRead is an on-chip counter read.
	OnRead
	// OnWrite is an on-chip counter write.
	OnWrite
)

// Meter accumulates memory accesses. The zero value is ready to use.
//
// "Off-chip" counts are accesses to main-table buckets and stash buckets;
// "on-chip" counts are accesses to the counter array (and, for baselines that
// have no counters, stay zero). Counts are plain int64s: tables are
// single-writer structures, so no atomics are needed, and the concurrent
// wrapper takes the writer lock around mutation.
//
// Hook, when non-nil, receives every access as it happens, in program order.
// The discrete-event pipeline simulator (internal/fpga) attaches here to
// replay real access streams through a timing model. The struct-copy
// helpers (Snapshot, Sub, Add) deliberately ignore Hook.
type Meter struct {
	OffChipReads  int64
	OffChipWrites int64
	OnChipReads   int64
	OnChipWrites  int64

	Hook func(kind AccessKind, n int64) `json:"-"`
}

// ReadOff records n off-chip bucket reads.
func (m *Meter) ReadOff(n int64) {
	m.OffChipReads += n
	if m.Hook != nil {
		m.Hook(OffRead, n)
	}
}

// WriteOff records n off-chip bucket writes.
func (m *Meter) WriteOff(n int64) {
	m.OffChipWrites += n
	if m.Hook != nil {
		m.Hook(OffWrite, n)
	}
}

// ReadOn records n on-chip counter reads.
func (m *Meter) ReadOn(n int64) {
	m.OnChipReads += n
	if m.Hook != nil {
		m.Hook(OnRead, n)
	}
}

// WriteOn records n on-chip counter writes.
func (m *Meter) WriteOn(n int64) {
	m.OnChipWrites += n
	if m.Hook != nil {
		m.Hook(OnWrite, n)
	}
}

// Snapshot returns the current counts by value (without the hook).
func (m *Meter) Snapshot() Meter {
	s := *m
	s.Hook = nil
	return s
}

// Sub returns the traffic accumulated since the earlier snapshot prev.
func (m Meter) Sub(prev Meter) Meter {
	return Meter{
		OffChipReads:  m.OffChipReads - prev.OffChipReads,
		OffChipWrites: m.OffChipWrites - prev.OffChipWrites,
		OnChipReads:   m.OnChipReads - prev.OnChipReads,
		OnChipWrites:  m.OnChipWrites - prev.OnChipWrites,
	}
}

// Add returns the element-wise sum of two Meters.
func (m Meter) Add(o Meter) Meter {
	return Meter{
		OffChipReads:  m.OffChipReads + o.OffChipReads,
		OffChipWrites: m.OffChipWrites + o.OffChipWrites,
		OnChipReads:   m.OnChipReads + o.OnChipReads,
		OnChipWrites:  m.OnChipWrites + o.OnChipWrites,
	}
}

// Reset zeroes all counts, keeping any attached Hook.
func (m *Meter) Reset() {
	hook := m.Hook
	*m = Meter{}
	m.Hook = hook
}

// Same reports whether two Meters hold identical counts (Meter itself is
// not comparable because of the Hook field).
func (m Meter) Same(o Meter) bool {
	return m.OffChipReads == o.OffChipReads && m.OffChipWrites == o.OffChipWrites &&
		m.OnChipReads == o.OnChipReads && m.OnChipWrites == o.OnChipWrites
}

// OffChipTotal returns reads plus writes to off-chip memory.
func (m Meter) OffChipTotal() int64 { return m.OffChipReads + m.OffChipWrites }
