package memmodel

import (
	"math"
	"testing"
)

func TestMeterAccumulation(t *testing.T) {
	var m Meter
	m.ReadOff(2)
	m.WriteOff(3)
	m.ReadOn(5)
	m.WriteOn(7)
	if m.OffChipReads != 2 || m.OffChipWrites != 3 || m.OnChipReads != 5 || m.OnChipWrites != 7 {
		t.Fatalf("unexpected counts: %+v", m)
	}
	if m.OffChipTotal() != 5 {
		t.Fatalf("OffChipTotal = %d, want 5", m.OffChipTotal())
	}
}

func TestMeterSnapshotSub(t *testing.T) {
	var m Meter
	m.ReadOff(10)
	snap := m.Snapshot()
	m.ReadOff(4)
	m.WriteOn(2)
	delta := m.Snapshot().Sub(snap)
	if delta.OffChipReads != 4 || delta.OnChipWrites != 2 || delta.OffChipWrites != 0 {
		t.Fatalf("delta = %+v", delta)
	}
}

func TestMeterAddReset(t *testing.T) {
	a := Meter{OffChipReads: 1, OffChipWrites: 2, OnChipReads: 3, OnChipWrites: 4}
	b := Meter{OffChipReads: 10, OffChipWrites: 20, OnChipReads: 30, OnChipWrites: 40}
	sum := a.Add(b)
	if !sum.Same(Meter{OffChipReads: 11, OffChipWrites: 22, OnChipReads: 33, OnChipWrites: 44}) {
		t.Fatalf("Add = %+v", sum)
	}
	a.Reset()
	if !a.Same(Meter{}) {
		t.Fatalf("Reset left %+v", a)
	}
}

func TestDefaultPlatformValues(t *testing.T) {
	p := DefaultPlatform(8)
	if p.LogicMHz != 333 || p.MemMHz != 200 {
		t.Fatalf("unexpected clocks: %+v", p)
	}
	if p.RecordBytes != 8 {
		t.Fatalf("record bytes = %d", p.RecordBytes)
	}
	// Non-positive record size falls back to 8 bytes.
	if DefaultPlatform(0).RecordBytes != 8 {
		t.Error("zero record size not defaulted")
	}
}

func TestLatencySingleRead(t *testing.T) {
	p := DefaultPlatform(8)
	// One op, one off-chip read: 1 logic CLK (3.003 ns) + 18 mem CLK (90 ns).
	m := Meter{OffChipReads: 1}
	got := p.LatencyNS(m, 1)
	want := 1e3/333 + 18*1e3/200
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("LatencyNS = %g, want %g", got, want)
	}
}

func TestLatencyScalesWithOps(t *testing.T) {
	p := DefaultPlatform(8)
	m := Meter{OffChipReads: 10, OnChipReads: 30}
	per10 := p.LatencyNS(m, 10)
	per1 := p.LatencyNS(Meter{OffChipReads: 1, OnChipReads: 3}, 1)
	if math.Abs(per10-per1) > 1e-9 {
		t.Fatalf("per-op latency should match: %g vs %g", per10, per1)
	}
	if p.LatencyNS(m, 0) != 0 {
		t.Error("zero ops should give zero latency")
	}
}

func TestLatencyRecordSizeBursts(t *testing.T) {
	small := DefaultPlatform(8)
	big := DefaultPlatform(128)
	m := Meter{OffChipReads: 1}
	ls := small.LatencyNS(m, 1)
	lb := big.LatencyNS(m, 1)
	if lb <= ls {
		t.Fatalf("128-byte read (%g ns) not slower than 8-byte (%g ns)", lb, ls)
	}
	// Writes are posted, so record size should not change write latency.
	w := Meter{OffChipWrites: 1}
	if small.LatencyNS(w, 1) != big.LatencyNS(w, 1) {
		t.Error("write latency should be record-size independent")
	}
}

func TestThroughputReciprocal(t *testing.T) {
	p := DefaultPlatform(8)
	m := Meter{OffChipReads: 2, OnChipReads: 3}
	lat := p.LatencyNS(m, 1)
	tp := p.ThroughputMOPS(m, 1)
	if math.Abs(tp-1e3/lat) > 1e-9 {
		t.Fatalf("throughput %g, want %g", tp, 1e3/lat)
	}
	if p.ThroughputMOPS(Meter{}, 0) != 0 {
		t.Error("zero ops should give zero throughput")
	}
}

func TestOnChipCheaperThanOffChip(t *testing.T) {
	// The design premise: counter checks must be an order of magnitude
	// cheaper than bucket reads, otherwise skipping buckets buys nothing.
	p := DefaultPlatform(64)
	on := p.LatencyNS(Meter{OnChipReads: 1}, 1)
	off := p.LatencyNS(Meter{OffChipReads: 1}, 1)
	if on*5 > off {
		t.Fatalf("on-chip read %g ns vs off-chip %g ns: hierarchy too flat", on, off)
	}
}
