package cuckoo

import (
	"testing"

	"mccuckoo/internal/kv"
)

func TestBFSPolicyFillsAndFinds(t *testing.T) {
	tab, err := New(Config{BucketsPerTable: 2048, Seed: 7, Policy: kv.BFS,
		AssumeUniqueKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := fillKeys(41, tab.Capacity())
	inserted := fillToLoad(t, tab, keys, 0.85)
	for _, k := range inserted {
		if v, ok := tab.Lookup(k); !ok || v != k+1 {
			t.Fatalf("key %#x lost under BFS (ok=%v)", k, ok)
		}
	}
}

func TestBFSBlockedVariant(t *testing.T) {
	tab, err := New(Config{BucketsPerTable: 1024, Slots: 3, Seed: 9, Policy: kv.BFS,
		AssumeUniqueKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := fillKeys(43, tab.Capacity())
	inserted := fillToLoad(t, tab, keys, 0.95)
	for _, k := range inserted {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatalf("key %#x lost under blocked BFS", k)
		}
	}
}

func TestBFSShorterChainsThanRandomWalk(t *testing.T) {
	// BFS finds shortest relocation chains: at high load its kicks per
	// insertion must not exceed the random walk's (it pays in reads
	// instead).
	kicksFor := func(policy kv.KickPolicy) (float64, float64) {
		tab, err := New(Config{BucketsPerTable: 2048, Seed: 11, Policy: policy,
			AssumeUniqueKeys: true, StashEnabled: true})
		if err != nil {
			t.Fatal(err)
		}
		keys := fillKeys(45, int(0.88*float64(tab.Capacity())))
		for _, k := range keys {
			tab.Insert(k, k)
		}
		st := tab.Stats()
		m := tab.Meter().Snapshot()
		return float64(st.Kicks) / float64(st.Inserts), float64(m.OffChipReads) / float64(st.Inserts)
	}
	rwKicks, rwReads := kicksFor(kv.RandomWalk)
	bfsKicks, bfsReads := kicksFor(kv.BFS)
	if bfsKicks > rwKicks {
		t.Errorf("BFS kicks/insert %.3f exceed random walk %.3f", bfsKicks, rwKicks)
	}
	// BFS trades writes for search reads; both costs must at least be
	// non-trivial at this load. (Whether BFS reads more or fewer buckets
	// than a wandering walk depends on the load regime, so no ordering
	// is asserted.)
	if bfsReads <= 1 || rwReads <= 1 {
		t.Errorf("degenerate read costs: bfs %.3f, rw %.3f", bfsReads, rwReads)
	}
}

func TestBFSStashesWhenBoxedIn(t *testing.T) {
	tab, err := New(Config{BucketsPerTable: 16, Seed: 13, Policy: kv.BFS, MaxLoop: 30,
		StashEnabled: true, AssumeUniqueKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := fillKeys(47, 60) // 125% load
	for _, k := range keys {
		if tab.Insert(k, k).Status == kv.Failed {
			t.Fatal("failed with unbounded stash")
		}
	}
	if tab.StashLen() == 0 {
		t.Fatal("expected stash overflow")
	}
	for _, k := range keys {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatalf("key %#x lost", k)
		}
	}
}

func TestBFSModelEquivalence(t *testing.T) {
	tab, err := New(Config{BucketsPerTable: 256, Seed: 15, Policy: kv.BFS,
		StashEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	model := map[uint64]uint64{}
	keys := fillKeys(49, 900)
	for i, k := range keys {
		key := k % 700
		switch i % 4 {
		case 0, 1:
			if tab.Insert(key, k).Status != kv.Failed {
				model[key] = k
			}
		case 2:
			got, ok := tab.Lookup(key)
			want, wok := model[key]
			if ok != wok || (ok && got != want) {
				t.Fatalf("op %d: lookup(%d) = (%d,%v) want (%d,%v)", i, key, got, ok, want, wok)
			}
		case 3:
			_, wok := model[key]
			if got := tab.Delete(key); got != wok {
				t.Fatalf("op %d: delete mismatch", i)
			}
			delete(model, key)
		}
	}
	if tab.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tab.Len(), len(model))
	}
}
