package cuckoo

import "fmt"

// pseudoforest implements SmartCuckoo-style loop predetermination for d=2
// single-slot cuckoo hashing (USENIX ATC'17, discussed in the paper's §I
// and §II.B as the alternative family to McCuckoo's counters: "tried to
// identify loops beforehand, so we won't run into an endless loop
// situation in the first place"; the paper notes "it only works with 2
// hash functions").
//
// The structure views each bucket as a vertex and each stored item as an
// edge between its two candidate buckets. A connected component with v
// vertices can host at most v items (a "maximal" component contains exactly
// one cycle); inserting an edge whose endpoints lie in the same maximal
// component — or in two components that are both maximal — must fail, and
// the pseudoforest detects this before a single kick is attempted.
//
// Tracked with a union-find over buckets carrying a per-component cycle
// flag. Union-find cannot un-merge, so the tracker supports insertions
// only; it is rebuilt by Rehash and deliberately unsupported alongside
// Delete (New rejects the combination), matching SmartCuckoo's own
// insertion-oriented design.
type pseudoforest struct {
	parent []int32
	rank   []uint8
	cyclic []bool
}

func newPseudoforest(buckets int) *pseudoforest {
	p := &pseudoforest{
		parent: make([]int32, buckets),
		rank:   make([]uint8, buckets),
		cyclic: make([]bool, buckets),
	}
	for i := range p.parent {
		p.parent[i] = int32(i)
	}
	return p
}

func (p *pseudoforest) find(x int) int {
	for p.parent[x] != int32(x) {
		p.parent[x] = p.parent[p.parent[x]] // path halving
		x = int(p.parent[x])
	}
	return x
}

// wouldFail reports whether inserting an edge (u, v) must fail: both
// endpoints in one already-cyclic component, or in two distinct cyclic
// components.
func (p *pseudoforest) wouldFail(u, v int) bool {
	ru, rv := p.find(u), p.find(v)
	if ru == rv {
		return p.cyclic[ru]
	}
	return p.cyclic[ru] && p.cyclic[rv]
}

// addEdge records the edge (u, v); call only after wouldFail returned
// false.
func (p *pseudoforest) addEdge(u, v int) {
	ru, rv := p.find(u), p.find(v)
	if ru == rv {
		p.cyclic[ru] = true
		return
	}
	cyc := p.cyclic[ru] || p.cyclic[rv]
	if p.rank[ru] < p.rank[rv] {
		ru, rv = rv, ru
	}
	p.parent[rv] = int32(ru)
	if p.rank[ru] == p.rank[rv] {
		p.rank[ru]++
	}
	p.cyclic[ru] = cyc
}

// validateSmartCuckoo checks the config combination for the predetermination
// tracker.
func validateSmartCuckoo(c *Config) error {
	if c.D != 2 || c.Slots != 1 {
		return fmt.Errorf("cuckoo: SmartCuckoo predetermination requires d=2, slots=1 (got d=%d, slots=%d)", c.D, c.Slots)
	}
	return nil
}
