package cuckoo

import (
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
)

// insertBFS resolves a collision with breadth-first search over the
// eviction graph — the original cuckoo strategy ("probe for one in BFS
// order", paper §I). It finds the *shortest* relocation chain to a free
// slot, at the cost of reading many buckets: every bucket examined during
// the search is one off-chip read, which is exactly the blindness McCuckoo's
// counters remove. The search budget is MaxLoop examined buckets; on
// exhaustion the item overflows to the stash.
//
// The caller has already scanned cur's candidate buckets (finding no free
// slot), so their occupants' keys are known.
func (t *Table) insertBFS(cur kv.Entry) kv.Outcome {
	type bfsNode struct {
		slot   int // flat index of the slot whose occupant would move
		parent int // index into nodes, -1 for the initial frontier
	}
	var cand [hashutil.MaxD]int
	t.family.Indexes(cur.Key, cand[:])

	nodes := make([]bfsNode, 0, 64)
	seen := make(map[int]bool, 64)
	for i := 0; i < t.cfg.D; i++ {
		base := t.slotBase(i, cand[i])
		for s := 0; s < t.cfg.Slots; s++ {
			if !seen[base+s] {
				seen[base+s] = true
				nodes = append(nodes, bfsNode{slot: base + s, parent: -1})
			}
		}
	}

	execute := func(found int, freeSlot int) kv.Outcome {
		// Collect the chain root→...→found, then move occupants
		// from the free end backwards.
		var path []int
		for i := found; i >= 0; i = nodes[i].parent {
			path = append(path, nodes[i].slot)
		}
		for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
			path[l], path[r] = path[r], path[l]
		}
		dst := freeSlot
		for i := len(path) - 1; i >= 0; i-- {
			src := path[i]
			t.writeSlot(dst, kv.Entry{Key: t.keys[src], Value: t.vals[src]})
			dst = src
		}
		t.writeSlot(dst, cur)
		t.size++
		t.stats.Kicks += int64(len(path))
		return kv.Outcome{Status: kv.Placed, Kicks: len(path)}
	}

	examined := 0
	for head := 0; head < len(nodes) && examined < t.cfg.MaxLoop; head++ {
		n := nodes[head]
		victim := t.keys[n.slot]
		ownBase := n.slot / t.cfg.Slots * t.cfg.Slots
		var vcand [hashutil.MaxD]int
		t.family.Indexes(victim, vcand[:])
		for j := 0; j < t.cfg.D && examined < t.cfg.MaxLoop; j++ {
			vbase := t.slotBase(j, vcand[j])
			if vbase == ownBase {
				continue
			}
			t.meter.ReadOff(1)
			examined++
			for s := 0; s < t.cfg.Slots; s++ {
				if !t.occupied[vbase+s] {
					return execute(head, vbase+s)
				}
			}
			for s := 0; s < t.cfg.Slots; s++ {
				if idx := vbase + s; !seen[idx] {
					seen[idx] = true
					nodes = append(nodes, bfsNode{slot: idx, parent: head})
				}
			}
		}
	}
	t.stats.Kicks += 0 // BFS moved nothing; the search cost is in reads
	return t.overflowInsert(cur, 0)
}
