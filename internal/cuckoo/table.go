package cuckoo

import (
	"fmt"
	"math/rand/v2"

	"mccuckoo/internal/bitpack"
	"mccuckoo/internal/bloom"
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/memmodel"
	"mccuckoo/internal/stash"
)

// Table is a single-copy cuckoo hash table: the "Cuckoo" baseline when
// Slots == 1 (ternary cuckoo in the paper's experiments) and the "BCHT"
// baseline when Slots > 1 (3-hash 3-slot blocked cuckoo).
//
// The main table is modelled as off-chip memory: every bucket inspection is
// one off-chip read (a whole bucket, slots included, per access) and every
// slot update one off-chip write. The table is not safe for concurrent use.
type Table struct {
	cfg    Config
	family *hashutil.Family
	meter  memmodel.Meter
	rng    *rand.Rand

	// Flat slot storage, indexed by (table*n + bucket)*l + slot.
	occupied []bool
	keys     []uint64
	vals     []uint64

	// kickCounts backs the MinCounter policy (5-bit on-chip counters,
	// one per bucket). Nil under RandomWalk.
	kickCounts *bitpack.Counters

	// filter is the optional on-chip counting Bloom pre-screen
	// (Cuckoo+CBF comparison scheme). Nil unless BloomM is set.
	filter *bloom.Counting

	// forest is the SmartCuckoo loop-predetermination structure (d=2
	// only). forestValid flips off on the first Delete.
	forest      *pseudoforest
	forestValid bool

	overflow *stash.Stash
	size     int
	stats    kv.Stats
}

// New creates a baseline table from cfg.
func New(cfg Config) (*Table, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	family, err := hashutil.NewFamily(cfg.D, cfg.BucketsPerTable, cfg.Seed)
	if err != nil {
		return nil, err
	}
	slots := cfg.D * cfg.BucketsPerTable * cfg.Slots
	t := &Table{
		cfg:      cfg,
		family:   family,
		rng:      rand.New(rand.NewPCG(cfg.Seed, hashutil.Mix64(cfg.Seed+1))),
		occupied: make([]bool, slots),
		keys:     make([]uint64, slots),
		vals:     make([]uint64, slots),
	}
	if cfg.Policy == kv.MinCounter {
		t.kickCounts, err = bitpack.NewCounters(cfg.D*cfg.BucketsPerTable, 5)
		if err != nil {
			return nil, err
		}
	}
	if cfg.BloomM > 0 {
		t.filter, err = bloom.NewCounting(cfg.BloomM, cfg.BloomK, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}
	if cfg.PredetermineLoops {
		t.forest = newPseudoforest(cfg.D * cfg.BucketsPerTable)
		t.forestValid = true
	}
	if cfg.StashEnabled {
		t.overflow, err = stash.New(4, cfg.StashMax, cfg.Seed, &t.meter)
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// OnChipBytes returns the on-chip memory the scheme needs: the MinCounter
// kick counters and/or the Bloom pre-screen cells (0 for plain baselines).
func (t *Table) OnChipBytes() int {
	total := 0
	if t.kickCounts != nil {
		total += t.kickCounts.SizeBytes()
	}
	if t.filter != nil {
		total += t.filter.SizeBytes()
	}
	return total
}

// slotBase returns the flat index of slot 0 of the given bucket.
func (t *Table) slotBase(table, bucket int) int {
	return (table*t.cfg.BucketsPerTable + bucket) * t.cfg.Slots
}

// bucketIndex returns the flat per-bucket index used by kick counters.
func (t *Table) bucketIndex(table, bucket int) int {
	return table*t.cfg.BucketsPerTable + bucket
}

// Len returns the number of live items, stash included.
func (t *Table) Len() int { return t.size + t.StashLen() }

// Capacity returns the total number of slots.
func (t *Table) Capacity() int { return t.cfg.D * t.cfg.BucketsPerTable * t.cfg.Slots }

// LoadRatio returns Len()/Capacity().
func (t *Table) LoadRatio() float64 { return float64(t.Len()) / float64(t.Capacity()) }

// Meter exposes the memory traffic counters.
func (t *Table) Meter() *memmodel.Meter { return &t.meter }

// Stats exposes lifetime operation counts.
func (t *Table) Stats() kv.Stats { return t.stats }

// StashLen returns the current stash population.
func (t *Table) StashLen() int {
	if t.overflow == nil {
		return 0
	}
	return t.overflow.Len()
}

// Insert stores key/value. With AssumeUniqueKeys off it first scans for an
// existing copy and updates it in place.
func (t *Table) Insert(key, value uint64) kv.Outcome {
	t.stats.Inserts++
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])

	if !t.cfg.AssumeUniqueKeys {
		if idx, ok := t.findSlot(key, cand[:t.cfg.D]); ok {
			t.vals[idx] = value
			t.meter.WriteOff(1)
			t.stats.Updates++
			return kv.Outcome{Status: kv.Updated}
		}
		if t.overflow != nil {
			if _, ok := t.overflow.Lookup(key); ok {
				t.overflow.Insert(key, value)
				t.stats.Updates++
				return kv.Outcome{Status: kv.Updated}
			}
		}
	}

	if t.forest != nil && t.forestValid {
		u, v := t.bucketIndex(0, cand[0]), t.bucketIndex(1, cand[1])
		if t.forest.wouldFail(u, v) {
			// Predetermined failure: straight to the stash with
			// zero wasted kicks — the SmartCuckoo payoff.
			out := t.overflowInsert(kv.Entry{Key: key, Value: value}, 0)
			if t.filter != nil && out.Status == kv.Stashed {
				t.filter.Add(key)
				t.meter.WriteOn(int64(t.filter.K()))
			}
			return out
		}
		t.forest.addEdge(u, v)
	}
	out := t.insertResolved(kv.Entry{Key: key, Value: value})
	if t.filter != nil && (out.Status == kv.Placed || out.Status == kv.Stashed) {
		t.filter.Add(key)
		t.meter.WriteOn(int64(t.filter.K()))
	}
	return out
}

// insertResolved runs the placement/kick machinery for a key known to be
// absent.
func (t *Table) insertResolved(entry kv.Entry) kv.Outcome {
	var cand [hashutil.MaxD]int
	t.family.Indexes(entry.Key, cand[:])
	cur := entry
	prevTable := -1
	kicks := 0
	for {
		// Scan candidate buckets for a free slot, paying one off-chip
		// read per bucket inspected. Standard cuckoo cannot know a
		// bucket is empty without reading it (cf. §IV.B).
		placed := false
		for i := 0; i < t.cfg.D && !placed; i++ {
			t.meter.ReadOff(1)
			base := t.slotBase(i, cand[i])
			for s := 0; s < t.cfg.Slots; s++ {
				if !t.occupied[base+s] {
					t.writeSlot(base+s, cur)
					t.size++
					placed = true
					break
				}
			}
		}
		if placed {
			t.stats.Kicks += int64(kicks)
			return kv.Outcome{Status: kv.Placed, Kicks: kicks}
		}

		if t.cfg.Policy == kv.BFS {
			// BFS finds the whole relocation chain before moving
			// anything; it never iterates this loop.
			return t.insertBFS(cur)
		}

		if kicks >= t.cfg.MaxLoop {
			t.stats.Kicks += int64(kicks)
			return t.overflowInsert(cur, kicks)
		}

		// All candidates full: evict a victim and continue with it.
		vt := t.pickVictimTable(cand[:t.cfg.D], prevTable)
		vs := t.rng.IntN(t.cfg.Slots)
		idx := t.slotBase(vt, cand[vt]) + vs
		victim := kv.Entry{Key: t.keys[idx], Value: t.vals[idx]}
		t.writeSlot(idx, cur)
		cur = victim
		prevTable = vt
		kicks++
		t.family.Indexes(cur.Key, cand[:])
	}
}

// writeSlot stores e into flat slot idx, charging one off-chip write.
func (t *Table) writeSlot(idx int, e kv.Entry) {
	t.occupied[idx] = true
	t.keys[idx] = e.Key
	t.vals[idx] = e.Value
	t.meter.WriteOff(1)
}

// pickVictimTable chooses which candidate bucket to evict from.
func (t *Table) pickVictimTable(cand []int, prevTable int) int {
	if t.cfg.Policy == kv.MinCounter && t.kickCounts != nil {
		best, bestCount := -1, uint64(1<<62)
		for i := range cand {
			if i == prevTable && len(cand) > 1 {
				continue
			}
			t.meter.ReadOn(1)
			c := t.kickCounts.Get(t.bucketIndex(i, cand[i]))
			if c < bestCount || (c == bestCount && t.rng.IntN(2) == 0) {
				best, bestCount = i, c
			}
		}
		bi := t.bucketIndex(best, cand[best])
		if v := t.kickCounts.Get(bi); v < t.kickCounts.Max() {
			t.kickCounts.Set(bi, v+1)
			t.meter.WriteOn(1)
		}
		return best
	}
	for {
		i := t.rng.IntN(len(cand))
		if i != prevTable || len(cand) == 1 {
			return i
		}
	}
}

// overflowInsert handles an insertion whose kick chain exceeded MaxLoop.
func (t *Table) overflowInsert(cur kv.Entry, kicks int) kv.Outcome {
	if t.overflow != nil && t.overflow.Insert(cur.Key, cur.Value) {
		t.stats.Stashed++
		return kv.Outcome{Status: kv.Stashed, Kicks: kicks}
	}
	// No stash (or stash full): the item is dropped and the failure
	// reported; callers may Rehash. This mirrors the paper's "claim a
	// failure" at maxloop.
	t.stats.Failures++
	return kv.Outcome{Status: kv.Failed, Kicks: kicks}
}

// findSlot scans the candidate buckets for key, charging one read per bucket
// inspected, and returns the flat slot index on success.
func (t *Table) findSlot(key uint64, cand []int) (int, bool) {
	for i := 0; i < t.cfg.D; i++ {
		t.meter.ReadOff(1)
		base := t.slotBase(i, cand[i])
		for s := 0; s < t.cfg.Slots; s++ {
			if t.occupied[base+s] && t.keys[base+s] == key {
				return base + s, true
			}
		}
	}
	return 0, false
}

// Lookup returns the value stored for key. A single-copy scheme must check
// candidate buckets until the item is found, and all of them to conclude a
// miss; a miss then probes the stash if one exists (CHS always does).
func (t *Table) Lookup(key uint64) (uint64, bool) {
	t.stats.Lookups++
	if t.filter != nil {
		t.meter.ReadOn(int64(t.filter.K()))
		if !t.filter.MayContain(key) {
			return 0, false
		}
	}
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])
	if idx, ok := t.findSlot(key, cand[:t.cfg.D]); ok {
		t.stats.Hits++
		return t.vals[idx], true
	}
	if t.overflow != nil && t.overflow.Len() > 0 {
		t.stats.StashProbe++
		if v, ok := t.overflow.Lookup(key); ok {
			t.stats.Hits++
			return v, true
		}
	}
	return 0, false
}

// Delete removes key, reporting whether it was present. Single-copy deletion
// costs the lookup reads plus exactly one off-chip write (§IV.D).
func (t *Table) Delete(key uint64) bool {
	t.stats.Deletes++
	if t.filter != nil {
		t.meter.ReadOn(int64(t.filter.K()))
		if !t.filter.MayContain(key) {
			return false
		}
	}
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])
	if idx, ok := t.findSlot(key, cand[:t.cfg.D]); ok {
		t.occupied[idx] = false
		t.keys[idx] = 0
		t.vals[idx] = 0
		t.meter.WriteOff(1)
		t.size--
		t.removeFromFilter(key)
		// Union-find cannot un-merge: deletion ends loop prediction
		// until the next Rehash.
		t.forestValid = false
		return true
	}
	if t.overflow != nil && t.overflow.Len() > 0 {
		t.stats.StashProbe++
		if t.overflow.Delete(key) {
			t.removeFromFilter(key)
			return true
		}
	}
	return false
}

// removeFromFilter updates the Bloom pre-screen after a confirmed deletion.
func (t *Table) removeFromFilter(key uint64) {
	if t.filter != nil {
		t.filter.Remove(key)
		t.meter.WriteOn(int64(t.filter.K()))
	}
}

// Rehash rebuilds the table with a fresh hash family, optionally growing
// each subtable by growFactor (>= 1). All items, stash included, are
// reinserted; the traffic of reading every occupied slot and rewriting the
// items is charged to the meter. It returns an error if any item cannot be
// placed even after rehashing.
func (t *Table) Rehash(growFactor float64) error {
	if growFactor < 1 {
		return fmt.Errorf("cuckoo: growFactor must be >= 1, got %g", growFactor)
	}
	items := make([]kv.Entry, 0, t.size+t.StashLen())
	for idx, occ := range t.occupied {
		if occ {
			items = append(items, kv.Entry{Key: t.keys[idx], Value: t.vals[idx]})
		}
	}
	// Reading the whole table back: one read per bucket.
	t.meter.ReadOff(int64(t.cfg.D * t.cfg.BucketsPerTable))
	if t.overflow != nil {
		items = append(items, t.overflow.Drain()...)
	}

	newN := int(float64(t.cfg.BucketsPerTable) * growFactor)
	family, err := hashutil.NewFamily(t.cfg.D, newN, hashutil.Mix64(t.cfg.Seed+0x9e37))
	if err != nil {
		return err
	}
	t.cfg.Seed = hashutil.Mix64(t.cfg.Seed + 0x9e37)
	t.cfg.BucketsPerTable = newN
	t.family = family
	if t.filter != nil {
		// Rebuild the pre-screen from scratch; reinsertion re-adds
		// every member exactly once.
		t.filter, err = bloom.NewCounting(t.cfg.BloomM, t.cfg.BloomK, t.cfg.Seed)
		if err != nil {
			return err
		}
	}
	if t.forest != nil {
		// Rebuild the pseudoforest; reinsertion re-adds every edge.
		t.forest = newPseudoforest(t.cfg.D * newN)
		t.forestValid = true
	}
	slots := t.cfg.D * newN * t.cfg.Slots
	t.occupied = make([]bool, slots)
	t.keys = make([]uint64, slots)
	t.vals = make([]uint64, slots)
	if t.kickCounts != nil {
		t.kickCounts, err = bitpack.NewCounters(t.cfg.D*newN, 5)
		if err != nil {
			return err
		}
	}
	t.size = 0

	for _, e := range items {
		switch out := t.reinsert(e); out.Status {
		case kv.Placed, kv.Stashed:
		default:
			return fmt.Errorf("cuckoo: rehash failed to place key %#x", e.Key)
		}
	}
	return nil
}

// reinsert places an entry during rehash without double-counting stats.
func (t *Table) reinsert(e kv.Entry) kv.Outcome {
	saved := t.stats
	out := t.Insert(e.Key, e.Value)
	t.stats = saved
	return out
}
