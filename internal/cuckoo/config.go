// Package cuckoo implements the paper's two single-copy baselines: the
// standard d-ary cuckoo hash table (one slot per bucket, random-walk
// kick-outs, optional stash as in "Cuckoo hashing with a stash") and BCHT,
// the blocked d-hash l-slot cuckoo hash table of Erlingsson et al. that the
// evaluation compares against.
//
// Both report their off-chip memory traffic through a memmodel.Meter so the
// experiment harness can reproduce Fig. 9–16.
package cuckoo

import (
	"fmt"

	"mccuckoo/internal/kv"
)

// Config parameterizes a baseline table.
type Config struct {
	// D is the number of hash functions / subtables. The paper uses 3.
	D int
	// BucketsPerTable is the length of each subtable.
	BucketsPerTable int
	// Slots is the number of slots per bucket: 1 for standard cuckoo,
	// >1 for BCHT (the paper uses 3).
	Slots int
	// MaxLoop bounds the kick-out chain length before an insertion is
	// declared failed.
	MaxLoop int
	// Seed makes hashing and the random walk reproducible.
	Seed uint64
	// Policy selects the kick-out victim policy.
	Policy kv.KickPolicy
	// StashEnabled attaches an overflow stash checked on every failed
	// lookup (CHS). StashMax caps its size (0 = unbounded); the classic
	// on-chip stash uses a small cap such as 4.
	StashEnabled bool
	StashMax     int
	// PredetermineLoops attaches the SmartCuckoo-style pseudoforest that
	// predicts unplaceable insertions before any kick is attempted
	// (requires D=2, Slots=1; insertions only — the first Delete disables
	// prediction, Rehash re-enables it).
	PredetermineLoops bool
	// BloomM, when positive, attaches an on-chip counting Bloom filter
	// with BloomM 4-bit cells and BloomK hash functions that pre-screens
	// every lookup — the DEHT/EMOMA-style helper the paper's counter
	// array competes with (comparison scheme "Cuckoo+CBF"). BloomK
	// defaults to 3.
	BloomM int
	BloomK int
	// AssumeUniqueKeys skips the duplicate-key scan on insert. The
	// experiment workloads guarantee unique keys, and the paper's access
	// counts assume this; the public API leaves it off for safe upsert
	// semantics.
	AssumeUniqueKeys bool
}

func (c *Config) normalize() error {
	if c.D == 0 {
		c.D = 3
	}
	if c.Slots == 0 {
		c.Slots = 1
	}
	if c.MaxLoop == 0 {
		c.MaxLoop = 500
	}
	if c.D < 2 || c.D > 8 {
		return fmt.Errorf("cuckoo: D must be in [2,8], got %d", c.D)
	}
	if c.Slots < 1 || c.Slots > 8 {
		return fmt.Errorf("cuckoo: Slots must be in [1,8], got %d", c.Slots)
	}
	if c.BucketsPerTable <= 0 {
		return fmt.Errorf("cuckoo: BucketsPerTable must be positive, got %d", c.BucketsPerTable)
	}
	if c.MaxLoop < 1 {
		return fmt.Errorf("cuckoo: MaxLoop must be positive, got %d", c.MaxLoop)
	}
	if c.StashMax < 0 {
		return fmt.Errorf("cuckoo: StashMax must be non-negative, got %d", c.StashMax)
	}
	if c.BloomM < 0 {
		return fmt.Errorf("cuckoo: BloomM must be non-negative, got %d", c.BloomM)
	}
	if c.BloomM > 0 && c.BloomK == 0 {
		c.BloomK = 3
	}
	if c.PredetermineLoops {
		if err := validateSmartCuckoo(c); err != nil {
			return err
		}
	}
	return nil
}
