package cuckoo

import (
	"testing"

	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
)

// fillKeys returns n distinct pseudo-random keys.
func fillKeys(seed uint64, n int) []uint64 {
	s := hashutil.Mix64(seed)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&s)
	}
	return keys
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{D: 1, BucketsPerTable: 16},
		{D: 9, BucketsPerTable: 16},
		{BucketsPerTable: 0},
		{BucketsPerTable: 16, Slots: 9},
		{BucketsPerTable: 16, MaxLoop: -1},
		{BucketsPerTable: 16, StashMax: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	tab, err := New(Config{BucketsPerTable: 16})
	if err != nil {
		t.Fatal(err)
	}
	if tab.cfg.D != 3 || tab.cfg.Slots != 1 || tab.cfg.MaxLoop != 500 {
		t.Errorf("defaults not applied: %+v", tab.cfg)
	}
}

func TestInsertLookupDeleteBasic(t *testing.T) {
	tab, err := New(Config{BucketsPerTable: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out := tab.Insert(42, 100); out.Status != kv.Placed {
		t.Fatalf("insert status %v", out.Status)
	}
	if v, ok := tab.Lookup(42); !ok || v != 100 {
		t.Fatalf("lookup = %d,%v", v, ok)
	}
	if _, ok := tab.Lookup(43); ok {
		t.Fatal("phantom hit")
	}
	if out := tab.Insert(42, 200); out.Status != kv.Updated {
		t.Fatalf("update status %v", out.Status)
	}
	if v, _ := tab.Lookup(42); v != 200 {
		t.Fatalf("value %d after update", v)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if !tab.Delete(42) {
		t.Fatal("delete failed")
	}
	if tab.Delete(42) {
		t.Fatal("double delete")
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d after delete", tab.Len())
	}
}

// fillToLoad inserts keys until the target load ratio; it fails the test on
// any insertion failure.
func fillToLoad(t *testing.T, tab kv.Table, keys []uint64, load float64) []uint64 {
	t.Helper()
	want := int(load * float64(tab.Capacity()))
	if want > len(keys) {
		t.Fatalf("need %d keys, have %d", want, len(keys))
	}
	for i := 0; i < want; i++ {
		out := tab.Insert(keys[i], keys[i]+1)
		if out.Status == kv.Failed {
			t.Fatalf("insert %d/%d failed at load %.3f", i, want, tab.LoadRatio())
		}
	}
	return keys[:want]
}

func TestTernaryCuckooReaches85Percent(t *testing.T) {
	tab, err := New(Config{BucketsPerTable: 4096, Seed: 7, AssumeUniqueKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := fillKeys(7, tab.Capacity())
	inserted := fillToLoad(t, tab, keys, 0.85)
	for _, k := range inserted {
		if v, ok := tab.Lookup(k); !ok || v != k+1 {
			t.Fatalf("key %#x lost (ok=%v v=%d)", k, ok, v)
		}
	}
}

func TestBCHTReaches95Percent(t *testing.T) {
	tab, err := New(Config{BucketsPerTable: 2048, Slots: 3, Seed: 7, AssumeUniqueKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := fillKeys(11, tab.Capacity())
	inserted := fillToLoad(t, tab, keys, 0.95)
	for _, k := range inserted {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatalf("key %#x lost", k)
		}
	}
}

func TestModelEquivalenceMixedOps(t *testing.T) {
	tab, err := New(Config{BucketsPerTable: 512, Seed: 3, StashEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	model := map[uint64]uint64{}
	s := uint64(99)
	for i := 0; i < 6000; i++ {
		r := hashutil.SplitMix64(&s)
		key := r % 1024 // small key space forces collisions and updates
		switch (r >> 32) % 4 {
		case 0, 1:
			out := tab.Insert(key, r)
			if out.Status != kv.Failed {
				model[key] = r
			}
		case 2:
			got, ok := tab.Lookup(key)
			want, wok := model[key]
			if ok != wok || (ok && got != want) {
				t.Fatalf("op %d: lookup(%d) = %d,%v want %d,%v", i, key, got, ok, want, wok)
			}
		case 3:
			if got, want := tab.Delete(key), func() bool { _, ok := model[key]; return ok }(); got != want {
				t.Fatalf("op %d: delete(%d) = %v want %v", i, key, got, want)
			}
			delete(model, key)
		}
	}
	if tab.Len() != len(model) {
		t.Fatalf("Len = %d, model has %d", tab.Len(), len(model))
	}
}

func TestStashCatchesOverflow(t *testing.T) {
	// A tiny table overfilled far beyond its capacity margin must shunt
	// items to the stash rather than fail.
	tab, err := New(Config{BucketsPerTable: 32, Seed: 5, MaxLoop: 50,
		StashEnabled: true, AssumeUniqueKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := fillKeys(5, 96)
	stashed := 0
	for _, k := range keys {
		out := tab.Insert(k, k)
		switch out.Status {
		case kv.Stashed:
			stashed++
		case kv.Failed:
			t.Fatal("failed despite unbounded stash")
		}
	}
	if stashed == 0 {
		t.Fatal("expected some stashed items at 100% load")
	}
	if tab.StashLen() != stashed {
		t.Fatalf("StashLen = %d, observed %d stash outcomes", tab.StashLen(), stashed)
	}
	for _, k := range keys {
		if v, ok := tab.Lookup(k); !ok || v != k {
			t.Fatalf("key %#x lost (stashed items must stay findable)", k)
		}
	}
	if tab.Stats().StashProbe == 0 {
		t.Fatal("stash never probed")
	}
}

func TestBoundedStashFails(t *testing.T) {
	tab, err := New(Config{BucketsPerTable: 16, Seed: 5, MaxLoop: 20,
		StashEnabled: true, StashMax: 4, AssumeUniqueKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := fillKeys(21, 80)
	failed := false
	for _, k := range keys {
		if tab.Insert(k, k).Status == kv.Failed {
			failed = true
		}
	}
	if !failed {
		t.Fatal("bounded stash never reported failure at 160% load")
	}
	if tab.StashLen() > 4 {
		t.Fatalf("stash grew to %d despite cap 4", tab.StashLen())
	}
}

func TestRehashRecoversAllItems(t *testing.T) {
	tab, err := New(Config{BucketsPerTable: 64, Seed: 9, MaxLoop: 30,
		StashEnabled: true, AssumeUniqueKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := fillKeys(13, 170)
	for _, k := range keys {
		tab.Insert(k, k*3)
	}
	if err := tab.Rehash(2); err != nil {
		t.Fatalf("Rehash: %v", err)
	}
	if tab.Capacity() != 3*128*1 {
		t.Fatalf("capacity after grow = %d", tab.Capacity())
	}
	for _, k := range keys {
		if v, ok := tab.Lookup(k); !ok || v != k*3 {
			t.Fatalf("key %#x lost after rehash", k)
		}
	}
	if err := tab.Rehash(0.5); err == nil {
		t.Fatal("shrinking growFactor accepted")
	}
}

func TestMeterLookupMissCostsDReads(t *testing.T) {
	tab, err := New(Config{BucketsPerTable: 64, Seed: 1, AssumeUniqueKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	before := tab.Meter().Snapshot()
	tab.Lookup(12345)
	delta := tab.Meter().Snapshot().Sub(before)
	if delta.OffChipReads != 3 {
		t.Fatalf("miss cost %d reads, want 3", delta.OffChipReads)
	}
	if delta.OffChipWrites != 0 {
		t.Fatalf("miss cost %d writes", delta.OffChipWrites)
	}
}

func TestMeterDeleteOneWrite(t *testing.T) {
	tab, err := New(Config{BucketsPerTable: 64, Seed: 1, AssumeUniqueKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	tab.Insert(5, 5)
	before := tab.Meter().Snapshot()
	if !tab.Delete(5) {
		t.Fatal("delete failed")
	}
	delta := tab.Meter().Snapshot().Sub(before)
	if delta.OffChipWrites != 1 {
		t.Fatalf("delete cost %d writes, want exactly 1 (§IV.D)", delta.OffChipWrites)
	}
}

func TestMinCounterPolicyFills(t *testing.T) {
	tab, err := New(Config{BucketsPerTable: 2048, Seed: 17, Policy: kv.MinCounter,
		AssumeUniqueKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := fillKeys(23, tab.Capacity())
	inserted := fillToLoad(t, tab, keys, 0.85)
	for _, k := range inserted {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatalf("key %#x lost under MinCounter", k)
		}
	}
	if tab.Meter().OnChipReads == 0 {
		t.Fatal("MinCounter policy performed no on-chip reads")
	}
}

func TestKicksReportedInOutcome(t *testing.T) {
	tab, err := New(Config{BucketsPerTable: 128, Seed: 2, AssumeUniqueKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := fillKeys(31, 340)
	total := 0
	for _, k := range keys {
		out := tab.Insert(k, k)
		if out.Status == kv.Failed {
			break
		}
		total += out.Kicks
	}
	if total == 0 {
		t.Fatal("no kicks at ~88% load; kick accounting broken")
	}
	if int64(total) != tab.Stats().Kicks {
		t.Fatalf("outcome kicks %d != stats kicks %d", total, tab.Stats().Kicks)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, int64) {
		tab, err := New(Config{BucketsPerTable: 256, Seed: 4, AssumeUniqueKeys: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range fillKeys(55, 600) {
			tab.Insert(k, k)
		}
		return tab.Stats().Kicks, tab.Meter().OffChipReads
	}
	k1, r1 := run()
	k2, r2 := run()
	if k1 != k2 || r1 != r2 {
		t.Fatalf("runs differ: kicks %d vs %d, reads %d vs %d", k1, k2, r1, r2)
	}
}

var _ kv.Table = (*Table)(nil)

func TestBloomPrescreenCorrectness(t *testing.T) {
	tab, err := New(Config{BucketsPerTable: 512, Seed: 51, StashEnabled: true,
		BloomM: 3 * 512 * 4, BloomK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tab.OnChipBytes() == 0 {
		t.Fatal("Bloom prescreen reports no on-chip memory")
	}
	model := map[uint64]uint64{}
	s := hashutil.Mix64(53)
	for i := 0; i < 8000; i++ {
		r := hashutil.SplitMix64(&s)
		key := r % 1200
		switch (r >> 32) % 4 {
		case 0, 1:
			if tab.Insert(key, r).Status != kv.Failed {
				model[key] = r
			}
		case 2:
			got, ok := tab.Lookup(key)
			want, wok := model[key]
			if ok != wok || (ok && got != want) {
				t.Fatalf("op %d: lookup(%d) = (%d,%v), want (%d,%v)", i, key, got, ok, want, wok)
			}
		case 3:
			_, wok := model[key]
			if got := tab.Delete(key); got != wok {
				t.Fatalf("op %d: delete(%d) = %v, want %v", i, key, got, wok)
			}
			delete(model, key)
		}
	}
	if tab.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tab.Len(), len(model))
	}
}

func TestBloomPrescreenFiltersMisses(t *testing.T) {
	// With ~8 cells per item the CBF should answer most negative lookups
	// on-chip, like McCuckoo's counters do.
	tab, err := New(Config{BucketsPerTable: 2048, Seed: 55, StashEnabled: true,
		AssumeUniqueKeys: true, BloomM: 3 * 2048 * 4, BloomK: 3})
	if err != nil {
		t.Fatal(err)
	}
	keys := fillKeys(57, tab.Capacity()/2)
	for _, k := range keys {
		tab.Insert(k, k)
	}
	before := tab.Meter().Snapshot()
	misses := fillKeys(5858, 5000)
	for _, k := range misses {
		if _, ok := tab.Lookup(k); ok {
			t.Fatal("phantom hit")
		}
	}
	delta := tab.Meter().Snapshot().Sub(before)
	perMiss := float64(delta.OffChipReads) / float64(len(misses))
	if perMiss > 0.5 {
		t.Fatalf("CBF-screened misses cost %.3f off-chip reads, want <0.5", perMiss)
	}
	if delta.OnChipReads == 0 {
		t.Fatal("filter queries not charged on-chip")
	}
}

func TestBloomRehashRebuildsFilter(t *testing.T) {
	tab, err := New(Config{BucketsPerTable: 64, Seed: 59, MaxLoop: 30,
		StashEnabled: true, BloomM: 1024, BloomK: 3})
	if err != nil {
		t.Fatal(err)
	}
	keys := fillKeys(61, 150)
	for _, k := range keys {
		tab.Insert(k, k)
	}
	if err := tab.Rehash(2); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if v, ok := tab.Lookup(k); !ok || v != k {
			t.Fatalf("key %#x lost across rehash with filter", k)
		}
	}
	// Deleting every key must work (filter counts were rebuilt, not
	// doubled).
	for _, k := range keys {
		if !tab.Delete(k) {
			t.Fatalf("delete %#x failed after rehash", k)
		}
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d", tab.Len())
	}
}
