package cuckoo

import (
	"testing"

	"mccuckoo/internal/kv"
)

func TestSmartCuckooConfigValidation(t *testing.T) {
	if _, err := New(Config{D: 3, BucketsPerTable: 16, PredetermineLoops: true}); err == nil {
		t.Error("d=3 with predetermination accepted")
	}
	if _, err := New(Config{D: 2, Slots: 3, BucketsPerTable: 16, PredetermineLoops: true}); err == nil {
		t.Error("slots=3 with predetermination accepted")
	}
	if _, err := New(Config{D: 2, BucketsPerTable: 16, PredetermineLoops: true}); err != nil {
		t.Errorf("valid smartcuckoo config rejected: %v", err)
	}
}

func TestPseudoforestMechanics(t *testing.T) {
	p := newPseudoforest(6)
	// Build a path 0-1-2: always placeable.
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		if p.wouldFail(e[0], e[1]) {
			t.Fatalf("edge %v predicted to fail in a tree", e)
		}
		p.addEdge(e[0], e[1])
	}
	// Close the cycle 0-2: still placeable (one cycle per component).
	if p.wouldFail(0, 2) {
		t.Fatal("first cycle predicted to fail")
	}
	p.addEdge(0, 2)
	// Any further edge inside the component must fail.
	if !p.wouldFail(1, 2) || !p.wouldFail(0, 0) {
		t.Fatal("second cycle not predicted")
	}
	// A separate component 3-4 with its own cycle.
	p.addEdge(3, 4)
	if p.wouldFail(3, 4) {
		t.Fatal("cycle in fresh component predicted to fail")
	}
	p.addEdge(3, 4)
	// Merging two cyclic components must fail; merging cyclic with a
	// fresh vertex must not.
	if !p.wouldFail(0, 3) {
		t.Fatal("merge of two cyclic components not predicted to fail")
	}
	if p.wouldFail(0, 5) {
		t.Fatal("attaching a fresh vertex predicted to fail")
	}
}

// TestSmartCuckooPredictionsAreExact fills a d=2 table past its threshold
// and checks both directions of the prediction: predetermined failures
// waste zero kicks, and no insertion that the forest approved ever fails.
func TestSmartCuckooPredictionsAreExact(t *testing.T) {
	tab, err := New(Config{D: 2, BucketsPerTable: 2048, Seed: 81,
		PredetermineLoops: true, StashEnabled: true, AssumeUniqueKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := fillKeys(82, int(0.55*float64(tab.Capacity())))
	predicted := 0
	for _, k := range keys {
		out := tab.Insert(k, k)
		switch out.Status {
		case kv.Stashed:
			if out.Kicks != 0 {
				t.Fatalf("predetermined failure still kicked %d times", out.Kicks)
			}
			predicted++
		case kv.Failed:
			t.Fatal("failed with unbounded stash")
		case kv.Placed:
			// Approved inserts may relocate but must always land.
		}
	}
	if predicted == 0 {
		t.Fatal("no predetermined failures at 55% load on d=2 (threshold is 50%)")
	}
	for _, k := range keys {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatalf("key %#x lost", k)
		}
	}
}

// TestSmartCuckooZeroWastedKicks compares wasted work on failing inserts
// against the plain d=2 baseline.
func TestSmartCuckooZeroWastedKicks(t *testing.T) {
	fill := func(predetermine bool) (stashed int, kicksOnStashed int) {
		tab, err := New(Config{D: 2, BucketsPerTable: 1024, Seed: 83, MaxLoop: 100,
			PredetermineLoops: predetermine, StashEnabled: true, AssumeUniqueKeys: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range fillKeys(84, int(0.55*float64(tab.Capacity()))) {
			out := tab.Insert(k, k)
			if out.Status == kv.Stashed {
				stashed++
				kicksOnStashed += out.Kicks
			}
		}
		return stashed, kicksOnStashed
	}
	sStash, sKicks := fill(true)
	bStash, bKicks := fill(false)
	if sKicks != 0 {
		t.Errorf("SmartCuckoo wasted %d kicks on %d stashed inserts, want 0", sKicks, sStash)
	}
	if bStash > 0 && bKicks == 0 {
		t.Errorf("baseline wasted no kicks on %d stashed inserts; expected maxloop-bounded waste", bStash)
	}
}

func TestSmartCuckooDeleteDisablesPrediction(t *testing.T) {
	tab, err := New(Config{D: 2, BucketsPerTable: 256, Seed: 85,
		PredetermineLoops: true, StashEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := fillKeys(86, 200)
	for _, k := range keys {
		tab.Insert(k, k)
	}
	if !tab.forestValid {
		t.Fatal("forest invalid before any delete")
	}
	tab.Delete(keys[0])
	if tab.forestValid {
		t.Fatal("forest still valid after delete")
	}
	// The table keeps working correctly without prediction.
	fresh := fillKeys(87, 50)
	for _, k := range fresh {
		if tab.Insert(k, k).Status == kv.Failed {
			t.Fatal("insert failed post-delete")
		}
	}
	for _, k := range fresh {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatal("key lost post-delete")
		}
	}
	// Rehash restores prediction.
	if err := tab.Rehash(1.5); err != nil {
		t.Fatal(err)
	}
	if !tab.forestValid {
		t.Fatal("forest not restored by Rehash")
	}
	for _, k := range keys[1:] {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatal("key lost across rehash")
		}
	}
}
