package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestAggMeanStd(t *testing.T) {
	var a Agg
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %g, want 5", a.Mean())
	}
	// Sample std of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(a.Std()-want) > 1e-12 {
		t.Fatalf("Std = %g, want %g", a.Std(), want)
	}
}

func TestAggEdgeCases(t *testing.T) {
	var a Agg
	if a.Mean() != 0 || a.Std() != 0 {
		t.Fatal("empty agg not zero")
	}
	a.Add(3)
	if a.Std() != 0 {
		t.Fatal("single-sample std not zero")
	}
}

func TestSeriesAggregation(t *testing.T) {
	s := NewSeries("kicks")
	s.Add(0.5, 1)
	s.Add(0.5, 3)
	s.Add(0.9, 10)
	if got := s.Xs(); len(got) != 2 || got[0] != 0.5 || got[1] != 0.9 {
		t.Fatalf("Xs = %v", got)
	}
	if y, ok := s.At(0.5); !ok || y != 2 {
		t.Fatalf("At(0.5) = %g,%v", y, ok)
	}
	if _, ok := s.At(0.7); ok {
		t.Fatal("phantom x")
	}
	if s.StdAt(0.5) == 0 {
		t.Fatal("std should be nonzero for two samples")
	}
	if s.StdAt(0.7) != 0 {
		t.Fatal("std at missing x should be 0")
	}
}

func TestTableRender(t *testing.T) {
	a := NewSeries("Cuckoo")
	b := NewSeries("McCuckoo")
	a.Add(50, 1.5)
	a.Add(85, 4.25)
	b.Add(50, 0.5)
	// b has no sample at 85: rendered as "-".
	var sb strings.Builder
	tbl := Table{
		Title:  "Fig. 9",
		XLabel: "load",
		XFmt:   "%.0f%%",
		YFmt:   "%.2f",
		Series: []*Series{a, b},
	}
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig. 9", "load", "Cuckoo", "McCuckoo", "50%", "85%", "4.25", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestRenderRows(t *testing.T) {
	var sb strings.Builder
	err := RenderRows(&sb, "Table I", [][]string{
		{"scheme", "load"},
		{"Cuckoo", "9.27%"},
		{"B-McCuckoo", "61.42%"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "61.42%") {
		t.Errorf("bad output:\n%s", out)
	}
	// Columns aligned: "scheme" padded to the width of "B-McCuckoo".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
		if len(line) < len("B-McCuckoo") {
			t.Errorf("row %q not padded", line)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	a := NewSeries("Cuckoo")
	b := NewSeries("McCuckoo")
	a.Add(50, 1.5)
	a.Add(85, 4.25)
	b.Add(50, 0.5)
	var sb strings.Builder
	tbl := Table{XLabel: "load", Series: []*Series{a, b}}
	if err := tbl.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "load,Cuckoo,McCuckoo\n50,1.5,0.5\n85,4.25,\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestRenderRowsCSV(t *testing.T) {
	var sb strings.Builder
	err := RenderRowsCSV(&sb, [][]string{{"a", "b"}, {"1", "2,x"}})
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != "a,b\n1,\"2,x\"\n" {
		t.Fatalf("CSV = %q", sb.String())
	}
}
