// Package metrics holds the small statistics and tabulation helpers the
// experiment harness uses: per-run aggregation (mean over repeated runs, as
// the paper averages 10 runs per experiment) and aligned-text rendering of
// series and tables.
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Agg accumulates samples and reports mean and standard deviation using
// Welford's algorithm.
type Agg struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (a *Agg) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples.
func (a *Agg) N() int { return a.n }

// Mean returns the sample mean (0 with no samples).
func (a *Agg) Mean() float64 { return a.mean }

// Std returns the sample standard deviation (0 with fewer than 2 samples).
func (a *Agg) Std() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// Series is one named curve: y values indexed by x (e.g. load ratio).
// Multiple runs may contribute to the same x; points aggregate them.
type Series struct {
	Name   string
	points map[float64]*Agg
}

// NewSeries creates an empty series.
func NewSeries(name string) *Series {
	return &Series{Name: name, points: make(map[float64]*Agg)}
}

// Add records one sample of y at x.
func (s *Series) Add(x, y float64) {
	a := s.points[x]
	if a == nil {
		a = &Agg{}
		s.points[x] = a
	}
	a.Add(y)
}

// Xs returns the sorted x values.
func (s *Series) Xs() []float64 {
	xs := make([]float64, 0, len(s.points))
	for x := range s.points {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	return xs
}

// At returns the mean y at x; ok is false when x has no samples.
func (s *Series) At(x float64) (float64, bool) {
	a, ok := s.points[x]
	if !ok {
		return 0, false
	}
	return a.Mean(), true
}

// StdAt returns the standard deviation of y at x.
func (s *Series) StdAt(x float64) float64 {
	if a, ok := s.points[x]; ok {
		return a.Std()
	}
	return 0
}

// Table renders multiple series sharing an x axis as an aligned text table,
// the harness's equivalent of one paper figure.
type Table struct {
	Title  string
	XLabel string
	XFmt   string // e.g. "%.0f%%"
	YFmt   string // e.g. "%.3f"
	Series []*Series
}

// Render writes the table to w.
func (t Table) Render(w io.Writer) error {
	if t.XFmt == "" {
		t.XFmt = "%.2f"
	}
	if t.YFmt == "" {
		t.YFmt = "%.3f"
	}
	// Union of x values across series, sorted.
	xset := map[float64]struct{}{}
	for _, s := range t.Series {
		for _, x := range s.Xs() {
			xset[x] = struct{}{}
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	header := make([]string, 0, len(t.Series)+1)
	header = append(header, t.XLabel)
	for _, s := range t.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{fmt.Sprintf(t.XFmt, x)}
		for _, s := range t.Series {
			if y, ok := s.At(x); ok {
				row = append(row, fmt.Sprintf(t.YFmt, y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	return renderAligned(w, rows)
}

// renderAligned writes rows with columns padded to equal width.
func renderAligned(w io.Writer, rows [][]string) error {
	if len(rows) == 0 {
		return nil
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderRows writes a free-form aligned table (first row is the header).
func RenderRows(w io.Writer, title string, rows [][]string) error {
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	return renderAligned(w, rows)
}

// RenderCSV writes the table as CSV (x column first, one column per
// series), for plotting outside the CLI.
func (t Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(t.Series)+1)
	header = append(header, t.XLabel)
	for _, s := range t.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	xset := map[float64]struct{}{}
	for _, s := range t.Series {
		for _, x := range s.Xs() {
			xset[x] = struct{}{}
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := []string{strconv.FormatFloat(x, 'g', -1, 64)}
		for _, s := range t.Series {
			if y, ok := s.At(x); ok {
				row = append(row, strconv.FormatFloat(y, 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderRowsCSV writes free-form rows as CSV.
func RenderRowsCSV(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
