// Package stash implements the overflow store used when cuckoo insertion
// fails. The paper's baselines keep a tiny stash that is checked on every
// failed lookup (CHS, [22]); McCuckoo instead puts a large stash in off-chip
// memory and pre-screens accesses with counters and per-bucket flags (§III.E).
// Both use this structure; only the pre-screening differs and lives with the
// tables.
//
// The stash is a chained hash directory with 4-entry bucket groups: probing
// one group costs one off-chip read, matching the paper's assumption that a
// whole bucket is retrieved per memory access.
package stash

import (
	"fmt"

	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/memmodel"
)

// groupSize is the number of entries fetched by one off-chip read.
const groupSize = 4

// Stash is an off-chip overflow store. It is not safe for concurrent use;
// the owning table serializes access.
type Stash struct {
	meter    *memmodel.Meter
	seed     uint64
	dirMask  uint64
	buckets  [][]kv.Entry
	size     int
	maxItems int // 0 means unbounded
}

// New creates a stash with 2^dirBits directory slots. maxItems, if positive,
// caps the number of stored items (modelling a fixed-size on-chip stash for
// the CHS baseline; the paper uses size 4). meter receives the off-chip
// traffic; it must not be nil.
func New(dirBits int, maxItems int, seed uint64, meter *memmodel.Meter) (*Stash, error) {
	if dirBits < 0 || dirBits > 24 {
		return nil, fmt.Errorf("stash: dirBits must be in [0,24], got %d", dirBits)
	}
	if meter == nil {
		return nil, fmt.Errorf("stash: meter must not be nil")
	}
	n := 1 << dirBits
	return &Stash{
		meter:    meter,
		seed:     hashutil.Mix64(seed ^ 0x57a5_57a5),
		dirMask:  uint64(n - 1),
		buckets:  make([][]kv.Entry, n),
		maxItems: maxItems,
	}, nil
}

// Len returns the number of stored items.
func (s *Stash) Len() int { return s.size }

// Full reports whether the stash has reached its capacity limit.
func (s *Stash) Full() bool { return s.maxItems > 0 && s.size >= s.maxItems }

func (s *Stash) slot(key uint64) uint64 {
	return hashutil.BOB64Key(key, s.seed) & s.dirMask
}

// groups returns the number of off-chip reads needed to scan the first n+1
// entries of a chain (n is the index of the last entry examined).
func groups(lastIdx int) int64 {
	return int64(lastIdx/groupSize) + 1
}

// Insert adds key/value, replacing the value if key is already stashed.
// It returns false when the stash is full.
func (s *Stash) Insert(key, value uint64) bool {
	chain := s.buckets[s.slot(key)]
	for i := range chain {
		if chain[i].Key == key {
			s.meter.ReadOff(groups(i))
			chain[i].Value = value
			s.meter.WriteOff(1)
			return true
		}
	}
	if len(chain) > 0 {
		s.meter.ReadOff(groups(len(chain) - 1))
	}
	if s.Full() {
		return false
	}
	s.buckets[s.slot(key)] = append(chain, kv.Entry{Key: key, Value: value})
	s.meter.WriteOff(1)
	s.size++
	return true
}

// Lookup searches for key.
func (s *Stash) Lookup(key uint64) (uint64, bool) {
	chain := s.buckets[s.slot(key)]
	for i := range chain {
		if chain[i].Key == key {
			s.meter.ReadOff(groups(i))
			return chain[i].Value, true
		}
	}
	if len(chain) > 0 {
		s.meter.ReadOff(groups(len(chain) - 1))
	} else {
		s.meter.ReadOff(1) // empty group still costs the probe
	}
	return 0, false
}

// Delete removes key, reporting whether it was present.
func (s *Stash) Delete(key uint64) bool {
	slot := s.slot(key)
	chain := s.buckets[slot]
	for i := range chain {
		if chain[i].Key == key {
			s.meter.ReadOff(groups(i))
			chain[i] = chain[len(chain)-1]
			s.buckets[slot] = chain[:len(chain)-1]
			s.meter.WriteOff(1)
			s.size--
			return true
		}
	}
	if len(chain) > 0 {
		s.meter.ReadOff(groups(len(chain) - 1))
	} else {
		s.meter.ReadOff(1)
	}
	return false
}

// Drain removes and returns all entries. Used when reinserting stashed items
// into the main table (stash-flag refresh, §III.F, and the baselines' retry
// when space frees up).
func (s *Stash) Drain() []kv.Entry {
	out := make([]kv.Entry, 0, s.size)
	for i, chain := range s.buckets {
		if len(chain) == 0 {
			continue
		}
		s.meter.ReadOff(groups(len(chain) - 1))
		out = append(out, chain...)
		s.buckets[i] = nil
	}
	s.size = 0
	return out
}

// Peek searches for key without charging memory traffic. It supports the
// read-only lookup path used for concurrent readers.
func (s *Stash) Peek(key uint64) (uint64, bool) {
	for _, e := range s.buckets[s.slot(key)] {
		if e.Key == key {
			return e.Value, true
		}
	}
	return 0, false
}

// PeekTraced is Peek additionally reporting the off-chip reads the probe
// would have cost (the same group count Lookup charges to the meter). It lets
// the concurrent read path report per-lookup access counts to telemetry
// without mutating the shared meter.
func (s *Stash) PeekTraced(key uint64) (value uint64, ok bool, offReads int64) {
	chain := s.buckets[s.slot(key)]
	for i := range chain {
		if chain[i].Key == key {
			return chain[i].Value, true, groups(i)
		}
	}
	if len(chain) > 0 {
		return 0, false, groups(len(chain) - 1)
	}
	return 0, false, 1 // empty group still costs the probe
}

// Entries returns a copy of all entries without mutating the stash and
// without charging memory traffic (used by tests and invariant checks only).
// Serialization depends on the bucket-then-insertion order being stable.
//
//mcvet:deterministic
func (s *Stash) Entries() []kv.Entry {
	out := make([]kv.Entry, 0, s.size)
	for _, chain := range s.buckets {
		out = append(out, chain...)
	}
	return out
}

// Restore repopulates an empty stash from serialized entries without
// charging memory traffic. It fails if the stash is not empty or the
// entries exceed the capacity limit.
func (s *Stash) Restore(entries []kv.Entry) error {
	if s.size != 0 {
		return fmt.Errorf("stash: Restore on non-empty stash (%d items)", s.size)
	}
	if s.maxItems > 0 && len(entries) > s.maxItems {
		return fmt.Errorf("stash: %d entries exceed capacity %d", len(entries), s.maxItems)
	}
	for _, e := range entries {
		slot := s.slot(e.Key)
		s.buckets[slot] = append(s.buckets[slot], e)
	}
	s.size = len(entries)
	return nil
}
