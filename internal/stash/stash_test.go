package stash

import (
	"testing"
	"testing/quick"

	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/memmodel"
)

func newTestStash(t *testing.T, maxItems int) (*Stash, *memmodel.Meter) {
	t.Helper()
	var m memmodel.Meter
	s, err := New(4, maxItems, 1, &m)
	if err != nil {
		t.Fatal(err)
	}
	return s, &m
}

func TestNewValidation(t *testing.T) {
	var m memmodel.Meter
	if _, err := New(-1, 0, 1, &m); err == nil {
		t.Error("negative dirBits accepted")
	}
	if _, err := New(25, 0, 1, &m); err == nil {
		t.Error("huge dirBits accepted")
	}
	if _, err := New(4, 0, 1, nil); err == nil {
		t.Error("nil meter accepted")
	}
}

func TestInsertLookupDelete(t *testing.T) {
	s, _ := newTestStash(t, 0)
	if !s.Insert(10, 100) {
		t.Fatal("insert failed")
	}
	if v, ok := s.Lookup(10); !ok || v != 100 {
		t.Fatalf("lookup = %d,%v", v, ok)
	}
	if _, ok := s.Lookup(11); ok {
		t.Fatal("phantom key found")
	}
	if !s.Insert(10, 200) {
		t.Fatal("update failed")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after update, want 1", s.Len())
	}
	if v, _ := s.Lookup(10); v != 200 {
		t.Fatalf("value = %d after update, want 200", v)
	}
	if !s.Delete(10) {
		t.Fatal("delete failed")
	}
	if s.Delete(10) {
		t.Fatal("double delete succeeded")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after delete", s.Len())
	}
}

func TestCapacityLimit(t *testing.T) {
	s, _ := newTestStash(t, 4)
	for i := uint64(0); i < 4; i++ {
		if !s.Insert(i, i) {
			t.Fatalf("insert %d rejected below capacity", i)
		}
	}
	if !s.Full() {
		t.Fatal("stash should be full")
	}
	if s.Insert(99, 99) {
		t.Fatal("insert above capacity accepted")
	}
	// Updating an existing key must still work when full.
	if !s.Insert(2, 222) {
		t.Fatal("update rejected when full")
	}
}

func TestDrain(t *testing.T) {
	s, _ := newTestStash(t, 0)
	keys := map[uint64]uint64{}
	st := uint64(9)
	for i := 0; i < 50; i++ {
		k := hashutil.SplitMix64(&st)
		keys[k] = k * 2
		s.Insert(k, k*2)
	}
	got := s.Drain()
	if len(got) != 50 || s.Len() != 0 {
		t.Fatalf("Drain returned %d entries, Len=%d", len(got), s.Len())
	}
	for _, e := range got {
		if keys[e.Key] != e.Value {
			t.Fatalf("entry %v corrupted", e)
		}
		delete(keys, e.Key)
	}
	if len(keys) != 0 {
		t.Fatalf("%d entries lost in Drain", len(keys))
	}
}

func TestMeterCharging(t *testing.T) {
	s, m := newTestStash(t, 0)
	s.Insert(1, 1)
	if m.OffChipWrites != 1 {
		t.Fatalf("insert writes = %d, want 1", m.OffChipWrites)
	}
	before := m.OffChipReads
	s.Lookup(1)
	if m.OffChipReads <= before {
		t.Fatal("lookup charged no reads")
	}
	before = m.OffChipReads
	s.Lookup(2) // miss on some chain
	if m.OffChipReads <= before {
		t.Fatal("missed lookup charged no reads")
	}
}

func TestGroupsReadCost(t *testing.T) {
	// A chain of 9 entries in one slot needs ceil(9/4)=3 reads to miss.
	var m memmodel.Meter
	s, err := New(0, 0, 1, &m) // single directory slot
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 9; i++ {
		s.Insert(i, i)
	}
	m.Reset()
	s.Lookup(1000) // miss scans whole chain
	if m.OffChipReads != 3 {
		t.Fatalf("miss over 9-entry chain cost %d reads, want 3", m.OffChipReads)
	}
	m.Reset()
	s.Lookup(0) // first entry: one group
	if m.OffChipReads != 1 {
		t.Fatalf("hit on first entry cost %d reads, want 1", m.OffChipReads)
	}
}

// Property: the stash agrees with a map model under random operations.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(ops []struct {
		Key uint8
		Val uint16
		Op  uint8
	}) bool {
		var m memmodel.Meter
		s, err := New(2, 0, 7, &m)
		if err != nil {
			return false
		}
		model := map[uint64]uint64{}
		for _, op := range ops {
			k, v := uint64(op.Key), uint64(op.Val)
			switch op.Op % 3 {
			case 0:
				s.Insert(k, v)
				model[k] = v
			case 1:
				gv, ok := s.Lookup(k)
				mv, mok := model[k]
				if ok != mok || (ok && gv != mv) {
					return false
				}
			case 2:
				if s.Delete(k) != (func() bool { _, ok := model[k]; return ok })() {
					return false
				}
				delete(model, k)
			}
		}
		return s.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPeekMatchesLookupWithoutTraffic(t *testing.T) {
	s, m := newTestStash(t, 0)
	for i := uint64(0); i < 40; i++ {
		s.Insert(i, i*3)
	}
	before := m.Snapshot()
	for i := uint64(0); i < 80; i++ {
		pv, pok := s.Peek(i)
		if pok != (i < 40) || (pok && pv != i*3) {
			t.Fatalf("Peek(%d) = (%d,%v)", i, pv, pok)
		}
	}
	if delta := m.Snapshot().Sub(before); delta.OffChipReads != 0 || delta.OffChipWrites != 0 {
		t.Fatalf("Peek charged traffic: %+v", delta)
	}
}

func TestRestore(t *testing.T) {
	s, _ := newTestStash(t, 0)
	entries := []kv.Entry{{Key: 1, Value: 10}, {Key: 2, Value: 20}, {Key: 3, Value: 30}}
	if err := s.Restore(entries); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	for _, e := range entries {
		if v, ok := s.Lookup(e.Key); !ok || v != e.Value {
			t.Fatalf("restored key %d = (%d,%v)", e.Key, v, ok)
		}
	}
	// Restore onto a non-empty stash fails.
	if err := s.Restore(entries); err == nil {
		t.Error("Restore on non-empty stash accepted")
	}
	// Restore beyond capacity fails.
	capped, _ := newTestStash(t, 2)
	if err := capped.Restore(entries); err == nil {
		t.Error("Restore beyond capacity accepted")
	}
}

func TestInsertUpdateChargesTraffic(t *testing.T) {
	s, m := newTestStash(t, 0)
	s.Insert(7, 1)
	before := m.Snapshot()
	s.Insert(7, 2) // update path
	delta := m.Snapshot().Sub(before)
	if delta.OffChipReads == 0 || delta.OffChipWrites != 1 {
		t.Fatalf("update charged %+v", delta)
	}
	if v, _ := s.Lookup(7); v != 2 {
		t.Fatal("update lost")
	}
}

func TestEntriesCopies(t *testing.T) {
	s, _ := newTestStash(t, 0)
	s.Insert(1, 1)
	s.Insert(2, 2)
	got := s.Entries()
	if len(got) != 2 || s.Len() != 2 {
		t.Fatalf("Entries = %v, Len = %d", got, s.Len())
	}
}
