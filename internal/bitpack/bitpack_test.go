package bitpack

import (
	"testing"
	"testing/quick"
)

func TestCountersValidation(t *testing.T) {
	if _, err := NewCounters(-1, 2); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := NewCounters(10, 0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewCounters(10, 17); err == nil {
		t.Error("width 17 accepted")
	}
}

func TestCountersBasics(t *testing.T) {
	c, err := NewCounters(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 100 || c.Width() != 2 || c.Max() != 3 {
		t.Fatalf("Len=%d Width=%d Max=%d", c.Len(), c.Width(), c.Max())
	}
	for i := 0; i < 100; i++ {
		if c.Get(i) != 0 {
			t.Fatalf("counter %d not zero initially", i)
		}
	}
	c.Set(0, 3)
	c.Set(1, 1)
	c.Set(99, 2)
	if c.Get(0) != 3 || c.Get(1) != 1 || c.Get(99) != 2 {
		t.Fatalf("get after set: %d %d %d", c.Get(0), c.Get(1), c.Get(99))
	}
	// Neighbours untouched.
	if c.Get(2) != 0 || c.Get(98) != 0 {
		t.Fatal("neighbouring counters disturbed")
	}
}

func TestCountersDec(t *testing.T) {
	c, _ := NewCounters(4, 2)
	c.Set(2, 3)
	if v := c.Dec(2); v != 2 {
		t.Fatalf("Dec returned %d, want 2", v)
	}
	if c.Get(2) != 2 {
		t.Fatalf("counter = %d after Dec, want 2", c.Get(2))
	}
	defer func() {
		if recover() == nil {
			t.Error("Dec of zero counter did not panic")
		}
	}()
	c.Dec(0)
}

func TestCountersSetOverflowPanics(t *testing.T) {
	c, _ := NewCounters(4, 2)
	defer func() {
		if recover() == nil {
			t.Error("Set(_, 4) on 2-bit counter did not panic")
		}
	}()
	c.Set(0, 4)
}

func TestCountersOutOfRangePanics(t *testing.T) {
	c, _ := NewCounters(4, 2)
	for _, i := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			c.Get(i)
		}()
	}
}

func TestCountersReset(t *testing.T) {
	c, _ := NewCounters(70, 3)
	for i := 0; i < 70; i++ {
		c.Set(i, uint64(i)%8)
	}
	c.Reset()
	for i := 0; i < 70; i++ {
		if c.Get(i) != 0 {
			t.Fatalf("counter %d = %d after Reset", i, c.Get(i))
		}
	}
}

func TestCountersSizeBytes(t *testing.T) {
	// 1M buckets at 2 bits each: 32 counters/word -> 32768 words -> 256 KiB.
	c, _ := NewCounters(1<<20, 2)
	if got := c.SizeBytes(); got != 1<<18 {
		t.Errorf("SizeBytes = %d, want %d", got, 1<<18)
	}
}

// Property: a packed Counters behaves exactly like a plain slice under an
// arbitrary sequence of Set operations, for every width.
func TestCountersQuickEquivalence(t *testing.T) {
	for _, width := range []uint{1, 2, 3, 5, 7, 16} {
		width := width
		f := func(ops []struct {
			Idx uint16
			Val uint16
		}) bool {
			const n = 257 // odd size to exercise partial final word
			c, err := NewCounters(n, width)
			if err != nil {
				return false
			}
			model := make([]uint64, n)
			for _, op := range ops {
				i := int(op.Idx) % n
				v := uint64(op.Val) & c.Max()
				c.Set(i, v)
				model[i] = v
			}
			for i := 0; i < n; i++ {
				if c.Get(i) != model[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("width %d: %v", width, err)
		}
	}
}

func TestBitsetBasics(t *testing.T) {
	b, err := NewBitset(130)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("Len=%d Count=%d", b.Len(), b.Count())
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("Get/Set mismatch")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 2 {
		t.Fatal("Clear failed")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestBitsetValidation(t *testing.T) {
	if _, err := NewBitset(-1); err == nil {
		t.Error("negative length accepted")
	}
	b, _ := NewBitset(8)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Set did not panic")
		}
	}()
	b.Set(8)
}

// Property: Bitset matches a []bool model.
func TestBitsetQuickEquivalence(t *testing.T) {
	f := func(ops []struct {
		Idx uint16
		On  bool
	}) bool {
		const n = 200
		b, _ := NewBitset(n)
		model := make([]bool, n)
		for _, op := range ops {
			i := int(op.Idx) % n
			if op.On {
				b.Set(i)
			} else {
				b.Clear(i)
			}
			model[i] = op.On
		}
		count := 0
		for i := 0; i < n; i++ {
			if b.Get(i) != model[i] {
				return false
			}
			if model[i] {
				count++
			}
		}
		return b.Count() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCountersGetSet(b *testing.B) {
	c, _ := NewCounters(1<<20, 2)
	for i := 0; i < b.N; i++ {
		idx := i & (1<<20 - 1)
		c.Set(idx, uint64(i)&3)
		_ = c.Get(idx)
	}
}

func TestCountersWordsRoundTrip(t *testing.T) {
	a, _ := NewCounters(100, 3)
	for i := 0; i < 100; i++ {
		a.Set(i, uint64(i)%8)
	}
	b, _ := NewCounters(100, 3)
	if err := b.LoadWords(a.Words()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if b.Get(i) != a.Get(i) {
			t.Fatalf("counter %d: %d != %d", i, b.Get(i), a.Get(i))
		}
	}
	// Geometry mismatch rejected.
	c, _ := NewCounters(50, 3)
	if err := c.LoadWords(a.Words()); err == nil {
		t.Error("mismatched LoadWords accepted")
	}
}

func TestBitsetWordsRoundTrip(t *testing.T) {
	a, _ := NewBitset(130)
	a.Set(0)
	a.Set(64)
	a.Set(129)
	b, _ := NewBitset(130)
	if err := b.LoadWords(a.Words()); err != nil {
		t.Fatal(err)
	}
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Count() != 3 {
		t.Fatal("bitset words round-trip failed")
	}
	c, _ := NewBitset(10)
	if err := c.LoadWords(a.Words()); err == nil {
		t.Error("mismatched LoadWords accepted")
	}
}

func TestBitsetClearOutOfRange(t *testing.T) {
	b, _ := NewBitset(8)
	defer func() {
		if recover() == nil {
			t.Error("Clear(-1) did not panic")
		}
	}()
	b.Clear(-1)
}
