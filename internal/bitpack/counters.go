// Package bitpack provides the compact bit-level containers McCuckoo keeps in
// fast "on-chip" memory: a packed array of small counters (2 bits per bucket
// for d = 3, per the paper's Fig. 2) and a plain bitset used for the per-bucket
// stash flags.
package bitpack

import (
	"fmt"
	"math/bits"
)

// Counters is a fixed-length array of unsigned counters, each `width` bits
// wide, packed into uint64 words. It models the on-chip counter array: for a
// McCuckoo table with d hash functions, width = bits needed to store values
// 0..d (2 bits for d = 3), or one more state when tombstone deletion marks are
// enabled.
type Counters struct {
	width uint
	mask  uint64
	n     int
	words []uint64
	// perWord is how many counters fit in one 64-bit word. Counters never
	// straddle a word boundary, which keeps Get/Set branch-free.
	perWord int
	// log2PerWord replaces locate's div/mod with shift/mask when perWord
	// is a power of two (the 2-bit lookup counters: 32 per word). -1 for
	// widths whose perWord is not a power of two (e.g. the 5-bit kick
	// counters, 12 per word).
	log2PerWord int
}

// NewCounters allocates n counters of the given bit width (1..16).
func NewCounters(n int, width uint) (*Counters, error) {
	if n < 0 {
		return nil, fmt.Errorf("bitpack: negative length %d", n)
	}
	if width < 1 || width > 16 {
		return nil, fmt.Errorf("bitpack: counter width must be in [1,16] bits, got %d", width)
	}
	perWord := 64 / int(width)
	nWords := (n + perWord - 1) / perWord
	log2 := -1
	if perWord&(perWord-1) == 0 {
		log2 = bits.TrailingZeros(uint(perWord))
	}
	return &Counters{
		width:       width,
		mask:        1<<width - 1,
		n:           n,
		words:       make([]uint64, nWords),
		perWord:     perWord,
		log2PerWord: log2,
	}, nil
}

// Len returns the number of counters.
func (c *Counters) Len() int { return c.n }

// Width returns the bit width of each counter.
func (c *Counters) Width() uint { return c.width }

// Max returns the largest value a counter can hold.
func (c *Counters) Max() uint64 { return c.mask }

// Get returns counter i.
func (c *Counters) Get(i int) uint64 {
	word, shift := c.locate(i)
	return (c.words[word] >> shift) & c.mask
}

// Set stores v into counter i. v must fit in the counter width.
func (c *Counters) Set(i int, v uint64) {
	if v > c.mask {
		panic(fmt.Sprintf("bitpack: value %d exceeds %d-bit counter", v, c.width))
	}
	word, shift := c.locate(i)
	c.words[word] = c.words[word]&^(c.mask<<shift) | v<<shift
}

// Dec decrements counter i by one and returns the new value. Decrementing a
// zero counter panics: it would mean the table lost track of an item's copies,
// which is a bug, not a recoverable condition.
func (c *Counters) Dec(i int) uint64 {
	v := c.Get(i)
	if v == 0 {
		panic("bitpack: decrement of zero counter")
	}
	c.Set(i, v-1)
	return v - 1
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	for i := range c.words {
		c.words[i] = 0
	}
}

// SizeBytes returns the memory footprint of the packed array, i.e. the
// on-chip SRAM the counter array would occupy.
func (c *Counters) SizeBytes() int { return len(c.words) * 8 }

func (c *Counters) locate(i int) (word int, shift uint) {
	if uint(i) >= uint(c.n) {
		panic(fmt.Sprintf("bitpack: counter index %d out of range [0,%d)", i, c.n))
	}
	if c.log2PerWord >= 0 {
		return i >> uint(c.log2PerWord), uint(i&(c.perWord-1)) * c.width
	}
	return i / c.perWord, uint(i%c.perWord) * c.width
}

// Words exposes the packed backing array for serialization. The returned
// slice aliases the live data; callers must not retain it across mutations.
func (c *Counters) Words() []uint64 { return c.words }

// LoadWords replaces the backing array with words, which must have exactly
// the length Words() returns for this counter geometry.
func (c *Counters) LoadWords(words []uint64) error {
	if len(words) != len(c.words) {
		return fmt.Errorf("bitpack: word count %d does not match geometry (want %d)", len(words), len(c.words))
	}
	copy(c.words, words)
	return nil
}
