package bitpack

import "fmt"

// Bitset is a fixed-length bit array. McCuckoo uses one as the off-chip
// stash flags: one bit per main-table bucket, set when an item whose
// candidate set includes that bucket overflowed into the stash (§III.E).
type Bitset struct {
	n     int
	words []uint64
}

// NewBitset allocates n bits, all clear.
func NewBitset(n int) (*Bitset, error) {
	if n < 0 {
		return nil, fmt.Errorf("bitpack: negative bitset length %d", n)
	}
	return &Bitset{n: n, words: make([]uint64, (n+63)/64)}, nil
}

// Len returns the number of bits.
func (b *Bitset) Len() int { return b.n }

// Get reports whether bit i is set.
func (b *Bitset) Get(i int) bool {
	b.check(i)
	return b.words[i/64]>>(uint(i)%64)&1 == 1
}

// Set sets bit i.
func (b *Bitset) Set(i int) {
	b.check(i)
	b.words[i/64] |= 1 << (uint(i) % 64)
}

// Clear clears bit i.
func (b *Bitset) Clear(i int) {
	b.check(i)
	b.words[i/64] &^= 1 << (uint(i) % 64)
}

// Reset clears all bits. Used when the stash flags are refreshed after a
// series of deletions (§III.F).
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	total := 0
	for _, w := range b.words {
		for w != 0 {
			w &= w - 1
			total++
		}
	}
	return total
}

func (b *Bitset) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitpack: bit index %d out of range [0,%d)", i, b.n))
	}
}

// Words exposes the packed backing array for serialization. The returned
// slice aliases the live data; callers must not retain it across mutations.
func (b *Bitset) Words() []uint64 { return b.words }

// LoadWords replaces the backing array with words, which must have exactly
// the length Words() returns for this bitset length.
func (b *Bitset) LoadWords(words []uint64) error {
	if len(words) != len(b.words) {
		return fmt.Errorf("bitpack: word count %d does not match geometry (want %d)", len(words), len(b.words))
	}
	copy(b.words, words)
	return nil
}
