// Package perfgate is the performance-regression gate: a scale-graded,
// seeded benchmark suite over the public table kinds and the wire serve
// path, a versioned on-disk result schema (the BENCH_*.json files at the
// repo root), and a comparator that classifies each series against a stored
// baseline as improved, noise, or regressed within a per-scale noise band.
// ci.sh runs the suite at reduced scale on every verification pass and fails
// on a regression beyond the band; DESIGN.md §14 documents the baseline
// protocol (when to refresh, how the bands were set, what the machine block
// means).
package perfgate

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"
)

// SchemaVersion is the current BENCH file schema. Version 1 retroactively
// names the ad-hoc pre-gate shapes of BENCH_shard.json and BENCH_trace.json;
// version 2 is the first comparator-parseable schema.
const SchemaVersion = 2

// Report is one BENCH_*.json artifact: a set of measured series plus enough
// environment to judge whether a comparison across files is meaningful.
type Report struct {
	SchemaVersion int `json:"schema_version"`
	// Benchmark names the suite ("core", "wire", ...).
	Benchmark string `json:"benchmark"`
	// Recorded is the RFC 3339 date the baseline was captured.
	Recorded string `json:"recorded"`
	// Command reproduces the file.
	Command     string      `json:"command"`
	Environment Environment `json:"environment"`
	Series      []Series    `json:"series"`
	Notes       []string    `json:"notes,omitempty"`
}

// Environment is the machine block. BENCH_shard.json's 1-CPU caveat used to
// live in a free-text note; CPUs and GOMAXPROCS make it structural.
type Environment struct {
	Go         string `json:"go"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	CPU        string `json:"cpu,omitempty"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Series is one measured configuration. NsPerOp and AllocsPerOp are the
// best (minimum-time) rep's numbers: on shared CI machines the minimum over
// fixed-iteration reps estimates the uncontended cost far more stably than
// the mean (DESIGN.md §14).
type Series struct {
	Name string `json:"name"`
	// Scale is the resident key count, which selects the comparator's
	// noise band.
	Scale int `json:"scale"`
	// Ops is the iteration count of each rep; Reps how many reps ran.
	Ops  int64 `json:"ops"`
	Reps int   `json:"reps"`
	// NsPerOp is wall time per operation of the best rep.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation of the best rep. A
	// baseline of 0 is a hard promise: the comparator fails any run where
	// a zero-alloc series starts allocating, noise band or not.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// CurrentEnvironment captures the running machine's environment block.
func CurrentEnvironment() Environment {
	return Environment{
		Go:         runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		CPU:        cpuModel(),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// cpuModel best-effort reads the CPU model name (linux only; empty
// elsewhere — the field is omitempty for that reason).
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), ":"))
		}
	}
	return ""
}

// Find returns the named series.
func (r *Report) Find(name string) (Series, bool) {
	for _, s := range r.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// Sort orders the series by name, so recorded files diff cleanly.
func (r *Report) Sort() {
	sort.Slice(r.Series, func(i, j int) bool { return r.Series[i].Name < r.Series[j].Name })
}

// NewReport stamps a report skeleton for the named suite.
func NewReport(benchmark, command string) *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Benchmark:     benchmark,
		Recorded:      time.Now().UTC().Format("2006-01-02"),
		Command:       command,
		Environment:   CurrentEnvironment(),
	}
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	r.Sort()
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LegacyError marks a BENCH file that predates the versioned schema (no
// schema_version field). Load still returns the envelope fields it could
// recover; callers surface the error as a warning and skip comparison.
type LegacyError struct {
	Path string
}

func (e *LegacyError) Error() string {
	return fmt.Sprintf("perfgate: %s has no schema_version (legacy pre-gate BENCH file); re-record it with cmd/mcperf to make it comparator-parseable", e.Path)
}

// Load reads a BENCH report. A legacy file (one written before the schema
// existed) yields a best-effort Report with SchemaVersion 1 and a
// *LegacyError the caller should treat as a warning, not a failure.
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		SchemaVersion int    `json:"schema_version"`
		Benchmark     string `json:"benchmark"`
		Recorded      string `json:"recorded"`
		Command       string `json:"command"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return nil, fmt.Errorf("perfgate: %s: %w", path, err)
	}
	if probe.SchemaVersion == 0 {
		return &Report{
			SchemaVersion: 1,
			Benchmark:     probe.Benchmark,
			Recorded:      probe.Recorded,
			Command:       probe.Command,
		}, &LegacyError{Path: path}
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("perfgate: %s: %w", path, err)
	}
	return &r, nil
}
