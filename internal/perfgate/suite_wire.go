package perfgate

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"mccuckoo"
	"mccuckoo/internal/wire"
)

// wireScale is the resident key count of the wire series; it selects the
// 1k noise band.
const wireScale = 1000

// WireSuite measures the serving layer twice over a seeded sharded store:
// the in-process serve path (wire.ServeProbe — decode-to-response execution
// with the connection worker's buffer cycle, where the zero-copy framing
// must show 0 allocs/op) and full loopback-TCP round trips through the
// pooled client.
func WireSuite(o SuiteOptions) (*Report, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	r := NewReport("wire", "go run ./cmd/mcperf record -suite wire")

	store, err := mccuckoo.NewSharded(4*wireScale, 4, mccuckoo.WithSeed(o.Seed))
	if err != nil {
		return nil, err
	}
	keys := keysFor(o.Seed, wireScale)
	if err := seedStore(store, keys); err != nil {
		return nil, err
	}

	if err := wireServeSeries(r, o, store, keys); err != nil {
		return nil, err
	}
	if err := wireRTTSeries(r, o, store, keys); err != nil {
		return nil, err
	}
	return r, nil
}

func u64le(vs ...uint64) []byte {
	b := make([]byte, 0, 8*len(vs))
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	return b
}

// wireServeSeries drives the in-process serve path: GET hits over rotating
// keys, update PUTs, missing-key DELs, and a 16-key batched GET.
func wireServeSeries(r *Report, o SuiteOptions, store mccuckoo.BatchStore, keys []uint64) error {
	probe, err := wire.NewServeProbe(store)
	if err != nil {
		return err
	}

	const rot = 16
	getF := make([]wire.Frame, rot)
	for i := range getF {
		getF[i] = wire.Frame{Type: wire.OpGet, ID: uint64(i), Payload: u64le(keys[i])}
	}
	putF := wire.Frame{Type: wire.OpPut, ID: 1, Payload: u64le(keys[7], 42)}
	delF := wire.Frame{Type: wire.OpDel, ID: 2, Payload: u64le(keys[9] | 1<<63)}

	batch := append([]byte{wire.OpGet}, binary.LittleEndian.AppendUint32(nil, rot)...)
	batch = append(batch, u64le(keys[:rot]...)...)
	batchF := wire.Frame{Type: wire.OpBatch, ID: 3, Payload: batch}

	r.addSeries("wire/serve/get", wireScale, o, func(n int) {
		for i := 0; i < n; i++ {
			sink += uint64(probe.Handle(getF[i&(rot-1)]))
		}
	})
	r.addSeries("wire/serve/put_update", wireScale, o, func(n int) {
		for i := 0; i < n; i++ {
			sink += uint64(probe.Handle(putF))
		}
	})
	r.addSeries("wire/serve/del_miss", wireScale, o, func(n int) {
		for i := 0; i < n; i++ {
			sink += uint64(probe.Handle(delF))
		}
	})
	r.addSeries(fmt.Sprintf("wire/serve/batch_get/n=%d", rot), wireScale, o, func(n int) {
		for i := 0; i < n; i++ {
			sink += uint64(probe.Handle(batchF))
		}
	})
	return nil
}

// wireRTTSeries measures full round trips over loopback TCP: a live server,
// the pooled client, one GET (and one 64-key batched GET) per op. These run
// WireOps iterations — round trips cost microseconds, not nanoseconds.
func wireRTTSeries(r *Report, o SuiteOptions, store mccuckoo.BatchStore, keys []uint64) error {
	srv, err := wire.NewServer(wire.Config{Store: store})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	cli, err := wire.Dial(wire.ClientConfig{Addr: ln.Addr().String(), Conns: 1})
	if err != nil {
		return err
	}
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		return fmt.Errorf("perfgate: wire rtt ping: %w", err)
	}

	ow := o
	ow.Ops = o.WireOps
	var rttErr error
	ow2 := ow
	r.addSeries("wire/rtt/get", wireScale, ow, func(n int) {
		for i := 0; i < n; i++ {
			v, _, err := cli.Get(keys[i%wireScale])
			if err != nil && rttErr == nil {
				rttErr = err
			}
			sink += v
		}
	})
	const bn = 64
	bkeys := keys[:bn]
	r.addSeries(fmt.Sprintf("wire/rtt/batch_get/n=%d", bn), wireScale, ow2, func(n int) {
		for i := 0; i < n; i++ {
			vs, _, err := cli.GetBatch(bkeys)
			if err != nil && rttErr == nil {
				rttErr = err
			}
			if len(vs) == bn {
				sink += vs[0]
			}
		}
	})
	return rttErr
}
