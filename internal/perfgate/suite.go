package perfgate

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"mccuckoo"
	"mccuckoo/internal/hashutil"
)

// SuiteOptions parameterizes one suite run. The zero value is invalid; use
// DefaultSuiteOptions (baseline recording) or QuickSuiteOptions (the reduced
// scale ci.sh gates at).
type SuiteOptions struct {
	// Scales are the resident key counts swept (default 10/100/1k/10k).
	Scales []int
	// Ops is the iteration count of one rep. Fixed — never time-targeted —
	// so every rep and every run does identical work and minima are
	// comparable across runs.
	Ops int
	// Reps is how many reps each series runs; the best (minimum time) rep
	// is recorded.
	Reps int
	// WireOps is the per-rep iteration count of the loopback round-trip
	// series, which cost microseconds per op rather than nanoseconds.
	WireOps int
	// Seed derives every key set and table seed.
	Seed uint64
}

// DefaultSuiteOptions is the baseline-recording configuration.
func DefaultSuiteOptions() SuiteOptions {
	return SuiteOptions{
		Scales:  []int{10, 100, 1000, 10000},
		Ops:     200_000,
		Reps:    10,
		WireOps: 2_000,
		Seed:    1,
	}
}

// QuickSuiteOptions is the reduced-scale configuration ci.sh gates at: same
// scales and seed (the per-op work is identical, so minima stay comparable
// to a DefaultSuiteOptions baseline), fewer iterations and reps.
func QuickSuiteOptions() SuiteOptions {
	return SuiteOptions{
		Scales:  []int{10, 100, 1000, 10000},
		Ops:     50_000,
		Reps:    5,
		WireOps: 500,
		Seed:    1,
	}
}

func (o *SuiteOptions) normalize() error {
	if len(o.Scales) == 0 {
		o.Scales = []int{10, 100, 1000, 10000}
	}
	if o.Ops <= 0 || o.Reps <= 0 {
		return fmt.Errorf("perfgate: Ops and Reps must be positive")
	}
	if o.WireOps <= 0 {
		o.WireOps = o.Ops / 100
		if o.WireOps < 100 {
			o.WireOps = 100
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	for _, s := range o.Scales {
		if s < 1 {
			return fmt.Errorf("perfgate: scale %d out of range", s)
		}
	}
	return nil
}

// Suites maps suite names to runners; cmd/mcperf and the ci.sh gate select
// by name.
var Suites = map[string]func(SuiteOptions) (*Report, error){
	"core": CoreSuite,
	"wire": WireSuite,
}

// sink defeats dead-code elimination of measured loops.
var sink uint64

// measure times fn(Ops) Reps times and returns the best rep's ns/op and
// allocs/op. fn is called once with a small n first to warm caches and grow
// scratch, so first-use allocations are not charged to rep 1. Allocations
// are the runtime's Mallocs delta around the rep; sub-1% residue (GC
// bookkeeping on other goroutines) is rounded away so a genuinely
// allocation-free loop records exactly 0.
func measure(o SuiteOptions, fn func(n int)) (nsPerOp, allocsPerOp float64) {
	warm := o.Ops / 10
	if warm < 64 {
		warm = 64
	}
	fn(warm)
	best := math.MaxFloat64
	var ms0, ms1 runtime.MemStats
	for r := 0; r < o.Reps; r++ {
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		fn(o.Ops)
		dur := time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&ms1)
		ns := float64(dur) / float64(o.Ops)
		if ns < best {
			best = ns
			allocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(o.Ops)
		}
	}
	allocsPerOp = math.Round(allocsPerOp*1000) / 1000
	return best, allocsPerOp
}

// keysFor derives the deterministic key set of one (suite, scale) pair.
// Keys are nonzero and distinct; the high bit is kept clear so `k | 1<<63`
// is always an absent key for miss series.
func keysFor(seed uint64, scale int) []uint64 {
	keys := make([]uint64, scale)
	for i := range keys {
		k := hashutil.Mix64(seed + uint64(i)*0x9e3779b97f4a7c15)
		k &^= 1 << 63
		if k == 0 {
			k = 1
		}
		keys[i] = k
	}
	return keys
}

// capacityFor sizes a table so the resident set sits near 50% load — the
// regime the lookup principles are designed around.
func capacityFor(scale int) int {
	c := 2 * scale
	if c < 64 {
		c = 64
	}
	return c
}

// seedStore inserts every key (value = key) and fails loudly on a full
// table, which would invalidate the series.
func seedStore(st mccuckoo.Store, keys []uint64) error {
	for _, k := range keys {
		if r := st.Insert(k, k); r.Status == mccuckoo.Failed {
			return fmt.Errorf("perfgate: seeding insert failed at %d/%d keys", st.Len(), len(keys))
		}
	}
	return nil
}

// lookupHitLoop cycles lookups over the resident keys.
func lookupHitLoop(st mccuckoo.Store, keys []uint64) func(int) {
	j := 0
	return func(n int) {
		for i := 0; i < n; i++ {
			v, _ := st.Lookup(keys[j])
			sink += v
			j++
			if j == len(keys) {
				j = 0
			}
		}
	}
}

// lookupMissLoop cycles lookups over keys guaranteed absent.
func lookupMissLoop(st mccuckoo.Store, keys []uint64) func(int) {
	j := 0
	return func(n int) {
		for i := 0; i < n; i++ {
			v, _ := st.Lookup(keys[j] | 1<<63)
			sink += v
			j++
			if j == len(keys) {
				j = 0
			}
		}
	}
}

// mixLoop is the fixed op mix: per 8 ops, one delete, one (re)insert, five
// hit lookups, one miss lookup. The delete/insert pair rotates through the
// key set so the population stays near the seeded load while every op kind
// stays on the measured path. Deterministic: no RNG draws at run time.
func mixLoop(st mccuckoo.Store, keys []uint64) func(int) {
	j := 0
	return func(n int) {
		for i := 0; i < n; i++ {
			k := keys[j]
			switch i & 7 {
			case 0:
				st.Delete(k)
			case 1:
				st.Insert(k, k)
			case 7:
				v, _ := st.Lookup(k | 1<<63)
				sink += v
			default:
				v, _ := st.Lookup(k)
				sink += v
			}
			j++
			if j == len(keys) {
				j = 0
			}
		}
	}
}

// CoreSuite measures the four public table kinds: single-thread lookup-hit,
// lookup-miss (Table only — the paper's headline metric), and the fixed op
// mix, at every scale.
func CoreSuite(o SuiteOptions) (*Report, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	r := NewReport("core", "go run ./cmd/mcperf record -suite core")
	kinds := []struct {
		name  string
		build func(capacity int) (mccuckoo.Store, error)
	}{
		{"table", func(c int) (mccuckoo.Store, error) {
			return mccuckoo.New(c, mccuckoo.WithSeed(o.Seed))
		}},
		{"blocked", func(c int) (mccuckoo.Store, error) {
			return mccuckoo.NewBlocked(c, mccuckoo.WithSeed(o.Seed))
		}},
		{"concurrent", func(c int) (mccuckoo.Store, error) {
			t, err := mccuckoo.New(c, mccuckoo.WithSeed(o.Seed))
			if err != nil {
				return nil, err
			}
			return mccuckoo.NewConcurrent(t), nil
		}},
		{"sharded", func(c int) (mccuckoo.Store, error) {
			return mccuckoo.NewSharded(c, 4, mccuckoo.WithSeed(o.Seed))
		}},
	}
	for _, kind := range kinds {
		for _, scale := range o.Scales {
			keys := keysFor(o.Seed, scale)
			st, err := kind.build(capacityFor(scale))
			if err != nil {
				return nil, fmt.Errorf("perfgate: build %s at scale %d: %w", kind.name, scale, err)
			}
			if err := seedStore(st, keys); err != nil {
				return nil, err
			}
			r.addSeries(fmt.Sprintf("%s/lookup_hit/n=%d", kind.name, scale), scale, o, lookupHitLoop(st, keys))
			if kind.name == "table" {
				r.addSeries(fmt.Sprintf("%s/lookup_miss/n=%d", kind.name, scale), scale, o, lookupMissLoop(st, keys))
			}
			r.addSeries(fmt.Sprintf("%s/mix/n=%d", kind.name, scale), scale, o, mixLoop(st, keys))
		}
	}
	return r, nil
}

// addSeries measures one loop and appends the series.
func (r *Report) addSeries(name string, scale int, o SuiteOptions, fn func(int)) {
	ns, allocs := measure(o, fn)
	r.Series = append(r.Series, Series{
		Name:        name,
		Scale:       scale,
		Ops:         int64(o.Ops),
		Reps:        o.Reps,
		NsPerOp:     ns,
		AllocsPerOp: allocs,
	})
}
