package perfgate

import "fmt"

// Verdict classifies one series of a current run against its baseline.
type Verdict int

const (
	// VerdictNoise: the delta is within the scale's noise band.
	VerdictNoise Verdict = iota
	// VerdictImproved: faster than the baseline by more than the band.
	VerdictImproved
	// VerdictRegressed: slower than the baseline by more than the band, or
	// a zero-alloc baseline series started allocating. Fails the gate.
	VerdictRegressed
	// VerdictMissing: the baseline series is absent from the current run
	// (a renamed or dropped benchmark). Fails the gate — baselines must be
	// refreshed deliberately (REFRESH_BASELINE=1), not by omission.
	VerdictMissing
	// VerdictNew: the current run has a series the baseline lacks.
	// Informational; recording the next baseline adopts it.
	VerdictNew
)

// String returns the gate log's verdict tag.
func (v Verdict) String() string {
	switch v {
	case VerdictNoise:
		return "noise"
	case VerdictImproved:
		return "improved"
	case VerdictRegressed:
		return "REGRESSED"
	case VerdictMissing:
		return "MISSING"
	case VerdictNew:
		return "new"
	default:
		return "unknown"
	}
}

// SeriesVerdict is the comparator's judgement of one series.
type SeriesVerdict struct {
	Name    string
	Verdict Verdict
	// Baseline and Current are ns/op (0 for missing/new series).
	Baseline float64
	Current  float64
	// Delta is the relative change: (current-baseline)/baseline. Positive
	// is slower.
	Delta float64
	// Band is the noise band applied, as a fraction.
	Band float64
	// AllocBreak is set when a zero-alloc baseline series allocated.
	AllocBreak bool
}

// Line renders the one-line-per-series gate summary.
func (sv SeriesVerdict) Line() string {
	switch sv.Verdict {
	case VerdictMissing:
		return fmt.Sprintf("%-9s %s (baseline %.1f ns/op; series absent from this run)", sv.Verdict, sv.Name, sv.Baseline)
	case VerdictNew:
		return fmt.Sprintf("%-9s %s (%.1f ns/op; not in baseline)", sv.Verdict, sv.Name, sv.Current)
	}
	line := fmt.Sprintf("%-9s %s %.1f -> %.1f ns/op (%+.1f%%, band ±%.0f%%)",
		sv.Verdict, sv.Name, sv.Baseline, sv.Current, sv.Delta*100, sv.Band*100)
	if sv.AllocBreak {
		line += " [zero-alloc series now allocates]"
	}
	return line
}

// NoiseBand returns the relative band within which a delta is classified as
// noise, per scale. Small working sets run entirely in cache and finish a
// rep in microseconds, so scheduler jitter on a shared CI machine is a
// larger fraction of their time; the bands widen accordingly. The values
// were set from observed best-of-reps spread on the 1-CPU container the
// baselines were recorded on (DESIGN.md §14).
func NoiseBand(scale int) float64 {
	switch {
	case scale <= 10:
		return 0.40
	case scale <= 100:
		return 0.35
	case scale <= 1000:
		return 0.30
	default:
		return 0.25
	}
}

// VersionError reports a schema mismatch between baseline and current run;
// comparison is refused rather than guessed at.
type VersionError struct {
	BaselineVersion, CurrentVersion int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("perfgate: schema version mismatch: baseline v%d vs current v%d; re-record the baseline (REFRESH_BASELINE=1 ./ci.sh)",
		e.BaselineVersion, e.CurrentVersion)
}

// Compare judges every baseline series against the current run, then lists
// series new in the current run. It returns a *VersionError when the schema
// versions differ.
func Compare(baseline, current *Report) ([]SeriesVerdict, error) {
	if baseline.SchemaVersion != current.SchemaVersion {
		return nil, &VersionError{baseline.SchemaVersion, current.SchemaVersion}
	}
	verdicts := make([]SeriesVerdict, 0, len(baseline.Series)+4)
	for _, b := range baseline.Series {
		c, ok := current.Find(b.Name)
		if !ok {
			verdicts = append(verdicts, SeriesVerdict{Name: b.Name, Verdict: VerdictMissing, Baseline: b.NsPerOp})
			continue
		}
		band := NoiseBand(b.Scale)
		sv := SeriesVerdict{
			Name:     b.Name,
			Baseline: b.NsPerOp,
			Current:  c.NsPerOp,
			Band:     band,
		}
		if b.NsPerOp > 0 {
			sv.Delta = (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		switch {
		case sv.Delta > band:
			sv.Verdict = VerdictRegressed
		case sv.Delta < -band:
			sv.Verdict = VerdictImproved
		default:
			sv.Verdict = VerdictNoise
		}
		// Allocation regressions are deterministic, so no band applies: a
		// series recorded allocation-free must stay allocation-free.
		if b.AllocsPerOp == 0 && c.AllocsPerOp >= 1 {
			sv.Verdict = VerdictRegressed
			sv.AllocBreak = true
		}
		verdicts = append(verdicts, sv)
	}
	for _, c := range current.Series {
		if _, ok := baseline.Find(c.Name); !ok {
			verdicts = append(verdicts, SeriesVerdict{Name: c.Name, Verdict: VerdictNew, Current: c.NsPerOp})
		}
	}
	return verdicts, nil
}

// Failing returns the verdicts that fail the gate (regressions and missing
// series).
func Failing(verdicts []SeriesVerdict) []SeriesVerdict {
	var bad []SeriesVerdict
	for _, sv := range verdicts {
		if sv.Verdict == VerdictRegressed || sv.Verdict == VerdictMissing {
			bad = append(bad, sv)
		}
	}
	return bad
}
