package perfgate

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fixtureReport builds a synthetic baseline with one series per scale.
func fixtureReport(series ...Series) *Report {
	r := NewReport("fixture", "test")
	r.Series = append(r.Series, series...)
	return r
}

func series(name string, scale int, ns, allocs float64) Series {
	return Series{Name: name, Scale: scale, Ops: 1000, Reps: 3, NsPerOp: ns, AllocsPerOp: allocs}
}

func verdictOf(t *testing.T, vs []SeriesVerdict, name string) SeriesVerdict {
	t.Helper()
	for _, sv := range vs {
		if sv.Name == name {
			return sv
		}
	}
	t.Fatalf("no verdict for series %q", name)
	return SeriesVerdict{}
}

// TestCompareVerdicts exercises every classification on synthetic fixtures:
// within-noise, improved, regressed (the injected >X% regression the ci.sh
// gate must catch), missing series, and new series.
func TestCompareVerdicts(t *testing.T) {
	base := fixtureReport(
		series("t/noise/n=1000", 1000, 100, 0),
		series("t/improved/n=1000", 1000, 100, 0),
		series("t/regressed/n=1000", 1000, 100, 0),
		series("t/missing/n=1000", 1000, 100, 0),
	)
	band := NoiseBand(1000)
	cur := fixtureReport(
		// Inside the band: classified as noise even though slower.
		series("t/noise/n=1000", 1000, 100*(1+band*0.9), 0),
		// Beyond the band downward: improved.
		series("t/improved/n=1000", 1000, 100*(1-band*1.5), 0),
		// The injected regression: slower than baseline by more than the
		// per-scale noise band. This is the case the gate exists for.
		series("t/regressed/n=1000", 1000, 100*(1+band*2), 0),
		// t/missing absent; t/new present only here.
		series("t/new/n=1000", 1000, 50, 0),
	)

	vs, err := Compare(base, cur)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if got := verdictOf(t, vs, "t/noise/n=1000").Verdict; got != VerdictNoise {
		t.Errorf("noise series classified %v", got)
	}
	if got := verdictOf(t, vs, "t/improved/n=1000").Verdict; got != VerdictImproved {
		t.Errorf("improved series classified %v", got)
	}
	sv := verdictOf(t, vs, "t/regressed/n=1000")
	if sv.Verdict != VerdictRegressed {
		t.Errorf("injected regression classified %v, want REGRESSED", sv.Verdict)
	}
	if sv.Delta <= band {
		t.Errorf("regression delta %.2f not beyond band %.2f", sv.Delta, band)
	}
	if got := verdictOf(t, vs, "t/missing/n=1000").Verdict; got != VerdictMissing {
		t.Errorf("missing series classified %v", got)
	}
	if got := verdictOf(t, vs, "t/new/n=1000").Verdict; got != VerdictNew {
		t.Errorf("new series classified %v", got)
	}

	// The gate fails exactly on the regression and the missing series.
	bad := Failing(vs)
	if len(bad) != 2 {
		t.Fatalf("Failing returned %d verdicts, want 2 (regressed + missing): %+v", len(bad), bad)
	}
}

// TestCompareZeroAllocPromise: a series recorded allocation-free fails the
// gate when it starts allocating, regardless of timing noise bands — that
// is how the zero-copy serve path stays zero-copy.
func TestCompareZeroAllocPromise(t *testing.T) {
	base := fixtureReport(series("wire/serve/get", 1000, 200, 0))
	cur := fixtureReport(series("wire/serve/get", 1000, 200, 2)) // same speed, now allocates

	vs, err := Compare(base, cur)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	sv := verdictOf(t, vs, "wire/serve/get")
	if sv.Verdict != VerdictRegressed || !sv.AllocBreak {
		t.Fatalf("alloc break classified %v (AllocBreak=%v), want REGRESSED with AllocBreak", sv.Verdict, sv.AllocBreak)
	}
	if len(Failing(vs)) != 1 {
		t.Fatalf("alloc break did not fail the gate")
	}
}

// TestCompareSchemaVersionMismatch: comparing across schema versions is
// refused with a typed error rather than producing nonsense verdicts.
func TestCompareSchemaVersionMismatch(t *testing.T) {
	base := fixtureReport(series("a", 10, 100, 0))
	base.SchemaVersion = 1
	cur := fixtureReport(series("a", 10, 100, 0))

	_, err := Compare(base, cur)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("Compare returned %v, want *VersionError", err)
	}
	if ve.BaselineVersion != 1 || ve.CurrentVersion != SchemaVersion {
		t.Fatalf("VersionError carries %d/%d, want 1/%d", ve.BaselineVersion, ve.CurrentVersion, SchemaVersion)
	}
}

// TestNoiseBandMonotonic: smaller scales never get a tighter band than
// larger ones (small reps are noisier, not less noisy).
func TestNoiseBandMonotonic(t *testing.T) {
	scales := []int{1, 10, 100, 1000, 10000, 1 << 20}
	for i := 1; i < len(scales); i++ {
		if NoiseBand(scales[i]) > NoiseBand(scales[i-1]) {
			t.Errorf("NoiseBand(%d)=%.2f exceeds NoiseBand(%d)=%.2f",
				scales[i], NoiseBand(scales[i]), scales[i-1], NoiseBand(scales[i-1]))
		}
	}
}

// TestReportRoundTripAndLegacyLoad covers the loader: a v2 report survives
// a write/load round trip, and a legacy (pre-schema) BENCH file loads with
// a *LegacyError warning instead of failing outright.
func TestReportRoundTripAndLegacyLoad(t *testing.T) {
	dir := t.TempDir()

	r := fixtureReport(series("b", 100, 123.4, 1.5), series("a", 10, 45.6, 0))
	path := filepath.Join(dir, "bench.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.SchemaVersion != SchemaVersion || len(got.Series) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// WriteFile sorts by name so committed baselines diff cleanly.
	if got.Series[0].Name != "a" || got.Series[1].Name != "b" {
		t.Fatalf("series not sorted: %+v", got.Series)
	}
	if got.Environment.CPUs < 1 || got.Environment.GOMAXPROCS < 1 {
		t.Fatalf("environment block not captured: %+v", got.Environment)
	}

	legacyPath := filepath.Join(dir, "legacy.json")
	legacy := `{"benchmark": "old-style", "recorded": "2026-08-05", "command": "go run ...", "results": {"x": 1}}`
	if err := os.WriteFile(legacyPath, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	lr, err := Load(legacyPath)
	var le *LegacyError
	if !errors.As(err, &le) {
		t.Fatalf("legacy load returned %v, want *LegacyError", err)
	}
	if lr == nil || lr.SchemaVersion != 1 || lr.Benchmark != "old-style" {
		t.Fatalf("legacy envelope not recovered: %+v", lr)
	}
}

// TestSuitesSmoke runs both suites at a tiny scale: series are produced,
// deterministic in set, and the wire serve series honor the zero-alloc
// promise the baseline records.
func TestSuitesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke is seconds-long; skipped in -short")
	}
	o := SuiteOptions{Scales: []int{10, 100}, Ops: 2000, Reps: 2, WireOps: 50, Seed: 1}

	core, err := CoreSuite(o)
	if err != nil {
		t.Fatalf("CoreSuite: %v", err)
	}
	if len(core.Series) != 2*4*2+2 {
		t.Fatalf("core suite produced %d series", len(core.Series))
	}
	for _, s := range core.Series {
		if s.NsPerOp <= 0 {
			t.Errorf("series %s has non-positive ns/op %f", s.Name, s.NsPerOp)
		}
	}

	wire, err := WireSuite(o)
	if err != nil {
		t.Fatalf("WireSuite: %v", err)
	}
	for _, name := range []string{"wire/serve/get", "wire/serve/put_update", "wire/serve/del_miss"} {
		s, ok := wire.Find(name)
		if !ok {
			t.Fatalf("wire suite missing series %s", name)
		}
		if s.AllocsPerOp != 0 {
			t.Errorf("%s allocates %.3f/op; the zero-copy serve path must be allocation-free", name, s.AllocsPerOp)
		}
	}

	// A suite compared against itself is never failing: verdicts are all
	// noise/improved (identical numbers → delta 0).
	vs, err := Compare(core, core)
	if err != nil {
		t.Fatalf("self-compare: %v", err)
	}
	if bad := Failing(vs); len(bad) != 0 {
		t.Fatalf("self-compare failed the gate: %+v", bad)
	}
}
