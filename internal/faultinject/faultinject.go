// Package faultinject deterministically corrupts McCuckoo tables and their
// snapshots for fault-tolerance testing. Every injector is seeded, so a
// failing test reproduces bit-for-bit from its seed.
//
// The injector models the two failure domains of the design's memory split:
//
//   - On-chip (SRAM) faults hit the derived state — copy counters and stash
//     pre-screen flags. These must be fully healable by Repair, which
//     rebuilds that state from the off-chip arrays.
//   - Off-chip and at-rest faults hit the authoritative state — bucket keys
//     in memory, snapshot bytes on disk. An alien key is survivable through
//     the redundant copies; snapshot corruption must be *detected* at load
//     (the checksums' job), never silently absorbed.
//
// The fault-matrix tests assert exactly that contract: every injected fault
// is either detected at Load or healed by Repair.
package faultinject

// Port is the raw-mutation surface a corruptible table exposes; both
// core.Table and core.BlockedTable implement it (see core's faultport.go for
// the index spaces).
type Port interface {
	FaultNumCounters() int
	FaultCounter(i int) uint64
	FaultSetCounter(i int, v uint64)
	FaultCounterMax() uint64
	FaultNumFlags() int
	FaultFlag(i int) bool
	FaultSetFlag(i int, set bool)
	FaultNumCells() int
	FaultCellKey(i int) uint64
	FaultSetCellKey(i int, key uint64)
	FaultCellValue(i int) uint64
	FaultSetCellValue(i int, v uint64)
	FaultCellIsCandidate(key uint64, cell int) bool
	FaultTombstoneValue() uint64
	FaultArity() int
}

// Fault records one injected fault, for test failure messages.
type Fault struct {
	Kind          string // which primitive fired
	Index         int    // counter/flag/cell index, or byte offset
	Before, After uint64 // value before and after (flags: 0/1)
	OK            bool   // false when no eligible target existed
}

// Injector is a deterministic fault source. Not safe for concurrent use.
type Injector struct {
	state uint64
}

// New returns an injector whose whole fault sequence is a pure function of
// seed.
func New(seed uint64) *Injector {
	return &Injector{state: seed ^ 0x9e3779b97f4a7c15}
}

// next advances the splitmix64 stream.
func (in *Injector) next() uint64 {
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (in *Injector) intn(n int) int {
	return int(in.next() % uint64(n))
}

// FlipCounterBit flips one random bit inside one random counter field,
// modelling a single-event upset in the SRAM counter array.
func (in *Injector) FlipCounterBit(p Port) Fault {
	i := in.intn(p.FaultNumCounters())
	width := 0
	for m := p.FaultCounterMax(); m != 0; m >>= 1 {
		width++
	}
	before := p.FaultCounter(i)
	after := before ^ (1 << uint(in.intn(width)))
	p.FaultSetCounter(i, after)
	return Fault{Kind: "counter-bit-flip", Index: i, Before: before, After: after, OK: true}
}

// ZeroCounter clears a random non-free counter (a lost on-chip record).
// Returns OK=false when every counter is already free.
func (in *Injector) ZeroCounter(p Port) Fault {
	i, ok := in.pickCounter(p, func(v uint64) bool { return !in.isFree(p, v) })
	if !ok {
		return Fault{Kind: "counter-zero"}
	}
	before := p.FaultCounter(i)
	p.FaultSetCounter(i, 0)
	return Fault{Kind: "counter-zero", Index: i, Before: before, OK: true}
}

// CorruptCounter overwrites a random counter with a random value (possibly
// above d — an impossible state Repair must clear).
func (in *Injector) CorruptCounter(p Port) Fault {
	i := in.intn(p.FaultNumCounters())
	before := p.FaultCounter(i)
	after := in.next() & p.FaultCounterMax()
	p.FaultSetCounter(i, after)
	return Fault{Kind: "counter-corrupt", Index: i, Before: before, After: after, OK: true}
}

// TombstoneCounter stamps a random counter with the tombstone value,
// modelling a spurious deletion mark. OK=false when the table has no
// tombstone mode.
func (in *Injector) TombstoneCounter(p Port) Fault {
	tomb := p.FaultTombstoneValue()
	if tomb == 0 {
		return Fault{Kind: "counter-tombstone"}
	}
	i := in.intn(p.FaultNumCounters())
	before := p.FaultCounter(i)
	p.FaultSetCounter(i, tomb)
	return Fault{Kind: "counter-tombstone", Index: i, Before: before, After: tomb, OK: true}
}

// ClearStashFlag clears a random set pre-screen flag (lookups would miss the
// stash). OK=false when no flag is set.
func (in *Injector) ClearStashFlag(p Port) Fault {
	i, ok := in.pickFlag(p, true)
	if !ok {
		return Fault{Kind: "flag-clear"}
	}
	p.FaultSetFlag(i, false)
	return Fault{Kind: "flag-clear", Index: i, Before: 1, After: 0, OK: true}
}

// SetStashFlag sets a random clear pre-screen flag (lookups would probe the
// stash for nothing). OK=false when every flag is already set.
func (in *Injector) SetStashFlag(p Port) Fault {
	i, ok := in.pickFlag(p, false)
	if !ok {
		return Fault{Kind: "flag-set"}
	}
	p.FaultSetFlag(i, true)
	return Fault{Kind: "flag-set", Index: i, Before: 0, After: 1, OK: true}
}

// AlienKey overwrites the stored key of one redundant copy with a key that
// does not hash to that cell — off-chip corruption that Repair must detect
// as an alien and survive through the sibling copies. Only cells whose key
// has at least two live stored copies are eligible, so no data is truly
// lost. OK=false when no key has redundant copies.
func (in *Injector) AlienKey(p Port) Fault {
	eligible := in.multiCopyCells(p, 2)
	if len(eligible) == 0 {
		return Fault{Kind: "alien-key"}
	}
	i := eligible[in.intn(len(eligible))]
	before := p.FaultCellKey(i)
	var alien uint64
	for {
		alien = in.next() | 1
		if !p.FaultCellIsCandidate(alien, i) {
			break
		}
	}
	p.FaultSetCellKey(i, alien)
	return Fault{Kind: "alien-key", Index: i, Before: before, After: alien, OK: true}
}

// DivergeValue corrupts the stored value of one redundant copy, leaving the
// key intact — the copies of that key now disagree, and Repair's majority
// vote must restore the original value. Only keys with at least three live
// copies are eligible, so the corrupted copy is always outvoted. OK=false
// when no key has that much redundancy.
func (in *Injector) DivergeValue(p Port) Fault {
	eligible := in.multiCopyCells(p, 3)
	if len(eligible) == 0 {
		return Fault{Kind: "value-diverge"}
	}
	i := eligible[in.intn(len(eligible))]
	before := p.FaultCellValue(i)
	after := before ^ (in.next() | 1)
	p.FaultSetCellValue(i, after)
	return Fault{Kind: "value-diverge", Index: i, Before: before, After: after, OK: true}
}

// multiCopyCells lists every cell holding a live copy of a key that has at
// least min live stored copies — the cells whose corruption the redundancy
// can absorb.
func (in *Injector) multiCopyCells(p Port, min int) []int {
	cells := p.FaultNumCells()
	copies := make(map[uint64]int, cells)
	for i := 0; i < cells; i++ {
		if k := p.FaultCellKey(i); k != 0 && in.isLive(p, i) && p.FaultCellIsCandidate(k, i) {
			copies[k]++
		}
	}
	var eligible []int
	for i := 0; i < cells; i++ {
		k := p.FaultCellKey(i)
		if k != 0 && in.isLive(p, i) && p.FaultCellIsCandidate(k, i) && copies[k] >= min {
			eligible = append(eligible, i)
		}
	}
	return eligible
}

// FlipSnapshotBit flips one random bit of a serialized snapshot and returns
// the fault (Index is the byte offset). The checksums must catch it at Load.
func (in *Injector) FlipSnapshotBit(buf []byte) Fault {
	off := in.intn(len(buf))
	bit := uint(in.intn(8))
	before := uint64(buf[off])
	buf[off] ^= 1 << bit
	return Fault{Kind: "snapshot-bit-flip", Index: off, Before: before, After: uint64(buf[off]), OK: true}
}

// Truncate returns a random proper prefix of a serialized snapshot. Load
// must reject it as truncated.
func (in *Injector) Truncate(buf []byte) []byte {
	return buf[:in.intn(len(buf))]
}

// isFree mirrors the table's free-counter rule (0, or the tombstone value).
func (in *Injector) isFree(p Port, v uint64) bool {
	return v == 0 || (p.FaultTombstoneValue() != 0 && v == p.FaultTombstoneValue())
}

// isLive reports whether cell i's counter marks a live copy (1..d).
func (in *Injector) isLive(p Port, i int) bool {
	v := p.FaultCounter(i)
	return !in.isFree(p, v) && v <= uint64(p.FaultArity())
}

// pickCounter returns a random counter index satisfying want, scanning from
// a random start so the choice is uniform-ish without collecting all
// matches.
func (in *Injector) pickCounter(p Port, want func(v uint64) bool) (int, bool) {
	n := p.FaultNumCounters()
	start := in.intn(n)
	for off := 0; off < n; off++ {
		i := (start + off) % n
		if want(p.FaultCounter(i)) {
			return i, true
		}
	}
	return 0, false
}

// pickFlag returns a random flag index whose value equals want.
func (in *Injector) pickFlag(p Port, want bool) (int, bool) {
	n := p.FaultNumFlags()
	start := in.intn(n)
	for off := 0; off < n; off++ {
		i := (start + off) % n
		if p.FaultFlag(i) == want {
			return i, true
		}
	}
	return 0, false
}
