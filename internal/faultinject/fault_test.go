package faultinject_test

import (
	"bytes"
	"errors"
	"testing"

	"mccuckoo/internal/core"
	"mccuckoo/internal/faultinject"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/shard"
)

// faultTable is what the matrix drives: a corruptible table with repair and
// invariant checking. Both core table kinds satisfy it.
type faultTable interface {
	faultinject.Port
	kv.Table
	Repair() core.RepairReport
	CheckInvariants() error
}

type combo struct {
	name    string
	blocked bool
	cfg     core.Config
}

func combos() []combo {
	return []combo{
		{"single", false, core.Config{BucketsPerTable: 96, Seed: 101, MaxLoop: 100, StashEnabled: true}},
		{"single-tombstone", false, core.Config{BucketsPerTable: 96, Seed: 102, MaxLoop: 100, StashEnabled: true, Deletion: core.Tombstone}},
		{"single-mincounter", false, core.Config{BucketsPerTable: 96, Seed: 103, MaxLoop: 100, StashEnabled: true, Policy: kv.MinCounter}},
		{"blocked", true, core.Config{BucketsPerTable: 24, Seed: 104, MaxLoop: 100, StashEnabled: true}},
		{"blocked-tombstone", true, core.Config{BucketsPerTable: 24, Seed: 105, MaxLoop: 100, StashEnabled: true, Deletion: core.Tombstone}},
	}
}

func build(t *testing.T, c combo, load float64) (faultTable, map[uint64]uint64) {
	t.Helper()
	var tab faultTable
	var err error
	if c.blocked {
		tab, err = core.NewBlocked(c.cfg)
	} else {
		tab, err = core.New(c.cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	n := int(load * float64(tab.Capacity()))
	expect := make(map[uint64]uint64, n)
	k := c.cfg.Seed*0x9e3779b97f4a7c15 | 1
	for i := 0; i < n; i++ {
		k = k*6364136223846793005 + 1442695040888963407
		key := k | 1 // never key 0
		if tab.Insert(key, key^0xabc).Status != kv.Failed {
			expect[key] = key ^ 0xabc
		}
	}
	return tab, expect
}

// Every on-chip fault class, injected repeatedly on never-deleted tables of
// every configuration, must be fully healed by Repair: invariants hold,
// every accepted key resolves to its value, and a second Repair is a no-op.
func TestOnChipFaultMatrixHealed(t *testing.T) {
	for _, c := range combos() {
		t.Run(c.name, func(t *testing.T) {
			for trial := uint64(0); trial < 8; trial++ {
				tab, expect := build(t, c, 0.80)
				inj := faultinject.New(1000*c.cfg.Seed + trial)
				var faults []faultinject.Fault
				for i := 0; i < 4; i++ {
					faults = append(faults,
						inj.FlipCounterBit(tab),
						inj.CorruptCounter(tab),
						inj.ZeroCounter(tab),
						inj.TombstoneCounter(tab),
						inj.ClearStashFlag(tab),
						inj.SetStashFlag(tab),
						inj.AlienKey(tab),
						inj.DivergeValue(tab),
					)
				}
				rep := tab.Repair()
				if err := tab.CheckInvariants(); err != nil {
					t.Fatalf("trial %d: invariants after repair: %v\nfaults: %+v\nreport: %v",
						trial, err, faults, rep)
				}
				for k, v := range expect {
					got, ok := tab.Lookup(k)
					if !ok || got != v {
						t.Fatalf("trial %d: key %#x = (%d,%v), want (%d,true)\nfaults: %+v",
							trial, k, got, ok, v, faults)
					}
				}
				if rep2 := tab.Repair(); rep2.Any() {
					t.Fatalf("trial %d: second repair not a no-op: %v", trial, rep2)
				}
			}
		})
	}
}

// On tables with deletion history the healing guarantee is necessarily
// weaker (deletions live only on-chip): after faults and Repair the table
// must be internally consistent and every lookup must return either the
// correct value or a miss — never a wrong value, never a panic.
func TestFaultMatrixAfterDeletions(t *testing.T) {
	for _, c := range combos() {
		t.Run(c.name, func(t *testing.T) {
			for trial := uint64(0); trial < 4; trial++ {
				tab, expect := build(t, c, 0.80)
				deleted := map[uint64]struct{}{}
				i := 0
				for k := range expect {
					if i%3 == 0 {
						tab.Delete(k)
						deleted[k] = struct{}{}
					}
					i++
				}
				inj := faultinject.New(7000*c.cfg.Seed + trial)
				for i := 0; i < 6; i++ {
					inj.FlipCounterBit(tab)
					inj.CorruptCounter(tab)
					inj.ZeroCounter(tab)
					inj.TombstoneCounter(tab)
					inj.ClearStashFlag(tab)
					inj.SetStashFlag(tab)
				}
				tab.Repair()
				if err := tab.CheckInvariants(); err != nil {
					t.Fatalf("trial %d: invariants after repair: %v", trial, err)
				}
				for k, v := range expect {
					got, ok := tab.Lookup(k)
					if ok && got != v {
						t.Fatalf("trial %d: key %#x returned wrong value %d (want %d or miss)",
							trial, k, got, v)
					}
					if _, del := deleted[k]; !del && !ok {
						// A live key may only die when counter faults erased
						// every trace; it must then stay consistently dead.
						if _, again := tab.Lookup(k); again {
							t.Fatalf("trial %d: key %#x flickers", trial, k)
						}
					}
				}
				if rep2 := tab.Repair(); rep2.Any() {
					t.Fatalf("trial %d: second repair not a no-op: %v", trial, rep2)
				}
			}
		})
	}
}

// Every single-bit flip in a snapshot must be detected at Load with a typed
// *CorruptError — exhaustively, for both table kinds.
func TestSnapshotEveryBitFlipDetected(t *testing.T) {
	snapshots := map[string][]byte{}
	{
		tab, err := core.New(core.Config{BucketsPerTable: 8, Seed: 111, StashEnabled: true, MaxLoop: 20})
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(1); k < 30; k++ {
			tab.Insert(k*0x9e37, k)
		}
		var buf bytes.Buffer
		if _, err := tab.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		snapshots["single"] = buf.Bytes()
	}
	{
		tab, err := core.NewBlocked(core.Config{BucketsPerTable: 4, Seed: 112, StashEnabled: true, MaxLoop: 20})
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(1); k < 30; k++ {
			tab.Insert(k*0x9e37, k)
		}
		var buf bytes.Buffer
		if _, err := tab.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		snapshots["blocked"] = buf.Bytes()
	}
	for name, raw := range snapshots {
		t.Run(name, func(t *testing.T) {
			load := func(b []byte) error {
				var err error
				if name == "blocked" {
					_, err = core.LoadBlocked(bytes.NewReader(b))
				} else {
					_, err = core.Load(bytes.NewReader(b))
				}
				return err
			}
			if err := load(raw); err != nil {
				t.Fatalf("pristine snapshot rejected: %v", err)
			}
			bad := make([]byte, len(raw))
			for off := 0; off < len(raw); off++ {
				for bit := 0; bit < 8; bit++ {
					copy(bad, raw)
					bad[off] ^= 1 << bit
					err := load(bad)
					if err == nil {
						t.Fatalf("bit flip at byte %d bit %d accepted", off, bit)
					}
					var ce *core.CorruptError
					if !errors.As(err, &ce) {
						t.Fatalf("bit flip at byte %d bit %d: error %T (%v), want *CorruptError",
							off, bit, err, err)
					}
				}
			}
		})
	}
}

// Every truncation point of a snapshot must be rejected, never panic.
func TestSnapshotEveryTruncationDetected(t *testing.T) {
	tab, err := core.New(core.Config{BucketsPerTable: 8, Seed: 113, StashEnabled: true, MaxLoop: 20})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k < 25; k++ {
		tab.Insert(k*31, k)
	}
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, err := core.Load(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// Sharded snapshots: every single-bit flip — header, frame lengths, frame
// bodies, trailer — must be detected by shard.Load.
func TestShardedSnapshotEveryBitFlipDetected(t *testing.T) {
	s, err := shard.New(4, 77, func(i int) (shard.Inner, error) {
		return core.New(core.Config{BucketsPerTable: 4, Seed: uint64(200 + i),
			StashEnabled: true, MaxLoop: 20})
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k < 40; k++ {
		s.Insert(k*0x51ed, k)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := shard.Load(bytes.NewReader(raw)); err != nil {
		t.Fatalf("pristine sharded snapshot rejected: %v", err)
	}
	bad := make([]byte, len(raw))
	for off := 0; off < len(raw); off++ {
		for bit := 0; bit < 8; bit++ {
			copy(bad, raw)
			bad[off] ^= 1 << bit
			_, err := shard.Load(bytes.NewReader(bad))
			if err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", off, bit)
			}
			var ce *core.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("bit flip at byte %d bit %d: error %T (%v), want *CorruptError",
					off, bit, err, err)
			}
		}
	}
	for cut := 0; cut < len(raw); cut += 7 {
		if _, err := shard.Load(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("sharded truncation at %d accepted", cut)
		}
	}
}

// The injector primitives for snapshot corruption drive the same detection
// property from random positions, and the injector is deterministic: two
// injectors with one seed produce identical fault sequences.
func TestInjectorDeterministicAndSnapshotPrimitives(t *testing.T) {
	mk := func() faultTable {
		tab, err := core.New(core.Config{BucketsPerTable: 32, Seed: 120, StashEnabled: true, MaxLoop: 30})
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(1); k < 90; k++ {
			tab.Insert(k*0x2545f4914f6cdd1d, k)
		}
		return tab
	}
	a, b := mk(), mk()
	ia, ib := faultinject.New(42), faultinject.New(42)
	for i := 0; i < 20; i++ {
		fa := ia.FlipCounterBit(a)
		fb := ib.FlipCounterBit(b)
		if fa != fb {
			t.Fatalf("injector diverged at step %d: %+v vs %+v", i, fa, fb)
		}
	}

	tab := mk()
	var buf bytes.Buffer
	if _, err := tab.(*core.Table).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(43)
	for i := 0; i < 200; i++ {
		raw := append([]byte{}, buf.Bytes()...)
		f := inj.FlipSnapshotBit(raw)
		if _, err := core.Load(bytes.NewReader(raw)); err == nil {
			t.Fatalf("injected snapshot flip %+v accepted", f)
		}
	}
	for i := 0; i < 100; i++ {
		raw := append([]byte{}, buf.Bytes()...)
		if _, err := core.Load(bytes.NewReader(inj.Truncate(raw))); err == nil {
			t.Fatal("injected truncation accepted")
		}
	}
}
