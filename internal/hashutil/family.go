package hashutil

import (
	"fmt"
	"math/bits"
)

// MaxD is the largest number of hash functions a Family supports. The paper
// argues d = 3 is sufficient in practice; we allow a little headroom for
// experiments.
const MaxD = 8

// Family is a seeded family of d independent hash functions mapping 64-bit
// keys to bucket indexes in [0, n). Each of the d functions addresses its own
// subtable, exactly as in d-ary cuckoo hashing (T1..Td in the paper).
//
// Indexes are derived from BOB hash with per-function seeds, reduced by the
// Lemire multiply-shift trick so no expensive modulo is needed and any table
// length (not only powers of two) is supported.
type Family struct {
	d      int
	n      uint64
	seeds  [MaxD]uint64
	double bool

	// initA/initC are the precomputed hashlittle2 seed states for the fixed
	// 8-byte key path (bobKeyState of each function's seed): the per-key work
	// left in Index/Indexes is then only mixing the key words in and one
	// finalization round, which amortizes the seeding across the d candidate
	// computations of every operation.
	initA [MaxD]uint32
	initC [MaxD]uint32
}

// NewFamily builds a hash family with d functions onto tables of n buckets.
// The seed makes the family reproducible; distinct seeds give independent
// families (used for rehashing).
func NewFamily(d int, n int, seed uint64) (*Family, error) {
	if d < 2 || d > MaxD {
		return nil, fmt.Errorf("hashutil: d must be in [2, %d], got %d", MaxD, d)
	}
	if n <= 0 {
		return nil, fmt.Errorf("hashutil: table length must be positive, got %d", n)
	}
	f := &Family{d: d, n: uint64(n)}
	s := Mix64(seed)
	for i := 0; i < d; i++ {
		f.seeds[i] = SplitMix64(&s)
		f.initA[i], f.initC[i] = bobKeyState(f.seeds[i])
	}
	return f, nil
}

// D returns the number of hash functions in the family.
func (f *Family) D() int { return f.d }

// N returns the number of buckets each function maps onto.
func (f *Family) N() int { return int(f.n) }

// Index returns h_i(key) in [0, N), the candidate bucket of key in subtable i.
//
//mcvet:hotpath
func (f *Family) Index(i int, key uint64) int {
	if f.double && i >= 2 {
		// Double hashing: derive further indexes from the first two
		// hashes. The step is forced odd so it cycles the whole range.
		h1 := uint64(f.Index(0, key))
		h2 := bobKeyFinish(f.initA[1], f.initC[1], key) | 1
		return int((h1 + uint64(i)*h2) % f.n)
	}
	h := bobKeyFinish(f.initA[i], f.initC[i], key)
	// Multiply-shift reduction: maps a uniform 64-bit value to [0, n) with
	// negligible bias for the table sizes used here.
	hi, _ := bits.Mul64(h, f.n)
	return int(hi)
}

// Indexes fills dst with the d candidate buckets of key and returns the
// filled prefix. len(dst) must be at least d.
//
//mcvet:hotpath
func (f *Family) Indexes(key uint64, dst []int) []int {
	if f.double {
		for i := 0; i < f.d; i++ {
			dst[i] = f.Index(i, key)
		}
		return dst[:f.d]
	}
	// Against the precomputed seed states the key-word splits are shared and
	// each function costs one finalization round plus the Lemire reduction.
	lo, hi := uint32(key), uint32(key>>32)
	for i := 0; i < f.d; i++ {
		a0 := f.initA[i]
		_, b, c := final(a0+lo, a0+hi, f.initC[i])
		h, _ := bits.Mul64(uint64(b)<<32|uint64(c), f.n)
		dst[i] = int(h)
	}
	return dst[:f.d]
}

// NewDoubleHashedFamily builds a family whose d indexes derive from only
// two BOB hash evaluations via double hashing, h_i = h1 + i*h2 (mod n) — the
// cheap-hashing construction of Mitzenmacher et al. (SWAT'18, the paper's
// [21]) which provably preserves cuckoo load thresholds while removing
// d - 2 hash computations per key.
func NewDoubleHashedFamily(d int, n int, seed uint64) (*Family, error) {
	f, err := NewFamily(d, n, seed)
	if err != nil {
		return nil, err
	}
	f.double = true
	return f, nil
}
