package hashutil

// SplitMix64 advances the splitmix64 generator state and returns the next
// pseudo-random value. It is used for deterministic key generation and for
// deriving independent seeds for the hash family.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the splitmix64 finalizer to x, producing a well-mixed 64-bit
// value. It is a stateless convenience used to derive per-purpose seeds.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
