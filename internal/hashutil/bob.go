// Package hashutil provides the hash primitives used throughout the
// repository: Bob Jenkins' lookup3 ("BOB hash", the function the McCuckoo
// paper uses for all schemes), a splitmix64 mixer used for key generation and
// seeding, and a seeded d-way hash family that maps a key to its candidate
// buckets.
//
// Everything here is deterministic: the same seed always produces the same
// hash values, which the experiment harness relies on for reproducibility.
package hashutil

import "encoding/binary"

// rot rotates x left by k bits.
func rot(x uint32, k uint) uint32 { return x<<k | x>>(32-k) }

// mix is the lookup3 mixing step for the internal state (a, b, c).
func mix(a, b, c uint32) (uint32, uint32, uint32) {
	a -= c
	a ^= rot(c, 4)
	c += b
	b -= a
	b ^= rot(a, 6)
	a += c
	c -= b
	c ^= rot(b, 8)
	b += a
	a -= c
	a ^= rot(c, 16)
	c += b
	b -= a
	b ^= rot(a, 19)
	a += c
	c -= b
	c ^= rot(b, 4)
	b += a
	return a, b, c
}

// final is the lookup3 finalization step.
func final(a, b, c uint32) (uint32, uint32, uint32) {
	c ^= b
	c -= rot(b, 14)
	a ^= c
	a -= rot(c, 11)
	b ^= a
	b -= rot(a, 25)
	c ^= b
	c -= rot(b, 16)
	a ^= c
	a -= rot(c, 4)
	b ^= a
	b -= rot(a, 14)
	c ^= b
	c -= rot(b, 24)
	return a, b, c
}

// BOB32 computes Bob Jenkins' lookup3 hashlittle() over data with the given
// seed and returns the 32-bit hash.
func BOB32(data []byte, seed uint32) uint32 {
	_, c := BOB64Pair(data, seed, 0)
	return c
}

// BOB64Pair computes lookup3 hashlittle2(), returning both 32-bit outputs
// (b and c) so callers can assemble a 64-bit value. seedB and seedC seed the
// two halves independently.
func BOB64Pair(data []byte, seedC, seedB uint32) (bOut, cOut uint32) {
	length := len(data)
	a := 0xdeadbeef + uint32(length) + seedC
	b := a
	c := a + seedB

	for length > 12 {
		a += binary.LittleEndian.Uint32(data[0:4])
		b += binary.LittleEndian.Uint32(data[4:8])
		c += binary.LittleEndian.Uint32(data[8:12])
		a, b, c = mix(a, b, c)
		data = data[12:]
		length -= 12
	}

	// Tail: lookup3 reads the remaining bytes little-endian into a, b, c.
	var tail [12]byte
	copy(tail[:], data)
	if length > 0 {
		a += binary.LittleEndian.Uint32(tail[0:4])
		b += binary.LittleEndian.Uint32(tail[4:8])
		c += binary.LittleEndian.Uint32(tail[8:12])
		a, b, c = final(a, b, c)
	}
	return b, c
}

// BOB64 hashes data to a 64-bit value using hashlittle2 with a 64-bit seed.
func BOB64(data []byte, seed uint64) uint64 {
	b, c := BOB64Pair(data, uint32(seed), uint32(seed>>32))
	return uint64(b)<<32 | uint64(c)
}

// BOB64Key hashes a fixed 64-bit key. This is the hot path used by the hash
// tables: keys in the simulator are 64-bit (the paper combines DocID and
// WordID into one key), so the generic byte-slice path is specialized away.
//
// For an 8-byte little-endian input, hashlittle2 reduces to: seed the state,
// add the two key words into a and b (the 12-byte tail is zero-padded, so c
// gets no data), and run one finalization round. bobKeyState precomputes the
// seeded state so the d-way hash family pays it once per function at
// construction instead of once per operation.
//
//mcvet:hotpath
func BOB64Key(key, seed uint64) uint64 {
	a, c := bobKeyState(seed)
	return bobKeyFinish(a, c, key)
}

// bobKeyState returns the hashlittle2 initial state (a == b, and c) for an
// 8-byte input under the given 64-bit seed.
func bobKeyState(seed uint64) (a, c uint32) {
	a = 0xdeadbeef + 8 + uint32(seed)
	return a, a + uint32(seed>>32)
}

// bobKeyFinish completes the 8-byte-key hash from the precomputed state:
// mix the key words in and run the lookup3 finalization. Identical output to
// the generic BOB64 over the key's little-endian bytes (pinned by tests).
//
//mcvet:hotpath
func bobKeyFinish(a0, c0 uint32, key uint64) uint64 {
	_, b, c := final(a0+uint32(key), a0+uint32(key>>32), c0)
	return uint64(b)<<32 | uint64(c)
}
