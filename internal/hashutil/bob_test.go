package hashutil

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestBOB32KnownVectors(t *testing.T) {
	// Reference values computed from Bob Jenkins' lookup3.c hashlittle().
	// The empty-string value is documented in lookup3.c's self-test
	// ("hash is deadbeef" for zero-length input with seed 0).
	if got := BOB32(nil, 0); got != 0xdeadbeef {
		t.Errorf("BOB32(nil, 0) = %#x, want 0xdeadbeef", got)
	}
	// Zero-length with non-zero seed: a = b = c = 0xdeadbeef + seed, no
	// mixing rounds run.
	if got := BOB32(nil, 1); got != 0xdeadbeef+1 {
		t.Errorf("BOB32(nil, 1) = %#x, want %#x", got, uint32(0xdeadbeef+1))
	}
}

func TestBOB32Deterministic(t *testing.T) {
	data := []byte("Four score and seven years ago")
	a := BOB32(data, 13)
	b := BOB32(data, 13)
	if a != b {
		t.Fatalf("BOB32 not deterministic: %#x vs %#x", a, b)
	}
	if c := BOB32(data, 14); c == a {
		t.Fatalf("BOB32 seed change did not change hash (%#x)", a)
	}
}

func TestBOB32TailLengths(t *testing.T) {
	// Hashes of every prefix length 0..40 must all differ pairwise with
	// overwhelming probability; equal values would indicate broken tail
	// handling.
	base := []byte("abcdefghijklmnopqrstuvwxyz0123456789ABCD")
	seen := make(map[uint32]int)
	for n := 0; n <= len(base); n++ {
		h := BOB32(base[:n], 42)
		if prev, dup := seen[h]; dup {
			t.Fatalf("prefix lengths %d and %d collide: %#x", prev, n, h)
		}
		seen[h] = n
	}
}

func TestBOB64KeyAvalanche(t *testing.T) {
	// Flipping any single input bit should flip roughly half the output
	// bits. We allow a generous band since this is a sanity check, not a
	// statistical proof.
	const trials = 64
	key := uint64(0x0123456789abcdef)
	base := BOB64Key(key, 7)
	total := 0
	for bit := 0; bit < trials; bit++ {
		h := BOB64Key(key^(1<<uint(bit)), 7)
		diff := base ^ h
		n := 0
		for diff != 0 {
			diff &= diff - 1
			n++
		}
		total += n
		if n < 8 || n > 56 {
			t.Errorf("bit %d: only %d output bits changed", bit, n)
		}
	}
	avg := float64(total) / trials
	if avg < 24 || avg > 40 {
		t.Errorf("average flipped bits = %.1f, want near 32", avg)
	}
}

func TestSplitMix64Stream(t *testing.T) {
	s := uint64(1)
	a := SplitMix64(&s)
	b := SplitMix64(&s)
	if a == b {
		t.Fatal("consecutive splitmix64 outputs equal")
	}
	s2 := uint64(1)
	if a2 := SplitMix64(&s2); a2 != a {
		t.Fatalf("splitmix64 not reproducible: %#x vs %#x", a2, a)
	}
}

func TestMix64Property(t *testing.T) {
	// Mix64 must be injective-ish in practice: random x != y should map to
	// different outputs.
	f := func(x, y uint64) bool {
		if x == y {
			return true
		}
		return Mix64(x) != Mix64(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFamilyValidation(t *testing.T) {
	if _, err := NewFamily(1, 10, 0); err == nil {
		t.Error("d=1 accepted, want error")
	}
	if _, err := NewFamily(MaxD+1, 10, 0); err == nil {
		t.Error("d too large accepted, want error")
	}
	if _, err := NewFamily(3, 0, 0); err == nil {
		t.Error("n=0 accepted, want error")
	}
	f, err := NewFamily(3, 128, 99)
	if err != nil {
		t.Fatalf("NewFamily: %v", err)
	}
	if f.D() != 3 || f.N() != 128 {
		t.Errorf("D()=%d N()=%d, want 3, 128", f.D(), f.N())
	}
}

func TestFamilyRange(t *testing.T) {
	f, err := NewFamily(3, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := uint64(77)
	for i := 0; i < 10000; i++ {
		key := SplitMix64(&s)
		for j := 0; j < 3; j++ {
			idx := f.Index(j, key)
			if idx < 0 || idx >= 1000 {
				t.Fatalf("Index(%d, %#x) = %d out of range", j, key, idx)
			}
		}
	}
}

func TestFamilyIndependence(t *testing.T) {
	// The three functions should rarely agree on the same bucket for the
	// same key (expected rate 1/n per pair).
	f, _ := NewFamily(3, 1<<14, 5)
	s := uint64(3)
	agree := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		key := SplitMix64(&s)
		var idx [3]int
		f.Indexes(key, idx[:])
		if idx[0] == idx[1] || idx[1] == idx[2] || idx[0] == idx[2] {
			agree++
		}
	}
	// Expected ~ trials * 3/n = ~3.7; tolerate up to 30.
	if agree > 30 {
		t.Errorf("candidate buckets agree %d/%d times, too correlated", agree, trials)
	}
}

func TestFamilyUniformity(t *testing.T) {
	// Chi-squared-ish sanity check: bucket counts over many keys should be
	// close to uniform.
	const n = 256
	const keys = 256 * 200
	f, _ := NewFamily(2, n, 11)
	counts := make([]int, n)
	s := uint64(123)
	for i := 0; i < keys; i++ {
		counts[f.Index(0, SplitMix64(&s))]++
	}
	mean := float64(keys) / n
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - mean
		chi2 += d * d / mean
	}
	// df = 255; mean 255, sd ~22.6. Accept within ~6 sd.
	if chi2 > 400 {
		t.Errorf("chi-squared = %.1f, distribution too skewed", chi2)
	}
}

func TestFamilyIndexes(t *testing.T) {
	f, _ := NewFamily(4, 64, 1)
	var dst [8]int
	got := f.Indexes(42, dst[:])
	if len(got) != 4 {
		t.Fatalf("Indexes returned %d entries, want 4", len(got))
	}
	for i, idx := range got {
		if idx != f.Index(i, 42) {
			t.Errorf("Indexes[%d] = %d, Index = %d", i, idx, f.Index(i, 42))
		}
	}
}

func BenchmarkBOB64Key(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= BOB64Key(uint64(i), 7)
	}
	_ = sink
}

func BenchmarkFamilyIndexes(b *testing.B) {
	f, _ := NewFamily(3, 1<<20, 7)
	var dst [8]int
	for i := 0; i < b.N; i++ {
		f.Indexes(uint64(i), dst[:])
	}
}

func TestDoubleHashedFamily(t *testing.T) {
	f, err := NewDoubleHashedFamily(4, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := uint64(77)
	for i := 0; i < 5000; i++ {
		key := SplitMix64(&s)
		var idx [8]int
		f.Indexes(key, idx[:])
		for j := 0; j < 4; j++ {
			if idx[j] < 0 || idx[j] >= 1000 {
				t.Fatalf("index %d out of range: %d", j, idx[j])
			}
		}
		// h2 is odd and n=1000, so consecutive derived indexes differ.
		if idx[2] == idx[3] {
			t.Fatalf("derived indexes collide for key %#x", key)
		}
	}
	// Uniformity of the derived function h_2.
	const n = 256
	g, _ := NewDoubleHashedFamily(3, n, 11)
	counts := make([]int, n)
	s = uint64(123)
	for i := 0; i < n*200; i++ {
		counts[g.Index(2, SplitMix64(&s))]++
	}
	mean := 200.0
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - mean
		chi2 += d * d / mean
	}
	if chi2 > 400 {
		t.Errorf("double-hashed index chi-squared = %.1f, too skewed", chi2)
	}
}

func TestDoubleHashedFamilyFillsTable(t *testing.T) {
	// The derived indexes must be good enough for real cuckoo behaviour:
	// spot-check that no two of the three candidates systematically
	// coincide.
	f, _ := NewDoubleHashedFamily(3, 1<<12, 13)
	s := uint64(17)
	agree := 0
	for i := 0; i < 20000; i++ {
		var idx [8]int
		f.Indexes(SplitMix64(&s), idx[:])
		if idx[0] == idx[1] || idx[1] == idx[2] || idx[0] == idx[2] {
			agree++
		}
	}
	if agree > 40 {
		t.Errorf("candidates coincide %d/20000 times", agree)
	}
}

func TestBOB64KeyMatchesGenericPath(t *testing.T) {
	// The specialized 8-byte-key path (precomputed seed state + one
	// finalization) must be bit-identical to hashing the key's
	// little-endian bytes through the generic BOB64: every stored table
	// placement depends on this equivalence.
	s := uint64(3)
	for i := 0; i < 4096; i++ {
		key, seed := SplitMix64(&s), SplitMix64(&s)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], key)
		want := BOB64(buf[:], seed)
		if got := BOB64Key(key, seed); got != want {
			t.Fatalf("BOB64Key(%#x, %#x) = %#x, want %#x", key, seed, got, want)
		}
		a0, c0 := bobKeyState(seed)
		if got := bobKeyFinish(a0, c0, key); got != want {
			t.Fatalf("bobKeyFinish(%#x, %#x) = %#x, want %#x", key, seed, got, want)
		}
	}
	// Edge keys exercise the zero and all-ones word splits.
	for _, key := range []uint64{0, 1, ^uint64(0), 1 << 63, 0xffffffff, 0xffffffff00000000} {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], key)
		if got, want := BOB64Key(key, 99), BOB64(buf[:], 99); got != want {
			t.Fatalf("BOB64Key(%#x) = %#x, want %#x", key, got, want)
		}
	}
}

func TestFamilyIndexesMatchIndex(t *testing.T) {
	// Indexes' amortized loop and the per-function Index must agree for
	// both family constructions.
	for _, double := range []bool{false, true} {
		f, err := NewFamily(4, 12345, 7)
		if double {
			f, err = NewDoubleHashedFamily(4, 12345, 7)
		}
		if err != nil {
			t.Fatal(err)
		}
		s := uint64(11)
		for i := 0; i < 2048; i++ {
			key := SplitMix64(&s)
			var idx [MaxD]int
			f.Indexes(key, idx[:])
			for j := 0; j < 4; j++ {
				if want := f.Index(j, key); idx[j] != want {
					t.Fatalf("double=%v Indexes[%d]=%d, Index=%d", double, j, idx[j], want)
				}
			}
		}
	}
}
