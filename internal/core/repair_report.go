package core

import (
	"fmt"

	"mccuckoo/internal/bitpack"
	"mccuckoo/internal/memmodel"
)

// RepairReport summarizes what one Repair pass changed. A zero report (Any()
// false apart from the before/after snapshots) means the derived state was
// already consistent with the off-chip content. The snake_case JSON names
// are the stable wire contract of the telemetry JSON endpoints.
type RepairReport struct {
	// CountersFixed is the number of counter cells whose rebuilt value
	// differs from the stored one.
	CountersFixed int `json:"counters_fixed,omitempty"`
	// FlagsFixed is the number of stash-flag bits resynchronized.
	FlagsFixed int `json:"flags_fixed,omitempty"`
	// HintsFixed is the number of slot-hint vectors rewritten (blocked
	// tables only).
	HintsFixed int `json:"hints_fixed,omitempty"`
	// AliensCleared is the number of non-free counters cleared because the
	// bucket's stored key does not hash there.
	AliensCleared int `json:"aliens_cleared,omitempty"`
	// ValuesFixed is the number of copies whose value diverged from the
	// key's consensus value and was rewritten.
	ValuesFixed int `json:"values_fixed,omitempty"`
	// StashDropped is the number of stash entries removed because the key
	// is live in the main table.
	StashDropped int `json:"stash_dropped,omitempty"`
	// Size and copy bookkeeping, before and after the rebuild.
	SizeBefore   int `json:"size_before"`
	SizeAfter    int `json:"size_after"`
	CopiesBefore int `json:"copies_before"`
	CopiesAfter  int `json:"copies_after"`
}

// Any reports whether the pass changed anything.
func (r RepairReport) Any() bool {
	return r.CountersFixed != 0 || r.FlagsFixed != 0 || r.HintsFixed != 0 ||
		r.AliensCleared != 0 || r.ValuesFixed != 0 || r.StashDropped != 0 ||
		r.SizeBefore != r.SizeAfter || r.CopiesBefore != r.CopiesAfter
}

// Merge accumulates o into r, summing every field — used to aggregate
// per-shard reports.
func (r RepairReport) Merge(o RepairReport) RepairReport {
	r.CountersFixed += o.CountersFixed
	r.FlagsFixed += o.FlagsFixed
	r.HintsFixed += o.HintsFixed
	r.AliensCleared += o.AliensCleared
	r.ValuesFixed += o.ValuesFixed
	r.StashDropped += o.StashDropped
	r.SizeBefore += o.SizeBefore
	r.SizeAfter += o.SizeAfter
	r.CopiesBefore += o.CopiesBefore
	r.CopiesAfter += o.CopiesAfter
	return r
}

// String renders the report for logs.
func (r RepairReport) String() string {
	return fmt.Sprintf("repair{counters:%d flags:%d hints:%d aliens:%d values:%d stash-dropped:%d size:%d→%d copies:%d→%d}",
		r.CountersFixed, r.FlagsFixed, r.HintsFixed, r.AliensCleared, r.ValuesFixed,
		r.StashDropped, r.SizeBefore, r.SizeAfter, r.CopiesBefore, r.CopiesAfter)
}

// installCounters counts the cells where next differs from prev, charging
// one on-chip write per changed cell.
func installCounters(prev, next *bitpack.Counters, meter *memmodel.Meter) int {
	fixed := 0
	for i := 0; i < prev.Len(); i++ {
		if prev.Get(i) != next.Get(i) {
			fixed++
		}
	}
	meter.WriteOn(int64(fixed))
	return fixed
}

// installFlags counts the bits where next differs from prev, charging one
// off-chip write per changed bit (flags live with the buckets).
func installFlags(prev, next *bitpack.Bitset, meter *memmodel.Meter) int {
	fixed := 0
	for i := 0; i < prev.Len(); i++ {
		if prev.Get(i) != next.Get(i) {
			fixed++
		}
	}
	meter.WriteOff(int64(fixed))
	return fixed
}
