package core

import (
	"fmt"

	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
)

// Insert stores key/value following the paper's insertion principles
// (§III.B.1):
//
//  1. occupy all empty candidate buckets with copies,
//  2. never overwrite counter-1 buckets,
//  3. overwrite the remaining candidates in decreasing counter order while
//     the victim still has at least two more copies than the inserted item.
//
// When every candidate holds a sole copy (all counters 1), a counter-guided
// random walk relocates items; if the walk exceeds MaxLoop the item goes to
// the stash and the flags of its candidate buckets are set.
//
//mcvet:hotpath
func (t *Table) Insert(key, value uint64) kv.Outcome {
	t.stats.Inserts++
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])

	if !t.cfg.AssumeUniqueKeys {
		if out, done := t.updateExisting(key, value, cand[:t.cfg.D]); done {
			return out
		}
	}

	if copies := t.place(kv.Entry{Key: key, Value: value}, cand[:t.cfg.D]); copies > 0 {
		t.size++
		return kv.Outcome{Status: kv.Placed}
	}
	return t.resolveCollision(kv.Entry{Key: key, Value: value}, cand[:t.cfg.D])
}

// updateExisting checks for an existing copy of key and updates all its
// copies in place. It reports whether the insert was handled.
//
//mcvet:hotpath
func (t *Table) updateExisting(key, value uint64, cand []int) (kv.Outcome, bool) {
	var locBuf [hashutil.MaxD]int
	locs, _ := t.findCopies(key, cand, &locBuf)
	if len(locs) > 0 {
		for _, table := range locs {
			t.writeBucket(table, cand[table], kv.Entry{Key: key, Value: value})
		}
		t.stats.Updates++
		return kv.Outcome{Status: kv.Updated}, true
	}
	if t.overflow != nil && t.overflow.Len() > 0 {
		if _, ok := t.overflow.Lookup(key); ok {
			t.overflow.Insert(key, value)
			t.stats.Updates++
			return kv.Outcome{Status: kv.Updated}, true
		}
	}
	return kv.Outcome{}, false
}

// place applies the insertion principles to e. It returns the number of
// copies placed; 0 means a real collision (all candidates are sole copies).
//
// Counter discipline: each bucket the item takes gets its counter set to the
// running copy count immediately, which keeps every intermediate counter
// value strictly below any overwritable victim's count (a victim requires
// V >= copies+2), so the victim-copy identification below can never confuse
// a freshly taken bucket with a victim copy. All taken buckets are raised to
// the final count at the end.
//
//mcvet:hotpath
func (t *Table) place(e kv.Entry, cand []int) int {
	d := t.cfg.D
	var owned [hashutil.MaxD]bool
	copies := 0

	// Principle 1: occupy every free candidate.
	for i := 0; i < d; i++ {
		if t.isFree(t.counterAt(i, cand[i])) {
			t.writeBucket(i, cand[i], e)
			copies++
			t.setCounter(i, cand[i], uint64(copies))
			owned[i] = true
		}
	}

	// Principles 2+3: overwrite redundant copies in decreasing counter
	// order while the victim keeps a two-copy lead. Counters are re-read
	// each round because an earlier overwrite may have decremented a
	// later candidate (two candidates can hold copies of the same item).
	for {
		best, bestV := -1, uint64(0)
		for i := 0; i < d; i++ {
			if owned[i] {
				continue
			}
			if v := t.counterAt(i, cand[i]); !t.isFree(v) && v > bestV {
				best, bestV = i, v
			}
		}
		if best < 0 || bestV < uint64(copies)+2 {
			break
		}
		victimKey := t.readBucket(best, cand[best])
		t.victimLostCopy(victimKey, best, bestV)
		t.writeBucket(best, cand[best], e)
		copies++
		t.setCounter(best, cand[best], uint64(copies))
		owned[best] = true
	}

	if copies == 0 {
		return 0
	}
	// Raise all taken buckets to the final copy count.
	for i := 0; i < d; i++ {
		if owned[i] && copies > 1 {
			t.setCounter(i, cand[i], uint64(copies))
		}
	}
	t.copiesTotal += copies
	t.redundantWrites += int64(copies - 1)
	return copies
}

// victimLostCopy updates the bookkeeping when the victim's copy in subtable
// lostTable is about to be overwritten: the victim's surviving copies have
// their counters decremented from v to v-1.
//
// The survivors are found among the victim's other candidates whose counter
// equals v. If exactly v-1 such candidates exist they are provably the
// copies and the update is on-chip only; otherwise off-chip reads verify
// keys until the copies are identified (the cost the paper's counters cannot
// avoid; see DESIGN.md §6).
//
//mcvet:hotpath
func (t *Table) victimLostCopy(victimKey uint64, lostTable int, v uint64) {
	var vcand [hashutil.MaxD]int
	t.family.Indexes(victimKey, vcand[:])

	var w [hashutil.MaxD]int
	nw := 0
	for j := 0; j < t.cfg.D; j++ {
		if j == lostTable {
			continue
		}
		if t.counterAt(j, vcand[j]) == v {
			w[nw] = j
			nw++
		}
	}
	needed := int(v) - 1
	if nw < needed {
		panic(fmt.Sprintf("core: victim %#x with counter %d has only %d matching candidates", victimKey, v, nw))
	}
	found := 0
	for k := 0; k < nw && found < needed; k++ {
		j := w[k]
		if needed-found == nw-k {
			// Every remaining candidate must be a copy; no reads
			// needed.
			t.setCounter(j, vcand[j], v-1)
			found++
			continue
		}
		if t.readBucket(j, vcand[j]) == victimKey {
			t.setCounter(j, vcand[j], v-1)
			found++
		}
	}
	if found != needed {
		panic(fmt.Sprintf("core: victim %#x lost copies: found %d of %d", victimKey, found, needed))
	}
	t.copiesTotal--
}

// resolveCollision runs the counter-guided random walk: evict a random sole
// copy, re-place the evicted item by the insertion principles, and repeat
// until a placement succeeds or MaxLoop is exceeded, in which case the item
// in hand goes to the stash.
//
//mcvet:hotpath
func (t *Table) resolveCollision(e kv.Entry, cand []int) kv.Outcome {
	cur := e
	var curCand [hashutil.MaxD]int
	copy(curCand[:], cand)
	prevTable := -1
	kicks := 0
	for {
		if kicks >= t.cfg.MaxLoop {
			t.stats.Kicks += int64(kicks)
			return t.overflowInsert(cur, curCand[:t.cfg.D], kicks)
		}
		// Pick a candidate to evict per the configured policy,
		// avoiding an immediate bounce back to the bucket cur was
		// just evicted from.
		r := t.pickVictimTable(curCand[:t.cfg.D], prevTable)
		victim := t.readEntry(r, curCand[r])
		t.writeBucket(r, curCand[r], cur)
		// The bucket's counter is already 1 (sole copy out, sole copy
		// in), so no counter update is needed.
		kicks++
		cur = victim
		prevTable = r
		t.family.Indexes(cur.Key, curCand[:])
		if copies := t.place(cur, curCand[:t.cfg.D]); copies > 0 {
			// The original item is now in the table and every
			// displaced item found a home: net one new item. The
			// kick writes themselves never change the physical
			// copy count (each replaces a sole copy with a sole
			// copy), so only size moves here.
			t.size++
			t.stats.Kicks += int64(kicks)
			return kv.Outcome{Status: kv.Placed, Kicks: kicks}
		}
	}
}

// overflowInsert stores the item the walk could not place into the stash and
// sets the stash flags of its candidate buckets (one off-chip write each).
func (t *Table) overflowInsert(cur kv.Entry, cand []int, kicks int) kv.Outcome {
	if t.overflow == nil || !t.overflow.Insert(cur.Key, cur.Value) {
		t.stats.Failures++
		return kv.Outcome{Status: kv.Failed, Kicks: kicks}
	}
	for i := 0; i < t.cfg.D; i++ {
		t.setStashFlag(t.bucketIndex(i, cand[i]))
	}
	t.stats.Stashed++
	t.maybeAutoGrow()
	return kv.Outcome{Status: kv.Stashed, Kicks: kicks}
}
