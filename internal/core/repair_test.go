package core

import (
	"testing"

	"mccuckoo/internal/kv"
)

// repairTable is the surface the repair tests drive for both table kinds.
type repairTable interface {
	kv.Table
	Repair() RepairReport
	CheckInvariants() error
	FaultNumCounters() int
	FaultCounter(i int) uint64
	FaultSetCounter(i int, v uint64)
	FaultNumFlags() int
	FaultSetFlag(i int, set bool)
	FaultNumCells() int
	FaultCellKey(i int) uint64
	FaultSetCellKey(i int, key uint64)
	FaultCellValue(i int) uint64
	FaultSetCellValue(i int, v uint64)
	FaultCellIsCandidate(key uint64, cell int) bool
}

// repairMatrix runs fn against freshly built tables of every kind ×
// deletion-mode × policy combination, loaded to high occupancy.
func repairMatrix(t *testing.T, load float64, fn func(t *testing.T, tab repairTable, expect map[uint64]uint64)) {
	t.Helper()
	cases := []struct {
		name    string
		blocked bool
		cfg     Config
	}{
		{"single", false, Config{BucketsPerTable: 128, Seed: 11, MaxLoop: 100, StashEnabled: true}},
		{"single-tombstone", false, Config{BucketsPerTable: 128, Seed: 12, MaxLoop: 100, StashEnabled: true, Deletion: Tombstone}},
		{"single-mincounter", false, Config{BucketsPerTable: 128, Seed: 13, MaxLoop: 100, StashEnabled: true, Policy: kv.MinCounter}},
		{"blocked", true, Config{BucketsPerTable: 32, Seed: 14, MaxLoop: 100, StashEnabled: true}},
		{"blocked-tombstone", true, Config{BucketsPerTable: 32, Seed: 15, MaxLoop: 100, StashEnabled: true, Deletion: Tombstone}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var tab repairTable
			if tc.blocked {
				tab = mustNewBlocked(t, tc.cfg)
			} else {
				tab = mustNew(t, tc.cfg)
			}
			n := int(load * float64(tab.Capacity()))
			expect := make(map[uint64]uint64, n)
			for _, k := range fillKeys(tc.cfg.Seed, n) {
				if tab.Insert(k, k*31+7).Status != kv.Failed {
					expect[k] = k*31 + 7
				}
			}
			fn(t, tab, expect)
		})
	}
}

func checkRepairTable(t *testing.T, tab repairTable, expect map[uint64]uint64) {
	t.Helper()
	if err := tab.CheckInvariants(); err != nil {
		t.Fatalf("invariants after repair: %v", err)
	}
	for k, v := range expect {
		got, ok := tab.Lookup(k)
		if !ok || got != v {
			t.Fatalf("key %#x after repair: got (%d,%v), want (%d,true)", k, got, ok, v)
		}
	}
}

// A consistent table must repair to itself: no fixes, no size change.
func TestRepairHealthyNoOp(t *testing.T) {
	repairMatrix(t, 0.90, func(t *testing.T, tab repairTable, expect map[uint64]uint64) {
		size, copies := tab.Len(), tab.StashLen()
		rep := tab.Repair()
		if rep.Any() {
			t.Fatalf("repair of a healthy table reported changes: %v", rep)
		}
		if tab.Len() != size || tab.StashLen() != copies {
			t.Fatalf("healthy repair moved bookkeeping: Len %d->%d", size, tab.Len())
		}
		checkRepairTable(t, tab, expect)
	})
}

// A full on-chip wipe (counters zeroed, flags zeroed) on a never-deleted
// table must rebuild completely: every key findable, invariants hold, and a
// second Repair is a no-op.
func TestRepairFullOnChipWipe(t *testing.T) {
	repairMatrix(t, 0.85, func(t *testing.T, tab repairTable, expect map[uint64]uint64) {
		for i := 0; i < tab.FaultNumCounters(); i++ {
			tab.FaultSetCounter(i, 0)
		}
		for i := 0; i < tab.FaultNumFlags(); i++ {
			tab.FaultSetFlag(i, false)
		}
		rep := tab.Repair()
		if rep.CountersFixed == 0 {
			t.Fatal("wipe repaired without counter fixes")
		}
		checkRepairTable(t, tab, expect)
		if tab.Len() != len(expect) {
			t.Fatalf("Len after wipe repair = %d, want %d", tab.Len(), len(expect))
		}
		if rep2 := tab.Repair(); rep2.Any() {
			t.Fatalf("second repair not a no-op: %v", rep2)
		}
	})
}

// An alien key (bucket content overwritten with a key that does not hash
// there) is cleared, and the item survives through its sibling copies.
func TestRepairAlienCleared(t *testing.T) {
	repairMatrix(t, 0.60, func(t *testing.T, tab repairTable, expect map[uint64]uint64) {
		// Find a cell holding a live multi-copy key.
		copies := map[uint64]int{}
		for i := 0; i < tab.FaultNumCells(); i++ {
			k := tab.FaultCellKey(i)
			if k != 0 && tab.FaultCounter(i) != 0 && tab.FaultCellIsCandidate(k, i) {
				copies[k]++
			}
		}
		target := -1
		for i := 0; i < tab.FaultNumCells(); i++ {
			k := tab.FaultCellKey(i)
			if k != 0 && tab.FaultCounter(i) != 0 && tab.FaultCellIsCandidate(k, i) && copies[k] >= 2 {
				target = i
				break
			}
		}
		if target < 0 {
			t.Skip("no multi-copy key at this load")
		}
		alien := uint64(0xdead_beef_cafe_f00d)
		for tab.FaultCellIsCandidate(alien, target) {
			alien++
		}
		tab.FaultSetCellKey(target, alien)
		rep := tab.Repair()
		if rep.AliensCleared == 0 {
			t.Fatalf("alien not detected: %v", rep)
		}
		checkRepairTable(t, tab, expect)
		if _, ok := tab.Lookup(alien); ok {
			t.Fatal("alien key became findable")
		}
	})
}

// A corrupted value on one copy of a triple-copy key is outvoted by the
// majority and rewritten.
func TestRepairValueMajority(t *testing.T) {
	repairMatrix(t, 0.40, func(t *testing.T, tab repairTable, expect map[uint64]uint64) {
		copies := map[uint64]int{}
		for i := 0; i < tab.FaultNumCells(); i++ {
			k := tab.FaultCellKey(i)
			if k != 0 && tab.FaultCounter(i) != 0 && tab.FaultCellIsCandidate(k, i) {
				copies[k]++
			}
		}
		target := -1
		for i := 0; i < tab.FaultNumCells(); i++ {
			k := tab.FaultCellKey(i)
			if k != 0 && tab.FaultCounter(i) != 0 && tab.FaultCellIsCandidate(k, i) && copies[k] >= 3 {
				target = i
				break
			}
		}
		if target < 0 {
			t.Skip("no triple-copy key at this load")
		}
		tab.FaultSetCellValue(target, tab.FaultCellValue(target)^0x5555)
		rep := tab.Repair()
		if rep.ValuesFixed == 0 {
			t.Fatalf("diverged value not fixed: %v", rep)
		}
		checkRepairTable(t, tab, expect)
	})
}

// Deletion rollback, the documented limitation: a deleted key whose counter
// is corrupted back to non-free is resurrected with its pre-deletion value.
func TestRepairResurrection(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 64, Seed: 21, MaxLoop: 100, StashEnabled: true})
	keys := fillKeys(22, 60)
	for _, k := range keys {
		tab.Insert(k, k+5)
	}
	victim := keys[7]
	// Find one of the victim's stored copies before deleting it.
	cell := -1
	for i := 0; i < tab.FaultNumCells(); i++ {
		if tab.FaultCellKey(i) == victim && tab.FaultCellIsCandidate(victim, i) {
			cell = i
			break
		}
	}
	if cell < 0 {
		t.Fatal("victim has no stored copy")
	}
	if !tab.Delete(victim) {
		t.Fatal("delete failed")
	}
	if _, ok := tab.Lookup(victim); ok {
		t.Fatal("victim still findable after delete")
	}
	// SRAM fault: the freed counter flips back to non-free.
	tab.FaultSetCounter(cell, 1)
	tab.Repair()
	if err := tab.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if v, ok := tab.Lookup(victim); !ok || v != victim+5 {
		t.Fatalf("resurrected key = (%d,%v), want pre-deletion value %d", v, ok, victim+5)
	}
}

// On a table that has deleted, a key whose every counter is zeroed is
// indistinguishable from a deleted key and stays dead — while every other
// key survives.
func TestRepairZeroedCountersStayDeadAfterDeletion(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 64, Seed: 23, MaxLoop: 100, StashEnabled: true})
	keys := fillKeys(24, 60)
	for _, k := range keys {
		tab.Insert(k, k+5)
	}
	tab.Delete(keys[0]) // any deletion flips the table's liveness rule
	victim := keys[9]
	for i := 0; i < tab.FaultNumCells(); i++ {
		if tab.FaultCellKey(i) == victim && tab.FaultCellIsCandidate(victim, i) {
			tab.FaultSetCounter(i, 0)
		}
	}
	tab.Repair()
	if err := tab.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if _, ok := tab.Lookup(victim); ok {
		t.Fatal("key with fully zeroed counters survived on a deleted table")
	}
	for _, k := range keys[10:] {
		if v, ok := tab.Lookup(k); !ok || v != k+5 {
			t.Fatalf("unrelated key %#x damaged by repair: (%d,%v)", k, v, ok)
		}
	}
}

// Repair resynchronizes stash flags: cleared flags (stashed items invisible
// to lookups) come back, spurious flags are dropped.
func TestRepairStashFlagResync(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 64, Seed: 25, MaxLoop: 30, StashEnabled: true})
	keys := fillKeys(26, 200) // way past capacity: guarantees stash entries
	expect := map[uint64]uint64{}
	for _, k := range keys {
		if tab.Insert(k, k^9).Status != kv.Failed {
			expect[k] = k ^ 9
		}
	}
	if tab.StashLen() == 0 {
		t.Fatal("test needs stash entries")
	}
	for i := 0; i < tab.FaultNumFlags(); i++ {
		tab.FaultSetFlag(i, i%2 == 0) // half spurious, half cleared
	}
	rep := tab.Repair()
	if rep.FlagsFixed == 0 {
		t.Fatalf("flag corruption not fixed: %v", rep)
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	for k, v := range expect {
		if got, ok := tab.Lookup(k); !ok || got != v {
			t.Fatalf("key %#x after flag resync: (%d,%v)", k, got, ok)
		}
	}
	if rep2 := tab.Repair(); rep2.Any() {
		t.Fatalf("second repair not a no-op: %v", rep2)
	}
}

// Repair on tables with deletion churn keeps all still-live keys intact and
// leaves a table that repairs to itself.
func TestRepairAfterChurnNoOp(t *testing.T) {
	for _, mode := range []DeletionMode{ResetCounters, Tombstone} {
		tab := mustNew(t, Config{BucketsPerTable: 128, Seed: 27, MaxLoop: 100,
			StashEnabled: true, Deletion: mode})
		keys := fillKeys(28, 300)
		for _, k := range keys {
			tab.Insert(k, k)
		}
		for _, k := range keys[:150] {
			tab.Delete(k)
		}
		for _, k := range keys[:75] {
			tab.Insert(k, k*3)
		}
		rep := tab.Repair()
		// Stash flags may legitimately resync (deletion leaves stale Bloom
		// bits); nothing else may change on a consistent table.
		if rep.CountersFixed != 0 || rep.AliensCleared != 0 || rep.ValuesFixed != 0 ||
			rep.StashDropped != 0 || rep.SizeBefore != rep.SizeAfter {
			t.Fatalf("mode %v: churned-but-consistent table changed: %v", mode, rep)
		}
		if err := tab.CheckInvariants(); err != nil {
			t.Fatalf("mode %v: invariants: %v", mode, err)
		}
		for _, k := range keys[:75] {
			if v, ok := tab.Lookup(k); !ok || v != k*3 {
				t.Fatalf("mode %v: reinserted key %#x = (%d,%v)", mode, k, v, ok)
			}
		}
		for _, k := range keys[75:150] {
			if _, ok := tab.Lookup(k); ok {
				t.Fatalf("mode %v: deleted key %#x resurrected by repair", mode, k)
			}
		}
		if rep2 := tab.Repair(); rep2.Any() {
			t.Fatalf("mode %v: second repair not a no-op: %v", mode, rep2)
		}
	}
}
