package core

// Fault-injection port: raw accessors over the on-chip and off-chip state
// that deliberately bypass every invariant. They exist solely for
// internal/faultinject and the fault-matrix tests, which corrupt a table and
// then assert that Repair heals it (or that Load rejects it). Production
// code paths never call them; the package is internal, so they are invisible
// to library users.
//
// Index spaces: cells are the flat key/value slot indexes (table*n+bucket
// for single-slot tables, (table*n+bucket)*l+slot for blocked ones);
// counters share the cell index space; flags are per *bucket*, so for
// blocked tables flag index = cell/l.

// FaultNumCounters returns the number of on-chip copy counters.
func (t *Table) FaultNumCounters() int { return t.counters.Len() }

// FaultCounter reads counter i raw.
func (t *Table) FaultCounter(i int) uint64 { return t.counters.Get(i) }

// FaultSetCounter overwrites counter i, invariants be damned — this is
// the sanctioned corruption surface for the fault matrix.
//
//mcvet:setter counters
func (t *Table) FaultSetCounter(i int, v uint64) { t.counters.Set(i, v) }

// FaultCounterMax returns the largest value a counter field can hold.
func (t *Table) FaultCounterMax() uint64 { return t.counters.Max() }

// FaultNumFlags returns the number of stash pre-screen flags.
func (t *Table) FaultNumFlags() int { return t.flags.Len() }

// FaultFlag reads stash flag i.
func (t *Table) FaultFlag(i int) bool { return t.flags.Get(i) }

// FaultSetFlag forces stash flag i (sanctioned corruption surface).
//
//mcvet:setter flags
func (t *Table) FaultSetFlag(i int, set bool) {
	if set {
		t.flags.Set(i)
	} else {
		t.flags.Clear(i)
	}
}

// FaultNumCells returns the number of key/value cells.
func (t *Table) FaultNumCells() int { return len(t.cells) }

// FaultCellKey reads the key stored in cell i.
func (t *Table) FaultCellKey(i int) uint64 { return t.cells[i].Key }

// FaultSetCellKey overwrites the key stored in cell i (off-chip corruption).
func (t *Table) FaultSetCellKey(i int, key uint64) { t.cells[i].Key = key }

// FaultCellValue reads the value stored in cell i.
func (t *Table) FaultCellValue(i int) uint64 { return t.cells[i].Value }

// FaultSetCellValue overwrites the value stored in cell i.
func (t *Table) FaultSetCellValue(i int, v uint64) { t.cells[i].Value = v }

// FaultCellIsCandidate reports whether cell is one of key's d candidate
// positions.
func (t *Table) FaultCellIsCandidate(key uint64, cell int) bool {
	n := t.cfg.BucketsPerTable
	return t.family.Index(cell/n, key) == cell%n
}

// FaultTombstoneValue returns the tombstone counter value, 0 when tombstones
// are disabled.
func (t *Table) FaultTombstoneValue() uint64 { return t.tombstoneVal }

// FaultArity returns the hash-function count d.
func (t *Table) FaultArity() int { return t.cfg.D }

// FaultNumCounters returns the number of on-chip copy counters (one per
// slot).
func (t *BlockedTable) FaultNumCounters() int { return t.counters.Len() }

// FaultCounter reads counter i raw.
func (t *BlockedTable) FaultCounter(i int) uint64 { return t.counters.Get(i) }

// FaultSetCounter overwrites counter i, invariants be damned — the
// sanctioned corruption surface for the fault matrix.
//
//mcvet:setter counters
func (t *BlockedTable) FaultSetCounter(i int, v uint64) { t.counters.Set(i, v) }

// FaultCounterMax returns the largest value a counter field can hold.
func (t *BlockedTable) FaultCounterMax() uint64 { return t.counters.Max() }

// FaultNumFlags returns the number of stash pre-screen flags (one per
// bucket).
func (t *BlockedTable) FaultNumFlags() int { return t.flags.Len() }

// FaultFlag reads stash flag i.
func (t *BlockedTable) FaultFlag(i int) bool { return t.flags.Get(i) }

// FaultSetFlag forces stash flag i (sanctioned corruption surface).
//
//mcvet:setter flags
func (t *BlockedTable) FaultSetFlag(i int, set bool) {
	if set {
		t.flags.Set(i)
	} else {
		t.flags.Clear(i)
	}
}

// FaultNumCells returns the number of key/value cells (slots).
func (t *BlockedTable) FaultNumCells() int { return len(t.keys) }

// FaultCellKey reads the key stored in cell i.
func (t *BlockedTable) FaultCellKey(i int) uint64 { return t.keys[i] }

// FaultSetCellKey overwrites the key stored in cell i.
func (t *BlockedTable) FaultSetCellKey(i int, key uint64) { t.keys[i] = key }

// FaultCellValue reads the value stored in cell i.
func (t *BlockedTable) FaultCellValue(i int) uint64 { return t.vals[i] }

// FaultSetCellValue overwrites the value stored in cell i.
func (t *BlockedTable) FaultSetCellValue(i int, v uint64) { t.vals[i] = v }

// FaultCellIsCandidate reports whether cell lies in one of key's d candidate
// buckets (any slot of a candidate bucket qualifies).
func (t *BlockedTable) FaultCellIsCandidate(key uint64, cell int) bool {
	n, l := t.cfg.BucketsPerTable, t.cfg.Slots
	bucket := cell / l
	return t.family.Index(bucket/n, key) == bucket%n
}

// FaultTombstoneValue returns the tombstone counter value, 0 when tombstones
// are disabled.
func (t *BlockedTable) FaultTombstoneValue() uint64 { return t.tombstoneVal }

// FaultArity returns the hash-function count d.
func (t *BlockedTable) FaultArity() int { return t.cfg.D }
