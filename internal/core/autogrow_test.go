package core

import (
	"bytes"
	"testing"

	"mccuckoo/internal/kv"
)

// overfill inserts keys until well past the table's original capacity,
// returning the content map of everything that was accepted.
func overfill(t *testing.T, tab kv.Table, seed uint64, n int) map[uint64]uint64 {
	t.Helper()
	expect := make(map[uint64]uint64, n)
	for _, k := range fillKeys(seed, n) {
		if tab.Insert(k, k+17).Status != kv.Failed {
			expect[k] = k + 17
		}
	}
	return expect
}

// An auto-grow table absorbs a workload far past its initial capacity: the
// stash pressure triggers growth instead of piling up.
func TestAutoGrowSingle(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 32, Seed: 41, MaxLoop: 50,
		StashEnabled: true,
		AutoGrow:     AutoGrowPolicy{Enabled: true, StashThreshold: 4}})
	before := tab.Capacity()
	expect := overfill(t, tab, 42, 4*before)
	if tab.Capacity() <= before {
		t.Fatalf("capacity did not grow: %d", tab.Capacity())
	}
	if tab.StashLen() > 4 {
		t.Fatalf("stash above threshold after auto-grow: %d", tab.StashLen())
	}
	st := tab.Stats()
	if st.GrowAttempts == 0 || st.Grows == 0 {
		t.Fatalf("grow stats not recorded: %+v", st)
	}
	for k, v := range expect {
		if got, ok := tab.Lookup(k); !ok || got != v {
			t.Fatalf("key %#x after auto-grow: (%d,%v)", k, got, ok)
		}
	}
	checkInv(t, tab)
}

func TestAutoGrowBlocked(t *testing.T) {
	tab := mustNewBlocked(t, Config{BucketsPerTable: 8, Seed: 43, MaxLoop: 50,
		StashEnabled: true,
		AutoGrow:     AutoGrowPolicy{Enabled: true, StashThreshold: 2}})
	before := tab.Capacity()
	expect := overfill(t, tab, 44, 4*before)
	if tab.Capacity() <= before {
		t.Fatalf("capacity did not grow: %d", tab.Capacity())
	}
	if st := tab.Stats(); st.Grows == 0 {
		t.Fatalf("grow stats not recorded: %+v", st)
	}
	for k, v := range expect {
		if got, ok := tab.Lookup(k); !ok || got != v {
			t.Fatalf("key %#x after auto-grow: (%d,%v)", k, got, ok)
		}
	}
	checkBlockedInv(t, tab)
}

// Without the policy, the same workload must leave capacity untouched.
func TestNoAutoGrowByDefault(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 32, Seed: 45, MaxLoop: 50, StashEnabled: true})
	before := tab.Capacity()
	overfill(t, tab, 46, 2*before)
	if tab.Capacity() != before {
		t.Fatalf("capacity changed without auto-grow: %d -> %d", before, tab.Capacity())
	}
	if st := tab.Stats(); st.GrowAttempts != 0 {
		t.Fatalf("grow attempts without policy: %+v", st)
	}
}

// Auto-grow needs somewhere to put the overflow that triggers it.
func TestAutoGrowRequiresStash(t *testing.T) {
	_, err := New(Config{BucketsPerTable: 32, Seed: 47,
		AutoGrow: AutoGrowPolicy{Enabled: true}})
	if err == nil {
		t.Fatal("auto-grow without a stash accepted")
	}
}

// Policy validation: a shrink factor or a shrinking backoff is rejected.
func TestAutoGrowPolicyValidation(t *testing.T) {
	bads := []AutoGrowPolicy{
		{Enabled: true, Factor: 0.5},
		{Enabled: true, Backoff: 0.5},
		{Enabled: true, StashThreshold: -1},
		{Enabled: true, MaxAttempts: -2},
	}
	for i, p := range bads {
		if _, err := New(Config{BucketsPerTable: 32, Seed: 48, StashEnabled: true,
			AutoGrow: p}); err == nil {
			t.Errorf("bad policy %d accepted: %+v", i, p)
		}
	}
}

// The auto-grow policy survives a snapshot round trip and keeps firing on
// the restored table.
func TestAutoGrowSnapshotRoundTrip(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 32, Seed: 49, MaxLoop: 50,
		StashEnabled: true,
		AutoGrow:     AutoGrowPolicy{Enabled: true, StashThreshold: 3, Factor: 3, MaxAttempts: 2, Backoff: 2}})
	for _, k := range fillKeys(50, 40) {
		tab.Insert(k, k)
	}
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.cfg.AutoGrow != tab.cfg.AutoGrow {
		t.Fatalf("policy not preserved: %+v vs %+v", got.cfg.AutoGrow, tab.cfg.AutoGrow)
	}
	before := got.Capacity()
	overfill(t, got, 51, 4*before)
	if got.Capacity() <= before {
		t.Fatal("restored table does not auto-grow")
	}
	checkInv(t, got)
}

// Grow with a populated stash drains it back into the larger table.
func TestGrowWithPopulatedStash(t *testing.T) {
	for _, mode := range []DeletionMode{ResetCounters, Tombstone} {
		tab := mustNew(t, Config{BucketsPerTable: 48, Seed: 52, MaxLoop: 30,
			StashEnabled: true, Deletion: mode})
		expect := overfill(t, tab, 53, tab.Capacity()+tab.Capacity()/4)
		if tab.StashLen() == 0 {
			t.Fatal("test needs stash pressure")
		}
		if err := tab.Grow(2.0); err != nil {
			t.Fatalf("mode %v: Grow: %v", mode, err)
		}
		if tab.StashLen() != 0 {
			t.Fatalf("mode %v: stash not drained by 2x grow: %d", mode, tab.StashLen())
		}
		for k, v := range expect {
			if got, ok := tab.Lookup(k); !ok || got != v {
				t.Fatalf("mode %v: key %#x after grow: (%d,%v)", mode, k, got, ok)
			}
		}
		checkInv(t, tab)
	}
}

func TestBlockedGrowWithPopulatedStash(t *testing.T) {
	tab := mustNewBlocked(t, Config{BucketsPerTable: 16, Seed: 54, MaxLoop: 30,
		StashEnabled: true})
	expect := overfill(t, tab, 55, tab.Capacity()+tab.Capacity()/4)
	if tab.StashLen() == 0 {
		t.Fatal("test needs stash pressure")
	}
	if err := tab.Grow(2.0); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if tab.StashLen() != 0 {
		t.Fatalf("stash not drained by 2x grow: %d", tab.StashLen())
	}
	for k, v := range expect {
		if got, ok := tab.Lookup(k); !ok || got != v {
			t.Fatalf("key %#x after grow: (%d,%v)", k, got, ok)
		}
	}
	checkBlockedInv(t, tab)
}
