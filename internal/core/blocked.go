package core

import (
	"fmt"
	"math/rand/v2"

	"mccuckoo/internal/bitpack"
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/memmodel"
	"mccuckoo/internal/stash"
)

// noSlot marks an absent copy in a slot-hint entry.
const noSlot = int8(-1)

// BlockedTable is the multi-slot McCuckoo (B-McCuckoo): d hash functions,
// l slots per bucket, one on-chip counter per slot (Fig. 5). Reading a
// bucket fetches all its slots in one off-chip access; writing updates one
// slot.
//
// Each stored copy carries slot hints: for every other subtable, the slot
// index its sibling copy occupies there ((d-1)·log2(l) bits per slot in the
// paper). Hints let the table update a victim's surviving copies without
// searching their buckets; overwrites therefore also rewrite the survivors'
// hint fields (off-chip writes, counted — see DESIGN.md §6).
type BlockedTable struct {
	cfg    Config
	family *hashutil.Family
	meter  memmodel.Meter
	rng    *rand.Rand

	// Flat slot storage: index = (table*n + bucket)*l + slot.
	keys  []uint64
	vals  []uint64
	hints [][4]int8 // hints[idx][j] = slot of the copy in subtable j, noSlot if none

	// counters holds one entry per slot; flags one bit per *bucket*
	// (pre-screening is done at bucket level, §III.G). Both carry the
	// same write discipline as the single-slot table's arrays.
	//
	//mcvet:restricted counters
	counters     *bitpack.Counters
	tombstoneVal uint64
	//mcvet:restricted flags
	flags *bitpack.Bitset
	// kickCounts backs the MinCounter resolver, one per bucket.
	//
	//mcvet:restricted kickcounts
	kickCounts *bitpack.Counters

	overflow   *stash.Stash
	deletedAny bool

	size            int
	copiesTotal     int
	redundantWrites int64
	stats           kv.Stats
	// growing guards the auto-grow policy against re-entry while Grow's
	// own reinsertions stash items.
	growing bool
}

// NewBlocked creates a blocked McCuckoo table. cfg.Slots defaults to 3.
//
//mcvet:setter counters flags kickcounts
func NewBlocked(cfg Config) (*BlockedTable, error) {
	if err := cfg.normalize(true); err != nil {
		return nil, err
	}
	family, err := newFamily(cfg)
	if err != nil {
		return nil, err
	}
	slots := cfg.D * cfg.BucketsPerTable * cfg.Slots
	counters, err := bitpack.NewCounters(slots, cfg.counterWidth())
	if err != nil {
		return nil, err
	}
	flags, err := bitpack.NewBitset(cfg.D * cfg.BucketsPerTable)
	if err != nil {
		return nil, err
	}
	t := &BlockedTable{
		cfg:      cfg,
		family:   family,
		rng:      rand.New(rand.NewPCG(cfg.Seed, hashutil.Mix64(cfg.Seed+3))),
		keys:     make([]uint64, slots),
		vals:     make([]uint64, slots),
		hints:    make([][4]int8, slots),
		counters: counters,
		flags:    flags,
	}
	for i := range t.hints {
		t.hints[i] = [4]int8{noSlot, noSlot, noSlot, noSlot}
	}
	if cfg.Deletion == Tombstone {
		t.tombstoneVal = uint64(cfg.D) + 1
	}
	if cfg.Policy == kv.MinCounter {
		t.kickCounts, err = bitpack.NewCounters(cfg.D*cfg.BucketsPerTable, 5)
		if err != nil {
			return nil, err
		}
	}
	if cfg.StashEnabled {
		t.overflow, err = stash.New(4, cfg.StashMax, cfg.Seed, &t.meter)
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// slotIndex returns the flat index of (table, bucket, slot).
//
//mcvet:hotpath
func (t *BlockedTable) slotIndex(table, bucket, slot int) int {
	return (table*t.cfg.BucketsPerTable+bucket)*t.cfg.Slots + slot
}

// bucketFlagIndex returns the flat per-bucket flag index.
//
//mcvet:hotpath
func (t *BlockedTable) bucketFlagIndex(table, bucket int) int {
	return table*t.cfg.BucketsPerTable + bucket
}

// bucketCounters reads the l counters of one candidate bucket, charging a
// single on-chip access (the counters of a bucket are co-located in one
// SRAM word).
//
//mcvet:hotpath
func (t *BlockedTable) bucketCounters(table, bucket int, dst []uint64) {
	t.meter.ReadOn(1)
	base := t.slotIndex(table, bucket, 0)
	for s := 0; s < t.cfg.Slots; s++ {
		dst[s] = t.counters.Get(base + s)
	}
}

// setSlotCounter writes one slot counter, charging the on-chip access.
//
//mcvet:hotpath
//mcvet:setter counters
func (t *BlockedTable) setSlotCounter(table, bucket, slot int, v uint64) {
	t.meter.WriteOn(1)
	t.counters.Set(t.slotIndex(table, bucket, slot), v)
}

//mcvet:hotpath
func (t *BlockedTable) isFree(counter uint64) bool {
	return counter == 0 || (t.tombstoneVal != 0 && counter == t.tombstoneVal)
}

// readBucketAccess charges one off-chip read for fetching a whole bucket
// (all slots plus the stash flag).
//
//mcvet:hotpath
func (t *BlockedTable) readBucketAccess(table, bucket int) (flag bool) {
	t.meter.ReadOff(1)
	return t.flags.Get(t.bucketFlagIndex(table, bucket))
}

// writeSlot stores an entry with hints into one slot, charging one off-chip
// write.
//
//mcvet:hotpath
func (t *BlockedTable) writeSlot(idx int, e kv.Entry, hints [4]int8) {
	t.meter.WriteOff(1)
	t.keys[idx] = e.Key
	t.vals[idx] = e.Value
	t.hints[idx] = hints
}

// setStashFlag raises the bucket-level stash flag fi, charging the off-chip
// write only on an actual 0→1 transition; the sanctioned flags mutation on
// the insert side.
//
//mcvet:hotpath
//mcvet:setter flags
func (t *BlockedTable) setStashFlag(fi int) {
	if !t.flags.Get(fi) {
		t.flags.Set(fi)
		t.meter.WriteOff(1)
	}
}

// clearStashFlag lowers the bucket-level stash flag fi, charging the
// off-chip write only on an actual 1→0 transition. Restricted to refresh
// and rebuild paths: premature clears create stash false negatives.
//
//mcvet:setter flags
func (t *BlockedTable) clearStashFlag(fi int) {
	if t.flags.Get(fi) {
		t.flags.Clear(fi)
		t.meter.WriteOff(1)
	}
}

// Len returns the number of distinct live items, stash included.
func (t *BlockedTable) Len() int { return t.size + t.StashLen() }

// Capacity returns the total number of slots.
func (t *BlockedTable) Capacity() int { return t.cfg.D * t.cfg.BucketsPerTable * t.cfg.Slots }

// LoadRatio returns distinct items over total slots.
func (t *BlockedTable) LoadRatio() float64 { return float64(t.Len()) / float64(t.Capacity()) }

// Meter exposes the memory-traffic counters.
func (t *BlockedTable) Meter() *memmodel.Meter { return &t.meter }

// Stats exposes lifetime operation counts.
func (t *BlockedTable) Stats() kv.Stats { return t.stats }

// StashLen returns the current stash population.
func (t *BlockedTable) StashLen() int {
	if t.overflow == nil {
		return 0
	}
	return t.overflow.Len()
}

// Copies returns the number of live physical copies in the main table.
func (t *BlockedTable) Copies() int { return t.copiesTotal }

// RedundantWrites returns the lifetime count of proactive redundant copy
// writes.
func (t *BlockedTable) RedundantWrites() int64 { return t.redundantWrites }

// OnChipBytes returns the size of the on-chip counter array.
func (t *BlockedTable) OnChipBytes() int { return t.counters.SizeBytes() }

// Insert stores key/value following Algorithm 1: occupy one free slot in
// every candidate bucket, then overwrite slots whose items keep a two-copy
// lead, in decreasing counter order; when all d·l candidate slot counters
// are 1, fall back to the counter-guided random walk.
//
//mcvet:hotpath
func (t *BlockedTable) Insert(key, value uint64) kv.Outcome {
	t.stats.Inserts++
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])

	if !t.cfg.AssumeUniqueKeys {
		if out, done := t.updateExisting(key, value, cand[:t.cfg.D]); done {
			return out
		}
	}
	if copies := t.place(kv.Entry{Key: key, Value: value}, cand[:t.cfg.D]); copies > 0 {
		t.size++
		return kv.Outcome{Status: kv.Placed}
	}
	return t.resolveCollision(kv.Entry{Key: key, Value: value}, cand[:t.cfg.D])
}

// updateExisting updates all copies of an existing key in place.
//
//mcvet:hotpath
func (t *BlockedTable) updateExisting(key, value uint64, cand []int) (kv.Outcome, bool) {
	if st := t.scanBuckets(key, cand); st.foundTable >= 0 {
		table, slot := st.foundTable, st.foundSlot
		idx := t.slotIndex(table, cand[table], slot)
		hints := t.hints[idx]
		hints[table] = int8(slot)
		for j := 0; j < t.cfg.D; j++ {
			if hints[j] == noSlot {
				continue
			}
			jidx := t.slotIndex(j, cand[j], int(hints[j]))
			t.vals[jidx] = value
			t.meter.WriteOff(1)
		}
		t.stats.Updates++
		return kv.Outcome{Status: kv.Updated}, true
	}
	if t.overflow != nil && t.overflow.Len() > 0 {
		if _, ok := t.overflow.Lookup(key); ok {
			t.overflow.Insert(key, value)
			t.stats.Updates++
			return kv.Outcome{Status: kv.Updated}, true
		}
	}
	return kv.Outcome{}, false
}

// place applies the insertion principles at slot granularity. Returns the
// number of copies placed, 0 on a real collision. As in the single-slot
// table, taken slots get their counters set to the running copy count
// immediately so they can never be mistaken for overwritable victims.
//
//mcvet:hotpath
func (t *BlockedTable) place(e kv.Entry, cand []int) int {
	d, l := t.cfg.D, t.cfg.Slots
	var ownedSlot [hashutil.MaxD]int8
	for i := range ownedSlot {
		ownedSlot[i] = noSlot
	}
	copies := 0
	var cnt [8]uint64

	// Pass 1: one free slot per candidate bucket.
	for i := 0; i < d; i++ {
		t.bucketCounters(i, cand[i], cnt[:l])
		for s := 0; s < l; s++ {
			if t.isFree(cnt[s]) {
				copies++
				ownedSlot[i] = int8(s)
				t.setSlotCounter(i, cand[i], s, uint64(copies))
				break
			}
		}
	}

	// Pass 2: overwrite redundant copies while the victim keeps a
	// two-copy lead, scanning for the currently largest slot counter
	// among buckets we do not own yet (fresh reads each round: an
	// earlier overwrite may have decremented a later candidate).
	for {
		bestTable, bestSlot, bestV := -1, -1, uint64(0)
		for i := 0; i < d; i++ {
			if ownedSlot[i] != noSlot {
				continue
			}
			t.bucketCounters(i, cand[i], cnt[:l])
			for s := 0; s < l; s++ {
				if v := cnt[s]; !t.isFree(v) && v > bestV {
					bestTable, bestSlot, bestV = i, s, v
				}
			}
		}
		if bestTable < 0 || bestV < uint64(copies)+2 {
			break
		}
		t.overwriteVictim(bestTable, cand[bestTable], bestSlot, bestV)
		copies++
		ownedSlot[bestTable] = int8(bestSlot)
		t.setSlotCounter(bestTable, cand[bestTable], bestSlot, uint64(copies))
	}

	if copies == 0 {
		return 0
	}
	t.commitPlacement(e, cand, ownedSlot[:d], copies)
	return copies
}

// commitPlacement writes the item's copies with mutual slot hints and
// raises their counters to the final copy count.
//
//mcvet:hotpath
func (t *BlockedTable) commitPlacement(e kv.Entry, cand []int, ownedSlot []int8, copies int) {
	var hints [4]int8
	for i := range hints {
		hints[i] = noSlot
	}
	for i, s := range ownedSlot {
		if s != noSlot {
			hints[i] = s
		}
	}
	for i, s := range ownedSlot {
		if s == noSlot {
			continue
		}
		t.writeSlot(t.slotIndex(i, cand[i], int(s)), e, hints)
		t.setSlotCounter(i, cand[i], int(s), uint64(copies))
	}
	t.copiesTotal += copies
	t.redundantWrites += int64(copies - 1)
}

// overwriteVictim evicts the redundant copy in (table, bucket, slot) whose
// item has v copies: the victim's surviving copies (located via the stored
// hints, one bucket read to fetch them) get decremented counters and their
// hint entry for this subtable cleared (one off-chip write each).
//
//mcvet:hotpath
func (t *BlockedTable) overwriteVictim(table, bucket, slot int, v uint64) {
	t.readBucketAccess(table, bucket)
	idx := t.slotIndex(table, bucket, slot)
	victimKey := t.keys[idx]
	hints := t.hints[idx]

	var vcand [hashutil.MaxD]int
	t.family.Indexes(victimKey, vcand[:])
	survivors := 0
	for j := 0; j < t.cfg.D; j++ {
		if j == table || hints[j] == noSlot {
			continue
		}
		jSlot := int(hints[j])
		jidx := t.slotIndex(j, vcand[j], jSlot)
		if t.keys[jidx] != victimKey {
			panic(fmt.Sprintf("core: stale hint: victim %#x not at (%d,%d,%d)", victimKey, j, vcand[j], jSlot))
		}
		t.setSlotCounter(j, vcand[j], jSlot, v-1)
		// Hint fix-up: the survivor no longer has a sibling here.
		t.hints[jidx][table] = noSlot
		t.meter.WriteOff(1)
		survivors++
	}
	if survivors != int(v)-1 {
		panic(fmt.Sprintf("core: victim %#x with counter %d had %d survivors", victimKey, v, survivors))
	}
	t.copiesTotal--
}

// resolveCollision runs the random walk at slot granularity.
//
//mcvet:hotpath
func (t *BlockedTable) resolveCollision(e kv.Entry, cand []int) kv.Outcome {
	cur := e
	var curCand [hashutil.MaxD]int
	copy(curCand[:], cand)
	prevTable := -1
	kicks := 0
	for {
		if kicks >= t.cfg.MaxLoop {
			t.stats.Kicks += int64(kicks)
			return t.overflowInsert(cur, curCand[:t.cfg.D], kicks)
		}
		r := t.pickVictimBucket(curCand[:t.cfg.D], prevTable)
		s := t.rng.IntN(t.cfg.Slots)
		t.readBucketAccess(r, curCand[r])
		idx := t.slotIndex(r, curCand[r], s)
		victim := kv.Entry{Key: t.keys[idx], Value: t.vals[idx]}
		// Victims in a real collision are sole copies (all candidate
		// slot counters are 1), so no sibling bookkeeping is needed.
		var hints [4]int8
		for i := range hints {
			hints[i] = noSlot
		}
		hints[r] = int8(s)
		t.writeSlot(idx, cur, hints)
		kicks++
		cur = victim
		prevTable = r
		t.family.Indexes(cur.Key, curCand[:])
		if copies := t.place(cur, curCand[:t.cfg.D]); copies > 0 {
			t.size++
			t.stats.Kicks += int64(kicks)
			return kv.Outcome{Status: kv.Placed, Kicks: kicks}
		}
	}
}

// pickVictimBucket chooses the candidate bucket to evict from during the
// random walk, honouring the configured kick policy.
//
//mcvet:hotpath
//mcvet:setter kickcounts
func (t *BlockedTable) pickVictimBucket(cand []int, prevTable int) int {
	if t.kickCounts != nil {
		best, bestCount := -1, uint64(1<<62)
		for i := range cand {
			if i == prevTable {
				continue
			}
			t.meter.ReadOn(1)
			c := t.kickCounts.Get(t.bucketFlagIndex(i, cand[i]))
			if c < bestCount || (c == bestCount && t.rng.IntN(2) == 0) {
				best, bestCount = i, c
			}
		}
		bi := t.bucketFlagIndex(best, cand[best])
		if v := t.kickCounts.Get(bi); v < t.kickCounts.Max() {
			t.kickCounts.Set(bi, v+1)
			t.meter.WriteOn(1)
		}
		return best
	}
	for {
		i := t.rng.IntN(t.cfg.D)
		if i != prevTable {
			return i
		}
	}
}

// overflowInsert stores the unplaceable item into the stash and sets the
// bucket-level stash flags of its candidates.
func (t *BlockedTable) overflowInsert(cur kv.Entry, cand []int, kicks int) kv.Outcome {
	if t.overflow == nil || !t.overflow.Insert(cur.Key, cur.Value) {
		t.stats.Failures++
		return kv.Outcome{Status: kv.Failed, Kicks: kicks}
	}
	for i := 0; i < t.cfg.D; i++ {
		t.setStashFlag(t.bucketFlagIndex(i, cand[i]))
	}
	t.stats.Stashed++
	t.maybeAutoGrow()
	return kv.Outcome{Status: kv.Stashed, Kicks: kicks}
}

// blockedScan carries what a candidate-bucket scan learned, for the stash
// pre-screen.
type blockedScan struct {
	foundTable int
	foundSlot  int
	readAny    bool
	flagAnd    bool
	earlyMiss  bool // an all-zero bucket proved the key was never inserted
}

//mcvet:hotpath
func (t *BlockedTable) rule1Active() bool {
	return t.cfg.Deletion == Tombstone || !t.deletedAny
}

// scanBuckets implements Algorithm 2's main-table walk: a candidate bucket
// whose counters are all free is skipped without an off-chip access (and,
// when all-zero with rule 1 active, proves a definite miss); every other
// candidate bucket is read once and its slots searched.
//
//mcvet:hotpath
func (t *BlockedTable) scanBuckets(key uint64, cand []int) blockedScan {
	st := blockedScan{foundTable: -1, flagAnd: true}
	d, l := t.cfg.D, t.cfg.Slots
	var cnt [8]uint64
	for i := 0; i < d; i++ {
		t.bucketCounters(i, cand[i], cnt[:l])
		live := false
		allZero := true
		for s := 0; s < l; s++ {
			if !t.isFree(cnt[s]) {
				live = true
			}
			if cnt[s] != 0 {
				allZero = false
			}
		}
		if !live {
			if allZero && t.rule1Active() {
				st.earlyMiss = true
				return st
			}
			continue
		}
		flag := t.readBucketAccess(i, cand[i])
		st.readAny = true
		st.flagAnd = st.flagAnd && flag
		base := t.slotIndex(i, cand[i], 0)
		for s := 0; s < l; s++ {
			if !t.isFree(cnt[s]) && t.keys[base+s] == key {
				st.foundTable, st.foundSlot = i, s
				return st
			}
		}
	}
	return st
}

// shouldProbeStash applies the blocked pre-screen: an early miss never
// probes; otherwise the stash is consulted only when every flag observed
// during the scan was set (skipped buckets are neglected, §III.F/G).
//
//mcvet:hotpath
func (t *BlockedTable) shouldProbeStash(st blockedScan) bool {
	if t.overflow == nil || t.overflow.Len() == 0 {
		return false
	}
	if st.earlyMiss {
		return false
	}
	return st.flagAnd
}

// Lookup returns the value stored for key.
//
//mcvet:hotpath
func (t *BlockedTable) Lookup(key uint64) (uint64, bool) {
	t.stats.Lookups++
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])
	st := t.scanBuckets(key, cand[:t.cfg.D])
	if st.foundTable >= 0 {
		t.stats.Hits++
		return t.vals[t.slotIndex(st.foundTable, cand[st.foundTable], st.foundSlot)], true
	}
	if t.shouldProbeStash(st) {
		t.stats.StashProbe++
		if v, ok := t.overflow.Lookup(key); ok {
			t.stats.Hits++
			return v, true
		}
	}
	return 0, false
}

// Delete removes key (Algorithm 3): the first live copy's slot hints reveal
// every sibling, so all copies are released by resetting their on-chip
// counters — zero off-chip writes.
//
//mcvet:hotpath
func (t *BlockedTable) Delete(key uint64) bool {
	t.stats.Deletes++
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])
	st := t.scanBuckets(key, cand[:t.cfg.D])
	if st.foundTable >= 0 {
		idx := t.slotIndex(st.foundTable, cand[st.foundTable], st.foundSlot)
		hints := t.hints[idx]
		hints[st.foundTable] = int8(st.foundSlot)
		mark := uint64(0)
		if t.cfg.Deletion == Tombstone {
			mark = t.tombstoneVal
		}
		released := 0
		for j := 0; j < t.cfg.D; j++ {
			if hints[j] == noSlot {
				continue
			}
			t.setSlotCounter(j, cand[j], int(hints[j]), mark)
			released++
		}
		t.copiesTotal -= released
		t.size--
		t.deletedAny = true
		return true
	}
	if t.shouldProbeStash(st) {
		t.stats.StashProbe++
		if t.overflow.Delete(key) {
			t.deletedAny = true
			return true
		}
	}
	return false
}

// RefreshStashFlags clears all stash flags and reinserts the stashed items,
// re-stashing those that still do not fit. It returns how many items moved
// into the main table.
func (t *BlockedTable) RefreshStashFlags() int {
	if t.overflow == nil {
		return 0
	}
	for i := 0; i < t.flags.Len(); i++ {
		t.clearStashFlag(i)
	}
	items := t.overflow.Drain()
	moved := 0
	for _, e := range items {
		var cand [hashutil.MaxD]int
		t.family.Indexes(e.Key, cand[:])
		if copies := t.place(e, cand[:t.cfg.D]); copies > 0 {
			t.size++
			moved++
			continue
		}
		if out := t.resolveCollision(e, cand[:t.cfg.D]); out.Status == kv.Placed {
			moved++
		}
	}
	return moved
}

// reseedRNG re-derives the random-walk generator after a snapshot load.
func (t *BlockedTable) reseedRNG() {
	t.rng = rand.New(rand.NewPCG(t.cfg.Seed, hashutil.Mix64(t.cfg.Seed+uint64(t.size)+3)))
}
