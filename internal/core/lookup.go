package core

import "mccuckoo/internal/hashutil"

// scanState carries what a counter-guided candidate scan learned, which the
// stash pre-screen needs afterwards.
type scanState struct {
	cnt       [hashutil.MaxD]uint64 // counter snapshot
	readMask  uint8                 // candidates read off-chip this scan
	flagAnd   bool                  // AND of the flags of all read buckets
	value     uint64                // value of the found item
	found     int                   // subtable of the first found copy, -1 if none
	foundCnt  uint64                // counter value of the found copy
	earlyMiss bool                  // rule 1 fired: some counter was zero
}

// rule1Active reports whether a zero counter still proves "never inserted":
// always in tombstone mode, and until the first deletion otherwise (§III.F).
//
//mcvet:hotpath
func (t *Table) rule1Active() bool {
	return t.cfg.Deletion == Tombstone || !t.deletedAny
}

// scan applies the lookup principles (§III.B.2) to key's candidates:
//
//  1. any zero counter (when trustworthy) means a definite miss,
//  2. partitions of candidates sharing counter value V with fewer than V
//     members cannot hold the item and are skipped entirely,
//  3. a surviving partition of size S needs at most S-V+1 bucket reads.
//
// Partitions are visited in decreasing counter value: items with more copies
// are found with fewer reads.
//
//mcvet:hotpath
func (t *Table) scan(key uint64, cand []int) scanState {
	st := scanState{found: -1, flagAnd: true}
	d := t.cfg.D
	anyZero := false
	for i := 0; i < d; i++ {
		st.cnt[i] = t.counterAt(i, cand[i])
		if st.cnt[i] == 0 {
			anyZero = true
		}
	}
	if anyZero && t.rule1Active() {
		st.earlyMiss = true
		return st
	}
	for v := uint64(d); v >= 1; v-- {
		var group [hashutil.MaxD]int
		s := 0
		for i := 0; i < d; i++ {
			if st.cnt[i] == v {
				group[s] = i
				s++
			}
		}
		if s == 0 || s < int(v) {
			continue // principle 2: too few members to hold V copies
		}
		budget := s - int(v) + 1 // principle 3
		for k := 0; k < s && budget > 0; k++ {
			i := group[k]
			budget--
			gotKey, flag := t.readBucket(i, cand[i])
			st.readMask |= 1 << uint(i)
			st.flagAnd = st.flagAnd && flag
			if gotKey == key {
				idx := t.bucketIndex(i, cand[i])
				st.value = t.vals[idx]
				st.found = i
				st.foundCnt = v
				return st
			}
		}
	}
	return st
}

// scanAll is the traditional lookup used when the counter pre-screen is
// disabled (§IV.F ablation): read candidates in order until found.
//
//mcvet:hotpath
func (t *Table) scanAll(key uint64, cand []int) scanState {
	st := scanState{found: -1, flagAnd: true}
	for i := 0; i < t.cfg.D; i++ {
		gotKey, flag := t.readBucket(i, cand[i])
		st.readMask |= 1 << uint(i)
		st.flagAnd = st.flagAnd && flag
		// Liveness comes from a valid bit that a counter-less
		// implementation would keep inside the bucket record, so it is
		// read with the bucket at no extra charge.
		if gotKey == key && !t.isFree(t.counters.Get(t.bucketIndex(i, cand[i]))) {
			idx := t.bucketIndex(i, cand[i])
			st.value = t.vals[idx]
			st.found = i
			return st
		}
	}
	return st
}

// shouldProbeStash decides whether a failed main-table scan needs to consult
// the stash (§III.E–F):
//
//   - before any deletion, the counters are authoritative: a stashed item saw
//     all candidates at counter 1 when it overflowed and counters never
//     increase, so anything else skips the stash; the flags (read for free
//     with the buckets) must all be 1 as well;
//   - after deletions, only the flags of the buckets actually read are
//     consulted; skipped buckets are neglected, trading a higher false
//     positive rate for zero false negatives.
//
//mcvet:hotpath
func (t *Table) shouldProbeStash(st scanState) bool {
	if t.overflow == nil || t.overflow.Len() == 0 {
		return false
	}
	if st.earlyMiss {
		return false // zero counter with rule 1 active: never inserted
	}
	if !t.cfg.DisablePrescreen && !t.deletedAny {
		for i := 0; i < t.cfg.D; i++ {
			if st.cnt[i] != 1 {
				return false
			}
		}
		// All counters are 1, so every candidate was read and every
		// flag observed.
		return st.flagAnd
	}
	// Deletions happened (or counters unused): rely on observed flags.
	return st.flagAnd
}

// Lookup returns the value stored for key, checking the stash only when the
// pre-screen cannot rule it out.
//
//mcvet:hotpath
func (t *Table) Lookup(key uint64) (uint64, bool) {
	t.stats.Lookups++
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])

	var st scanState
	if t.cfg.DisablePrescreen {
		st = t.scanAll(key, cand[:t.cfg.D])
	} else {
		st = t.scan(key, cand[:t.cfg.D])
	}
	if st.found >= 0 {
		t.stats.Hits++
		return st.value, true
	}
	if t.shouldProbeStash(st) {
		t.stats.StashProbe++
		if v, ok := t.overflow.Lookup(key); ok {
			t.stats.Hits++
			return v, true
		}
	}
	return 0, false
}

// locateCopies finds every subtable holding a copy of key. It returns the
// scan state (for the stash pre-screen) and the tables of all copies; ok is
// false when key is not in the main table. The returned slice aliases buf,
// the caller's stack-resident backing array — this keeps the per-op hot
// paths (insert-update, delete) allocation-free.
//
// After the first copy is found with counter value V, the deletion principle
// (§III.B.3) continues reading the unread members of the same partition
// until all V copies are found — this read-to-confirm step is why multi-copy
// deletion costs more reads than single-copy deletion in Fig. 14.
//
//mcvet:hotpath
func (t *Table) locateCopies(key uint64, cand []int, buf *[hashutil.MaxD]int) (scanState, []int, bool) {
	st := t.scan(key, cand)
	if st.found < 0 {
		return st, nil, false
	}
	v := st.foundCnt
	tables := append(buf[:0], st.found)
	needed := int(v) - 1
	if needed == 0 {
		return st, tables, true
	}
	// Unread members of the found partition, in table order.
	var rest [hashutil.MaxD]int
	nr := 0
	for i := 0; i < t.cfg.D; i++ {
		if i != st.found && st.cnt[i] == v && st.readMask&(1<<uint(i)) == 0 {
			rest[nr] = i
			nr++
		}
	}
	if nr < needed {
		panic("core: copies of key missing from its partition")
	}
	for k := 0; k < nr && needed > 0; k++ {
		i := rest[k]
		gotKey, flag := t.readBucket(i, cand[i])
		st.readMask |= 1 << uint(i)
		st.flagAnd = st.flagAnd && flag
		if gotKey == key {
			tables = append(tables, i)
			needed--
		}
	}
	if len(tables) != int(v) {
		panic("core: failed to locate all copies of key")
	}
	return st, tables, true
}

// findCopies is locateCopies without the scan state, for callers that only
// need the copy locations. The result aliases buf.
//
//mcvet:hotpath
func (t *Table) findCopies(key uint64, cand []int, buf *[hashutil.MaxD]int) ([]int, bool) {
	_, tables, ok := t.locateCopies(key, cand, buf)
	return tables, ok
}
