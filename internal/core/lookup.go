package core

import "mccuckoo/internal/hashutil"

// scanState carries what a counter-guided candidate scan learned, which the
// stash pre-screen needs afterwards. Stash flags are not captured here: the
// model reads a bucket's flag for free with the bucket, so the pre-screen
// consults the flags of the buckets in readMask lazily (flagsAllSet) — the
// common hit path never touches the flag bitset at all.
type scanState struct {
	cnt       [hashutil.MaxD]uint64 // counter snapshot
	readMask  uint8                 // candidates read off-chip this scan
	value     uint64                // value of the found item
	found     int                   // subtable of the first found copy, -1 if none
	foundCnt  uint64                // counter value of the found copy
	earlyMiss bool                  // rule 1 fired: some counter was zero
}

// rule1Active reports whether a zero counter still proves "never inserted":
// always in tombstone mode, and until the first deletion otherwise (§III.F).
//
//mcvet:hotpath
func (t *Table) rule1Active() bool {
	return t.cfg.Deletion == Tombstone || !t.deletedAny
}

// flagsAllSet reports whether every bucket in mask has its stash flag set.
// The flags were fetched for free with the bucket reads that built mask
// (§III.E), so consulting them afterwards charges nothing.
//
//mcvet:hotpath
func (t *Table) flagsAllSet(cand []int, mask uint8) bool {
	for i := 0; mask != 0; i, mask = i+1, mask>>1 {
		if mask&1 != 0 && !t.flags.Get(t.bucketIndex(i, cand[i])) {
			return false
		}
	}
	return true
}

// scan applies the lookup principles (§III.B.2) to key's candidates:
//
//  1. any zero counter (when trustworthy) means a definite miss,
//  2. partitions of candidates sharing counter value V with fewer than V
//     members cannot hold the item and are skipped entirely,
//  3. a surviving partition of size S needs at most S-V+1 bucket reads.
//
// Partitions are visited in decreasing counter value: items with more copies
// are found with fewer reads.
//
// The walk is batch-probed: all d candidate cells are touched up front, so
// their (cache-missing) loads issue independently instead of serializing
// behind the counter examination and each key compare. The meter is then
// charged with what the sequential walk would have read — reads stop at the
// matching bucket, skipped partitions charge nothing — keeping access counts
// and readMask identical to the paper's algorithm; the extra touches are
// speculation the model's wide off-chip word would fetch anyway.
//
//mcvet:hotpath
func (t *Table) scan(key uint64, cand []int, st *scanState) {
	st.readMask = 0
	st.found = -1
	st.earlyMiss = false
	d := t.cfg.D
	n := t.cfg.BucketsPerTable
	cells := t.cells
	var idx [hashutil.MaxD]int
	var probe [hashutil.MaxD]uint64
	for i := 0; i < d; i++ {
		j := i*n + cand[i]
		idx[i] = j
		probe[i] = cells[j].Key
	}
	// One batched on-chip charge for the d counter reads (the meter hook
	// expands it into d accesses, so simulated streams are unchanged).
	t.meter.ReadOn(int64(d))
	anyZero := false
	for i := 0; i < d; i++ {
		c := t.counters.Get(idx[i])
		st.cnt[i] = c
		anyZero = anyZero || c == 0
	}
	if anyZero && t.rule1Active() {
		st.earlyMiss = true
		return
	}
	for v := uint64(d); v >= 1; v-- {
		var group [hashutil.MaxD]int
		s := 0
		for i := 0; i < d; i++ {
			if st.cnt[i] == v {
				group[s] = i
				s++
			}
		}
		if s == 0 || s < int(v) {
			continue // principle 2: too few members to hold V copies
		}
		limit := s - int(v) + 1 // principle 3 (<= s because v >= 1)
		match := -1
		for k := 0; k < limit; k++ {
			if probe[group[k]] == key {
				match = k
				break
			}
		}
		reads := limit
		if match >= 0 {
			reads = match + 1
		}
		t.meter.ReadOff(int64(reads))
		for k := 0; k < reads; k++ {
			st.readMask |= 1 << uint(group[k])
		}
		if match >= 0 {
			i := group[match]
			st.value = cells[idx[i]].Value
			st.found = i
			st.foundCnt = v
			return
		}
	}
}

// scanAll is the traditional lookup used when the counter pre-screen is
// disabled (§IV.F ablation): read candidates in order until found.
//
//mcvet:hotpath
func (t *Table) scanAll(key uint64, cand []int, st *scanState) {
	st.readMask = 0
	st.found = -1
	st.earlyMiss = false
	for i := 0; i < t.cfg.D; i++ {
		gotKey := t.readBucket(i, cand[i])
		st.readMask |= 1 << uint(i)
		// Liveness comes from a valid bit that a counter-less
		// implementation would keep inside the bucket record, so it is
		// read with the bucket at no extra charge.
		if gotKey == key && !t.isFree(t.counters.Get(t.bucketIndex(i, cand[i]))) {
			st.value = t.cells[t.bucketIndex(i, cand[i])].Value
			st.found = i
			return
		}
	}
}

// shouldProbeStash decides whether a failed main-table scan needs to consult
// the stash (§III.E–F):
//
//   - before any deletion, the counters are authoritative: a stashed item saw
//     all candidates at counter 1 when it overflowed and counters never
//     increase, so anything else skips the stash; the flags (read for free
//     with the buckets) must all be 1 as well;
//   - after deletions, only the flags of the buckets actually read are
//     consulted; skipped buckets are neglected, trading a higher false
//     positive rate for zero false negatives.
//
//mcvet:hotpath
func (t *Table) shouldProbeStash(st *scanState, cand []int) bool {
	if t.overflow == nil || t.overflow.Len() == 0 {
		return false
	}
	if st.earlyMiss {
		return false // zero counter with rule 1 active: never inserted
	}
	if !t.cfg.DisablePrescreen && !t.deletedAny {
		for i := 0; i < t.cfg.D; i++ {
			if st.cnt[i] != 1 {
				return false
			}
		}
		// All counters are 1, so every candidate was read and every
		// flag observed.
		return t.flagsAllSet(cand, st.readMask)
	}
	// Deletions happened (or counters unused): rely on observed flags.
	return t.flagsAllSet(cand, st.readMask)
}

// Lookup returns the value stored for key, checking the stash only when the
// pre-screen cannot rule it out.
//
//mcvet:hotpath
func (t *Table) Lookup(key uint64) (uint64, bool) {
	t.stats.Lookups++
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])

	var st scanState
	if t.cfg.DisablePrescreen {
		t.scanAll(key, cand[:t.cfg.D], &st)
	} else {
		t.scan(key, cand[:t.cfg.D], &st)
	}
	if st.found >= 0 {
		t.stats.Hits++
		return st.value, true
	}
	if t.shouldProbeStash(&st, cand[:t.cfg.D]) {
		t.stats.StashProbe++
		if v, ok := t.overflow.Lookup(key); ok {
			t.stats.Hits++
			return v, true
		}
	}
	return 0, false
}

// locateCopies finds every subtable holding a copy of key. It fills st with
// the scan state (for the stash pre-screen) and returns the tables of all
// copies; ok is false when key is not in the main table. The returned slice
// aliases buf, the caller's stack-resident backing array — this keeps the
// per-op hot paths (insert-update, delete) allocation-free.
//
// After the first copy is found with counter value V, the deletion principle
// (§III.B.3) continues reading the unread members of the same partition
// until all V copies are found — this read-to-confirm step is why multi-copy
// deletion costs more reads than single-copy deletion in Fig. 14.
//
//mcvet:hotpath
func (t *Table) locateCopies(key uint64, cand []int, buf *[hashutil.MaxD]int, st *scanState) ([]int, bool) {
	t.scan(key, cand, st)
	if st.found < 0 {
		return nil, false
	}
	v := st.foundCnt
	tables := append(buf[:0], st.found)
	needed := int(v) - 1
	if needed == 0 {
		return tables, true
	}
	// Unread members of the found partition, in table order.
	var rest [hashutil.MaxD]int
	nr := 0
	for i := 0; i < t.cfg.D; i++ {
		if i != st.found && st.cnt[i] == v && st.readMask&(1<<uint(i)) == 0 {
			rest[nr] = i
			nr++
		}
	}
	if nr < needed {
		panic("core: copies of key missing from its partition")
	}
	for k := 0; k < nr && needed > 0; k++ {
		i := rest[k]
		gotKey := t.readBucket(i, cand[i])
		st.readMask |= 1 << uint(i)
		if gotKey == key {
			tables = append(tables, i)
			needed--
		}
	}
	if len(tables) != int(v) {
		panic("core: failed to locate all copies of key")
	}
	return tables, true
}

// findCopies is locateCopies without the scan state, for callers that only
// need the copy locations. The result aliases buf.
//
//mcvet:hotpath
func (t *Table) findCopies(key uint64, cand []int, buf *[hashutil.MaxD]int) ([]int, bool) {
	var st scanState
	return t.locateCopies(key, cand, buf, &st)
}
