package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	tab, keys := buildMessyTable(t)
	path := filepath.Join(t.TempDir(), "table.snap")
	if err := tab.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got.Len() != tab.Len() || got.StashLen() != tab.StashLen() {
		t.Fatalf("bookkeeping differs: Len %d/%d", got.Len(), tab.Len())
	}
	for _, k := range keys[60:] {
		want, wok := tab.Lookup(k)
		v, ok := got.Lookup(k)
		if ok != wok || v != want {
			t.Fatalf("key %#x differs after file round trip", k)
		}
	}
	checkInv(t, got)
}

func TestSaveFileBlockedRoundTrip(t *testing.T) {
	tab := mustNewBlocked(t, Config{BucketsPerTable: 32, Seed: 61, MaxLoop: 100, StashEnabled: true})
	keys := fillKeys(62, tab.Capacity())
	for _, k := range keys {
		tab.Insert(k, k*3)
	}
	path := filepath.Join(t.TempDir(), "blocked.snap")
	if err := tab.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadBlockedFile(path)
	if err != nil {
		t.Fatalf("LoadBlockedFile: %v", err)
	}
	for _, k := range keys {
		want, wok := tab.Lookup(k)
		v, ok := got.Lookup(k)
		if ok != wok || v != want {
			t.Fatalf("key %#x differs after file round trip", k)
		}
	}
	checkBlockedInv(t, got)
}

// SaveFile replaces an existing snapshot atomically: after a second save the
// file holds the newer state, and no temp files are left behind.
func TestSaveFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "table.snap")
	tab := mustNew(t, Config{BucketsPerTable: 32, Seed: 63, StashEnabled: true})
	tab.Insert(1, 100)
	if err := tab.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	tab.Insert(2, 200)
	if err := tab.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.Lookup(2); !ok || v != 200 {
		t.Fatalf("second save not visible: (%d,%v)", v, ok)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory not clean after saves: %v", entries)
	}
}

// A snapshot file with appended garbage is rejected: a file either is a
// snapshot or is not.
func TestLoadFileRejectsTrailingBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.snap")
	tab := mustNew(t, Config{BucketsPerTable: 16, Seed: 64, StashEnabled: true})
	tab.Insert(7, 7)
	if err := tab.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = LoadFile(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("trailing byte not rejected with CorruptError: %v", err)
	}
	if ce.Section != "trailer" {
		t.Fatalf("wrong section: %+v", ce)
	}
}

func TestLoadFileRejectsTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.snap")
	tab := mustNew(t, Config{BucketsPerTable: 16, Seed: 65, StashEnabled: true})
	tab.Insert(7, 7)
	if err := tab.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.snap")); err == nil {
		t.Fatal("missing file accepted")
	}
}
