package core

import (
	"testing"

	"mccuckoo/internal/kv"
)

func TestRangeVisitsEachItemOnce(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 128, Seed: 101, MaxLoop: 50,
		StashEnabled: true})
	keys := fillKeys(102, 360) // includes stash pressure
	want := map[uint64]uint64{}
	for _, k := range keys {
		if tab.Insert(k, k+9).Status != kv.Failed {
			want[k] = k + 9
		}
	}
	for _, k := range keys[:50] {
		tab.Delete(k)
		delete(want, k)
	}
	got := map[uint64]uint64{}
	tab.Range(func(k, v uint64) bool {
		if _, dup := got[k]; dup {
			t.Fatalf("key %#x visited twice", k)
		}
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d items, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %#x: value %d, want %d", k, got[k], v)
		}
	}
	// Early termination.
	visits := 0
	tab.Range(func(k, v uint64) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Fatalf("early stop visited %d", visits)
	}
}

func TestBlockedRangeVisitsEachItemOnce(t *testing.T) {
	tab := mustNewBlocked(t, Config{BucketsPerTable: 32, Seed: 103, MaxLoop: 50,
		StashEnabled: true})
	keys := fillKeys(104, 290)
	want := map[uint64]uint64{}
	for _, k := range keys {
		if tab.Insert(k, k^5).Status != kv.Failed {
			want[k] = k ^ 5
		}
	}
	for _, k := range keys[:40] {
		tab.Delete(k)
		delete(want, k)
	}
	got := map[uint64]uint64{}
	tab.Range(func(k, v uint64) bool {
		if _, dup := got[k]; dup {
			t.Fatalf("key %#x visited twice", k)
		}
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d items, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %#x: value %d, want %d", k, got[k], v)
		}
	}
}

func TestCopyHistogram(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 512, Seed: 105, AssumeUniqueKeys: true})
	// Empty table.
	for i, c := range tab.CopyHistogram() {
		if c != 0 {
			t.Fatalf("empty table histogram[%d] = %d", i, c)
		}
	}
	// First item into an empty table: exactly one 3-copy item.
	tab.Insert(1, 1)
	h := tab.CopyHistogram()
	if h[3] != 1 || h[1] != 0 || h[2] != 0 {
		t.Fatalf("histogram after first insert: %v", h)
	}
	// Fill to 85%: the histogram must account for every item, and sum of
	// i*hist[i] must equal Copies().
	keys := fillKeys(106, int(0.85*float64(tab.Capacity())))
	for _, k := range keys {
		tab.Insert(k, k)
	}
	h = tab.CopyHistogram()
	items, copies := 0, 0
	for i := 1; i <= 3; i++ {
		items += h[i]
		copies += i * h[i]
	}
	if items != tab.Len()-tab.StashLen() {
		t.Fatalf("histogram items %d, table %d", items, tab.Len())
	}
	if copies != tab.Copies() {
		t.Fatalf("histogram copies %d, Copies() %d", copies, tab.Copies())
	}
	// At 85% load most items must be down to a single copy.
	if h[1] < items/2 {
		t.Errorf("only %d of %d items are sole copies at 85%% load", h[1], items)
	}

	btab := mustNewBlocked(t, Config{BucketsPerTable: 64, Seed: 107, AssumeUniqueKeys: true})
	btab.Insert(1, 1)
	if bh := btab.CopyHistogram(); bh[3] != 1 {
		t.Fatalf("blocked histogram after first insert: %v", bh)
	}
}
