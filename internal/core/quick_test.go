package core

import (
	"io"
	"testing"
	"testing/quick"

	"mccuckoo/internal/kv"
)

// quickOp is a generator-friendly operation description.
type quickOp struct {
	Kind uint8
	Key  uint16
	Val  uint16
}

// applyQuickOps drives a table and a model with the same operations and
// reports the first divergence (empty string when equivalent).
func applyQuickOps(tab kv.Table, ops []quickOp, keySpace uint64) bool {
	model := map[uint64]uint64{}
	for _, op := range ops {
		key := uint64(op.Key) % keySpace
		val := uint64(op.Val)
		switch op.Kind % 4 {
		case 0, 1:
			if tab.Insert(key, val).Status != kv.Failed {
				model[key] = val
			}
		case 2:
			got, ok := tab.Lookup(key)
			want, wok := model[key]
			if ok != wok || (ok && got != want) {
				return false
			}
		case 3:
			_, wok := model[key]
			if tab.Delete(key) != wok {
				return false
			}
			delete(model, key)
		}
	}
	return tab.Len() == len(model)
}

// Property: under arbitrary operation sequences the single-slot table is
// observationally equivalent to a map and preserves every invariant.
func TestQuickTableModelEquivalence(t *testing.T) {
	f := func(ops []quickOp, seed uint16) bool {
		tab, err := New(Config{BucketsPerTable: 48, Seed: uint64(seed), MaxLoop: 20,
			StashEnabled: true})
		if err != nil {
			return false
		}
		if !applyQuickOps(tab, ops, 120) {
			return false
		}
		return tab.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: mixing pathwise and in-place insertion arbitrarily preserves
// model equivalence and every invariant (the two insertion protocols are
// interchangeable mid-stream).
func TestQuickPathwiseInterleaving(t *testing.T) {
	f := func(ops []quickOp, seed uint16) bool {
		tab, err := New(Config{BucketsPerTable: 48, Seed: uint64(seed), MaxLoop: 20,
			StashEnabled: true})
		if err != nil {
			return false
		}
		model := map[uint64]uint64{}
		for _, op := range ops {
			key := uint64(op.Key) % 120
			val := uint64(op.Val)
			switch op.Kind % 5 {
			case 0:
				if tab.Insert(key, val).Status != kv.Failed {
					model[key] = val
				}
			case 1:
				if tab.InsertPathwise(key, val).Status != kv.Failed {
					model[key] = val
				}
			case 2, 3:
				got, ok := tab.Lookup(key)
				want, wok := model[key]
				if ok != wok || (ok && got != want) {
					return false
				}
			case 4:
				_, wok := model[key]
				if tab.Delete(key) != wok {
					return false
				}
				delete(model, key)
			}
		}
		return tab.Len() == len(model) && tab.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: same for the blocked table, in tombstone mode for extra state
// variety.
func TestQuickBlockedModelEquivalence(t *testing.T) {
	f := func(ops []quickOp, seed uint16) bool {
		tab, err := NewBlocked(Config{BucketsPerTable: 16, Seed: uint64(seed), MaxLoop: 20,
			StashEnabled: true, Deletion: Tombstone})
		if err != nil {
			return false
		}
		if !applyQuickOps(tab, ops, 120) {
			return false
		}
		return tab.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: counter consistency survives arbitrary insert-only sequences —
// for every inserted key, its copy count equals the counter value of each
// of its buckets, and redundant writes respect the Theorem 2 bound.
func TestQuickCounterConsistency(t *testing.T) {
	f := func(rawKeys []uint16, seed uint16) bool {
		tab, err := New(Config{BucketsPerTable: 32, Seed: uint64(seed), MaxLoop: 20,
			StashEnabled: true, AssumeUniqueKeys: false})
		if err != nil {
			return false
		}
		for _, rk := range rawKeys {
			tab.Insert(uint64(rk), 1)
		}
		if tab.CheckInvariants() != nil {
			return false
		}
		s := float64(tab.Capacity())
		return float64(tab.RedundantWrites()) <= s*(1+1.0/3)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: snapshots round-trip arbitrary table states — save/load yields
// a table that answers every key identically.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(ops []quickOp, seed uint16) bool {
		tab, err := New(Config{BucketsPerTable: 24, Seed: uint64(seed), MaxLoop: 16,
			StashEnabled: true})
		if err != nil {
			return false
		}
		applyQuickOps(tab, ops, 90)
		var buf writerBuffer
		if _, err := tab.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		for key := uint64(0); key < 90; key++ {
			v1, ok1 := tab.Lookup(key)
			v2, ok2 := got.Lookup(key)
			if ok1 != ok2 || (ok1 && v1 != v2) {
				return false
			}
		}
		return got.Len() == tab.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// writerBuffer is a minimal in-memory ReadWriter.
type writerBuffer struct {
	data []byte
	off  int
}

func (b *writerBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *writerBuffer) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}
