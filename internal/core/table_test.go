package core

import (
	"testing"

	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
)

func fillKeys(seed uint64, n int) []uint64 {
	s := hashutil.Mix64(seed)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = hashutil.SplitMix64(&s)
	}
	return keys
}

func mustNew(t *testing.T, cfg Config) *Table {
	t.Helper()
	tab, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func checkInv(t *testing.T, tab *Table) {
	t.Helper()
	if err := tab.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{D: 1, BucketsPerTable: 16},
		{D: 5, BucketsPerTable: 16},
		{BucketsPerTable: 0},
		{BucketsPerTable: 16, Slots: 3}, // single-slot table rejects Slots>1
		{BucketsPerTable: 16, MaxLoop: -1},
		{BucketsPerTable: 16, StashMax: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestCounterWidth(t *testing.T) {
	c := Config{D: 3}
	if w := c.counterWidth(); w != 2 {
		t.Errorf("d=3 reset mode width = %d, want 2", w)
	}
	c.Deletion = Tombstone
	if w := c.counterWidth(); w != 3 {
		t.Errorf("d=3 tombstone mode width = %d, want 3", w)
	}
	c = Config{D: 4}
	if w := c.counterWidth(); w != 3 {
		t.Errorf("d=4 width = %d, want 3", w)
	}
}

func TestFirstInsertTakesAllCandidates(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 64, Seed: 1, AssumeUniqueKeys: true})
	if out := tab.Insert(42, 100); out.Status != kv.Placed {
		t.Fatalf("status %v", out.Status)
	}
	// Into an empty table, the item must occupy all d = 3 candidates
	// (Fig. 2), with counters all set to 3.
	if got := tab.CopyCount(42); got != 3 {
		t.Fatalf("CopyCount = %d, want 3", got)
	}
	if tab.Copies() != 3 || tab.Len() != 1 {
		t.Fatalf("Copies=%d Len=%d", tab.Copies(), tab.Len())
	}
	if tab.RedundantWrites() != 2 {
		t.Fatalf("RedundantWrites = %d, want 2", tab.RedundantWrites())
	}
	checkInv(t, tab)
}

func TestInsertZeroOffChipReadsAtLowLoad(t *testing.T) {
	// At low load, the counters reveal empty buckets without touching
	// off-chip memory: inserts cost writes but no reads (§IV.B).
	tab := mustNew(t, Config{BucketsPerTable: 1 << 12, Seed: 2, AssumeUniqueKeys: true})
	keys := fillKeys(3, 200)
	for _, k := range keys {
		tab.Insert(k, k)
	}
	if r := tab.Meter().OffChipReads; r != 0 {
		t.Fatalf("low-load inserts cost %d off-chip reads, want 0", r)
	}
	checkInv(t, tab)
}

func TestLookupHitAndMiss(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 256, Seed: 4, AssumeUniqueKeys: true})
	keys := fillKeys(5, 100)
	for _, k := range keys {
		tab.Insert(k, k^0xff)
	}
	for _, k := range keys {
		if v, ok := tab.Lookup(k); !ok || v != k^0xff {
			t.Fatalf("lookup(%#x) = %d,%v", k, v, ok)
		}
	}
	for _, k := range fillKeys(777, 100) {
		if _, ok := tab.Lookup(k); ok {
			t.Fatalf("phantom hit for %#x", k)
		}
	}
}

func TestNegativeLookupZeroReadsAtLowLoad(t *testing.T) {
	// Rule 1: with plenty of empty buckets, a miss is answered purely
	// on-chip, like a Bloom filter (§III.B.2).
	tab := mustNew(t, Config{BucketsPerTable: 1 << 12, Seed: 6, AssumeUniqueKeys: true})
	for _, k := range fillKeys(7, 300) {
		tab.Insert(k, k)
	}
	before := tab.Meter().Snapshot()
	misses := fillKeys(999, 500)
	for _, k := range misses {
		tab.Lookup(k)
	}
	delta := tab.Meter().Snapshot().Sub(before)
	perMiss := float64(delta.OffChipReads) / float64(len(misses))
	if perMiss > 0.05 {
		t.Fatalf("negative lookups cost %.3f off-chip reads each at ~2%% load, want ~0", perMiss)
	}
}

func TestUpsertUpdatesAllCopies(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 64, Seed: 8})
	tab.Insert(5, 10)
	if out := tab.Insert(5, 20); out.Status != kv.Updated {
		t.Fatalf("status %v", out.Status)
	}
	if v, _ := tab.Lookup(5); v != 20 {
		t.Fatalf("value %d after update", v)
	}
	if tab.Len() != 1 || tab.CopyCount(5) != 3 {
		t.Fatalf("Len=%d copies=%d", tab.Len(), tab.CopyCount(5))
	}
	checkInv(t, tab)
}

func TestFillTo90PercentWithInvariants(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 2048, Seed: 9, AssumeUniqueKeys: true,
		StashEnabled: true})
	keys := fillKeys(11, tab.Capacity())
	target := int(0.90 * float64(tab.Capacity()))
	for i := 0; i < target; i++ {
		out := tab.Insert(keys[i], keys[i]+1)
		if out.Status == kv.Failed {
			t.Fatalf("insert %d failed with unbounded stash", i)
		}
	}
	checkInv(t, tab)
	for i := 0; i < target; i++ {
		if v, ok := tab.Lookup(keys[i]); !ok || v != keys[i]+1 {
			t.Fatalf("key %d lost at 90%% load (ok=%v)", i, ok)
		}
	}
	if tab.Len() != target {
		t.Fatalf("Len = %d, want %d", tab.Len(), target)
	}
}

func TestDeleteZeroOffChipWrites(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 256, Seed: 12, AssumeUniqueKeys: true})
	keys := fillKeys(13, 200)
	for _, k := range keys {
		tab.Insert(k, k)
	}
	before := tab.Meter().Snapshot()
	for _, k := range keys[:100] {
		if !tab.Delete(k) {
			t.Fatalf("delete %#x failed", k)
		}
	}
	delta := tab.Meter().Snapshot().Sub(before)
	if delta.OffChipWrites != 0 {
		t.Fatalf("deletions cost %d off-chip writes, want 0 (§IV.D)", delta.OffChipWrites)
	}
	for _, k := range keys[:100] {
		if _, ok := tab.Lookup(k); ok {
			t.Fatalf("deleted key %#x still found", k)
		}
	}
	for _, k := range keys[100:] {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatalf("surviving key %#x lost", k)
		}
	}
	checkInv(t, tab)
}

func TestDeletedBucketsAreReused(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 32, Seed: 14, AssumeUniqueKeys: true})
	keys := fillKeys(15, 60)
	for _, k := range keys {
		tab.Insert(k, k)
	}
	for _, k := range keys {
		tab.Delete(k)
	}
	if tab.Len() != 0 || tab.Copies() != 0 {
		t.Fatalf("Len=%d Copies=%d after deleting all", tab.Len(), tab.Copies())
	}
	// The freed buckets must absorb a fresh fill (casual reuse, §III.F).
	fresh := fillKeys(16, 60)
	for _, k := range fresh {
		if out := tab.Insert(k, k); out.Status == kv.Failed {
			t.Fatalf("reinsert failed: freed buckets not reused")
		}
	}
	for _, k := range fresh {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatalf("fresh key %#x lost", k)
		}
	}
	checkInv(t, tab)
}

func TestTombstoneMode(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 128, Seed: 17, AssumeUniqueKeys: true,
		Deletion: Tombstone})
	keys := fillKeys(18, 100)
	for _, k := range keys {
		tab.Insert(k, k)
	}
	for _, k := range keys[:50] {
		if !tab.Delete(k) {
			t.Fatalf("delete %#x failed", k)
		}
	}
	checkInv(t, tab)
	for _, k := range keys[:50] {
		if _, ok := tab.Lookup(k); ok {
			t.Fatalf("tombstoned key %#x still found", k)
		}
	}
	for _, k := range keys[50:] {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatalf("live key %#x lost in tombstone mode", k)
		}
	}
	// Tombstoned buckets must be reusable by insertion.
	fresh := fillKeys(19, 50)
	for _, k := range fresh {
		if out := tab.Insert(k, k); out.Status == kv.Failed {
			t.Fatal("tombstoned buckets not reused")
		}
	}
	checkInv(t, tab)
}

func TestTombstoneKeepsRuleOne(t *testing.T) {
	// In tombstone mode the zero-counter shortcut survives deletions:
	// misses on never-inserted keys stay off-chip-free at low load.
	tab := mustNew(t, Config{BucketsPerTable: 1 << 12, Seed: 20, AssumeUniqueKeys: true,
		Deletion: Tombstone})
	keys := fillKeys(21, 200)
	for _, k := range keys {
		tab.Insert(k, k)
	}
	for _, k := range keys[:100] {
		tab.Delete(k)
	}
	before := tab.Meter().Snapshot()
	misses := fillKeys(4242, 500)
	for _, k := range misses {
		tab.Lookup(k)
	}
	delta := tab.Meter().Snapshot().Sub(before)
	if perMiss := float64(delta.OffChipReads) / float64(len(misses)); perMiss > 0.05 {
		t.Fatalf("tombstone-mode misses cost %.3f reads each, want ~0", perMiss)
	}
}

func TestModelEquivalenceMixedOps(t *testing.T) {
	for _, mode := range []DeletionMode{ResetCounters, Tombstone} {
		tab := mustNew(t, Config{BucketsPerTable: 512, Seed: 23, Deletion: mode,
			StashEnabled: true})
		model := map[uint64]uint64{}
		s := uint64(31)
		for i := 0; i < 8000; i++ {
			r := hashutil.SplitMix64(&s)
			key := r % 1200
			switch (r >> 32) % 4 {
			case 0, 1:
				out := tab.Insert(key, r)
				if out.Status != kv.Failed {
					model[key] = r
				}
			case 2:
				got, ok := tab.Lookup(key)
				want, wok := model[key]
				if ok != wok || (ok && got != want) {
					t.Fatalf("mode %v op %d: lookup(%d) = (%d,%v) want (%d,%v)",
						mode, i, key, got, ok, want, wok)
				}
			case 3:
				_, wok := model[key]
				if got := tab.Delete(key); got != wok {
					t.Fatalf("mode %v op %d: delete(%d) = %v want %v", mode, i, key, got, wok)
				}
				delete(model, key)
			}
		}
		if tab.Len() != len(model) {
			t.Fatalf("mode %v: Len = %d, model %d", mode, tab.Len(), len(model))
		}
		checkInv(t, tab)
	}
}

func TestStashOverflowAndPrescreen(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 64, Seed: 25, MaxLoop: 50,
		StashEnabled: true, AssumeUniqueKeys: true})
	keys := fillKeys(26, 200) // >100% load
	stashed := 0
	for _, k := range keys {
		switch tab.Insert(k, k).Status {
		case kv.Stashed:
			stashed++
		case kv.Failed:
			t.Fatal("failed with unbounded stash")
		}
	}
	if stashed == 0 {
		t.Fatal("no stashed items at >100% load")
	}
	// Every key, stashed or not, must be found (no stash false negatives).
	for _, k := range keys {
		if v, ok := tab.Lookup(k); !ok || v != k {
			t.Fatalf("key %#x lost (stash pre-screen false negative?)", k)
		}
	}
	checkInv(t, tab)
}

func TestStashPrescreenSkipsMisses(t *testing.T) {
	// Queries for non-existing items should rarely reach the stash
	// (Table II's "% visits in lookups" column is ~0).
	tab := mustNew(t, Config{BucketsPerTable: 1024, Seed: 27, MaxLoop: 100,
		StashEnabled: true, AssumeUniqueKeys: true})
	keys := fillKeys(28, int(0.92*float64(tab.Capacity())))
	for _, k := range keys {
		tab.Insert(k, k)
	}
	statsBefore := tab.Stats()
	misses := fillKeys(5050, 20000)
	for _, k := range misses {
		tab.Lookup(k)
	}
	probes := tab.Stats().StashProbe - statsBefore.StashProbe
	rate := float64(probes) / float64(len(misses))
	if rate > 0.02 {
		t.Fatalf("stash probed on %.2f%% of negative lookups, want <2%%", rate*100)
	}
}

func TestRedundantWritesTheorem2Bound(t *testing.T) {
	// Theorem 2: proactive redundant writes <= S * (1 + sum_{t=3..d} 1/t),
	// i.e. <= S * 4/3 total redundant for... for d=3 the bound is
	// S*(d-1)/d + S/3*1/2 = S*5/6 of redundant writes.
	tab := mustNew(t, Config{BucketsPerTable: 2048, Seed: 29, AssumeUniqueKeys: true,
		StashEnabled: true})
	s := tab.Capacity()
	keys := fillKeys(30, s)
	for _, k := range keys {
		tab.Insert(k, k)
	}
	bound := float64(s) * (1 + 1.0/3)
	if got := float64(tab.RedundantWrites()); got > bound {
		t.Fatalf("redundant writes %.0f exceed Theorem 2 bound %.0f", got, bound)
	}
	// And the tighter closed form for d=3 from the proof: 5/6 * S.
	if got := float64(tab.RedundantWrites()); got > float64(s)*5.0/6.0+1 {
		t.Fatalf("redundant writes %.0f exceed 5S/6 = %.0f", got, float64(s)*5.0/6.0)
	}
}

func TestDisablePrescreenStillCorrect(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 512, Seed: 31, AssumeUniqueKeys: true,
		DisablePrescreen: true, StashEnabled: true})
	keys := fillKeys(32, int(0.9*float64(tab.Capacity())))
	for _, k := range keys {
		if tab.Insert(k, k).Status == kv.Failed {
			t.Fatal("insert failed")
		}
	}
	for _, k := range keys {
		if v, ok := tab.Lookup(k); !ok || v != k {
			t.Fatalf("key %#x lost with prescreen disabled", k)
		}
	}
	for _, k := range fillKeys(6060, 200) {
		if _, ok := tab.Lookup(k); ok {
			t.Fatal("phantom hit with prescreen disabled")
		}
	}
}

func TestRefreshStashFlags(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 64, Seed: 33, MaxLoop: 30,
		StashEnabled: true, AssumeUniqueKeys: true})
	keys := fillKeys(34, 190)
	for _, k := range keys {
		tab.Insert(k, k)
	}
	if tab.StashLen() == 0 {
		t.Skip("no stash pressure with this seed")
	}
	// Delete a third of the items to make room, then refresh.
	for _, k := range keys[:60] {
		tab.Delete(k)
	}
	stashBefore := tab.StashLen()
	moved := tab.RefreshStashFlags()
	if moved == 0 && stashBefore > 0 {
		t.Fatalf("refresh moved nothing despite %d stashed and 60 deletions", stashBefore)
	}
	for _, k := range keys[60:] {
		if v, ok := tab.Lookup(k); !ok || v != k {
			t.Fatalf("key %#x lost across refresh", k)
		}
	}
	checkInv(t, tab)
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, int64, int) {
		tab := mustNew(t, Config{BucketsPerTable: 256, Seed: 35, AssumeUniqueKeys: true,
			StashEnabled: true})
		for _, k := range fillKeys(36, 700) {
			tab.Insert(k, k)
		}
		return tab.Stats().Kicks, tab.Meter().OffChipReads, tab.Copies()
	}
	k1, r1, c1 := run()
	k2, r2, c2 := run()
	if k1 != k2 || r1 != r2 || c1 != c2 {
		t.Fatalf("runs differ: (%d,%d,%d) vs (%d,%d,%d)", k1, r1, c1, k2, r2, c2)
	}
}

var _ kv.Table = (*Table)(nil)
