package core

import (
	"testing"

	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
)

func mustNewBlocked(t *testing.T, cfg Config) *BlockedTable {
	t.Helper()
	tab, err := NewBlocked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func checkBlockedInv(t *testing.T, tab *BlockedTable) {
	t.Helper()
	if err := tab.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockedConfigValidation(t *testing.T) {
	bad := []Config{
		{BucketsPerTable: 16, Slots: 1},
		{BucketsPerTable: 16, Slots: 5},
		{BucketsPerTable: 0},
		{D: 5, BucketsPerTable: 16},
	}
	for i, cfg := range bad {
		if _, err := NewBlocked(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	tab := mustNewBlocked(t, Config{BucketsPerTable: 16})
	if tab.cfg.Slots != 3 || tab.cfg.D != 3 {
		t.Errorf("defaults: %+v", tab.cfg)
	}
	if tab.Capacity() != 3*16*3 {
		t.Errorf("Capacity = %d", tab.Capacity())
	}
}

func TestBlockedFirstInsertTakesAllBuckets(t *testing.T) {
	tab := mustNewBlocked(t, Config{BucketsPerTable: 32, Seed: 1, AssumeUniqueKeys: true})
	if out := tab.Insert(42, 9); out.Status != kv.Placed {
		t.Fatalf("status %v", out.Status)
	}
	if got := tab.CopyCount(42); got != 3 {
		t.Fatalf("CopyCount = %d, want 3 (one per candidate bucket, Fig. 5)", got)
	}
	checkBlockedInv(t, tab)
}

func TestBlockedLookupHitMiss(t *testing.T) {
	tab := mustNewBlocked(t, Config{BucketsPerTable: 128, Seed: 2, AssumeUniqueKeys: true})
	keys := fillKeys(3, 300)
	for _, k := range keys {
		if tab.Insert(k, k^7).Status == kv.Failed {
			t.Fatal("insert failed")
		}
	}
	for _, k := range keys {
		if v, ok := tab.Lookup(k); !ok || v != k^7 {
			t.Fatalf("lookup(%#x) = %d,%v", k, v, ok)
		}
	}
	for _, k := range fillKeys(99, 200) {
		if _, ok := tab.Lookup(k); ok {
			t.Fatalf("phantom hit %#x", k)
		}
	}
	checkBlockedInv(t, tab)
}

func TestBlockedReaches97Percent(t *testing.T) {
	tab := mustNewBlocked(t, Config{BucketsPerTable: 1024, Seed: 5, AssumeUniqueKeys: true,
		StashEnabled: true})
	keys := fillKeys(7, tab.Capacity())
	target := int(0.97 * float64(tab.Capacity()))
	for i := 0; i < target; i++ {
		if tab.Insert(keys[i], keys[i]).Status == kv.Failed {
			t.Fatalf("insert %d failed", i)
		}
	}
	checkBlockedInv(t, tab)
	for i := 0; i < target; i++ {
		if _, ok := tab.Lookup(keys[i]); !ok {
			t.Fatalf("key %d lost at 97%% load", i)
		}
	}
}

func TestBlockedDeleteZeroOffChipWrites(t *testing.T) {
	tab := mustNewBlocked(t, Config{BucketsPerTable: 64, Seed: 8, AssumeUniqueKeys: true})
	keys := fillKeys(9, 150)
	for _, k := range keys {
		tab.Insert(k, k)
	}
	before := tab.Meter().Snapshot()
	for _, k := range keys[:70] {
		if !tab.Delete(k) {
			t.Fatalf("delete %#x failed", k)
		}
	}
	delta := tab.Meter().Snapshot().Sub(before)
	if delta.OffChipWrites != 0 {
		t.Fatalf("blocked deletions cost %d off-chip writes, want 0", delta.OffChipWrites)
	}
	for _, k := range keys[:70] {
		if _, ok := tab.Lookup(k); ok {
			t.Fatalf("deleted key %#x still found", k)
		}
	}
	for _, k := range keys[70:] {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatalf("surviving key %#x lost", k)
		}
	}
	checkBlockedInv(t, tab)
}

func TestBlockedUpsert(t *testing.T) {
	tab := mustNewBlocked(t, Config{BucketsPerTable: 32, Seed: 10})
	tab.Insert(5, 1)
	if out := tab.Insert(5, 2); out.Status != kv.Updated {
		t.Fatalf("status %v", out.Status)
	}
	if v, _ := tab.Lookup(5); v != 2 {
		t.Fatalf("value %d", v)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
	checkBlockedInv(t, tab)
}

func TestBlockedModelEquivalence(t *testing.T) {
	for _, mode := range []DeletionMode{ResetCounters, Tombstone} {
		tab := mustNewBlocked(t, Config{BucketsPerTable: 128, Seed: 11, Deletion: mode,
			StashEnabled: true})
		model := map[uint64]uint64{}
		s := uint64(12)
		for i := 0; i < 9000; i++ {
			r := hashutil.SplitMix64(&s)
			key := r % 900
			switch (r >> 32) % 4 {
			case 0, 1:
				if tab.Insert(key, r).Status != kv.Failed {
					model[key] = r
				}
			case 2:
				got, ok := tab.Lookup(key)
				want, wok := model[key]
				if ok != wok || (ok && got != want) {
					t.Fatalf("mode %v op %d: lookup(%d) = (%d,%v) want (%d,%v)",
						mode, i, key, got, ok, want, wok)
				}
			case 3:
				_, wok := model[key]
				if got := tab.Delete(key); got != wok {
					t.Fatalf("mode %v op %d: delete(%d) = %v want %v", mode, i, key, got, wok)
				}
				delete(model, key)
			}
		}
		if tab.Len() != len(model) {
			t.Fatalf("mode %v: Len=%d model=%d", mode, tab.Len(), len(model))
		}
		checkBlockedInv(t, tab)
	}
}

func TestBlockedStashAtExtremLoad(t *testing.T) {
	// Table III operates at 99-100% load; everything must stay findable.
	tab := mustNewBlocked(t, Config{BucketsPerTable: 256, Seed: 13, MaxLoop: 200,
		StashEnabled: true, AssumeUniqueKeys: true})
	keys := fillKeys(14, tab.Capacity()) // 100% load
	for _, k := range keys {
		if tab.Insert(k, k).Status == kv.Failed {
			t.Fatal("failed with unbounded stash")
		}
	}
	for _, k := range keys {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatalf("key %#x lost at 100%% load", k)
		}
	}
	checkBlockedInv(t, tab)
}

func TestBlockedRefreshStashFlags(t *testing.T) {
	tab := mustNewBlocked(t, Config{BucketsPerTable: 64, Seed: 15, MaxLoop: 100,
		StashEnabled: true, AssumeUniqueKeys: true})
	keys := fillKeys(16, tab.Capacity()+40) // overfill beyond 100%
	for _, k := range keys {
		tab.Insert(k, k)
	}
	if tab.StashLen() == 0 {
		t.Skip("no stash pressure with this seed")
	}
	for _, k := range keys[:200] {
		tab.Delete(k)
	}
	tab.RefreshStashFlags()
	for _, k := range keys[200:] {
		if v, ok := tab.Lookup(k); !ok || v != k {
			t.Fatalf("key %#x lost across refresh", k)
		}
	}
	checkBlockedInv(t, tab)
}

func TestBlockedRedundantWritesBound(t *testing.T) {
	tab := mustNewBlocked(t, Config{BucketsPerTable: 512, Seed: 17, AssumeUniqueKeys: true,
		StashEnabled: true})
	s := tab.Capacity()
	for _, k := range fillKeys(18, s) {
		tab.Insert(k, k)
	}
	if got := float64(tab.RedundantWrites()); got > float64(s)*(1+1.0/3) {
		t.Fatalf("redundant writes %.0f exceed Theorem 2 bound", got)
	}
}

func TestBlockedDeterministic(t *testing.T) {
	run := func() (int64, int64) {
		tab := mustNewBlocked(t, Config{BucketsPerTable: 128, Seed: 19, AssumeUniqueKeys: true,
			StashEnabled: true})
		for _, k := range fillKeys(20, 1000) {
			tab.Insert(k, k)
		}
		return tab.Stats().Kicks, tab.Meter().OffChipReads
	}
	k1, r1 := run()
	k2, r2 := run()
	if k1 != k2 || r1 != r2 {
		t.Fatalf("runs differ: kicks %d vs %d, reads %d vs %d", k1, k2, r1, r2)
	}
}

var _ kv.Table = (*BlockedTable)(nil)
