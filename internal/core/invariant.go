package core

import (
	"fmt"

	"mccuckoo/internal/hashutil"
)

// CheckInvariants exhaustively validates the table's internal consistency.
// It is O(capacity · d) and meant for tests and debugging, not production
// paths; it charges no memory traffic.
//
// Verified properties:
//
//   - every non-empty bucket's stored key hashes to that bucket (copies only
//     live in candidate positions);
//   - for every live item, the number of buckets holding its key equals the
//     counter value of each of those buckets (counter consistency);
//   - size equals the number of distinct live keys and copiesTotal the
//     number of live copies;
//   - no live key also sits in the stash.
func (t *Table) CheckInvariants() error {
	d, n := t.cfg.D, t.cfg.BucketsPerTable
	type info struct {
		copies int
		cnt    uint64
	}
	items := make(map[uint64]*info)
	liveCopies := 0

	for table := 0; table < d; table++ {
		for bucket := 0; bucket < n; bucket++ {
			idx := t.bucketIndex(table, bucket)
			c := t.counters.Get(idx)
			if c == 0 || (t.tombstoneVal != 0 && c == t.tombstoneVal) {
				continue
			}
			if c > uint64(d) {
				return fmt.Errorf("bucket (%d,%d): counter %d exceeds d=%d", table, bucket, c, d)
			}
			key := t.cells[idx].Key
			if t.family.Index(table, key) != bucket {
				return fmt.Errorf("bucket (%d,%d): key %#x does not hash here", table, bucket, key)
			}
			liveCopies++
			it := items[key]
			if it == nil {
				items[key] = &info{copies: 1, cnt: c}
				continue
			}
			if it.cnt != c {
				return fmt.Errorf("key %#x: copies disagree on counter (%d vs %d)", key, it.cnt, c)
			}
			it.copies++
		}
	}
	for key, it := range items {
		if uint64(it.copies) != it.cnt {
			return fmt.Errorf("key %#x: %d live copies but counter says %d", key, it.copies, it.cnt)
		}
	}
	// Before any deletion, an inserted item can never have an empty
	// candidate bucket: insertion fills every empty candidate with a
	// copy, and only deletion zeroes counters. Lookup rule 1 (the
	// Bloom-filter shortcut) is sound precisely because of this.
	if !t.deletedAny {
		var cand [hashutil.MaxD]int
		for key := range items {
			t.family.Indexes(key, cand[:])
			for j := 0; j < d; j++ {
				if t.counters.Get(t.bucketIndex(j, cand[j])) == 0 {
					return fmt.Errorf("key %#x has an empty candidate in table %d before any deletion", key, j)
				}
			}
		}
	}
	if len(items) != t.size {
		return fmt.Errorf("size = %d but %d distinct live keys found", t.size, len(items))
	}
	if liveCopies != t.copiesTotal {
		return fmt.Errorf("copiesTotal = %d but %d live copies found", t.copiesTotal, liveCopies)
	}
	if t.overflow != nil {
		for _, e := range t.overflow.Entries() {
			if _, dup := items[e.Key]; dup {
				return fmt.Errorf("key %#x is both live and stashed", e.Key)
			}
		}
	}
	return nil
}

// CopyCount returns how many live copies of key the main table holds,
// without charging memory traffic. Test support.
func (t *Table) CopyCount(key uint64) int {
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])
	copies := 0
	for i := 0; i < t.cfg.D; i++ {
		idx := t.bucketIndex(i, cand[i])
		c := t.counters.Get(idx)
		if c != 0 && (t.tombstoneVal == 0 || c != t.tombstoneVal) && t.cells[idx].Key == key {
			copies++
		}
	}
	return copies
}
