package core

import (
	"sync"
	"testing"

	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
)

// fillPathwise fills a table via InsertPathwise, returning the inserted keys.
func fillPathwise(t *testing.T, tab *Table, seed uint64, n int) []uint64 {
	t.Helper()
	keys := fillKeys(seed, n)
	for i, k := range keys {
		if out := tab.InsertPathwise(k, k+1); out.Status == kv.Failed {
			t.Fatalf("pathwise insert %d failed at load %.3f", i, tab.LoadRatio())
		}
	}
	return keys
}

func TestInsertPathwiseBasic(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 64, Seed: 51, AssumeUniqueKeys: true,
		StashEnabled: true})
	keys := fillPathwise(t, tab, 52, 100)
	for _, k := range keys {
		if v, ok := tab.Lookup(k); !ok || v != k+1 {
			t.Fatalf("key %#x lost (ok=%v)", k, ok)
		}
	}
	checkInv(t, tab)
}

func TestInsertPathwiseHighLoad(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 2048, Seed: 53, AssumeUniqueKeys: true,
		StashEnabled: true})
	target := int(0.90 * float64(tab.Capacity()))
	keys := fillPathwise(t, tab, 54, target)
	checkInv(t, tab)
	for _, k := range keys {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatalf("key %#x lost at 90%% load", k)
		}
	}
	if tab.Stats().Kicks == 0 {
		t.Fatal("no path moves recorded at 90% load; pathwise machinery unused")
	}
}

// TestInsertPathwiseInvariantsEveryStep drives the staged protocol manually
// and checks full table invariants after every single ApplyMove — the
// property that makes interleaved readers safe.
func TestInsertPathwiseInvariantsEveryStep(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 256, Seed: 55, AssumeUniqueKeys: true,
		StashEnabled: true})
	keys := fillKeys(56, int(0.92*float64(tab.Capacity())))
	paths := 0
	for _, k := range keys {
		out, done := tab.TryPlace(k, k+1)
		if done {
			if out.Status == kv.Failed {
				t.Fatal("placement failed")
			}
			continue
		}
		path, ok := tab.FindPath(k)
		if !ok {
			tab.StashOverflow(k, k+1)
			continue
		}
		paths++
		for i := len(path) - 1; i >= 0; i-- {
			if err := tab.ApplyMove(path[i]); err != nil {
				t.Fatalf("ApplyMove: %v", err)
			}
			if err := tab.CheckInvariants(); err != nil {
				t.Fatalf("invariants broken mid-path (hop %d of %d): %v", i, len(path), err)
			}
			// size is not incremented until FinishPath, but no
			// previously inserted key may be missing mid-path.
		}
		tab.FinishPath(k, k+1, path[0], len(path))
		if err := tab.CheckInvariants(); err != nil {
			t.Fatalf("invariants broken after FinishPath: %v", err)
		}
	}
	if paths == 0 {
		t.Fatal("no cuckoo paths exercised at 92% load")
	}
	for _, k := range keys {
		if v, ok := tab.Lookup(k); !ok || v != k+1 {
			t.Fatalf("key %#x lost", k)
		}
	}
}

// TestPathwiseNoItemLostMidPath asserts the headline property: every key
// inserted so far stays findable between path steps.
func TestPathwiseNoItemLostMidPath(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 128, Seed: 57, AssumeUniqueKeys: true,
		StashEnabled: true})
	keys := fillKeys(58, int(0.90*float64(tab.Capacity())))
	inserted := make([]uint64, 0, len(keys))
	checkAll := func(stage string) {
		for _, k := range inserted {
			if _, ok := tab.Lookup(k); !ok {
				t.Fatalf("%s: key %#x unfindable", stage, k)
			}
		}
	}
	for _, k := range keys {
		if _, done := tab.TryPlace(k, k+1); done {
			inserted = append(inserted, k)
			continue
		}
		path, ok := tab.FindPath(k)
		if !ok {
			tab.StashOverflow(k, k+1)
			inserted = append(inserted, k)
			continue
		}
		for i := len(path) - 1; i >= 0; i-- {
			if err := tab.ApplyMove(path[i]); err != nil {
				t.Fatal(err)
			}
			checkAll("mid-path")
		}
		tab.FinishPath(k, k+1, path[0], len(path))
		inserted = append(inserted, k)
	}
	checkAll("final")
}

func TestFindPathFailsWhenBoxedIn(t *testing.T) {
	// A minuscule table crammed to the brim: paths must eventually fail
	// and the overflow land in the stash rather than loop forever.
	tab := mustNew(t, Config{BucketsPerTable: 8, Seed: 59, MaxLoop: 16,
		AssumeUniqueKeys: true, StashEnabled: true})
	keys := fillKeys(60, 30)
	for _, k := range keys {
		if out := tab.InsertPathwise(k, k); out.Status == kv.Failed {
			t.Fatal("failed despite unbounded stash")
		}
	}
	if tab.StashLen() == 0 {
		t.Fatal("expected stash overflow at 125% load")
	}
	for _, k := range keys {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatalf("key %#x lost", k)
		}
	}
	checkInv(t, tab)
}

func TestConcurrentInsertPathwise(t *testing.T) {
	inner := mustNew(t, Config{BucketsPerTable: 1024, Seed: 61, AssumeUniqueKeys: true,
		StashEnabled: true})
	c := NewConcurrent(inner)
	keys := fillKeys(62, int(0.88*float64(inner.Capacity())))
	// Pre-load 60% through the pathwise writer, then run readers against
	// the rest of the fill.
	split := len(keys) * 2 / 3
	for _, k := range keys[:split] {
		c.InsertPathwise(k, k+1)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := hashutil.Mix64(uint64(r))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[hashutil.SplitMix64(&s)%uint64(split)]
				if v, ok := c.Lookup(k); !ok || v != k+1 {
					t.Errorf("reader %d: key %#x missing or wrong (%d,%v)", r, k, v, ok)
					return
				}
			}
		}(r)
	}
	for _, k := range keys[split:] {
		if out := c.InsertPathwise(k, k+1); out.Status == kv.Failed {
			t.Error("pathwise insert failed")
			break
		}
	}
	close(stop)
	wg.Wait()
	for _, k := range keys {
		if v, ok := c.Lookup(k); !ok || v != k+1 {
			t.Fatalf("key %#x lost after concurrent pathwise fill", k)
		}
	}
	if err := inner.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPathwiseBlockedBasic(t *testing.T) {
	inner := mustNewBlocked(t, Config{BucketsPerTable: 64, Seed: 63, StashEnabled: true})
	c := NewConcurrent(inner)
	if out := c.InsertPathwise(1, 2); out.Status != kv.Placed {
		t.Fatalf("insert status %v", out.Status)
	}
	if v, ok := c.Lookup(1); !ok || v != 2 {
		t.Fatal("insert lost")
	}
}

// TestPathwiseEquivalentLoadCurve sanity-checks that pathwise insertion
// sustains the same loads as the in-place walk.
func TestPathwiseEquivalentLoadCurve(t *testing.T) {
	for _, pathwise := range []bool{false, true} {
		tab := mustNew(t, Config{BucketsPerTable: 1024, Seed: 65, AssumeUniqueKeys: true,
			StashEnabled: true})
		keys := fillKeys(66, int(0.90*float64(tab.Capacity())))
		for _, k := range keys {
			var out kv.Outcome
			if pathwise {
				out = tab.InsertPathwise(k, k)
			} else {
				out = tab.Insert(k, k)
			}
			if out.Status == kv.Failed {
				t.Fatalf("pathwise=%v: insert failed", pathwise)
			}
		}
		if stashed := tab.StashLen(); stashed > len(keys)/100 {
			t.Errorf("pathwise=%v: %d stashed at 90%% load, want <1%%", pathwise, stashed)
		}
		checkInv(t, tab)
	}
}

func TestBlockedInsertPathwiseHighLoad(t *testing.T) {
	tab := mustNewBlocked(t, Config{BucketsPerTable: 512, Seed: 67, AssumeUniqueKeys: true,
		StashEnabled: true})
	target := int(0.99 * float64(tab.Capacity()))
	keys := fillKeys(68, target)
	for i, k := range keys {
		if out := tab.InsertPathwise(k, k+1); out.Status == kv.Failed {
			t.Fatalf("pathwise insert %d failed at load %.3f", i, tab.LoadRatio())
		}
	}
	checkBlockedInv(t, tab)
	for _, k := range keys {
		if v, ok := tab.Lookup(k); !ok || v != k+1 {
			t.Fatalf("key %#x lost at 99%% load", k)
		}
	}
	if tab.Stats().Kicks == 0 {
		t.Fatal("no path moves recorded at 99% load")
	}
}

func TestBlockedPathwiseInvariantsEveryStep(t *testing.T) {
	tab := mustNewBlocked(t, Config{BucketsPerTable: 64, Seed: 69, AssumeUniqueKeys: true,
		StashEnabled: true})
	keys := fillKeys(70, tab.Capacity())
	paths := 0
	for _, k := range keys {
		out, done := tab.TryPlace(k, k+1)
		if done {
			if out.Status == kv.Failed {
				t.Fatal("placement failed")
			}
			continue
		}
		path, ok := tab.FindPath(k)
		if !ok {
			tab.StashOverflow(k, k+1)
			continue
		}
		paths++
		for i := len(path) - 1; i >= 0; i-- {
			if err := tab.ApplyMove(path[i]); err != nil {
				t.Fatalf("ApplyMove: %v", err)
			}
			if err := tab.CheckInvariants(); err != nil {
				t.Fatalf("invariants broken mid-path (hop %d of %d): %v", i, len(path), err)
			}
		}
		tab.FinishPath(k, k+1, path[0], len(path))
		if err := tab.CheckInvariants(); err != nil {
			t.Fatalf("invariants broken after FinishPath: %v", err)
		}
	}
	if paths == 0 {
		t.Fatal("no cuckoo paths exercised at 100% load")
	}
	for _, k := range keys {
		if _, ok := tab.Lookup(k); !ok {
			t.Fatalf("key %#x lost", k)
		}
	}
}

func TestConcurrentBlockedPathwise(t *testing.T) {
	inner := mustNewBlocked(t, Config{BucketsPerTable: 256, Seed: 71, AssumeUniqueKeys: true,
		StashEnabled: true})
	c := NewConcurrent(inner)
	keys := fillKeys(72, int(0.98*float64(inner.Capacity())))
	split := len(keys) * 2 / 3
	for _, k := range keys[:split] {
		c.InsertPathwise(k, k+1)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := hashutil.Mix64(uint64(r + 40))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[hashutil.SplitMix64(&s)%uint64(split)]
				if v, ok := c.Lookup(k); !ok || v != k+1 {
					t.Errorf("reader %d: key %#x missing or wrong (%d,%v)", r, k, v, ok)
					return
				}
			}
		}(r)
	}
	for _, k := range keys[split:] {
		if out := c.InsertPathwise(k, k+1); out.Status == kv.Failed {
			t.Error("pathwise insert failed")
			break
		}
	}
	close(stop)
	wg.Wait()
	for _, k := range keys {
		if _, ok := c.Lookup(k); !ok {
			t.Fatalf("key %#x lost", k)
		}
	}
	if err := inner.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
