// Package core implements McCuckoo, the multi-copy cuckoo hash table of the
// paper, in its single-slot (Table) and blocked multi-slot (BlockedTable)
// forms, plus a one-writer-many-readers wrapper (Concurrent).
//
// The defining idea: an inserted item occupies *all* of its free candidate
// buckets with redundant copies, and a compact on-chip counter per bucket
// records how many copies the occupying item has. Buckets with counter > 1
// can be overwritten without relocation, insertion failures go to an off-chip
// stash pre-screened by per-bucket flags, and lookups use the counters to
// skip buckets that provably cannot hold the queried item.
package core

import (
	"fmt"

	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
)

// DeletionMode selects how deletions interact with the counters (§III.B.3).
type DeletionMode uint8

const (
	// ResetCounters zeroes the counters of the deleted item's buckets.
	// Cheap, but after the first deletion the "any zero counter means
	// never inserted" lookup shortcut must be disabled (the table does
	// this automatically).
	ResetCounters DeletionMode = iota
	// Tombstone marks the counters "deleted" instead: treated as empty
	// by insertion but non-zero by lookup, preserving the Bloom-filter
	// shortcut at the cost of one extra counter state (3 bits instead of
	// 2 for d = 3) and a filter that fades as deletions accumulate.
	Tombstone
)

// String returns the mode name.
func (m DeletionMode) String() string {
	switch m {
	case ResetCounters:
		return "reset-counters"
	case Tombstone:
		return "tombstone"
	default:
		return "unknown"
	}
}

// Config parameterizes a McCuckoo table.
type Config struct {
	// D is the number of hash functions / subtables (paper default: 3).
	D int
	// BucketsPerTable is the length of each subtable.
	BucketsPerTable int
	// Slots is the number of slots per bucket; used only by NewBlocked
	// (paper: 3). New ignores it.
	Slots int
	// MaxLoop bounds the kick-out chain length (paper default: 500).
	MaxLoop int
	// Seed makes hashing and the random walk reproducible.
	Seed uint64
	// Policy selects the collision resolver (§III.D: any resolver plugs
	// in; the paper's evaluation uses the random walk, MinCounter is the
	// ablation alternative).
	Policy kv.KickPolicy
	// Deletion selects the counter treatment on delete.
	Deletion DeletionMode
	// StashEnabled attaches the off-chip stash with flag pre-screening
	// (§III.E). StashMax caps its size; 0 means unbounded, which is the
	// paper's point — off-chip space is abundant.
	StashEnabled bool
	StashMax     int
	// DisablePrescreen makes lookups read candidate buckets the
	// traditional way, ignoring the counters (the §IV.F ablation: "just
	// skip checking the counters during the lookup"). Insertions still
	// use the counters.
	DisablePrescreen bool
	// DoubleHashing derives the d bucket indexes from only two hash
	// computations (h1 + i*h2), the paper's [21]: cheaper hashing with
	// provably unchanged load thresholds.
	DoubleHashing bool
	// AssumeUniqueKeys skips the duplicate-key scan on insert; the
	// experiment workloads guarantee uniqueness. Leave off for safe
	// upsert semantics.
	AssumeUniqueKeys bool
	// AutoGrow triggers automatic table growth under stash pressure:
	// graceful degradation instead of a filling stash when the load
	// climbs past what the configured geometry can absorb.
	AutoGrow AutoGrowPolicy
}

// AutoGrowPolicy configures automatic growth under stash pressure. When
// enabled, an insert that lands in the stash while the stash holds more than
// StashThreshold items triggers Grow(Factor); if the stash is still over the
// threshold afterwards the factor is multiplied by Backoff and growth retries,
// up to MaxAttempts attempts per trigger. Attempts and outcomes are surfaced
// in Stats (GrowAttempts, Grows, GrowFailures).
type AutoGrowPolicy struct {
	// Enabled turns the policy on.
	Enabled bool
	// StashThreshold is the stash population above which growth triggers.
	// 0 means grow on the first stashed item.
	StashThreshold int
	// Factor is the initial multiplier applied to BucketsPerTable
	// (default 2.0; must be > 1).
	Factor float64
	// MaxAttempts bounds growth retries per trigger (default 3).
	MaxAttempts int
	// Backoff multiplies the factor after an attempt that leaves the
	// stash over the threshold (default 1.5; must be >= 1).
	Backoff float64
}

func (c *Config) normalize(blocked bool) error {
	if c.D == 0 {
		c.D = 3
	}
	if c.Slots == 0 {
		c.Slots = 1
		if blocked {
			c.Slots = 3
		}
	}
	if c.MaxLoop == 0 {
		c.MaxLoop = 500
	}
	if c.D < 2 || c.D > 4 {
		return fmt.Errorf("core: D must be in [2,4], got %d", c.D)
	}
	if blocked {
		if c.Slots < 2 || c.Slots > 4 {
			return fmt.Errorf("core: blocked Slots must be in [2,4], got %d", c.Slots)
		}
	} else if c.Slots != 1 {
		return fmt.Errorf("core: single-slot table requires Slots == 1, got %d", c.Slots)
	}
	if c.BucketsPerTable <= 0 {
		return fmt.Errorf("core: BucketsPerTable must be positive, got %d", c.BucketsPerTable)
	}
	if c.MaxLoop < 1 {
		return fmt.Errorf("core: MaxLoop must be positive, got %d", c.MaxLoop)
	}
	if c.StashMax < 0 {
		return fmt.Errorf("core: StashMax must be non-negative, got %d", c.StashMax)
	}
	if c.AutoGrow.Enabled {
		if !c.StashEnabled {
			return fmt.Errorf("core: AutoGrow requires StashEnabled (growth triggers on stash pressure)")
		}
		if c.AutoGrow.Factor == 0 {
			c.AutoGrow.Factor = 2.0
		}
		if c.AutoGrow.MaxAttempts == 0 {
			c.AutoGrow.MaxAttempts = 3
		}
		if c.AutoGrow.Backoff == 0 {
			c.AutoGrow.Backoff = 1.5
		}
		if c.AutoGrow.Factor <= 1 {
			return fmt.Errorf("core: AutoGrow.Factor must be > 1, got %g", c.AutoGrow.Factor)
		}
		if c.AutoGrow.Backoff < 1 {
			return fmt.Errorf("core: AutoGrow.Backoff must be >= 1, got %g", c.AutoGrow.Backoff)
		}
		if c.AutoGrow.StashThreshold < 0 {
			return fmt.Errorf("core: AutoGrow.StashThreshold must be non-negative, got %d", c.AutoGrow.StashThreshold)
		}
		if c.AutoGrow.MaxAttempts < 1 {
			return fmt.Errorf("core: AutoGrow.MaxAttempts must be positive, got %d", c.AutoGrow.MaxAttempts)
		}
	}
	return nil
}

// newFamily builds the hash family the config asks for.
func newFamily(cfg Config) (*hashutil.Family, error) {
	if cfg.DoubleHashing {
		return hashutil.NewDoubleHashedFamily(cfg.D, cfg.BucketsPerTable, cfg.Seed)
	}
	return hashutil.NewFamily(cfg.D, cfg.BucketsPerTable, cfg.Seed)
}

// counterWidth returns the bit width of the on-chip counters: values 0..D
// plus, in Tombstone mode, one extra "deleted" state.
func (c *Config) counterWidth() uint {
	states := c.D + 1 // 0..D copies
	if c.Deletion == Tombstone {
		states++
	}
	width := uint(1)
	for 1<<width < states {
		width++
	}
	return width
}
