package core

import (
	"fmt"

	"mccuckoo/internal/bitpack"
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
)

// Grow rebuilds the table with a fresh hash family and growFactor times the
// buckets per subtable (growFactor >= 1; 1 rehashes in place, which also
// re-absorbs the stash). All live items and stashed items are reinserted;
// stash flags are rebuilt from scratch. The traffic of reading the whole
// table back and rewriting every item is charged to the meter — this is the
// expensive operation McCuckoo's stash exists to avoid (§I), provided here
// because real deployments eventually need capacity growth.
//
//mcvet:setter counters flags kickcounts
func (t *Table) Grow(growFactor float64) error {
	if growFactor < 1 {
		return fmt.Errorf("core: growFactor must be >= 1, got %g", growFactor)
	}
	items := t.liveEntries()
	// Reading every bucket back: one off-chip read per bucket.
	t.meter.ReadOff(int64(t.cfg.D * t.cfg.BucketsPerTable))
	if t.overflow != nil {
		items = append(items, t.overflow.Drain()...)
	}

	newN := int(float64(t.cfg.BucketsPerTable) * growFactor)
	newSeed := hashutil.Mix64(t.cfg.Seed + 0x47726f77)
	grownCfg := t.cfg
	grownCfg.BucketsPerTable, grownCfg.Seed = newN, newSeed
	family, err := newFamily(grownCfg)
	if err != nil {
		return err
	}
	buckets := t.cfg.D * newN
	counters, err := bitpack.NewCounters(buckets, t.cfg.counterWidth())
	if err != nil {
		return err
	}
	flags, err := bitpack.NewBitset(buckets)
	if err != nil {
		return err
	}
	t.cfg.Seed = newSeed
	t.cfg.BucketsPerTable = newN
	t.family = family
	t.counters = counters
	t.flags = flags
	t.cells = make([]kv.Entry, buckets)
	if t.kickCounts != nil {
		if t.kickCounts, err = bitpack.NewCounters(buckets, 5); err != nil {
			return err
		}
	}
	t.size = 0
	t.copiesTotal = 0
	t.deletedAny = false

	for _, e := range items {
		var cand [hashutil.MaxD]int
		t.family.Indexes(e.Key, cand[:])
		if copies := t.place(e, cand[:t.cfg.D]); copies > 0 {
			t.size++
			continue
		}
		switch out := t.resolveCollision(e, cand[:t.cfg.D]); out.Status {
		case kv.Placed, kv.Stashed:
		default:
			return fmt.Errorf("core: grow failed to place key %#x", e.Key)
		}
	}
	return nil
}

// liveEntries collects one entry per distinct live key, without charging
// traffic (Grow charges the bulk read separately).
func (t *Table) liveEntries() []kv.Entry {
	seen := make(map[uint64]struct{}, t.size)
	items := make([]kv.Entry, 0, t.size)
	for idx := range t.cells {
		c := t.counters.Get(idx)
		if c == 0 || (t.tombstoneVal != 0 && c == t.tombstoneVal) {
			continue
		}
		key := t.cells[idx].Key
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		items = append(items, t.cells[idx])
	}
	return items
}

// Grow rebuilds the blocked table, exactly as Table.Grow.
//
//mcvet:setter counters flags kickcounts
func (t *BlockedTable) Grow(growFactor float64) error {
	if growFactor < 1 {
		return fmt.Errorf("core: growFactor must be >= 1, got %g", growFactor)
	}
	items := t.liveEntries()
	t.meter.ReadOff(int64(t.cfg.D * t.cfg.BucketsPerTable))
	if t.overflow != nil {
		items = append(items, t.overflow.Drain()...)
	}

	newN := int(float64(t.cfg.BucketsPerTable) * growFactor)
	newSeed := hashutil.Mix64(t.cfg.Seed + 0x47726f77)
	grownCfg := t.cfg
	grownCfg.BucketsPerTable, grownCfg.Seed = newN, newSeed
	family, err := newFamily(grownCfg)
	if err != nil {
		return err
	}
	slots := t.cfg.D * newN * t.cfg.Slots
	counters, err := bitpack.NewCounters(slots, t.cfg.counterWidth())
	if err != nil {
		return err
	}
	flags, err := bitpack.NewBitset(t.cfg.D * newN)
	if err != nil {
		return err
	}
	t.cfg.Seed = newSeed
	t.cfg.BucketsPerTable = newN
	t.family = family
	t.counters = counters
	t.flags = flags
	t.keys = make([]uint64, slots)
	t.vals = make([]uint64, slots)
	t.hints = make([][4]int8, slots)
	for i := range t.hints {
		t.hints[i] = [4]int8{noSlot, noSlot, noSlot, noSlot}
	}
	if t.kickCounts != nil {
		if t.kickCounts, err = bitpack.NewCounters(t.cfg.D*newN, 5); err != nil {
			return err
		}
	}
	t.size = 0
	t.copiesTotal = 0
	t.deletedAny = false

	for _, e := range items {
		var cand [hashutil.MaxD]int
		t.family.Indexes(e.Key, cand[:])
		if copies := t.place(e, cand[:t.cfg.D]); copies > 0 {
			t.size++
			continue
		}
		switch out := t.resolveCollision(e, cand[:t.cfg.D]); out.Status {
		case kv.Placed, kv.Stashed:
		default:
			return fmt.Errorf("core: grow failed to place key %#x", e.Key)
		}
	}
	return nil
}

// liveEntries collects one entry per distinct live key in the blocked table.
func (t *BlockedTable) liveEntries() []kv.Entry {
	seen := make(map[uint64]struct{}, t.size)
	items := make([]kv.Entry, 0, t.size)
	for idx := range t.keys {
		if t.isFree(t.counters.Get(idx)) {
			continue
		}
		key := t.keys[idx]
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		items = append(items, kv.Entry{Key: key, Value: t.vals[idx]})
	}
	return items
}
