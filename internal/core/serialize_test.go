package core

import (
	"bytes"
	"errors"
	"testing"

	"mccuckoo/internal/kv"
)

// buildMessyTable produces a table with stash pressure, deletions and
// updates — the richest state a snapshot must capture.
func buildMessyTable(t *testing.T) (*Table, []uint64) {
	t.Helper()
	tab := mustNew(t, Config{BucketsPerTable: 128, Seed: 91, MaxLoop: 50,
		StashEnabled: true})
	keys := fillKeys(92, 380) // ~99% load: guarantees stash entries
	for _, k := range keys {
		tab.Insert(k, k+1)
	}
	for _, k := range keys[:60] {
		tab.Delete(k)
	}
	for _, k := range keys[60:90] {
		tab.Insert(k, k*7)
	}
	return tab, keys
}

func TestSnapshotRoundTrip(t *testing.T) {
	tab, keys := buildMessyTable(t)
	if tab.StashLen() == 0 {
		t.Fatal("test needs stash pressure")
	}
	var buf bytes.Buffer
	n, err := tab.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Len() != tab.Len() || got.StashLen() != tab.StashLen() ||
		got.Copies() != tab.Copies() || got.RedundantWrites() != tab.RedundantWrites() {
		t.Fatalf("bookkeeping differs: Len %d/%d Stash %d/%d Copies %d/%d",
			got.Len(), tab.Len(), got.StashLen(), tab.StashLen(), got.Copies(), tab.Copies())
	}
	if !got.Meter().Snapshot().Same(tab.Meter().Snapshot()) {
		t.Fatal("meter not preserved")
	}
	for _, k := range keys[:60] {
		if _, ok := got.Lookup(k); ok {
			t.Fatalf("deleted key %#x resurrected by snapshot", k)
		}
	}
	for _, k := range keys[60:90] {
		if v, ok := got.Lookup(k); !ok || v != k*7 {
			t.Fatalf("updated key %#x wrong after load (ok=%v v=%d)", k, ok, v)
		}
	}
	for _, k := range keys[90:] {
		if v, ok := got.Lookup(k); !ok || v != k+1 {
			t.Fatalf("key %#x lost across snapshot", k)
		}
	}
	// The loaded table must keep working: fill some more and delete.
	extra := fillKeys(93, 20)
	for _, k := range extra {
		if got.Insert(k, k).Status == kv.Failed {
			t.Fatal("post-load insert failed")
		}
	}
	checkInv(t, got)
}

func TestSnapshotBlockedRoundTrip(t *testing.T) {
	tab := mustNewBlocked(t, Config{BucketsPerTable: 48, Seed: 94, MaxLoop: 100,
		StashEnabled: true})
	keys := fillKeys(95, tab.Capacity()+10)
	for _, k := range keys {
		tab.Insert(k, k^3)
	}
	for _, k := range keys[:50] {
		tab.Delete(k)
	}
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := LoadBlocked(&buf)
	if err != nil {
		t.Fatalf("LoadBlocked: %v", err)
	}
	if got.Len() != tab.Len() {
		t.Fatalf("Len %d, want %d", got.Len(), tab.Len())
	}
	for _, k := range keys[50:] {
		if v, ok := got.Lookup(k); !ok || v != k^3 {
			t.Fatalf("key %#x lost across blocked snapshot", k)
		}
	}
	checkBlockedInv(t, got)
}

func TestSnapshotKindMismatch(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 16, Seed: 96})
	tab.Insert(1, 1)
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBlocked(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("LoadBlocked accepted a single-slot snapshot")
	}

	btab := mustNewBlocked(t, Config{BucketsPerTable: 16, Seed: 96})
	btab.Insert(1, 1)
	buf.Reset()
	if _, err := btab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("Load accepted a blocked snapshot")
	}
}

func TestSnapshotCorruption(t *testing.T) {
	tab, _ := buildMessyTable(t)
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, raw...)
	bad[0] = 'X'
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte{}, raw...)
	bad[4] = 99
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	// Truncation at every power of two must error, never panic.
	for cut := 1; cut < len(raw); cut *= 2 {
		if _, err := Load(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncated snapshot (%d bytes) accepted", cut)
		}
	}
	// In format v3 every byte is covered by a section CRC and the file
	// trailer, so flipping any single bit must be rejected — spot-check a
	// spread of offsets here (the fault-injection suite does it
	// exhaustively).
	for off := 5; off < len(raw); off += 97 {
		bad = append([]byte{}, raw...)
		bad[off] ^= 1
		if _, err := Load(bytes.NewReader(bad)); err == nil {
			t.Errorf("bit flip at offset %d accepted", off)
		}
	}
	// The rejection must be a typed *CorruptError carrying the section.
	bad = append([]byte{}, raw...)
	bad[len(bad)/2] ^= 0x10
	_, err := Load(bytes.NewReader(bad))
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corruption error is %T (%v), want *CorruptError", err, err)
	}
	if ce.Kind != "table" || ce.Section == "" {
		t.Errorf("CorruptError missing context: %+v", ce)
	}
}

func TestSnapshotTombstoneAndPolicy(t *testing.T) {
	tab := mustNew(t, Config{BucketsPerTable: 64, Seed: 97, Deletion: Tombstone,
		Policy: kv.MinCounter, StashEnabled: true})
	keys := fillKeys(98, 120)
	for _, k := range keys {
		tab.Insert(k, k)
	}
	for _, k := range keys[:30] {
		tab.Delete(k)
	}
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, k := range keys[:30] {
		if _, ok := got.Lookup(k); ok {
			t.Fatalf("tombstoned key %#x resurrected", k)
		}
	}
	for _, k := range keys[30:] {
		if _, ok := got.Lookup(k); !ok {
			t.Fatalf("key %#x lost", k)
		}
	}
	// Tombstoned buckets must stay reusable after load.
	for _, k := range fillKeys(99, 30) {
		if got.Insert(k, k).Status == kv.Failed {
			t.Fatal("post-load insert into tombstoned table failed")
		}
	}
	checkInv(t, got)
}
