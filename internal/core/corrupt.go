package core

import "fmt"

// CorruptError is the typed rejection every snapshot loader returns when the
// input is truncated, bit-flipped, internally inconsistent, or out of the
// format's bounds. A loader never panics on garbage and never hands back a
// silently-wrong table: any anomaly surfaces as one of these.
//
// Use errors.As to detect it:
//
//	var ce *core.CorruptError
//	if errors.As(err, &ce) { log.Printf("snapshot bad at %s+%d: %s", ce.Section, ce.Offset, ce.Reason) }
type CorruptError struct {
	// Kind names the snapshot flavour being loaded: "table", "blocked",
	// or "sharded".
	Kind string
	// Section names the region of the snapshot that failed: "header",
	// "bookkeeping", "buckets", "hints", "onchip", "stash", "trailer",
	// "frame", or "consistency" for post-load invariant failures.
	Section string
	// Offset is the byte position in the input stream where the problem
	// was established (best effort; 0 when unknown).
	Offset int64
	// Reason is a human-readable description of the defect.
	Reason string
	// Err is the underlying error, if any (io errors, invariant
	// violations). It is exposed via Unwrap.
	Err error
}

// Error implements error.
func (e *CorruptError) Error() string {
	msg := fmt.Sprintf("core: corrupt %s snapshot (%s @%d): %s", e.Kind, e.Section, e.Offset, e.Reason)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap returns the underlying error, if any.
func (e *CorruptError) Unwrap() error { return e.Err }

// corruptf builds a *CorruptError with a formatted reason.
func corruptf(kind, section string, offset int64, format string, args ...any) *CorruptError {
	return &CorruptError{Kind: kind, Section: section, Offset: offset,
		Reason: fmt.Sprintf(format, args...)}
}
