package core

import (
	"mccuckoo/internal/hashutil"
	"mccuckoo/internal/kv"
)

// Delete removes key. All copies are located using the lookup principles,
// then only their on-chip counters are reset (ResetCounters) or marked
// (Tombstone) — the paper's point: a deletion costs zero off-chip writes
// (§III.B.3, §IV.D). A miss consults the stash subject to the pre-screen.
//
//mcvet:hotpath
func (t *Table) Delete(key uint64) bool {
	t.stats.Deletes++
	var cand [hashutil.MaxD]int
	t.family.Indexes(key, cand[:])

	var locBuf [hashutil.MaxD]int
	var st scanState
	tables, ok := t.locateCopies(key, cand[:t.cfg.D], &locBuf, &st)
	if ok {
		mark := uint64(0)
		if t.cfg.Deletion == Tombstone {
			mark = t.tombstoneVal
		}
		for _, i := range tables {
			t.setCounter(i, cand[i], mark)
		}
		t.copiesTotal -= len(tables)
		t.size--
		t.deletedAny = true
		return true
	}
	if t.shouldProbeStash(&st, cand[:t.cfg.D]) {
		t.stats.StashProbe++
		if t.overflow.Delete(key) {
			// Flags are intentionally left set (they behave like a
			// Bloom filter and do not support deletion, §III.F);
			// RefreshStashFlags resynchronizes them.
			t.deletedAny = true
			return true
		}
	}
	return false
}

// RefreshStashFlags clears every stash flag and reinserts all stashed items
// through the normal insertion path, re-stashing (and re-flagging) those
// that still do not fit (§III.F). It returns the number of items that moved
// from the stash into the main table.
func (t *Table) RefreshStashFlags() int {
	if t.overflow == nil {
		return 0
	}
	// Targeted clears: one off-chip write per flag that was set.
	for i := 0; i < t.flags.Len(); i++ {
		t.clearStashFlag(i)
	}
	items := t.overflow.Drain()
	moved := 0
	for _, e := range items {
		var cand [hashutil.MaxD]int
		t.family.Indexes(e.Key, cand[:])
		if copies := t.place(e, cand[:t.cfg.D]); copies > 0 {
			t.size++
			moved++
			continue
		}
		if out := t.resolveCollision(e, cand[:t.cfg.D]); out.Status == kv.Placed {
			moved++
		}
	}
	return moved
}
