package core

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"

	"mccuckoo/internal/bitpack"
	"mccuckoo/internal/kv"
	"mccuckoo/internal/memmodel"
	"mccuckoo/internal/stash"
)

// Serialization: a versioned little-endian binary snapshot of a table.
// The snapshot captures the full logical state — configuration, buckets,
// counters, flags, hints, stash, bookkeeping and the traffic meter — so a
// loaded table behaves identically to the saved one, with one documented
// exception: the random-walk RNG is reseeded deterministically from the
// configuration seed and the item count, so post-load kick sequences are
// reproducible but not a bit-level continuation of the saved process.
//
// Format v3 (crash-safety revision): the stream is divided into five
// sections — header (magic, version, kind, config), bookkeeping (size,
// copies, deletion state, meter), buckets (keys, values, and for blocked
// tables the packed slot hints), onchip (counter words, flag words, kick
// words), stash — each followed by its own CRC32C, and the whole file ends
// with a CRC32C trailer over every preceding byte (section checksums
// included). Array lengths are implied by the configuration, so a header
// claiming one geometry cannot smuggle differently-sized payloads, and no
// allocation is sized by attacker-controlled fields beyond the bytes
// actually present in the stream. Every rejection — truncation, checksum
// mismatch, out-of-range counter, geometry mismatch, failed invariant —
// is reported as a *CorruptError; loaders never panic on garbage.

const (
	snapshotMagic   = "MCCK"
	snapshotVersion = 3
	kindSingle      = 0
	kindBlocked     = 1
)

// castagnoli is the CRC32C polynomial table shared by writers and readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

type snapWriter struct {
	w       *bufio.Writer
	n       int64
	err     error
	fileCRC uint32
	sectCRC uint32
}

func (s *snapWriter) bytes(b []byte) {
	if s.err != nil {
		return
	}
	n, err := s.w.Write(b)
	s.n += int64(n)
	s.err = err
	s.fileCRC = crc32.Update(s.fileCRC, castagnoli, b[:n])
	s.sectCRC = crc32.Update(s.sectCRC, castagnoli, b[:n])
}

func (s *snapWriter) u8(v uint8) { s.bytes([]byte{v}) }

func (s *snapWriter) u32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	s.bytes(buf[:])
}

func (s *snapWriter) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	s.bytes(buf[:])
}

func (s *snapWriter) u64s(vals []uint64) {
	s.u64(uint64(len(vals)))
	for _, v := range vals {
		s.u64(v)
	}
}

// beginSection starts a new checksummed region.
func (s *snapWriter) beginSection() { s.sectCRC = 0 }

// endSection appends the CRC32C of the bytes written since beginSection.
// The checksum bytes themselves are covered by the file trailer only.
func (s *snapWriter) endSection() {
	crc := s.sectCRC
	s.u32(crc)
}

// trailer appends the whole-file CRC32C over every byte written so far.
func (s *snapWriter) trailer() {
	crc := s.fileCRC
	s.u32(crc)
}

type snapReader struct {
	r       *bufio.Reader
	n       int64
	err     error
	fileCRC uint32
	sectCRC uint32
	kind    string // "table" or "blocked", for error reports
	section string // current section name, for error reports
}

// fail records the first error as a *CorruptError tagged with the current
// section and offset.
func (s *snapReader) fail(reason string, err error) {
	if s.err == nil {
		s.err = &CorruptError{Kind: s.kind, Section: s.section, Offset: s.n,
			Reason: reason, Err: err}
	}
}

func (s *snapReader) failf(format string, args ...any) {
	if s.err == nil {
		s.err = corruptf(s.kind, s.section, s.n, format, args...)
	}
}

func (s *snapReader) bytes(b []byte) {
	if s.err != nil {
		return
	}
	n, err := io.ReadFull(s.r, b)
	s.n += int64(n)
	s.fileCRC = crc32.Update(s.fileCRC, castagnoli, b[:n])
	s.sectCRC = crc32.Update(s.sectCRC, castagnoli, b[:n])
	if err != nil {
		s.fail("truncated input", err)
	}
}

func (s *snapReader) u8() uint8 {
	var buf [1]byte
	s.bytes(buf[:])
	return buf[0]
}

func (s *snapReader) u32() uint32 {
	var buf [4]byte
	s.bytes(buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

func (s *snapReader) u64() uint64 {
	var buf [8]byte
	s.bytes(buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// u64sExact reads a length-prefixed word array whose length must equal want
// (implied by the configuration), in bounded chunks: memory grows with bytes
// actually present in the stream, so a corrupt header declaring a huge
// length fails at the first missing chunk instead of allocating it all up
// front.
func (s *snapReader) u64sExact(want uint64, what string) []uint64 {
	n := s.u64()
	if s.err != nil {
		return nil
	}
	if n != want {
		s.failf("%s length %d does not match geometry %d", what, n, want)
		return nil
	}
	const chunk = 1 << 14
	out := make([]uint64, 0, min(n, chunk))
	var buf [8 * chunk]byte
	for remaining := n; remaining > 0; {
		c := min(remaining, chunk)
		s.bytes(buf[:8*c])
		if s.err != nil {
			return nil
		}
		for i := uint64(0); i < c; i++ {
			out = append(out, binary.LittleEndian.Uint64(buf[8*i:]))
		}
		remaining -= c
	}
	return out
}

// beginSection starts verifying a new checksummed region.
func (s *snapReader) beginSection(name string) {
	s.section = name
	s.sectCRC = 0
}

// endSection reads the stored section CRC32C and compares it with the bytes
// consumed since beginSection.
func (s *snapReader) endSection() {
	if s.err != nil {
		return
	}
	want := s.sectCRC
	got := s.u32()
	if s.err == nil && got != want {
		s.failf("section checksum mismatch (stored %#08x, computed %#08x)", got, want)
	}
}

// trailer reads the whole-file CRC32C and compares it with every byte
// consumed before it.
func (s *snapReader) trailer() {
	s.section = "trailer"
	if s.err != nil {
		return
	}
	want := s.fileCRC
	got := s.u32()
	if s.err == nil && got != want {
		s.failf("file checksum mismatch (stored %#08x, computed %#08x)", got, want)
	}
}

//mcvet:deterministic
func writeConfig(s *snapWriter, cfg Config) {
	s.u8(uint8(cfg.D))
	s.u8(uint8(cfg.Slots))
	s.u32(uint32(cfg.MaxLoop))
	s.u64(cfg.Seed)
	s.u8(uint8(cfg.Policy))
	s.u8(uint8(cfg.Deletion))
	s.u8(boolByte(cfg.StashEnabled))
	s.u32(uint32(cfg.StashMax))
	s.u8(boolByte(cfg.DisablePrescreen))
	s.u8(boolByte(cfg.AssumeUniqueKeys))
	s.u8(boolByte(cfg.DoubleHashing))
	s.u64(uint64(cfg.BucketsPerTable))
	s.u8(boolByte(cfg.AutoGrow.Enabled))
	s.u32(uint32(cfg.AutoGrow.StashThreshold))
	s.u64(math.Float64bits(cfg.AutoGrow.Factor))
	s.u32(uint32(cfg.AutoGrow.MaxAttempts))
	s.u64(math.Float64bits(cfg.AutoGrow.Backoff))
}

func readConfig(s *snapReader) Config {
	var cfg Config
	cfg.D = int(s.u8())
	cfg.Slots = int(s.u8())
	cfg.MaxLoop = int(s.u32())
	cfg.Seed = s.u64()
	cfg.Policy = kv.KickPolicy(s.u8())
	cfg.Deletion = DeletionMode(s.u8())
	cfg.StashEnabled = s.u8() == 1
	cfg.StashMax = int(s.u32())
	cfg.DisablePrescreen = s.u8() == 1
	cfg.AssumeUniqueKeys = s.u8() == 1
	cfg.DoubleHashing = s.u8() == 1
	n := s.u64()
	if s.err == nil && n > math.MaxInt32 {
		s.failf("table length %d too large", n)
		return cfg
	}
	cfg.BucketsPerTable = int(n)
	cfg.AutoGrow.Enabled = s.u8() == 1
	cfg.AutoGrow.StashThreshold = int(s.u32())
	cfg.AutoGrow.Factor = math.Float64frombits(s.u64())
	cfg.AutoGrow.MaxAttempts = int(s.u32())
	cfg.AutoGrow.Backoff = math.Float64frombits(s.u64())
	return cfg
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

//mcvet:deterministic
func writeStash(s *snapWriter, entries []kv.Entry) {
	s.u64(uint64(len(entries)))
	for _, e := range entries {
		s.u64(e.Key)
		s.u64(e.Value)
	}
}

// readStash reads the stash entries, rejecting any count above maxLen (the
// configured stash limit, or the global array bound for unbounded stashes;
// 0 when the configuration has no stash at all).
func readStash(s *snapReader, maxLen uint64) []kv.Entry {
	n := s.u64()
	if s.err != nil {
		return nil
	}
	if n > maxLen {
		s.failf("stash length %d exceeds limit %d", n, maxLen)
		return nil
	}
	entries := make([]kv.Entry, 0, min(n, 1<<14))
	for i := uint64(0); i < n; i++ {
		e := kv.Entry{Key: s.u64(), Value: s.u64()}
		if s.err != nil {
			return nil
		}
		entries = append(entries, e)
	}
	return entries
}

// maxSnapshotArray bounds any single array in a snapshot; together with the
// chunked reader it keeps garbage input from triggering large allocations.
const maxSnapshotArray = 1 << 32

// snapshotState is the complete logical content of a snapshot, shared by the
// single-slot and blocked writers and loaders.
type snapshotState struct {
	kind            uint8
	cfg             Config
	size            int
	copiesTotal     int
	redundantWrites int64
	deletedAny      bool
	meter           memmodel.Meter
	keys            []uint64
	vals            []uint64
	hints           [][4]int8 // blocked only
	counterWords    []uint64
	flagWords       []uint64
	kickWords       []uint64
	stash           []kv.Entry
}

// geometry derives the array sizes a configuration implies. cells is the
// number of counter cells (buckets for single-slot, slots for blocked);
// flagBits is always the bucket count.
func snapshotGeometry(cfg *Config, blocked bool) (cells, flagBits, counterWords, flagWords, kickWords uint64) {
	buckets := uint64(cfg.D) * uint64(cfg.BucketsPerTable)
	cells = buckets
	if blocked {
		cells *= uint64(cfg.Slots)
	}
	flagBits = buckets
	perWord := 64 / uint64(cfg.counterWidth())
	counterWords = (cells + perWord - 1) / perWord
	flagWords = (flagBits + 63) / 64
	if cfg.Policy == kv.MinCounter {
		kickWords = (buckets + 12 - 1) / 12 // 5-bit counters, 12 per word
	}
	return
}

// writeSnapshot emits the v3 checksummed stream. The byte stream must be a
// pure function of the logical state: snapshots are diffed and checksummed
// across hosts, so nothing time-, rand-, or map-order-dependent may leak in.
//
//mcvet:deterministic
func writeSnapshot(w io.Writer, st *snapshotState) (int64, error) {
	s := &snapWriter{w: bufio.NewWriter(w)}

	s.beginSection()
	s.bytes([]byte(snapshotMagic))
	s.u8(snapshotVersion)
	s.u8(st.kind)
	writeConfig(s, st.cfg)
	s.endSection()

	s.beginSection()
	s.u64(uint64(st.size))
	s.u64(uint64(st.copiesTotal))
	s.u64(uint64(st.redundantWrites))
	s.u8(boolByte(st.deletedAny))
	s.u64(uint64(st.meter.OffChipReads))
	s.u64(uint64(st.meter.OffChipWrites))
	s.u64(uint64(st.meter.OnChipReads))
	s.u64(uint64(st.meter.OnChipWrites))
	s.endSection()

	s.beginSection()
	s.u64s(st.keys)
	s.u64s(st.vals)
	if st.kind == kindBlocked {
		s.u64(uint64(len(st.hints)))
		for _, h := range st.hints {
			s.u32(uint32(uint8(h[0])) | uint32(uint8(h[1]))<<8 |
				uint32(uint8(h[2]))<<16 | uint32(uint8(h[3]))<<24)
		}
	}
	s.endSection()

	s.beginSection()
	s.u64s(st.counterWords)
	s.u64s(st.flagWords)
	s.u64s(st.kickWords)
	s.endSection()

	s.beginSection()
	writeStash(s, st.stash)
	s.endSection()

	s.trailer()
	if s.err == nil {
		s.err = s.w.Flush()
	}
	return s.n, s.err
}

// readSnapshot parses and fully validates a v3 stream of the wanted kind.
// Everything is checked against the configuration-implied geometry before
// any geometry-sized allocation happens, and every section must pass its
// checksum. It returns the bytes consumed so file loaders can reject
// trailing garbage.
func readSnapshot(r io.Reader, kindName string, wantKind uint8, blocked bool) (*snapshotState, int64, error) {
	s := &snapReader{r: bufio.NewReader(r), kind: kindName}
	st := &snapshotState{kind: wantKind}

	s.beginSection("header")
	var magic [4]byte
	s.bytes(magic[:])
	if s.err == nil && string(magic[:]) != snapshotMagic {
		s.failf("bad magic %q", magic)
	}
	if v := s.u8(); s.err == nil && v != snapshotVersion {
		s.failf("unsupported snapshot version %d (want %d)", v, snapshotVersion)
	}
	if k := s.u8(); s.err == nil && k != wantKind {
		other := "Load"
		if wantKind == kindSingle {
			other = "LoadBlocked"
		}
		s.failf("snapshot kind %d is not a %s snapshot; use %s", k, kindName, other)
	}
	cfg := readConfig(s)
	s.endSection()
	if s.err != nil {
		return nil, s.n, s.err
	}
	if err := cfg.normalize(blocked); err != nil {
		return nil, s.n, &CorruptError{Kind: kindName, Section: "header", Offset: s.n,
			Reason: "invalid configuration", Err: err}
	}
	st.cfg = cfg
	cells, _, counterWords, flagWords, kickWords := snapshotGeometry(&cfg, blocked)

	s.beginSection("bookkeeping")
	size := s.u64()
	copiesTotal := s.u64()
	redundantWrites := s.u64()
	st.deletedAny = s.u8() == 1
	offR, offW, onR, onW := s.u64(), s.u64(), s.u64(), s.u64()
	s.endSection()
	if s.err != nil {
		return nil, s.n, s.err
	}
	if size > cells || copiesTotal > cells || size > copiesTotal {
		return nil, s.n, corruptf(kindName, "bookkeeping", s.n,
			"size %d / copies %d out of range for %d cells", size, copiesTotal, cells)
	}
	for _, v := range []uint64{redundantWrites, offR, offW, onR, onW} {
		if v > math.MaxInt64 {
			return nil, s.n, corruptf(kindName, "bookkeeping", s.n, "negative lifetime counter %#x", v)
		}
	}
	st.size = int(size)
	st.copiesTotal = int(copiesTotal)
	st.redundantWrites = int64(redundantWrites)
	st.meter = memmodel.Meter{OffChipReads: int64(offR), OffChipWrites: int64(offW),
		OnChipReads: int64(onR), OnChipWrites: int64(onW)}

	s.beginSection("buckets")
	st.keys = s.u64sExact(cells, "bucket keys")
	st.vals = s.u64sExact(cells, "bucket values")
	if blocked {
		nHints := s.u64()
		if s.err == nil && nHints != cells {
			s.failf("hint count %d does not match slot count %d", nHints, cells)
		}
		if s.err == nil {
			st.hints = make([][4]int8, 0, min(nHints, 1<<14))
			for i := uint64(0); i < nHints && s.err == nil; i++ {
				packed := s.u32()
				h := [4]int8{
					int8(uint8(packed)), int8(uint8(packed >> 8)),
					int8(uint8(packed >> 16)), int8(uint8(packed >> 24)),
				}
				for _, hv := range h {
					if hv != noSlot && (hv < 0 || int(hv) >= cfg.Slots) {
						s.failf("slot hint %d out of range for %d slots", hv, cfg.Slots)
					}
				}
				st.hints = append(st.hints, h)
			}
		}
	}
	s.endSection()

	s.beginSection("onchip")
	st.counterWords = s.u64sExact(counterWords, "counter words")
	st.flagWords = s.u64sExact(flagWords, "flag words")
	st.kickWords = s.u64sExact(kickWords, "kick-counter words")
	s.endSection()

	s.beginSection("stash")
	maxStash := uint64(0)
	if cfg.StashEnabled {
		maxStash = maxSnapshotArray
		if cfg.StashMax > 0 {
			maxStash = uint64(cfg.StashMax)
		}
	}
	st.stash = readStash(s, maxStash)
	s.endSection()

	s.trailer()
	if s.err != nil {
		return nil, s.n, s.err
	}
	return st, s.n, nil
}

// splitCells materializes the snapshot's split key/value arrays from the
// interleaved cells: the snapshot byte format predates the interleaving and
// must stay byte-identical across it.
func splitCells(cells []kv.Entry) (keys, vals []uint64) {
	keys = make([]uint64, len(cells))
	vals = make([]uint64, len(cells))
	for i, c := range cells {
		keys[i], vals[i] = c.Key, c.Value
	}
	return keys, vals
}

// snapshot captures the table's complete logical state.
//
//mcvet:deterministic
func (t *Table) snapshot() *snapshotState {
	keys, vals := splitCells(t.cells)
	return &snapshotState{
		kind:            kindSingle,
		cfg:             t.cfg,
		size:            t.size,
		copiesTotal:     t.copiesTotal,
		redundantWrites: t.redundantWrites,
		deletedAny:      t.deletedAny,
		meter:           t.meter.Snapshot(),
		keys:            keys,
		vals:            vals,
		counterWords:    t.counters.Words(),
		flagWords:       t.flags.Words(),
		kickWords:       kickWordsOf(t.kickCounts),
		stash:           stashEntriesOf(t.overflow),
	}
}

// WriteTo serializes the table. It implements io.WriterTo.
//
//mcvet:deterministic
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	return writeSnapshot(w, t.snapshot())
}

// Load deserializes a single-slot table previously written with WriteTo.
// Any truncated, bit-flipped, or internally inconsistent input is rejected
// with a *CorruptError; Load never panics on garbage and never returns a
// table that fails CheckInvariants.
func Load(r io.Reader) (*Table, error) {
	t, _, err := loadTable(r)
	return t, err
}

func loadTable(r io.Reader) (*Table, int64, error) {
	st, n, err := readSnapshot(r, "table", kindSingle, false)
	if err != nil {
		return nil, n, err
	}
	t, err := New(st.cfg)
	if err != nil {
		return nil, n, &CorruptError{Kind: "table", Section: "header", Offset: n,
			Reason: "configuration rejected", Err: err}
	}
	t.size = st.size
	t.copiesTotal = st.copiesTotal
	t.redundantWrites = st.redundantWrites
	t.deletedAny = st.deletedAny
	t.meter = st.meter
	for i := range t.cells {
		t.cells[i] = kv.Entry{Key: st.keys[i], Value: st.vals[i]}
	}
	if err := restoreOnChip(st, t.counters, t.flags, t.kickCounts, uint64(t.cfg.D), t.tombstoneVal); err != nil {
		return nil, n, &CorruptError{Kind: "table", Section: "onchip", Offset: n,
			Reason: "on-chip state invalid", Err: err}
	}
	if t.overflow != nil {
		if err := t.overflow.Restore(st.stash); err != nil {
			return nil, n, &CorruptError{Kind: "table", Section: "stash", Offset: n,
				Reason: "stash rejected", Err: err}
		}
	}
	t.reseedRNG()
	if err := t.CheckInvariants(); err != nil {
		return nil, n, &CorruptError{Kind: "table", Section: "consistency", Offset: n,
			Reason: "snapshot inconsistent", Err: err}
	}
	return t, n, nil
}

// snapshot captures the blocked table's complete logical state.
//
//mcvet:deterministic
func (t *BlockedTable) snapshot() *snapshotState {
	return &snapshotState{
		kind:            kindBlocked,
		cfg:             t.cfg,
		size:            t.size,
		copiesTotal:     t.copiesTotal,
		redundantWrites: t.redundantWrites,
		deletedAny:      t.deletedAny,
		meter:           t.meter.Snapshot(),
		keys:            t.keys,
		vals:            t.vals,
		hints:           t.hints,
		counterWords:    t.counters.Words(),
		flagWords:       t.flags.Words(),
		kickWords:       kickWordsOf(t.kickCounts),
		stash:           stashEntriesOf(t.overflow),
	}
}

// WriteTo serializes the blocked table. It implements io.WriterTo.
//
//mcvet:deterministic
func (t *BlockedTable) WriteTo(w io.Writer) (int64, error) {
	return writeSnapshot(w, t.snapshot())
}

// LoadBlocked deserializes a blocked table previously written with WriteTo,
// with the same rejection guarantees as Load.
func LoadBlocked(r io.Reader) (*BlockedTable, error) {
	t, _, err := loadBlockedTable(r)
	return t, err
}

func loadBlockedTable(r io.Reader) (*BlockedTable, int64, error) {
	st, n, err := readSnapshot(r, "blocked", kindBlocked, true)
	if err != nil {
		return nil, n, err
	}
	t, err := NewBlocked(st.cfg)
	if err != nil {
		return nil, n, &CorruptError{Kind: "blocked", Section: "header", Offset: n,
			Reason: "configuration rejected", Err: err}
	}
	t.size = st.size
	t.copiesTotal = st.copiesTotal
	t.redundantWrites = st.redundantWrites
	t.deletedAny = st.deletedAny
	t.meter = st.meter
	copy(t.keys, st.keys)
	copy(t.vals, st.vals)
	copy(t.hints, st.hints)
	if err := restoreOnChip(st, t.counters, t.flags, t.kickCounts, uint64(t.cfg.D), t.tombstoneVal); err != nil {
		return nil, n, &CorruptError{Kind: "blocked", Section: "onchip", Offset: n,
			Reason: "on-chip state invalid", Err: err}
	}
	if t.overflow != nil {
		if err := t.overflow.Restore(st.stash); err != nil {
			return nil, n, &CorruptError{Kind: "blocked", Section: "stash", Offset: n,
				Reason: "stash rejected", Err: err}
		}
	}
	t.reseedRNG()
	if err := t.CheckInvariants(); err != nil {
		return nil, n, &CorruptError{Kind: "blocked", Section: "consistency", Offset: n,
			Reason: "snapshot inconsistent", Err: err}
	}
	return t, n, nil
}

// restoreOnChip loads the packed counter/flag/kick words into a freshly
// allocated table and bounds-checks every counter value against d (plus the
// tombstone mark when enabled) — a snapshot cannot smuggle counter values
// the insertion and lookup logic would never produce.
func restoreOnChip(st *snapshotState, counters interface {
	LoadWords([]uint64) error
	Len() int
	Get(int) uint64
}, flags interface{ LoadWords([]uint64) error }, kick interface{ LoadWords([]uint64) error },
	d, tombstoneVal uint64) error {
	if err := counters.LoadWords(st.counterWords); err != nil {
		return err
	}
	for i := 0; i < counters.Len(); i++ {
		if v := counters.Get(i); v > d && (tombstoneVal == 0 || v != tombstoneVal) {
			return corruptf("", "onchip", 0, "counter %d holds %d, above d=%d", i, v, d)
		}
	}
	if err := flags.LoadWords(st.flagWords); err != nil {
		return err
	}
	if kick != nil && len(st.kickWords) > 0 {
		return kick.LoadWords(st.kickWords)
	}
	return nil
}

func kickWordsOf(c *bitpack.Counters) []uint64 {
	if c == nil {
		return nil
	}
	return c.Words()
}

func stashEntriesOf(s *stash.Stash) []kv.Entry {
	if s == nil {
		return nil
	}
	return s.Entries()
}
