package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"mccuckoo/internal/memmodel"

	"mccuckoo/internal/kv"
)

// Serialization: a versioned little-endian binary snapshot of a table.
// The snapshot captures the full logical state — configuration, buckets,
// counters, flags, hints, stash, bookkeeping and the traffic meter — so a
// loaded table behaves identically to the saved one, with one documented
// exception: the random-walk RNG is reseeded deterministically from the
// configuration seed and the item count, so post-load kick sequences are
// reproducible but not a bit-level continuation of the saved process.

const (
	snapshotMagic   = "MCCK"
	snapshotVersion = 2
	kindSingle      = 0
	kindBlocked     = 1
)

type snapWriter struct {
	w   *bufio.Writer
	n   int64
	err error
}

func (s *snapWriter) u8(v uint8) {
	if s.err == nil {
		s.err = s.w.WriteByte(v)
		s.n++
	}
}

func (s *snapWriter) u32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	s.bytes(buf[:])
}

func (s *snapWriter) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	s.bytes(buf[:])
}

func (s *snapWriter) bytes(b []byte) {
	if s.err == nil {
		n, err := s.w.Write(b)
		s.n += int64(n)
		s.err = err
	}
}

func (s *snapWriter) u64s(vals []uint64) {
	s.u64(uint64(len(vals)))
	for _, v := range vals {
		s.u64(v)
	}
}

type snapReader struct {
	r   *bufio.Reader
	n   int64
	err error
}

func (s *snapReader) u8() uint8 {
	if s.err != nil {
		return 0
	}
	b, err := s.r.ReadByte()
	if err != nil {
		s.err = err
		return 0
	}
	s.n++
	return b
}

func (s *snapReader) u32() uint32 {
	var buf [4]byte
	s.bytes(buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

func (s *snapReader) u64() uint64 {
	var buf [8]byte
	s.bytes(buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

func (s *snapReader) bytes(b []byte) {
	if s.err != nil {
		return
	}
	n, err := io.ReadFull(s.r, b)
	s.n += int64(n)
	s.err = err
}

// u64s reads a length-prefixed word array in bounded chunks: memory grows
// with bytes actually present in the stream, so a corrupt header declaring a
// huge length fails at the first missing chunk instead of allocating it all
// up front (found by FuzzLoad).
func (s *snapReader) u64s(maxLen uint64) []uint64 {
	n := s.u64()
	if s.err != nil {
		return nil
	}
	if n > maxLen {
		s.err = fmt.Errorf("core: snapshot array length %d exceeds limit %d", n, maxLen)
		return nil
	}
	const chunk = 1 << 14
	out := make([]uint64, 0, min(n, chunk))
	var buf [8 * chunk]byte
	for remaining := n; remaining > 0; {
		c := min(remaining, chunk)
		s.bytes(buf[:8*c])
		if s.err != nil {
			return nil
		}
		for i := uint64(0); i < c; i++ {
			out = append(out, binary.LittleEndian.Uint64(buf[8*i:]))
		}
		remaining -= c
	}
	return out
}

// maxSnapshotArray bounds any single array in a snapshot; together with the
// chunked reader it keeps garbage input from triggering large allocations.
const maxSnapshotArray = 1 << 32

func writeConfig(s *snapWriter, cfg Config) {
	s.u8(uint8(cfg.D))
	s.u8(uint8(cfg.Slots))
	s.u32(uint32(cfg.MaxLoop))
	s.u64(cfg.Seed)
	s.u8(uint8(cfg.Policy))
	s.u8(uint8(cfg.Deletion))
	s.u8(boolByte(cfg.StashEnabled))
	s.u32(uint32(cfg.StashMax))
	s.u8(boolByte(cfg.DisablePrescreen))
	s.u8(boolByte(cfg.AssumeUniqueKeys))
	s.u8(boolByte(cfg.DoubleHashing))
	s.u64(uint64(cfg.BucketsPerTable))
}

func readConfig(s *snapReader) Config {
	var cfg Config
	cfg.D = int(s.u8())
	cfg.Slots = int(s.u8())
	cfg.MaxLoop = int(s.u32())
	cfg.Seed = s.u64()
	cfg.Policy = kv.KickPolicy(s.u8())
	cfg.Deletion = DeletionMode(s.u8())
	cfg.StashEnabled = s.u8() == 1
	cfg.StashMax = int(s.u32())
	cfg.DisablePrescreen = s.u8() == 1
	cfg.AssumeUniqueKeys = s.u8() == 1
	cfg.DoubleHashing = s.u8() == 1
	n := s.u64()
	if n > math.MaxInt32 {
		s.err = fmt.Errorf("core: snapshot table length %d too large", n)
		return cfg
	}
	cfg.BucketsPerTable = int(n)
	return cfg
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

func writeStash(s *snapWriter, entries []kv.Entry) {
	s.u64(uint64(len(entries)))
	for _, e := range entries {
		s.u64(e.Key)
		s.u64(e.Value)
	}
}

func readStash(s *snapReader) []kv.Entry {
	n := s.u64()
	if s.err != nil {
		return nil
	}
	if n > maxSnapshotArray {
		s.err = fmt.Errorf("core: snapshot stash length %d too large", n)
		return nil
	}
	entries := make([]kv.Entry, 0, min(n, 1<<14))
	for i := uint64(0); i < n; i++ {
		e := kv.Entry{Key: s.u64(), Value: s.u64()}
		if s.err != nil {
			return nil
		}
		entries = append(entries, e)
	}
	return entries
}

// WriteTo serializes the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	s := &snapWriter{w: bufio.NewWriter(w)}
	s.bytes([]byte(snapshotMagic))
	s.u8(snapshotVersion)
	s.u8(kindSingle)
	writeConfig(s, t.cfg)
	s.u64(uint64(t.size))
	s.u64(uint64(t.copiesTotal))
	s.u64(uint64(t.redundantWrites))
	s.u8(boolByte(t.deletedAny))
	s.u64s(t.keys)
	s.u64s(t.vals)
	s.u64s(t.counters.Words())
	s.u64s(t.flags.Words())
	m := t.meter.Snapshot()
	s.u64(uint64(m.OffChipReads))
	s.u64(uint64(m.OffChipWrites))
	s.u64(uint64(m.OnChipReads))
	s.u64(uint64(m.OnChipWrites))
	if t.kickCounts != nil {
		s.u64s(t.kickCounts.Words())
	} else {
		s.u64(0)
	}
	if t.overflow != nil {
		writeStash(s, t.overflow.Entries())
	} else {
		s.u64(0)
	}
	if s.err == nil {
		s.err = s.w.Flush()
	}
	return s.n, s.err
}

// Load deserializes a single-slot table previously written with WriteTo.
func Load(r io.Reader) (*Table, error) {
	s := &snapReader{r: bufio.NewReader(r)}
	var magic [4]byte
	s.bytes(magic[:])
	if s.err == nil && string(magic[:]) != snapshotMagic {
		return nil, fmt.Errorf("core: bad snapshot magic %q", magic)
	}
	if v := s.u8(); s.err == nil && v != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", v)
	}
	if k := s.u8(); s.err == nil && k != kindSingle {
		return nil, fmt.Errorf("core: snapshot holds a blocked table; use LoadBlocked")
	}
	cfg := readConfig(s)
	if s.err != nil {
		return nil, s.err
	}
	size := int(s.u64())
	copiesTotal := int(s.u64())
	redundantWrites := int64(s.u64())
	deletedAny := s.u8() == 1
	keys := s.u64s(maxSnapshotArray)
	vals := s.u64s(maxSnapshotArray)
	counterWords := s.u64s(maxSnapshotArray)
	flagWords := s.u64s(maxSnapshotArray)
	var m memmodel.Meter
	m.OffChipReads = int64(s.u64())
	m.OffChipWrites = int64(s.u64())
	m.OnChipReads = int64(s.u64())
	m.OnChipWrites = int64(s.u64())
	kickWords := s.u64s(maxSnapshotArray)
	stashEntries := readStash(s)
	if s.err != nil {
		return nil, s.err
	}
	// Only now, with the whole payload validated against the stream,
	// allocate the table. The array lengths must match the declared
	// geometry first, so a header claiming a huge table with an empty
	// payload cannot trigger the allocation.
	if wantBuckets := cfg.D * cfg.BucketsPerTable; len(keys) != wantBuckets || len(vals) != wantBuckets {
		return nil, fmt.Errorf("core: snapshot bucket arrays (%d/%d) do not match geometry %d",
			len(keys), len(vals), wantBuckets)
	}
	t, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot config invalid: %w", err)
	}
	t.size = size
	t.copiesTotal = copiesTotal
	t.redundantWrites = redundantWrites
	t.deletedAny = deletedAny
	t.meter = m
	if len(keys) != len(t.keys) || len(vals) != len(t.vals) {
		return nil, fmt.Errorf("core: snapshot bucket arrays do not match geometry")
	}
	copy(t.keys, keys)
	copy(t.vals, vals)
	if err := t.counters.LoadWords(counterWords); err != nil {
		return nil, err
	}
	if err := t.flags.LoadWords(flagWords); err != nil {
		return nil, err
	}
	if t.kickCounts != nil {
		if err := t.kickCounts.LoadWords(kickWords); err != nil {
			return nil, err
		}
	} else if len(kickWords) != 0 {
		return nil, fmt.Errorf("core: snapshot has kick counters but policy is random-walk")
	}
	if t.overflow != nil {
		if err := t.overflow.Restore(stashEntries); err != nil {
			return nil, err
		}
	} else if len(stashEntries) != 0 {
		return nil, fmt.Errorf("core: snapshot has stash entries but stash is disabled")
	}
	t.reseedRNG()
	if err := t.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("core: snapshot inconsistent: %w", err)
	}
	return t, nil
}

// WriteTo serializes the blocked table. It implements io.WriterTo.
func (t *BlockedTable) WriteTo(w io.Writer) (int64, error) {
	s := &snapWriter{w: bufio.NewWriter(w)}
	s.bytes([]byte(snapshotMagic))
	s.u8(snapshotVersion)
	s.u8(kindBlocked)
	writeConfig(s, t.cfg)
	s.u64(uint64(t.size))
	s.u64(uint64(t.copiesTotal))
	s.u64(uint64(t.redundantWrites))
	s.u8(boolByte(t.deletedAny))
	s.u64s(t.keys)
	s.u64s(t.vals)
	s.u64s(t.counters.Words())
	s.u64s(t.flags.Words())
	// Hints: 4 signed bytes per slot, packed into one u32 each.
	s.u64(uint64(len(t.hints)))
	for _, h := range t.hints {
		s.u32(uint32(uint8(h[0])) | uint32(uint8(h[1]))<<8 |
			uint32(uint8(h[2]))<<16 | uint32(uint8(h[3]))<<24)
	}
	m := t.meter.Snapshot()
	s.u64(uint64(m.OffChipReads))
	s.u64(uint64(m.OffChipWrites))
	s.u64(uint64(m.OnChipReads))
	s.u64(uint64(m.OnChipWrites))
	if t.kickCounts != nil {
		s.u64s(t.kickCounts.Words())
	} else {
		s.u64(0)
	}
	if t.overflow != nil {
		writeStash(s, t.overflow.Entries())
	} else {
		s.u64(0)
	}
	if s.err == nil {
		s.err = s.w.Flush()
	}
	return s.n, s.err
}

// LoadBlocked deserializes a blocked table previously written with WriteTo.
func LoadBlocked(r io.Reader) (*BlockedTable, error) {
	s := &snapReader{r: bufio.NewReader(r)}
	var magic [4]byte
	s.bytes(magic[:])
	if s.err == nil && string(magic[:]) != snapshotMagic {
		return nil, fmt.Errorf("core: bad snapshot magic %q", magic)
	}
	if v := s.u8(); s.err == nil && v != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", v)
	}
	if k := s.u8(); s.err == nil && k != kindBlocked {
		return nil, fmt.Errorf("core: snapshot holds a single-slot table; use Load")
	}
	cfg := readConfig(s)
	if s.err != nil {
		return nil, s.err
	}
	size := int(s.u64())
	copiesTotal := int(s.u64())
	redundantWrites := int64(s.u64())
	deletedAny := s.u8() == 1
	keys := s.u64s(maxSnapshotArray)
	vals := s.u64s(maxSnapshotArray)
	counterWords := s.u64s(maxSnapshotArray)
	flagWords := s.u64s(maxSnapshotArray)
	nHints := s.u64()
	if s.err == nil && nHints != uint64(len(keys)) {
		return nil, fmt.Errorf("core: snapshot hint count %d does not match slot count %d", nHints, len(keys))
	}
	hints := make([][4]int8, 0, min(nHints, 1<<14))
	for i := uint64(0); i < nHints && s.err == nil; i++ {
		packed := s.u32()
		hints = append(hints, [4]int8{
			int8(uint8(packed)), int8(uint8(packed >> 8)),
			int8(uint8(packed >> 16)), int8(uint8(packed >> 24)),
		})
	}
	var m memmodel.Meter
	m.OffChipReads = int64(s.u64())
	m.OffChipWrites = int64(s.u64())
	m.OnChipReads = int64(s.u64())
	m.OnChipWrites = int64(s.u64())
	kickWords := s.u64s(maxSnapshotArray)
	stashEntries := readStash(s)
	if s.err != nil {
		return nil, s.err
	}
	if wantSlots := cfg.D * cfg.BucketsPerTable * cfg.Slots; len(keys) != wantSlots || len(vals) != wantSlots {
		return nil, fmt.Errorf("core: snapshot slot arrays (%d/%d) do not match geometry %d",
			len(keys), len(vals), wantSlots)
	}
	t, err := NewBlocked(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot config invalid: %w", err)
	}
	t.size = size
	t.copiesTotal = copiesTotal
	t.redundantWrites = redundantWrites
	t.deletedAny = deletedAny
	t.meter = m
	if len(keys) != len(t.keys) || len(vals) != len(t.vals) {
		return nil, fmt.Errorf("core: snapshot slot arrays do not match geometry")
	}
	copy(t.keys, keys)
	copy(t.vals, vals)
	copy(t.hints, hints)
	if err := t.counters.LoadWords(counterWords); err != nil {
		return nil, err
	}
	if err := t.flags.LoadWords(flagWords); err != nil {
		return nil, err
	}
	if t.kickCounts != nil {
		if err := t.kickCounts.LoadWords(kickWords); err != nil {
			return nil, err
		}
	} else if len(kickWords) != 0 {
		return nil, fmt.Errorf("core: snapshot has kick counters but policy is random-walk")
	}
	if t.overflow != nil {
		if err := t.overflow.Restore(stashEntries); err != nil {
			return nil, err
		}
	} else if len(stashEntries) != 0 {
		return nil, fmt.Errorf("core: snapshot has stash entries but stash is disabled")
	}
	t.reseedRNG()
	if err := t.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("core: snapshot inconsistent: %w", err)
	}
	return t, nil
}
